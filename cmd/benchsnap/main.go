// Command benchsnap parses `go test -bench` output from stdin and writes a
// JSON benchmark snapshot — the machine-readable record scripts/bench.sh
// commits as BENCH_<date>.json so performance regressions are visible in
// review diffs. With -compare it diffs two snapshots instead and flags
// regressions.
//
// Usage:
//
//	go test -run '^$' -bench 'CodeRedII' -benchmem . | benchsnap -date 2026-08-05 -o BENCH_2026-08-05.json
//	benchsnap -compare BENCH_old.json BENCH_new.json
//	benchsnap -overhead 'BenchmarkRunFastCodeRedII=BenchmarkRunFastCodeRedIITrace:10' BENCH_new.json
//
// In compare mode a benchmark regresses when its ns_per_op or
// allocs_per_op grows by more than 15% over the old snapshot; any
// regression makes the exit code 2 (parse/IO failures stay exit code 1),
// so CI can surface the diff without hard-failing the build.
//
// In overhead mode the gate is intra-snapshot: each Base=Variant:pct pair
// (comma-separated) requires the Variant benchmark's ns_per_op to stay
// within pct percent of Base's in the same snapshot — pricing an optional
// facility (metrics, tracing) against the plain run measured on the same
// host at the same time, so host speed differences between snapshots
// can't mask or fake an overhead change. Exceeding the budget exits 2; a
// named benchmark missing from the snapshot exits 1 (a renamed benchmark
// must not silently pass the gate).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem (0 otherwise).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the committed benchmark record.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// regressionThreshold is the fractional growth in ns_per_op or
// allocs_per_op beyond which -compare flags a benchmark.
const regressionThreshold = 0.15

// errRegression marks a successful comparison that found regressions; it
// maps to exit code 2 so callers can tell "benchmark got slower" from
// "comparison failed".
var errRegression = errors.New("benchmark regression over threshold")

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "output file (default stdout)")
		date     = fs.String("date", "", "snapshot date (default today, UTC)")
		compare  = fs.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of parsing bench output")
		overhead = fs.String("overhead", "", "gate intra-snapshot overhead: 'Base=Variant:pct[,…]' requires Variant ns/op within pct% of Base in the given snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two snapshot files, got %d args", fs.NArg())
		}
		return compareSnapshots(fs.Arg(0), fs.Arg(1), stdout)
	}
	if *overhead != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-overhead needs exactly one snapshot file, got %d args", fs.NArg())
		}
		return checkOverhead(*overhead, fs.Arg(0), stdout)
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}

	snap := Snapshot{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (run with `go test -bench`)")
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// loadSnapshot reads one committed BENCH_*.json file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &snap, nil
}

// pctDelta returns the fractional change from old to new. Benchmark
// metrics are non-negative, so <= 0 is the exact "absent/zero baseline"
// test: a zero old value with a positive new value reports 1e9 (treated
// as +inf) so the threshold check still fires — a zero-alloc benchmark
// starting to allocate is precisely the regression the gate exists for.
func pctDelta(oldV, newV float64) float64 {
	if oldV <= 0 {
		if newV <= 0 {
			return 0
		}
		return 1e9
	}
	return (newV - oldV) / oldV
}

func fmtDelta(d float64) string {
	if d >= 1e9 {
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}

// compareSnapshots diffs two snapshot files benchmark-by-benchmark and
// reports errRegression when any shared benchmark grew its ns_per_op or
// allocs_per_op by more than the threshold. Benchmarks present in only
// one snapshot are listed but never regress — adding or retiring a
// benchmark must not trip the gate.
func compareSnapshots(oldPath, newPath string, w io.Writer) error {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "comparing %s (%s) -> %s (%s)\n", oldPath, oldSnap.Date, newPath, newSnap.Date)
	if oldSnap.NumCPU != newSnap.NumCPU || oldSnap.GoMaxProcs != newSnap.GoMaxProcs {
		fmt.Fprintf(w,
			"  caveat: host parallelism differs (num_cpu %d -> %d, gomaxprocs %d -> %d); deltas in parallel benchmarks reflect the host change as much as the code\n",
			oldSnap.NumCPU, newSnap.NumCPU, oldSnap.GoMaxProcs, newSnap.GoMaxProcs)
	}
	var regressions []string
	seen := make(map[string]bool, len(newSnap.Benchmarks))
	for _, nb := range newSnap.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "  %-44s new benchmark (%.0f ns/op)\n", nb.Name, nb.NsPerOp)
			continue
		}
		dNs := pctDelta(ob.NsPerOp, nb.NsPerOp)
		dAllocs := pctDelta(ob.AllocsPerOp, nb.AllocsPerOp)
		fmt.Fprintf(w, "  %-44s ns/op %.0f -> %.0f (%s)  allocs/op %.0f -> %.0f (%s)\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, fmtDelta(dNs),
			ob.AllocsPerOp, nb.AllocsPerOp, fmtDelta(dAllocs))
		if dNs > regressionThreshold {
			regressions = append(regressions, fmt.Sprintf("%s ns/op %s", nb.Name, fmtDelta(dNs)))
		}
		if dAllocs > regressionThreshold {
			regressions = append(regressions, fmt.Sprintf("%s allocs/op %s", nb.Name, fmtDelta(dAllocs)))
		}
	}
	for _, ob := range oldSnap.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "  %-44s removed\n", ob.Name)
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION (> %+.0f%%): %s\n", regressionThreshold*100, r)
		}
		return fmt.Errorf("%d regression(s): %w", len(regressions), errRegression)
	}
	fmt.Fprintln(w, "no regressions over threshold")
	return nil
}

// checkOverhead enforces intra-snapshot overhead budgets. spec is a
// comma-separated list of Base=Variant:pct entries; each requires the
// Variant benchmark's ns_per_op in the snapshot at path to be at most
// (1+pct/100) times Base's. Over-budget entries report errRegression
// (exit 2); a malformed spec or a missing benchmark is a hard error.
func checkOverhead(spec, path string, w io.Writer) error {
	snap, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	by := make(map[string]Benchmark, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		by[b.Name] = b
	}
	var over []string
	for _, entry := range strings.Split(spec, ",") {
		base, rest, ok := strings.Cut(entry, "=")
		variant, pctStr, ok2 := strings.Cut(rest, ":")
		if !ok || !ok2 || base == "" || variant == "" {
			return fmt.Errorf("malformed -overhead entry %q (want Base=Variant:pct)", entry)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil || pct < 0 {
			return fmt.Errorf("malformed -overhead budget in %q: %q is not a non-negative percentage", entry, pctStr)
		}
		ob, ok := by[base]
		if !ok {
			return fmt.Errorf("%s: benchmark %q not in snapshot", path, base)
		}
		nb, ok := by[variant]
		if !ok {
			return fmt.Errorf("%s: benchmark %q not in snapshot", path, variant)
		}
		d := pctDelta(ob.NsPerOp, nb.NsPerOp)
		fmt.Fprintf(w, "  %s vs %s: ns/op %.0f -> %.0f (%s), budget +%.0f%%\n",
			variant, base, ob.NsPerOp, nb.NsPerOp, fmtDelta(d), pct)
		if d > pct/100 {
			over = append(over, fmt.Sprintf("%s ns/op %s over %s (budget +%.0f%%)", variant, fmtDelta(d), base, pct))
		}
	}
	if len(over) > 0 {
		for _, r := range over {
			fmt.Fprintf(w, "OVERHEAD: %s\n", r)
		}
		return fmt.Errorf("%d overhead budget(s) exceeded: %w", len(over), errRegression)
	}
	fmt.Fprintln(w, "all overhead budgets met")
	return nil
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkRunFastCodeRedII-8   1   1234567890 ns/op   64 B/op   2 allocs/op
//
// Non-benchmark lines (headers, PASS, ok) report ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	hasNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			hasNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if !hasNs {
		return Benchmark{}, false
	}
	return b, true
}
