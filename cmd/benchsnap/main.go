// Command benchsnap parses `go test -bench` output from stdin and writes a
// JSON benchmark snapshot — the machine-readable record scripts/bench.sh
// commits as BENCH_<date>.json so performance regressions are visible in
// review diffs.
//
// Usage:
//
//	go test -run '^$' -bench 'CodeRedII' -benchmem . | benchsnap -date 2026-08-05 -o BENCH_2026-08-05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem (0 otherwise).
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the committed benchmark record.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	var (
		out  = fs.String("o", "", "output file (default stdout)")
		date = fs.String("date", "", "snapshot date (default today, UTC)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}

	snap := Snapshot{
		Date:      *date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (run with `go test -bench`)")
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkRunFastCodeRedII-8   1   1234567890 ns/op   64 B/op   2 allocs/op
//
// Non-benchmark lines (headers, PASS, ok) report ok=false.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The remainder is value/unit pairs.
	hasNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			hasNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	if !hasNs {
		return Benchmark{}, false
	}
	return b, true
}
