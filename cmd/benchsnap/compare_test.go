package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, snap Snapshot) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", Snapshot{
		Date: "2026-08-01",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkSteady", NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "BenchmarkSlower", NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "BenchmarkAllocs", NsPerOp: 1000, AllocsPerOp: 100},
			{Name: "BenchmarkRetired", NsPerOp: 5},
		},
	})
	newPath := writeSnapshot(t, dir, "new.json", Snapshot{
		Date: "2026-08-05",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkSteady", NsPerOp: 1100, AllocsPerOp: 11}, // +10%: inside threshold
			{Name: "BenchmarkSlower", NsPerOp: 1400, AllocsPerOp: 10}, // +40% ns: regression
			{Name: "BenchmarkAllocs", NsPerOp: 900, AllocsPerOp: 150}, // +50% allocs: regression
			{Name: "BenchmarkAdded", NsPerOp: 7},
		},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression", err)
	}
	report := out.String()
	for _, want := range []string{
		"REGRESSION", "BenchmarkSlower ns/op", "BenchmarkAllocs allocs/op",
		"BenchmarkAdded", "new benchmark", "BenchmarkRetired", "removed",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "BenchmarkSteady ns/op") {
		t.Errorf("within-threshold benchmark flagged:\n%s", report)
	}
}

func TestCompareCleanPasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10}},
	})
	newPath := writeSnapshot(t, dir, "new.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 600, AllocsPerOp: 10}},
	})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("clean comparison failed: %v", err)
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

func TestCompareZeroBaselineAllocs(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: 0}},
	})
	newPath := writeSnapshot(t, dir, "new.json", Snapshot{
		Benchmarks: []Benchmark{{Name: "BenchmarkZero", NsPerOp: 100, AllocsPerOp: 3}},
	})
	var out bytes.Buffer
	err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("zero-alloc baseline growing to 3 allocs must regress, got %v", err)
	}
}

// TestCompareHostParallelismCaveat: comparing snapshots taken on hosts with
// different CPU counts or GOMAXPROCS must announce the mismatch, since
// parallel-benchmark deltas then confound host and code changes. Matched
// hosts get no caveat.
func TestCompareHostParallelismCaveat(t *testing.T) {
	dir := t.TempDir()
	bench := []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000}}
	oldPath := writeSnapshot(t, dir, "old.json", Snapshot{NumCPU: 1, GoMaxProcs: 1, Benchmarks: bench})
	newPath := writeSnapshot(t, dir, "new.json", Snapshot{NumCPU: 8, GoMaxProcs: 8, Benchmarks: bench})
	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "caveat: host parallelism differs") {
		t.Errorf("missing parallelism caveat:\n%s", out.String())
	}

	samePath := writeSnapshot(t, dir, "same.json", Snapshot{NumCPU: 1, GoMaxProcs: 1, Benchmarks: bench})
	out.Reset()
	if err := run([]string{"-compare", oldPath, samePath}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "caveat") {
		t.Errorf("caveat printed for matched hosts:\n%s", out.String())
	}
}

func TestCompareArgValidation(t *testing.T) {
	err := run([]string{"-compare", "only-one.json"}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil || errors.Is(err, errRegression) {
		t.Fatalf("want usage error, got %v", err)
	}
}
