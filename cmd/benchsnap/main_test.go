package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkRunFastCodeRedII-8         	       2	 251234567 ns/op	11847040 B/op	   28927 allocs/op
BenchmarkRunExactCodeRedII-8        	       3	    504098 ns/op	   25904 B/op	      48 allocs/op
BenchmarkNoMem-8                    	     100	      1234 ns/op
PASS
ok  	repro	1.234s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-date", "2026-08-05"}, strings.NewReader(sampleBenchOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Date != "2026-08-05" {
		t.Errorf("date = %q", snap.Date)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	first := snap.Benchmarks[0]
	if first.Name != "BenchmarkRunFastCodeRedII" {
		t.Errorf("name = %q (suffix should be stripped)", first.Name)
	}
	if first.Iterations != 2 || first.NsPerOp != 251234567 {
		t.Errorf("iterations/ns = %d/%v", first.Iterations, first.NsPerOp)
	}
	if first.BytesPerOp != 11847040 || first.AllocsPerOp != 28927 {
		t.Errorf("mem stats = %v/%v", first.BytesPerOp, first.AllocsPerOp)
	}
	noMem := snap.Benchmarks[2]
	if noMem.BytesPerOp != 0 || noMem.AllocsPerOp != 0 {
		t.Errorf("benchmem-less line should have zero mem stats, got %v/%v",
			noMem.BytesPerOp, noMem.AllocsPerOp)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &out); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"goos: linux",
		"Benchmark",                     // no fields
		"BenchmarkX notanumber 5 ns/op", // bad iteration count
		"BenchmarkX 5 12 B/op",          // no ns/op pair
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) unexpectedly succeeded", line)
		}
	}
}

// overheadSnapshot dumps a minimal snapshot file for gate tests.
func overheadSnapshot(t *testing.T, benches []Benchmark) string {
	t.Helper()
	return writeSnapshot(t, t.TempDir(), "snap.json", Snapshot{Date: "2026-08-08", Benchmarks: benches})
}

func TestOverheadGate(t *testing.T) {
	path := overheadSnapshot(t, []Benchmark{
		{Name: "BenchmarkBase", NsPerOp: 100},
		{Name: "BenchmarkWithin", NsPerOp: 108},
		{Name: "BenchmarkOver", NsPerOp: 125},
	})

	var out bytes.Buffer
	if err := run([]string{"-overhead", "BenchmarkBase=BenchmarkWithin:10", path}, nil, &out); err != nil {
		t.Fatalf("within-budget variant failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all overhead budgets met") {
		t.Errorf("missing pass line in output:\n%s", out.String())
	}

	out.Reset()
	err := run([]string{"-overhead", "BenchmarkBase=BenchmarkWithin:10,BenchmarkBase=BenchmarkOver:10", path}, nil, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("over-budget variant: err = %v, want errRegression", err)
	}
	if !strings.Contains(out.String(), "OVERHEAD: BenchmarkOver") {
		t.Errorf("missing OVERHEAD line:\n%s", out.String())
	}

	// A faster variant is never over budget, even with a 0% allowance.
	out.Reset()
	if err := run([]string{"-overhead", "BenchmarkOver=BenchmarkBase:0", path}, nil, &out); err != nil {
		t.Fatalf("faster variant failed a 0%% budget: %v", err)
	}
}

func TestOverheadGateHardErrors(t *testing.T) {
	path := overheadSnapshot(t, []Benchmark{{Name: "BenchmarkBase", NsPerOp: 100}})
	for name, args := range map[string][]string{
		"missing variant": {"-overhead", "BenchmarkBase=BenchmarkGone:10", path},
		"missing base":    {"-overhead", "BenchmarkGone=BenchmarkBase:10", path},
		"malformed spec":  {"-overhead", "BenchmarkBase:10", path},
		"bad percentage":  {"-overhead", "BenchmarkBase=BenchmarkBase:x", path},
		"no file":         {"-overhead", "BenchmarkBase=BenchmarkBase:10"},
	} {
		err := run(args, nil, &bytes.Buffer{})
		if err == nil {
			t.Errorf("%s: expected a hard error", name)
		}
		if errors.Is(err, errRegression) {
			t.Errorf("%s: got errRegression, want a hard error (must not exit 2)", name)
		}
	}
}
