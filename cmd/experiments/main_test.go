package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"repro/internal/sweep"
)

func TestRunListAndSingleExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if err := run(context.Background(), []string{"-run", "table1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := run(context.Background(), []string{"-run", "table2", "-plot"}); err != nil {
		t.Fatalf("table2 with plot: %v", err)
	}
	// A figure-producing experiment through the plot path.
	if err := run(context.Background(), []string{"-run", "fig3", "-plot", "-width", "40", "-height", "10"}); err != nil {
		t.Fatalf("fig3 with plot: %v", err)
	}
	if err := run(context.Background(), []string{"-run", "fig5a,table1"}); err != nil {
		t.Fatalf("comma-separated ids: %v", err)
	}
}

func TestRunMarkdownReport(t *testing.T) {
	path := t.TempDir() + "/report.md"
	if err := run(context.Background(), []string{"-run", "table1,fig3", "-md", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Hotspots experiment report", "## table1", "## fig3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestRunExtFaultsCheckpointed runs the fault-injection sweep twice against
// one checkpoint file: the second pass replays every grid point from the
// cache and the Markdown reports must match byte for byte.
func TestRunExtFaultsCheckpointed(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "faults.ckpt")
	md1 := filepath.Join(dir, "report1.md")
	md2 := filepath.Join(dir, "report2.md")
	if err := run(context.Background(), []string{"-run", "ext-faults", "-md", md1, "-checkpoint", ckpt, "-retries", "1", "-salvage"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-run", "ext-faults", "-md", md2, "-checkpoint", ckpt}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(md1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(md2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("checkpointed rerun diverged:\n--- first\n%s--- second\n%s", first, second)
	}
	cp, err := sweep.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Quick-scale grid: 2 burst levels x 4 outage fractions.
	if cp.Len() != 8 {
		t.Errorf("checkpoint holds %d grid points, want 8", cp.Len())
	}
	corrupt := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(corrupt, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-run", "table1", "-checkpoint", corrupt}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(context.Background(), []string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestExtFaultsResumeAfterInterrupt cancels an ext-faults sweep once the
// first grid points have been checkpointed (the signal.NotifyContext path in
// main), then resumes against the same file: the checkpoint must stay valid
// across the interrupt and the resumed report must match an uninterrupted
// run byte for byte.
func TestExtFaultsResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "resume.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if cp, err := sweep.OpenCheckpoint(ckpt); err == nil && cp.Len() >= 1 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		cancel()
	}()
	interrupted := filepath.Join(dir, "interrupted.md")
	err := run(ctx, []string{"-run", "ext-faults", "-md", interrupted, "-checkpoint", ckpt})
	if err == nil {
		// The cancel raced the tail of the sweep and lost; the resume path
		// below still exercises replay-from-checkpoint.
		t.Log("sweep finished before the interrupt landed")
	}

	// Whatever the interrupt left behind must be a loadable checkpoint with
	// only whole grid points.
	cp, cperr := sweep.OpenCheckpoint(ckpt)
	if cperr != nil {
		t.Fatalf("checkpoint unreadable after interrupt: %v", cperr)
	}
	if cp.Len() > 8 {
		t.Fatalf("checkpoint holds %d entries, want at most the 8 grid points", cp.Len())
	}

	resumedMD := filepath.Join(dir, "resumed.md")
	if err := run(context.Background(), []string{"-run", "ext-faults", "-md", resumedMD, "-checkpoint", ckpt}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	freshMD := filepath.Join(dir, "fresh.md")
	if err := run(context.Background(), []string{"-run", "ext-faults", "-md", freshMD, "-checkpoint", filepath.Join(dir, "fresh.ckpt")}); err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	resumed, err := os.ReadFile(resumedMD)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(freshMD)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, fresh) {
		t.Errorf("resumed report diverged from uninterrupted run:\n--- resumed\n%s--- fresh\n%s", resumed, fresh)
	}
	if cp, err := sweep.OpenCheckpoint(ckpt); err != nil || cp.Len() != 8 {
		t.Errorf("checkpoint after resume: len=%d err=%v, want all 8 grid points", cp.Len(), err)
	}
}
