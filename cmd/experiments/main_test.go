package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunListAndSingleExperiment(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if err := run([]string{"-run", "table1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := run([]string{"-run", "table2", "-plot"}); err != nil {
		t.Fatalf("table2 with plot: %v", err)
	}
	// A figure-producing experiment through the plot path.
	if err := run([]string{"-run", "fig3", "-plot", "-width", "40", "-height", "10"}); err != nil {
		t.Fatalf("fig3 with plot: %v", err)
	}
	if err := run([]string{"-run", "fig5a,table1"}); err != nil {
		t.Fatalf("comma-separated ids: %v", err)
	}
}

func TestRunMarkdownReport(t *testing.T) {
	path := t.TempDir() + "/report.md"
	if err := run([]string{"-run", "table1,fig3", "-md", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Hotspots experiment report", "## table1", "## fig3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
