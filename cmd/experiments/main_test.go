package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

func TestRunListAndSingleExperiment(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if err := run([]string{"-run", "table1"}); err != nil {
		t.Fatalf("table1: %v", err)
	}
	if err := run([]string{"-run", "table2", "-plot"}); err != nil {
		t.Fatalf("table2 with plot: %v", err)
	}
	// A figure-producing experiment through the plot path.
	if err := run([]string{"-run", "fig3", "-plot", "-width", "40", "-height", "10"}); err != nil {
		t.Fatalf("fig3 with plot: %v", err)
	}
	if err := run([]string{"-run", "fig5a,table1"}); err != nil {
		t.Fatalf("comma-separated ids: %v", err)
	}
}

func TestRunMarkdownReport(t *testing.T) {
	path := t.TempDir() + "/report.md"
	if err := run([]string{"-run", "table1,fig3", "-md", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Hotspots experiment report", "## table1", "## fig3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestRunExtFaultsCheckpointed runs the fault-injection sweep twice against
// one checkpoint file: the second pass replays every grid point from the
// cache and the Markdown reports must match byte for byte.
func TestRunExtFaultsCheckpointed(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "faults.ckpt")
	md1 := filepath.Join(dir, "report1.md")
	md2 := filepath.Join(dir, "report2.md")
	if err := run([]string{"-run", "ext-faults", "-md", md1, "-checkpoint", ckpt, "-retries", "1", "-salvage"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "ext-faults", "-md", md2, "-checkpoint", ckpt}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(md1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(md2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("checkpointed rerun diverged:\n--- first\n%s--- second\n%s", first, second)
	}
	cp, err := sweep.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Quick-scale grid: 2 burst levels x 4 outage fractions.
	if cp.Len() != 8 {
		t.Errorf("checkpoint holds %d grid points, want 8", cp.Len())
	}
	corrupt := filepath.Join(dir, "corrupt.ckpt")
	if err := os.WriteFile(corrupt, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "table1", "-checkpoint", corrupt}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "medium"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
