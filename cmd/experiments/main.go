// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all            # every table and figure, quick scale
//	experiments -run fig5c -scale full -plot
//	experiments -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cmd/internal/obsflags"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/textplot"
)

func main() {
	// SIGINT/SIGTERM cancel the sweep context: in-flight grid points stop
	// at tick boundaries, completed points are already flushed to the
	// -checkpoint file, and a rerun resumes from them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID  = fs.String("run", "all", "experiment id (see -list) or 'all'")
		seed   = fs.Uint64("seed", 1, "simulation seed")
		scale  = fs.String("scale", "quick", "quick|full")
		plot   = fs.Bool("plot", false, "render figures as ASCII charts")
		width  = fs.Int("width", 72, "plot width")
		height = fs.Int("height", 18, "plot height")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		md     = fs.String("md", "", "write a Markdown report to this file instead of stdout text")

		checkpoint  = fs.String("checkpoint", "", "checkpoint file: sweep experiments resume from it instead of recomputing finished grid points")
		retries     = fs.Int("retries", 0, "retry failed sweep tasks this many times (deterministic exponential backoff)")
		taskTimeout = fs.Duration("task-timeout", 0, "per-task deadline for sweep tasks (0 = none)")
		salvage     = fs.Bool("salvage", false, "keep completed sweep results when some tasks fail")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return nil
	}
	sc := experiments.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scale)
	}
	ids := experiments.Names()
	if *runID != "all" {
		ids = strings.Split(*runID, ",")
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	eobs := &experiments.Obs{
		Registry: sess.Registry,
		Tracer:   sess.Tracer,
		Progress: sess.ProgressFunc(),
		Trace:    sess.Trace,
		Ctx:      ctx,
		Sweep: sweep.Options{
			Retries:     *retries,
			TaskTimeout: *taskTimeout,
			Salvage:     *salvage,
		},
	}
	eobs.Sweep.Trace = sess.Trace
	sess.DescribeRun("experiments", *seed, 0, fmt.Sprintf("run=%s scale=%s", *runID, *scale))
	if *retries > 0 {
		eobs.Sweep.Backoff = sweep.ExpBackoff(time.Second, 30*time.Second)
	}
	if *checkpoint != "" {
		cp, err := sweep.OpenCheckpoint(*checkpoint)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		eobs.Checkpoint = cp
	}
	var report *os.File
	if *md != "" {
		var err error
		report, err = os.Create(*md)
		if err != nil {
			return err
		}
		defer report.Close()
		fmt.Fprintf(report, "# Hotspots experiment report (seed %d, scale %s)\n\n", *seed, *scale)
	}
	for i, id := range ids {
		id = strings.TrimSpace(id)
		sess.Progressf("experiment %s (%d/%d)", id, i+1, len(ids))
		res, err := experiments.RunObserved(id, *seed, sc, eobs)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if report != nil {
			if err := experiments.WriteMarkdown(report, id, res); err != nil {
				return err
			}
			continue
		}
		printResult(id, res, *plot, *width, *height)
	}
	return sess.Close()
}

func printResult(id string, res *experiments.Result, plot bool, width, height int) {
	fmt.Printf("==== %s ====\n", id)
	for _, t := range res.Tables {
		fmt.Println(t.Render())
	}
	for _, f := range res.Figures {
		fmt.Printf("%s — %s\n", f.ID, f.Title)
		if !plot {
			for _, s := range f.Series {
				maxY, sumY := 0.0, 0.0
				for _, y := range s.Y {
					if y > maxY {
						maxY = y
					}
					sumY += y
				}
				mean := 0.0
				if len(s.Y) > 0 {
					mean = sumY / float64(len(s.Y))
				}
				fmt.Printf("  series %-28s points=%-6d max=%-10.4g mean=%.4g\n",
					s.Name, len(s.Y), maxY, mean)
			}
			continue
		}
		var ts []textplot.Series
		for _, s := range f.Series {
			d := experiments.Downsample(s, width)
			ts = append(ts, textplot.Series{Name: d.Name, X: d.X, Y: d.Y})
		}
		fmt.Println(textplot.Render(
			fmt.Sprintf("y: %s, x: %s", f.YLabel, f.XLabel),
			ts, textplot.Options{Width: width, Height: height}))
	}
	for _, n := range res.Notes {
		fmt.Println("note:", n)
	}
	fmt.Println()
}
