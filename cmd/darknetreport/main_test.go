package main

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/sensor"
)

func TestRunWorms(t *testing.T) {
	for _, args := range [][]string{
		{"-worm", "codered2", "-own", "192.168.0.100", "-probes", "100000"},
		{"-worm", "slammer", "-variant", "1", "-probes", "100000"},
		{"-worm", "blaster", "-own", "141.212.10.5", "-tick", "140000", "-probes", "100000"},
		{"-worm", "uniform", "-probes", "100000"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunWritesSnapshots(t *testing.T) {
	dir := t.TempDir()
	jsonPath := dir + "/snap.json"
	binPath := dir + "/snap.bin"
	if err := run([]string{
		"-worm", "uniform", "-probes", "50000",
		"-json", jsonPath, "-snapshot", binPath,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := sensor.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON sensor.Snapshot
	if err := json.Unmarshal(data, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if len(fromJSON.Blocks) != len(snap.Blocks) {
		t.Error("JSON and binary snapshots disagree")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-worm", "nope", "-probes", "10"}); err == nil {
		t.Error("unknown worm accepted")
	}
	if err := run([]string{"-own", "not-an-ip"}); err == nil {
		t.Error("bad address accepted")
	}
	if err := run([]string{"-worm", "slammer", "-variant", "7", "-probes", "10"}); err == nil {
		t.Error("bad variant accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
