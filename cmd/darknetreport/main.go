// Command darknetreport simulates a quarantined infected host (CodeRedII,
// Slammer, or Blaster) probing the IMS darknet geometry and reports what
// each sensor block observed — the per-block view behind Figures 1–4.
//
// Usage:
//
//	darknetreport -worm codered2 -own 192.168.0.100 -probes 7567361
//	darknetreport -worm slammer -variant 1 -probes 26000000
//	darknetreport -worm blaster -own 141.212.10.5 -tick 140000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/cmd/internal/obsflags"
	"repro/internal/core"
	"repro/internal/ipv4"
	"repro/internal/sensor"
	"repro/internal/textplot"
	"repro/internal/worm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "darknetreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("darknetreport", flag.ContinueOnError)
	var (
		wormName = fs.String("worm", "codered2", "codered2|slammer|blaster|uniform")
		own      = fs.String("own", "18.31.0.5", "infected host's own address")
		probes   = fs.Uint64("probes", 7567093, "probes to simulate")
		variant  = fs.Int("variant", 1, "Slammer sqlsort.dll variant (0-2)")
		tick     = fs.Uint("tick", 140000, "Blaster GetTickCount() seed (ms)")
		seed     = fs.Uint64("seed", 1, "PRNG seed (codered2/slammer/uniform)")
		jsonOut  = fs.String("json", "", "write the observation snapshot as JSON to this file ('-' for stdout)")
		binOut   = fs.String("snapshot", "", "write the observation snapshot in binary form to this file")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ownAddr, err := ipv4.ParseAddr(*own)
	if err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()

	var gen worm.TargetGenerator
	switch *wormName {
	case "codered2":
		gen = worm.NewCodeRedII(ownAddr, uint32(*seed))
	case "slammer":
		if *variant < 0 || *variant > 2 {
			return fmt.Errorf("variant %d out of range [0,2]", *variant)
		}
		gen = worm.NewSlammer(*variant, uint32(*seed))
	case "blaster":
		gen = worm.NewBlaster(ownAddr, uint32(*tick))
	case "witty":
		gen = worm.NewWitty(uint32(*seed))
	case "uniform":
		gen = worm.NewUniform(*seed)
	default:
		return fmt.Errorf("unknown worm %q", *wormName)
	}

	fleet := sensor.MustNewFleet(sensor.DefaultIMSBlocks())
	probesCtr := sess.Registry.Counter("darknet_probes_total", "worm", *wormName)
	monitoredCtr := sess.Registry.Counter("darknet_probes_monitored_total", "worm", *wormName)
	privateCtr := sess.Registry.Counter("darknet_probes_private_total", "worm", *wormName)
	every := *probes / 10
	if every == 0 {
		every = 1
	}
	var monitored, private uint64
	for i := uint64(0); i < *probes; i++ {
		dst := gen.Next()
		probesCtr.Inc()
		if (i+1)%every == 0 {
			sess.Progressf("probes %d/%d monitored=%d", i+1, *probes, monitored)
		}
		if dst.IsPrivate() {
			private++
			privateCtr.Inc()
			continue
		}
		if fleet.Observe(ownAddr, dst) {
			monitored++
			monitoredCtr.Inc()
		}
	}

	fmt.Printf("worm=%s own=%s probes=%d monitored=%d (%.4f%%) private=%d (%.1f%%)\n",
		*wormName, ownAddr, *probes, monitored,
		100*float64(monitored)/float64(*probes), private,
		100*float64(private)/float64(*probes))

	var labels []string
	var values []float64
	var concat []uint64
	for _, s := range fleet.Sensors() {
		labels = append(labels, s.Block().String())
		values = append(values, float64(s.TotalAttempts()))
		sess.Registry.Gauge("darknet_block_attempts", "block", s.Block().String()).
			Set(float64(s.TotalAttempts()))
		for _, st := range s.PerSlash24() {
			concat = append(concat, st.Attempts)
		}
	}
	fmt.Println(textplot.Bars("attempts per sensor block:", labels, values, 48))

	rep := core.Analyze(concat)
	fmt.Printf("per-/24 non-uniformity: chi2=%.0f (df=%d) Gini=%.3f spread=%.1f orders hotspots=%d uniform=%v\n",
		rep.ChiSquare, rep.DF, rep.Gini, rep.SpreadOrders, len(rep.Hotspots), rep.IsUniform())

	if *jsonOut != "" {
		if err := writeJSONSnapshot(fleet.Snapshot(), *jsonOut); err != nil {
			return err
		}
	}
	if *binOut != "" {
		f, err := os.Create(*binOut)
		if err != nil {
			return err
		}
		if err := fleet.Snapshot().WriteBinary(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return sess.Close()
}

func writeJSONSnapshot(snap sensor.Snapshot, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
