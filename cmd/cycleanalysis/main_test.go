package main

import "testing"

func TestRunAllVariants(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleVariantWithVerify(t *testing.T) {
	if err := run([]string{"-variant", "1", "-verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomMap(t *testing.T) {
	if err := run([]string{"-a", "214013", "-b", "2531011"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-a", "214013", "-b", "2531011", "-verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-variant", "9"}); err == nil {
		t.Error("bad variant accepted")
	}
	if err := run([]string{"-a", "6", "-b", "1"}); err == nil {
		t.Error("invalid multiplier accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
