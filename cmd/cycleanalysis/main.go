// Command cycleanalysis prints the exact cycle structure of the Slammer
// worm's target-generation LCG (or any affine map mod 2^32 given -a/-b),
// the analysis behind Figures 2 and 3(c).
//
// Usage:
//
//	cycleanalysis                     # all three Slammer variants
//	cycleanalysis -variant 1 -verify  # one variant + brute-force check at 2^16
//	cycleanalysis -a 214013 -b 2531011
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/cmd/internal/obsflags"
	"repro/internal/cycle"
	"repro/internal/textplot"
	"repro/internal/worm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cycleanalysis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cycleanalysis", flag.ContinueOnError)
	var (
		variant = fs.Int("variant", -1, "Slammer sqlsort.dll variant (0-2), -1 = all")
		aFlag   = fs.Uint("a", 0, "custom multiplier (with -b)")
		bFlag   = fs.Uint("b", 0, "custom increment (with -a)")
		verify  = fs.Bool("verify", false, "brute-force verify the census at modulus 2^16")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	if *aFlag != 0 {
		m, err := cycle.NewMap(uint32(*aFlag), uint32(*bFlag), 32)
		if err != nil {
			return err
		}
		printCensus(sess, fmt.Sprintf("custom map a=%d b=%#x", *aFlag, *bFlag), "custom", m)
		if *verify {
			if err := verifyCensus(uint32(*aFlag), uint32(*bFlag)); err != nil {
				return err
			}
		}
		return sess.Close()
	}
	variants := []int{0, 1, 2}
	if *variant >= 0 {
		if *variant > 2 {
			return fmt.Errorf("variant %d out of range [0,2]", *variant)
		}
		variants = []int{*variant}
	}
	for i, v := range variants {
		sess.Progressf("variant %d (%d/%d)", v, i+1, len(variants))
		b := worm.SlammerIncrements()[v]
		m := worm.SlammerMap(v)
		printCensus(sess, fmt.Sprintf("Slammer variant %d (IAT %#x → b=%#x)", v, worm.SqlsortIATs[v], b),
			fmt.Sprintf("variant%d", v), m)
		if *verify {
			if err := verifyCensus(worm.SlammerMultiplier, b); err != nil {
				return err
			}
		}
	}
	return sess.Close()
}

func printCensus(sess *obsflags.Session, title, metricMap string, m cycle.Map) {
	fmt.Printf("%s\n", title)
	census := m.Census()
	var labels []string
	var values []float64
	var total uint64
	for _, c := range census {
		labels = append(labels, fmt.Sprintf("len 2^%2d ×%d", log2(c.Length), c.Cycles))
		values = append(values, float64(c.States))
		sess.Registry.Gauge("cycle_states", "map", metricMap,
			"length", fmt.Sprintf("%d", c.Length)).Set(float64(c.States))
		total += c.Cycles
	}
	sess.Registry.Gauge("cycle_total_cycles", "map", metricMap).Set(float64(total))
	fmt.Printf("  total cycles: %d (α=%d, β=%d)\n", total, m.Alpha(), m.Beta())
	fmt.Println(textplot.Bars("  states per cycle-length class:", labels, values, 40))
	fmt.Println()
}

func verifyCensus(a, b uint32) error {
	m, err := cycle.NewMap(a, b, 16)
	if err != nil {
		return err
	}
	want := m.BruteForceCensus()
	got := make(map[uint64]uint64)
	for _, c := range m.Census() {
		got[c.Length] += c.Cycles
	}
	lengths := make([]uint64, 0, len(want))
	for l := range want {
		lengths = append(lengths, l)
	}
	sort.Slice(lengths, func(i, j int) bool { return lengths[i] > lengths[j] })
	fmt.Println("  brute-force verification at modulus 2^16:")
	for _, l := range lengths {
		status := "OK"
		if got[l] != want[l] {
			status = fmt.Sprintf("MISMATCH (closed-form %d)", got[l])
		}
		fmt.Printf("    length %8d: %4d cycles  %s\n", l, want[l], status)
		if got[l] != want[l] {
			return fmt.Errorf("census mismatch at length %d", l)
		}
	}
	fmt.Println()
	return nil
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
