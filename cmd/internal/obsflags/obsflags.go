// Package obsflags wires the shared observability surface into every CLI:
// -metrics (Prometheus-text or JSON snapshot on exit), -trace (flight-
// recorder NDJSON dump plus provenance manifest on exit), -progress
// (stderr progress lines), and -pprof (CPU profile). The simulation
// packages stay wall-clock-free; this package is where wall time is
// allowed to exist, so tracers built here measure real elapsed seconds.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Flags holds the parsed shared observability flag values.
type Flags struct {
	Metrics  string
	JSON     bool
	Trace    string
	Progress bool
	PProf    string
}

// Register installs -metrics, -metrics-json, -trace, -progress, and
// -pprof on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "", "write a metric snapshot to this file on exit ('-' for stderr)")
	fs.BoolVar(&f.JSON, "metrics-json", false, "write the -metrics snapshot as JSON instead of Prometheus text")
	fs.StringVar(&f.Trace, "trace", "", "record a flight-recorder trace and write it to this NDJSON file on exit (plus FILE.manifest.json)")
	fs.BoolVar(&f.Progress, "progress", false, "print progress lines to stderr")
	fs.StringVar(&f.PProf, "pprof", "", "write a CPU profile to this file")
	return f
}

// wallClock measures wall time since session start. It lives here — and
// not in internal/ — on purpose: the simulation tree is lint-enforced
// wall-clock-free, and CLIs are the only layer allowed to observe real
// time.
type wallClock struct{ start time.Time }

//lint:deterministic wall time feeds -metrics tracer spans only, an observability side channel excluded from the byte-identity contract
func (c wallClock) Seconds() float64 { return time.Since(c.start).Seconds() }

// Session is the active observability state of one CLI run. The zero
// Registry/Tracer case (no -metrics) makes every downstream hook inert.
type Session struct {
	flags *Flags
	// Registry is non-nil when -metrics was given; pass it to sim/detect/
	// experiments configs.
	Registry *obs.Registry
	// Tracer is non-nil when -metrics was given; it spans wall time.
	Tracer *obs.Tracer
	// Trace is non-nil when -trace was given; pass it to sim/experiments
	// configs and Close dumps it with a provenance manifest.
	Trace *trace.Recorder

	mu        sync.Mutex
	manifest  trace.Manifest
	pprofFile *os.File
	closed    bool
}

// DescribeRun fills the trace manifest's run-provenance fields (driver,
// seed, workers, free-form config). No-op without -trace.
func (s *Session) DescribeRun(driver string, seed uint64, workers int, config string) {
	if s == nil || s.Trace == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest.Driver = driver
	s.manifest.Seed = seed
	s.manifest.Workers = workers
	s.manifest.Config = config
}

// Start opens the session: creates the registry and wall-clock tracer when
// -metrics is set, and starts CPU profiling when -pprof is set. Callers
// should `defer sess.Close()` for early-error cleanup and `return
// sess.Close()` on the success path — Close is idempotent.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: f}
	if f.Metrics != "" {
		s.Registry = obs.NewRegistry()
		s.Tracer = obs.NewTracer(wallClock{start: time.Now()}, s.Registry)
	}
	if f.Trace != "" {
		s.Trace = trace.NewRecorder(0)
	}
	if f.PProf != "" {
		file, err := os.Create(f.PProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			_ = file.Close()
			return nil, err
		}
		s.pprofFile = file
	}
	return s, nil
}

// Close stops profiling and writes the metric snapshot. Idempotent: the
// second and later calls return nil, so it is safe to both defer it and
// call it explicitly.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.pprofFile != nil {
		pprof.StopCPUProfile()
		if err := s.pprofFile.Close(); err != nil {
			return err
		}
	}
	if s.Trace != nil {
		if err := s.dumpTraceLocked(); err != nil {
			return err
		}
	}
	if s.Registry == nil {
		return nil
	}
	var w io.Writer = os.Stderr
	var file *os.File
	if s.flags.Metrics != "-" {
		var err error
		file, err = os.Create(s.flags.Metrics)
		if err != nil {
			return err
		}
		w = file
	}
	var err error
	if s.flags.JSON {
		err = s.Registry.WriteJSON(w)
	} else {
		err = s.Registry.WritePrometheus(w)
	}
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// dumpTraceLocked writes the recorder's NDJSON to the -trace file and its
// provenance manifest (toolchain, event counts, DescribeRun fields) next
// to it as FILE.manifest.json.
func (s *Session) dumpTraceLocked() error {
	f, err := os.Create(s.flags.Trace)
	if err != nil {
		return err
	}
	werr := s.Trace.WriteNDJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	m := trace.NewManifest(s.Trace)
	m.Driver = s.manifest.Driver
	m.Seed = s.manifest.Seed
	m.Workers = s.manifest.Workers
	m.Config = s.manifest.Config
	mf, err := os.Create(s.flags.Trace + ".manifest.json")
	if err != nil {
		return err
	}
	werr = m.WriteJSON(mf)
	if cerr := mf.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Progressf prints one progress line to stderr when -progress is on. Safe
// for concurrent use.
func (s *Session) Progressf(format string, args ...any) {
	if s == nil || !s.flags.Progress {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(os.Stderr, "progress: "+format+"\n", args...)
}

// ProgressFunc returns a stage-progress callback (the shape
// internal/experiments.Obs.Progress expects), or nil when -progress is
// off — so configs stay zero-cost.
func (s *Session) ProgressFunc() func(stage string, done, total int) {
	if s == nil || !s.flags.Progress {
		return nil
	}
	return func(stage string, done, total int) {
		s.Progressf("%s %d/%d", stage, done, total)
	}
}

// TickProgress returns a per-tick progress reporter that prints every
// interval simulated seconds (and at t=0 the first time), for wiring into
// sim OnTick callbacks; it returns nil when -progress is off.
func (s *Session) TickProgress(interval float64) func(t float64, infected int) {
	if s == nil || !s.flags.Progress {
		return nil
	}
	if interval <= 0 {
		interval = 1
	}
	next := 0.0
	return func(t float64, infected int) {
		if t < next {
			return
		}
		for next <= t {
			next += interval
		}
		s.Progressf("t=%.0fs infected=%d", t, infected)
	}
}
