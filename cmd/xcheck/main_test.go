package main

import (
	"strings"
	"testing"
)

func TestRunCleanBatch(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-seed", "1"}, &out); err != nil {
		t.Fatalf("clean batch failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "5 scenarios checked, 0 skipped (budget), 0 violations, 0 harness errors") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

func TestRunVerbose(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "2", "-seed", "3", "-v"}, &out); err != nil {
		t.Fatalf("verbose batch failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"seed 3: ok", "seed 4: ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "0"}, &out); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunTinyBudget(t *testing.T) {
	// A 1ns budget expires before any scenario starts; the sweep must
	// report that nothing completed rather than claiming a clean pass.
	var out strings.Builder
	err := run([]string{"-n", "3", "-seed", "1", "-budget", "1ns"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no scenario completed") {
		t.Fatalf("expected budget-exhausted error, got %v\noutput:\n%s", err, out.String())
	}
}
