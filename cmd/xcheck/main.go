// Command xcheck sweeps seeded cross-check scenarios through the oracle
// harness (internal/xcheck): each seed expands into a full scenario —
// worm, population, NAT, environment, sensors, faults — and every run is
// audited for byte-identity, invariants, exact-vs-fast agreement, and
// analytic-model tracking. Violating scenarios are shrunk to minimal
// reproducers and, with -emit, written as fuzz corpus seeds.
//
// Usage:
//
//	xcheck -n 100 -seed 1                    # check seeds 1..100
//	xcheck -n 500 -budget 5m -emit repro/    # bounded sweep, keep reproducers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/cmd/internal/obsflags"
	"repro/internal/sweep"
	"repro/internal/xcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xcheck", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 25, "scenarios to check (seeds seed..seed+n-1)")
		seed     = fs.Uint64("seed", 1, "first scenario seed")
		budget   = fs.Duration("budget", 0, "wall-clock budget; scenarios not started in time are skipped (0 = unbounded)")
		workers  = fs.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS)")
		emit     = fs.String("emit", "", "directory for shrunken-reproducer corpus seeds (empty = don't write)")
		traceDir = fs.String("trace-dir", ".trace", "directory for flight-recorder dumps of violating scenarios (empty = don't dump)")
		verbose  = fs.Bool("v", false, "print every scenario, not just violations")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return errors.New("-n must be positive")
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	seeds := make([]uint64, *n)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	sess.Progressf("checking %d scenarios from seed %d", *n, *seed)
	results, sweepErr := sweep.MapResults(ctx, seeds,
		func(_ context.Context, id uint64) (*xcheck.Report, error) {
			return xcheck.CheckScenario(xcheck.Generate(id))
		},
		sweep.Options{
			Workers: *workers,
			Salvage: true,
			TaskLabel: func(i int) string {
				return fmt.Sprintf("seed %d", seeds[i])
			},
		})

	var checked, skipped, violations, harnessErrs int
	scenarios := sess.Registry.Counter("xcheck_scenarios_total", "result", "ok")
	violCount := sess.Registry.Counter("xcheck_scenarios_total", "result", "violation")
	for _, r := range results {
		switch {
		case errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled):
			skipped++
			continue
		case r.Err != nil:
			harnessErrs++
			fmt.Fprintf(out, "seed %d: harness error: %v\n", seeds[r.Index], r.Err)
			continue
		}
		checked++
		rep := r.Value
		if rep.Ok() {
			scenarios.Add(1)
			if *verbose {
				fmt.Fprintf(out, "seed %d: ok  worm=%s pop=%d ticks=%d infected=%d probes=%d diff=%v analytic=%v\n",
					seeds[r.Index], rep.Scenario.Worm, rep.Scenario.PopSize, rep.Ticks,
					rep.FinalInfected, rep.Probes, rep.Differential, rep.Analytic)
			}
			continue
		}
		violCount.Add(1)
		violations += len(rep.Violations)
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "seed %d [%s]: %s\n", seeds[r.Index], v.Oracle, v.Detail)
		}
		// Dump the flight recorders with provenance manifests so the
		// violation can be replayed and diffed offline (hotspottrace).
		if *traceDir != "" {
			paths, err := rep.WriteTraceArtifacts(*traceDir)
			if err != nil {
				return err
			}
			for _, p := range paths {
				fmt.Fprintf(out, "seed %d: trace artifact %s\n", seeds[r.Index], p)
			}
		}
		// Shrink against the first oracle that fired and keep the minimal
		// reproducer.
		shrunk := xcheck.Shrink(rep.Scenario, rep.Violations[0].Oracle)
		fmt.Fprintf(out, "seed %d: minimal reproducer: %s\n", seeds[r.Index], shrunk.JSON())
		if *emit != "" {
			path, err := xcheck.WriteCorpusSeed(*emit, shrunk)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "seed %d: corpus seed written to %s\n", seeds[r.Index], path)
		}
	}

	fmt.Fprintf(out, "xcheck: %d scenarios checked, %d skipped (budget), %d violations, %d harness errors\n",
		checked, skipped, violations, harnessErrs)
	if violations > 0 || harnessErrs > 0 {
		return fmt.Errorf("%d violations, %d harness errors", violations, harnessErrs)
	}
	if checked == 0 {
		return errors.New("no scenario completed inside the budget")
	}
	// A salvage sweep only errors for task failures, which are all
	// accounted for above; anything else is a harness bug.
	if sweepErr != nil {
		var me *sweep.MultiError
		if !errors.As(sweepErr, &me) {
			return sweepErr
		}
	}
	return sess.Close()
}
