// Command reprolint runs the repository's determinism and concurrency
// lint suite (internal/lint) over one or more package trees and prints
// findings as "file:line: rule: message", one per line.
//
// Usage:
//
//	reprolint [-rules rule1,rule2] [-list] [pattern ...]
//
// A pattern is a directory, or a directory followed by /... to include
// everything below it; the default is ./... . The exit status is 0 when
// the tree is clean, 1 when there are findings, and 2 on usage or parse
// errors. Findings are suppressed with a justified directive on or
// directly above the offending line:
//
//	//lint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	var (
		rules = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list  = fs.Bool("list", false, "list available rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		return 2, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	found := 0
	for _, pat := range patterns {
		root, recursive := splitPattern(pat)
		prog, err := lint.Load(root)
		if err != nil {
			return 2, err
		}
		findings := lint.Run(prog, analyzers)
		for _, f := range findings {
			if !recursive {
				// A non-recursive pattern covers only the named directory.
				dir := strings.TrimPrefix(f.Pos.Filename, "./")
				if i := strings.LastIndex(dir, "/"); i >= 0 {
					dir = dir[:i]
				} else {
					dir = "."
				}
				if dir != strings.TrimPrefix(strings.TrimSuffix(root, "/"), "./") {
					continue
				}
			}
			fmt.Fprintln(out, f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(out, "reprolint: %d finding(s)\n", found)
		return 1, nil
	}
	return 0, nil
}

// selectAnalyzers resolves the -rules flag to the analyzer subset.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Analyzers(), nil
	}
	var selected []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// splitPattern separates a package pattern into its root directory and
// whether it recurses.
func splitPattern(pat string) (root string, recursive bool) {
	if pat == "..." {
		return ".", true
	}
	if strings.HasSuffix(pat, "/...") {
		return strings.TrimSuffix(pat, "/..."), true
	}
	return pat, false
}
