// Command reprolint runs the repository's determinism and concurrency
// lint suite (internal/lint) over one or more package trees and prints
// findings as "file:line: rule: message", one per line.
//
// Usage:
//
//	reprolint [-rules rule1,rule2] [-list] [-json] [-baseline file]
//	          [-write-baseline file] [pattern ...]
//
// A pattern is a directory, or a directory followed by /... to include
// everything below it; the default is ./... . The exit status is 0 when
// the tree is clean, 1 when there are findings, and 2 on usage or parse
// errors.
//
// Findings are suppressed with a justified directive attached to the
// offending statement (on its line, or the line directly above):
//
//	//lint:ignore <rule> <reason>
//
// Determinism-taint findings may instead be discharged with a reasoned
// determinism annotation:
//
//	//lint:deterministic <why>
//
// -baseline filters findings through an accepted-findings file (keys
// rule|file|message; see internal/lint.WriteBaseline), reporting only
// fresh findings and noting stale entries; -write-baseline records the
// current findings to such a file and exits 0. -json emits the reported
// findings as a JSON array for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	var (
		rules         = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list          = fs.Bool("list", false, "list available rules and exit")
		jsonOut       = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		baselinePath  = fs.String("baseline", "", "filter findings through this accepted-findings file")
		writeBaseline = fs.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		return 2, err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []lint.Finding
	for _, pat := range patterns {
		root, recursive := splitPattern(pat)
		prog, err := lint.Load(root)
		if err != nil {
			return 2, err
		}
		for _, f := range lint.Run(prog, analyzers) {
			if !recursive && !inDirectory(f.Pos.Filename, root) {
				continue
			}
			findings = append(findings, f)
		}
	}

	if *writeBaseline != "" {
		file, err := os.Create(*writeBaseline)
		if err != nil {
			return 2, err
		}
		werr := lint.WriteBaseline(file, findings)
		if cerr := file.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return 2, werr
		}
		fmt.Fprintf(out, "reprolint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0, nil
	}

	baselined := 0
	if *baselinePath != "" {
		baseline, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			return 2, err
		}
		fresh, stale := lint.FilterBaseline(findings, baseline)
		baselined = len(findings) - len(fresh)
		findings = fresh
		for _, key := range stale {
			fmt.Fprintf(os.Stderr, "reprolint: stale baseline entry (fix landed — delete it): %s\n", key)
		}
	}

	if *jsonOut {
		if err := writeJSON(out, findings); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			if baselined > 0 {
				fmt.Fprintf(out, "reprolint: %d finding(s) (%d more baselined)\n", len(findings), baselined)
			} else {
				fmt.Fprintf(out, "reprolint: %d finding(s)\n", len(findings))
			}
		}
		return 1, nil
	}
	return 0, nil
}

// jsonFinding is the stable machine-readable finding shape.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits findings as one JSON array ([] when clean).
func writeJSON(out io.Writer, findings []lint.Finding) error {
	arr := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		arr = append(arr, jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// inDirectory reports whether file sits directly in root (non-recursive
// pattern semantics).
func inDirectory(file, root string) bool {
	dir := strings.TrimPrefix(file, "./")
	if i := strings.LastIndex(dir, "/"); i >= 0 {
		dir = dir[:i]
	} else {
		dir = "."
	}
	return dir == strings.TrimPrefix(strings.TrimSuffix(root, "/"), "./")
}

// selectAnalyzers resolves the -rules flag to the analyzer subset.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Analyzers(), nil
	}
	var selected []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

// splitPattern separates a package pattern into its root directory and
// whether it recurses.
func splitPattern(pat string) (root string, recursive bool) {
	if pat == "..." {
		return ".", true
	}
	if strings.HasSuffix(pat, "/...") {
		return strings.TrimSuffix(pat, "/..."), true
	}
	return pat, false
}
