package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// findingLine is the output contract: file:line: rule: message.
var findingLine = regexp.MustCompile(`^testdata/src/dirty/dirty\.go:\d+: [a-z-]+: .+$`)

func TestRunFindsViolations(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"testdata/src/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 2 findings + summary:\n%s", len(lines), out.String())
	}
	for _, line := range lines[:2] {
		if !findingLine.MatchString(line) {
			t.Errorf("output line %q does not match file:line: rule: message", line)
		}
	}
	for _, rule := range []string{"seed-literal", "float-eq"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("output missing %s finding:\n%s", rule, out.String())
		}
	}
	if !strings.Contains(lines[2], "2 finding(s)") {
		t.Errorf("summary line = %q", lines[2])
	}
}

func TestRunCleanTreeExitsZero(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"testdata/src/clean"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("clean tree: code=%d output=%q, want 0 and empty", code, out.String())
	}
}

// TestRunObsClockFixtureIsClean pins the injected-clock idiom: the
// fixture module root at testdata/src places this package at internal/obs
// — a directory where no-wallclock is in force — and the full rule set
// still exits clean, because simulated time arrives through an injected
// Clock instead of the time package.
func TestRunObsClockFixtureIsClean(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"testdata/src/internal/obs"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("obs clock fixture: code=%d output=%q, want 0 and empty", code, out.String())
	}
}

func TestRunNonRecursivePatternSkipsSubdirs(t *testing.T) {
	var out strings.Builder
	// testdata/src itself has no Go files; without /... the violations in
	// dirty/ must not be reported.
	code, err := run([]string{"testdata/src"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("non-recursive: code=%d output=%q, want 0 and empty", code, out.String())
	}
}

func TestRunRulesSubset(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-rules", "seed-literal", "testdata/src/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if strings.Contains(out.String(), "float-eq") {
		t.Errorf("-rules seed-literal still ran float-eq:\n%s", out.String())
	}
}

func TestRunRejectsUnknownRule(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-rules", "bogus"}, &out)
	if err == nil || code != 2 {
		t.Fatalf("unknown rule: code=%d err=%v, want 2 and error", code, err)
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-list: code=%d err=%v", code, err)
	}
	for _, rule := range []string{"banned-import", "no-wallclock", "float-eq", "goroutine-capture", "unchecked-error", "seed-literal"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestRunListIncludesTypedAnalyzers(t *testing.T) {
	var out strings.Builder
	if code, err := run([]string{"-list"}, &out); err != nil || code != 0 {
		t.Fatalf("-list: code=%d err=%v", code, err)
	}
	for _, rule := range []string{"detrace", "lazyinit", "maporder"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-json", "testdata/src/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("got %d JSON findings, want 2:\n%s", len(findings), out.String())
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}

func TestRunJSONCleanTreeEmitsEmptyArray(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-json", "testdata/src/clean"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean -json: code=%d err=%v", code, err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", out.String())
	}
}

func TestRunBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")

	var out strings.Builder
	code, err := run([]string{"-write-baseline", base, "testdata/src/..."}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-write-baseline: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "wrote 2 finding(s)") {
		t.Errorf("-write-baseline summary = %q", out.String())
	}

	// With every finding baselined the tree is accepted.
	out.Reset()
	code, err = run([]string{"-baseline", base, "testdata/src/..."}, &out)
	if err != nil || code != 0 {
		t.Fatalf("baselined run: code=%d err=%v\n%s", code, err, out.String())
	}

	// A baseline entry never hides a *new* finding: restrict the baseline
	// to one rule and the other finding resurfaces.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "float-eq|") {
			kept = append(kept, line)
		}
	}
	if err := os.WriteFile(base, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"-baseline", base, "testdata/src/..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "float-eq") {
		t.Fatalf("un-baselined finding not reported: code=%d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 more baselined") {
		t.Errorf("summary missing baselined count:\n%s", out.String())
	}
}
