// Package obs is a clean fixture for the injected-clock idiom. The
// fixture go.mod above testdata/src makes this package's module-relative
// path internal/obs — a no-wallclock-restricted directory — so linting it
// proves the pattern the real internal/obs uses needs no suppressions:
// simulated time arrives through a Clock value and the time package is
// never imported.
package obs

// Clock is simulated time injected by the tick loop.
type Clock interface{ Seconds() float64 }

// SimClock is advanced by the simulation driver; Seconds never touches
// the wall clock.
type SimClock struct{ t float64 }

// Set records the current simulated time in seconds.
func (c *SimClock) Set(t float64) { c.t = t }

// Seconds returns the last simulated time Set recorded.
func (c *SimClock) Seconds() float64 { return c.t }
