// Package dirty is a reprolint smoke-test fixture with known violations.
package dirty

import "repro/internal/rng"

var r = rng.NewXoshiro(42)

func close(a, b float64) bool { return a == b }
