// Package clean is a reprolint smoke-test fixture with no violations.
package clean

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
