package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestQuickChaos runs the full in-process chaos cycle — concurrent
// duplicate-heavy load, malformed and oversized bodies, mid-wait
// disconnects, a mid-test deadline drain, and a journal-recovery restart —
// and requires the harness's own invariants (zero lost accepted jobs,
// byte-identical results) to hold. `go test -race ./...` therefore covers
// the acceptance chaos run on every tier-1 pass.
func TestQuickChaos(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-dir", t.TempDir()}, &out); err != nil {
		t.Fatalf("chaos run: %v\noutput:\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "ok — zero lost jobs") {
		t.Fatalf("missing success line:\n%s", s)
	}
	if !strings.Contains(s, "restart recovered") {
		t.Fatalf("restart never happened:\n%s", s)
	}
}

func TestRejectsBadFlagCombos(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-n", "2", "-distinct", "8"}, &out); err == nil {
		t.Fatal("n < distinct accepted")
	}
}
