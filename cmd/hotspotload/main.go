// Command hotspotload is a deterministic load and chaos harness for
// hotspotd. It hammers the submission path with concurrent clients —
// duplicate scenarios, malformed bodies, oversized bodies, and clients
// that disconnect mid-wait — and, in its default in-process mode, drains
// the server mid-test with a deadline short enough to park jobs, then
// restarts it on the same state directory to exercise journal recovery.
//
// Two invariants are asserted at the end:
//
//   - Zero lost accepted jobs: every scenario the server acknowledged
//     (accepted, coalesced, or cached) must produce a result, across the
//     mid-test restart.
//   - Byte identity: every served result must equal the same scenario's
//     one-shot run (serve.OneShot) byte for byte.
//
// Client behavior is seeded (-seed) so a failing run can be replayed.
// With -addr the harness targets an already-running server instead and
// skips the restart chaos (the caller owns the process lifecycle — this
// is how scripts/check.sh smoke-tests the real binary).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/xcheck"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hotspotload: %v\n", err)
		os.Exit(1)
	}
}

// loadScenario builds the v-th distinct scenario of a seeded load run.
// Each is cheap (a few ms) but multi-tick, so drains can interrupt runs
// at tick boundaries.
func loadScenario(seed, v uint64) xcheck.Scenario {
	return xcheck.Scenario{
		Worm:            xcheck.WormHitList,
		PopSize:         80 + int(v%5)*12,
		Slash8s:         1,
		Slash16s:        2,
		HitListSlash16s: 2,
		PopSeed:         rng.Mix64(seed ^ (v << 1)),
		ScanRate:        60,
		TickSeconds:     1,
		MaxSeconds:      20 + float64(v%4)*5,
		SeedHosts:       2 + int(v%2),
		SimSeed:         rng.Mix64(seed + v),
		Workers:         1 + int(v%2),
	}
}

// stats tallies client-side observations; all fields are guarded by mu.
type stats struct {
	mu         sync.Mutex
	submitted  int
	accepted   int
	coalesced  int
	cached     int
	shedRetry  int // 429s that later succeeded
	shedGiveUp int // 429s that exhausted the retry budget (not lost: never accepted)
	malformed  int // 400s for deliberately bad bodies
	oversized  int // 413s for deliberately huge bodies
	disconnect int // clients that abandoned a result wait
	wrongCode  int // contract violations: unexpected status codes
}

func (s *stats) add(f func(*stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s)
}

// harness is one load run's shared state.
type harness struct {
	seed     uint64
	distinct int
	expected map[string][]byte // job id -> one-shot bytes
	byID     map[string]xcheck.Scenario

	mu          sync.Mutex
	acceptedIDs map[string]struct{} // every id the server acknowledged

	st  stats
	out io.Writer
}

func (h *harness) acknowledge(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.acceptedIDs[id] = struct{}{}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspotload", flag.ContinueOnError)
	n := fs.Int("n", 2000, "total submissions across all clients")
	distinct := fs.Int("distinct", 8, "distinct scenarios (duplicates exercise coalescing and caching)")
	clients := fs.Int("clients", 32, "concurrent client goroutines")
	seed := fs.Uint64("seed", 1, "seed for client decision streams")
	quick := fs.Bool("quick", false, "small preset (n=300, clients=16) for CI")
	addr := fs.String("addr", "", "target an external server at this host:port (skips the restart chaos; start the server with -max-body <= 128KiB so the oversized-body probes draw 413s)")
	dir := fs.String("dir", "", "state directory for the in-process server (default: a temp dir)")
	queue := fs.Int("queue", 32, "in-process server queue depth (small enough to exercise shedding)")
	workers := fs.Int("workers", 4, "in-process server workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*n, *clients = 300, 16
	}
	if *distinct < 1 || *n < *distinct || *clients < 1 {
		return fmt.Errorf("need distinct >= 1, n >= distinct, clients >= 1")
	}

	h := &harness{
		seed:        *seed,
		distinct:    *distinct,
		expected:    make(map[string][]byte),
		byID:        make(map[string]xcheck.Scenario),
		acceptedIDs: make(map[string]struct{}),
		out:         out,
	}
	// Precompute the reference bytes every served result must match. The
	// burst scenarios (offset 1000) are submitted right before the mid-test
	// drain so the restart has incomplete work to recover.
	var variants []uint64
	for v := uint64(0); v < uint64(*distinct); v++ {
		variants = append(variants, v)
	}
	for v := uint64(1000); v < uint64(1000+16); v++ {
		variants = append(variants, v)
	}
	for _, v := range variants {
		sc := loadScenario(*seed, v)
		id, body, err := serve.OneShot(ctx, sc)
		if err != nil {
			return fmt.Errorf("one-shot reference for variant %d: %w", v, err)
		}
		h.expected[id] = body
		h.byID[id] = sc
	}

	if *addr != "" {
		base := "http://" + *addr
		h.phase(ctx, base, *n, *clients, 0)
		return h.verify(ctx, base)
	}

	stateDir := *dir
	if stateDir == "" {
		var err error
		stateDir, err = os.MkdirTemp("", "hotspotload-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(stateDir)
	}
	newServer := func() (*serve.Server, *httptest.Server, error) {
		srv, err := serve.New(serve.Config{
			Dir:          stateDir,
			QueueDepth:   *queue,
			Workers:      *workers,
			MaxBodyBytes: 64 << 10,
			Metrics:      obs.NewRegistry(),
		})
		if err != nil {
			return nil, nil, err
		}
		return srv, httptest.NewServer(srv.Handler()), nil
	}

	// Phase A: first half of the load, then a distinct-scenario burst
	// followed by an immediate too-short drain — the SIGTERM stand-in —
	// so jobs park with their journal accepts outstanding.
	srv1, ts1, err := newServer()
	if err != nil {
		return err
	}
	defer ts1.Close()
	h.phase(ctx, ts1.URL, *n/2, *clients, 0)
	for _, v := range variants[*distinct:] {
		sc := loadScenario(*seed, v)
		h.submitOnce(ctx, ts1.URL, sc, &h.st)
	}
	if err := srv1.Drain(time.Millisecond); err != nil {
		fmt.Fprintf(out, "hotspotload: mid-test drain: %v\n", err)
	}

	// Restart on the same directory: the journal re-admits parked work.
	srv2, ts2, err := newServer()
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer ts2.Close()
	fmt.Fprintf(out, "hotspotload: restart recovered %d incomplete jobs\n", srv2.Recovered())

	// Phase B: the rest of the load against the recovered server.
	h.phase(ctx, ts2.URL, *n-*n/2, *clients, 1)
	err = h.verify(ctx, ts2.URL)
	if derr := srv2.Drain(30 * time.Second); derr != nil && err == nil {
		err = derr
	}
	return err
}

// phase runs one burst of load: clients goroutines splitting total
// submissions, each with its own seeded decision stream.
func (h *harness) phase(ctx context.Context, base string, total, clients, phase int) {
	if total < clients {
		clients = total
	}
	if clients == 0 {
		return
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		per := total / clients
		if c < total%clients {
			per++
		}
		wg.Add(1)
		go func(c, per int) {
			defer wg.Done()
			r := rng.NewXoshiroStream(h.seed, uint64(c)+1, uint64(phase))
			for i := 0; i < per; i++ {
				h.oneRequest(ctx, base, r)
			}
		}(c, per)
	}
	wg.Wait()
}

// oneRequest plays one seeded client move: mostly normal submissions of a
// duplicate-heavy scenario mix, with malformed bodies, oversized bodies,
// and mid-wait disconnects blended in.
func (h *harness) oneRequest(ctx context.Context, base string, r *rng.Xoshiro) {
	h.st.add(func(s *stats) { s.submitted++ })
	roll := r.Intn(100)
	switch {
	case roll < 4: // malformed: must 400, never crash
		bad := [][]byte{nil, []byte(`{`), []byte(`{"worm":"uniform","bogus":1}`), []byte(`{"worm":"x"}`)}
		code, _, _ := post(ctx, base+"/scenarios", bad[r.Intn(len(bad))])
		if code == http.StatusBadRequest {
			h.st.add(func(s *stats) { s.malformed++ })
		} else {
			h.st.add(func(s *stats) { s.wrongCode++ })
		}
	case roll < 6: // oversized: must 413
		code, _, _ := post(ctx, base+"/scenarios", bytes.Repeat([]byte{'x'}, 128<<10))
		if code == http.StatusRequestEntityTooLarge {
			h.st.add(func(s *stats) { s.oversized++ })
		} else {
			h.st.add(func(s *stats) { s.wrongCode++ })
		}
	case roll < 10: // disconnect mid-wait: job must survive the client
		sc := loadScenario(h.seed, uint64(r.Intn(h.distinct)))
		if id, ok := h.submitOnce(ctx, base, sc, &h.st); ok {
			waitCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
			req, err := http.NewRequestWithContext(waitCtx, http.MethodGet, base+"/jobs/"+id+"/result", nil)
			if err == nil {
				if resp, err := http.DefaultClient.Do(req); err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
			cancel()
			h.st.add(func(s *stats) { s.disconnect++ })
		}
	default: // normal duplicate-heavy submission
		sc := loadScenario(h.seed, uint64(r.Intn(h.distinct)))
		h.submitOnce(ctx, base, sc, &h.st)
	}
}

// submitOnce submits one scenario, retrying shed (429) responses with a
// small backoff. It records acknowledged ids for final verification.
func (h *harness) submitOnce(ctx context.Context, base string, sc xcheck.Scenario, st *stats) (string, bool) {
	body := sc.JSON()
	shed := false
	for attempt := 0; attempt < 400; attempt++ {
		code, _, err := post(ctx, base+"/scenarios", body)
		switch {
		case err != nil:
			st.add(func(s *stats) { s.wrongCode++ })
			return "", false
		case code == http.StatusAccepted || code == http.StatusOK:
			id := serve.ScenarioID(body)
			h.acknowledge(id)
			st.add(func(s *stats) {
				if shed {
					s.shedRetry++
				}
				switch code {
				case http.StatusAccepted:
					s.accepted++ // accepted or coalesced; split server-side in /metrics
				default:
					s.cached++
				}
			})
			return id, true
		case code == http.StatusTooManyRequests:
			shed = true
			time.Sleep(5 * time.Millisecond)
		default:
			st.add(func(s *stats) { s.wrongCode++ })
			return "", false
		}
	}
	st.add(func(s *stats) { s.shedGiveUp++ })
	return "", false
}

func post(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

// verify asserts the run's two invariants against the (final) server:
// every acknowledged id serves a result, and every result matches its
// one-shot bytes. Unacknowledged distinct scenarios are submitted now so
// coverage is total even if every earlier attempt was shed.
func (h *harness) verify(ctx context.Context, base string) error {
	for id := range h.expected {
		h.mu.Lock()
		_, seen := h.acceptedIDs[id]
		h.mu.Unlock()
		if !seen {
			h.submitOnce(ctx, base, h.byID[id], &h.st)
		}
	}
	h.mu.Lock()
	ids := make([]string, 0, len(h.acceptedIDs))
	for id := range h.acceptedIDs {
		ids = append(ids, id)
	}
	h.mu.Unlock()
	sort.Strings(ids)

	lost, divergent := 0, 0
	for _, id := range ids {
		want, known := h.expected[id]
		if !known {
			return fmt.Errorf("internal: acknowledged id %s has no reference bytes", id)
		}
		got, err := getResult(ctx, base, id)
		if err != nil {
			fmt.Fprintf(h.out, "hotspotload: LOST accepted job %s: %v\n", id[:12], err)
			lost++
			continue
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(h.out, "hotspotload: DIVERGENT result for %s (%d vs %d bytes)\n", id[:12], len(got), len(want))
			divergent++
		}
	}

	st := &h.st
	st.mu.Lock()
	fmt.Fprintf(h.out,
		"hotspotload: submitted=%d accepted=%d cached=%d shed-retried=%d shed-gave-up=%d malformed=%d oversized=%d disconnects=%d wrong-code=%d verified=%d\n",
		st.submitted, st.accepted, st.cached, st.shedRetry, st.shedGiveUp,
		st.malformed, st.oversized, st.disconnect, st.wrongCode, len(ids))
	wrong := st.wrongCode
	st.mu.Unlock()

	switch {
	case lost > 0:
		return fmt.Errorf("%d accepted jobs lost", lost)
	case divergent > 0:
		return fmt.Errorf("%d results diverged from one-shot bytes", divergent)
	case wrong > 0:
		return fmt.Errorf("%d responses broke the status-code contract", wrong)
	}
	fmt.Fprintf(h.out, "hotspotload: ok — zero lost jobs, all %d results byte-identical to one-shot runs\n", len(ids))
	return nil
}

// getResult fetches one job's NDJSON body, retrying transient 503s
// (drain-parked jobs pre-restart) briefly.
func getResult(ctx context.Context, base, id string) ([]byte, error) {
	var last error
	for attempt := 0; attempt < 100; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/result", nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return body, nil
		case http.StatusServiceUnavailable:
			last = fmt.Errorf("parked: %s", body)
			time.Sleep(20 * time.Millisecond)
		default:
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
	}
	return nil, last
}
