package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/worm"
)

// writeTrace runs one driver over a small population and dumps its trace.
func writeTrace(t *testing.T, dir, name, driver string, seed uint64) string {
	t.Helper()
	pop, err := population.Synthesize(population.Config{Size: 300, Slash8s: 3, Slash16s: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A hit-list worm covering the population spreads quickly even on a
	// small test population, so the trace carries real infection edges.
	prefixes, _ := worm.BuildGreedySlash16HitList(pop.Addrs(true), 5)
	list := ipv4.SetOfPrefixes(prefixes...)
	rec := trace.NewRecorder(0)
	switch driver {
	case "exact":
		_, err = sim.RunExact(sim.ExactConfig{
			Pop: pop, Factory: worm.HitListFactory{ListSet: list},
			ScanRate: 150, TickSeconds: 1, MaxSeconds: 40, SeedHosts: 6, Seed: seed,
			Trace: rec, Clock: &obs.SimClock{},
		})
	case "fast":
		_, err = sim.RunFast(sim.FastConfig{
			Pop: pop, Model: &sim.HitListModel{List: list},
			ScanRate: 150, TickSeconds: 1, MaxSeconds: 40, SeedHosts: 6, Seed: seed,
			Trace: rec, Clock: &obs.SimClock{},
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteNDJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarize(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "exact.ndjson", "exact", 42)
	var out strings.Builder
	if err := run([]string{"summarize", path}, &out); err != nil {
		t.Fatalf("summarize: %v\n%s", err, out.String())
	}
	for _, want := range []string{"schema v1", "dropped 0", "infection", "probes", "phase"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summarize output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTree(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "exact.ndjson", "exact", 42)
	var out strings.Builder
	if err := run([]string{"tree", path}, &out); err != nil {
		t.Fatalf("tree: %v\n%s", err, out.String())
	}
	for _, want := range []string{"seeds 6", "unattributed 0", "vector scan"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("tree output missing %q:\n%s", want, out.String())
		}
	}
}

// TestDiff covers the acceptance pair: identical traces report identity
// with exit success; an exact-vs-fast pair reports the first divergent
// event (with context) and returns the divergence sentinel.
func TestDiff(t *testing.T) {
	dir := t.TempDir()
	exactA := writeTrace(t, dir, "a.ndjson", "exact", 42)
	exactB := writeTrace(t, dir, "b.ndjson", "exact", 42)
	fast := writeTrace(t, dir, "fast.ndjson", "fast", 42)

	var same strings.Builder
	if err := run([]string{"diff", exactA, exactB}, &same); err != nil {
		t.Fatalf("identical traces reported as diverging: %v\n%s", err, same.String())
	}
	if !strings.Contains(same.String(), "traces identical") {
		t.Errorf("missing identity line:\n%s", same.String())
	}

	var out strings.Builder
	err := run([]string{"diff", "-context", "2", exactA, fast}, &out)
	if !errors.Is(err, errDiverged) {
		t.Fatalf("exact-vs-fast pair did not diverge: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "diverges:") {
		t.Errorf("missing divergence report:\n%s", out.String())
	}
	// The report carries both sides of the first divergent event.
	if !strings.Contains(out.String(), "  a {") || !strings.Contains(out.String(), "  b {") {
		t.Errorf("divergence report missing a/b events:\n%s", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"nonsense"}, &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"summarize"}, &out); err == nil {
		t.Error("summarize without file accepted")
	}
	if err := run([]string{"diff", "only-one"}, &out); err == nil {
		t.Error("diff with one file accepted")
	}
	if err := run([]string{"tree", filepath.Join(t.TempDir(), "missing.ndjson")}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
