// Command hotspottrace inspects flight-recorder traces (internal/trace):
// NDJSON event streams dumped by the simulation drivers, the xcheck
// harness, and the -trace flag of the other binaries.
//
// Usage:
//
//	hotspottrace summarize run.ndjson            # per-kind counts, span, drops
//	hotspottrace tree run.ndjson                 # infection-tree provenance stats
//	hotspottrace diff -context 5 a.ndjson b.ndjson
//
// diff streams two traces and reports the first divergent event with the
// common events leading up to it; it exits 1 when the traces differ, so
// scripts can use it as a predicate.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotspottrace:", err)
		if errors.Is(err, errDiverged) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

// errDiverged distinguishes "the traces differ" (exit 1, the useful
// predicate answer) from operational failures (exit 2).
var errDiverged = errors.New("traces diverge")

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: hotspottrace summarize|tree|diff [args]")
	}
	switch cmd, rest := args[0], args[1:]; cmd {
	case "summarize":
		return summarize(rest, out)
	case "tree":
		return treeStats(rest, out)
	case "diff":
		return diff(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q (want summarize, tree, or diff)", cmd)
	}
}

// loadEvents reads one NDJSON trace file.
func loadEvents(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadNDJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// summarize prints per-kind event counts, the tick span, and the drop
// count carried by the header.
func summarize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspottrace summarize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: hotspottrace summarize FILE")
	}
	events, err := loadEvents(fs.Arg(0))
	if err != nil {
		return err
	}

	kinds := make(map[string]int)
	var dropped uint64
	schema := ""
	minTick, maxTick, ticked := 0, 0, false
	var maxT float64
	for i := range events {
		ev := &events[i]
		kinds[ev.Kind]++
		if ev.Kind == trace.KindHeader {
			dropped += ev.N
			schema = ev.Vector
			continue
		}
		// Tick -1 marks clock-stamped observer events (alerts); they carry
		// no position in the tick loop, so they stay out of the span.
		if ev.Tick >= 0 {
			if !ticked || ev.Tick < minTick {
				minTick = ev.Tick
			}
			if !ticked || ev.Tick > maxTick {
				maxTick = ev.Tick
			}
			ticked = true
		}
		if ev.T > maxT {
			maxT = ev.T
		}
	}

	fmt.Fprintf(out, "events %d  schema %s  dropped %d\n", len(events), schema, dropped)
	if ticked {
		fmt.Fprintf(out, "ticks %d..%d  max t %v\n", minTick, maxTick, maxT)
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(out, "  %-12s %d\n", k, kinds[k])
	}
	return nil
}

// treeStats reconstructs the infection tree and prints its shape.
func treeStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspottrace tree", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: hotspottrace tree FILE")
	}
	events, err := loadEvents(fs.Arg(0))
	if err != nil {
		return err
	}
	tree, err := trace.BuildTree(events)
	if err != nil {
		return err
	}
	s := tree.Stats()
	fmt.Fprintf(out, "nodes %d  seeds %d  edges %d  unattributed %d\n",
		s.Nodes, s.Seeds, s.Edges, s.Unattributed)
	fmt.Fprintf(out, "depth %d  max width %d  max degree %d\n",
		s.Depth, s.MaxWidth, s.MaxDegree)
	for _, d := range s.Degrees {
		fmt.Fprintf(out, "  degree %-4d %d hosts\n", d.Degree, d.Hosts)
	}
	for _, v := range s.Vectors {
		fmt.Fprintf(out, "  vector %-8s %d edges\n", v.Vector, v.Edges)
	}
	return nil
}

// diff streams two traces and reports the first divergence.
func diff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspottrace diff", flag.ContinueOnError)
	contextN := fs.Int("context", 3, "common events to print before the divergence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("usage: hotspottrace diff [-context N] FILE_A FILE_B")
	}
	fa, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := os.Open(fs.Arg(1))
	if err != nil {
		return err
	}
	defer fb.Close()

	d, err := trace.Diff(fa, fb, *contextN)
	if err != nil {
		return err
	}
	if d == nil {
		fmt.Fprintln(out, "traces identical")
		return nil
	}
	fmt.Fprint(out, d.String())
	return errDiverged
}
