package main

import "testing"

func TestRunWorms(t *testing.T) {
	common := []string{"-pop", "5000", "-t", "100", "-rate", "200", "-seed", "2"}
	for _, wormName := range []string{"uniform", "hitlist", "codered2"} {
		args := append([]string{"-worm", wormName}, common...)
		if err := run(args); err != nil {
			t.Fatalf("worm %s: %v", wormName, err)
		}
	}
}

func TestRunWithSensorsAndPlot(t *testing.T) {
	if err := run([]string{
		"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200",
		"-nat", "0.2", "-sensors", "200", "-placement", "top20", "-plot",
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"-worm", "codered2", "-pop", "5000", "-t", "60", "-rate", "200",
		"-nat", "0.2", "-placement", "192sweep",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithContainment(t *testing.T) {
	if err := run([]string{
		"-worm", "codered2", "-pop", "5000", "-t", "120", "-rate", "200",
		"-nat", "0.2", "-placement", "192sweep", "-contain-at", "0.1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"-worm", "uniform", "-pop", "2000", "-t", "20", "-contain-at", "0.1",
	}); err == nil {
		t.Error("containment without sensors accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-worm", "nope"}); err == nil {
		t.Error("unknown worm accepted")
	}
	if err := run([]string{"-worm", "codered2", "-sensors", "10", "-placement", "nowhere", "-pop", "2000", "-t", "10"}); err == nil {
		t.Error("unknown placement accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
