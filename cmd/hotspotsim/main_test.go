package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encoding/json"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data, readErr := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(data)
}

func TestRunWorms(t *testing.T) {
	common := []string{"-pop", "5000", "-t", "100", "-rate", "200", "-seed", "2"}
	for _, wormName := range []string{"uniform", "hitlist", "codered2"} {
		args := append([]string{"-worm", wormName}, common...)
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("worm %s: %v", wormName, err)
		}
	}
}

func TestRunWithSensorsAndPlot(t *testing.T) {
	if err := run(context.Background(), []string{
		"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200",
		"-nat", "0.2", "-sensors", "200", "-placement", "top20", "-plot",
	}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-worm", "codered2", "-pop", "5000", "-t", "60", "-rate", "200",
		"-nat", "0.2", "-placement", "192sweep",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithContainment(t *testing.T) {
	if err := run(context.Background(), []string{
		"-worm", "codered2", "-pop", "5000", "-t", "120", "-rate", "200",
		"-nat", "0.2", "-placement", "192sweep", "-contain-at", "0.1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-worm", "uniform", "-pop", "2000", "-t", "20", "-contain-at", "0.1",
	}); err == nil {
		t.Error("containment without sensors accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(context.Background(), []string{
			"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200",
			"-placement", "192sweep", "-outage", "0.5", "-burst", "0.6",
		})
	})
	for _, want := range []string{"withdrew 128/255 sensor blocks", "burst channel", "degraded fleet: 127/255 in service", "sensor-down"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithFaultsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	cfg := `{"seed": 7, "burst": {"mean_good": 20, "mean_bad": 5, "loss_good": 0, "loss_bad": 0.8}}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"-worm", "uniform", "-pop", "3000", "-t", "60", "-rate", "200", "-faults", path,
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"burst": {"mean_good": -1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-worm", "uniform", "-pop", "3000", "-t", "60", "-faults", path}); err == nil {
		t.Error("invalid fault config accepted")
	}
}

// TestCheckpointedRerunIsByteIdentical is the CLI resume contract: a rerun
// with identical parameters against the same checkpoint file replays the
// cached summary byte for byte instead of re-simulating.
func TestCheckpointedRerunIsByteIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{
		"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200",
		"-placement", "192sweep", "-outage", "0.3", "-plot",
		"-checkpoint", ckpt,
	}
	first := captureStdout(t, func() error { return run(context.Background(), args) })
	second := captureStdout(t, func() error { return run(context.Background(), args) })
	if first != second {
		t.Errorf("checkpointed rerun diverged:\n--- first\n%s--- second\n%s", first, second)
	}
	cp, err := sweep.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 1 {
		t.Errorf("checkpoint holds %d entries, want 1", cp.Len())
	}
	// Changing a parameter is a different key: the cache must not serve it.
	third := captureStdout(t, func() error {
		return run(context.Background(), append([]string{"-seed", "9"}, args...))
	})
	if third == first {
		t.Error("different seed replayed the cached run")
	}
	if cp, err = sweep.OpenCheckpoint(ckpt); err != nil || cp.Len() != 2 {
		t.Errorf("checkpoint after second key: len=%d err=%v, want 2 entries", cp.Len(), err)
	}
}

// TestRunFastWorkersFlag: -workers drives the fast driver too — every
// count prints identical output, and a negative count is rejected with the
// same message contract as the exact driver.
func TestRunFastWorkersFlag(t *testing.T) {
	base := []string{"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200", "-seed", "3"}
	serial := captureStdout(t, func() error {
		return run(context.Background(), append([]string{"-workers", "1"}, base...))
	})
	parallel := captureStdout(t, func() error {
		return run(context.Background(), append([]string{"-workers", "4"}, base...))
	})
	if serial != parallel {
		t.Errorf("fast driver output depends on -workers:\n--- workers=1\n%s--- workers=4\n%s", serial, parallel)
	}
	err := run(context.Background(), append([]string{"-workers", "-2"}, base...))
	if err == nil || !strings.Contains(err.Error(), "negative worker count") {
		t.Errorf("negative -workers not rejected by the fast driver: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(context.Background(), []string{"-worm", "nope"}); err == nil {
		t.Error("unknown worm accepted")
	}
	if err := run(context.Background(), []string{"-worm", "codered2", "-sensors", "10", "-placement", "nowhere", "-pop", "2000", "-t", "10"}); err == nil {
		t.Error("unknown placement accepted")
	}
	if err := run(context.Background(), []string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunWithTrace: -trace dumps a parseable NDJSON flight recording plus
// a provenance manifest, and two same-seed traced runs dump byte-identical
// traces.
func TestRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.ndjson")
	args := []string{
		"-worm", "hitlist", "-pop", "5000", "-t", "100", "-rate", "200",
		"-sensors", "200", "-seed", "2", "-trace", tracePath,
	}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadNDJSON(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(events) < 2 {
		t.Fatalf("trace has only %d events", len(events))
	}
	if _, err := trace.BuildTree(events); err != nil {
		t.Fatalf("trace does not reconstruct a tree: %v", err)
	}
	manifest, err := os.ReadFile(tracePath + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	var m trace.Manifest
	if err := json.Unmarshal(manifest, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Driver != "fast" || m.Seed != 2 || m.Events != len(events)-1 {
		t.Errorf("manifest provenance wrong: %+v", m)
	}

	again := filepath.Join(dir, "again.ndjson")
	args[len(args)-1] = again
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	body2, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(body2) {
		t.Error("two same-seed traced runs dumped different traces")
	}
}

// TestCheckpointResumeAfterInterrupt is the SIGINT/SIGTERM contract: an
// interrupted run reports an error and leaves no partial summary in the
// checkpoint, and a rerun against the same file completes with output
// byte-identical to a run that was never interrupted.
func TestCheckpointResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "resume.ckpt")
	args := []string{
		"-worm", "codered2", "-pop", "5000", "-t", "100", "-rate", "200",
		"-placement", "192sweep", "-outage", "0.3",
		"-checkpoint", ckpt,
	}

	// signal.NotifyContext in main cancels the run context; simulate the
	// signal by handing run an already-cancelled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, args); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if cp, err := sweep.OpenCheckpoint(ckpt); err != nil {
		t.Fatalf("checkpoint unreadable after interrupt: %v", err)
	} else if cp.Len() != 0 {
		t.Fatalf("interrupted run checkpointed %d partial entries", cp.Len())
	}

	// Resume against the same checkpoint file and compare with a run that
	// never saw the interrupt (fresh checkpoint).
	resumed := captureStdout(t, func() error { return run(context.Background(), args) })
	freshArgs := append([]string(nil), args...)
	freshArgs[len(freshArgs)-1] = filepath.Join(dir, "fresh.ckpt")
	fresh := captureStdout(t, func() error { return run(context.Background(), freshArgs) })
	if resumed != fresh {
		t.Errorf("resumed run diverged from uninterrupted run:\n--- resumed\n%s--- fresh\n%s", resumed, fresh)
	}
	// The completed run is now cached: a third run replays it byte for byte.
	replayed := captureStdout(t, func() error { return run(context.Background(), args) })
	if replayed != resumed {
		t.Error("replay after resume diverged from the resumed run")
	}
}
