// Command hotspotsim runs configurable worm-outbreak simulations over the
// synthetic CodeRedII-style vulnerable population with an optional detector
// fleet, printing the infection and alert curves.
//
// Usage:
//
//	hotspotsim -worm uniform
//	hotspotsim -worm hitlist -hitlist-size 100
//	hotspotsim -worm codered2 -nat 0.15 -sensors 5000 -placement top20
//	hotspotsim -worm codered2 -placement 192sweep -plot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/obsflags"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/worm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hotspotsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hotspotsim", flag.ContinueOnError)
	var (
		wormName    = fs.String("worm", "uniform", "uniform|hitlist|codered2")
		hitListSize = fs.Int("hitlist-size", 100, "number of /16s in the hit-list")
		popSize     = fs.Int("pop", 134586, "vulnerable population size")
		nat         = fs.Float64("nat", 0, "fraction of hosts NAT'd into 192.168/16")
		scanRate    = fs.Float64("rate", 10, "probes per second per infected host")
		seeds       = fs.Int("seeds", 25, "initially infected hosts")
		maxSeconds  = fs.Float64("t", 2000, "simulated seconds")
		seed        = fs.Uint64("seed", 1, "simulation seed")
		sensors     = fs.Int("sensors", 0, "detector fleet size (0 = none)")
		placement   = fs.String("placement", "random", "random|top20|192sweep")
		threshold   = fs.Uint64("threshold", 5, "alert threshold (probes per sensor)")
		containAt   = fs.Float64("contain-at", 0, "engage containment once this fraction of sensors alert (0 = off)")
		containDrop = fs.Float64("contain-drop", 0.95, "probe drop probability once containment engages")
		plot        = fs.Bool("plot", false, "render ASCII chart")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()

	popCfg := population.DefaultCodeRedII(*seed)
	if *popSize != popCfg.Size {
		popCfg = scaledPopulation(*popSize, *seed)
	}
	pop, err := population.Synthesize(popCfg)
	if err != nil {
		return err
	}
	if *nat > 0 {
		if err := pop.AssignNAT(*nat, 0, *seed+1); err != nil {
			return err
		}
	}

	var model sim.RateModel
	switch *wormName {
	case "uniform":
		model = sim.NewUniformModel()
	case "hitlist":
		prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), *hitListSize)
		fmt.Printf("hit-list: %d /16s covering %.2f%% of the vulnerable population\n",
			len(prefixes), 100*cover)
		model = &sim.HitListModel{List: ipv4.SetOfPrefixes(prefixes...)}
	case "codered2":
		model = sim.NewCodeRedIIModel()
	default:
		return fmt.Errorf("unknown worm %q (uniform|hitlist|codered2)", *wormName)
	}

	clock := &obs.SimClock{}
	cfg := sim.FastConfig{
		Pop:         pop,
		Model:       model,
		ScanRate:    *scanRate,
		TickSeconds: 1,
		MaxSeconds:  *maxSeconds,
		SeedHosts:   *seeds,
		Seed:        *seed,
		Metrics:     sess.Registry,
		Clock:       clock,
	}

	var fleet *detect.ThresholdFleet
	if *sensors > 0 || *placement == "192sweep" {
		prefixes, err := buildPlacement(*placement, *sensors, *seed, pop)
		if err != nil {
			return err
		}
		fleet, err = detect.NewThresholdFleet(prefixes, *threshold)
		if err != nil {
			return err
		}
		if sess.Registry != nil {
			fleet.Instrument(sess.Registry, clock)
		}
		cfg.Sensors = fleet
		cfg.SensorSet = fleet.Union()
	}
	var containment *sim.Containment
	if *containAt > 0 {
		if fleet == nil {
			return fmt.Errorf("-contain-at requires a sensor fleet (-sensors or -placement 192sweep)")
		}
		trigger := *containAt
		containment = &sim.Containment{
			Trigger: func() bool { return fleet.AlertedFraction() >= trigger },
			Drop:    *containDrop,
		}
		cfg.Containment = containment
	}

	infected := textplot.Series{Name: "% infected"}
	alerted := textplot.Series{Name: "% sensors alerted"}
	tickProgress := sess.TickProgress(*maxSeconds / 10)
	cfg.OnTick = func(ti sim.TickInfo) bool {
		infected.X = append(infected.X, ti.Time)
		infected.Y = append(infected.Y, 100*float64(ti.Infected)/float64(pop.Size()))
		if fleet != nil {
			alerted.X = append(alerted.X, ti.Time)
			alerted.Y = append(alerted.Y, 100*fleet.AlertedFraction())
		}
		if tickProgress != nil {
			tickProgress(ti.Time, ti.Infected)
		}
		return true
	}

	result, err := sim.RunFast(cfg)
	if err != nil {
		return err
	}
	if fleet != nil {
		fleet.ExportMetrics(sess.Registry)
	}
	fmt.Printf("worm=%s pop=%d infected=%d (%.1f%%) after %.0fs\n",
		model.Name(), pop.Size(), result.Final.Infected,
		100*result.FractionInfected(), result.Final.Time)
	fmt.Printf("probes=%d outcomes: %s\n", result.Outcomes.Total(), result.Outcomes)
	if t50, ok := result.TimeToFraction(0.5); ok {
		fmt.Printf("time to 50%% infected: %.0fs\n", t50)
	}
	if fleet != nil {
		fmt.Printf("sensors: %d placed (%s), %d alerted (%.1f%%), quorum(50%%)=%v\n",
			fleet.Size(), *placement, fleet.NumAlerted(), 100*fleet.AlertedFraction(),
			detect.QuorumReached(fleet, 0.5))
	}
	if containment != nil {
		if containment.Engaged() {
			fmt.Printf("containment: engaged at t=%.0fs (drop %.0f%%)\n",
				containment.EngagedAt, 100**containDrop)
		} else {
			fmt.Println("containment: never engaged — the fleet's visibility never reached the trigger")
		}
	}
	if *plot {
		series := []textplot.Series{downsample(infected, 72)}
		if fleet != nil {
			series = append(series, downsample(alerted, 72))
		}
		fmt.Println(textplot.Render("outbreak", series, textplot.Options{}))
	}
	return sess.Close()
}

func buildPlacement(name string, n int, seed uint64, pop *population.Population) ([]ipv4.Prefix, error) {
	switch name {
	case "random":
		return detect.RandomSlash24s(n, seed+2, nil)
	case "top20":
		return detect.RandomSlash24sWithin(n, seed+2, pop.TopSlash8s(20), nil)
	case "192sweep":
		return detect.Slash16SweepOfSlash8(192, []uint32{168}, seed+2), nil
	default:
		return nil, fmt.Errorf("unknown placement %q (random|top20|192sweep)", name)
	}
}

// scaledPopulation shrinks the default population shape to the given size.
func scaledPopulation(size int, seed uint64) population.Config {
	cfg := population.DefaultCodeRedII(seed)
	scale := float64(size) / float64(cfg.Size)
	cfg.Size = size
	cfg.Slash16s = int(float64(cfg.Slash16s) * scale)
	if cfg.Slash16s < cfg.Slash8s {
		cfg.Slash8s = cfg.Slash16s
	}
	if cfg.Slash16s > size {
		cfg.Slash16s = size
	}
	for i := range cfg.Anchors {
		k := int(float64(cfg.Anchors[i].K) * scale)
		if k < 1 {
			k = 1
		}
		cfg.Anchors[i].K = k
	}
	cfg.Anchors[len(cfg.Anchors)-1].K = cfg.Slash16s
	return cfg
}

func downsample(s textplot.Series, n int) textplot.Series {
	d := experiments.Downsample(experiments.Series{Name: s.Name, X: s.X, Y: s.Y}, n)
	return textplot.Series{Name: d.Name, X: d.X, Y: d.Y}
}
