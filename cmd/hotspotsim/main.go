// Command hotspotsim runs configurable worm-outbreak simulations over the
// synthetic CodeRedII-style vulnerable population with an optional detector
// fleet, printing the infection and alert curves.
//
// Usage:
//
//	hotspotsim -worm uniform
//	hotspotsim -worm hitlist -hitlist-size 100
//	hotspotsim -worm codered2 -nat 0.15 -sensors 5000 -placement top20
//	hotspotsim -worm codered2 -placement 192sweep -plot
//	hotspotsim -worm codered2 -placement 192sweep -outage 0.3 -burst 0.6
//	hotspotsim -worm codered2 -checkpoint run.ckpt   # rerun replays the cache
//	hotspotsim -worm codered2 -driver exact -pop 2000 -rate 2000 -t 300 -workers 4
//	hotspotsim -topology proxgraph -graph-nodes 50000 -graph-degree 8 -rate 2 -t 300
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/cmd/internal/obsflags"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/topo/proxgraph"
	"repro/internal/worm"
)

func main() {
	// SIGINT/SIGTERM cancel the run context: the simulation stops at the
	// next tick boundary, no partial summary reaches the -checkpoint file
	// (completed entries are flushed atomically as they finish), and a
	// rerun resumes from whatever the interrupted run completed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hotspotsim:", err)
		os.Exit(1)
	}
}

// seriesData is one printed curve, stored so a checkpointed rerun can
// replot it without re-simulating.
type seriesData struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
}

// fleetSummary is the sensor-fleet section of a run summary.
type fleetSummary struct {
	Size           int     `json:"size"`
	Placement      string  `json:"placement"`
	Alerted        int     `json:"alerted"`
	Fraction       float64 `json:"fraction"`
	Quorum         bool    `json:"quorum"`
	Down           int     `json:"down"`
	NumUp          int     `json:"num_up"`
	FractionOfUp   float64 `json:"fraction_of_up"`
	QuorumDegraded bool    `json:"quorum_degraded"`
}

// containSummary is the containment section of a run summary.
type containSummary struct {
	Engaged bool    `json:"engaged"`
	At      float64 `json:"at"`
	Drop    float64 `json:"drop"`
}

// runSummary is everything the CLI prints about one completed simulation.
// It round-trips through the sweep checkpoint, so a rerun with identical
// parameters replays the cached summary byte for byte instead of
// re-simulating.
type runSummary struct {
	Notes         []string        `json:"notes,omitempty"`
	Worm          string          `json:"worm"`
	Pop           int             `json:"pop"`
	Infected      int             `json:"infected"`
	FinalTime     float64         `json:"final_time"`
	Probes        uint64          `json:"probes"`
	Outcomes      string          `json:"outcomes"`
	T50           float64         `json:"t50"`
	HasT50        bool            `json:"has_t50"`
	Fleet         *fleetSummary   `json:"fleet,omitempty"`
	Containment   *containSummary `json:"containment,omitempty"`
	InfectedCurve seriesData      `json:"infected_curve"`
	AlertedCurve  seriesData      `json:"alerted_curve"`
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("hotspotsim", flag.ContinueOnError)
	var (
		wormName    = fs.String("worm", "uniform", "uniform|hitlist|codered2")
		driver      = fs.String("driver", "fast", "fast|exact: aggregated rate-mixture driver or probe-exact driver (slower; ground truth for stateful scanners)")
		workers     = fs.Int("workers", 0, "simulation goroutines for either driver (0 = GOMAXPROCS, 1 = serial, negative rejected; every value gives byte-identical results)")
		hitListSize = fs.Int("hitlist-size", 100, "number of /16s in the hit-list")
		popSize     = fs.Int("pop", 134586, "vulnerable population size")
		nat         = fs.Float64("nat", 0, "fraction of hosts NAT'd into 192.168/16")
		scanRate    = fs.Float64("rate", 10, "probes per second per infected host")
		seeds       = fs.Int("seeds", 25, "initially infected hosts")
		maxSeconds  = fs.Float64("t", 2000, "simulated seconds")
		seed        = fs.Uint64("seed", 1, "simulation seed")
		sensors     = fs.Int("sensors", 0, "detector fleet size (0 = none)")
		placement   = fs.String("placement", "random", "random|top20|192sweep")
		threshold   = fs.Uint64("threshold", 5, "alert threshold (probes per sensor)")
		containAt   = fs.Float64("contain-at", 0, "engage containment once this fraction of sensors alert (0 = off)")
		containDrop = fs.Float64("contain-drop", 0.95, "probe drop probability once containment engages")
		outage      = fs.Float64("outage", 0, "withdraw this fraction of the sensor fleet for the whole run")
		burstLoss   = fs.Float64("burst", 0, "Gilbert–Elliott bad-state loss probability (0 = no burst channel)")
		burstGood   = fs.Float64("burst-good", 30, "burst channel mean good-state dwell (seconds)")
		burstBad    = fs.Float64("burst-bad", 10, "burst channel mean bad-state dwell (seconds)")
		faultsFile  = fs.String("faults", "", "JSON fault-plan config file (see internal/faults)")
		checkpoint  = fs.String("checkpoint", "", "cache the completed run in this JSON file; a rerun with identical parameters replays it without re-simulating")
		plot        = fs.Bool("plot", false, "render ASCII chart")

		topology     = fs.String("topology", "ipv4", "ipv4|proxgraph: uniform address-scan world or proximity-graph world (see -graph-* flags)")
		graphNodes   = fs.Int("graph-nodes", 50000, "proxgraph: node count")
		graphDegree  = fs.Int("graph-degree", 8, "proxgraph: mutual-kNN degree bound per node")
		graphRadius  = fs.Float64("graph-radius", 0, "proxgraph: candidate radius in the unit square (0 = package default)")
		graphSensors = fs.Int("graph-sensors", 0, "proxgraph: sensor node count, sampled from the world seed")
		graphSeed    = fs.Uint64("graph-seed", 0, "proxgraph: world seed (0 = reuse -seed)")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *driver != "fast" && *driver != "exact" {
		return fmt.Errorf("unknown driver %q (fast|exact)", *driver)
	}
	// The two worlds have disjoint knobs; an explicitly set flag from the
	// wrong world is a configuration error, mirroring the sim package's
	// typed topology-conflict rejections.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	switch *topology {
	case "ipv4":
		for _, name := range []string{"graph-nodes", "graph-degree", "graph-radius", "graph-sensors", "graph-seed"} {
			if explicit[name] {
				return fmt.Errorf("-%s requires -topology proxgraph", name)
			}
		}
	case "proxgraph":
		for _, name := range []string{"worm", "hitlist-size", "pop", "nat", "sensors", "placement",
			"threshold", "contain-at", "contain-drop", "outage", "burst", "burst-good", "burst-bad", "faults"} {
			if explicit[name] {
				return fmt.Errorf("-%s has no defined semantics on -topology proxgraph", name)
			}
		}
	default:
		return fmt.Errorf("unknown topology %q (ipv4|proxgraph)", *topology)
	}
	if *driver == "exact" && *containAt > 0 {
		return fmt.Errorf("-contain-at requires the fast driver (the exact driver has no containment hook)")
	}
	if *outage < 0 || *outage > 1 {
		return fmt.Errorf("-outage %v outside [0,1]", *outage)
	}
	if *burstLoss < 0 || *burstLoss > 1 {
		return fmt.Errorf("-burst %v outside [0,1]", *burstLoss)
	}

	// Resolve the fault config up front: its canonical JSON is part of the
	// checkpoint key, so a changed plan never replays a stale cache entry.
	var fcfg faults.Config
	if *faultsFile != "" {
		data, err := os.ReadFile(*faultsFile)
		if err != nil {
			return err
		}
		if fcfg, err = faults.ParseConfig(data); err != nil {
			return err
		}
	}
	if fcfg.Seed == 0 {
		fcfg.Seed = *seed + 41
	}
	if *burstLoss > 0 {
		fcfg.Burst = &faults.BurstConfig{
			MeanGood: *burstGood,
			MeanBad:  *burstBad,
			LossGood: 0,
			LossBad:  *burstLoss,
		}
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()

	simulate := func() (runSummary, error) {
		return simulateRun(ctx, simParams{
			wormName:    *wormName,
			driver:      *driver,
			workers:     *workers,
			hitListSize: *hitListSize,
			popSize:     *popSize,
			nat:         *nat,
			scanRate:    *scanRate,
			seeds:       *seeds,
			maxSeconds:  *maxSeconds,
			seed:        *seed,
			sensors:     *sensors,
			placement:   *placement,
			threshold:   *threshold,
			containAt:   *containAt,
			containDrop: *containDrop,
			outage:      *outage,
			faults:      fcfg,

			topology:     *topology,
			graphNodes:   *graphNodes,
			graphDegree:  *graphDegree,
			graphRadius:  *graphRadius,
			graphSensors: *graphSensors,
			graphSeed:    *graphSeed,
		}, sess)
	}

	var summary runSummary
	if *checkpoint != "" {
		cp, err := sweep.OpenCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		fjson, err := json.Marshal(fcfg)
		if err != nil {
			return err
		}
		key := fmt.Sprintf("hotspotsim|worm=%s|driver=%s|workers=%d|hl=%d|pop=%d|nat=%g|rate=%g|seeds=%d|t=%g|seed=%d|sensors=%d|placement=%s|thr=%d|contain=%g/%g|outage=%g|faults=%s",
			*wormName, *driver, *workers, *hitListSize, *popSize, *nat, *scanRate, *seeds, *maxSeconds,
			*seed, *sensors, *placement, *threshold, *containAt, *containDrop, *outage, fjson)
		// Appended only off the default world, so pre-topology checkpoint
		// files keep replaying under their original keys.
		if *topology != "ipv4" {
			key += fmt.Sprintf("|topo=%s|gnodes=%d|gdeg=%d|grad=%g|gsens=%d|gseed=%d",
				*topology, *graphNodes, *graphDegree, *graphRadius, *graphSensors, *graphSeed)
		}
		vals, err := sweep.MapCheckpointed(ctx, []int{0},
			func(int, int) string { return key },
			func(context.Context, int) (runSummary, error) { return simulate() },
			cp, sweep.Options{})
		if err != nil {
			return err
		}
		summary = vals[0]
	} else {
		if summary, err = simulate(); err != nil {
			return err
		}
	}
	printSummary(summary, *plot)
	return sess.Close()
}

// simParams carries the resolved flag values into one simulation.
type simParams struct {
	wormName    string
	driver      string
	workers     int
	hitListSize int
	popSize     int
	nat         float64
	scanRate    float64
	seeds       int
	maxSeconds  float64
	seed        uint64
	sensors     int
	placement   string
	threshold   uint64
	containAt   float64
	containDrop float64
	outage      float64
	faults      faults.Config

	topology     string
	graphNodes   int
	graphDegree  int
	graphRadius  float64
	graphSensors int
	graphSeed    uint64
}

// simulateRun runs one simulation, stopping at the next tick boundary if
// ctx is cancelled; an interrupted run returns ctx's error so its partial
// summary never reaches a checkpoint.
func simulateRun(ctx context.Context, p simParams, sess *obsflags.Session) (runSummary, error) {
	if p.topology == "proxgraph" {
		return simulateGraphRun(ctx, p, sess)
	}
	var summary runSummary
	popCfg := population.DefaultCodeRedII(p.seed)
	if p.popSize != popCfg.Size {
		popCfg = scaledPopulation(p.popSize, p.seed)
	}
	pop, err := population.Synthesize(popCfg)
	if err != nil {
		return summary, err
	}
	if p.nat > 0 {
		if err := pop.AssignNAT(p.nat, 0, p.seed+1); err != nil {
			return summary, err
		}
	}

	// Resolve the propagation algorithm in both drivers' vocabularies: the
	// fast driver consumes an aggregated RateModel, the exact driver a
	// per-host worm.Factory. Both express the same scanning distribution.
	var model sim.RateModel
	var factory worm.Factory
	switch p.wormName {
	case "uniform":
		model = sim.NewUniformModel()
		factory = worm.UniformFactory{}
	case "hitlist":
		prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), p.hitListSize)
		summary.Notes = append(summary.Notes, fmt.Sprintf(
			"hit-list: %d /16s covering %.2f%% of the vulnerable population",
			len(prefixes), 100*cover))
		set := ipv4.SetOfPrefixes(prefixes...)
		model = &sim.HitListModel{List: set}
		factory = worm.HitListFactory{ListSet: set}
	case "codered2":
		model = sim.NewCodeRedIIModel()
		factory = worm.CodeRedIIFactory{}
	default:
		return summary, fmt.Errorf("unknown worm %q (uniform|hitlist|codered2)", p.wormName)
	}

	clock := &obs.SimClock{}
	cfg := sim.FastConfig{
		Pop:         pop,
		Model:       model,
		ScanRate:    p.scanRate,
		TickSeconds: 1,
		MaxSeconds:  p.maxSeconds,
		SeedHosts:   p.seeds,
		Seed:        p.seed,
		Workers:     p.workers,
		Metrics:     sess.Registry,
		Clock:       clock,
		Trace:       sess.Trace,
	}
	sess.DescribeRun(p.driver, p.seed, p.workers, fmt.Sprintf("worm=%s pop=%d rate=%g t=%g", p.wormName, pop.Size(), p.scanRate, p.maxSeconds))

	var fleet *detect.ThresholdFleet
	if p.sensors > 0 || p.placement == "192sweep" {
		prefixes, err := buildPlacement(p.placement, p.sensors, p.seed, pop)
		if err != nil {
			return summary, err
		}
		fleet, err = detect.NewThresholdFleet(prefixes, p.threshold)
		if err != nil {
			return summary, err
		}
		if sess.Registry != nil {
			fleet.Instrument(sess.Registry, clock)
		}
		if sess.Trace != nil {
			fleet.Trace(sess.Trace, clock)
		}
		cfg.Sensors = fleet
		cfg.SensorSet = fleet.Union()
	}

	// Fault plan: the -outage knob withdraws a seed-pinned random fraction
	// of the fleet on top of whatever the -faults file and -burst configured.
	fcfg := p.faults
	withdrawn := 0
	if p.outage > 0 {
		if fleet == nil {
			return summary, fmt.Errorf("-outage requires a sensor fleet (-sensors or -placement 192sweep)")
		}
		prefixes := fleet.Prefixes()
		withdrawn = int(p.outage*float64(len(prefixes)) + 0.5)
		orderRNG := rng.NewXoshiro(rng.Mix64(fcfg.Seed ^ 0x6f7574616765)) // "outage"
		order := orderRNG.SampleWithoutReplacement(len(prefixes), len(prefixes))
		for _, idx := range order[:withdrawn] {
			fcfg.Outages = append(fcfg.Outages, faults.OutageConfig{
				Block: prefixes[idx].String(),
				Start: 0,
				End:   p.maxSeconds + 1,
			})
		}
	}
	var plan *faults.Plan
	if !fcfg.Empty() {
		// The last tick lands exactly on MaxSeconds; pad the horizon so
		// whole-run windows cover it (spans are half-open).
		plan, err = faults.Compile(fcfg, p.maxSeconds+1)
		if err != nil {
			return summary, err
		}
		cfg.Faults = plan
		if fleet != nil {
			fleet.SetDownSet(plan.DownSpace())
		}
		if withdrawn > 0 {
			summary.Notes = append(summary.Notes, fmt.Sprintf(
				"faults: withdrew %d/%d sensor blocks for the whole run", withdrawn, fleet.Size()))
		}
		if b := fcfg.Burst; b != nil {
			summary.Notes = append(summary.Notes, fmt.Sprintf(
				"faults: burst channel %gs good (loss %g) / %gs bad (loss %g), mean loss %.3f",
				b.MeanGood, b.LossGood, b.MeanBad, b.LossBad, b.MeanLoss()))
		}
	}

	var containment *sim.Containment
	if p.containAt > 0 {
		if fleet == nil {
			return summary, fmt.Errorf("-contain-at requires a sensor fleet (-sensors or -placement 192sweep)")
		}
		trigger := p.containAt
		containment = &sim.Containment{
			Trigger: func() bool { return fleet.AlertedFraction() >= trigger },
			Drop:    p.containDrop,
		}
		cfg.Containment = containment
	}

	tickProgress := sess.TickProgress(p.maxSeconds / 10)
	onTick := func(ti sim.TickInfo) bool {
		summary.InfectedCurve.X = append(summary.InfectedCurve.X, ti.Time)
		summary.InfectedCurve.Y = append(summary.InfectedCurve.Y, 100*float64(ti.Infected)/float64(pop.Size()))
		if fleet != nil {
			summary.AlertedCurve.X = append(summary.AlertedCurve.X, ti.Time)
			summary.AlertedCurve.Y = append(summary.AlertedCurve.Y, 100*fleet.AlertedFraction())
		}
		if tickProgress != nil {
			tickProgress(ti.Time, ti.Infected)
		}
		return ctx.Err() == nil
	}
	cfg.OnTick = onTick

	var result *sim.Result
	if p.driver == "exact" {
		ecfg := sim.ExactConfig{
			Pop:         pop,
			Factory:     factory,
			ScanRate:    p.scanRate,
			TickSeconds: cfg.TickSeconds,
			MaxSeconds:  p.maxSeconds,
			SeedHosts:   p.seeds,
			Seed:        p.seed,
			Workers:     p.workers,
			OnTick:      onTick,
			Metrics:     sess.Registry,
			Clock:       clock,
			Faults:      plan,
			Trace:       sess.Trace,
		}
		if fleet != nil {
			ecfg.SensorSet = fleet.Union()
			ecfg.OnProbe = func(_, dst ipv4.Addr) { fleet.RecordHit(dst) }
		}
		result, err = sim.RunExact(ecfg)
	} else {
		result, err = sim.RunFast(cfg)
	}
	if err != nil {
		return summary, err
	}
	if err := ctx.Err(); err != nil {
		return summary, err // interrupted: the truncated result is not a run
	}
	if fleet != nil {
		fleet.ExportMetrics(sess.Registry)
	}
	summary.Worm = model.Name()
	summary.Pop = pop.Size()
	summary.Infected = result.Final.Infected
	summary.FinalTime = result.Final.Time
	summary.Probes = result.Outcomes.Total()
	summary.Outcomes = result.Outcomes.String()
	summary.T50, summary.HasT50 = result.TimeToFraction(0.5)
	if fleet != nil {
		summary.Fleet = &fleetSummary{
			Size:           fleet.Size(),
			Placement:      p.placement,
			Alerted:        fleet.NumAlerted(),
			Fraction:       fleet.AlertedFraction(),
			Quorum:         detect.QuorumReached(fleet, 0.5),
			Down:           withdrawn,
			NumUp:          fleet.NumUp(),
			FractionOfUp:   fleet.AlertedFractionOfUp(),
			QuorumDegraded: detect.QuorumReachedDegraded(fleet, 0.5),
		}
	}
	if containment != nil {
		summary.Containment = &containSummary{
			Engaged: containment.Engaged(),
			At:      containment.EngagedAt,
			Drop:    p.containDrop,
		}
	}
	return summary, nil
}

// simulateGraphRun runs one outbreak over a proximity-graph world. The
// worm here scans neighbor lists instead of drawing addresses, so none
// of the IPv4 machinery — populations, NAT, address sensors, network
// environments — participates; sensor nodes live inside the world.
func simulateGraphRun(ctx context.Context, p simParams, sess *obsflags.Session) (runSummary, error) {
	var summary runSummary
	gseed := p.graphSeed
	if gseed == 0 {
		gseed = p.seed
	}
	world, err := proxgraph.New(proxgraph.Config{
		Nodes:   p.graphNodes,
		Degree:  p.graphDegree,
		Radius:  p.graphRadius,
		Sensors: p.graphSensors,
		Seed:    gseed,
	})
	if err != nil {
		return summary, err
	}
	summary.Notes = append(summary.Notes, fmt.Sprintf(
		"proxgraph: %d nodes, %d edges, radius %.4f, %d sensor nodes",
		world.Nodes(), world.Edges(), world.Radius(), world.SensorCount()))

	clock := &obs.SimClock{}
	sess.DescribeRun(p.driver, p.seed, p.workers, fmt.Sprintf(
		"topology=proxgraph nodes=%d degree=%d rate=%g t=%g",
		world.Nodes(), p.graphDegree, p.scanRate, p.maxSeconds))
	tickProgress := sess.TickProgress(p.maxSeconds / 10)
	onTick := func(ti sim.TickInfo) bool {
		summary.InfectedCurve.X = append(summary.InfectedCurve.X, ti.Time)
		summary.InfectedCurve.Y = append(summary.InfectedCurve.Y, 100*float64(ti.Infected)/float64(world.Nodes()))
		if tickProgress != nil {
			tickProgress(ti.Time, ti.Infected)
		}
		return ctx.Err() == nil
	}

	var result *sim.Result
	if p.driver == "exact" {
		result, err = sim.RunExact(sim.ExactConfig{
			Topology:    world,
			ScanRate:    p.scanRate,
			TickSeconds: 1,
			MaxSeconds:  p.maxSeconds,
			SeedHosts:   p.seeds,
			Seed:        p.seed,
			Workers:     p.workers,
			OnTick:      onTick,
			Metrics:     sess.Registry,
			Clock:       clock,
			Trace:       sess.Trace,
		})
	} else {
		result, err = sim.RunFast(sim.FastConfig{
			Topology:    world,
			ScanRate:    p.scanRate,
			TickSeconds: 1,
			MaxSeconds:  p.maxSeconds,
			SeedHosts:   p.seeds,
			Seed:        p.seed,
			Workers:     p.workers,
			OnTick:      onTick,
			Metrics:     sess.Registry,
			Clock:       clock,
			Trace:       sess.Trace,
		})
	}
	if err != nil {
		return summary, err
	}
	if err := ctx.Err(); err != nil {
		return summary, err // interrupted: the truncated result is not a run
	}
	summary.Worm = "neighbor-" + world.Name()
	summary.Pop = world.Nodes()
	summary.Infected = result.Final.Infected
	summary.FinalTime = result.Final.Time
	summary.Probes = result.Outcomes.Total()
	summary.Outcomes = result.Outcomes.String()
	summary.T50, summary.HasT50 = result.TimeToFraction(0.5)
	return summary, nil
}

func printSummary(s runSummary, plot bool) {
	for _, n := range s.Notes {
		fmt.Println(n)
	}
	fmt.Printf("worm=%s pop=%d infected=%d (%.1f%%) after %.0fs\n",
		s.Worm, s.Pop, s.Infected, 100*float64(s.Infected)/float64(s.Pop), s.FinalTime)
	fmt.Printf("probes=%d outcomes: %s\n", s.Probes, s.Outcomes)
	if s.HasT50 {
		fmt.Printf("time to 50%% infected: %.0fs\n", s.T50)
	}
	if f := s.Fleet; f != nil {
		fmt.Printf("sensors: %d placed (%s), %d alerted (%.1f%%), quorum(50%%)=%v\n",
			f.Size, f.Placement, f.Alerted, 100*f.Fraction, f.Quorum)
		if f.Down > 0 {
			fmt.Printf("degraded fleet: %d/%d in service, %.1f%% of them alerted, degraded quorum(50%%)=%v\n",
				f.NumUp, f.Size, 100*f.FractionOfUp, f.QuorumDegraded)
		}
	}
	if c := s.Containment; c != nil {
		if c.Engaged {
			fmt.Printf("containment: engaged at t=%.0fs (drop %.0f%%)\n", c.At, 100*c.Drop)
		} else {
			fmt.Println("containment: never engaged — the fleet's visibility never reached the trigger")
		}
	}
	if plot {
		infected := textplot.Series{Name: "% infected", X: s.InfectedCurve.X, Y: s.InfectedCurve.Y}
		series := []textplot.Series{downsample(infected, 72)}
		if s.Fleet != nil {
			alerted := textplot.Series{Name: "% sensors alerted", X: s.AlertedCurve.X, Y: s.AlertedCurve.Y}
			series = append(series, downsample(alerted, 72))
		}
		fmt.Println(textplot.Render("outbreak", series, textplot.Options{}))
	}
}

func buildPlacement(name string, n int, seed uint64, pop *population.Population) ([]ipv4.Prefix, error) {
	switch name {
	case "random":
		return detect.RandomSlash24s(n, seed+2, nil)
	case "top20":
		return detect.RandomSlash24sWithin(n, seed+2, pop.TopSlash8s(20), nil)
	case "192sweep":
		return detect.Slash16SweepOfSlash8(192, []uint32{168}, seed+2), nil
	default:
		return nil, fmt.Errorf("unknown placement %q (random|top20|192sweep)", name)
	}
}

// scaledPopulation shrinks the default population shape to the given size.
func scaledPopulation(size int, seed uint64) population.Config {
	cfg := population.DefaultCodeRedII(seed)
	scale := float64(size) / float64(cfg.Size)
	cfg.Size = size
	cfg.Slash16s = int(float64(cfg.Slash16s) * scale)
	if cfg.Slash16s < cfg.Slash8s {
		cfg.Slash8s = cfg.Slash16s
	}
	if cfg.Slash16s > size {
		cfg.Slash16s = size
	}
	for i := range cfg.Anchors {
		k := int(float64(cfg.Anchors[i].K) * scale)
		if k < 1 {
			k = 1
		}
		cfg.Anchors[i].K = k
	}
	cfg.Anchors[len(cfg.Anchors)-1].K = cfg.Slash16s
	return cfg
}

func downsample(s textplot.Series, n int) textplot.Series {
	d := experiments.Downsample(experiments.Series{Name: s.Name, X: s.X, Y: s.Y}, n)
	return textplot.Series{Name: d.Name, X: d.X, Y: d.Y}
}
