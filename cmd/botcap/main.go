// Command botcap generates a synthetic bot command-and-control capture,
// or parses one from stdin, and reports the propagation commands and
// aggregate hit-lists — the Table 1 pipeline as a tool.
//
// Usage:
//
//	botcap -generate -bots 11 -seed 7        # emit a synthetic capture
//	botcap -generate | botcap                # parse a capture from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/botcmd"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botcap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("botcap", flag.ContinueOnError)
	var (
		generate = fs.Bool("generate", false, "emit a synthetic capture instead of parsing stdin")
		bots     = fs.Int("bots", 11, "bots in the synthetic capture")
		noise    = fs.Int("noise", 40, "noise lines in the synthetic capture")
		seed     = fs.Uint64("seed", 1, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *generate {
		cfg := botcmd.GeneratorConfig{
			Bots: *bots, CommandsPerBot: 2, NoiseLines: *noise, Seed: *seed,
		}
		for _, line := range botcmd.Generate(cfg) {
			fmt.Fprintln(out, line)
		}
		return nil
	}

	var capture []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		capture = append(capture, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return err
	}
	cmds := botcmd.ExtractCommands(capture)
	fmt.Fprintf(out, "capture: %d lines, %d propagation commands\n", len(capture), len(cmds))
	for _, c := range cmds {
		hl := "unrestricted"
		if p := c.HitList(); p.Bits() > 0 {
			hl = p.String()
		}
		fmt.Fprintf(out, "  [%s/%s] hit-list=%-18s %s\n", c.Family, c.Exploit, hl, c.Raw)
	}
	agg := botcmd.AggregateHitLists(cmds)
	fmt.Fprintf(out, "aggregate hit-list space: %d addresses (%.4f%% of IPv4)\n",
		agg.Size(), 100*float64(agg.Size())/float64(uint64(1)<<32))
	return nil
}
