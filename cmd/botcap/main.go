// Command botcap generates a synthetic bot command-and-control capture,
// or parses one from stdin, and reports the propagation commands and
// aggregate hit-lists — the Table 1 pipeline as a tool.
//
// Usage:
//
//	botcap -generate -bots 11 -seed 7        # emit a synthetic capture
//	botcap -generate | botcap                # parse a capture from stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/cmd/internal/obsflags"
	"repro/internal/botcmd"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "botcap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("botcap", flag.ContinueOnError)
	var (
		generate = fs.Bool("generate", false, "emit a synthetic capture instead of parsing stdin")
		bots     = fs.Int("bots", 11, "bots in the synthetic capture")
		noise    = fs.Int("noise", 40, "noise lines in the synthetic capture")
		seed     = fs.Uint64("seed", 1, "generation seed")
	)
	obsFlags := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	if *generate {
		cfg := botcmd.GeneratorConfig{
			Bots: *bots, CommandsPerBot: 2, NoiseLines: *noise, Seed: *seed,
		}
		lines := botcmd.Generate(cfg)
		sess.Progressf("generated %d capture lines (%d bots)", len(lines), *bots)
		sess.Registry.Counter("botcap_lines_total", "kind", "generated").Add(uint64(len(lines)))
		for _, line := range lines {
			fmt.Fprintln(out, line)
		}
		return sess.Close()
	}

	var capture []string
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		capture = append(capture, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return err
	}
	sess.Progressf("parsing %d capture lines", len(capture))
	cmds := botcmd.ExtractCommands(capture)
	sess.Registry.Counter("botcap_lines_total", "kind", "parsed").Add(uint64(len(capture)))
	sess.Registry.Counter("botcap_commands_total").Add(uint64(len(cmds)))
	fmt.Fprintf(out, "capture: %d lines, %d propagation commands\n", len(capture), len(cmds))
	for _, c := range cmds {
		hl := "unrestricted"
		if p := c.HitList(); p.Bits() > 0 {
			hl = p.String()
		}
		fmt.Fprintf(out, "  [%s/%s] hit-list=%-18s %s\n", c.Family, c.Exploit, hl, c.Raw)
	}
	agg := botcmd.AggregateHitLists(cmds)
	fmt.Fprintf(out, "aggregate hit-list space: %d addresses (%.4f%% of IPv4)\n",
		agg.Size(), 100*float64(agg.Size())/float64(uint64(1)<<32))
	return sess.Close()
}
