package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateThenParseRoundTrip(t *testing.T) {
	var capture bytes.Buffer
	if err := run([]string{"-generate", "-bots", "5", "-seed", "3"}, nil, &capture); err != nil {
		t.Fatal(err)
	}
	if capture.Len() == 0 {
		t.Fatal("generator produced nothing")
	}
	var report bytes.Buffer
	if err := run(nil, strings.NewReader(capture.String()), &report); err != nil {
		t.Fatal(err)
	}
	out := report.String()
	if !strings.Contains(out, "propagation commands") {
		t.Errorf("report missing summary:\n%s", out)
	}
	if !strings.Contains(out, "aggregate hit-list space") {
		t.Errorf("report missing aggregate:\n%s", out)
	}
}

func TestParseEmptyCapture(t *testing.T) {
	var report bytes.Buffer
	if err := run(nil, strings.NewReader(""), &report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "0 propagation commands") {
		t.Errorf("empty capture report wrong:\n%s", report.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}
