package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/xcheck"
)

// syncBuffer lets the test poll run's output while run writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

func waitListen(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced its address; output:\n%s", out.String())
	return ""
}

func TestServeSubmitAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(), "-drain", "15s"}, &out)
	}()
	addr := waitListen(t, &out)

	sc := xcheck.Scenario{
		Worm: xcheck.WormUniform, PopSize: 80, Slash8s: 1, Slash16s: 2,
		PopSeed: 11, ScanRate: 60, TickSeconds: 1, MaxSeconds: 20,
		SeedHosts: 2, SimSeed: 12, Workers: 1,
	}
	_, want, err := serve.OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/run", "application/json", bytes.NewReader(sc.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("served bytes differ from one-shot run")
	}

	cancel() // stands in for SIGTERM: same NotifyContext path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("drain never completed; output:\n%s", out.String())
	}
}

func TestRejectsExtraArgs(t *testing.T) {
	if err := run(context.Background(), []string{"bogus"}, io.Discard); err == nil {
		t.Fatal("extra positional args accepted")
	}
}
