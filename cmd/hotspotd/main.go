// Command hotspotd serves outbreak simulations over HTTP: POST a
// canonical xcheck scenario, get back a deterministic NDJSON tick series.
// The server is built for hostile weather — bounded admission queue with
// load shedding, scenario-hash job coalescing, an LRU result cache over a
// durable store, a synced admission journal for crash-safe recovery, and
// graceful drain on SIGINT/SIGTERM (see DESIGN.md §13).
//
// Usage:
//
//	hotspotd -addr 127.0.0.1:8377 -dir /var/lib/hotspotd -drain 10s
//
// With -dir set, accepted jobs survive crashes: a restarted server replays
// the journal, re-runs incomplete jobs, and — because scenarios are
// deterministic — reproduces the interrupted results byte for byte.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hotspotd: %v\n", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (the signal path), then drains within
// the -drain deadline. Jobs the deadline parks are not lost: they stay
// accepted in the journal and the next start resumes them.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hotspotd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
	dir := fs.String("dir", "", "state directory (journal + result store); empty disables crash recovery")
	queue := fs.Int("queue", 64, "admission queue depth; submissions beyond it are shed with 429")
	workers := fs.Int("workers", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
	cacheN := fs.Int("cache", 256, "in-memory result cache entries")
	retries := fs.Int("retries", 0, "per-job retry budget with exponential backoff")
	jobTimeout := fs.Duration("job-timeout", 0, "per-attempt run deadline (0 = unbounded)")
	drain := fs.Duration("drain", 10*time.Second, "graceful drain deadline on SIGINT/SIGTERM")
	maxBody := fs.Int64("max-body", 1<<20, "maximum request body bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := serve.New(serve.Config{
		Dir:          *dir,
		QueueDepth:   *queue,
		Workers:      *workers,
		CacheEntries: *cacheN,
		MaxBodyBytes: *maxBody,
		Retries:      *retries,
		JobTimeout:   *jobTimeout,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Fprintf(out, "hotspotd: recovered %d incomplete jobs from journal\n", n)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hotspotd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	select {
	case err := <-served:
		return err // listener failed underneath us
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "hotspotd: draining (deadline %s)\n", *drain)
	if err := srv.Drain(*drain); err != nil {
		// Parked jobs are the deadline's designed outcome, not a failure:
		// they resume on the next start. Report and exit cleanly.
		fmt.Fprintf(out, "hotspotd: %v\n", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintf(out, "hotspotd: drained\n")
	return nil
}
