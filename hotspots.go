// Package hotspots is a library for studying hotspots — deviations from
// uniform propagation in self-propagating malware — reproducing Cooke, Mao
// and Jahanian, "Hotspots: The Root Causes of Non-Uniformity in
// Self-Propagating Malware" (DSN 2006).
//
// The package is a facade over the implementation packages:
//
//   - propagation models of the studied worms (Blaster, Slammer,
//     CodeRedII) and baselines (uniform, permutation, hit-list scanning);
//   - the exact cycle analysis of Slammer's flawed LCG;
//   - a darknet sensor substrate (the 11 IMS blocks), detection fleets,
//     and placement strategies;
//   - an SI epidemic simulation engine with probe-exact and aggregated
//     drivers;
//   - non-uniformity metrics (chi-square, KL divergence, Gini,
//     orders-of-magnitude spread) and hotspot location;
//   - every table and figure of the paper as a runnable experiment.
//
// # Quick start
//
//	pop, _ := hotspots.SynthesizePopulation(hotspots.DefaultCodeRedIIPopulation(1))
//	list, _ := hotspots.BuildHitList(pop.Addrs(false), 100)
//	res, _ := hotspots.Simulate(hotspots.SimConfig{
//		Pop: pop, Model: hotspots.HitListRateModel(list),
//		ScanRate: 10, TickSeconds: 1, MaxSeconds: 600, SeedHosts: 25, Seed: 1,
//	})
//	fmt.Println(res.FractionInfected())
//
// See the examples/ directory for complete programs.
package hotspots

import (
	"repro/internal/core"
	"repro/internal/cycle"
	"repro/internal/detect"
	"repro/internal/epidemic"
	"repro/internal/experiments"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/obs"
	"repro/internal/payload"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/worm"
)

// Address-space types.
type (
	// Addr is an IPv4 address as a host-order 32-bit integer.
	Addr = ipv4.Addr
	// Prefix is a CIDR block.
	Prefix = ipv4.Prefix
	// AddrSet is an interval set of IPv4 addresses.
	AddrSet = ipv4.Set
)

// ParseAddr parses a dotted-quad address.
func ParseAddr(s string) (Addr, error) { return ipv4.ParseAddr(s) }

// ParsePrefix parses CIDR notation.
func ParsePrefix(s string) (Prefix, error) { return ipv4.ParsePrefix(s) }

// Propagation models.
type (
	// TargetGenerator yields an infected host's probe sequence.
	TargetGenerator = worm.TargetGenerator
	// WormFactory builds per-host generators.
	WormFactory = worm.Factory
)

// Worm factories for the studied threats and baselines.
var (
	// Uniform is the no-hotspots baseline scanner.
	Uniform WormFactory = worm.UniformFactory{}
	// Permutation is Staniford-style permutation scanning.
	Permutation WormFactory = worm.PermutationFactory{}
	// CodeRedII scans with CRII's 1/8 / 1/2 / 3/8 mask preference.
	CodeRedII WormFactory = worm.CodeRedIIFactory{}
)

// Slammer returns the flawed-LCG scanner factory for a sqlsort.dll variant
// (0, 1 or 2).
func Slammer(variant int) WormFactory { return worm.SlammerFactory{Variant: variant} }

// Witty returns the Witty worm's paired-output scanner factory (~10% of
// addresses unreachable from any seed).
func Witty() WormFactory { return worm.WittyFactory{} }

// Blaster returns the tick-count-seeded sequential scanner factory.
func Blaster(ticks worm.TickModel) WormFactory { return worm.BlasterFactory{Ticks: ticks} }

// HitListWorm returns a factory scanning uniformly inside set.
func HitListWorm(set *AddrSet) WormFactory { return worm.HitListFactory{ListSet: set} }

// Preference is a generic octet-mask local-preference profile.
type Preference = worm.Preference

// LocalPreferenceWorm returns a factory for a generic local-preference
// scanner (CRII and Nimda profiles via worm.CodeRedIIPreference and
// worm.NimdaPreference).
func LocalPreferenceWorm(prefs Preference) WormFactory {
	return worm.LocalPreferenceFactory{Prefs: prefs}
}

// SequentialWorm returns a factory for a sequential scanner from a random
// start (the well-seeded Blaster ablation).
func SequentialWorm() WormFactory { return worm.SequentialFactory{} }

// DefaultBlasterTicks returns the boot-time tick model of the Figure 1
// study.
func DefaultBlasterTicks() worm.TickModel { return worm.DefaultRebootTickModel() }

// BuildHitList greedily selects up to k /16s covering the most vulnerable
// hosts and returns them as an address set.
func BuildHitList(vulnerable []Addr, k int) (*AddrSet, float64) {
	prefixes, cover := worm.BuildGreedySlash16HitList(vulnerable, k)
	return ipv4.SetOfPrefixes(prefixes...), cover
}

// Cycle analysis.
type (
	// CycleMap is an affine map x ↦ A·x+B (mod 2^Bits) with exact cycle
	// structure.
	CycleMap = cycle.Map
	// CycleClass is one census entry (cycle length, count).
	CycleClass = cycle.Class
)

// SlammerCycleMap returns the cycle-analysis view of the Slammer LCG.
func SlammerCycleMap(variant int) CycleMap { return worm.SlammerMap(variant) }

// NewCycleMap builds the cycle-analysis view of an arbitrary affine map
// x ↦ a·x + b (mod 2^bits); a must be ≡ 1 (mod 4).
func NewCycleMap(a, b uint32, bits uint) (CycleMap, error) { return cycle.NewMap(a, b, bits) }

// SlammerIntendedMap returns the ablation LCG: Slammer's multiplier with a
// proper odd increment (MSVCRT's 2531011), giving one full-period cycle.
func SlammerIntendedMap() CycleMap {
	return cycle.MustNewMap(worm.SlammerMultiplier, rng.MSVCRTIncrement, 32)
}

// Populations.
type (
	// Population is a synthesized vulnerable population.
	Population = population.Population
	// PopulationConfig controls synthesis.
	PopulationConfig = population.Config
	// CoverageAnchor pins the population's /16 coverage curve.
	CoverageAnchor = population.CoverageAnchor
	// Host is one vulnerable host.
	Host = population.Host
)

// DefaultCodeRedIIPopulation reproduces the paper's measured CodeRedII
// population statistics (134,586 hosts, 47 /8s, 4,481 /16s).
func DefaultCodeRedIIPopulation(seed uint64) PopulationConfig {
	return population.DefaultCodeRedII(seed)
}

// SynthesizePopulation builds a population.
func SynthesizePopulation(cfg PopulationConfig) (*Population, error) {
	return population.Synthesize(cfg)
}

// Environment.
type (
	// Environment models filtering, loss, and topology factors.
	Environment = netenv.Environment
	// Org is an address-space holder with an egress-filtering posture.
	Org = netenv.Org
)

// Sensors and detection.
type (
	// SensorBlock is a named darknet block.
	SensorBlock = sensor.Block
	// SensorFleet routes probes to darknet sensors.
	SensorFleet = sensor.Fleet
	// DetectorFleet is a threshold-alerting detector fleet.
	DetectorFleet = detect.ThresholdFleet
	// ScanDetector is a TRW sequential-hypothesis-testing scan detector.
	ScanDetector = detect.TRW
	// ContentDetector is an EarlyBird-style content-prevalence detector.
	ContentDetector = payload.Earlybird
)

// Connection outcomes fed to a ScanDetector.
const (
	ProbeFailure = detect.Failure
	ProbeSuccess = detect.Success
)

// NewScanDetector builds a TRW detector at the original paper's operating
// point.
func NewScanDetector() (*ScanDetector, error) {
	return detect.NewTRW(detect.DefaultTRWConfig())
}

// NewContentDetector builds an EarlyBird-style detector with simulation-
// scaled defaults.
func NewContentDetector() (*ContentDetector, error) {
	return payload.NewEarlybird(payload.DefaultEarlybirdConfig())
}

// IMSBlocks returns the paper's eleven monitored blocks.
func IMSBlocks() []SensorBlock { return sensor.DefaultIMSBlocks() }

// NewSensorFleet builds a darknet fleet over blocks.
func NewSensorFleet(blocks []SensorBlock) (*SensorFleet, error) { return sensor.NewFleet(blocks) }

// NewDetectorFleet builds a threshold-alerting fleet over /24 prefixes.
func NewDetectorFleet(prefixes []Prefix, threshold uint64) (*DetectorFleet, error) {
	return detect.NewThresholdFleet(prefixes, threshold)
}

// RandomSlash24Placement places n distinct /24 detectors uniformly across
// routable space (avoiding exclude).
func RandomSlash24Placement(n int, seed uint64, exclude *AddrSet) ([]Prefix, error) {
	return detect.RandomSlash24s(n, seed, exclude)
}

// OnePerSlash16Placement places one /24 detector inside each given /16.
func OnePerSlash16Placement(slash16s []uint32, seed uint64) []Prefix {
	return detect.OnePerSlash16(slash16s, seed)
}

// Simulation.
type (
	// SimConfig configures the aggregated epidemic driver.
	SimConfig = sim.FastConfig
	// ExactSimConfig configures the probe-exact driver.
	ExactSimConfig = sim.ExactConfig
	// SimResult is a completed run.
	SimResult = sim.Result
	// RateModel decomposes a memoryless scanner for the fast driver.
	RateModel = sim.RateModel
)

// Simulate runs the aggregated (fast) epidemic driver.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.RunFast(cfg) }

// SimulateExact runs the probe-exact epidemic driver.
func SimulateExact(cfg ExactSimConfig) (*SimResult, error) { return sim.RunExact(cfg) }

// UniformRateModel returns the fast-driver model of a uniform scanner.
func UniformRateModel() RateModel { return sim.NewUniformModel() }

// HitListRateModel returns the fast-driver model of a hit-list scanner.
func HitListRateModel(set *AddrSet) RateModel { return &sim.HitListModel{List: set} }

// CodeRedIIRateModel returns the fast-driver model of CRII's preference.
func CodeRedIIRateModel() RateModel { return sim.NewCodeRedIIModel() }

// LocalPreferenceRateModel returns the fast-driver model of a generic
// local-preference profile.
func LocalPreferenceRateModel(prefs Preference) (RateModel, error) {
	return sim.NewLocalPrefModel(prefs)
}

// Observability. A MetricsRegistry threaded through SimConfig.Metrics or
// ExactSimConfig.Metrics meters a run without perturbing it: telemetry
// consumes no randomness, so a metered run is byte-identical to an
// unmetered one with the same seed.
type (
	// MetricsRegistry collects counters, gauges and fixed-bucket
	// histograms; snapshot it with WritePrometheus or WriteJSON.
	MetricsRegistry = obs.Registry
	// SimClock is simulated time advanced by the drivers; detection
	// latencies and spans are stamped from it, never the wall clock.
	SimClock = obs.SimClock
	// ProbeOutcome classifies the fate of one probe (delivered, filtered,
	// private-dropped, nat-blocked, sensor-hit, self-hit, infection).
	ProbeOutcome = sim.ProbeOutcome
	// ProbeOutcomeCounts tallies probes by outcome; SimResult.Outcomes
	// always sums to the run's emitted probe total.
	ProbeOutcomeCounts = sim.OutcomeCounts
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SI is the closed-form simple-epidemic (logistic) model.
type SI = epidemic.SI

// NewSIModel builds the analytic epidemic baseline for a scanner probing a
// space of the given size.
func NewSIModel(scanRate float64, populationSize, seeds int, space float64) (SI, error) {
	return epidemic.NewSI(scanRate, populationSize, seeds, space)
}

// Analysis.
type (
	// HotspotReport quantifies non-uniformity of a distribution.
	HotspotReport = core.Report
	// FactorClass is the algorithmic/environmental taxonomy.
	FactorClass = core.FactorClass
)

// Factor classes.
const (
	Algorithmic   = core.Algorithmic
	Environmental = core.Environmental
)

// AnalyzeDistribution computes the hotspot report of per-bucket counts.
func AnalyzeDistribution(counts []uint64) HotspotReport { return core.Analyze(counts) }

// FactorDelta compares a distribution against its factor-ablated twin.
type FactorDelta = core.Delta

// CompareDistributions quantifies how much of the non-uniformity in
// withFactor disappears in the ablated run — the attribution step of a
// hotspot root-cause analysis.
func CompareDistributions(withFactor, ablated []uint64) (FactorDelta, error) {
	return core.Compare(withFactor, ablated)
}

// Experiments.
type (
	// Experiment results bundle tables, figures and notes.
	ExperimentResult = experiments.Result
	// ExperimentScale selects quick or full fidelity.
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)

// ExperimentNames lists the reproducible tables and figures.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment reproduces one table or figure by id ("table1" … "fig5c").
func RunExperiment(id string, seed uint64, scale ExperimentScale) (*ExperimentResult, error) {
	return experiments.Run(id, seed, scale)
}
