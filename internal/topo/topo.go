// Package topo abstracts the world a simulated epidemic spreads over.
//
// The drivers in internal/sim historically hard-coded the paper's flat
// IPv4 assumption: victims live at 32-bit addresses, scanners draw
// addresses from interval sets, and sensors are address blocks. A
// Topology names that world explicitly and carries the four things a
// driver needs from it: the address universe and its rank/select
// structure, victim-pool construction over the population, how a worm
// reaches its next victim (global scanning vs neighbor-list traversal),
// and where sensors sit inside the universe. IPv4 is the reference
// implementation — its methods are pure extractions of the fast
// driver's pool math, so routing the driver through them is
// byte-identical to the pre-extraction code (pinned by
// TestIPv4GoldenByteIdentity in internal/sim). Graph worlds such as
// proxgraph spread over neighbor lists instead; DESIGN.md §15 states
// the determinism contract every world must meet.
package topo

import (
	"fmt"
	"sort"

	"repro/internal/ipv4"
)

// Topology is the world a run spreads over. A nil Topology in a driver
// config means IPv4{}, the reference world; the drivers dispatch on the
// dynamic type, so a Topology is either IPv4 or a Graph.
type Topology interface {
	// Name is a stable identifier ("ipv4", "proxgraph") used in scenario
	// serialization, checkpoint keys, and error messages.
	Name() string
}

// Span is a half-open slot range [Lo, Hi) in an address-sorted arena.
// Victim pools in the fast driver are unions of spans: membership is
// positional, so liveness can stay in a shared index and the spans
// themselves never change after construction.
type Span struct{ Lo, Hi int32 }

// IPv4 is the reference topology: the flat 2³² address universe of the
// paper, with victim pools built as span unions over an address-sorted
// slot arena and sensors embedded by interval-set intersection. All
// methods are pure functions of their inputs.
type IPv4 struct{}

// Name implements Topology.
func (IPv4) Name() string { return "ipv4" }

// Universe returns the number of addresses in the world.
func (IPv4) Universe() uint64 { return 1 << 32 }

// Rank returns the number of slots in the address-sorted slice addrs
// whose address is strictly below a — the arena-rank of a.
func (IPv4) Rank(addrs []ipv4.Addr, a ipv4.Addr) int {
	return sort.Search(len(addrs), func(i int) bool { return addrs[i] >= a })
}

// VictimSpans maps a target set onto an address-sorted arena region,
// appending one Span per interval that covers at least one slot. addrs
// is the region's slot-address slice and base its global offset, so the
// returned spans index the whole arena, not the region. Spans cover
// every host in the set regardless of infection state — liveness lives
// in the driver's shared index — so the result is immutable.
func (IPv4) VictimSpans(addrs []ipv4.Addr, base int32, set *ipv4.Set, dst []Span) []Span {
	for _, iv := range set.Intervals() {
		lo := sort.Search(len(addrs), func(i int) bool { return addrs[i] >= iv.Lo })
		hi := sort.Search(len(addrs), func(i int) bool { return addrs[i] > iv.Hi })
		if lo < hi {
			dst = append(dst, Span{Lo: base + int32(lo), Hi: base + int32(hi)})
		}
	}
	return dst
}

// EmbedSensors intersects the monitored address set with a component's
// target set, removes hard-blocked space, and freezes the result so
// parallel phase-1 workers can Select from it concurrently. The
// returned set may be empty; it is never nil.
func (IPv4) EmbedSensors(sensorSet, set, blocked *ipv4.Set) *ipv4.Set {
	inter := sensorSet.Intersect(set)
	if blocked != nil {
		inter = inter.Subtract(blocked)
	}
	inter.Freeze()
	return inter
}

// Graph is a neighbor-structured Topology: a fixed node set where an
// infected node probes only its own adjacency list. Node ids are
// 0..Nodes()-1 and double as the world's addresses (trace events record
// the victim's node id in the Addr field).
type Graph interface {
	Topology
	// Nodes returns the node count.
	Nodes() int
	// Degree returns node's neighbor count. Isolated nodes (degree 0)
	// are legal; the drivers give them no probes.
	Degree(node int) int
	// Neighbors returns node's adjacency list in strictly ascending node
	// order. The slice aliases the world's storage — callers must not
	// modify it. Sorted adjacency is part of the determinism contract:
	// drivers iterate it positionally, never through a map.
	Neighbors(node int) []int32
	// IsSensor reports whether node is a sensor: probes to it are
	// observed and counted, and it can never become infected.
	IsSensor(node int) bool
	// SensorCount returns the number of sensor nodes.
	SensorCount() int
}

// ValidateGraph checks the structural invariants the sim drivers and
// xcheck oracles rely on: neighbor ids in range, strictly ascending
// adjacency (sorted, no duplicates, no self-loops), symmetric edges,
// and a sensor count that matches IsSensor. Cost is O(nodes + edges·log
// degree); worlds are validated once at construction, not per run.
func ValidateGraph(g Graph) error {
	n := g.Nodes()
	if n <= 0 {
		return fmt.Errorf("topo: graph %q has %d nodes", g.Name(), n)
	}
	sensors := 0
	for i := 0; i < n; i++ {
		if g.IsSensor(i) {
			sensors++
		}
		nbrs := g.Neighbors(i)
		if len(nbrs) != g.Degree(i) {
			return fmt.Errorf("topo: node %d Degree %d != len(Neighbors) %d", i, g.Degree(i), len(nbrs))
		}
		prev := int32(-1)
		for _, j := range nbrs {
			if int(j) < 0 || int(j) >= n {
				return fmt.Errorf("topo: node %d has out-of-range neighbor %d", i, j)
			}
			if int(j) == i {
				return fmt.Errorf("topo: node %d has a self-loop", i)
			}
			if j <= prev {
				return fmt.Errorf("topo: node %d adjacency not strictly ascending at %d", i, j)
			}
			prev = j
			back := g.Neighbors(int(j))
			k := sort.Search(len(back), func(p int) bool { return back[p] >= int32(i) })
			if k >= len(back) || back[k] != int32(i) {
				return fmt.Errorf("topo: edge %d->%d is not symmetric", i, j)
			}
		}
	}
	if sensors != g.SensorCount() {
		return fmt.Errorf("topo: SensorCount %d but %d nodes report IsSensor", g.SensorCount(), sensors)
	}
	return nil
}
