package topo

import (
	"strings"
	"testing"

	"repro/internal/ipv4"
)

func TestIPv4VictimSpansMatchesBruteForce(t *testing.T) {
	// A sorted arena with gaps, duplicates-free, straddling the set's
	// interval boundaries.
	addrs := []ipv4.Addr{10, 11, 12, 50, 51, 99, 100, 101, 200, 255}
	set := ipv4.NewSet(
		ipv4.Interval{Lo: 11, Hi: 51},
		ipv4.Interval{Lo: 100, Hi: 150},
		ipv4.Interval{Lo: 250, Hi: 255},
	)
	spans := IPv4{}.VictimSpans(addrs, 7, set, nil)
	// Brute force: the covered slots, shifted by the base.
	var want []int32
	for i, a := range addrs {
		if set.Contains(a) {
			want = append(want, 7+int32(i))
		}
	}
	var got []int32
	for _, sp := range spans {
		if sp.Lo >= sp.Hi {
			t.Fatalf("empty span %+v", sp)
		}
		for s := sp.Lo; s < sp.Hi; s++ {
			got = append(got, s)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("spans cover %d slots, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestIPv4VictimSpansEmptyIntersection(t *testing.T) {
	addrs := []ipv4.Addr{10, 20, 30}
	set := ipv4.NewSet(ipv4.Interval{Lo: 100, Hi: 200})
	if spans := (IPv4{}).VictimSpans(addrs, 0, set, nil); len(spans) != 0 {
		t.Fatalf("expected no spans, got %v", spans)
	}
}

func TestIPv4EmbedSensors(t *testing.T) {
	sensors := ipv4.NewSet(ipv4.Interval{Lo: 100, Hi: 199})
	target := ipv4.NewSet(ipv4.Interval{Lo: 0, Hi: 149})
	blocked := ipv4.NewSet(ipv4.Interval{Lo: 120, Hi: 129})
	inter := IPv4{}.EmbedSensors(sensors, target, blocked)
	if inter == nil {
		t.Fatal("nil intersection")
	}
	if got, want := inter.Size(), uint64(40); got != want { // 100..149 minus 120..129
		t.Fatalf("embedded sensor size %d, want %d", got, want)
	}
	// Nil blocked set and empty results are both legal.
	if got := (IPv4{}).EmbedSensors(sensors, target, nil).Size(); got != 50 {
		t.Fatalf("unblocked size %d, want 50", got)
	}
	none := ipv4.NewSet(ipv4.Interval{Lo: 300, Hi: 400})
	if got := (IPv4{}).EmbedSensors(sensors, none, nil); got == nil || got.Size() != 0 {
		t.Fatalf("empty intersection should be a non-nil empty set, got %v", got)
	}
}

func TestIPv4RankAndUniverse(t *testing.T) {
	addrs := []ipv4.Addr{5, 10, 20}
	w := IPv4{}
	for _, tc := range []struct {
		a    ipv4.Addr
		want int
	}{{0, 0}, {5, 0}, {6, 1}, {10, 1}, {15, 2}, {21, 3}} {
		if got := w.Rank(addrs, tc.a); got != tc.want {
			t.Errorf("Rank(%d) = %d, want %d", tc.a, got, tc.want)
		}
	}
	if w.Universe() != 1<<32 {
		t.Fatalf("Universe() = %d", w.Universe())
	}
	if w.Name() != "ipv4" {
		t.Fatalf("Name() = %q", w.Name())
	}
}

// fakeGraph is a hand-wired Graph for validator tests.
type fakeGraph struct {
	adj     [][]int32
	sensors []bool
	count   int
}

func (g *fakeGraph) Name() string            { return "fake" }
func (g *fakeGraph) Nodes() int              { return len(g.adj) }
func (g *fakeGraph) Degree(i int) int        { return len(g.adj[i]) }
func (g *fakeGraph) Neighbors(i int) []int32 { return g.adj[i] }
func (g *fakeGraph) IsSensor(i int) bool     { return g.sensors[i] }
func (g *fakeGraph) SensorCount() int        { return g.count }

func validFake() *fakeGraph {
	return &fakeGraph{
		adj:     [][]int32{{1, 2}, {0}, {0, 3}, {2}},
		sensors: []bool{false, false, false, true},
		count:   1,
	}
}

func TestValidateGraph(t *testing.T) {
	if err := ValidateGraph(validFake()); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*fakeGraph)
		want string
	}{
		{"asymmetric", func(g *fakeGraph) { g.adj[1] = []int32{0, 3} }, "not symmetric"},
		{"self-loop", func(g *fakeGraph) { g.adj[1] = []int32{0, 1} }, "self-loop"},
		{"unsorted", func(g *fakeGraph) { g.adj[0] = []int32{2, 1} }, "ascending"},
		{"duplicate", func(g *fakeGraph) { g.adj[0] = []int32{1, 1, 2} }, "ascending"},
		{"out-of-range", func(g *fakeGraph) { g.adj[0] = []int32{1, 9} }, "out-of-range"},
		{"sensor-count", func(g *fakeGraph) { g.count = 2 }, "SensorCount"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := validFake()
			tc.mut(g)
			err := ValidateGraph(g)
			if err == nil {
				t.Fatal("broken graph accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
