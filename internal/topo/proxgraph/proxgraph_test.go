package proxgraph

import (
	"testing"

	"repro/internal/topo"
)

func mustWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldMeetsGraphContract(t *testing.T) {
	// Also proves *World satisfies topo.Graph at compile time.
	var g topo.Graph = mustWorld(t, Config{Nodes: 500, Degree: 6, Sensors: 20, Seed: 42})
	if err := topo.ValidateGraph(g); err != nil {
		t.Fatal(err)
	}
	if g.Name() != "proxgraph" {
		t.Fatalf("Name() = %q", g.Name())
	}
	if g.SensorCount() != 20 {
		t.Fatalf("SensorCount() = %d, want 20", g.SensorCount())
	}
}

func TestDegreeBoundIsHard(t *testing.T) {
	w := mustWorld(t, Config{Nodes: 800, Degree: 4, Seed: 7})
	for i := 0; i < w.Nodes(); i++ {
		if d := w.Degree(i); d > 4 {
			t.Fatalf("node %d has degree %d > bound 4", i, d)
		}
	}
	if w.Edges() == 0 {
		t.Fatal("default-radius world built with zero edges")
	}
}

func TestSameConfigSameWorld(t *testing.T) {
	cfg := Config{Nodes: 600, Degree: 8, Sensors: 30, Seed: 123}
	a, b := mustWorld(t, cfg), mustWorld(t, cfg)
	if a.Edges() != b.Edges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Edges(), b.Edges())
	}
	for i := 0; i < a.Nodes(); i++ {
		if a.IsSensor(i) != b.IsSensor(i) {
			t.Fatalf("sensor choice differs at node %d", i)
		}
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("node %d degree differs: %d vs %d", i, len(na), len(nb))
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("node %d adjacency differs at position %d", i, k)
			}
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	a := mustWorld(t, Config{Nodes: 400, Degree: 6, Seed: 1})
	b := mustWorld(t, Config{Nodes: 400, Degree: 6, Seed: 2})
	same := true
	for i := 0; same && i < a.Nodes(); i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			same = false
			break
		}
		for k := range na {
			if na[k] != nb[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical adjacency")
	}
}

func TestExplicitRadius(t *testing.T) {
	w := mustWorld(t, Config{Nodes: 300, Degree: 5, Radius: 0.25, Seed: 9})
	if w.Radius() != 0.25 {
		t.Fatalf("Radius() = %v, want 0.25", w.Radius())
	}
	if err := topo.ValidateGraph(w); err != nil {
		t.Fatal(err)
	}
	// A generous radius with a small node count must still respect the
	// degree bound via the mutual-kNN rule.
	dense := mustWorld(t, Config{Nodes: 100, Degree: 3, Radius: 1.5, Seed: 9})
	for i := 0; i < dense.Nodes(); i++ {
		if d := dense.Degree(i); d > 3 {
			t.Fatalf("dense node %d degree %d > 3", i, d)
		}
	}
	if err := topo.ValidateGraph(dense); err != nil {
		t.Fatal(err)
	}
}

func TestConfigRejection(t *testing.T) {
	bad := []Config{
		{Nodes: 1, Degree: 3},
		{Nodes: 0, Degree: 3},
		{Nodes: -5, Degree: 3},
		{Nodes: 100, Degree: 0},
		{Nodes: 100, Degree: -1},
		{Nodes: 100, Degree: 3, Sensors: -1},
		{Nodes: 100, Degree: 3, Sensors: 100},
		{Nodes: 100, Degree: 3, Radius: -0.1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestPositionsInUnitSquare(t *testing.T) {
	w := mustWorld(t, Config{Nodes: 256, Degree: 4, Seed: 55})
	for i := 0; i < w.Nodes(); i++ {
		x, y := w.Pos(i)
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			t.Fatalf("node %d at (%v, %v) outside unit square", i, x, y)
		}
	}
}
