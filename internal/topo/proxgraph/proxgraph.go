// Package proxgraph builds deterministic proximity-graph worlds for the
// topology-aware sim drivers, after the WiFi-epidemiology setting of Hu
// et al.: nodes are routers scattered in the unit square, and a worm on
// one router can only probe the routers physically near it. The graph
// is a mutual-k-nearest-neighbor geometric graph — an undirected edge
// exists iff each endpoint ranks the other within its Degree nearest
// candidates inside the candidate Radius, ranked by (distance², id).
// The mutual rule gives a hard degree bound (≤ Degree) without the
// pruning order mattering, which keeps construction deterministic.
//
// Everything here is a pure function of Config: node placement and
// sensor choice come from seeded rng streams, the spatial grid uses
// counting-sort CSR layouts instead of maps, and adjacency is stored as
// one CSR slice whose per-node lists are ascending by construction —
// so the package holds the detrace/maporder determinism contract with
// no sorting of map keys anywhere on the build path.
package proxgraph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// proxStream namespaces this package's rng streams; the id is drawn
// from "proxgrap" so world construction can never collide with the
// drivers' per-(agent,tick) streams on the same seed.
const proxStream = 0x70726f7867726170

// Config describes a proximity-graph world. The zero Radius asks for
// the default candidate radius, sized so a node expects to see a few
// times Degree candidates: sqrt(4·Degree / (π·Nodes)), clamped to the
// unit square's diameter.
type Config struct {
	Nodes   int     // router count; node ids are 0..Nodes-1
	Degree  int     // k in mutual-kNN: hard per-node degree bound
	Radius  float64 // candidate radius in the unit square; 0 = default
	Sensors int     // sensor nodes, sampled without replacement
	Seed    uint64  // world seed; same Config ⇒ same world, always
}

// World is an immutable proximity-graph topology. It implements
// topo.Graph; a single World is safe for concurrent readers.
type World struct {
	cfg      Config
	radius   float64
	xs, ys   []float64
	nbrOff   []int32 // CSR offsets, len Nodes+1
	nbrs     []int32 // CSR adjacency, ascending within each node
	sensor   []bool
	nSensors int
}

// DefaultRadius returns the candidate radius used when Config.Radius is
// zero: the expected candidate count under uniform placement is
// nodes·π·r², so this targets about 4·degree candidates per node.
func DefaultRadius(nodes, degree int) float64 {
	r := math.Sqrt(4 * float64(degree) / (math.Pi * float64(nodes)))
	if r > math.Sqrt2 {
		r = math.Sqrt2
	}
	return r
}

// New builds the world for cfg. Construction is O(nodes·c·log c) where
// c is the per-node candidate count — sized by Radius, not by Nodes —
// so million-node worlds build in seconds.
func New(cfg Config) (*World, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("proxgraph: Nodes %d, need at least 2", cfg.Nodes)
	}
	if cfg.Degree < 1 {
		return nil, fmt.Errorf("proxgraph: Degree %d, need at least 1", cfg.Degree)
	}
	if cfg.Sensors < 0 || cfg.Sensors >= cfg.Nodes {
		return nil, fmt.Errorf("proxgraph: Sensors %d outside [0, Nodes)", cfg.Sensors)
	}
	if math.IsNaN(cfg.Radius) || math.IsInf(cfg.Radius, 0) || cfg.Radius < 0 {
		return nil, fmt.Errorf("proxgraph: Radius %v is not a finite non-negative number", cfg.Radius)
	}
	w := &World{cfg: cfg, radius: cfg.Radius}
	if w.radius == 0 {
		w.radius = DefaultRadius(cfg.Nodes, cfg.Degree)
	}
	w.place()
	w.link()
	w.markSensors()
	return w, nil
}

// place scatters the nodes over the unit square from one seeded stream,
// two draws per node in id order.
func (w *World) place() {
	n := w.cfg.Nodes
	w.xs = make([]float64, n)
	w.ys = make([]float64, n)
	r := rng.NewXoshiroStream(w.cfg.Seed, proxStream, 0)
	for i := 0; i < n; i++ {
		w.xs[i] = r.Float64()
		w.ys[i] = r.Float64()
	}
}

// cand is one candidate neighbor during preference ranking.
type cand struct {
	d2 float64
	id int32
}

// link builds the mutual-kNN adjacency. Stage 1 buckets nodes into a
// radius-sized grid with a counting-sort CSR (stable, so each cell's
// nodes stay in ascending id order). Stage 2 ranks each node's in-radius
// candidates by (distance², id) — ids are unique, so the order is total
// and the unstable sort is still deterministic — and keeps the Degree
// nearest as the node's preference list, re-sorted to ascending id.
// Stage 3 keeps an edge iff it appears in both endpoints' preference
// lists; preference lists are ascending, so the final CSR is too.
func (w *World) link() {
	n := w.cfg.Nodes
	gw := int(1/w.radius) + 1
	if gw > 4096 {
		gw = 4096
	}
	cell := func(i int) int {
		cx := int(w.xs[i] * float64(gw))
		cy := int(w.ys[i] * float64(gw))
		if cx >= gw {
			cx = gw - 1
		}
		if cy >= gw {
			cy = gw - 1
		}
		return cy*gw + cx
	}
	nc := gw * gw
	cellOff := make([]int32, nc+1)
	for i := 0; i < n; i++ {
		cellOff[cell(i)+1]++
	}
	for c := 0; c < nc; c++ {
		cellOff[c+1] += cellOff[c]
	}
	cellNodes := make([]int32, n)
	fill := make([]int32, nc)
	for i := 0; i < n; i++ {
		c := cell(i)
		cellNodes[cellOff[c]+fill[c]] = int32(i)
		fill[c]++
	}

	k := w.cfg.Degree
	prefOff := make([]int32, n+1)
	pref := make([]int32, 0, n*k)
	r2 := w.radius * w.radius
	// A candidate can be at most radius away, i.e. at most
	// ceil(radius·gw) grid cells away on either axis; +1 absorbs the
	// floor truncation, over-covering by at most one cell ring.
	span := int(w.radius*float64(gw)) + 1
	scratch := make([]cand, 0, 64)
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		cx := int(w.xs[i] * float64(gw))
		cy := int(w.ys[i] * float64(gw))
		if cx >= gw {
			cx = gw - 1
		}
		if cy >= gw {
			cy = gw - 1
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= gw {
				continue
			}
			for dx := -span; dx <= span; dx++ {
				x := cx + dx
				if x < 0 || x >= gw {
					continue
				}
				c := y*gw + x
				for _, j := range cellNodes[cellOff[c]:cellOff[c+1]] {
					if int(j) == i {
						continue
					}
					ddx := w.xs[j] - w.xs[i]
					ddy := w.ys[j] - w.ys[i]
					d2 := ddx*ddx + ddy*ddy
					if d2 <= r2 {
						scratch = append(scratch, cand{d2: d2, id: j})
					}
				}
			}
		}
		sort.Slice(scratch, func(a, b int) bool {
			if scratch[a].d2 != scratch[b].d2 {
				return scratch[a].d2 < scratch[b].d2
			}
			return scratch[a].id < scratch[b].id
		})
		keep := scratch
		if len(keep) > k {
			keep = keep[:k]
		}
		lo := len(pref)
		for _, c := range keep {
			pref = append(pref, c.id)
		}
		sortInt32s(pref[lo:])
		prefOff[i+1] = int32(len(pref))
	}

	w.nbrOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		deg := int32(0)
		for _, j := range pref[prefOff[i]:prefOff[i+1]] {
			if prefHas(pref[prefOff[j]:prefOff[j+1]], int32(i)) {
				deg++
			}
		}
		w.nbrOff[i+1] = w.nbrOff[i] + deg
	}
	w.nbrs = make([]int32, w.nbrOff[n])
	for i := 0; i < n; i++ {
		at := w.nbrOff[i]
		for _, j := range pref[prefOff[i]:prefOff[i+1]] {
			if prefHas(pref[prefOff[j]:prefOff[j+1]], int32(i)) {
				w.nbrs[at] = j
				at++
			}
		}
	}
}

// prefHas reports whether the ascending preference list holds id.
func prefHas(list []int32, id int32) bool {
	p := sort.Search(len(list), func(x int) bool { return list[x] >= id })
	return p < len(list) && list[p] == id
}

// sortInt32s sorts the slice ascending.
func sortInt32s(v []int32) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// markSensors samples the sensor nodes without replacement on the
// world seed's second stream, independent of placement draws.
func (w *World) markSensors() {
	w.sensor = make([]bool, w.cfg.Nodes)
	if w.cfg.Sensors == 0 {
		return
	}
	r := rng.NewXoshiroStream(w.cfg.Seed, proxStream, 1)
	for _, id := range r.SampleWithoutReplacement(w.cfg.Nodes, w.cfg.Sensors) {
		w.sensor[id] = true
	}
	w.nSensors = w.cfg.Sensors
}

// Name implements topo.Topology.
func (w *World) Name() string { return "proxgraph" }

// Nodes implements topo.Graph.
func (w *World) Nodes() int { return w.cfg.Nodes }

// Degree implements topo.Graph.
func (w *World) Degree(node int) int {
	return int(w.nbrOff[node+1] - w.nbrOff[node])
}

// Neighbors implements topo.Graph. The returned slice aliases the
// world's CSR storage and must not be modified.
func (w *World) Neighbors(node int) []int32 {
	return w.nbrs[w.nbrOff[node]:w.nbrOff[node+1]]
}

// IsSensor implements topo.Graph.
func (w *World) IsSensor(node int) bool { return w.sensor[node] }

// SensorCount implements topo.Graph.
func (w *World) SensorCount() int { return w.nSensors }

// Radius returns the candidate radius the world was built with (the
// default if Config.Radius was zero).
func (w *World) Radius() float64 { return w.radius }

// Edges returns the undirected edge count.
func (w *World) Edges() int { return len(w.nbrs) / 2 }

// Pos returns node's position in the unit square.
func (w *World) Pos(node int) (x, y float64) { return w.xs[node], w.ys[node] }
