package sensor

import (
	"strings"
	"testing"

	"repro/internal/ipv4"
)

func TestDefaultIMSBlocks(t *testing.T) {
	blocks := DefaultIMSBlocks()
	if len(blocks) != 11 {
		t.Fatalf("got %d blocks, want 11", len(blocks))
	}
	wantBits := map[string]int{
		"A": 23, "B": 24, "C": 24, "D": 20, "E": 21,
		"F": 22, "G": 25, "H": 18, "I": 17, "M": 22, "Z": 8,
	}
	for _, b := range blocks {
		if got := b.Prefix.Bits(); got != wantBits[b.Label] {
			t.Errorf("block %s has /%d, want /%d", b.Label, got, wantBits[b.Label])
		}
	}
	// M must sit inside 192/8 but outside 192.168/16.
	m, ok := BlockByLabel(blocks, "M")
	if !ok {
		t.Fatal("no M block")
	}
	if m.Prefix.First().Slash8() != 192 {
		t.Errorf("M block at %v, want inside 192/8", m.Prefix)
	}
	if ipv4.MustParsePrefix("192.168.0.0/16").Overlaps(m.Prefix) {
		t.Errorf("M block %v overlaps private 192.168/16", m.Prefix)
	}
	// Non-overlapping overall (NewFleet enforces and errors otherwise).
	if _, err := NewFleet(blocks); err != nil {
		t.Fatalf("default blocks overlap: %v", err)
	}
}

func TestSensorCountsAttemptsAndSources(t *testing.T) {
	b := Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/22")}
	s := NewSensor(b)

	src1 := ipv4.MustParseAddr("1.1.1.1")
	src2 := ipv4.MustParseAddr("2.2.2.2")
	dstA := ipv4.MustParseAddr("10.0.1.5")
	dstB := ipv4.MustParseAddr("10.0.3.200")

	if !s.Observe(src1, dstA) || !s.Observe(src1, dstA) || !s.Observe(src2, dstA) {
		t.Fatal("in-block observation rejected")
	}
	if !s.Observe(src1, dstB) {
		t.Fatal("in-block observation rejected")
	}
	if s.Observe(src1, ipv4.MustParseAddr("10.0.4.0")) {
		t.Fatal("out-of-block observation accepted")
	}

	if got := s.TotalAttempts(); got != 4 {
		t.Errorf("TotalAttempts = %d, want 4", got)
	}
	if got := s.UniqueSources(); got != 2 {
		t.Errorf("UniqueSources = %d, want 2", got)
	}
	stats := s.PerSlash24()
	if len(stats) != 4 {
		t.Fatalf("PerSlash24 has %d entries, want 4", len(stats))
	}
	if stats[1].Attempts != 3 || stats[1].UniqueSources != 2 {
		t.Errorf("slot 1 = %+v, want 3 attempts / 2 sources", stats[1])
	}
	if stats[3].Attempts != 1 || stats[3].UniqueSources != 1 {
		t.Errorf("slot 3 = %+v, want 1 attempt / 1 source", stats[3])
	}
	if stats[0].Attempts != 0 || stats[2].Attempts != 0 {
		t.Error("untouched slots non-zero")
	}
	if stats[0].First != ipv4.MustParseAddr("10.0.0.0") || stats[3].First != ipv4.MustParseAddr("10.0.3.0") {
		t.Errorf("slot base addresses wrong: %v / %v", stats[0].First, stats[3].First)
	}
}

func TestSensorSmallerThanSlash24(t *testing.T) {
	b := Block{Label: "G", Prefix: ipv4.MustParsePrefix("10.9.8.128/25")}
	s := NewSensor(b)
	if !s.Observe(1, ipv4.MustParseAddr("10.9.8.200")) {
		t.Fatal("in-block observation rejected")
	}
	if s.Observe(1, ipv4.MustParseAddr("10.9.8.0")) {
		t.Fatal("address outside /25 accepted")
	}
	stats := s.PerSlash24()
	if len(stats) != 1 || stats[0].Attempts != 1 {
		t.Fatalf("PerSlash24 = %+v", stats)
	}
}

func TestSensorReset(t *testing.T) {
	s := NewSensor(Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/24")})
	s.Observe(1, ipv4.MustParseAddr("10.0.0.1"))
	s.Reset()
	if s.TotalAttempts() != 0 || s.UniqueSources() != 0 {
		t.Error("Reset left residual counts")
	}
	if got := s.PerSlash24()[0]; got.Attempts != 0 || got.UniqueSources != 0 {
		t.Error("Reset left residual per-/24 stats")
	}
	// Uniqueness tracking restarts.
	s.Observe(1, ipv4.MustParseAddr("10.0.0.1"))
	if got := s.PerSlash24()[0].UniqueSources; got != 1 {
		t.Errorf("post-reset unique = %d, want 1", got)
	}
}

func TestFleetRouting(t *testing.T) {
	fleet := MustNewFleet(DefaultIMSBlocks())
	src := ipv4.MustParseAddr("7.7.7.7")

	// Inside D.
	if !fleet.Observe(src, ipv4.MustParseAddr("98.136.10.1")) {
		t.Error("probe to D block not recorded")
	}
	// Inside Z.
	if !fleet.Observe(src, ipv4.MustParseAddr("41.200.3.4")) {
		t.Error("probe to Z block not recorded")
	}
	// Monitored nowhere.
	if fleet.Observe(src, ipv4.MustParseAddr("8.8.8.8")) {
		t.Error("probe outside all blocks recorded")
	}

	if got := fleet.Sensor("D").TotalAttempts(); got != 1 {
		t.Errorf("D attempts = %d, want 1", got)
	}
	if got := fleet.Sensor("Z").TotalAttempts(); got != 1 {
		t.Errorf("Z attempts = %d, want 1", got)
	}
	if fleet.Sensor("nope") != nil {
		t.Error("unknown label returned a sensor")
	}
}

func TestFleetRejectsOverlap(t *testing.T) {
	blocks := []Block{
		{Label: "X", Prefix: ipv4.MustParsePrefix("10.0.0.0/8")},
		{Label: "Y", Prefix: ipv4.MustParsePrefix("10.1.0.0/16")},
	}
	if _, err := NewFleet(blocks); err == nil {
		t.Error("overlapping blocks accepted")
	}
}

func TestFleetCoverageSet(t *testing.T) {
	fleet := MustNewFleet(DefaultIMSBlocks())
	cov := fleet.CoverageSet()
	var want uint64
	for _, b := range DefaultIMSBlocks() {
		want += b.Prefix.NumAddrs()
	}
	if got := cov.Size(); got != want {
		t.Errorf("coverage size = %d, want %d", got, want)
	}
	if !cov.Contains(ipv4.MustParseAddr("41.255.255.255")) {
		t.Error("coverage misses Z block")
	}
}

func TestFleetBoundaryRouting(t *testing.T) {
	fleet := MustNewFleet(DefaultIMSBlocks())
	d, _ := BlockByLabel(DefaultIMSBlocks(), "D")
	if !fleet.Observe(1, d.Prefix.First()) || !fleet.Observe(1, d.Prefix.Last()) {
		t.Error("block boundary addresses not recorded")
	}
	if fleet.Observe(1, d.Prefix.First()-1) && fleet.Sensor("D").TotalAttempts() != 2 {
		t.Error("address before block start recorded in D")
	}
	if got := fleet.Sensor("D").TotalAttempts(); got != 2 {
		t.Errorf("D attempts = %d, want 2", got)
	}
}

// Partial-fleet behavior: sensors taken out of service must stop recording
// without disturbing routing, payload accounting, or reset semantics.

func TestSensorDownRecordsNothing(t *testing.T) {
	s := NewSensor(Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/24")})
	if !s.Up() {
		t.Fatal("new sensor not up")
	}
	dst := ipv4.MustParseAddr("10.0.0.5")
	s.SetUp(false)
	if s.Observe(1, dst) {
		t.Error("down sensor recorded a probe")
	}
	if s.TotalAttempts() != 0 || s.UniqueSources() != 0 {
		t.Error("down sensor accumulated traffic stats")
	}
	if got := s.Missed(); got != 1 {
		t.Errorf("Missed = %d, want 1", got)
	}
	// Out-of-block probes are not "missed" — they were never the sensor's.
	if s.Observe(1, ipv4.MustParseAddr("11.0.0.5")); s.Missed() != 1 {
		t.Errorf("out-of-block probe counted as missed")
	}
	s.SetUp(true)
	if !s.Observe(1, dst) || s.TotalAttempts() != 1 {
		t.Error("restored sensor did not record")
	}
}

func TestObserveKindPayloadAccountingWhenDown(t *testing.T) {
	s := NewSensor(Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/24")})
	dst := ipv4.MustParseAddr("10.0.0.9")
	// Up, UDP payload: recorded and payload obtained.
	if rec, pay := s.ObserveKind(1, dst, UDPPayload); !rec || !pay {
		t.Fatalf("up sensor: recorded=%v payload=%v, want true/true", rec, pay)
	}
	s.SetUp(false)
	if rec, pay := s.ObserveKind(2, dst, UDPPayload); rec || pay {
		t.Errorf("down sensor: recorded=%v payload=%v, want false/false", rec, pay)
	}
	if got := s.PayloadsObtained(); got != 1 {
		t.Errorf("PayloadsObtained = %d, want 1 (down probe must not count)", got)
	}
	if got := s.Missed(); got != 1 {
		t.Errorf("Missed = %d, want 1", got)
	}
	if got := s.TotalAttempts(); got != 1 {
		t.Errorf("TotalAttempts = %d, want 1", got)
	}
}

func TestFleetPartialOutageAndResetMidRun(t *testing.T) {
	fleet := MustNewFleet(DefaultIMSBlocks())
	src := ipv4.MustParseAddr("7.7.7.7")
	dstD := ipv4.MustParseAddr("98.136.10.1")
	dstZ := ipv4.MustParseAddr("41.200.3.4")

	if !fleet.SetUp("D", false) {
		t.Fatal("SetUp failed for a known label")
	}
	if fleet.SetUp("nope", false) {
		t.Error("SetUp succeeded for an unknown label")
	}
	if got, want := fleet.NumUp(), len(DefaultIMSBlocks())-1; got != want {
		t.Errorf("NumUp = %d, want %d", got, want)
	}
	if fleet.Observe(src, dstD) {
		t.Error("probe to a down sensor recorded")
	}
	if !fleet.Observe(src, dstZ) {
		t.Error("probe to an up sensor dropped")
	}
	if got := fleet.Missed(); got != 1 {
		t.Errorf("fleet Missed = %d, want 1", got)
	}

	// Reset mid-run: traffic and missed counters clear, posture survives.
	fleet.Reset()
	if got := fleet.Missed(); got != 0 {
		t.Errorf("Missed after Reset = %d, want 0", got)
	}
	if got := fleet.Sensor("Z").TotalAttempts(); got != 0 {
		t.Errorf("Z attempts after Reset = %d, want 0", got)
	}
	if fleet.Sensor("D").Up() {
		t.Error("Reset flipped a down sensor back up")
	}
	if got, want := fleet.NumUp(), len(DefaultIMSBlocks())-1; got != want {
		t.Errorf("NumUp after Reset = %d, want %d", got, want)
	}
	// The run continues: the down sensor keeps missing, up sensors record.
	fleet.Observe(src, dstD)
	if !fleet.Observe(src, dstZ) {
		t.Error("post-reset probe to an up sensor dropped")
	}
	if fleet.Missed() != 1 || fleet.Sensor("Z").TotalAttempts() != 1 {
		t.Error("post-reset accounting wrong")
	}
}

func TestFleetOverlapErrorNamesBlocks(t *testing.T) {
	blocks := []Block{
		{Label: "X", Prefix: ipv4.MustParsePrefix("10.0.0.0/8")},
		{Label: "Y", Prefix: ipv4.MustParsePrefix("10.1.0.0/16")},
	}
	_, err := NewFleet(blocks)
	if err == nil {
		t.Fatal("overlapping blocks accepted")
	}
	msg := err.Error()
	for _, want := range []string{"10.0.0.0/8", "10.1.0.0/16", "overlap"} {
		if !strings.Contains(msg, want) {
			t.Errorf("overlap error %q missing %q", msg, want)
		}
	}
}
