// Zero-alloc invariant for the fleet observation hot path. The race
// detector's instrumentation perturbs allocation counts, so this only
// runs in regular test builds; scripts/check.sh covers both modes.

//go:build !race

package sensor

import (
	"testing"

	"repro/internal/ipv4"
)

// TestFleetObserveWarmNoAllocs: once a sensor has seen a (source, /24)
// pair, re-observing traffic allocates nothing — the per-/24 counters are
// flat arrays and the dedup maps only grow on first sight. This is the
// per-probe path of every simulation with a sensor fleet attached, so a
// single stray allocation here multiplies by billions of probes.
func TestFleetObserveWarmNoAllocs(t *testing.T) {
	fleet := MustNewFleet(DefaultIMSBlocks())
	var pairs [][2]ipv4.Addr
	for i := 0; i < 64; i++ {
		src := ipv4.AddrFromOctets(60, byte(i), 7, 9)
		dst := ipv4.AddrFromOctets(41, byte(i), byte(3*i), 1) // inside Z/8
		pairs = append(pairs, [2]ipv4.Addr{src, dst})
	}
	pairs = append(pairs,
		[2]ipv4.Addr{ipv4.MustParseAddr("60.1.1.1"), ipv4.MustParseAddr("192.52.92.10")}, // M block
		[2]ipv4.Addr{ipv4.MustParseAddr("60.1.1.2"), ipv4.MustParseAddr("35.10.1.200")},  // A block
		[2]ipv4.Addr{ipv4.MustParseAddr("60.1.1.3"), ipv4.MustParseAddr("1.2.3.4")},      // unmonitored
	)
	// Warm: first observation of each pair inserts into the dedup maps.
	for _, p := range pairs {
		fleet.Observe(p[0], p[1])
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, p := range pairs {
			fleet.Observe(p[0], p[1])
		}
	}); allocs != 0 {
		t.Errorf("warm Fleet.Observe allocates %.1f per run, want 0", allocs)
	}
}
