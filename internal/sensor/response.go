package sensor

import "fmt"

// The IMS darknets' defining design choice (paper §4.1): the sensor
// "actively responded to TCP SYN packets with a SYN-ACK packet to elicit
// the first data payload on all TCP streams". A passive darknet sees only
// the SYN of a TCP worm — enough to count probes, not enough to identify
// the threat. Single-packet UDP worms (Slammer) deliver their payload
// unconditionally. This file models that distinction so detection layers
// (signature extraction, content prevalence) can be driven faithfully.

// ProbeKind classifies how a worm's first packet carries its payload.
type ProbeKind int

// Probe kinds.
const (
	// UDPPayload: the exploit rides the first (only) packet — Slammer.
	UDPPayload ProbeKind = iota + 1
	// TCPSYN: the exploit payload follows only after a completed
	// handshake — CodeRedII (80/tcp), Blaster (135/tcp), the bots.
	TCPSYN
)

// String names the kind.
func (k ProbeKind) String() string {
	switch k {
	case UDPPayload:
		return "udp-payload"
	case TCPSYN:
		return "tcp-syn"
	default:
		return fmt.Sprintf("ProbeKind(%d)", int(k))
	}
}

// ResponseMode is a darknet sensor's liveness posture.
type ResponseMode int

// Response modes.
const (
	// Passive: record packets, answer nothing (a classic network
	// telescope).
	Passive ResponseMode = iota + 1
	// ActiveSYNACK: answer TCP SYNs with SYN-ACK to elicit the first data
	// payload (the IMS design).
	ActiveSYNACK
)

// String names the mode.
func (m ResponseMode) String() string {
	switch m {
	case Passive:
		return "passive"
	case ActiveSYNACK:
		return "active-synack"
	default:
		return fmt.Sprintf("ResponseMode(%d)", int(m))
	}
}

// PayloadDelivered reports whether a sensor operating in mode receives the
// payload of a probe of the given kind.
func PayloadDelivered(kind ProbeKind, mode ResponseMode) bool {
	switch kind {
	case UDPPayload:
		return true
	case TCPSYN:
		return mode == ActiveSYNACK
	default:
		return false
	}
}

// WormProbeKind returns the probe kind of each studied worm's first packet.
func WormProbeKind(worm string) (ProbeKind, bool) {
	switch worm {
	case "slammer":
		return UDPPayload, true
	case "codered2", "blaster", "witty-tcp", "agobot", "sdbot", "hitlist-worm":
		return TCPSYN, true
	case "witty":
		// Witty was UDP (ICQ/ISS ports).
		return UDPPayload, true
	default:
		return 0, false
	}
}
