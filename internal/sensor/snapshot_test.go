package sensor

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ipv4"
)

// populatedFleet builds a fleet with some recorded traffic.
func populatedFleet(t *testing.T) *Fleet {
	t.Helper()
	fleet := MustNewFleet(DefaultIMSBlocks())
	targets := []string{"98.136.0.5", "98.136.3.7", "41.1.2.3", "192.52.92.9"}
	for i, dst := range targets {
		for j := 0; j <= i; j++ {
			fleet.Observe(ipv4.Addr(1000+j), ipv4.MustParseAddr(dst))
		}
	}
	return fleet
}

func TestSnapshotBinaryRoundTrip(t *testing.T) {
	snap := populatedFleet(t).Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := snap.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Error("binary round trip lost data")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := populatedFleet(t).Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Error("JSON round trip lost data")
	}
}

func TestSnapshotContents(t *testing.T) {
	snap := populatedFleet(t).Snapshot()
	d, ok := snap.Block("D")
	if !ok {
		t.Fatal("D block missing from snapshot")
	}
	if d.TotalAttempts != 3 { // 1 probe to .0.5 + 2 to .3.7
		t.Errorf("D attempts = %d, want 3", d.TotalAttempts)
	}
	if d.Attempts[0] != 1 || d.Attempts[3] != 2 {
		t.Errorf("D per-/24 = %v", d.Attempts[:4])
	}
	if _, ok := snap.Block("nope"); ok {
		t.Error("unknown label found")
	}
	counts := snap.PerSlash24Counts()
	var want int
	for _, b := range DefaultIMSBlocks() {
		want += b.Prefix.Slash24s()
	}
	if len(counts) != want {
		t.Errorf("concatenated counts = %d slots, want %d", len(counts), want)
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated valid stream.
	snap := populatedFleet(t).Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSnapshot(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSnapshotValidateCatchesCorruption(t *testing.T) {
	snap := populatedFleet(t).Snapshot()
	snap.Blocks[0].Attempts = snap.Blocks[0].Attempts[:1]
	if err := snap.Validate(); err == nil {
		t.Error("series mismatch not caught")
	}
	snap = populatedFleet(t).Snapshot()
	snap.Blocks[0].Prefix = "bogus"
	if err := snap.Validate(); err == nil {
		t.Error("bad prefix not caught")
	}
}
