package sensor

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/payload"
	"repro/internal/rng"
)

func TestPayloadDelivered(t *testing.T) {
	tests := []struct {
		kind ProbeKind
		mode ResponseMode
		want bool
	}{
		{kind: UDPPayload, mode: Passive, want: true},
		{kind: UDPPayload, mode: ActiveSYNACK, want: true},
		{kind: TCPSYN, mode: Passive, want: false},
		{kind: TCPSYN, mode: ActiveSYNACK, want: true},
		{kind: ProbeKind(0), mode: ActiveSYNACK, want: false},
	}
	for _, tt := range tests {
		if got := PayloadDelivered(tt.kind, tt.mode); got != tt.want {
			t.Errorf("PayloadDelivered(%v, %v) = %v, want %v", tt.kind, tt.mode, got, tt.want)
		}
	}
}

func TestWormProbeKind(t *testing.T) {
	tests := []struct {
		worm string
		want ProbeKind
	}{
		{worm: "slammer", want: UDPPayload},
		{worm: "witty", want: UDPPayload},
		{worm: "codered2", want: TCPSYN},
		{worm: "blaster", want: TCPSYN},
	}
	for _, tt := range tests {
		got, ok := WormProbeKind(tt.worm)
		if !ok || got != tt.want {
			t.Errorf("WormProbeKind(%s) = %v,%v, want %v", tt.worm, got, ok, tt.want)
		}
	}
	if _, ok := WormProbeKind("unknown"); ok {
		t.Error("unknown worm classified")
	}
}

func TestObserveKindPayloadAccounting(t *testing.T) {
	b := Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/24")}
	src := ipv4.MustParseAddr("1.1.1.1")
	dst := ipv4.MustParseAddr("10.0.0.5")

	active := NewSensor(b)
	if rec, pay := active.ObserveKind(src, dst, TCPSYN); !rec || !pay {
		t.Errorf("active sensor: recorded=%v payload=%v, want true/true", rec, pay)
	}
	if rec, pay := active.ObserveKind(src, dst, UDPPayload); !rec || !pay {
		t.Errorf("active sensor UDP: recorded=%v payload=%v", rec, pay)
	}
	if got := active.PayloadsObtained(); got != 2 {
		t.Errorf("PayloadsObtained = %d, want 2", got)
	}

	passive := NewSensor(b)
	passive.Mode = Passive
	if rec, pay := passive.ObserveKind(src, dst, TCPSYN); !rec || pay {
		t.Errorf("passive sensor TCP: recorded=%v payload=%v, want true/false", rec, pay)
	}
	if rec, pay := passive.ObserveKind(src, dst, UDPPayload); !rec || !pay {
		t.Errorf("passive sensor UDP: recorded=%v payload=%v, want true/true", rec, pay)
	}
	if got := passive.PayloadsObtained(); got != 1 {
		t.Errorf("passive PayloadsObtained = %d, want 1", got)
	}
	// The probe counts are identical — only payload visibility differs.
	if active.TotalAttempts() != passive.TotalAttempts() {
		t.Error("probe accounting diverged between modes")
	}

	// Out-of-block probes report nothing.
	if rec, pay := active.ObserveKind(src, ipv4.MustParseAddr("10.0.1.0"), TCPSYN); rec || pay {
		t.Error("out-of-block probe recorded")
	}

	active.Reset()
	if active.PayloadsObtained() != 0 {
		t.Error("reset left payload count")
	}
}

// TestActiveResponseEnablesSignatureExtraction is the IMS design rationale
// end to end: the same TCP worm traffic hits a passive telescope and an
// active-response darknet; only the active sensor can feed content
// prevalence and extract a signature.
func TestActiveResponseEnablesSignatureExtraction(t *testing.T) {
	block := Block{Label: "T", Prefix: ipv4.MustParsePrefix("10.0.0.0/16")}
	active := NewSensor(block)
	passive := NewSensor(block)
	passive.Mode = Passive

	ebCfg := payload.DefaultEarlybirdConfig()
	ebCfg.SampleRate = 8
	activeEB, err := payload.NewEarlybird(ebCfg)
	if err != nil {
		t.Fatal(err)
	}
	passiveEB, err := payload.NewEarlybird(ebCfg)
	if err != nil {
		t.Fatal(err)
	}

	wormContent := payload.DefaultWormPayload("codered2")
	kind, _ := WormProbeKind("codered2")
	r := rng.NewXoshiro(5)
	for i := 0; i < 300; i++ {
		src := ipv4.Addr(0x20000000 + r.Uint64n(2000))
		dst := block.Prefix.Nth(r.Uint64n(block.Prefix.NumAddrs()))
		data := wormContent.Instance(uint64(i))
		if _, pay := active.ObserveKind(src, dst, kind); pay {
			activeEB.Observe(src, dst, data)
		}
		if _, pay := passive.ObserveKind(src, dst, kind); pay {
			passiveEB.Observe(src, dst, data)
		}
	}
	if activeEB.Alarms() == 0 {
		t.Error("active-response sensor never extracted a signature")
	}
	if passiveEB.Alarms() != 0 {
		t.Error("passive telescope extracted a TCP signature it could not have seen")
	}
	if passive.TotalAttempts() != active.TotalAttempts() {
		t.Error("both sensors should count the same probes")
	}
}

func TestResponseStrings(t *testing.T) {
	if UDPPayload.String() != "udp-payload" || TCPSYN.String() != "tcp-syn" {
		t.Error("probe kind names wrong")
	}
	if Passive.String() != "passive" || ActiveSYNACK.String() != "active-synack" {
		t.Error("mode names wrong")
	}
	if ProbeKind(9).String() != "ProbeKind(9)" || ResponseMode(9).String() != "ResponseMode(9)" {
		t.Error("unknown formatting wrong")
	}
}
