// Package sensor implements the darknet measurement substrate: blocks of
// unused address space that record every probe landing inside them, exactly
// as the Internet Motion Sensor (IMS) darknets behind the paper's
// measurements do.
//
// A Sensor counts, for every destination /24 inside its block, the number of
// infection attempts and the number of distinct source addresses — the two
// quantities plotted in the paper's Figures 1–4. A Fleet dispatches probes
// to the sensor owning the destination, in O(log n) per probe.
//
// The paper's eleven IMS blocks (anonymized labels with their real CIDR
// sizes) are reproduced with deterministic synthetic placements; see
// DefaultIMSBlocks.
package sensor

import (
	"fmt"
	"sort"

	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Block is a named darknet address block.
type Block struct {
	Label  string
	Prefix ipv4.Prefix
}

// String renders "label/bits" as the paper writes it (e.g. "D/20").
func (b Block) String() string {
	return fmt.Sprintf("%s/%d", b.Label, b.Prefix.Bits())
}

// DefaultIMSBlocks returns the eleven monitored blocks with the paper's
// labels and sizes: (A/23, B/24, C/24, D/20, E/21, F/22, G/25, H/18, I/17,
// M/22, Z/8). Placements are synthetic but honor the one positional fact the
// paper relies on: the M block lies inside 192.0.0.0/8 (and outside
// 192.168.0.0/16), which is why CodeRedII traffic leaking from NAT'd hosts
// creates its hotspot there. The remaining blocks are spread across distinct
// /8s as the real sensors were (9 organizations: ISPs, academic networks,
// an enterprise).
func DefaultIMSBlocks() []Block {
	mk := func(label, cidr string) Block {
		return Block{Label: label, Prefix: ipv4.MustParsePrefix(cidr)}
	}
	return []Block{
		mk("A", "35.10.0.0/23"),
		mk("B", "64.233.160.0/24"),
		mk("C", "80.68.89.0/24"),
		mk("D", "98.136.0.0/20"),
		mk("E", "130.213.8.0/21"),
		mk("F", "152.67.4.0/22"),
		mk("G", "169.229.60.0/25"),
		mk("H", "184.105.128.0/18"),
		mk("I", "204.152.0.0/17"),
		mk("M", "192.52.92.0/22"),
		mk("Z", "41.0.0.0/8"),
	}
}

// BlockByLabel finds a block by its label.
func BlockByLabel(blocks []Block, label string) (Block, bool) {
	for _, b := range blocks {
		if b.Label == label {
			return b, true
		}
	}
	return Block{}, false
}

// Sensor records traffic observed at one darknet block. The zero value is
// unusable; construct with NewSensor. Not safe for concurrent use.
type Sensor struct {
	block Block

	// Mode is the sensor's response posture; NewSensor defaults to
	// ActiveSYNACK, the IMS configuration (payloads elicited on TCP).
	Mode ResponseMode

	attempts []uint64 // infection attempts per /24 within the block
	uniqPer  []uint32 // distinct sources per /24 within the block
	pairSeen map[uint64]struct{}
	sources  map[uint32]struct{} // distinct sources block-wide
	total    uint64
	payloads uint64 // probes whose payload the sensor obtained
	base24   uint32 // the block's first /24 index, precomputed for Observe

	up     bool   // whether the sensor is in service (NewSensor starts up)
	missed uint64 // in-block probes that arrived while down

	trace    *trace.Recorder // see Trace; nil records nothing
	traceClk obs.Clock
}

// NewSensor returns an empty sensor for block.
func NewSensor(block Block) *Sensor {
	n := block.Prefix.Slash24s()
	return &Sensor{
		block:    block,
		Mode:     ActiveSYNACK,
		attempts: make([]uint64, n),
		uniqPer:  make([]uint32, n),
		pairSeen: make(map[uint64]struct{}),
		sources:  make(map[uint32]struct{}),
		up:       true,
		base24:   block.Prefix.First().Slash24(),
	}
}

// Block returns the monitored block.
func (s *Sensor) Block() Block { return s.block }

// Contains reports whether dst lands inside the sensor's block.
func (s *Sensor) Contains(dst ipv4.Addr) bool { return s.block.Prefix.Contains(dst) }

// SetUp puts the sensor in or out of service. A down sensor records
// nothing: in-block probes only bump its missed counter, modelling a
// withdrawn darknet block whose traffic still arrives but goes unheard.
func (s *Sensor) SetUp(up bool) { s.up = up }

// Up reports whether the sensor is in service.
func (s *Sensor) Up() bool { return s.up }

// Missed returns how many in-block probes arrived while the sensor was
// down.
func (s *Sensor) Missed() uint64 { return s.missed }

// Observe records a probe from src to dst. It reports whether dst was
// inside the block (and therefore recorded); a down sensor records
// nothing and reports false.
func (s *Sensor) Observe(src, dst ipv4.Addr) bool {
	if !s.Contains(dst) {
		return false
	}
	if !s.up {
		s.missed++
		return false
	}
	idx := s.slash24Index(dst)
	s.attempts[idx]++
	s.total++
	if s.total == 1 && s.trace != nil {
		t := 0.0
		if s.traceClk != nil {
			t = s.traceClk.Seconds()
		}
		s.trace.Append(trace.Event{Tick: -1, T: t, Kind: trace.KindAlert, Agent: -1, Victim: -1,
			Addr: s.block.Prefix.String(), Vector: "first", Detail: s.block.Label})
	}
	key := uint64(idx)<<32 | uint64(uint32(src))
	if _, dup := s.pairSeen[key]; !dup {
		s.pairSeen[key] = struct{}{}
		s.uniqPer[idx]++
	}
	s.sources[uint32(src)] = struct{}{}
	return true
}

// slash24Index maps an in-block destination to its /24 slot. The block's
// base /24 is precomputed at construction — Observe runs once per
// monitored probe, and the prefix arithmetic showed up in profiles.
func (s *Sensor) slash24Index(dst ipv4.Addr) int {
	if s.block.Prefix.Bits() > 24 {
		// Blocks smaller than a /24 still occupy one slot.
		return 0
	}
	return int(dst.Slash24() - s.base24)
}

// Trace attaches a flight recorder: the sensor's first recorded probe —
// the moment worm traffic first reached this darknet block — appends one
// trace.KindAlert event (Vector "first") stamped with the injected
// clock's simulated time. Reset starts a new recording epoch, so the
// first probe after a reset traces again.
func (s *Sensor) Trace(rec *trace.Recorder, clock obs.Clock) {
	s.trace = rec
	s.traceClk = clock
}

// ObserveKind records a probe like Observe and additionally reports
// whether the sensor obtained the probe's payload given its response mode
// (UDP payloads always; TCP payloads only when actively responding with
// SYN-ACK). Signature-identification layers should only be fed when
// payload is true.
func (s *Sensor) ObserveKind(src, dst ipv4.Addr, kind ProbeKind) (recorded, payload bool) {
	if !s.Observe(src, dst) {
		return false, false
	}
	if PayloadDelivered(kind, s.Mode) {
		s.payloads++
		return true, true
	}
	return true, false
}

// PayloadsObtained returns how many recorded probes yielded their payload.
func (s *Sensor) PayloadsObtained() uint64 { return s.payloads }

// TotalAttempts returns the number of probes recorded.
func (s *Sensor) TotalAttempts() uint64 { return s.total }

// UniqueSources returns the number of distinct source addresses seen
// anywhere in the block.
func (s *Sensor) UniqueSources() int { return len(s.sources) }

// Slash24Stats is the per-/24 view the paper's figures plot.
type Slash24Stats struct {
	// First is the first address of the /24 (or of the sub-/24 block).
	First ipv4.Addr
	// Attempts is the number of probes that landed in this /24.
	Attempts uint64
	// UniqueSources is the number of distinct sources that probed it.
	UniqueSources uint32
}

// PerSlash24 returns per-/24 statistics in address order.
func (s *Sensor) PerSlash24() []Slash24Stats {
	out := make([]Slash24Stats, len(s.attempts))
	base := s.block.Prefix.First()
	for i := range s.attempts {
		out[i] = Slash24Stats{
			First:         base + ipv4.Addr(i)<<8,
			Attempts:      s.attempts[i],
			UniqueSources: s.uniqPer[i],
		}
	}
	return out
}

// Reset clears all recorded traffic (the missed counter included). The
// up/down posture is configuration, not traffic, and survives a reset.
func (s *Sensor) Reset() {
	for i := range s.attempts {
		s.attempts[i] = 0
		s.uniqPer[i] = 0
	}
	// Clear the maps in place: a reset sensor is usually about to record
	// a comparable volume of traffic, so keeping the buckets avoids
	// regrowing them from scratch (sweeps reset fleets once per point).
	clear(s.pairSeen)
	clear(s.sources)
	s.total = 0
	s.payloads = 0
	s.missed = 0
}

// Fleet routes probes to the sensor owning the destination address.
type Fleet struct {
	sensors []*Sensor // sorted by block start address
}

// NewFleet builds a fleet over the given blocks. Blocks must not overlap.
func NewFleet(blocks []Block) (*Fleet, error) {
	sensors := make([]*Sensor, len(blocks))
	for i, b := range blocks {
		sensors[i] = NewSensor(b)
	}
	sort.Slice(sensors, func(i, j int) bool {
		return sensors[i].block.Prefix.First() < sensors[j].block.Prefix.First()
	})
	for i := 1; i < len(sensors); i++ {
		prev, cur := sensors[i-1].block.Prefix, sensors[i].block.Prefix
		if prev.Last() >= cur.First() {
			return nil, fmt.Errorf("sensor: blocks %v and %v overlap", prev, cur)
		}
	}
	return &Fleet{sensors: sensors}, nil
}

// MustNewFleet is like NewFleet but panics on error.
func MustNewFleet(blocks []Block) *Fleet {
	f, err := NewFleet(blocks)
	if err != nil {
		panic(err)
	}
	return f
}

// Observe routes one probe; it reports whether any sensor recorded it.
func (f *Fleet) Observe(src, dst ipv4.Addr) bool {
	if s := f.lookup(dst); s != nil {
		return s.Observe(src, dst)
	}
	return false
}

// lookup returns the sensor whose block contains dst, or nil.
func (f *Fleet) lookup(dst ipv4.Addr) *Sensor {
	i := sort.Search(len(f.sensors), func(i int) bool {
		return f.sensors[i].block.Prefix.Last() >= dst
	})
	if i < len(f.sensors) && f.sensors[i].Contains(dst) {
		return f.sensors[i]
	}
	return nil
}

// Sensor returns the sensor with the given label, or nil.
func (f *Fleet) Sensor(label string) *Sensor {
	for _, s := range f.sensors {
		if s.block.Label == label {
			return s
		}
	}
	return nil
}

// Sensors returns the fleet's sensors ordered by block start address.
func (f *Fleet) Sensors() []*Sensor {
	out := make([]*Sensor, len(f.sensors))
	copy(out, f.sensors)
	return out
}

// Trace attaches a flight recorder to every sensor in the fleet (see
// Sensor.Trace).
func (f *Fleet) Trace(rec *trace.Recorder, clock obs.Clock) {
	for _, s := range f.sensors {
		s.Trace(rec, clock)
	}
}

// SetUp puts the labelled sensor in or out of service; it reports whether
// the label exists.
func (f *Fleet) SetUp(label string, up bool) bool {
	if s := f.Sensor(label); s != nil {
		s.SetUp(up)
		return true
	}
	return false
}

// NumUp returns how many sensors are in service.
func (f *Fleet) NumUp() int {
	n := 0
	for _, s := range f.sensors {
		if s.up {
			n++
		}
	}
	return n
}

// Missed returns the fleet-wide count of probes that arrived at down
// sensors.
func (f *Fleet) Missed() uint64 {
	var n uint64
	for _, s := range f.sensors {
		n += s.missed
	}
	return n
}

// CoverageSet returns the union of all monitored blocks as an address set.
func (f *Fleet) CoverageSet() *ipv4.Set {
	set := &ipv4.Set{}
	for _, s := range f.sensors {
		set.AddPrefix(s.block.Prefix)
	}
	return set
}

// Reset clears every sensor in the fleet.
func (f *Fleet) Reset() {
	for _, s := range f.sensors {
		s.Reset()
	}
}
