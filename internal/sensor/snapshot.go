package sensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/ipv4"
)

// Snapshot is a serializable dump of a fleet's observations: what a darknet
// deployment would persist and exchange (the IMS reports that fed the
// paper's figures). It round-trips through a compact binary format and
// through encoding/json.
type Snapshot struct {
	Blocks []BlockSnapshot `json:"blocks"`
}

// BlockSnapshot is one monitored block's observations.
type BlockSnapshot struct {
	Label  string `json:"label"`
	Prefix string `json:"prefix"`
	// TotalAttempts and UniqueSources summarize the block.
	TotalAttempts uint64 `json:"totalAttempts"`
	UniqueSources uint32 `json:"uniqueSources"`
	// Attempts and Uniq are per-/24 series in address order.
	Attempts []uint64 `json:"attempts"`
	Uniq     []uint32 `json:"uniq"`
}

// Snapshot captures the fleet's current observations.
func (f *Fleet) Snapshot() Snapshot {
	var snap Snapshot
	for _, s := range f.sensors {
		bs := BlockSnapshot{
			Label:         s.block.Label,
			Prefix:        s.block.Prefix.String(),
			TotalAttempts: s.TotalAttempts(),
			UniqueSources: uint32(s.UniqueSources()),
		}
		for _, st := range s.PerSlash24() {
			bs.Attempts = append(bs.Attempts, st.Attempts)
			bs.Uniq = append(bs.Uniq, st.UniqueSources)
		}
		snap.Blocks = append(snap.Blocks, bs)
	}
	return snap
}

// snapshotMagic identifies the binary format ("IMS" + version 1).
var snapshotMagic = [4]byte{'I', 'M', 'S', 1}

// WriteBinary serializes the snapshot in the compact binary format.
func (s Snapshot) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.Blocks))); err != nil {
		return err
	}
	for _, b := range s.Blocks {
		if err := writeString(bw, b.Label); err != nil {
			return err
		}
		if err := writeString(bw, b.Prefix); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b.TotalAttempts); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b.UniqueSources); err != nil {
			return err
		}
		if len(b.Attempts) != len(b.Uniq) {
			return errors.New("sensor: snapshot series length mismatch")
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(b.Attempts))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b.Attempts); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, b.Uniq); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses the binary format.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Snapshot{}, fmt.Errorf("sensor: read magic: %w", err)
	}
	if magic != snapshotMagic {
		return Snapshot{}, errors.New("sensor: not a snapshot stream")
	}
	var nBlocks uint32
	if err := binary.Read(br, binary.LittleEndian, &nBlocks); err != nil {
		return Snapshot{}, err
	}
	const maxBlocks = 1 << 16
	if nBlocks > maxBlocks {
		return Snapshot{}, fmt.Errorf("sensor: implausible block count %d", nBlocks)
	}
	snap := Snapshot{Blocks: make([]BlockSnapshot, 0, nBlocks)}
	for i := uint32(0); i < nBlocks; i++ {
		var b BlockSnapshot
		var err error
		if b.Label, err = readString(br); err != nil {
			return Snapshot{}, err
		}
		if b.Prefix, err = readString(br); err != nil {
			return Snapshot{}, err
		}
		if err := binary.Read(br, binary.LittleEndian, &b.TotalAttempts); err != nil {
			return Snapshot{}, err
		}
		if err := binary.Read(br, binary.LittleEndian, &b.UniqueSources); err != nil {
			return Snapshot{}, err
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return Snapshot{}, err
		}
		if n > 1<<24 {
			return Snapshot{}, fmt.Errorf("sensor: implausible /24 count %d", n)
		}
		b.Attempts = make([]uint64, n)
		b.Uniq = make([]uint32, n)
		if err := binary.Read(br, binary.LittleEndian, b.Attempts); err != nil {
			return Snapshot{}, err
		}
		if err := binary.Read(br, binary.LittleEndian, b.Uniq); err != nil {
			return Snapshot{}, err
		}
		snap.Blocks = append(snap.Blocks, b)
	}
	return snap, nil
}

// Block returns the snapshot for the labeled block.
func (s Snapshot) Block(label string) (BlockSnapshot, bool) {
	for _, b := range s.Blocks {
		if b.Label == label {
			return b, true
		}
	}
	return BlockSnapshot{}, false
}

// PerSlash24Counts reconstructs the concatenated per-/24 attempt
// distribution across all blocks (the input shape of core.Analyze).
func (s Snapshot) PerSlash24Counts() []uint64 {
	var out []uint64
	for _, b := range s.Blocks {
		out = append(out, b.Attempts...)
	}
	return out
}

// Validate checks internal consistency (series lengths and block prefixes).
func (s Snapshot) Validate() error {
	for _, b := range s.Blocks {
		if len(b.Attempts) != len(b.Uniq) {
			return fmt.Errorf("sensor: block %s series mismatch", b.Label)
		}
		p, err := ipv4.ParsePrefix(b.Prefix)
		if err != nil {
			return fmt.Errorf("sensor: block %s: %w", b.Label, err)
		}
		if want := p.Slash24s(); len(b.Attempts) != want {
			return fmt.Errorf("sensor: block %s has %d slots, prefix implies %d",
				b.Label, len(b.Attempts), want)
		}
	}
	return nil
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 255 {
		return errors.New("sensor: string too long for snapshot format")
	}
	if err := w.WriteByte(byte(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
