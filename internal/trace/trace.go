// Package trace is the simulation flight recorder: a deterministic,
// bounded-memory event log on the injected simulated clock. Where
// internal/obs answers "how much" (counters, histograms), trace answers
// "what happened, in what order" — infection edges with infector→victim
// provenance, per-tick probe-window summaries, sensor alerts, fault
// transitions, sweep checkpoint/salvage decisions, and driver phase
// boundaries — so a cross-driver divergence or oracle failure bisects to a
// single event instead of a shrunken scenario.
//
// Three properties shape the design, mirroring internal/obs:
//
//   - Determinism. Appending events draws no randomness and reads no wall
//     clock; every event carries the simulated time its emitter passed in.
//     The sim drivers emit events only from their serial sections (the
//     phase-2 merge, in agent order — DESIGN.md §9), so trace bytes are
//     identical across worker counts, and attaching a recorder is
//     byte-invisible to every existing output.
//
//   - Bounded memory. The recorder is a ring of at most MaxEvents entries;
//     when full, the oldest event is evicted and a dropped counter bumps.
//     Eviction is deterministic — same run, same drops — and the dump
//     header carries the drop count so a truncated trace is never mistaken
//     for a complete one.
//
//   - Byte-stable serialization. Events serialize to NDJSON with a fixed
//     field order (struct declaration order) and shortest-exact floats, so
//     two traces are comparable with bytes.Equal and a divergence is
//     findable by streaming line comparison (see Diff).
package trace

import (
	"encoding/json"
	"strconv"
	"sync"
)

// Event kinds. The set is append-only: tools key on these strings.
const (
	// KindHeader is the synthetic first line of a dump: Vector carries the
	// schema version, N the number of evicted (dropped) events.
	KindHeader = "header"
	// KindPhase marks a driver phase boundary: Vector is "start" or "end",
	// Detail the driver name; on "end" N is the final infected count.
	KindPhase = "phase"
	// KindInfection is one infection edge. Agent is the infector host id
	// (-1 when unattributed: seed hosts, and the fast driver's aggregated
	// draws), Victim the infected host id, Addr its address, Vector the
	// attribution ("seed", "scan", or the fast driver's mixture component).
	KindInfection = "infection"
	// KindProbes is a per-tick probe-window summary: N is the tick's probe
	// count, Detail its outcome ledger.
	KindProbes = "probes"
	// KindAlert is a detector crossing its threshold (Vector "threshold",
	// Addr the detector prefix, N its hit count at the crossing) or a
	// darknet sensor's first recorded probe (Vector "first", Detail the
	// block label).
	KindAlert = "alert"
	// KindFault is a fault-plan state transition: Vector "burst" with
	// Detail "bad"/"good", or Vector "outage" with N the number of
	// withdrawn sensor blocks.
	KindFault = "fault"
	// KindCheckpoint is a sweep checkpoint decision: Vector "hit" (result
	// replayed from the store) or "save", Detail the checkpoint key, Tick
	// the task index.
	KindCheckpoint = "checkpoint"
	// KindSalvage is a sweep task failure kept by Salvage mode: Detail the
	// error, Tick the task index.
	KindSalvage = "salvage"
)

// SchemaVersion identifies the event schema; the dump header carries it.
const SchemaVersion = "v1"

// Event is one flight-recorder entry. Field order is the serialization
// contract: NDJSON emits fields in declaration order, so reordering or
// inserting fields is a schema change (bump SchemaVersion).
//
// Tick is the simulation step the event belongs to (0 for pre-run events,
// the task index for sweep events, -1 for events emitted outside the tick
// loop); T is the simulated time in seconds. Agent and Victim are host ids
// with -1 meaning "not applicable" — 0 is a valid host id, so absence
// needs an explicit sentinel.
type Event struct {
	Tick   int     `json:"tick"`
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	Agent  int     `json:"agent"`
	Victim int     `json:"victim"`
	Addr   string  `json:"addr,omitempty"`
	Vector string  `json:"vector,omitempty"`
	N      uint64  `json:"n,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Run    string  `json:"run,omitempty"`
}

// DefaultMaxEvents bounds a recorder constructed with NewRecorder(0):
// 1<<20 events ≈ 80 MB worst case, far above any xcheck scenario and
// small enough to never threaten a sweep's memory budget.
const DefaultMaxEvents = 1 << 20

// Block sizing for the ring storage: 4096 compact events ≈ 320 KB per
// block, allocated lazily as the ring grows, reused in place once full.
const (
	blockBits = 12
	blockSize = 1 << blockBits
)

// Address storage modes for compactEvent.amode.
const (
	addrNone     uint8 = iota // Addr was ""
	addrPacked                // canonical dotted quad packed into addr
	addrInterned              // anything else; addr indexes the intern table
)

// compactEvent is the in-ring representation of one Event. A simulation's
// trace is dominated by infection events, so the ring would otherwise be
// the largest object on the garbage collector's scan path; the compact
// form is pointer-free (the blocks land in noscan spans the collector
// never walks), and a steady-state Append allocates nothing. Kind,
// Vector, Run, and non-address Addr strings are interned in the
// recorder's table; canonical dotted-quad addresses pack into a uint32
// and are re-rendered on read; the rare Detail strings live in a side
// map keyed by ring slot.
type compactEvent struct {
	t         float64
	n         uint64
	tick      int64
	agent     int64
	victim    int64
	kind      uint32 // intern index
	vector    uint32 // intern index
	run       uint32 // intern index
	addr      uint32 // packed quad or intern index, per amode
	amode     uint8
	hasDetail bool // Detail lives in recorderState.details[slot]
}

// internCache is a small direct-mapped memo over the intern table:
// emitters cycle through a handful of Kind/Vector/Run constants (the fast
// driver alternates its mixture-component labels per infection), so most
// interning is a few short string compares instead of a map lookup.
// Entries rotate through the fixed slots in insertion order.
type internCache struct {
	s    [4]string
	id   [4]uint32
	next uint8
}

// recorderState is the shared ring behind one recorder and its scopes.
//
// Interning keeps memory bounded only if the label-like fields (Kind,
// Vector, Run, non-address Addr values) have bounded cardinality — the
// same contract internal/obs puts on metric labels. Detail is exempt
// (kept per-slot in details, evicted with its event) precisely because
// outcome ledgers and error strings are per-event unique; an interned
// copy would outlive its ring slot.
type recorderState struct {
	mu      sync.Mutex
	max     int
	blocks  [][]compactEvent
	details map[int]string // ring slot -> Detail, for hasDetail events
	head    int            // index of the oldest event when full
	n       int            // live event count
	dropped uint64

	interned []string
	lookup   map[string]uint32
	kindMemo internCache
	vecMemo  internCache
	runMemo  internCache
}

// internNew interns v without consulting a memo.
func (s *recorderState) internNew(v string) uint32 {
	id, ok := s.lookup[v]
	if !ok {
		id = uint32(len(s.interned))
		s.interned = append(s.interned, v)
		s.lookup[v] = id
	}
	return id
}

// intern interns v through the given memo.
func (s *recorderState) intern(c *internCache, v string) uint32 {
	for i := range c.s {
		if v == c.s[i] {
			return c.id[i]
		}
	}
	id := s.internNew(v)
	c.s[c.next], c.id[c.next] = v, id
	c.next = (c.next + 1) & 3
	return id
}

// packQuad parses a canonical dotted-quad IPv4 address ("1.2.3.4": four
// decimal octets 0–255, no leading zeros). Only the canonical form is
// accepted so formatQuad is an exact inverse and a packed address
// round-trips byte-identically.
func packQuad(s string) (uint32, bool) {
	var v uint32
	i := 0
	for oct := 0; oct < 4; oct++ {
		if oct > 0 {
			if i >= len(s) || s[i] != '.' {
				return 0, false
			}
			i++
		}
		start := i
		var o uint32
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			o = o*10 + uint32(s[i]-'0')
			if o > 255 {
				return 0, false
			}
			i++
		}
		if d := i - start; d == 0 || (d > 1 && s[start] == '0') {
			return 0, false
		}
		v = v<<8 | o
	}
	return v, i == len(s)
}

// formatQuad renders a packed IPv4 address in the canonical dotted-quad
// form packQuad accepts.
func formatQuad(v uint32) string {
	buf := make([]byte, 0, 15)
	for i := 3; i >= 0; i-- {
		buf = strconv.AppendUint(buf, uint64(v>>(8*i)&0xFF), 10)
		if i > 0 {
			buf = append(buf, '.')
		}
	}
	return string(buf)
}

// compress converts an Event to its in-ring form (Detail is passed to
// store separately). Caller holds s.mu.
func (s *recorderState) compress(ev *Event) compactEvent {
	ce := compactEvent{
		t:      ev.T,
		n:      ev.N,
		tick:   int64(ev.Tick),
		agent:  int64(ev.Agent),
		victim: int64(ev.Victim),
		kind:   s.intern(&s.kindMemo, ev.Kind),
		vector: s.intern(&s.vecMemo, ev.Vector),
		run:    s.intern(&s.runMemo, ev.Run),
	}
	if ev.Addr != "" {
		if v, ok := packQuad(ev.Addr); ok {
			ce.addr, ce.amode = v, addrPacked
		} else {
			ce.addr, ce.amode = s.internNew(ev.Addr), addrInterned
		}
	}
	return ce
}

// inflate reconstructs the Event stored at ring slot i. Caller holds s.mu.
func (s *recorderState) inflate(i int, ce *compactEvent) Event {
	ev := Event{
		Tick:   int(ce.tick),
		T:      ce.t,
		Kind:   s.interned[ce.kind],
		Agent:  int(ce.agent),
		Victim: int(ce.victim),
		Vector: s.interned[ce.vector],
		N:      ce.n,
		Run:    s.interned[ce.run],
	}
	if ce.hasDetail {
		ev.Detail = s.details[i]
	}
	switch ce.amode {
	case addrPacked:
		ev.Addr = formatQuad(ce.addr)
	case addrInterned:
		ev.Addr = s.interned[ce.addr]
	}
	return ev
}

// slot returns the ring slot for logical index i, allocating its block on
// first touch. Caller holds s.mu.
func (s *recorderState) slot(i int) *compactEvent {
	b := i >> blockBits
	if s.blocks[b] == nil {
		s.blocks[b] = make([]compactEvent, blockSize)
	}
	return &s.blocks[b][i&(blockSize-1)]
}

// Recorder is a bounded flight recorder. The zero value is not usable;
// construct with NewRecorder. All methods are nil-safe, so an untraced
// run pays one branch per would-be event. Append is mutex-guarded for
// safety under concurrent sweeps; determinism of the event *order* is the
// emitters' contract (serial sections only — see the package comment).
type Recorder struct {
	state *recorderState
	run   string
}

// NewRecorder returns a recorder bounded to max events (≤0 means
// DefaultMaxEvents).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Recorder{state: &recorderState{
		max:      max,
		blocks:   make([][]compactEvent, (max+blockSize-1)>>blockBits),
		details:  make(map[int]string),
		interned: []string{""},
		lookup:   map[string]uint32{"": 0},
	}}
}

// Scoped returns a view of the same recorder that stamps run into every
// appended event's Run field — concurrent sweep points sharing one
// recorder label their events so an interleaved dump is attributable.
// A nil recorder scopes to nil.
func (r *Recorder) Scoped(run string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{state: r.state, run: run}
}

// Append records one event. Nil-safe. When the ring is full the oldest
// event is evicted and the dropped counter bumps.
func (r *Recorder) Append(ev Event) {
	if r == nil {
		return
	}
	if r.run != "" {
		ev.Run = r.run
	}
	s := r.state
	s.mu.Lock()
	s.store(s.compress(&ev), ev.Detail)
	s.mu.Unlock()
}

// store inserts one compact event, evicting the oldest when the ring is
// full. Caller holds s.mu.
func (s *recorderState) store(ce compactEvent, detail string) {
	var i int
	if s.n < s.max {
		i = s.n // head stays 0 until the ring first fills
		s.n++
	} else {
		i = s.head
		s.head++
		if s.head == s.max {
			s.head = 0
		}
		s.dropped++
	}
	p := s.slot(i)
	if p.hasDetail {
		delete(s.details, i) // evicted event's Detail must not leak in
	}
	if detail != "" {
		ce.hasDetail = true
		s.details[i] = detail
	}
	*p = ce
}

// AppendInfection records one infection edge without materializing the
// dotted-quad address string — the drivers' hot path, one event per
// infected host. It is exactly equivalent to Append of the corresponding
// KindInfection Event: the packed address renders canonically on read.
// Nil-safe.
func (r *Recorder) AppendInfection(tick int, t float64, infector, victim int, addr uint32, vector string) {
	if r == nil {
		return
	}
	s := r.state
	s.mu.Lock()
	s.store(compactEvent{
		t:      t,
		tick:   int64(tick),
		agent:  int64(infector),
		victim: int64(victim),
		kind:   s.intern(&s.kindMemo, KindInfection),
		vector: s.intern(&s.vecMemo, vector),
		run:    s.intern(&s.runMemo, r.run),
		addr:   addr,
		amode:  addrPacked,
	}, "")
	s.mu.Unlock()
}

// Len returns the number of live (retained) events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	s := r.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many events were evicted by the ring bound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	s := r.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Events returns a copy of the retained events in append order (oldest
// first). Nil recorders return nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	s := r.state
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, s.n)
	for k := 0; k < s.n; k++ {
		i := s.head + k
		if i >= s.max {
			i -= s.max
		}
		b := s.blocks[i>>blockBits]
		out = append(out, s.inflate(i, &b[i&(blockSize-1)]))
	}
	return out
}

// header builds the synthetic first event of a dump.
func (r *Recorder) header() Event {
	return Event{Tick: 0, T: 0, Kind: KindHeader, Agent: -1, Victim: -1, Vector: SchemaVersion, N: r.Dropped()}
}

// appendEvent encodes ev as one canonical NDJSON line (with trailing
// newline) appended to buf. encoding/json emits struct fields in
// declaration order and floats in shortest-exact form, so the line is
// byte-stable for equal events.
func appendEvent(buf []byte, ev *Event) ([]byte, error) {
	line, err := json.Marshal(ev)
	if err != nil {
		return buf, err
	}
	buf = append(buf, line...)
	return append(buf, '\n'), nil
}
