package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
)

// Manifest is the run-provenance record dumped alongside a trace: enough
// to re-create the run (scenario/config and seed), to place it (driver,
// workers), and to pin the toolchain that produced it.
type Manifest struct {
	SchemaVersion string `json:"schema_version"`
	// Driver names the producing driver ("exact", "fast", …).
	Driver string `json:"driver,omitempty"`
	// Seed is the run's RNG seed.
	Seed uint64 `json:"seed"`
	// Workers is the exact driver's worker count (0 when not applicable).
	Workers int `json:"workers,omitempty"`
	// ScenarioHash is the SHA-256 of the canonical scenario/config JSON.
	ScenarioHash string `json:"scenario_hash,omitempty"`
	// Scenario is the canonical scenario/config JSON itself.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Config is a free-form rendering of non-scenario configuration.
	Config string `json:"config,omitempty"`
	// GoVersion and Module pin the toolchain and module that produced the
	// trace (Module is "path@version", "(devel)" for local builds).
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	// Events and Dropped mirror the trace's retained/evicted counts.
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// HashJSON returns the hex SHA-256 of canonical JSON bytes — the
// scenario-hash convention shared by manifests and artifact file names.
func HashJSON(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// NewManifest builds a manifest for one recorder's contents, stamping the
// schema version, toolchain, and event counts. Callers fill the run
// fields (Driver, Seed, Workers, Scenario…) before writing.
func NewManifest(r *Recorder) *Manifest {
	m := &Manifest{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		Module:        "(unknown)",
		Events:        r.Len(),
		Dropped:       r.Dropped(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		m.Module = bi.Main.Path
		if bi.Main.Version != "" {
			m.Module += "@" + bi.Main.Version
		}
	}
	return m
}

// SetScenario records the canonical scenario JSON and its hash.
func (m *Manifest) SetScenario(canonicalJSON []byte) {
	m.Scenario = append(json.RawMessage(nil), canonicalJSON...)
	m.ScenarioHash = HashJSON(canonicalJSON)
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
