package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// treeEvents builds a small attributed run:
//
//	seeds 1, 2
//	1 → 3 (t=1), 1 → 4 (t=1), 3 → 5 (t=2), plus one unattributed 9 (t=2)
func treeEvents() []Event {
	return []Event{
		{Tick: 0, T: 0, Kind: KindPhase, Agent: -1, Victim: -1, Vector: "start", Detail: "exact"},
		{Tick: 0, T: 0, Kind: KindInfection, Agent: -1, Victim: 1, Vector: "seed"},
		{Tick: 0, T: 0, Kind: KindInfection, Agent: -1, Victim: 2, Vector: "seed"},
		{Tick: 1, T: 1, Kind: KindInfection, Agent: 1, Victim: 3, Vector: "scan"},
		{Tick: 1, T: 1, Kind: KindInfection, Agent: 1, Victim: 4, Vector: "scan"},
		{Tick: 1, T: 1, Kind: KindProbes, Agent: -1, Victim: -1, N: 20},
		{Tick: 2, T: 2, Kind: KindInfection, Agent: 3, Victim: 5, Vector: "scan"},
		{Tick: 2, T: 2, Kind: KindInfection, Agent: -1, Victim: 9, Vector: "c1"},
		{Tick: 2, T: 2, Kind: KindPhase, Agent: -1, Victim: -1, Vector: "end", Detail: "exact", N: 6},
	}
}

func TestBuildTreeAndStats(t *testing.T) {
	tree, err := BuildTree(treeEvents())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree.Seeds, []int{1, 2}) {
		t.Fatalf("seeds %v", tree.Seeds)
	}
	if tree.Size() != 6 || len(tree.Edges) != 4 {
		t.Fatalf("size=%d edges=%d, want 6/4", tree.Size(), len(tree.Edges))
	}
	s := tree.Stats()
	if s.Nodes != 6 || s.Seeds != 2 || s.Edges != 4 || s.Unattributed != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Depths: 1,2 at 0; 3,4,9 at 1; 5 at 2 → depth 2, max width 3.
	if s.Depth != 2 || s.MaxWidth != 3 {
		t.Fatalf("depth=%d width=%d, want 2/3", s.Depth, s.MaxWidth)
	}
	// Out-degrees: host 1 → 2; host 3 → 1; hosts 2,4,5,9 → 0.
	wantDeg := []DegreeCount{{Degree: 0, Hosts: 4}, {Degree: 1, Hosts: 1}, {Degree: 2, Hosts: 1}}
	if !reflect.DeepEqual(s.Degrees, wantDeg) {
		t.Fatalf("degrees %v, want %v", s.Degrees, wantDeg)
	}
	if s.MaxDegree != 2 {
		t.Fatalf("max degree %d", s.MaxDegree)
	}
	wantVec := []VectorCount{{Vector: "c1", Edges: 1}, {Vector: "scan", Edges: 3}}
	if !reflect.DeepEqual(s.Vectors, wantVec) {
		t.Fatalf("vectors %v, want %v", s.Vectors, wantVec)
	}
}

func TestBuildTreeRejectsBadStructure(t *testing.T) {
	double := []Event{
		{Kind: KindInfection, Agent: -1, Victim: 1, Vector: "seed"},
		{Kind: KindInfection, Agent: -1, Victim: 1, Vector: "seed"},
	}
	if _, err := BuildTree(double); err == nil {
		t.Error("double infection accepted")
	}
	orphan := []Event{
		{Kind: KindInfection, Agent: 7, Victim: 1, Vector: "scan"},
	}
	if _, err := BuildTree(orphan); err == nil {
		t.Error("edge from never-infected host accepted")
	}
	negative := []Event{
		{Kind: KindInfection, Agent: -1, Victim: -1, Vector: "seed"},
	}
	if _, err := BuildTree(negative); err == nil {
		t.Error("negative victim accepted")
	}
}

func TestDiffFindsFirstDivergence(t *testing.T) {
	a := treeEvents()
	b := treeEvents()
	b[6].Victim = 6 // 3 → 6 instead of 3 → 5
	na, err := MarshalEvents(a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := MarshalEvents(b)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(bytes.NewReader(na), bytes.NewReader(nb), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("divergence not found")
	}
	if d.Index != 7 {
		t.Fatalf("diverged at %d, want 7", d.Index)
	}
	if d.A == nil || d.B == nil || d.A.Victim != 5 || d.B.Victim != 6 {
		t.Fatalf("divergent events %+v vs %+v", d.A, d.B)
	}
	if len(d.Context) != 2 || d.Context[1].Kind != KindProbes {
		t.Fatalf("context %v", d.Context)
	}
	if s := d.String(); s == "" {
		t.Fatal("empty rendering")
	}
}

func TestDiffIdenticalAndTruncated(t *testing.T) {
	n, err := MarshalEvents(treeEvents())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(bytes.NewReader(n), bytes.NewReader(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("identical traces diverged: %v", d)
	}
	short, err := MarshalEvents(treeEvents()[:5])
	if err != nil {
		t.Fatal(err)
	}
	d, err = Diff(bytes.NewReader(n), bytes.NewReader(short), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Index != 6 || d.B != nil || d.A == nil {
		t.Fatalf("truncation not reported: %+v", d)
	}
}
