package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Divergence is the first point where two traces disagree. Index is the
// 1-based event position (header line included); A and B are the
// divergent events, nil on the side whose trace ended early. Context
// holds the events common to both traces immediately before the
// divergence, oldest first — the "call context": the enclosing phase,
// tick summary, and infections leading up to the split.
type Divergence struct {
	Index   int
	A, B    *Event
	Context []Event
}

// String renders the divergence for humans, one line per event.
func (d *Divergence) String() string {
	var b strings.Builder
	for _, ev := range d.Context {
		fmt.Fprintf(&b, "  = %s", eventLine(&ev))
	}
	fmt.Fprintf(&b, "event %d diverges:\n", d.Index)
	if d.A != nil {
		fmt.Fprintf(&b, "  a %s", eventLine(d.A))
	} else {
		b.WriteString("  a <trace ended>\n")
	}
	if d.B != nil {
		fmt.Fprintf(&b, "  b %s", eventLine(d.B))
	} else {
		b.WriteString("  b <trace ended>\n")
	}
	return b.String()
}

// eventLine renders one event as its canonical NDJSON line.
func eventLine(ev *Event) string {
	buf, err := appendEvent(nil, ev)
	if err != nil {
		return fmt.Sprintf("%+v\n", *ev)
	}
	return string(buf)
}

// Diff streams two NDJSON traces and returns the first divergent event
// with up to contextN preceding common events (≤0 means 3), or nil when
// the traces are event-for-event identical. Comparison is on parsed
// events, so formatting-only differences (which canonical traces never
// contain) do not count; header drop-counts do.
func Diff(a, b io.Reader, contextN int) (*Divergence, error) {
	if contextN <= 0 {
		contextN = 3
	}
	sa := newEventScanner(a)
	sb := newEventScanner(b)
	ctx := make([]Event, 0, contextN)
	idx := 0
	for {
		idx++
		ea, okA, err := sa.next()
		if err != nil {
			return nil, fmt.Errorf("trace a: %w", err)
		}
		eb, okB, err := sb.next()
		if err != nil {
			return nil, fmt.Errorf("trace b: %w", err)
		}
		if !okA && !okB {
			return nil, nil
		}
		if okA && okB && ea == eb {
			if len(ctx) == contextN {
				copy(ctx, ctx[1:])
				ctx = ctx[:contextN-1]
			}
			ctx = append(ctx, ea)
			continue
		}
		d := &Divergence{Index: idx, Context: append([]Event(nil), ctx...)}
		if okA {
			d.A = &ea
		}
		if okB {
			d.B = &eb
		}
		return d, nil
	}
}

// eventScanner streams events off an NDJSON reader.
type eventScanner struct {
	sc   *bufio.Scanner
	line int
}

func newEventScanner(r io.Reader) *eventScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return &eventScanner{sc: sc}
}

// next returns the next event, or ok=false at a clean end of trace.
func (s *eventScanner) next() (Event, bool, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return Event{}, false, fmt.Errorf("line %d: %w", s.line+1, err)
		}
		return Event{}, false, nil
	}
	s.line++
	ev, err := ParseEvent(s.sc.Bytes())
	if err != nil {
		return Event{}, false, fmt.Errorf("line %d: %w", s.line, err)
	}
	return ev, true, nil
}
