package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceNDJSON is the trace round-trip fuzz target: any bytes that
// parse as a trace must re-emit to canonical NDJSON that parses back to
// the identical events and re-emits byte-for-byte the same — the
// emit-idempotence that makes traces diffable with bytes.Equal.
func FuzzTraceNDJSON(f *testing.F) {
	seed, err := MarshalEvents(treeEvents())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	var hdr bytes.Buffer
	if err := NewRecorder(4).WriteNDJSON(&hdr); err != nil {
		f.Fatal(err)
	}
	f.Add(hdr.Bytes())
	f.Add([]byte(`{"tick":0,"t":0,"kind":"header","agent":-1,"victim":-1,"vector":"v1"}` + "\n"))
	f.Add([]byte(`{"tick":3,"t":1.5,"kind":"infection","agent":0,"victim":17,"addr":"10.0.0.42","vector":"scan"}` + "\n"))
	f.Add([]byte(`{"tick":-1,"t":2.25,"kind":"alert","agent":-1,"victim":-1,"addr":"1.2.3.0/24","vector":"threshold","n":5,"detail":"x","run":"p0"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return // invalid input is fine; crashing on it is not
		}
		out, err := MarshalEvents(events)
		if err != nil {
			t.Fatalf("valid trace failed to re-emit: %v", err)
		}
		back, err := ReadNDJSON(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse of canonical emission failed: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(events, back) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", events, back)
		}
		again, err := MarshalEvents(back)
		if err != nil {
			t.Fatalf("second emission failed: %v", err)
		}
		if !bytes.Equal(out, again) {
			t.Fatalf("canonical emission not byte-stable:\n%s\nvs\n%s", out, again)
		}
		// The tree builder must never panic on any parseable trace; a
		// structural error return is fine.
		if tree, err := BuildTree(events); err == nil {
			_ = tree.Stats()
		}
	})
}
