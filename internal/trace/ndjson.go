package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// maxLineBytes bounds one NDJSON line; real events are well under 1 KB,
// the slack covers long Detail strings (outcome ledgers, error text).
const maxLineBytes = 1 << 20

// WriteNDJSON dumps the recorder as NDJSON: a header event (schema
// version, dropped count) followed by the retained events in append
// order. A nil recorder writes only the header of an empty trace.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	var err error
	hdr := Event{Tick: 0, T: 0, Kind: KindHeader, Agent: -1, Victim: -1, Vector: SchemaVersion}
	if r != nil {
		hdr = r.header()
	}
	if buf, err = appendEvent(buf[:0], &hdr); err != nil {
		return err
	}
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		ev := ev
		if buf, err = appendEvent(buf[:0], &ev); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseEvent decodes one NDJSON line. Unknown fields are rejected: a
// trace produced by a newer schema must fail loudly, not drop data.
func ParseEvent(line []byte) (Event, error) {
	var ev Event
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ev); err != nil {
		return Event{}, err
	}
	// A second value on the line is malformed NDJSON.
	if dec.More() {
		return Event{}, fmt.Errorf("trace: trailing data after event")
	}
	return ev, nil
}

// ReadNDJSON parses a full NDJSON trace, returning the events in file
// order. The header event, when present as the first line, is returned
// like any other event (tools key on KindHeader). Blank lines are
// rejected: a trace is machine-written, so any irregularity is damage.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		ev, err := ParseEvent(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// MarshalEvents renders events as canonical NDJSON bytes (no header —
// callers that need one include it in events).
func MarshalEvents(events []Event) ([]byte, error) {
	var buf []byte
	var err error
	out := make([]byte, 0, 64*len(events))
	for i := range events {
		if buf, err = appendEvent(buf[:0], &events[i]); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}
