package trace

import (
	"fmt"
	"sort"
)

// Edge is one attributed infection: Infector infected Victim at simulated
// time T through Vector. Infector is -1 when the driver cannot attribute
// the edge to a single host (the fast driver's aggregated draws).
type Edge struct {
	Infector int     `json:"infector"`
	Victim   int     `json:"victim"`
	T        float64 `json:"t"`
	Vector   string  `json:"vector,omitempty"`
}

// Tree is the who-infected-whom structure of one run (Wang et al.,
// "Characterizing Internet Worm Infection Structure"): the seed hosts are
// the roots, every later infection an edge. Unattributed edges (Infector
// -1) hang directly under a virtual root at depth 1.
type Tree struct {
	// Seeds are the initially infected hosts, in seeding order.
	Seeds []int `json:"seeds"`
	// Edges are the non-seed infections, in infection order.
	Edges []Edge `json:"edges"`
}

// BuildTree extracts the infection tree from a run's events. It rejects
// structurally impossible traces — a host infected twice, or an edge from
// a host the trace never saw infected — because a tree built over them
// would silently misattribute provenance.
func BuildTree(events []Event) (*Tree, error) {
	t := &Tree{}
	infected := make(map[int]bool)
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindInfection {
			continue
		}
		if ev.Victim < 0 {
			return nil, fmt.Errorf("trace: infection event with victim %d", ev.Victim)
		}
		if infected[ev.Victim] {
			return nil, fmt.Errorf("trace: host %d infected twice", ev.Victim)
		}
		if ev.Agent >= 0 && !infected[ev.Agent] {
			return nil, fmt.Errorf("trace: host %d infected by %d, which the trace never saw infected", ev.Victim, ev.Agent)
		}
		infected[ev.Victim] = true
		if ev.Vector == "seed" {
			t.Seeds = append(t.Seeds, ev.Victim)
			continue
		}
		t.Edges = append(t.Edges, Edge{Infector: ev.Agent, Victim: ev.Victim, T: ev.T, Vector: ev.Vector})
	}
	return t, nil
}

// Size returns the number of infected hosts: seeds plus edge victims
// (BuildTree guarantees each host appears at most once).
func (t *Tree) Size() int { return len(t.Seeds) + len(t.Edges) }

// DegreeCount is one row of the out-degree distribution.
type DegreeCount struct {
	// Degree is the number of victims a host infected.
	Degree int `json:"degree"`
	// Hosts is how many infected hosts have that out-degree.
	Hosts int `json:"hosts"`
}

// VectorCount attributes edge counts to one vector.
type VectorCount struct {
	Vector string `json:"vector"`
	Edges  int    `json:"edges"`
}

// Stats summarizes the tree's shape.
type Stats struct {
	// Nodes is the infected-host count (== Tree.Size()).
	Nodes int `json:"nodes"`
	// Seeds is the root count.
	Seeds int `json:"seeds"`
	// Edges is the non-seed infection count.
	Edges int `json:"edges"`
	// Unattributed is how many edges carry no infector (fast driver).
	Unattributed int `json:"unattributed"`
	// Depth is the longest root-to-leaf hop count (seeds are depth 0;
	// unattributed edges are depth 1).
	Depth int `json:"depth"`
	// MaxWidth is the largest number of hosts at any one depth.
	MaxWidth int `json:"max_width"`
	// MaxDegree is the largest out-degree of any host.
	MaxDegree int `json:"max_degree"`
	// Degrees is the out-degree distribution over infected hosts,
	// ascending by degree (degree-0 leaves included).
	Degrees []DegreeCount `json:"degrees"`
	// Vectors attributes the edges per vector, sorted by vector name.
	Vectors []VectorCount `json:"vectors"`
}

// Stats computes the tree's shape summary. Edges must be in infection
// order (as BuildTree produces them): a parent's infection precedes its
// children's, so depths resolve in one pass.
func (t *Tree) Stats() Stats {
	s := Stats{Nodes: t.Size(), Seeds: len(t.Seeds), Edges: len(t.Edges)}
	depth := make(map[int]int, s.Nodes)
	widths := make(map[int]int)
	outDeg := make(map[int]int, s.Nodes)
	for _, id := range t.Seeds {
		depth[id] = 0
		widths[0]++
		outDeg[id] = 0
	}
	vectors := make(map[string]int)
	for _, e := range t.Edges {
		d := 1
		if e.Infector >= 0 {
			d = depth[e.Infector] + 1
			outDeg[e.Infector]++
		} else {
			s.Unattributed++
		}
		depth[e.Victim] = d
		widths[d]++
		outDeg[e.Victim] = 0
		if d > s.Depth {
			s.Depth = d
		}
		vectors[e.Vector]++
	}
	for d := 0; d <= s.Depth; d++ {
		if widths[d] > s.MaxWidth {
			s.MaxWidth = widths[d]
		}
	}
	// Fold out-degrees into a distribution; iterate the histogram by
	// ascending degree, never by map order.
	degHist := make(map[int]int)
	for _, d := range outDeg {
		degHist[d]++
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	for d := 0; d <= s.MaxDegree; d++ {
		if n := degHist[d]; n > 0 {
			s.Degrees = append(s.Degrees, DegreeCount{Degree: d, Hosts: n})
		}
	}
	names := make([]string, 0, len(vectors))
	for v := range vectors {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		s.Vectors = append(s.Vectors, VectorCount{Vector: v, Edges: vectors[v]})
	}
	return s
}
