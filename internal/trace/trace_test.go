package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestRecorderAppendOrder(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Append(Event{Tick: i, Kind: KindProbes, Agent: -1, Victim: -1})
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Tick != i {
			t.Fatalf("event %d has tick %d", i, ev.Tick)
		}
	}
}

func TestRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Append(Event{Tick: i, Kind: KindProbes, Agent: -1, Victim: -1})
	}
	if r.Len() != 3 {
		t.Fatalf("len=%d, want 3", r.Len())
	}
	if r.Dropped() != 4 {
		t.Fatalf("dropped=%d, want 4", r.Dropped())
	}
	evs := r.Events()
	want := []int{4, 5, 6}
	for i, ev := range evs {
		if ev.Tick != want[i] {
			t.Fatalf("retained ticks %v, want %v", ticks(evs), want)
		}
	}
	var b bytes.Buffer
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	evs2, err := ReadNDJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if evs2[0].Kind != KindHeader || evs2[0].N != 4 {
		t.Fatalf("header %+v does not carry the drop count", evs2[0])
	}
}

func ticks(evs []Event) []int {
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Tick
	}
	return out
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: KindProbes})
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	if r.Scoped("x") != nil {
		t.Fatal("nil recorder scoped to non-nil")
	}
	var b bytes.Buffer
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadNDJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != KindHeader {
		t.Fatalf("nil recorder dump = %v, want lone header", evs)
	}
}

func TestScopedStampsRun(t *testing.T) {
	r := NewRecorder(0)
	r.Scoped("point-3").Append(Event{Tick: 1, Kind: KindProbes, Agent: -1, Victim: -1})
	r.Append(Event{Tick: 2, Kind: KindProbes, Agent: -1, Victim: -1})
	evs := r.Events()
	if evs[0].Run != "point-3" || evs[1].Run != "" {
		t.Fatalf("runs = %q, %q", evs[0].Run, evs[1].Run)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	r.Append(Event{Tick: 0, T: 0, Kind: KindPhase, Agent: -1, Victim: -1, Vector: "start", Detail: "exact"})
	r.Append(Event{Tick: 0, T: 0, Kind: KindInfection, Agent: -1, Victim: 0, Addr: "10.0.0.1", Vector: "seed"})
	r.Append(Event{Tick: 3, T: 1.5, Kind: KindInfection, Agent: 0, Victim: 17, Addr: "10.0.0.42", Vector: "scan"})
	r.Append(Event{Tick: 3, T: 1.5, Kind: KindProbes, Agent: -1, Victim: -1, N: 250, Detail: "delivered=249 infection=1"})
	r.Append(Event{Tick: -1, T: 1.5, Kind: KindAlert, Agent: -1, Victim: -1, Addr: "1.2.3.0/24", Vector: "threshold", N: 5})

	var b bytes.Buffer
	if err := r.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	first := b.String()
	evs, err := ReadNDJSON(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	again, err := MarshalEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	if first != string(again) {
		t.Fatalf("NDJSON did not round-trip:\n%s\nvs\n%s", first, again)
	}
	// The retained events (header aside) must match what was appended.
	if got := evs[1:]; !reflect.DeepEqual(got, r.Events()) {
		t.Fatalf("parsed events %v != recorded %v", got, r.Events())
	}
}

func TestParseEventRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json",
		`{"tick":0,"kind":"probes","agent":-1,"victim":-1,"mystery":1}`, // unknown field
		`{"tick":0}{"tick":1}`, // two values on one line
	} {
		if _, err := ParseEvent([]byte(bad)); err == nil {
			t.Errorf("ParseEvent(%q) accepted", bad)
		}
	}
}

func TestManifest(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		r.Append(Event{Tick: i, Kind: KindProbes, Agent: -1, Victim: -1})
	}
	m := NewManifest(r)
	m.Driver = "exact"
	m.Seed = 42
	m.Workers = 4
	m.SetScenario([]byte(`{"pop_size":100}`))
	if m.Events != 2 || m.Dropped != 1 {
		t.Fatalf("events=%d dropped=%d, want 2/1", m.Events, m.Dropped)
	}
	if m.GoVersion == "" || m.Module == "" {
		t.Fatalf("toolchain fields empty: %+v", m)
	}
	if len(m.ScenarioHash) != 64 {
		t.Fatalf("scenario hash %q not sha256 hex", m.ScenarioHash)
	}
	var b bytes.Buffer
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 42 || back.Driver != "exact" || back.ScenarioHash != m.ScenarioHash {
		t.Fatalf("manifest did not round-trip: %+v", back)
	}
}
