package worm

import (
	"repro/internal/ipv4"
	"repro/internal/rng"
)

// Blaster models the MS03-026 worm's target selection, following the
// decompiled source (Robert Graham's blaster.c, the paper's reference [21]):
//
//  1. srand(GetTickCount()) — the PRNG seed is the milliseconds-since-boot
//     counter, the paper's canonical "bad source of entropy".
//  2. With probability 12/20 the worm scans "locally": it keeps its own
//     A.B /16 and backs the third octet off by rand()%20 when it exceeds 20.
//  3. Otherwise it draws a start point A.B.C with A in [1,254], B and C in
//     [0,253] from the same PRNG.
//  4. From A.B.C.0 it scans strictly sequentially upward (20 hosts at a
//     time in the real worm; sequential order is what matters here).
//
// Because the tick count at worm launch is tightly clustered (a reboot takes
// ~30 s ± 1 s and the worm's registry Run key fires during startup), the
// non-local start points collapse onto a small set of addresses: the Figure 1
// hotspots. Sequential scanning then smears each cluster upward in address
// space.
type Blaster struct {
	cur ipv4.Addr
}

// NewBlaster returns the generator for a host at own that launched the worm
// when GetTickCount() returned tickCount.
func NewBlaster(own ipv4.Addr, tickCount uint32) *Blaster {
	return &Blaster{cur: BlasterStart(own, tickCount)}
}

// BlasterStart computes the worm's first target /24 base address for a host
// at own seeding with tickCount. Exposed separately because the Figure 1
// analysis inverts this map (address spike → plausible tick counts).
func BlasterStart(own ipv4.Addr, tickCount uint32) ipv4.Addr {
	r := rng.NewMSVCRT(tickCount)
	a, b, c, _ := own.Octets()
	local := r.Rand()%20 < 12
	if local {
		if c > 20 {
			c -= byte(r.Rand() % 20)
		}
	} else {
		a = byte(r.Rand()%254) + 1
		b = byte(r.Rand() % 254)
		c = byte(r.Rand() % 254)
	}
	return ipv4.AddrFromOctets(a, b, c, 0)
}

// Next returns the current target and advances sequentially.
func (b *Blaster) Next() ipv4.Addr {
	t := b.cur
	b.cur++
	return t
}

// TickModel draws the GetTickCount() value at worm launch. Implementations
// model the paper's Section 4.2.2 measurement: boot takes ~30 s with a 1 s
// standard deviation per hardware generation, and the observed seed spikes
// map back to tick counts between about one and twenty minutes.
type TickModel interface {
	// DrawTick returns a tick count (milliseconds since boot) at launch.
	DrawTick(r *rng.Xoshiro) uint32
}

// HardwareGeneration describes one machine class's boot-time distribution.
type HardwareGeneration struct {
	Name        string
	MeanBootMS  float64
	StdevBootMS float64
}

// DefaultGenerations models the paper's three measured Intel generations.
// Means differ slightly by generation; all have ≈1 s standard deviation.
func DefaultGenerations() []HardwareGeneration {
	return []HardwareGeneration{
		{Name: "PentiumII", MeanBootMS: 45000, StdevBootMS: 1000},
		{Name: "PentiumIII", MeanBootMS: 35000, StdevBootMS: 1000},
		{Name: "PentiumIV", MeanBootMS: 28000, StdevBootMS: 1000},
	}
}

// RebootTickModel models worm launch after a reboot: the tick count is the
// boot duration of a randomly chosen hardware generation plus a service
// start-up delay. The delay term reproduces the paper's observation that
// spikes map back to seeds of one to twenty minutes centered around 4–5
// minutes (the worm's registry entry fires once the user session and
// network come up, not at the instant the kernel finishes booting).
type RebootTickModel struct {
	Generations []HardwareGeneration
	// MeanDelayMS is the mean of the exponential service-delay term;
	// 240 000 (4 minutes) reproduces the paper's observed center.
	MeanDelayMS float64
	// MaxTickMS truncates the draw; the paper bounds its seed search at
	// 10 000 000 (2.8 hours of uptime).
	MaxTickMS uint32
	// TickGranularityMS models GetTickCount()'s resolution: the counter
	// advances with the timer interrupt (≈15.6 ms on the hardware of the
	// era), so the effective seed space is far smaller than the
	// millisecond range suggests. 0 means no quantization.
	TickGranularityMS uint32
}

// DefaultRebootTickModel returns the model used by the Figure 1 experiment.
func DefaultRebootTickModel() RebootTickModel {
	return RebootTickModel{
		Generations:       DefaultGenerations(),
		MeanDelayMS:       240000,
		MaxTickMS:         10000000,
		TickGranularityMS: 16,
	}
}

// DrawTick implements TickModel.
func (m RebootTickModel) DrawTick(r *rng.Xoshiro) uint32 {
	gen := m.Generations[r.Intn(len(m.Generations))]
	boot := r.Normal(gen.MeanBootMS, gen.StdevBootMS)
	if boot < 0 {
		boot = 0
	}
	delay := r.Exponential(m.MeanDelayMS)
	tick := boot + delay
	if m.MaxTickMS > 0 && tick > float64(m.MaxTickMS) {
		tick = float64(m.MaxTickMS)
	}
	t := uint32(tick)
	if m.TickGranularityMS > 1 {
		t -= t % m.TickGranularityMS
	}
	return t
}

// UniformTickModel is the ablation: tick counts drawn uniformly from the
// full 32-bit range, i.e. a well-seeded PRNG. Start-address clustering —
// and with it the Figure 1 hotspots — disappears.
type UniformTickModel struct{}

// DrawTick implements TickModel.
func (UniformTickModel) DrawTick(r *rng.Xoshiro) uint32 { return r.Uint32() }

// BlasterFactory builds Blaster scanners whose tick counts come from Ticks.
type BlasterFactory struct {
	Ticks TickModel
}

// New implements Factory. The per-host seed drives the tick-model draw.
func (f BlasterFactory) New(addr ipv4.Addr, seed uint64) TargetGenerator {
	r := rng.NewXoshiro(seed)
	return NewBlaster(addr, f.Ticks.DrawTick(r))
}

// Name implements Factory.
func (f BlasterFactory) Name() string { return "blaster" }
