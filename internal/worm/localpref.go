package worm

import (
	"errors"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// Preference is a generic mask-based local-preference profile: with the
// given probabilities the next target keeps the host's first one, two, or
// three octets; with the remaining probability it is fully random. CRII and
// Nimda are instances; the paper's Section 3.1 "Local Preference" factor in
// general form.
type Preference struct {
	// Same8, Same16, Same24 are the probabilities of staying inside the
	// host's /8, /16, and /24 respectively. Their sum must not exceed 1.
	Same8, Same16, Same24 float64
}

// Validate checks the profile.
func (p Preference) Validate() error {
	for _, v := range []float64{p.Same8, p.Same16, p.Same24} {
		if v < 0 || v > 1 {
			return errors.New("worm: preference probabilities must be in [0,1]")
		}
	}
	if p.Same8+p.Same16+p.Same24 > 1 {
		return errors.New("worm: preference probabilities exceed 1")
	}
	return nil
}

// CodeRedIIPreference is CRII's measured profile (1/2 same /8, 3/8 same
// /16, 1/8 random).
func CodeRedIIPreference() Preference {
	return Preference{Same8: 0.5, Same16: 0.375}
}

// NimdaPreference is Nimda's commonly reported profile: 50% same /16, 25%
// same /8, 25% random.
func NimdaPreference() Preference {
	return Preference{Same8: 0.25, Same16: 0.5}
}

// LocalPreference is a generic local-preference scanner over a profile.
type LocalPreference struct {
	own   ipv4.Addr
	prefs Preference
	r     *rng.Xoshiro
}

// NewLocalPreference builds the scanner; the profile must validate.
func NewLocalPreference(own ipv4.Addr, prefs Preference, seed uint64) (*LocalPreference, error) {
	if err := prefs.Validate(); err != nil {
		return nil, err
	}
	return &LocalPreference{own: own, prefs: prefs, r: rng.NewXoshiro(seed)}, nil
}

// Next returns the next target.
func (l *LocalPreference) Next() ipv4.Addr {
	raw := ipv4.Addr(l.r.Uint32())
	u := l.r.Float64()
	switch {
	case u < l.prefs.Same24:
		return l.own&0xffffff00 | raw&0x000000ff
	case u < l.prefs.Same24+l.prefs.Same16:
		return l.own&0xffff0000 | raw&0x0000ffff
	case u < l.prefs.Same24+l.prefs.Same16+l.prefs.Same8:
		return l.own&0xff000000 | raw&0x00ffffff
	default:
		return raw
	}
}

// LocalPreferenceFactory builds LocalPreference scanners over one profile.
type LocalPreferenceFactory struct {
	Prefs Preference
}

// New implements Factory. An invalid profile panics: factories are
// constructed once at configuration time and validated there.
func (f LocalPreferenceFactory) New(addr ipv4.Addr, seed uint64) TargetGenerator {
	g, err := NewLocalPreference(addr, f.Prefs, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Factory.
func (f LocalPreferenceFactory) Name() string { return "local-preference" }

// Sequential scans upward from a uniformly random starting point — the
// generic form of Blaster-style sequential scanning without the tick-count
// pathology (its well-seeded ablation).
type Sequential struct {
	cur ipv4.Addr
}

// NewSequential returns a sequential scanner starting at a random address.
func NewSequential(seed uint64) *Sequential {
	return &Sequential{cur: ipv4.Addr(rng.NewXoshiro(seed).Uint32())}
}

// Next returns the current target and advances by one.
func (s *Sequential) Next() ipv4.Addr {
	t := s.cur
	s.cur++
	return t
}

// SequentialFactory builds Sequential scanners.
type SequentialFactory struct{}

// New implements Factory.
func (SequentialFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return NewSequential(seed)
}

// Name implements Factory.
func (SequentialFactory) Name() string { return "sequential" }
