package worm

import (
	"testing"

	"repro/internal/ipv4"
)

func TestCodeRedIIExclusions(t *testing.T) {
	own := ipv4.MustParseAddr("18.31.0.5")
	c := NewCodeRedII(own, 99)
	for i := 0; i < 50000; i++ {
		a := c.Next()
		if a.IsLoopback() {
			t.Fatalf("probe %d targeted loopback %v", i, a)
		}
		if a.IsReserved() {
			t.Fatalf("probe %d targeted reserved %v", i, a)
		}
		if a == own {
			t.Fatalf("probe %d targeted own address", i)
		}
	}
}

func TestCodeRedIILocalPreferenceSplit(t *testing.T) {
	own := ipv4.MustParseAddr("18.31.0.5")
	c := NewCodeRedII(own, 7)
	const n = 100000
	var same16, same8only, elsewhere int
	for i := 0; i < n; i++ {
		a := c.Next()
		switch {
		case a.SameSlash16(own):
			same16++
		case a.SameSlash8(own):
			same8only++
		default:
			elsewhere++
		}
	}
	// same /16 ≈ 3/8 (+ negligible mass from the /8 and random branches);
	// same /8 but different /16 ≈ 4/8 · 255/256; elsewhere ≈ 1/8 · ~1.
	assertFraction(t, "same /16", same16, n, 0.375, 0.02)
	assertFraction(t, "same /8 only", same8only, n, 0.498, 0.02)
	assertFraction(t, "elsewhere", elsewhere, n, 0.124, 0.02)
}

func assertFraction(t *testing.T, name string, count, total int, want, tol float64) {
	t.Helper()
	got := float64(count) / float64(total)
	if got < want-tol || got > want+tol {
		t.Errorf("%s fraction = %.4f, want %.3f±%.3f", name, got, want, tol)
	}
}

func TestCodeRedIINATLeak(t *testing.T) {
	// The Figure 4 mechanism: a host NAT'd at 192.168.0.100 sends ≈1/2 of
	// its probes into public 192/8 space (the "same /8" branch escapes the
	// private /16), while a host outside 192/8 almost never hits 192/8.
	natted := NewCodeRedII(ipv4.MustParseAddr("192.168.0.100"), 3)
	const n = 200000
	var leaked, private int
	for i := 0; i < n; i++ {
		a := natted.Next()
		if a.Slash8() == 192 {
			if a.Slash16() == ipv4.MustParseAddr("192.168.0.0").Slash16() {
				private++
			} else {
				leaked++
			}
		}
	}
	assertFraction(t, "leak into public 192/8", leaked, n, 0.498, 0.02)
	assertFraction(t, "stay in 192.168/16", private, n, 0.377, 0.02)

	outside := NewCodeRedII(ipv4.MustParseAddr("18.31.0.5"), 3)
	var hit192 int
	for i := 0; i < n; i++ {
		if outside.Next().Slash8() == 192 {
			hit192++
		}
	}
	// Only the 1/8 random branch can reach 192/8: 1/8 · 1/256 ≈ 0.0005.
	if frac := float64(hit192) / n; frac > 0.002 {
		t.Errorf("outside host hit 192/8 at rate %.5f, want ≈0.0005", frac)
	}
}

func TestCodeRedIIUniformHasNoLocalPreference(t *testing.T) {
	own := ipv4.MustParseAddr("18.31.0.5")
	c := NewCodeRedIIUniform(own, 5)
	const n = 100000
	var same8 int
	for i := 0; i < n; i++ {
		a := c.Next()
		if a.IsLoopback() || a.IsReserved() || a == own {
			t.Fatalf("exclusion violated: %v", a)
		}
		if a.SameSlash8(own) {
			same8++
		}
	}
	// Uniform over valid space: ≈1/256.
	assertFraction(t, "same /8 under ablation", same8, n, 1.0/256, 0.002)
}
