package worm

import (
	"testing"

	"repro/internal/ipv4"
)

func TestPreferenceValidate(t *testing.T) {
	bad := []Preference{
		{Same8: -0.1},
		{Same16: 1.1},
		{Same8: 0.6, Same16: 0.5}, // sums past 1
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
	good := []Preference{{}, CodeRedIIPreference(), NimdaPreference(), {Same24: 1}}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d rejected: %v", i, err)
		}
	}
}

func TestLocalPreferenceDistribution(t *testing.T) {
	own := ipv4.MustParseAddr("18.31.200.5")
	prefs := Preference{Same8: 0.3, Same16: 0.2, Same24: 0.1}
	g, err := NewLocalPreference(own, prefs, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var s24, s16only, s8only, elsewhere int
	for i := 0; i < n; i++ {
		a := g.Next()
		switch {
		case a.Slash24() == own.Slash24():
			s24++
		case a.SameSlash16(own):
			s16only++
		case a.SameSlash8(own):
			s8only++
		default:
			elsewhere++
		}
	}
	checks := []struct {
		name  string
		count int
		want  float64
	}{
		{name: "same /24", count: s24, want: 0.1},
		{name: "same /16 only", count: s16only, want: 0.2},
		{name: "same /8 only", count: s8only, want: 0.3},
		{name: "elsewhere", count: elsewhere, want: 0.4},
	}
	for _, c := range checks {
		got := float64(c.count) / n
		// The fully random branch leaks tiny mass into the local buckets
		// (≤1/256); tolerate a small band.
		if got < c.want-0.01 || got > c.want+0.01 {
			t.Errorf("%s fraction = %.4f, want ≈%.2f", c.name, got, c.want)
		}
	}
}

func TestNimdaPreferenceProfile(t *testing.T) {
	own := ipv4.MustParseAddr("10.20.30.40")
	g, err := NewLocalPreference(own, NimdaPreference(), 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var same16 int
	for i := 0; i < n; i++ {
		if g.Next().SameSlash16(own) {
			same16++
		}
	}
	if got := float64(same16) / n; got < 0.49 || got > 0.52 {
		t.Errorf("Nimda same-/16 fraction = %.4f, want ≈0.5", got)
	}
}

func TestNewLocalPreferenceRejectsBadProfile(t *testing.T) {
	if _, err := NewLocalPreference(1, Preference{Same8: 2}, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSequentialScansUpward(t *testing.T) {
	g := NewSequential(3)
	prev := g.Next()
	for i := 0; i < 1000; i++ {
		cur := g.Next()
		if cur != prev+1 {
			t.Fatalf("non-sequential: %v then %v", prev, cur)
		}
		prev = cur
	}
	// Different seeds start at different points.
	if NewSequential(4).Next() == NewSequential(5).Next() {
		t.Error("different seeds share a start")
	}
}
