package worm

import "repro/internal/rng"

// NeighborPicker is the graph-world counterpart of TargetGenerator: on a
// neighbor-structured topology a scanner does not draw 32-bit addresses,
// it picks which of its current node's neighbors to probe next. The
// picker sees only the degree — victim identity stays with the driver —
// and must consume a deterministic number of draws from r for a given
// degree, so that simulation output is independent of worker scheduling
// (the driver reseeds r per (agent, tick)).
//
// This is the seam for structured scanning strategies (preferential,
// sweep-ordered, reinfection-avoiding neighbor lists); the uniform
// picker below reproduces the memoryless scanning the paper's worms do
// over IPv4.
type NeighborPicker interface {
	// PickNeighbor returns the index of the neighbor to probe, in
	// [0, degree). degree is always ≥ 1.
	PickNeighbor(degree int, r *rng.Xoshiro) int
}

// UniformNeighbor probes a uniformly random neighbor per scan,
// consuming exactly one draw. It is the default picker for graph
// worlds.
type UniformNeighbor struct{}

// PickNeighbor implements NeighborPicker.
func (UniformNeighbor) PickNeighbor(degree int, r *rng.Xoshiro) int {
	return int(r.Uint64n(uint64(degree)))
}
