package worm

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWittyDeterminism(t *testing.T) {
	a, b := NewWitty(7), NewWitty(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seeded Witty generators diverged")
		}
	}
}

func TestWittyWeavesConsecutiveStates(t *testing.T) {
	const seed = 12345
	w := NewWitty(seed)
	lcg := rng.NewLCG32(rng.MSVCRTMultiplier, rng.MSVCRTIncrement, seed)
	for i := 0; i < 50; i++ {
		x1 := lcg.Next()
		x2 := lcg.Next()
		want := x1&0xffff0000 | x2>>16
		if got := w.Next(); uint32(got) != want {
			t.Fatalf("draw %d: %#x, want %#x", i, uint32(got), want)
		}
	}
}

func TestWittyUnreachableAddresses(t *testing.T) {
	// The structural result: for any fixed upper half, almost exactly 10%
	// of lower halves are unreachable — the successor's upper 16 bits
	// advance in a regular a/2^16 ≈ 3.27 stride whose collisions are
	// deterministic, not Poisson. These addresses are never probed by any
	// Witty instance: permanent cold spots from a full-period PRNG,
	// matching the ≈10% never-scanned fraction Kumar et al. report for the
	// real worm. The pattern is translation-invariant in the upper half,
	// so the fraction is identical for every hi.
	var baseline float64
	for i, hi := range []uint16{0, 0x1234, 0xffff} {
		reachable := WittyReachableLo16(hi)
		n := 0
		for _, r := range reachable {
			if r {
				n++
			}
		}
		frac := float64(n) / float64(len(reachable))
		if math.Abs(frac-0.90) > 0.01 {
			t.Errorf("hi=%#x: reachable fraction %.4f, want ≈0.90", hi, frac)
		}
		if i == 0 {
			baseline = frac
		} else if frac != baseline {
			t.Errorf("hi=%#x: fraction %.6f differs from hi=0's %.6f (should be translation-invariant)",
				hi, frac, baseline)
		}
	}
}

func TestWittySampledTargetsRespectReachability(t *testing.T) {
	// Every generated target's lower half must be marked reachable for its
	// upper half (consistency between the generator and the enumerator).
	w := NewWitty(99)
	cache := make(map[uint16][]bool)
	for i := 0; i < 20000; i++ {
		target := uint32(w.Next())
		hi := uint16(target >> 16)
		lo := uint16(target)
		bitmap, ok := cache[hi]
		if !ok {
			bitmap = WittyReachableLo16(hi)
			cache[hi] = bitmap
		}
		if !bitmap[lo] {
			t.Fatalf("generated target %#x marked unreachable", target)
		}
	}
}

func TestWittyFactoryIntegration(t *testing.T) {
	f := WittyFactory{}
	g1, g2 := f.New(1, 42), f.New(1, 42)
	for i := 0; i < 20; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("factory seeds not deterministic")
		}
	}
	if f.Name() != "witty" {
		t.Error("factory name wrong")
	}
}
