// Package worm implements the target-selection algorithms of the
// self-propagating threats the hotspots paper studies, plus the uniform and
// permutation-scanning baselines they are compared against.
//
// Every scanner is a deterministic state machine over explicit seeds: the
// same construction parameters always yield the same probe sequence. That
// property is what makes hotspots analyzable at all — the paper's central
// observation is that these "random" scanners are nothing of the sort.
//
// Implemented generators:
//
//   - Uniform: the idealized baseline of the simple epidemic model — every
//     address equally likely.
//   - Permutation: Staniford-style permutation scanning (a keyed bijection
//     of the 32-bit space walked sequentially) — uniform coverage without
//     repeats, used as a second baseline.
//   - HitList: probes restricted to a pre-programmed address set, the
//     algorithmic factor behind targeted bot propagation (Table 1, Fig 5a/b).
//   - Slammer: the flawed LCG x' = 214013·x + b with the OR-corrupted
//     increments — probes follow the LCG's cycle structure (Fig 2, 3).
//   - Blaster: MSVCRT rand() seeded with GetTickCount(), picking a start
//     point then scanning sequentially (Fig 1).
//   - CodeRedII: mask-based local preference (1/8 random, 1/2 same /8,
//     3/8 same /16) with exclusion rules (Fig 4).
package worm

import (
	"repro/internal/ipv4"
	"repro/internal/rng"
)

// TargetGenerator produces the sequence of addresses a single infected host
// probes. Implementations are not safe for concurrent use; the simulation
// engine owns one generator per infected host.
type TargetGenerator interface {
	// Next returns the next target address.
	Next() ipv4.Addr
}

// Factory builds a fresh TargetGenerator for a newly infected host. The
// host's own address and a per-host seed are the only inputs a real worm
// has; everything else must come from the generator's internal algorithm.
type Factory interface {
	// New returns the generator a host at addr, infected with per-host
	// entropy seed, will use.
	New(addr ipv4.Addr, seed uint64) TargetGenerator
	// Name identifies the propagation algorithm in reports.
	Name() string
}

// Uniform scans the full IPv4 space uniformly at random — the propagation
// model assumed by the simple epidemic model and by early detection-system
// analyses. It is the "no hotspots" baseline.
type Uniform struct {
	r *rng.Xoshiro
}

// NewUniform returns a uniform scanner driven by seed.
func NewUniform(seed uint64) *Uniform {
	return &Uniform{r: rng.NewXoshiro(seed)}
}

// Next returns a uniformly random address.
func (u *Uniform) Next() ipv4.Addr { return ipv4.Addr(u.r.Uint32()) }

// UniformFactory builds Uniform scanners.
type UniformFactory struct{}

// New implements Factory.
func (UniformFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator { return NewUniform(seed) }

// Name implements Factory.
func (UniformFactory) Name() string { return "uniform" }

// Permutation walks a keyed pseudorandom permutation of the 32-bit address
// space from a random offset, so a single instance never repeats a target
// until it has covered the whole space (Staniford et al.'s permutation
// scanning). The permutation is a 4-round balanced Feistel network over
// 16-bit halves, which is a bijection for any round keys.
type Permutation struct {
	keys [4]uint32
	idx  uint32
}

// NewPermutation returns a permutation scanner whose permutation and start
// offset derive from seed.
func NewPermutation(seed uint64) *Permutation {
	sm := rng.NewSplitMix64(seed)
	p := &Permutation{}
	for i := range p.keys {
		p.keys[i] = uint32(sm.Uint64())
	}
	p.idx = uint32(sm.Uint64())
	return p
}

// Next returns the permutation image of the next index.
func (p *Permutation) Next() ipv4.Addr {
	v := p.permute(p.idx)
	p.idx++
	return ipv4.Addr(v)
}

func (p *Permutation) permute(x uint32) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for _, k := range p.keys {
		l, r = r, l^feistelRound(r, k)
	}
	return uint32(l)<<16 | uint32(r)
}

// feistelRound is a cheap mixing function; any function works for
// bijectivity, this one just needs to diffuse bits.
func feistelRound(r uint16, k uint32) uint16 {
	v := (uint32(r) + k) * 2654435761 // Knuth multiplicative hash
	v ^= v >> 13
	return uint16(v ^ v>>16)
}

// PermutationFactory builds Permutation scanners.
type PermutationFactory struct{}

// New implements Factory.
func (PermutationFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return NewPermutation(seed)
}

// Name implements Factory.
func (PermutationFactory) Name() string { return "permutation" }
