package worm

import (
	"testing"

	"repro/internal/ipv4"
)

func TestSlammerIncrementsMatchPaper(t *testing.T) {
	// The paper prints 0x8831fa24 for the 0x77e89b18 IAT; the other two
	// follow from the same XOR derivation.
	got := SlammerIncrements()
	want := [3]uint32{0x88215000, 0x8831fa24, 0x88336870}
	if got != want {
		t.Fatalf("SlammerIncrements() = %#x, want %#x", got, want)
	}
}

func TestSlammerFollowsLCG(t *testing.T) {
	const seed = 0xdeadbeef
	s := NewSlammer(1, seed)
	state := uint32(seed)
	b := SlammerIncrements()[1]
	for i := 0; i < 100; i++ {
		state = state*SlammerMultiplier + b
		if got := s.Next(); got != ipv4.Addr(state) {
			t.Fatalf("step %d: Next() = %v, want %v", i, got, ipv4.Addr(state))
		}
	}
}

func TestSlammerShortCycleHostRepeats(t *testing.T) {
	// A host seeded inside a short cycle revisits exactly the cycle's
	// addresses — the paper's "targeted denial of service" behaviour.
	m := SlammerMap(0)
	prog, ok := m.StatesWithPeriodAtMost(1 << 8)
	if !ok {
		t.Fatal("no short cycles in Slammer variant 0")
	}
	seed := prog.Nth(1)
	period := m.Period(seed)
	if period > 1<<8 {
		t.Fatalf("chosen seed has period %d", period)
	}
	s := NewSlammer(0, seed)
	firstPass := make(map[ipv4.Addr]bool, period)
	for i := uint64(0); i < period; i++ {
		firstPass[s.Next()] = true
	}
	// The next `period` probes must revisit only those addresses.
	for i := uint64(0); i < period; i++ {
		if a := s.Next(); !firstPass[a] {
			t.Fatalf("short-cycle host escaped its cycle at %v", a)
		}
	}
	if uint64(len(firstPass)) != period {
		t.Errorf("cycle visited %d distinct addresses, want %d", len(firstPass), period)
	}
}

func TestSlammerMapCensusShape(t *testing.T) {
	for v := 0; v < 3; v++ {
		m := SlammerMap(v)
		if got := m.TotalCycles(); got != 64 {
			t.Errorf("variant %d: %d cycles, want 64", v, got)
		}
	}
}

func TestSlammerIntendedHasLongTrajectories(t *testing.T) {
	// The ablation generator must not revisit any address within a short
	// window from any seed (full-period LCG).
	s := SlammerIntended(12345)
	seen := make(map[ipv4.Addr]bool)
	for i := 0; i < 100000; i++ {
		a := s.Next()
		if seen[a] {
			t.Fatalf("intended-increment generator repeated %v at step %d", a, i)
		}
		seen[a] = true
	}
}
