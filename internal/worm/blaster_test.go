package worm

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

func TestBlasterStartDeterministic(t *testing.T) {
	own := ipv4.MustParseAddr("141.212.10.5")
	for _, tick := range []uint32{1000, 30000, 140000, 10000000} {
		a := BlasterStart(own, tick)
		b := BlasterStart(own, tick)
		if a != b {
			t.Fatalf("tick %d: start not deterministic (%v vs %v)", tick, a, b)
		}
		if _, _, _, d := a.Octets(); d != 0 {
			t.Errorf("tick %d: start %v not /24-aligned", tick, a)
		}
	}
}

func TestBlasterLocalBranchKeepsOwnSlash16(t *testing.T) {
	own := ipv4.MustParseAddr("141.212.200.5")
	var local, nonLocal int
	for tick := uint32(0); tick < 4000; tick++ {
		start := BlasterStart(own, tick)
		if start.SameSlash16(own) {
			local++
			// The third octet only ever moves downward, by at most 19.
			_, _, c, _ := start.Octets()
			if c > 200 || c < 181 {
				t.Fatalf("tick %d: local start octet %d outside [181,200]", tick, c)
			}
		} else {
			nonLocal++
			o1, _, _, _ := start.Octets()
			if o1 < 1 || o1 > 254 {
				t.Fatalf("tick %d: non-local first octet %d", tick, o1)
			}
		}
	}
	// rand()%20 < 12 → 60% local.
	if local < 2200 || local > 2600 {
		t.Errorf("local branch taken %d/4000, want ≈2400", local)
	}
	if nonLocal == 0 {
		t.Error("non-local branch never taken")
	}
}

func TestBlasterLowThirdOctetNotAdjusted(t *testing.T) {
	// Hosts whose own third octet is ≤ 20 keep it unchanged in the local
	// branch.
	own := ipv4.MustParseAddr("10.9.8.200")
	for tick := uint32(0); tick < 2000; tick++ {
		start := BlasterStart(own, tick)
		if start.SameSlash16(own) {
			if _, _, c, _ := start.Octets(); c != 8 {
				t.Fatalf("tick %d: third octet %d, want 8 (own octet ≤ 20)", tick, c)
			}
		}
	}
}

func TestBlasterScansSequentially(t *testing.T) {
	b := NewBlaster(ipv4.MustParseAddr("1.2.3.4"), 31234)
	prev := b.Next()
	for i := 0; i < 1000; i++ {
		cur := b.Next()
		if cur != prev+1 {
			t.Fatalf("non-sequential scan: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestBlasterSeedClustering(t *testing.T) {
	// The heart of Figure 1: hosts rebooting with tick counts inside a
	// narrow window map to a small set of non-local start /24s, while a
	// well-seeded PRNG spreads starts widely.
	owns := make([]ipv4.Addr, 2000)
	for i := range owns {
		owns[i] = ipv4.Addr(0x20000000 + i*9973) // arbitrary public hosts
	}

	distinct := func(model TickModel, seedBase uint64) int {
		starts := make(map[uint32]bool)
		for i, own := range owns {
			r := rng.NewXoshiro(seedBase + uint64(i))
			tick := model.DrawTick(r)
			start := BlasterStart(own, tick)
			if !start.SameSlash16(own) { // only non-local starts cluster globally
				starts[start.Slash24()] = true
			}
		}
		return len(starts)
	}

	tight := RebootTickModel{
		Generations:       []HardwareGeneration{{Name: "x", MeanBootMS: 30000, StdevBootMS: 1000}},
		MeanDelayMS:       0,
		MaxTickMS:         10000000,
		TickGranularityMS: 16,
	}
	clustered := distinct(tight, 1)
	spread := distinct(UniformTickModel{}, 1)
	if clustered*2 >= spread {
		t.Errorf("tick-seeded starts not clustered: %d distinct vs %d uniform", clustered, spread)
	}
}

func TestRebootTickModelRange(t *testing.T) {
	m := DefaultRebootTickModel()
	r := rng.NewXoshiro(4)
	for i := 0; i < 10000; i++ {
		tick := m.DrawTick(r)
		if tick > m.MaxTickMS {
			t.Fatalf("tick %d exceeds cap %d", tick, m.MaxTickMS)
		}
		if tick < 20000 {
			t.Fatalf("tick %d below any plausible boot time", tick)
		}
	}
}
