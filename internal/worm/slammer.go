package worm

import (
	"repro/internal/cycle"
	"repro/internal/ipv4"
	"repro/internal/rng"
)

// Slammer PRNG parameters, from the paper's Section 4.2.3 analysis of the
// disassembled worm.
const (
	// SlammerMultiplier is the LCG multiplier a in s' = a·s + b (mod 2^32),
	// the same 214013 used by MSVCRT.
	SlammerMultiplier = 214013

	// SlammerORConstant is the increment the worm author apparently
	// intended: 0xffd9613c, "a commonly used value of b in many LCGs". An
	// OR instruction used where XOR was needed corrupts it with whatever
	// the ebx register held — the sqlsort.dll import address table entry.
	SlammerORConstant = 0xffd9613c
)

// SqlsortIATs are the three widely reported sqlsort.dll import-address-table
// values left in ebx, one per DLL version.
var SqlsortIATs = [3]uint32{0x77f8313c, 0x77e89b18, 0x77ea094c}

// SlammerIncrements returns the three effective LCG increments, derived as
// the paper derives them: the leftover ebx values XORed with the OR
// constant. (Expected values: 0x88215000, 0x8831fa24, 0x88336870 — the
// middle one is printed in the paper.) All three are divisible by 4, which
// by the cycle analysis dooms the generator to 64 cycles with lengths
// 1 … 2^30 instead of a single full-period cycle.
func SlammerIncrements() [3]uint32 {
	var out [3]uint32
	for i, iat := range SqlsortIATs {
		out[i] = SlammerORConstant ^ iat
	}
	return out
}

// SlammerMap returns the cycle-analysis view of the Slammer LCG for the
// given DLL variant (0, 1 or 2).
func SlammerMap(variant int) cycle.Map {
	return cycle.MustNewMap(SlammerMultiplier, SlammerIncrements()[variant], 32)
}

// Slammer generates targets exactly as an infected host does: the full
// 32-bit LCG state is the next target address. A host whose seed lands on a
// short cycle probes the same handful of addresses forever — the paper's
// "very much like a targeted denial of service attack".
type Slammer struct {
	lcg *rng.LCG32
}

// NewSlammer returns a generator for the given DLL variant seeded with the
// host's initial 32-bit state.
func NewSlammer(variant int, seed uint32) *Slammer {
	b := SlammerIncrements()[variant]
	return &Slammer{lcg: rng.NewLCG32(SlammerMultiplier, b, seed)}
}

// Next advances the LCG and returns its state as the target.
func (s *Slammer) Next() ipv4.Addr { return ipv4.Addr(s.lcg.Next()) }

// State exposes the current LCG state (the last target produced).
func (s *Slammer) State() uint32 { return s.lcg.State() }

// SlammerFactory builds Slammer scanners. Variant selects the sqlsort.dll
// version; per-host seeds are folded to the 32-bit state space.
type SlammerFactory struct {
	Variant int
}

// New implements Factory.
func (f SlammerFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return NewSlammer(f.Variant, uint32(rng.Mix64(seed)))
}

// Name implements Factory.
func (f SlammerFactory) Name() string { return "slammer" }

// SlammerIntended is the ablation generator: same multiplier but with a
// proper odd increment, giving a single full-period cycle. Comparing its
// propagation to Slammer's isolates the damage done by the corrupted
// increment.
func SlammerIntended(seed uint32) *Slammer {
	return &Slammer{lcg: rng.NewLCG32(SlammerMultiplier, rng.MSVCRTIncrement, seed)}
}

// SlammerIntendedFactory builds full-period ablation scanners.
type SlammerIntendedFactory struct{}

// New implements Factory.
func (SlammerIntendedFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return SlammerIntended(uint32(rng.Mix64(seed)))
}

// Name implements Factory.
func (SlammerIntendedFactory) Name() string { return "slammer-intended" }
