package worm

import (
	"repro/internal/ipv4"
	"repro/internal/rng"
)

// Witty models the Witty worm's target generation, the paper's reference
// [13] (Kumar, Paxson & Weaver) example of PRNG-structure hotspots. Witty
// used the full-period MSVCRT LCG — no cycle flaw at all — but built each
// target from the *top 16 bits of two consecutive states*:
//
//	x1 = next(state);  x2 = next(x1)
//	target = hi16(x1) << 16  |  hi16(x2)
//
// Because x2 is a deterministic function of x1, the pair (hi16(x1),
// hi16(x2)) cannot range over all 2^32 combinations: for a fixed upper half
// there are only 2^16 candidate successors, and as the lower half
// increments, hi16(x2) advances in a regular stride of a/2^16 ≈ 3.27 —
// sweeping the 2^16 output bins ~3.27 times but colliding on ~10% of them.
// Almost exactly 10% of IPv4 addresses are therefore *never generated from
// any seed* (WittyReachableLo16 computes the exact bitmap; the measured
// unreachable fraction is 10.05%, matching Kumar, Paxson & Weaver's
// reported ≈10% of addresses the real worm never scanned), while reachable
// addresses are hit with multiplicity 1–4. The hotspot lives in the output
// construction, not the generator: a distinct algorithmic factor from
// Slammer's short cycles.
type Witty struct {
	lcg *rng.LCG32
}

// NewWitty returns a generator seeded with the host's initial state.
func NewWitty(seed uint32) *Witty {
	return &Witty{lcg: rng.NewLCG32(rng.MSVCRTMultiplier, rng.MSVCRTIncrement, seed)}
}

// Next consumes two LCG states and returns the woven target.
func (w *Witty) Next() ipv4.Addr {
	x1 := w.lcg.Next()
	x2 := w.lcg.Next()
	return ipv4.Addr(x1&0xffff0000 | x2>>16)
}

// WittyFactory builds Witty scanners.
type WittyFactory struct{}

// New implements Factory.
func (WittyFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return NewWitty(uint32(rng.Mix64(seed)))
}

// Name implements Factory.
func (WittyFactory) Name() string { return "witty" }

// WittyReachableLo16 enumerates, for one fixed target upper half hi (the
// top 16 bits of some LCG state), which lower halves are generable: it
// walks every state x with hi16(x) == hi and marks hi16(step(x)). The
// result is the reachability bitmap over the 2^16 possible lower halves —
// the exact structure behind Witty's never-scanned addresses.
func WittyReachableLo16(hi uint16) []bool {
	reachable := make([]bool, 1<<16)
	base := uint32(hi) << 16
	for low := uint32(0); low < 1<<16; low++ {
		x := base | low
		next := x*rng.MSVCRTMultiplier + rng.MSVCRTIncrement
		reachable[next>>16] = true
	}
	return reachable
}
