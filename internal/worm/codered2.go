package worm

import (
	"repro/internal/ipv4"
	"repro/internal/rng"
)

// CodeRedII models the CRII worm's mask-based local preference, built from
// the disassembled propagation code the paper's simulation platform also
// used:
//
//   - with probability 4/8 the generated address keeps the host's first
//     octet (same /8),
//   - with probability 3/8 it keeps the first two octets (same /16),
//   - with probability 1/8 it is completely random,
//
// and addresses in 127.0.0.0/8, multicast/reserved space, or equal to the
// host's own address are rejected and redrawn.
//
// The environmental-factor interaction the paper demonstrates: a host NAT'd
// at 192.168.x.y applies "same /8" preference to 192.0.0.0/8 — and since
// 192.168.0.0/16 is the only private /16 in that /8, half of all its probes
// leak to *public* 192/8 space, producing the Figure 4 hotspot at the M
// block.
type CodeRedII struct {
	own ipv4.Addr
	r   *rng.MSVCRT
}

// NewCodeRedII returns the generator for an infected host at own, seeded as
// the worm seeds itself (tick-count-derived 32-bit value).
func NewCodeRedII(own ipv4.Addr, seed uint32) *CodeRedII {
	return &CodeRedII{own: own, r: rng.NewMSVCRT(seed)}
}

// Next returns the next probe target.
func (c *CodeRedII) Next() ipv4.Addr {
	for {
		t := c.candidate()
		if t.IsLoopback() || t.IsReserved() || t == c.own {
			continue
		}
		return t
	}
}

// candidate draws one raw target before exclusion rules.
func (c *CodeRedII) candidate() ipv4.Addr {
	// Assemble 32 random bits from three 15-bit rand() outputs, then apply
	// the mask selection. CRII derives its randomness from the same MSVCRT
	// generator family.
	raw := uint32(c.r.Rand())<<17 | uint32(c.r.Rand())<<2 | uint32(c.r.Rand())&3
	t := ipv4.Addr(raw)
	switch c.r.Rand() % 8 {
	case 0: // completely random: 1/8
		return t
	case 1, 2, 3: // same /16: 3/8
		return ipv4.Addr(uint32(c.own)&0xffff0000 | raw&0x0000ffff)
	default: // same /8: 4/8
		return ipv4.Addr(uint32(c.own)&0xff000000 | raw&0x00ffffff)
	}
}

// CodeRedIIFactory builds CodeRedII scanners.
type CodeRedIIFactory struct{}

// New implements Factory.
func (CodeRedIIFactory) New(addr ipv4.Addr, seed uint64) TargetGenerator {
	return NewCodeRedII(addr, uint32(rng.Mix64(seed)))
}

// Name implements Factory.
func (CodeRedIIFactory) Name() string { return "codered2" }

// CodeRedIIUniform is the ablation factory: CRII's exclusion rules without
// its local preference (every candidate fully random). The Figure 4 M-block
// hotspot disappears under it.
type CodeRedIIUniform struct {
	own ipv4.Addr
	r   *rng.MSVCRT
}

// NewCodeRedIIUniform returns the ablation generator.
func NewCodeRedIIUniform(own ipv4.Addr, seed uint32) *CodeRedIIUniform {
	return &CodeRedIIUniform{own: own, r: rng.NewMSVCRT(seed)}
}

// Next returns the next probe target.
func (c *CodeRedIIUniform) Next() ipv4.Addr {
	for {
		raw := uint32(c.r.Rand())<<17 | uint32(c.r.Rand())<<2 | uint32(c.r.Rand())&3
		t := ipv4.Addr(raw)
		if t.IsLoopback() || t.IsReserved() || t == c.own {
			continue
		}
		return t
	}
}

// CodeRedIIUniformFactory builds the ablation scanners.
type CodeRedIIUniformFactory struct{}

// New implements Factory.
func (CodeRedIIUniformFactory) New(addr ipv4.Addr, seed uint64) TargetGenerator {
	return NewCodeRedIIUniform(addr, uint32(rng.Mix64(seed)))
}

// Name implements Factory.
func (CodeRedIIUniformFactory) Name() string { return "codered2-uniform" }
