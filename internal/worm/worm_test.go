package worm

import (
	"testing"

	"repro/internal/ipv4"
)

func TestUniformDeterminism(t *testing.T) {
	a, b := NewUniform(42), NewUniform(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seeded uniform scanners diverged")
		}
	}
}

func TestUniformCoversOctets(t *testing.T) {
	// Every /8 should be hit at roughly the uniform rate.
	u := NewUniform(7)
	var counts [256]int
	const n = 256 * 1000
	for i := 0; i < n; i++ {
		counts[u.Next().Slash8()]++
	}
	for o, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("/8 %d hit %d times, want ≈1000", o, c)
		}
	}
}

func TestPermutationNoRepeats(t *testing.T) {
	p := NewPermutation(3)
	seen := make(map[ipv4.Addr]bool, 200000)
	for i := 0; i < 200000; i++ {
		a := p.Next()
		if seen[a] {
			t.Fatalf("permutation scanner repeated %v at step %d", a, i)
		}
		seen[a] = true
	}
}

func TestPermutationIsBijection(t *testing.T) {
	p := NewPermutation(9)
	// Distinct inputs must map to distinct outputs on a sample window.
	seen := make(map[uint32]uint32, 50000)
	for x := uint32(0); x < 50000; x++ {
		y := p.permute(x)
		if prev, dup := seen[y]; dup {
			t.Fatalf("permute collision: %d and %d both -> %d", prev, x, y)
		}
		seen[y] = x
	}
}

func TestHitListStaysInside(t *testing.T) {
	set := ipv4.SetOfPrefixes(
		ipv4.MustParsePrefix("10.1.0.0/16"),
		ipv4.MustParsePrefix("172.20.5.0/24"),
	)
	h := NewHitList(set, 5)
	for i := 0; i < 10000; i++ {
		if a := h.Next(); !set.Contains(a) {
			t.Fatalf("hit-list scanner escaped: %v", a)
		}
	}
}

func TestHitListPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty hit-list accepted")
		}
	}()
	NewHitList(&ipv4.Set{}, 1)
}

func TestHitListUniformWithin(t *testing.T) {
	set := ipv4.SetOfPrefixes(
		ipv4.MustParsePrefix("10.1.0.0/24"),
		ipv4.MustParsePrefix("10.2.0.0/24"),
	)
	h := NewHitList(set, 11)
	var first, second int
	for i := 0; i < 20000; i++ {
		if h.Next().Slash16() == ipv4.MustParseAddr("10.1.0.0").Slash16() {
			first++
		} else {
			second++
		}
	}
	if first < 9000 || first > 11000 {
		t.Errorf("first /24 drew %d of 20000, want ≈10000", first)
	}
	_ = second
}

func TestBuildGreedySlash16HitList(t *testing.T) {
	var vulnerable []ipv4.Addr
	// 100 hosts in 10.1/16, 10 hosts in 10.2/16, 1 host in 10.3/16.
	for i := 0; i < 100; i++ {
		vulnerable = append(vulnerable, ipv4.MustParseAddr("10.1.0.0")+ipv4.Addr(i))
	}
	for i := 0; i < 10; i++ {
		vulnerable = append(vulnerable, ipv4.MustParseAddr("10.2.0.0")+ipv4.Addr(i))
	}
	vulnerable = append(vulnerable, ipv4.MustParseAddr("10.3.0.0"))

	prefixes, cover := BuildGreedySlash16HitList(vulnerable, 1)
	if len(prefixes) != 1 || prefixes[0].String() != "10.1.0.0/16" {
		t.Fatalf("top-1 = %v, want [10.1.0.0/16]", prefixes)
	}
	if want := 100.0 / 111.0; cover < want-1e-9 || cover > want+1e-9 {
		t.Errorf("coverage = %v, want %v", cover, want)
	}

	prefixes, cover = BuildGreedySlash16HitList(vulnerable, 10)
	if len(prefixes) != 3 {
		t.Fatalf("k beyond distinct /16s: got %d prefixes, want 3", len(prefixes))
	}
	if cover != 1 {
		t.Errorf("full coverage = %v, want 1", cover)
	}

	if p, c := BuildGreedySlash16HitList(nil, 5); p != nil || c != 0 {
		t.Errorf("empty population: %v, %v", p, c)
	}
	if p, c := BuildGreedySlash16HitList(vulnerable, 0); p != nil || c != 0 {
		t.Errorf("k=0: %v, %v", p, c)
	}
}

func TestFactoriesProduceIndependentDeterministicScanners(t *testing.T) {
	set := ipv4.SetOfPrefixes(ipv4.MustParsePrefix("10.0.0.0/8"))
	factories := []Factory{
		UniformFactory{},
		PermutationFactory{},
		HitListFactory{ListSet: set},
		SlammerFactory{Variant: 0},
		SlammerIntendedFactory{},
		BlasterFactory{Ticks: DefaultRebootTickModel()},
		CodeRedIIFactory{},
		CodeRedIIUniformFactory{},
	}
	own := ipv4.MustParseAddr("18.5.5.5")
	for _, f := range factories {
		t.Run(f.Name(), func(t *testing.T) {
			g1 := f.New(own, 77)
			g2 := f.New(own, 77)
			for i := 0; i < 50; i++ {
				if g1.Next() != g2.Next() {
					t.Fatal("same-seed generators diverged")
				}
			}
			if f.Name() == "" {
				t.Error("empty factory name")
			}
		})
	}
}
