package worm

import (
	"sort"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// HitList scans uniformly inside a pre-programmed address set and never
// probes outside it. Hit-lists are the algorithmic factor behind bot
// "advscan"/"ipscan" commands (Table 1): they concentrate all probe traffic
// on the listed ranges, creating hotspots there and total blindness
// everywhere else — including at every darknet sensor the list omits.
type HitList struct {
	set  *ipv4.Set
	size uint64
	r    *rng.Xoshiro
}

// NewHitList returns a scanner restricted to set, which must be non-empty.
// The set is frozen here: scanners sharing one list run on concurrent
// driver workers, and Select's lazily built index must not be constructed
// under that concurrency (scanner construction itself always happens on a
// single goroutine — seeding and the exact driver's serial merge phase).
func NewHitList(set *ipv4.Set, seed uint64) *HitList {
	if set.IsEmpty() {
		panic("worm: empty hit-list")
	}
	set.Freeze()
	return &HitList{set: set, size: set.Size(), r: rng.NewXoshiro(seed)}
}

// Next returns a uniformly random member of the hit-list.
func (h *HitList) Next() ipv4.Addr {
	return h.set.Select(h.r.Uint64n(h.size))
}

// Set returns the scanner's address set (shared, not copied).
func (h *HitList) Set() *ipv4.Set { return h.set }

// HitListFactory builds HitList scanners over a shared set, matching the
// paper's Section 5.2 simulation where every newly infected host receives
// the same /16 prefix list.
type HitListFactory struct {
	ListSet *ipv4.Set
}

// New implements Factory.
func (f HitListFactory) New(_ ipv4.Addr, seed uint64) TargetGenerator {
	return NewHitList(f.ListSet, seed)
}

// Name implements Factory.
func (f HitListFactory) Name() string { return "hitlist" }

// BuildGreedySlash16HitList selects up to k /16 networks covering as many of
// the given vulnerable addresses as possible, most-populated first — the
// construction the paper uses for its 10/100/1000/4481-prefix lists ("each
// /16 was chosen to cover as many remaining vulnerable hosts as possible").
//
// It returns the chosen prefixes and the fraction of the vulnerable
// population they cover. Ties break toward the numerically smaller /16 so
// the construction is deterministic.
func BuildGreedySlash16HitList(vulnerable []ipv4.Addr, k int) ([]ipv4.Prefix, float64) {
	if k <= 0 || len(vulnerable) == 0 {
		return nil, 0
	}
	counts := make(map[uint32]int)
	for _, a := range vulnerable {
		counts[a.Slash16()]++
	}
	type slash16 struct {
		net   uint32
		count int
	}
	all := make([]slash16, 0, len(counts))
	for net, c := range counts {
		all = append(all, slash16{net: net, count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].net < all[j].net
	})
	if k > len(all) {
		k = len(all)
	}
	prefixes := make([]ipv4.Prefix, 0, k)
	covered := 0
	for _, s := range all[:k] {
		p, err := ipv4.NewPrefix(ipv4.Addr(s.net<<16), 16)
		if err != nil {
			panic(err) // unreachable: 16 is always a valid length
		}
		prefixes = append(prefixes, p)
		covered += s.count
	}
	return prefixes, float64(covered) / float64(len(vulnerable))
}
