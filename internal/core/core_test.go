package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func uniformCounts(n int, perBucket uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = perBucket
	}
	return out
}

func TestChiSquareUniform(t *testing.T) {
	stat, df := ChiSquareUniform(uniformCounts(100, 50))
	if stat != 0 || df != 99 {
		t.Errorf("perfectly uniform: stat=%v df=%d, want 0, 99", stat, df)
	}
	// All mass on one bucket of n: stat = total·(n−1).
	counts := make([]uint64, 10)
	counts[3] = 1000
	stat, _ = ChiSquareUniform(counts)
	if want := 1000.0 * 9; math.Abs(stat-want) > 1e-9 {
		t.Errorf("point mass stat = %v, want %v", stat, want)
	}
	// Degenerate inputs.
	if s, d := ChiSquareUniform(nil); s != 0 || d != 0 {
		t.Error("nil input not degenerate")
	}
	if s, d := ChiSquareUniform(make([]uint64, 5)); s != 0 || d != 4 {
		t.Errorf("all-zero input: %v, %d", s, d)
	}
}

func TestChiSquareSamplingBehaviour(t *testing.T) {
	// Multinomial samples from a uniform distribution should pass
	// IsUniform; a hotspotted distribution should fail decisively.
	r := rng.NewXoshiro(1)
	counts := make([]uint64, 200)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(200)]++
	}
	rep := Analyze(counts)
	if !rep.IsUniform() {
		t.Errorf("uniform sample flagged non-uniform (chi2=%.1f df=%d)", rep.ChiSquare, rep.DF)
	}
	// Inject a hotspot: one bucket gets 10× traffic.
	counts[17] += 5000
	rep = Analyze(counts)
	if rep.IsUniform() {
		t.Errorf("hotspotted sample passed as uniform (chi2=%.1f df=%d)", rep.ChiSquare, rep.DF)
	}
}

func TestKLDivergence(t *testing.T) {
	if got := KLDivergenceFromUniform(uniformCounts(64, 10)); math.Abs(got) > 1e-12 {
		t.Errorf("uniform KL = %v, want 0", got)
	}
	counts := make([]uint64, 64)
	counts[0] = 999
	if got, want := KLDivergenceFromUniform(counts), 6.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("point-mass KL = %v, want log2(64)=%v", got, want)
	}
	if got := KLDivergenceFromUniform(nil); got != 0 {
		t.Errorf("nil KL = %v", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini(uniformCounts(50, 7)); math.Abs(got) > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", got)
	}
	counts := make([]uint64, 100)
	counts[99] = 10000
	if got := Gini(counts); got < 0.98 {
		t.Errorf("point-mass Gini = %v, want ≈0.99", got)
	}
	if got := Gini([]uint64{5}); got != 0 {
		t.Errorf("single bucket Gini = %v", got)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		counts := make([]uint64, len(raw))
		for i, v := range raw {
			counts[i] = uint64(v)
		}
		g := Gini(counts)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadOrders(t *testing.T) {
	if got := SpreadOrders([]uint64{10, 10, 10}); got != 0 {
		t.Errorf("equal counts spread = %v", got)
	}
	if got := SpreadOrders([]uint64{1, 0, 1000}); math.Abs(got-3) > 1e-9 {
		t.Errorf("spread = %v, want 3 orders", got)
	}
	if got := SpreadOrders([]uint64{0, 0}); got != 0 {
		t.Errorf("all-zero spread = %v", got)
	}
}

func TestFindHotspots(t *testing.T) {
	counts := []uint64{10, 12, 9, 11, 500, 10, 0, 95}
	hs := FindHotspots(counts, 5)
	if len(hs) != 2 {
		t.Fatalf("found %d hotspots, want 2: %+v", len(hs), hs)
	}
	if hs[0].Bucket != 4 || hs[1].Bucket != 7 {
		t.Errorf("hotspots = %+v, want buckets 4 then 7", hs)
	}
	if hs[0].Ratio < 40 {
		t.Errorf("dominant hotspot ratio = %v", hs[0].Ratio)
	}
	if got := FindHotspots(make([]uint64, 5), 5); got != nil {
		t.Error("hotspots found in all-zero data")
	}
}

func TestAnalyzeReport(t *testing.T) {
	counts := []uint64{0, 5, 5, 5, 5, 250}
	rep := Analyze(counts)
	if rep.Buckets != 6 || rep.Total != 270 || rep.ZeroBuckets != 1 {
		t.Errorf("report basics wrong: %+v", rep)
	}
	if rep.IsUniform() {
		t.Error("hotspotted report passed as uniform")
	}
	if len(rep.Hotspots) != 1 || rep.Hotspots[0].Bucket != 5 {
		t.Errorf("hotspots = %+v", rep.Hotspots)
	}
	if rep.Gini <= 0.5 {
		t.Errorf("Gini = %v, want > 0.5", rep.Gini)
	}
}

func TestDetectionVisibility(t *testing.T) {
	counts := []uint64{0, 0, 0, 1, 2, 4, 5, 9, 100, 3}
	v := DetectionVisibility(counts, 5)
	if v.Sensors != 10 {
		t.Errorf("Sensors = %d", v.Sensors)
	}
	if got := v.TouchedFraction; math.Abs(got-0.7) > 1e-9 {
		t.Errorf("TouchedFraction = %v, want 0.7", got)
	}
	if got := v.AlertedFraction; math.Abs(got-0.3) > 1e-9 {
		t.Errorf("AlertedFraction = %v, want 0.3", got)
	}
	if v.QuorumReachable {
		t.Error("quorum should not be reachable at 30%")
	}
	empty := DetectionVisibility(nil, 5)
	if empty.Sensors != 0 || empty.QuorumReachable {
		t.Error("empty visibility wrong")
	}
}

func TestFactorClassString(t *testing.T) {
	if Algorithmic.String() != "algorithmic" || Environmental.String() != "environmental" {
		t.Error("factor names wrong")
	}
	if FactorClass(7).String() != "FactorClass(7)" {
		t.Error("unknown factor formatting wrong")
	}
}
