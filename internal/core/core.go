// Package core is the hotspot-analysis library: the paper's conceptual
// contribution — defining and quantifying hotspots, deviations from uniform
// malware propagation — turned into an API.
//
// The inputs are observation distributions: probe or unique-source counts
// per bucket (per destination /24 at a darknet, per sensor in a fleet). The
// package quantifies non-uniformity (chi-square against uniform, KL
// divergence, Gini coefficient, orders-of-magnitude spread), locates
// hotspot buckets, classifies the causal factor (algorithmic vs
// environmental, per the paper's taxonomy), and evaluates what the
// non-uniformity does to distributed-detection visibility.
package core

import (
	"fmt"
	"math"
	"sort"
)

// FactorClass is the paper's two-way taxonomy of hotspot root causes.
type FactorClass int

// Hotspot factor classes.
const (
	// Algorithmic factors are host-level and programmatic: hit-lists,
	// flawed or badly seeded PRNGs, deliberate local preference.
	Algorithmic FactorClass = iota + 1
	// Environmental factors are external: routing and filtering policy,
	// failures and misconfiguration, topology (NAT/private addressing).
	Environmental
)

// String names the class.
func (f FactorClass) String() string {
	switch f {
	case Algorithmic:
		return "algorithmic"
	case Environmental:
		return "environmental"
	default:
		return fmt.Sprintf("FactorClass(%d)", int(f))
	}
}

// ChiSquareUniform returns the chi-square statistic of counts against the
// uniform distribution and the degrees of freedom. A worm with no hotspots
// produces a statistic near df; hotspots inflate it by orders of magnitude.
func ChiSquareUniform(counts []uint64) (stat float64, df int) {
	if len(counts) < 2 {
		return 0, 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, len(counts) - 1
	}
	expected := float64(total) / float64(len(counts))
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return stat, len(counts) - 1
}

// KLDivergenceFromUniform returns the Kullback–Leibler divergence (in bits)
// of the empirical bucket distribution from uniform. 0 means perfectly
// uniform; log2(len(counts)) means all mass on one bucket.
func KLDivergenceFromUniform(counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(counts) < 2 {
		return 0
	}
	u := 1.0 / float64(len(counts))
	var kl float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		kl += p * math.Log2(p/u)
	}
	return kl
}

// Gini returns the Gini coefficient of the counts: 0 for perfect equality,
// approaching 1 when a few buckets hold all observations.
func Gini(counts []uint64) float64 {
	n := len(counts)
	if n < 2 {
		return 0
	}
	sorted := make([]float64, n)
	var total float64
	for i, c := range counts {
		sorted[i] = float64(c)
		total += float64(c)
	}
	//lint:ignore float-eq total is an exact sum of whole uint64 counts, so zero means literally no observations
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var weighted float64
	for i, v := range sorted {
		weighted += float64(i+1) * v
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// SpreadOrders returns the orders-of-magnitude spread between the largest
// and smallest positive counts — the "orders-of-magnitude different amounts
// of traffic" observation that motivated the paper. Buckets with zero
// observations are reported separately by Analyze.
func SpreadOrders(counts []uint64) float64 {
	var minPos, maxPos uint64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if minPos == 0 || c < minPos {
			minPos = c
		}
		if c > maxPos {
			maxPos = c
		}
	}
	if minPos == 0 {
		return 0
	}
	return math.Log10(float64(maxPos) / float64(minPos))
}

// Hotspot identifies one bucket with anomalously high observations.
type Hotspot struct {
	// Bucket is the index into the analyzed distribution.
	Bucket int
	// Count is the bucket's observation count.
	Count uint64
	// Ratio is Count over the median positive count.
	Ratio float64
}

// FindHotspots returns buckets whose counts exceed ratio× the median
// positive count, strongest first. ratio values around 5–10 isolate the
// spikes visible in the paper's figures.
func FindHotspots(counts []uint64, ratio float64) []Hotspot {
	med := medianPositive(counts)
	if med <= 0 {
		return nil
	}
	var out []Hotspot
	for i, c := range counts {
		if r := float64(c) / med; r >= ratio {
			out = append(out, Hotspot{Bucket: i, Count: c, Ratio: r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

func medianPositive(counts []uint64) float64 {
	var pos []uint64
	for _, c := range counts {
		if c > 0 {
			pos = append(pos, c)
		}
	}
	if len(pos) == 0 {
		return 0
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	mid := len(pos) / 2
	if len(pos)%2 == 1 {
		return float64(pos[mid])
	}
	return (float64(pos[mid-1]) + float64(pos[mid])) / 2
}

// Report is the full hotspot analysis of one observation distribution.
type Report struct {
	// Buckets is the number of buckets analyzed.
	Buckets int
	// Total is the total observation count.
	Total uint64
	// ZeroBuckets counts buckets with no observations at all (total
	// blindness — e.g. the M block during Slammer).
	ZeroBuckets int
	// ChiSquare is the statistic against uniform; DF its degrees of
	// freedom.
	ChiSquare float64
	DF        int
	// KLBits is the KL divergence from uniform in bits.
	KLBits float64
	// Gini is the Gini coefficient.
	Gini float64
	// SpreadOrders is the log10 max/min spread over positive buckets.
	SpreadOrders float64
	// Hotspots lists buckets ≥ 5× the positive median.
	Hotspots []Hotspot
}

// IsUniform reports whether the distribution is statistically consistent
// with uniform propagation at roughly the 0.1% level (chi-square compared
// to a normal approximation of its critical value).
func (r Report) IsUniform() bool {
	if r.DF <= 0 {
		return true
	}
	// χ²_{0.999,df} ≈ df + 3.09·sqrt(2df) for large df.
	critical := float64(r.DF) + 3.09*math.Sqrt(2*float64(r.DF))
	return r.ChiSquare <= critical
}

// Analyze computes the full report for one distribution.
func Analyze(counts []uint64) Report {
	rep := Report{Buckets: len(counts)}
	for _, c := range counts {
		rep.Total += c
		if c == 0 {
			rep.ZeroBuckets++
		}
	}
	rep.ChiSquare, rep.DF = ChiSquareUniform(counts)
	rep.KLBits = KLDivergenceFromUniform(counts)
	rep.Gini = Gini(counts)
	rep.SpreadOrders = SpreadOrders(counts)
	rep.Hotspots = FindHotspots(counts, 5)
	return rep
}

// Visibility quantifies what a distribution of per-sensor observations
// means for distributed detection.
type Visibility struct {
	// Sensors is the fleet size.
	Sensors int
	// TouchedFraction is the share of sensors with ≥1 observation.
	TouchedFraction float64
	// AlertedFraction is the share of sensors at or above the alert
	// threshold.
	AlertedFraction float64
	// QuorumReachable reports whether a majority quorum could ever form.
	QuorumReachable bool
}

// DetectionVisibility evaluates sensor-level visibility of a threat whose
// per-sensor observation counts are given, for an alert threshold
// (the paper uses 5 payloads).
func DetectionVisibility(counts []uint64, threshold uint64) Visibility {
	v := Visibility{Sensors: len(counts)}
	if len(counts) == 0 {
		return v
	}
	var touched, alerted int
	for _, c := range counts {
		if c > 0 {
			touched++
		}
		if c >= threshold {
			alerted++
		}
	}
	v.TouchedFraction = float64(touched) / float64(len(counts))
	v.AlertedFraction = float64(alerted) / float64(len(counts))
	v.QuorumReachable = v.AlertedFraction >= 0.5
	return v
}
