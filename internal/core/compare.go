package core

import (
	"errors"
	"math"
)

// Delta compares two observation distributions over the same buckets —
// typically a measured run against an ablation with one factor removed
// (tick-seeded vs well-seeded Blaster, filtered vs unfiltered, NAT'd vs
// public). It quantifies how much of the non-uniformity the factor under
// test is responsible for.
type Delta struct {
	// GiniA and GiniB are the two distributions' concentration indices.
	GiniA, GiniB float64
	// ChiA and ChiB are the chi-square statistics against uniform.
	ChiA, ChiB float64
	// ExcessShare is the fraction of A's total mass sitting above the
	// per-bucket level B (scaled to A's volume) would predict — the mass
	// the factor concentrates into hotspots.
	ExcessShare float64
	// PeakShift is bucket index of A's largest positive excess over
	// scaled B, −1 when A never exceeds it.
	PeakShift int
	// Attribution summarizes the comparison.
	Attribution Attribution
}

// Attribution classifies a factor comparison's outcome.
type Attribution int

// Attribution outcomes.
const (
	// FactorInert: removing the factor changed little; it does not drive
	// the observed non-uniformity.
	FactorInert Attribution = iota + 1
	// FactorAmplifies: the factor visibly increases concentration.
	FactorAmplifies
	// FactorDominates: the factor accounts for the bulk of the observed
	// concentration (Gini falls by more than half without it).
	FactorDominates
)

// String names the attribution.
func (a Attribution) String() string {
	switch a {
	case FactorInert:
		return "inert"
	case FactorAmplifies:
		return "amplifies"
	case FactorDominates:
		return "dominates"
	default:
		return "Attribution(?)"
	}
}

// Compare computes the delta of distribution a (factor present) against b
// (factor ablated). The slices must be the same length and b must carry
// observations.
func Compare(a, b []uint64) (Delta, error) {
	if len(a) != len(b) {
		return Delta{}, errors.New("core: distributions differ in length")
	}
	if len(a) == 0 {
		return Delta{}, errors.New("core: empty distributions")
	}
	var totalA, totalB float64
	for i := range a {
		totalA += float64(a[i])
		totalB += float64(b[i])
	}
	//lint:ignore float-eq totalB is an exact sum of whole uint64 counts, so zero means literally no observations
	if totalB == 0 {
		return Delta{}, errors.New("core: ablation distribution is empty")
	}
	d := Delta{
		GiniA: Gini(a),
		GiniB: Gini(b),
	}
	d.ChiA, _ = ChiSquareUniform(a)
	d.ChiB, _ = ChiSquareUniform(b)

	scale := totalA / totalB
	var excess, peak float64
	d.PeakShift = -1
	for i := range a {
		e := float64(a[i]) - float64(b[i])*scale
		if e > 0 {
			excess += e
			if e > peak {
				peak = e
				d.PeakShift = i
			}
		}
	}
	if totalA > 0 {
		d.ExcessShare = excess / totalA
	}

	switch {
	case d.GiniA <= d.GiniB*1.2+1e-9:
		d.Attribution = FactorInert
	case d.GiniB < d.GiniA/2:
		d.Attribution = FactorDominates
	default:
		d.Attribution = FactorAmplifies
	}
	return d, nil
}

// GiniReduction returns the share of A's concentration that disappears in
// the ablation: 1 − GiniB/GiniA (0 when A is already flat).
func (d Delta) GiniReduction() float64 {
	if d.GiniA <= 0 {
		return 0
	}
	return math.Max(0, 1-d.GiniB/d.GiniA)
}
