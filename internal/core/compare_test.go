package core

import (
	"testing"

	"repro/internal/rng"
)

func TestCompareValidation(t *testing.T) {
	if _, err := Compare([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Compare(nil, nil); err == nil {
		t.Error("empty distributions accepted")
	}
	if _, err := Compare([]uint64{1, 2}, []uint64{0, 0}); err == nil {
		t.Error("empty ablation accepted")
	}
}

func TestCompareDominatingFactor(t *testing.T) {
	// A: strong hotspot; B (ablated): flat with the same volume shape.
	a := make([]uint64, 100)
	b := make([]uint64, 100)
	for i := range a {
		a[i] = 10
		b[i] = 10
	}
	a[42] = 5000
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attribution != FactorDominates {
		t.Errorf("attribution = %v, want dominates", d.Attribution)
	}
	if d.PeakShift != 42 {
		t.Errorf("PeakShift = %d, want 42", d.PeakShift)
	}
	if d.ExcessShare < 0.5 {
		t.Errorf("ExcessShare = %v, want most of the mass", d.ExcessShare)
	}
	if d.GiniReduction() < 0.5 {
		t.Errorf("GiniReduction = %v, want > 0.5", d.GiniReduction())
	}
}

func TestCompareInertFactor(t *testing.T) {
	// Statistically identical distributions: the factor is inert.
	r := rng.NewXoshiro(1)
	a := make([]uint64, 200)
	b := make([]uint64, 200)
	for i := 0; i < 100000; i++ {
		a[r.Intn(200)]++
		b[r.Intn(200)]++
	}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attribution != FactorInert {
		t.Errorf("attribution = %v (GiniA=%.4f GiniB=%.4f), want inert",
			d.Attribution, d.GiniA, d.GiniB)
	}
	if d.ExcessShare > 0.05 {
		t.Errorf("ExcessShare = %v for identical distributions", d.ExcessShare)
	}
}

func TestCompareScalesVolumes(t *testing.T) {
	// B has 10x less total volume but the same shape: still inert.
	a := []uint64{100, 200, 300}
	b := []uint64{10, 20, 30}
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attribution != FactorInert || d.ExcessShare != 0 {
		t.Errorf("scaled comparison: %+v", d)
	}
	if d.PeakShift != -1 {
		t.Errorf("PeakShift = %d for no-excess comparison", d.PeakShift)
	}
}

func TestCompareAmplifyingFactor(t *testing.T) {
	// A is moderately more concentrated than B — amplification without
	// dominance.
	a := []uint64{10, 10, 10, 10, 40} // Gini 0.3
	b := []uint64{12, 12, 12, 12, 32} // Gini 0.2
	d, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attribution != FactorAmplifies {
		t.Errorf("attribution = %v (GiniA=%.3f GiniB=%.3f), want amplifies",
			d.Attribution, d.GiniA, d.GiniB)
	}
}

func TestAttributionString(t *testing.T) {
	if FactorInert.String() != "inert" || FactorAmplifies.String() != "amplifies" ||
		FactorDominates.String() != "dominates" {
		t.Error("attribution names wrong")
	}
	if Attribution(9).String() != "Attribution(?)" {
		t.Error("unknown attribution formatting wrong")
	}
}

// TestCompareEndToEndAblation runs the comparison on real library output:
// tick-seeded Blaster observations vs the well-seeded ablation.
func TestCompareEndToEndAblation(t *testing.T) {
	// Small synthetic stand-in for the Figure 1 pair: hotspots present vs
	// absent, produced by the same generator family.
	r := rng.NewXoshiro(7)
	withFactor := make([]uint64, 500)
	ablated := make([]uint64, 500)
	for i := 0; i < 20000; i++ {
		ablated[r.Intn(500)]++
		// 40% of the factor-present mass concentrates on 5 buckets.
		if r.Bernoulli(0.4) {
			withFactor[r.Intn(5)]++
		} else {
			withFactor[r.Intn(500)]++
		}
	}
	d, err := Compare(withFactor, ablated)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attribution == FactorInert {
		t.Errorf("hotspot factor classified inert: %+v", d)
	}
	if d.PeakShift >= 5 {
		t.Errorf("peak at bucket %d, want within the hotspot buckets", d.PeakShift)
	}
}
