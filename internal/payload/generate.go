package payload

import (
	"repro/internal/rng"
)

// WormPayload synthesizes a worm infection payload: an invariant exploit
// region (what content-prevalence systems latch onto) surrounded by
// per-instance polymorphic filler. The invariant region is a deterministic
// function of the worm name so every instance carries it.
type WormPayload struct {
	// Name identifies the worm (drives the invariant bytes).
	Name string
	// InvariantLen and FillerLen size the two regions.
	InvariantLen int
	FillerLen    int
}

// DefaultWormPayload returns a payload model comparable to a small exploit:
// a 120-byte invariant region and 200 bytes of per-instance filler.
func DefaultWormPayload(name string) WormPayload {
	return WormPayload{Name: name, InvariantLen: 120, FillerLen: 200}
}

// Instance renders one instance's bytes; instanceSeed varies the filler
// (polymorphism) but never the invariant region.
func (w WormPayload) Instance(instanceSeed uint64) []byte {
	out := make([]byte, 0, w.InvariantLen+w.FillerLen)
	inv := rng.NewXoshiro(hashName(w.Name))
	for i := 0; i < w.InvariantLen; i++ {
		out = append(out, byte(inv.Uint64n(256)))
	}
	fill := rng.NewXoshiro(rng.Mix64(instanceSeed))
	for i := 0; i < w.FillerLen; i++ {
		out = append(out, byte(fill.Uint64n(256)))
	}
	return out
}

// BenignPayload renders unique benign content (every packet distinct), the
// background against which worm content must stand out.
func BenignPayload(seed uint64, length int) []byte {
	r := rng.NewXoshiro(rng.Mix64(seed ^ 0xb5e1))
	out := make([]byte, length)
	for i := range out {
		out[i] = byte(r.Uint64n(256))
	}
	return out
}

// hashName folds a worm name into a seed.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
