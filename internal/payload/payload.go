// Package payload implements the content-prevalence detection substrate the
// paper's Section 5 argues hotspots undermine: Rabin-fingerprint content
// sampling with prevalence and address-dispersion tracking, in the style of
// EarlyBird (Singh et al., OSDI'04) and Autograph (Kim & Karp, USENIX
// Security'04) — the paper's references [24] and [12].
//
// The pipeline: every observed packet's payload is scanned with a rolling
// Rabin fingerprint over fixed-size windows; a deterministic subset of
// fingerprints is sampled (value sampling); each sampled fingerprint's
// occurrence count and source/destination address dispersion are tracked;
// a signature alarm fires when all three cross their thresholds. Worm
// content is invariant and arrives from ever more sources toward ever more
// destinations, so it crosses quickly — but only at sensors the worm's
// hotspots actually reach.
package payload

import (
	"errors"

	"repro/internal/ipv4"
)

// rabinPoly is the multiplier of the rolling polynomial hash; any odd
// constant with good mixing works for simulation purposes.
const rabinPoly = 0x3B9ACA07

// Fingerprint is a Rabin fingerprint of one content window.
type Fingerprint uint64

// Rabin computes the rolling fingerprints of every window-sized substring
// of data, invoking emit for each. It returns the number of windows.
func Rabin(data []byte, window int, emit func(Fingerprint)) int {
	if window <= 0 || len(data) < window {
		return 0
	}
	// pow = rabinPoly^(window-1) for removing the outgoing byte.
	var pow uint64 = 1
	for i := 0; i < window-1; i++ {
		pow *= rabinPoly
	}
	var h uint64
	for i := 0; i < window; i++ {
		h = h*rabinPoly + uint64(data[i])
	}
	emit(Fingerprint(h))
	n := 1
	for i := window; i < len(data); i++ {
		h -= uint64(data[i-window]) * pow
		h = h*rabinPoly + uint64(data[i])
		emit(Fingerprint(h))
		n++
	}
	return n
}

// Sampled reports whether a fingerprint is in the deterministic value
// sample (EarlyBird samples fingerprints whose low bits match a pattern so
// every sensor samples the same substrings).
func Sampled(fp Fingerprint, rate uint) bool {
	if rate <= 1 {
		return true
	}
	return uint64(fp)%uint64(rate) == 0
}

// EarlybirdConfig tunes the detector.
type EarlybirdConfig struct {
	// Window is the substring length fingerprinted (EarlyBird: 40 bytes).
	Window int
	// SampleRate keeps 1/SampleRate of fingerprints (EarlyBird: 64).
	SampleRate uint
	// PrevalenceThreshold is the occurrence count that makes content
	// "prevalent"; SrcThreshold and DstThreshold are the address
	// dispersion gates.
	PrevalenceThreshold uint64
	SrcThreshold        int
	DstThreshold        int
	// MaxTracked bounds the fingerprint table (oldest-inserted entries are
	// evicted beyond it; worm content re-enters immediately).
	MaxTracked int
}

// DefaultEarlybirdConfig returns EarlyBird-like defaults scaled for
// simulation traffic volumes.
func DefaultEarlybirdConfig() EarlybirdConfig {
	return EarlybirdConfig{
		Window:              40,
		SampleRate:          64,
		PrevalenceThreshold: 12,
		SrcThreshold:        5,
		DstThreshold:        5,
		MaxTracked:          1 << 16,
	}
}

// Earlybird is a content-prevalence detector instance (one per sensor).
// Not safe for concurrent use.
type Earlybird struct {
	cfg     EarlybirdConfig
	entries map[Fingerprint]*contentEntry
	order   []Fingerprint // insertion order for bounded eviction
	alarms  map[Fingerprint]bool
}

// contentEntry tracks one sampled fingerprint.
type contentEntry struct {
	count uint64
	srcs  map[ipv4.Addr]struct{}
	dsts  map[ipv4.Addr]struct{}
}

// NewEarlybird builds a detector.
func NewEarlybird(cfg EarlybirdConfig) (*Earlybird, error) {
	if cfg.Window <= 0 {
		return nil, errors.New("payload: non-positive window")
	}
	if cfg.PrevalenceThreshold == 0 || cfg.SrcThreshold <= 0 || cfg.DstThreshold <= 0 {
		return nil, errors.New("payload: thresholds must be positive")
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = 1 << 16
	}
	return &Earlybird{
		cfg:     cfg,
		entries: make(map[Fingerprint]*contentEntry),
		alarms:  make(map[Fingerprint]bool),
	}, nil
}

// Observe processes one packet and returns the fingerprints (if any) whose
// signature alarms fired on this packet.
func (e *Earlybird) Observe(src, dst ipv4.Addr, data []byte) []Fingerprint {
	var fired []Fingerprint
	Rabin(data, e.cfg.Window, func(fp Fingerprint) {
		if !Sampled(fp, e.cfg.SampleRate) {
			return
		}
		ent, ok := e.entries[fp]
		if !ok {
			e.evictIfFull()
			ent = &contentEntry{
				srcs: make(map[ipv4.Addr]struct{}),
				dsts: make(map[ipv4.Addr]struct{}),
			}
			e.entries[fp] = ent
			e.order = append(e.order, fp)
		}
		ent.count++
		ent.srcs[src] = struct{}{}
		ent.dsts[dst] = struct{}{}
		if !e.alarms[fp] &&
			ent.count >= e.cfg.PrevalenceThreshold &&
			len(ent.srcs) >= e.cfg.SrcThreshold &&
			len(ent.dsts) >= e.cfg.DstThreshold {
			e.alarms[fp] = true
			fired = append(fired, fp)
		}
	})
	return fired
}

// evictIfFull drops the oldest tracked fingerprint when at capacity,
// preserving alarm history.
func (e *Earlybird) evictIfFull() {
	for len(e.entries) >= e.cfg.MaxTracked && len(e.order) > 0 {
		victim := e.order[0]
		e.order = e.order[1:]
		delete(e.entries, victim)
	}
}

// Alarms returns the number of distinct alarmed fingerprints.
func (e *Earlybird) Alarms() int { return len(e.alarms) }

// Alarmed reports whether fp has alarmed.
func (e *Earlybird) Alarmed(fp Fingerprint) bool { return e.alarms[fp] }

// Tracked returns the number of fingerprints currently tracked.
func (e *Earlybird) Tracked() int { return len(e.entries) }

// Reset clears all state.
func (e *Earlybird) Reset() {
	e.entries = make(map[Fingerprint]*contentEntry)
	e.order = nil
	e.alarms = make(map[Fingerprint]bool)
}
