package payload

import (
	"bytes"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

func TestRabinWindowCount(t *testing.T) {
	data := make([]byte, 100)
	n := Rabin(data, 40, func(Fingerprint) {})
	if n != 61 {
		t.Errorf("windows = %d, want 61", n)
	}
	if n := Rabin(data[:10], 40, func(Fingerprint) {}); n != 0 {
		t.Errorf("short data produced %d windows", n)
	}
	if n := Rabin(data, 0, func(Fingerprint) {}); n != 0 {
		t.Errorf("zero window produced %d windows", n)
	}
}

func TestRabinRollingMatchesDirect(t *testing.T) {
	// The rolling hash must equal a direct polynomial evaluation of every
	// window.
	r := rng.NewXoshiro(1)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(r.Uint64n(256))
	}
	const window = 16
	var got []Fingerprint
	Rabin(data, window, func(fp Fingerprint) { got = append(got, fp) })
	for i := 0; i+window <= len(data); i++ {
		var h uint64
		for _, b := range data[i : i+window] {
			h = h*rabinPoly + uint64(b)
		}
		if got[i] != Fingerprint(h) {
			t.Fatalf("window %d: rolling %x != direct %x", i, got[i], h)
		}
	}
}

func TestRabinShiftInvariance(t *testing.T) {
	// The same substring at different offsets yields the same fingerprint —
	// the property Autograph/EarlyBird rely on to match worm content
	// embedded at varying positions.
	motif := []byte("GET /default.ida?NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN")
	a := append([]byte("xxxx"), motif...)
	b := append([]byte("yyyyyyyyyyyy"), motif...)
	seen := make(map[Fingerprint]int)
	Rabin(a, 32, func(fp Fingerprint) { seen[fp]++ })
	var common int
	Rabin(b, 32, func(fp Fingerprint) {
		if seen[fp] > 0 {
			common++
		}
	})
	if common < len(motif)-32 {
		t.Errorf("common fingerprints = %d, want ≥ %d", common, len(motif)-32)
	}
}

func TestSampled(t *testing.T) {
	if !Sampled(Fingerprint(0), 64) || Sampled(Fingerprint(1), 64) {
		t.Error("sampling predicate wrong")
	}
	if !Sampled(Fingerprint(7), 1) || !Sampled(Fingerprint(7), 0) {
		t.Error("rate ≤ 1 must sample everything")
	}
}

func TestWormPayloadInvariantRegion(t *testing.T) {
	w := DefaultWormPayload("slammer")
	a := w.Instance(1)
	b := w.Instance(2)
	if len(a) != w.InvariantLen+w.FillerLen {
		t.Fatalf("payload length %d", len(a))
	}
	if !bytes.Equal(a[:w.InvariantLen], b[:w.InvariantLen]) {
		t.Error("invariant regions differ between instances")
	}
	if bytes.Equal(a[w.InvariantLen:], b[w.InvariantLen:]) {
		t.Error("filler identical between instances (no polymorphism)")
	}
	other := DefaultWormPayload("blaster").Instance(1)
	if bytes.Equal(a[:w.InvariantLen], other[:w.InvariantLen]) {
		t.Error("different worms share an invariant region")
	}
}

func TestEarlybirdValidation(t *testing.T) {
	bad := []EarlybirdConfig{
		{Window: 0, PrevalenceThreshold: 1, SrcThreshold: 1, DstThreshold: 1},
		{Window: 40, PrevalenceThreshold: 0, SrcThreshold: 1, DstThreshold: 1},
		{Window: 40, PrevalenceThreshold: 1, SrcThreshold: 0, DstThreshold: 1},
		{Window: 40, PrevalenceThreshold: 1, SrcThreshold: 1, DstThreshold: 0},
	}
	for i, cfg := range bad {
		if _, err := NewEarlybird(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestEarlybirdDetectsWorm(t *testing.T) {
	cfg := DefaultEarlybirdConfig()
	cfg.SampleRate = 8 // denser sampling for the small test volume
	eb, err := NewEarlybird(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWormPayload("slammer")
	r := rng.NewXoshiro(3)
	alarmAt := -1
	for i := 0; i < 200; i++ {
		src := ipv4.Addr(0x0a000000 + r.Uint64n(1000))
		dst := ipv4.Addr(0x29000000 + r.Uint64n(1000))
		if fired := eb.Observe(src, dst, w.Instance(uint64(i))); len(fired) > 0 && alarmAt < 0 {
			alarmAt = i
		}
	}
	if alarmAt < 0 {
		t.Fatal("worm content never alarmed")
	}
	if alarmAt > 50 {
		t.Errorf("alarm after %d packets, want early", alarmAt)
	}
}

func TestEarlybirdIgnoresBenignAndLowDispersion(t *testing.T) {
	cfg := DefaultEarlybirdConfig()
	cfg.SampleRate = 8
	eb, err := NewEarlybird(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unique benign content never repeats: no alarms.
	for i := 0; i < 500; i++ {
		eb.Observe(ipv4.Addr(i), ipv4.Addr(i*3), BenignPayload(uint64(i), 300))
	}
	if eb.Alarms() != 0 {
		t.Errorf("benign traffic alarmed %d signatures", eb.Alarms())
	}

	// Prevalent content from a single source to a single destination (a
	// chatty but benign flow) is gated out by address dispersion.
	flow := DefaultWormPayload("bulk-transfer")
	src, dst := ipv4.Addr(1), ipv4.Addr(2)
	for i := 0; i < 500; i++ {
		eb.Observe(src, dst, flow.Instance(0))
	}
	if eb.Alarms() != 0 {
		t.Errorf("single-flow traffic alarmed %d signatures", eb.Alarms())
	}
}

func TestEarlybirdEviction(t *testing.T) {
	cfg := DefaultEarlybirdConfig()
	cfg.SampleRate = 1
	cfg.Window = 8
	cfg.MaxTracked = 64
	eb, err := NewEarlybird(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		eb.Observe(ipv4.Addr(i), ipv4.Addr(i), BenignPayload(uint64(i), 64))
	}
	if eb.Tracked() > 64 {
		t.Errorf("tracked %d fingerprints, cap 64", eb.Tracked())
	}
}

func TestEarlybirdReset(t *testing.T) {
	eb, err := NewEarlybird(DefaultEarlybirdConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWormPayload("x")
	for i := 0; i < 100; i++ {
		eb.Observe(ipv4.Addr(i), ipv4.Addr(i+1), w.Instance(uint64(i)))
	}
	eb.Reset()
	if eb.Alarms() != 0 || eb.Tracked() != 0 {
		t.Error("reset left state")
	}
}

func TestEarlybirdHotspotBlindness(t *testing.T) {
	// The paper's Section 5 argument: two identical EarlyBird sensors, one
	// inside the worm's hit-list, one outside. Same worm, same volume —
	// only the in-hotspot sensor ever alarms.
	cfg := DefaultEarlybirdConfig()
	cfg.SampleRate = 8
	inHotspot, err := NewEarlybird(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outside, err := NewEarlybird(cfg)
	if err != nil {
		t.Fatal(err)
	}
	monitoredIn := ipv4.MustParsePrefix("10.1.0.0/16")  // inside hit-list
	monitoredOut := ipv4.MustParsePrefix("41.7.0.0/16") // outside
	hitList := ipv4.MustParsePrefix("10.0.0.0/8")

	w := DefaultWormPayload("hitlist-worm")
	r := rng.NewXoshiro(9)
	for i := 0; i < 30000; i++ {
		src := ipv4.Addr(0x50000000 + r.Uint64n(5000))
		dst := hitList.Nth(r.Uint64n(hitList.NumAddrs()))
		data := w.Instance(uint64(i))
		if monitoredIn.Contains(dst) {
			inHotspot.Observe(src, dst, data)
		}
		if monitoredOut.Contains(dst) {
			outside.Observe(src, dst, data)
		}
	}
	if inHotspot.Alarms() == 0 {
		t.Error("in-hotspot sensor never alarmed")
	}
	if outside.Alarms() != 0 {
		t.Error("outside sensor alarmed on traffic it cannot see")
	}
}
