package cycle

import "fmt"

// ForEachShortCycle invokes fn exactly once per distinct cycle whose length
// is at most maxLen, passing a representative state and the cycle length.
// Callers iterate a cycle's members with Walk(start, length−1, …) (plus the
// start state itself).
//
// Only the short-cycle states are touched: they form an arithmetic
// progression (see StatesWithPeriodAtMost), so the cost is O(#short states),
// not O(2^Bits). This is how the Slammer analysis finds every "trap" cycle —
// the cycles that make an infected host hammer a handful of addresses — in
// a 4-billion-state space.
func (m Map) ForEachShortCycle(maxLen uint64, fn func(start uint32, length uint64)) {
	prog, ok := m.StatesWithPeriodAtMost(maxLen)
	if !ok {
		return
	}
	visited := newBitset(prog.Count)
	for i := uint64(0); i < prog.Count; i++ {
		if visited.get(i) {
			continue
		}
		start := prog.Nth(i)
		length := m.Period(start)
		// Mark every member of this cycle. Members stay within the
		// progression because their periods divide this cycle's length.
		cur := start
		for j := uint64(0); j < length; j++ {
			visited.set(prog.indexOf(cur))
			cur = m.Step(cur)
		}
		fn(start, length)
	}
}

// indexOf maps a progression member back to its index. It panics if state is
// not a member; internal callers only pass members.
func (p Progression) indexOf(state uint32) uint64 {
	delta := state - p.Start
	if p.Step == 0 || delta%p.Step != 0 {
		panic(fmt.Sprintf("cycle: state %#x not in progression", state))
	}
	return uint64(delta / p.Step)
}

// BruteForceCensus enumerates every state of the map (feasible only for
// reduced Bits) and returns the number of distinct cycles per length. It
// exists to verify the closed-form Census.
func (m Map) BruteForceCensus() map[uint64]uint64 {
	if m.Bits > 24 {
		panic(fmt.Sprintf("cycle: brute-force census over 2^%d states refused", m.Bits))
	}
	total := uint64(1) << m.Bits
	visited := newBitset(total)
	counts := make(map[uint64]uint64)
	for x := uint64(0); x < total; x++ {
		if visited.get(x) {
			continue
		}
		var length uint64
		cur := uint32(x)
		for !visited.get(uint64(cur)) {
			visited.set(uint64(cur))
			cur = m.Step(cur)
			length++
		}
		if cur != uint32(x) {
			// We walked into a previously seen cycle via a tail — impossible
			// for a bijection, so this indicates a non-invertible map.
			panic("cycle: map is not a bijection")
		}
		counts[length]++
	}
	return counts
}

// bitset is a fixed-size bitmap.
type bitset struct {
	words []uint64
}

func newBitset(n uint64) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) get(i uint64) bool {
	return b.words[i/64]&(1<<(i%64)) != 0
}

func (b *bitset) set(i uint64) {
	b.words[i/64] |= 1 << (i % 64)
}
