package cycle

import "repro/internal/ipv4"

// Orbit-structure API. For T(x) = A·x + B (mod 2^m) with A ≡ 1 (mod 4), the
// orbit of x is T^t(x) = x + S_t·d(x) where S_t = 1 + A + … + A^(t−1). As t
// runs over the period 2^(m−v) (v = v2(d(x))), S_t takes every residue
// modulo 2^(m−v) exactly once, so S_t·d(x) takes every multiple of 2^v
// exactly once. Hence
//
//	orbit(x) = { x + j·2^v  :  j = 0 … 2^(m−v)−1 }
//
// — every cycle is an arithmetic progression ("lattice") with power-of-two
// stride. Two consequences the Slammer analysis leans on: a trapped host's
// targets are exactly one residue class modulo its stride (one address per
// /16 for a 2^16-state cycle), and with uniformly random seeds every
// aggregate first moment is uniform across equal-size blocks, so the
// aggregate non-uniformity observed in the wild requires clustered
// (low-entropy) seeding.

// OrbitStride returns the arithmetic-progression step 2^v2(d(x)) of x's
// orbit (0 means the orbit is the single fixed point x).
func (m Map) OrbitStride(x uint32) uint64 {
	v := m.V2D(x)
	if v >= m.Bits {
		return 0 // fixed point
	}
	return 1 << v
}

// SameOrbit reports whether x and y lie on the same cycle, in O(1): they
// must share v2(d) and the residue class of the orbit stride.
func (m Map) SameOrbit(x, y uint32) bool {
	x &= m.mask()
	y &= m.mask()
	stride := m.OrbitStride(x)
	if stride == 0 {
		return x == y
	}
	return (x-y)&uint32(stride-1) == 0 && m.V2D(y) == m.V2D(x)
}

// OrbitMin returns the canonical identifier of x's cycle — its minimum
// element — in O(1) via the lattice structure: min {x + j·2^v} = x mod 2^v.
func (m Map) OrbitMin(x uint32) uint32 {
	x &= m.mask()
	stride := m.OrbitStride(x)
	if stride == 0 {
		return x
	}
	return x & uint32(stride-1)
}

// OrbitCountInInterval returns |orbit(x) ∩ [lo, hi]| in O(1): the number of
// members of x's residue class falling in the inclusive interval.
func (m Map) OrbitCountInInterval(x uint32, iv ipv4.Interval) uint64 {
	lo, hi := uint64(uint32(iv.Lo)&m.mask()), uint64(uint32(iv.Hi)&m.mask())
	if lo > hi {
		return 0
	}
	stride := m.OrbitStride(x)
	if stride == 0 {
		if p := uint64(x & m.mask()); p >= lo && p <= hi {
			return 1
		}
		return 0
	}
	rem := uint64(x) & (stride - 1)
	first := rem
	if lo > rem {
		k := (lo - rem + stride - 1) / stride
		first = rem + k*stride
	}
	if first > hi {
		return 0
	}
	return (hi-first)/stride + 1
}
