package cycle

import (
	"testing"
	"testing/quick"
)

// slammerIncrements are the three OR-corrupted increments observed in the
// wild (0xffd9613c XOR the sqlsort.dll import-address-table entries); see
// package worm for the derivation. Used here as realistic test vectors.
var slammerIncrements = []uint32{0x88215000, 0x8831fa24, 0x88336870}

const slammerA = 214013

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(214013, 1, 32); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	if _, err := NewMap(3, 1, 32); err == nil {
		t.Error("multiplier 3 (≢1 mod 4) accepted")
	}
	if _, err := NewMap(5, 1, 2); err == nil {
		t.Error("bits=2 accepted")
	}
	if _, err := NewMap(5, 1, 33); err == nil {
		t.Error("bits=33 accepted")
	}
}

func TestPeriodMatchesIteration(t *testing.T) {
	// On a small modulus, the closed-form period must equal the length of
	// the actually iterated cycle for every state.
	m := MustNewMap(slammerA, 0x5000&0xffff, 16)
	for x := uint32(0); x < 1<<16; x++ {
		want := iteratedPeriod(m, x)
		if got := m.Period(x); got != want {
			t.Fatalf("Period(%#x) = %d, want %d (v2d=%d)", x, got, want, m.V2D(x))
		}
	}
}

func iteratedPeriod(m Map, x uint32) uint64 {
	cur := m.Step(x)
	var n uint64 = 1
	for cur != x {
		cur = m.Step(cur)
		n++
	}
	return n
}

func TestPeriodMatchesIterationQuick(t *testing.T) {
	// Random (a, b) pairs with a ≡ 1 (mod 4) at modulus 2^14.
	f := func(rawA, rawB uint32, rawX uint16) bool {
		a := rawA&^3 | 1
		m := MustNewMap(a, rawB, 14)
		x := uint32(rawX) & m.mask()
		return m.Period(x) == iteratedPeriod(m, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCensusAgainstBruteForce(t *testing.T) {
	tests := []struct {
		name string
		a, b uint32
		bits uint
	}{
		{name: "slammer-like-4divB", a: slammerA, b: 0x5000, bits: 16},
		{name: "b-odd-full-period", a: slammerA, b: 0xffd9613c, bits: 16},
		{name: "b-twice-odd", a: slammerA, b: 2, bits: 16},
		{name: "b-zero", a: slammerA, b: 0, bits: 14},
		{name: "a-1-translation", a: 1, b: 12, bits: 12},
		{name: "a-1-b0-identity", a: 1, b: 0, bits: 10},
		{name: "alpha-3", a: 9, b: 0x50, bits: 14},
		{name: "msvcrt", a: 214013, b: 2531011, bits: 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := MustNewMap(tt.a, tt.b, tt.bits)
			want := m.BruteForceCensus()
			got := make(map[uint64]uint64)
			var states uint64
			for _, c := range m.Census() {
				got[c.Length] += c.Cycles
				states += c.States
			}
			if states != 1<<tt.bits {
				t.Fatalf("census covers %d states, want %d", states, uint64(1)<<tt.bits)
			}
			if len(got) != len(want) {
				t.Fatalf("census lengths = %v, want %v", got, want)
			}
			for length, cycles := range want {
				if got[length] != cycles {
					t.Errorf("length %d: %d cycles, want %d", length, got[length], cycles)
				}
			}
		})
	}
}

func TestSlammerFullSizeCensus(t *testing.T) {
	// The paper: "there are 64 cycles for each b value" with "seven cycles
	// having a period of only one" for the real 32-bit Slammer LCG. Our
	// closed form gives exactly 64 cycles; the graded structure puts 4
	// states in fixed points (the idealized affine model's count).
	for _, b := range slammerIncrements {
		m := MustNewMap(slammerA, b, 32)
		if got := m.TotalCycles(); got != 64 {
			t.Errorf("b=%#x: TotalCycles() = %d, want 64", b, got)
		}
		census := m.Census()
		if census[0].Length != 1<<30 || census[0].Cycles != 2 {
			t.Errorf("b=%#x: longest class = %+v, want 2 cycles of 2^30", b, census[0])
		}
		last := census[len(census)-1]
		if last.Length != 1 || last.Cycles != 4 {
			t.Errorf("b=%#x: fixed-point class = %+v, want 4 cycles of length 1", b, last)
		}
		var states uint64
		for _, c := range census {
			states += c.States
		}
		if states != 1<<32 {
			t.Errorf("b=%#x: census covers %d states", b, states)
		}
	}
}

func TestOddIncrementIsFullPeriod(t *testing.T) {
	// The ablation baseline: an odd increment (e.g. MSVCRT's 2531011) gives
	// the classical single full-period cycle and no hotspot structure.
	m := MustNewMap(slammerA, 2531011, 32)
	census := m.Census()
	if len(census) != 1 || census[0].Length != 1<<32 || census[0].Cycles != 1 {
		t.Errorf("census = %+v, want single cycle of 2^32", census)
	}
}

func TestIntendedIncrementIsAlsoFlawed(t *testing.T) {
	// A finding of this reproduction: the increment the paper says the
	// author "may have intended" (0xffd9613c) is even with v2 = 2, so under
	// the affine model it produces the same 64-cycle structure as the
	// corrupted values — the OR bug made the flaw worse, but the intended
	// constant was never a full-period increment either.
	m := MustNewMap(slammerA, 0xffd9613c, 32)
	if got := m.TotalCycles(); got != 64 {
		t.Errorf("TotalCycles() = %d, want 64", got)
	}
}

func TestWalkVisitsTrajectory(t *testing.T) {
	m := MustNewMap(slammerA, 0x5000, 32)
	var got []uint32
	m.Walk(1, 5, func(x uint32) bool {
		got = append(got, x)
		return true
	})
	want := uint32(1)
	for i := 0; i < 5; i++ {
		want = want*slammerA + 0x5000
		if got[i] != want {
			t.Fatalf("Walk step %d = %#x, want %#x", i, got[i], want)
		}
	}

	// Early termination.
	var n int
	m.Walk(1, 100, func(uint32) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Walk visited %d states after early stop, want 3", n)
	}
}

func TestCycleMin(t *testing.T) {
	m := MustNewMap(slammerA, 0x5000, 16)
	// Find some state on a short cycle and verify CycleMin is stable across
	// every member of the cycle.
	prog, ok := m.StatesWithPeriodAtMost(16)
	if !ok {
		t.Fatal("no short cycles found")
	}
	x := prog.Nth(0)
	min0, length, ok := m.CycleMin(x, 1<<16)
	if !ok {
		t.Fatal("CycleMin refused tractable cycle")
	}
	cur := x
	for i := uint64(0); i < length; i++ {
		mi, l2, ok := m.CycleMin(cur, 1<<16)
		if !ok || mi != min0 || l2 != length {
			t.Fatalf("member %#x: CycleMin = (%#x,%d,%v), want (%#x,%d,true)", cur, mi, l2, ok, min0, length)
		}
		cur = m.Step(cur)
	}

	// Refusal path.
	big := MustNewMap(slammerA, 0x5000, 32)
	if _, _, ok := big.CycleMin(1, 1000); ok {
		t.Error("CycleMin iterated a cycle longer than maxLen")
	}
}

func TestStatesWithPeriodAtMostExact(t *testing.T) {
	m := MustNewMap(slammerA, 0x5000, 16)
	for _, maxLen := range []uint64{1, 2, 8, 64, 1 << 10, 1 << 16} {
		want := make(map[uint32]bool)
		for x := uint32(0); x < 1<<16; x++ {
			if m.Period(x) <= maxLen {
				want[x] = true
			}
		}
		prog, ok := m.StatesWithPeriodAtMost(maxLen)
		if len(want) == 0 {
			if ok {
				t.Errorf("maxLen=%d: got progression, want none", maxLen)
			}
			continue
		}
		if !ok {
			t.Fatalf("maxLen=%d: no progression, want %d states", maxLen, len(want))
		}
		if prog.Count != uint64(len(want)) {
			t.Fatalf("maxLen=%d: count=%d, want %d", maxLen, prog.Count, len(want))
		}
		for i := uint64(0); i < prog.Count; i++ {
			x := prog.Nth(i) & m.mask()
			if !want[x] {
				t.Fatalf("maxLen=%d: progression member %#x has period %d", maxLen, x, m.Period(x))
			}
		}
	}
}

func TestForEachShortCycleCoversAllShortStates(t *testing.T) {
	m := MustNewMap(slammerA, 0x5000, 16)
	const maxLen = 1 << 8
	covered := make(map[uint32]bool)
	var cycles int
	m.ForEachShortCycle(maxLen, func(start uint32, length uint64) {
		cycles++
		if got := m.Period(start); got != length {
			t.Fatalf("cycle start %#x: length %d, want %d", start, length, got)
		}
		cur := start
		for i := uint64(0); i < length; i++ {
			if covered[cur] {
				t.Fatalf("state %#x visited twice", cur)
			}
			covered[cur] = true
			cur = m.Step(cur)
		}
		if cur != start {
			t.Fatalf("cycle from %#x did not close", start)
		}
	})
	var want int
	for x := uint32(0); x < 1<<16; x++ {
		if m.Period(x) <= maxLen {
			want++
		}
	}
	if len(covered) != want {
		t.Errorf("covered %d short states, want %d (in %d cycles)", len(covered), want, cycles)
	}
}

func TestProgressionNthWraps(t *testing.T) {
	p := Progression{Start: 0xfffffff0, Step: 8, Count: 4}
	want := p.Start // wraps modulo 2^32
	want += 24
	if got := p.Nth(3); got != want {
		t.Errorf("Nth(3) = %#x, want %#x", got, want)
	}
}

func TestBruteForceCensusRefusesLargeModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bits > 24")
		}
	}()
	MustNewMap(slammerA, 1, 32).BruteForceCensus()
}

func TestModInversePow2(t *testing.T) {
	for _, u := range []uint32{1, 3, 53503, 0xdeadbeef | 1, 0xffffffff} {
		for _, n := range []uint{1, 2, 8, 16, 30, 32} {
			inv := modInversePow2(u, n)
			if got := (u * inv) & lowMask(n); got != 1&lowMask(n) {
				t.Errorf("u=%#x n=%d: u·inv = %#x, want 1", u, n, got)
			}
		}
	}
}
