package cycle

import (
	"testing"
	"testing/quick"

	"repro/internal/ipv4"
)

func TestOrbitIsArithmeticProgression(t *testing.T) {
	// The structural theorem, verified by brute force at a small modulus:
	// walking the full cycle visits exactly {x + j·stride}.
	m := MustNewMap(214013, 0x5000, 16)
	for _, x := range []uint32{0, 1, 2, 0x1234, 0xffff, 0x8000} {
		stride := m.OrbitStride(x)
		period := m.Period(x)
		want := make(map[uint32]bool, period)
		if stride == 0 {
			want[x&m.mask()] = true
		} else {
			for j := uint64(0); j < period; j++ {
				want[(x+uint32(j*stride))&m.mask()] = true
			}
		}
		got := make(map[uint32]bool, period)
		cur := x & m.mask()
		for i := uint64(0); i < period; i++ {
			got[cur] = true
			cur = m.Step(cur)
		}
		if len(got) != len(want) {
			t.Fatalf("x=%#x: orbit size %d, lattice size %d", x, len(got), len(want))
		}
		for v := range got {
			if !want[v] {
				t.Fatalf("x=%#x: orbit member %#x outside the lattice", x, v)
			}
		}
	}
}

func TestOrbitMinMatchesIterativeCycleMin(t *testing.T) {
	m := MustNewMap(214013, 0x5000, 16)
	f := func(raw uint16) bool {
		x := uint32(raw)
		want, _, ok := m.CycleMin(x, 1<<16)
		return ok && m.OrbitMin(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSameOrbitAgreesWithWalk(t *testing.T) {
	m := MustNewMap(214013, 0x5000, 14)
	// Enumerate a short cycle and confirm SameOrbit holds exactly for its
	// members.
	prog, ok := m.StatesWithPeriodAtMost(1 << 6)
	if !ok {
		t.Fatal("no short cycles")
	}
	x := prog.Nth(0)
	members := make(map[uint32]bool)
	cur := x
	for i := uint64(0); i < m.Period(x); i++ {
		members[cur] = true
		cur = m.Step(cur)
	}
	for y := uint32(0); y < 1<<14; y++ {
		if got := m.SameOrbit(x, y); got != members[y] {
			t.Fatalf("SameOrbit(%#x, %#x) = %v, membership %v", x, y, got, members[y])
		}
	}
}

func TestOrbitCountInInterval(t *testing.T) {
	m := MustNewMap(214013, 0x5000, 16)
	ivs := []ipv4.Interval{
		{Lo: 0, Hi: 0xffff},
		{Lo: 0x100, Hi: 0x1ff},
		{Lo: 0x8000, Hi: 0x80ff},
		{Lo: 5, Hi: 5},
		{Lo: 10, Hi: 3}, // empty
	}
	for _, x := range []uint32{0x1234, 0x4, 0xffff} {
		// Brute-force membership of the orbit.
		members := make(map[uint32]bool)
		cur := x
		for i := uint64(0); i < m.Period(x); i++ {
			members[cur] = true
			cur = m.Step(cur)
		}
		for _, iv := range ivs {
			var want uint64
			for a := uint32(iv.Lo); ; a++ {
				if uint32(iv.Lo) > uint32(iv.Hi) {
					break
				}
				if a > uint32(iv.Hi) || a > 0xffff {
					break
				}
				if members[a] {
					want++
				}
			}
			if got := m.OrbitCountInInterval(x, iv); got != want {
				t.Errorf("x=%#x iv=%v: count %d, want %d (stride %d)",
					x, iv, got, want, m.OrbitStride(x))
			}
		}
	}
}

func TestOrbitFixedPoint(t *testing.T) {
	m := MustNewMap(214013, 0x5000, 16)
	prog, ok := m.StatesWithPeriodAtMost(1)
	if !ok {
		t.Skip("no fixed points at this modulus")
	}
	fp := prog.Nth(0)
	if m.Period(fp) != 1 {
		t.Skip("progression head is not a fixed point")
	}
	if m.OrbitStride(fp) != 0 {
		t.Errorf("fixed-point stride = %d, want 0", m.OrbitStride(fp))
	}
	if m.OrbitMin(fp) != fp {
		t.Errorf("fixed-point OrbitMin = %#x", m.OrbitMin(fp))
	}
	if !m.SameOrbit(fp, fp) {
		t.Error("fixed point not on its own orbit")
	}
	if m.SameOrbit(fp, fp+1) && m.Period(fp+1) == 1 && fp+1 != fp {
		t.Error("distinct fixed points merged")
	}
	if got := m.OrbitCountInInterval(fp, ipv4.Interval{Lo: ipv4.Addr(fp), Hi: ipv4.Addr(fp)}); got != 1 {
		t.Errorf("fixed-point self-interval count = %d", got)
	}
}

func TestOrbitStrideSlammerFullSize(t *testing.T) {
	// At full size the two giant cycles have stride 4 (v2(d)=2): each
	// covers one residue class mod 4 — a quarter of every /24.
	m := MustNewMap(214013, 0x88215000, 32)
	found := false
	for x := uint32(0); x < 64 && !found; x++ {
		if m.Period(x) == 1<<30 {
			found = true
			if got := m.OrbitStride(x); got != 4 {
				t.Errorf("giant-cycle stride = %d, want 4", got)
			}
			// A /24 contains exactly 64 members of a stride-4 class.
			iv := ipv4.Interval{Lo: 0x0a000000, Hi: 0x0a0000ff}
			if got := m.OrbitCountInInterval(x, iv); got != 64 {
				t.Errorf("giant-cycle members per /24 = %d, want 64", got)
			}
		}
	}
	if !found {
		t.Fatal("no giant-cycle member among the first 64 states")
	}
}
