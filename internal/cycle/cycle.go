// Package cycle computes the exact cycle structure of affine maps
//
//	T(x) = A·x + B  (mod 2^m),  A ≡ 1 (mod 4)
//
// which is the family the Slammer worm's flawed target generator belongs to
// (A = 214013, B = one of three OR-corrupted increments; m = 32).
//
// The analysis is the algorithmic-factor core of the hotspots paper's
// Slammer case study: the period of every state, the census of cycle
// lengths, and the set of states trapped in short cycles are all computed in
// closed form from 2-adic valuations, with a brute-force enumerator for
// verification at reduced moduli.
//
// # Mathematics
//
// Write d(x) = (A−1)·x + B and S_t = 1 + A + … + A^{t−1}. Then
//
//	T^t(x) = x + S_t · d(x)  (mod 2^m).
//
// For A ≡ 1 (mod 4), the lifting-the-exponent lemma gives
// v2(A^t − 1) = v2(A−1) + v2(t), hence v2(S_t) = v2(t). The period of x is
// therefore the least t with v2(t) ≥ m − v2(d(x)):
//
//	period(x) = 2^max(0, m − v2(d(x)))
//
// Every cycle length is a power of two. With α = v2(A−1) and β = v2(B):
//
//   - β < α: every state has period 2^(m−β); there are 2^β cycles.
//     (B odd ⇒ the classical full-period LCG.)
//   - β ≥ α: for k = 0 … m−α−1 there are exactly 2^(α−1) cycles of length
//     2^(m−α−k), and 2^α fixed points. Total cycle count:
//     (m−α)·2^(α−1) + 2^α.
//
// For Slammer (α = 2, m = 32, 4 | B for all three corrupted increments) this
// yields 30·2 + 4 = 64 cycles — exactly the "64 cycles for each b value" the
// paper reports — with lengths spanning 1 … 2^30.
package cycle

import (
	"fmt"
	"math/bits"
	"sort"
)

// Map is an affine map x ↦ A·x + B over m-bit integers. Bits may be reduced
// below 32 for brute-force verification of the closed-form results.
type Map struct {
	A, B uint32
	Bits uint // modulus is 2^Bits; 1 ≤ Bits ≤ 32
}

// NewMap constructs an affine map mod 2^bits and validates the A ≡ 1 (mod 4)
// precondition the closed-form analysis requires.
func NewMap(a, b uint32, bitCount uint) (Map, error) {
	if bitCount < 3 || bitCount > 32 {
		return Map{}, fmt.Errorf("cycle: bits %d out of range [3,32]", bitCount)
	}
	if a%4 != 1 {
		return Map{}, fmt.Errorf("cycle: multiplier %d is not ≡ 1 (mod 4)", a)
	}
	return Map{A: a, B: b, Bits: bitCount}, nil
}

// MustNewMap is like NewMap but panics on error.
func MustNewMap(a, b uint32, bitCount uint) Map {
	m, err := NewMap(a, b, bitCount)
	if err != nil {
		panic(err)
	}
	return m
}

// mask returns the modulus mask 2^Bits − 1.
func (m Map) mask() uint32 {
	if m.Bits >= 32 {
		return ^uint32(0)
	}
	return (1 << m.Bits) - 1
}

// Step applies the map once.
func (m Map) Step(x uint32) uint32 {
	return (x*m.A + m.B) & m.mask()
}

// D returns d(x) = (A−1)·x + B mod 2^Bits, whose 2-adic valuation determines
// the period of x.
func (m Map) D(x uint32) uint32 {
	return ((m.A-1)*x + m.B) & m.mask()
}

// V2D returns v2(d(x)), clamped to Bits when d(x) ≡ 0.
func (m Map) V2D(x uint32) uint {
	d := m.D(x)
	if d == 0 {
		return m.Bits
	}
	v := uint(bits.TrailingZeros32(d))
	if v > m.Bits {
		v = m.Bits
	}
	return v
}

// Period returns the exact cycle length of the cycle containing x.
func (m Map) Period(x uint32) uint64 {
	v := m.V2D(x)
	if v >= m.Bits {
		return 1
	}
	return 1 << (m.Bits - v)
}

// Alpha returns v2(A−1).
func (m Map) Alpha() uint {
	v := uint(bits.TrailingZeros32(m.A - 1))
	if v > m.Bits {
		v = m.Bits
	}
	return v
}

// Beta returns v2(B), clamped to Bits when B ≡ 0.
func (m Map) Beta() uint {
	b := m.B & m.mask()
	if b == 0 {
		return m.Bits
	}
	v := uint(bits.TrailingZeros32(b))
	if v > m.Bits {
		v = m.Bits
	}
	return v
}

// Class describes one equivalence class of the census: all cycles sharing a
// length.
type Class struct {
	Length uint64 // cycle length (a power of two)
	Cycles uint64 // number of distinct cycles of this length
	States uint64 // Length × Cycles
}

// Census returns the exact cycle-length census of the map, longest first.
// The result is closed-form; no state enumeration occurs.
func (m Map) Census() []Class {
	alpha, beta := m.Alpha(), m.Beta()
	var out []Class
	if alpha >= m.Bits {
		// A ≡ 1 (mod 2^Bits): pure translation x ↦ x + B.
		if beta >= m.Bits {
			return []Class{{Length: 1, Cycles: 1 << m.Bits, States: 1 << m.Bits}}
		}
		return []Class{{
			Length: 1 << (m.Bits - beta),
			Cycles: 1 << beta,
			States: 1 << m.Bits,
		}}
	}
	if beta < alpha {
		// Every state shares v2(d) = beta.
		out = append(out, Class{
			Length: 1 << (m.Bits - beta),
			Cycles: 1 << beta,
			States: 1 << m.Bits,
		})
		return out
	}
	// beta ≥ alpha: graded structure plus fixed points.
	for k := uint(0); k <= m.Bits-alpha-1; k++ {
		length := uint64(1) << (m.Bits - alpha - k)
		cycles := uint64(1) << (alpha - 1)
		out = append(out, Class{Length: length, Cycles: cycles, States: length * cycles})
	}
	out = append(out, Class{Length: 1, Cycles: 1 << alpha, States: 1 << alpha})
	sort.Slice(out, func(i, j int) bool { return out[i].Length > out[j].Length })
	return out
}

// TotalCycles returns the total number of distinct cycles of the map.
func (m Map) TotalCycles() uint64 {
	var n uint64
	for _, c := range m.Census() {
		n += c.Cycles
	}
	return n
}

// Walk iterates the trajectory of x for at most steps applications,
// invoking visit with each successive state (starting with T(x), not x).
// It stops early if visit returns false.
func (m Map) Walk(x uint32, steps uint64, visit func(uint32) bool) {
	cur := x
	for i := uint64(0); i < steps; i++ {
		cur = m.Step(cur)
		if !visit(cur) {
			return
		}
	}
}

// CycleMin returns the canonical identifier of the cycle containing x — its
// minimum element — along with the cycle length. It iterates the full cycle
// and must only be used when Period(x) is tractable; it returns ok=false
// without iterating if Period(x) exceeds maxLen.
func (m Map) CycleMin(x uint32, maxLen uint64) (minState uint32, length uint64, ok bool) {
	length = m.Period(x)
	if length > maxLen {
		return 0, length, false
	}
	minState = x
	cur := x
	for i := uint64(1); i < length; i++ {
		cur = m.Step(cur)
		if cur < minState {
			minState = cur
		}
	}
	return minState, length, true
}

// Progression is an arithmetic progression of states {Start + i·Step mod 2^Bits}.
type Progression struct {
	Start uint32
	Step  uint32
	Count uint64
}

// Nth returns the i-th element of the progression.
func (p Progression) Nth(i uint64) uint32 {
	return p.Start + uint32(i)*p.Step
}

// StatesWithPeriodAtMost returns the set of states whose period divides
// maxLen (a power of two), as an arithmetic progression, or ok=false when no
// state qualifies (maxLen smaller than the minimum cycle length).
//
// States of period ≤ 2^c satisfy d(x) ≡ 0 (mod 2^(Bits−c)), a single linear
// congruence, so they always form an arithmetic progression. Enumerating it
// lets callers find every short-cycle state — the "targeted denial of
// service" trap states of the Slammer analysis — without touching the other
// ~2^32 states.
func (m Map) StatesWithPeriodAtMost(maxLen uint64) (Progression, bool) {
	if maxLen == 0 {
		return Progression{}, false
	}
	if maxLen >= 1<<m.Bits {
		return Progression{Start: 0, Step: 1, Count: 1 << m.Bits}, true
	}
	c := uint(bits.Len64(maxLen) - 1) // period ≤ 2^c
	need := m.Bits - c                // d(x) ≡ 0 mod 2^need; need ≥ 1 here
	alpha := m.Alpha()
	beta := m.Beta()
	if alpha >= need {
		// d(x) = 2^alpha·(…) + B; need ≤ alpha, so condition is on B alone.
		if beta >= need {
			return Progression{Start: 0, Step: 1, Count: 1 << m.Bits}, true
		}
		return Progression{}, false
	}
	// Solve 2^alpha·u·x ≡ −B (mod 2^need), u odd.
	if beta < alpha {
		return Progression{}, false // v2 of LHS ≥ alpha > beta: no solution
	}
	u := (m.A - 1) >> alpha
	bPrime := (m.B & m.mask()) >> alpha
	mod := need - alpha // solve u·x ≡ −B′ (mod 2^mod)
	if mod > m.Bits {
		return Progression{}, false
	}
	uInv := modInversePow2(u, mod)
	x0 := (-bPrime * uInv) & lowMask(mod)
	step := uint32(1) << mod
	count := uint64(1) << (m.Bits - mod)
	return Progression{Start: x0, Step: step, Count: count}, true
}

// lowMask returns a mask of the low n bits (n ≤ 32).
func lowMask(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (1 << n) - 1
}

// modInversePow2 returns the inverse of odd u modulo 2^n via Newton
// iteration (each step doubles the bits of precision).
func modInversePow2(u uint32, n uint) uint32 {
	if u&1 == 0 {
		panic("cycle: inverse of even value modulo power of two")
	}
	inv := u // correct to 3 bits for odd u? use standard trick below
	// Seed correct modulo 2^3: inv = u*(2−u·u)… simpler: start with inv ≡ u
	// which satisfies u·inv ≡ 1 (mod 2^1) for odd u, then Newton.
	for b := uint(1); b < n; b *= 2 {
		inv *= 2 - u*inv
	}
	return inv & lowMask(n)
}
