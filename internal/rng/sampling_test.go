package rng

import (
	"math"
	"testing"
)

func TestBinomialEdgeCases(t *testing.T) {
	x := NewXoshiro(1)
	if got := x.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := x.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d, want 0", got)
	}
	if got := x.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d, want 100", got)
	}
	if got := x.Binomial(100, -0.5); got != 0 {
		t.Errorf("Binomial(100, -0.5) = %d, want 0", got)
	}
	if got := x.Binomial(100, 1.5); got != 100 {
		t.Errorf("Binomial(100, 1.5) = %d, want 100", got)
	}
}

func TestBinomialNeverExceedsN(t *testing.T) {
	x := NewXoshiro(2)
	for _, n := range []uint64{1, 10, 63, 64, 65, 1000, 1 << 20} {
		for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
			for i := 0; i < 50; i++ {
				if got := x.Binomial(n, p); got > n {
					t.Fatalf("Binomial(%d, %v) = %d > n", n, p, got)
				}
			}
		}
	}
}

// checkMoments draws n samples and verifies mean/variance within tol
// relative error.
func checkMoments(t *testing.T, name string, draw func() float64, wantMean, wantVar, tol float64, n int) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-wantMean) > tol*math.Max(1, wantMean) {
		t.Errorf("%s: mean = %v, want ≈%v", name, mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 3*tol*math.Max(1, wantVar) {
		t.Errorf("%s: variance = %v, want ≈%v", name, variance, wantVar)
	}
}

func TestBinomialMomentsAcrossRegimes(t *testing.T) {
	tests := []struct {
		name string
		n    uint64
		p    float64
	}{
		{name: "direct-small-n", n: 40, p: 0.3},
		{name: "geometric-small-np", n: 100000, p: 0.0001},
		{name: "normal-large-np", n: 1000000, p: 0.01},
		{name: "high-p-reflection", n: 50000, p: 0.99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := NewXoshiro(77)
			wantMean := float64(tt.n) * tt.p
			wantVar := wantMean * (1 - tt.p)
			checkMoments(t, tt.name, func() float64 { return float64(x.Binomial(tt.n, tt.p)) },
				wantMean, wantVar, 0.03, 20000)
		})
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 12, 50, 400} {
		x := NewXoshiro(5)
		checkMoments(t, "poisson", func() float64 { return float64(x.Poisson(lambda)) },
			lambda, lambda, 0.05, 20000)
	}
	x := NewXoshiro(6)
	if got := x.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := x.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	x := NewXoshiro(9)
	perm := x.Shuffle(100)
	seen := make([]bool, 100)
	for _, v := range perm {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	x := NewXoshiro(10)
	sample := x.SampleWithoutReplacement(50, 20)
	if len(sample) != 20 {
		t.Fatalf("len = %d, want 20", len(sample))
	}
	seen := make(map[int]bool)
	for _, v := range sample {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid sample: %v", sample)
		}
		seen[v] = true
	}
	// Full sample covers the population.
	all := x.SampleWithoutReplacement(10, 10)
	seen = make(map[int]bool)
	for _, v := range all {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("full sample missed members: %v", all)
	}
}

func TestSampleWithoutReplacementPanicsWhenOversized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when k > n")
		}
	}()
	NewXoshiro(1).SampleWithoutReplacement(5, 6)
}

func TestSampleUniformCoverage(t *testing.T) {
	// Each element of [0,20) should appear in roughly k/n of samples.
	x := NewXoshiro(20)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range x.SampleWithoutReplacement(20, 5) {
			counts[v]++
		}
	}
	want := float64(trials) * 5 / 20
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.08*want {
			t.Errorf("element %d drawn %d times, want ≈%.0f", i, c, want)
		}
	}
}
