package rng

// MSVCRT is a bit-exact model of the Microsoft Visual C runtime's
// srand()/rand() pair:
//
//	state = state*214013 + 2531011
//	rand() = (state >> 16) & 0x7fff
//
// The Blaster worm seeds this generator with GetTickCount() — the number of
// milliseconds since boot — which is the "bad source of entropy" the paper
// identifies: a worm launched at boot always sees a tick count drawn from a
// narrow window around the machine's boot duration, so the PRNG's entire
// output sequence, and therefore the worm's scanning start point, is almost
// fully determined by hardware generation.
type MSVCRT struct {
	state uint32
}

// MSVCRT generator constants (shared with the Slammer LCG multiplier).
const (
	MSVCRTMultiplier = 214013
	MSVCRTIncrement  = 2531011
)

// NewMSVCRT returns a generator seeded as if by srand(seed).
func NewMSVCRT(seed uint32) *MSVCRT {
	return &MSVCRT{state: seed}
}

// Srand reseeds the generator, matching srand().
func (m *MSVCRT) Srand(seed uint32) { m.state = seed }

// Rand returns the next value in [0, 32767], matching rand().
func (m *MSVCRT) Rand() int {
	m.state = m.state*MSVCRTMultiplier + MSVCRTIncrement
	return int((m.state >> 16) & 0x7fff)
}

// State exposes the raw 32-bit internal state, used by cycle analysis.
func (m *MSVCRT) State() uint32 { return m.state }
