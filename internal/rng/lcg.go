package rng

// LCG32 is a 32-bit linear congruential generator of the form
//
//	s(i+1) = a·s(i) + b  (mod 2^32)
//
// exactly the shape of the Slammer worm's target generator. The full 32-bit
// state is the output: Slammer used the state directly as the next target
// IPv4 address.
//
// Whether such a generator walks the whole 32-bit space or collapses into
// short cycles depends entirely on a and b; package cycle computes the exact
// cycle structure. LCG32 itself is just the iteration.
type LCG32 struct {
	// A is the multiplier and B the increment; both are fixed for the life
	// of the generator.
	A, B uint32

	state uint32
}

// NewLCG32 returns an LCG with multiplier a, increment b, and initial seed.
func NewLCG32(a, b, seed uint32) *LCG32 {
	return &LCG32{A: a, B: b, state: seed}
}

// Next advances the generator one step and returns the new 32-bit state.
func (l *LCG32) Next() uint32 {
	l.state = l.state*l.A + l.B
	return l.state
}

// State returns the current state without advancing.
func (l *LCG32) State() uint32 { return l.state }

// Seed resets the generator state.
func (l *LCG32) Seed(seed uint32) { l.state = seed }

// Step returns the successor of x under the generator's map without
// touching internal state.
func (l *LCG32) Step(x uint32) uint32 { return x*l.A + l.B }
