// Package rng provides the deterministic random-number substrate for the
// hotspots library.
//
// Three families of generators live here:
//
//   - Simulation RNGs (SplitMix64, Xoshiro256StarStar): fast, well-mixed
//     generators that drive the epidemic simulation engine. Every stream is
//     derived from an explicit 64-bit seed so that simulations are exactly
//     reproducible.
//   - MSVCRT: a bit-exact reimplementation of the Microsoft C runtime
//     rand()/srand() pair, which the Blaster worm (and CodeRedII's reseeding
//     logic) used for target generation. Its 15-bit outputs and weak mixing
//     are themselves a root cause of hotspots.
//   - LCG32: the general 32-bit linear congruential generator framework used
//     to model the Slammer worm's flawed target generator (see package
//     cycle for its exact cycle structure).
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 is the splitmix64 generator of Steele, Lea & Flood. It is used
// both directly (seed scrambling, cheap streams) and to seed Xoshiro.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a stateless scrambler
// used to derive independent sub-seeds from a master seed.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro is a xoshiro256** generator: the main workhorse for epidemic
// simulation. Not safe for concurrent use; use one per goroutine.
type Xoshiro struct {
	s0, s1, s2, s3 uint64
}

// NewXoshiro returns a xoshiro256** generator whose state is expanded from
// seed via SplitMix64, per the reference initialization procedure.
func NewXoshiro(seed uint64) *Xoshiro {
	sm := NewSplitMix64(seed)
	return &Xoshiro{s0: sm.Uint64(), s1: sm.Uint64(), s2: sm.Uint64(), s3: sm.Uint64()}
}

// SeedStream reseeds x in place with the (seed, id, step) stream: the
// three coordinates are folded through the SplitMix64 finalizer and the
// result expanded into xoshiro state exactly as NewXoshiro would. Every
// (seed, id, step) triple names an independent stream, so a simulation can
// hand each (agent, tick) pair its own generator and stay deterministic
// regardless of how agents are scheduled across goroutines. The receiver
// is reused rather than reallocated — the parallel exact driver reseeds
// one worker-owned generator per agent per tick on its hot path.
func (x *Xoshiro) SeedStream(seed, id, step uint64) {
	h := Mix64(seed)
	h = Mix64(h ^ Mix64(id))
	h = Mix64(h ^ Mix64(step))
	sm := SplitMix64{state: h}
	x.s0 = sm.Uint64()
	x.s1 = sm.Uint64()
	x.s2 = sm.Uint64()
	x.s3 = sm.Uint64()
}

// NewXoshiroStream returns a fresh generator seeded for the (seed, id,
// step) stream; see SeedStream.
func NewXoshiroStream(seed, id, step uint64) *Xoshiro {
	x := &Xoshiro{}
	x.SeedStream(seed, id, step)
	return x
}

// Uint64 returns the next 64 pseudo-random bits.
func (x *Xoshiro) Uint64() uint64 {
	result := bits.RotateLeft64(x.s1*5, 7) * 9
	t := x.s1 << 17
	x.s2 ^= x.s0
	x.s3 ^= x.s1
	x.s1 ^= x.s2
	x.s0 ^= x.s3
	x.s2 ^= t
	x.s3 = bits.RotateLeft64(x.s3, 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (x *Xoshiro) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method keeps this branch-light.
func (x *Xoshiro) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (x *Xoshiro) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean). It returns 0 for non-positive means.
func (x *Xoshiro) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-x.Float64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (x *Xoshiro) Normal(mean, stddev float64) float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		//lint:ignore float-eq the polar method's rejection step requires the exact s==0 test; a tolerance would bias the tails
		if s >= 1 || s == 0 {
			continue
		}
		// The second variate is discarded; the simulation draws normals
		// rarely enough that caching it is not worth the state.
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}
