package rng

import "testing"

// TestSeedStreamDeterministic: the same (seed, id, step) triple always
// yields the same stream, and SeedStream on a dirty generator matches a
// freshly constructed one — the in-place reseed must leave no residue.
func TestSeedStreamDeterministic(t *testing.T) {
	a := NewXoshiroStream(42, 7, 1000)
	b := NewXoshiro(999) // dirty state to overwrite
	for i := 0; i < 10; i++ {
		b.Uint64()
	}
	b.SeedStream(42, 7, 1000)
	for i := 0; i < 100; i++ {
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("draw %d: reseeded stream %#x != fresh stream %#x", i, got, want)
		}
	}
}

// TestSeedStreamIndependence: neighbouring triples must not collide or
// produce correlated prefixes — each coordinate perturbation changes the
// stream.
func TestSeedStreamIndependence(t *testing.T) {
	base := NewXoshiroStream(42, 7, 1000)
	first := base.Uint64()
	variants := []struct {
		name           string
		seed, id, step uint64
	}{
		{"seed+1", 43, 7, 1000},
		{"id+1", 42, 8, 1000},
		{"step+1", 42, 7, 1001},
		{"swapped id/step", 42, 1000, 7},
	}
	for _, v := range variants {
		x := NewXoshiroStream(v.seed, v.id, v.step)
		if x.Uint64() == first {
			t.Errorf("%s: first draw collides with base stream", v.name)
		}
	}
}

// TestSeedStreamUniformity sanity-checks that stream-seeded generators
// still produce roughly uniform bits (a gross mixing failure — e.g. all
// streams starting near zero — would show up here).
func TestSeedStreamUniformity(t *testing.T) {
	var ones int
	const streams, draws = 256, 4
	for id := uint64(0); id < streams; id++ {
		x := NewXoshiroStream(1, id, id*31)
		for i := 0; i < draws; i++ {
			v := x.Uint64()
			for ; v != 0; v &= v - 1 {
				ones++
			}
		}
	}
	total := streams * draws * 64
	frac := float64(ones) / float64(total)
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("bit density %.4f outside [0.48, 0.52]", frac)
	}
}
