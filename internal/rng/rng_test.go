package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSVCRTKnownSequence(t *testing.T) {
	// The canonical MSVCRT sequence for srand(1), e.g. as produced by the
	// Visual C runtime that Blaster linked against.
	m := NewMSVCRT(1)
	want := []int{41, 18467, 6334, 26500, 19169, 15724, 11478, 29358, 26962, 24464}
	for i, w := range want {
		if got := m.Rand(); got != w {
			t.Fatalf("rand() #%d = %d, want %d", i, got, w)
		}
	}
}

func TestMSVCRTSrandResets(t *testing.T) {
	m := NewMSVCRT(12345)
	first := m.Rand()
	m.Srand(12345)
	if got := m.Rand(); got != first {
		t.Errorf("after reseed rand() = %d, want %d", got, first)
	}
}

func TestMSVCRTOutputRange(t *testing.T) {
	f := func(seed uint32) bool {
		m := NewMSVCRT(seed)
		for i := 0; i < 50; i++ {
			v := m.Rand()
			if v < 0 || v > 32767 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLCG32MatchesStep(t *testing.T) {
	f := func(a, b, seed uint32) bool {
		// Force the multiplier odd so the map is a bijection (not required
		// by LCG32 itself, but representative of its use).
		a |= 1
		l := NewLCG32(a, b, seed)
		manual := seed
		for i := 0; i < 20; i++ {
			manual = manual*a + b
			if l.Next() != manual {
				return false
			}
			if l.State() != manual {
				return false
			}
			if l.Step(seed) != seed*a+b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := NewXoshiro(7), NewXoshiro(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded generators diverged")
		}
	}
	c := NewXoshiro(8)
	same := 0
	a = NewXoshiro(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestXoshiroUint64nBounds(t *testing.T) {
	x := NewXoshiro(1)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 32, 1<<63 + 5} {
		for i := 0; i < 200; i++ {
			if got := x.Uint64n(n); got >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, got)
			}
		}
	}
}

func TestXoshiroUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro(1).Uint64n(0)
}

func TestXoshiroUniformity(t *testing.T) {
	// Chi-square against uniform over 16 buckets; loose bound to avoid
	// flakiness while still catching gross bias.
	x := NewXoshiro(99)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[x.Uint64n(16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; p=0.001 critical value ≈ 37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %.1f, suggests non-uniform Uint64n", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro(5)
	for i := 0; i < 10000; i++ {
		v := x.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	x := NewXoshiro(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := x.Normal(30, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-30) > 0.05 {
		t.Errorf("mean = %v, want ≈30", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ≈4", variance)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	x := NewXoshiro(3)
	for i := 0; i < 100; i++ {
		if x.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !x.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestLCGLowBitStructure(t *testing.T) {
	// The classic power-of-two LCG weakness the cycle analysis builds on:
	// the low k bits of the state evolve with period at most 2^k. For the
	// MSVCRT constants (odd multiplier, odd increment) the lowest bit
	// simply alternates.
	l := NewLCG32(MSVCRTMultiplier, MSVCRTIncrement, 12345)
	prev := l.State() & 1
	for i := 0; i < 64; i++ {
		cur := l.Next() & 1
		if cur == prev {
			t.Fatalf("low bit failed to alternate at step %d", i)
		}
		prev = cur
	}
	// Low 4 bits: period divides 16.
	l.Seed(999)
	var seq []uint32
	for i := 0; i < 32; i++ {
		seq = append(seq, l.Next()&0xf)
	}
	for i := 0; i < 16; i++ {
		if seq[i] != seq[i+16] {
			t.Fatalf("low-4-bit sequence not 16-periodic at %d", i)
		}
	}
}

func TestMix64IsInjectiveOnSample(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: %d and %d", prev, i)
		}
		seen[h] = i
	}
}
