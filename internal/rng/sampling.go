package rng

import "math"

// Binomial returns a draw from Binomial(n, p): the number of successes in n
// independent trials of probability p.
//
// The fast simulation driver reduces "each infected host fires k probes per
// tick, each independently landing in an address range with probability p"
// to a single Binomial(k·hosts, p) draw, so this sampler sits on the hot
// path of every aggregated experiment. Three regimes are used:
//
//   - small n: direct Bernoulli counting (exact)
//   - small n·p: geometric gap-skipping (exact, O(np+1))
//   - otherwise: normal approximation with continuity correction, which is
//     statistically indistinguishable at the n·p ≥ 64 scale the simulator
//     reaches it.
func (x *Xoshiro) Binomial(n uint64, p float64) uint64 {
	if n == 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - x.Binomial(n, 1-p)
	}
	np := float64(n) * p
	switch {
	case n <= 64:
		var k uint64
		for i := uint64(0); i < n; i++ {
			if x.Float64() < p {
				k++
			}
		}
		return k
	case np < 32:
		// Skip over failure runs: the gap to the next success is geometric.
		logq := math.Log1p(-p)
		var k, i uint64
		for {
			gap := uint64(math.Log(1-x.Float64())/logq) + 1
			i += gap
			if i > n {
				return k
			}
			k++
		}
	default:
		mean := np
		stddev := math.Sqrt(np * (1 - p))
		v := math.Round(x.Normal(mean, stddev))
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return uint64(v)
	}
}

// Poisson returns a draw from Poisson(lambda). Used to aggregate rare-event
// probe counts (e.g. probes landing on a /24 darknet sensor out of the full
// 2^32 space).
func (x *Xoshiro) Poisson(lambda float64) uint64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth's product-of-uniforms method, with a squeeze on the
		// zero-event case: the first uniform u yields 0 iff u ≤ exp(-λ),
		// and u ≤ 1-λ implies that without evaluating the exponential
		// (1-λ ≤ exp(-λ) everywhere). The fast path consumes the same
		// single draw the full method would, so the squeeze changes
		// neither the distribution nor the generator's stream — it only
		// skips math.Exp for the overwhelmingly common small-λ zeros the
		// aggregated driver generates.
		prod := x.Float64()
		if prod <= 1-lambda {
			return 0
		}
		limit := math.Exp(-lambda)
		var k uint64
		for prod > limit {
			k++
			prod *= x.Float64()
		}
		return k
	}
	// Split recursively: Poisson(a+b) = Poisson(a) + Poisson(b). Using a
	// normal tail for the bulk keeps this exact enough for simulation use.
	v := math.Round(x.Normal(lambda, math.Sqrt(lambda)))
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Shuffle permutes the first n integers [0, n) in place into out (which it
// allocates if nil) using Fisher-Yates, returning the permutation.
func (x *Xoshiro) Shuffle(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// SampleWithoutReplacement draws k distinct integers uniformly from [0, n)
// using Floyd's algorithm; the result is in no particular order.
func (x *Xoshiro) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: sample size exceeds population")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := x.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
