// Package ipv4 provides the IPv4 address-space substrate used throughout the
// hotspots library: address and prefix arithmetic, CIDR parsing, /8 //16 //24
// indexing, reserved-range classification, and interval-set algebra over the
// 32-bit address space.
//
// The package deliberately avoids net/netip so that addresses are plain
// uint32 values: worm target generators and the simulation engine manipulate
// billions of addresses and need zero-allocation integer math.
package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address represented as a host-order 32-bit integer.
// 10.0.0.1 is Addr(0x0a000001).
type Addr uint32

// MaxAddr is the highest IPv4 address, 255.255.255.255.
const MaxAddr Addr = 0xffffffff

// AddrFromOctets assembles an address from its four dotted-quad octets.
func AddrFromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.168.0.100".
func ParseAddr(s string) (Addr, error) {
	var octets [4]byte
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipv4: parse %q: expected 4 octets", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		n, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ipv4: parse %q: octet %d: %v", s, i+1, err)
		}
		octets[i] = byte(n)
	}
	return AddrFromOctets(octets[0], octets[1], octets[2], octets[3]), nil
}

// MustParseAddr is like ParseAddr but panics on error. Intended for
// package-level constants and tests.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders a in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	// strconv.AppendUint into a stack buffer avoids fmt overhead; this is on
	// the reporting path for millions of addresses.
	buf := make([]byte, 0, 15)
	buf = strconv.AppendUint(buf, uint64(o1), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o2), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o3), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(o4), 10)
	return string(buf)
}

// Slash8 returns the index of the /8 network containing a (the first octet).
func (a Addr) Slash8() uint32 { return uint32(a) >> 24 }

// Slash16 returns the index of the /16 network containing a
// (0 .. 65535, i.e. the top two octets).
func (a Addr) Slash16() uint32 { return uint32(a) >> 16 }

// Slash24 returns the index of the /24 network containing a
// (0 .. 2^24-1, i.e. the top three octets).
func (a Addr) Slash24() uint32 { return uint32(a) >> 8 }

// SameSlash8 reports whether a and b share the same /8 network.
func (a Addr) SameSlash8(b Addr) bool { return a.Slash8() == b.Slash8() }

// SameSlash16 reports whether a and b share the same /16 network.
func (a Addr) SameSlash16(b Addr) bool { return a.Slash16() == b.Slash16() }

// IsPrivate reports whether a falls inside the RFC 1918 private ranges
// 10.0.0.0/8, 172.16.0.0/12, or 192.168.0.0/16.
func (a Addr) IsPrivate() bool {
	switch {
	case uint32(a)>>24 == 10:
		return true
	case uint32(a)>>20 == 0xac1: // 172.16.0.0/12
		return true
	case uint32(a)>>16 == 0xc0a8: // 192.168.0.0/16
		return true
	}
	return false
}

// IsLoopback reports whether a falls inside 127.0.0.0/8.
func (a Addr) IsLoopback() bool { return uint32(a)>>24 == 127 }

// IsMulticast reports whether a falls inside 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return uint32(a)>>28 == 0xe }

// IsReserved reports whether a is in space a worm probe would never
// productively target: 0.0.0.0/8, loopback, multicast, or 240.0.0.0/4.
func (a Addr) IsReserved() bool {
	return uint32(a)>>24 == 0 || a.IsLoopback() || uint32(a)>>28 >= 0xe
}
