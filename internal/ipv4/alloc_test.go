// Zero-alloc invariants for the set hot paths. The race detector's
// instrumentation perturbs allocation counts, so these only run in
// regular test builds; scripts/check.sh covers both modes.

//go:build !race

package ipv4

import "testing"

// TestSetContainsSelectNoAllocs pins the driver-facing contract: once a
// set is normalized (and rank-indexed), Contains and Select are pure
// lookups. The parallel exact driver relies on exactly this — phase-1
// workers call Contains concurrently after one warm-up read.
func TestSetContainsSelectNoAllocs(t *testing.T) {
	s := &Set{}
	s.AddPrefix(MustParsePrefix("10.0.0.0/8"))
	s.AddPrefix(MustParsePrefix("172.16.0.0/12"))
	s.AddPrefix(MustParsePrefix("192.52.92.0/22"))
	s.AddPrefix(MustParsePrefix("41.0.0.0/8"))
	// Warm up: first reads normalize lazily and build the rank index.
	if s.Size() == 0 {
		t.Fatal("empty set")
	}
	_ = s.Contains(MustParseAddr("10.1.2.3"))
	_ = s.Select(0)

	probe := []Addr{
		MustParseAddr("10.1.2.3"),
		MustParseAddr("9.255.255.255"),
		MustParseAddr("172.20.0.1"),
		MustParseAddr("192.52.95.255"),
		MustParseAddr("8.8.8.8"),
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for _, a := range probe {
			_ = s.Contains(a)
		}
	}); allocs != 0 {
		t.Errorf("Contains allocates %.1f per run on a normalized set, want 0", allocs)
	}

	size := s.Size()
	if allocs := testing.AllocsPerRun(200, func() {
		for i := uint64(0); i < 8; i++ {
			_ = s.Select(i * (size / 8))
		}
	}); allocs != 0 {
		t.Errorf("Select allocates %.1f per run on a rank-indexed set, want 0", allocs)
	}
}
