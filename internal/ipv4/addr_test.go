package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		give    string
		want    Addr
		wantErr bool
	}{
		{give: "0.0.0.0", want: 0},
		{give: "255.255.255.255", want: MaxAddr},
		{give: "10.0.0.1", want: 0x0a000001},
		{give: "192.168.0.100", want: 0xc0a80064},
		{give: "1.2.3.4", want: 0x01020304},
		{give: "256.0.0.1", wantErr: true},
		{give: "1.2.3", wantErr: true},
		{give: "1.2.3.4.5", wantErr: true},
		{give: "", wantErr: true},
		{give: "a.b.c.d", wantErr: true},
		{give: "1..2.3", wantErr: true},
		{give: "-1.2.3.4", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseAddr(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseAddr(%q) = %v, want error", tt.give, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAddr(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("ParseAddr(%q) = %#x, want %#x", tt.give, uint32(got), uint32(tt.want))
			}
		})
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("17.34.51.68")
	o1, o2, o3, o4 := a.Octets()
	if o1 != 17 || o2 != 34 || o3 != 51 || o4 != 68 {
		t.Errorf("Octets() = %d.%d.%d.%d, want 17.34.51.68", o1, o2, o3, o4)
	}
}

func TestSlashIndexes(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	if got := a.Slash8(); got != 10 {
		t.Errorf("Slash8() = %d, want 10", got)
	}
	if got := a.Slash16(); got != 10<<8|20 {
		t.Errorf("Slash16() = %d, want %d", got, 10<<8|20)
	}
	if got := a.Slash24(); got != 10<<16|20<<8|30 {
		t.Errorf("Slash24() = %d, want %d", got, 10<<16|20<<8|30)
	}
	if !a.SameSlash8(MustParseAddr("10.99.99.99")) {
		t.Error("SameSlash8 should match within 10/8")
	}
	if a.SameSlash16(MustParseAddr("10.21.0.0")) {
		t.Error("SameSlash16 should not match across /16s")
	}
}

func TestAddrClassification(t *testing.T) {
	tests := []struct {
		give      string
		private   bool
		loopback  bool
		multicast bool
		reserved  bool
	}{
		{give: "10.1.2.3", private: true},
		{give: "9.255.255.255"},
		{give: "11.0.0.0"},
		{give: "172.16.0.1", private: true},
		{give: "172.15.255.255"},
		{give: "172.31.255.255", private: true},
		{give: "172.32.0.0"},
		{give: "192.168.0.100", private: true},
		{give: "192.167.255.255"},
		{give: "192.169.0.0"},
		{give: "127.0.0.1", loopback: true, reserved: true},
		{give: "224.0.0.1", multicast: true, reserved: true},
		{give: "239.255.255.255", multicast: true, reserved: true},
		{give: "240.0.0.0", reserved: true},
		{give: "0.1.2.3", reserved: true},
		{give: "8.8.8.8"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			a := MustParseAddr(tt.give)
			if got := a.IsPrivate(); got != tt.private {
				t.Errorf("IsPrivate() = %v, want %v", got, tt.private)
			}
			if got := a.IsLoopback(); got != tt.loopback {
				t.Errorf("IsLoopback() = %v, want %v", got, tt.loopback)
			}
			if got := a.IsMulticast(); got != tt.multicast {
				t.Errorf("IsMulticast() = %v, want %v", got, tt.multicast)
			}
			if got := a.IsReserved(); got != tt.reserved {
				t.Errorf("IsReserved() = %v, want %v", got, tt.reserved)
			}
		})
	}
}
