package ipv4

import "fmt"

// Trie is a binary (unibit) trie over IPv4 prefixes with longest-prefix-
// match lookup — the data structure of routing and filtering tables. V is
// the value attached to each route/rule.
//
// The zero value... is not usable; construct with NewTrie. Not safe for
// concurrent mutation.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	children [2]*trieNode[V]
	value    V
	occupied bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Insert associates value with prefix, replacing any existing entry for the
// exact same prefix.
func (t *Trie[V]) Insert(p Prefix, value V) {
	n := t.root
	addr := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode[V]{}
		}
		n = n.children[bit]
	}
	if !n.occupied {
		t.size++
	}
	n.value = value
	n.occupied = true
}

// Lookup returns the value of the longest prefix containing a, and whether
// any prefix matched.
func (t *Trie[V]) Lookup(a Addr) (V, bool) {
	var best V
	found := false
	n := t.root
	if n.occupied { // default route
		best, found = n.value, true
	}
	addr := uint32(a)
	for depth := 0; depth < 32; depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.children[bit]
		if n == nil {
			break
		}
		if n.occupied {
			best, found = n.value, true
		}
	}
	return best, found
}

// Exact returns the value stored for exactly prefix p.
func (t *Trie[V]) Exact(p Prefix) (V, bool) {
	n := t.root
	addr := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.children[bit]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.value, n.occupied
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes are left in place (size bookkeeping stays correct; lookup
// semantics are unaffected).
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	addr := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		bit := (addr >> (31 - uint(depth))) & 1
		n = n.children[bit]
		if n == nil {
			return false
		}
	}
	if !n.occupied {
		return false
	}
	var zero V
	n.value = zero
	n.occupied = false
	t.size--
	return true
}

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored (prefix, value) pair in lexicographic bit order.
// Returning false from visit stops the walk.
func (t *Trie[V]) Walk(visit func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, visit)
}

func (t *Trie[V]) walk(n *trieNode[V], addr uint32, depth int, visit func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.occupied {
		p, err := NewPrefix(Addr(addr), depth)
		if err != nil {
			panic(fmt.Sprintf("ipv4: impossible trie depth %d", depth))
		}
		if !visit(p, n.value) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.children[0], addr, depth+1, visit) {
		return false
	}
	return t.walk(n.children[1], addr|1<<(31-uint(depth)), depth+1, visit)
}
