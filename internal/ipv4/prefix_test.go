package ipv4

import "testing"

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		give     string
		wantAddr string
		wantBits int
		wantErr  bool
	}{
		{give: "10.0.0.0/8", wantAddr: "10.0.0.0", wantBits: 8},
		{give: "192.168.0.0/16", wantAddr: "192.168.0.0", wantBits: 16},
		{give: "1.2.3.4/32", wantAddr: "1.2.3.4", wantBits: 32},
		{give: "0.0.0.0/0", wantAddr: "0.0.0.0", wantBits: 0},
		// Host bits are cleared.
		{give: "10.1.2.3/8", wantAddr: "10.0.0.0", wantBits: 8},
		{give: "10.0.0.0/33", wantErr: true},
		{give: "10.0.0.0", wantErr: true},
		{give: "10.0.0.0/x", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			p, err := ParsePrefix(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParsePrefix(%q) = %v, want error", tt.give, p)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParsePrefix(%q): %v", tt.give, err)
			}
			if p.Addr() != MustParseAddr(tt.wantAddr) || p.Bits() != tt.wantBits {
				t.Errorf("ParsePrefix(%q) = %v, want %s/%d", tt.give, p, tt.wantAddr, tt.wantBits)
			}
		})
	}
}

func TestPrefixRangeAndContains(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/16")
	if got := p.NumAddrs(); got != 65536 {
		t.Errorf("NumAddrs() = %d, want 65536", got)
	}
	if p.First() != MustParseAddr("192.168.0.0") {
		t.Errorf("First() = %v", p.First())
	}
	if p.Last() != MustParseAddr("192.168.255.255") {
		t.Errorf("Last() = %v", p.Last())
	}
	if !p.Contains(MustParseAddr("192.168.42.42")) {
		t.Error("Contains should include interior address")
	}
	if p.Contains(MustParseAddr("192.169.0.0")) {
		t.Error("Contains should exclude next /16")
	}
	if got := p.Nth(256); got != MustParseAddr("192.168.1.0") {
		t.Errorf("Nth(256) = %v, want 192.168.1.0", got)
	}
}

func TestPrefixWholeSpace(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	if got := p.NumAddrs(); got != 1<<32 {
		t.Errorf("NumAddrs() = %d, want 2^32", got)
	}
	if p.Last() != MaxAddr {
		t.Errorf("Last() = %v, want 255.255.255.255", p.Last())
	}
	if !p.Contains(MaxAddr) || !p.Contains(0) {
		t.Error("the default route must contain everything")
	}
}

func TestPrefixOverlapsAndContainsPrefix(t *testing.T) {
	tests := []struct {
		a, b       string
		overlaps   bool
		aContainsB bool
	}{
		{a: "10.0.0.0/8", b: "10.1.0.0/16", overlaps: true, aContainsB: true},
		{a: "10.1.0.0/16", b: "10.0.0.0/8", overlaps: true},
		{a: "10.0.0.0/8", b: "11.0.0.0/8", overlaps: false},
		{a: "0.0.0.0/0", b: "200.1.2.0/24", overlaps: true, aContainsB: true},
		{a: "10.0.0.0/24", b: "10.0.0.0/24", overlaps: true, aContainsB: true},
	}
	for _, tt := range tests {
		a, b := MustParsePrefix(tt.a), MustParsePrefix(tt.b)
		if got := a.Overlaps(b); got != tt.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, b, got, tt.overlaps)
		}
		if got := a.ContainsPrefix(b); got != tt.aContainsB {
			t.Errorf("%v.ContainsPrefix(%v) = %v, want %v", a, b, got, tt.aContainsB)
		}
	}
}

func TestPrefixSlash24s(t *testing.T) {
	tests := []struct {
		give string
		want int
	}{
		{give: "1.2.3.0/24", want: 1},
		{give: "1.2.3.128/25", want: 1},
		{give: "1.2.0.0/16", want: 256},
		{give: "1.0.0.0/8", want: 65536},
		{give: "1.2.3.4/32", want: 1},
	}
	for _, tt := range tests {
		if got := MustParsePrefix(tt.give).Slash24s(); got != tt.want {
			t.Errorf("%s.Slash24s() = %d, want %d", tt.give, got, tt.want)
		}
	}
}

// FuzzParsePrefix checks the CIDR parser never panics and that every
// accepted input survives a String -> ParsePrefix round trip unchanged
// (host bits cleared, mask length preserved).
func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{
		"10.0.0.0/8", "192.168.0.0/16", "1.2.3.4/32", "0.0.0.0/0",
		"10.1.2.3/8", "255.255.255.255/32", "10.0.0.0/33", "10.0.0.0",
		"/8", "1.2.3.4/", "1.2.3.4/-1", "1.2.3.4/08", "01.2.3.4/8",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		back, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if back != p {
			t.Fatalf("round trip diverged: %q -> %v -> %v", s, p, back)
		}
		if p.Addr()&^maskFor(p.Bits()) != 0 {
			t.Fatalf("host bits not cleared: %q -> %v", s, p)
		}
	})
}
