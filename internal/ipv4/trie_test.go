package ipv4

import (
	"testing"

	"repro/internal/rng"
)

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "ten-one-two")

	tests := []struct {
		give string
		want string
	}{
		{give: "10.1.2.3", want: "ten-one-two"},
		{give: "10.1.3.3", want: "ten-one"},
		{give: "10.2.0.0", want: "ten"},
		{give: "11.0.0.0", want: "default"},
		{give: "255.255.255.255", want: "default"},
	}
	for _, tt := range tests {
		got, ok := tr.Lookup(MustParseAddr(tt.give))
		if !ok || got != tt.want {
			t.Errorf("Lookup(%s) = %q,%v, want %q", tt.give, got, ok, tt.want)
		}
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

func TestTrieNoMatch(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tr.Lookup(MustParseAddr("11.0.0.0")); ok {
		t.Error("matched outside any prefix")
	}
}

func TestTrieExactAndDelete(t *testing.T) {
	tr := NewTrie[int]()
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	tr.Insert(p8, 8)
	tr.Insert(p16, 16)

	if v, ok := tr.Exact(p8); !ok || v != 8 {
		t.Errorf("Exact(/8) = %v,%v", v, ok)
	}
	if _, ok := tr.Exact(MustParsePrefix("10.0.0.0/9")); ok {
		t.Error("Exact matched unstored prefix")
	}
	if !tr.Delete(p8) {
		t.Error("Delete(/8) failed")
	}
	if tr.Delete(p8) {
		t.Error("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after delete, want 1", tr.Len())
	}
	// The /16 remains reachable; the /8 no longer matches.
	if v, ok := tr.Lookup(MustParseAddr("10.1.0.1")); !ok || v != 16 {
		t.Errorf("post-delete Lookup = %v,%v", v, ok)
	}
	if _, ok := tr.Lookup(MustParseAddr("10.2.0.1")); ok {
		t.Error("deleted prefix still matches")
	}
}

func TestTrieReplaceValue(t *testing.T) {
	tr := NewTrie[int]()
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1 (replacement)", tr.Len())
	}
	if v, _ := tr.Exact(p); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestTrieHostRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("1.2.3.4/32"), 32)
	if v, ok := tr.Lookup(MustParseAddr("1.2.3.4")); !ok || v != 32 {
		t.Errorf("host route lookup = %v,%v", v, ok)
	}
	if _, ok := tr.Lookup(MustParseAddr("1.2.3.5")); ok {
		t.Error("host route matched neighbour")
	}
}

func TestTrieWalk(t *testing.T) {
	tr := NewTrie[int]()
	prefixes := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16"}
	for i, p := range prefixes {
		tr.Insert(MustParsePrefix(p), i)
	}
	var visited []string
	tr.Walk(func(p Prefix, v int) bool {
		visited = append(visited, p.String())
		return true
	})
	if len(visited) != 4 {
		t.Fatalf("walked %d entries, want 4: %v", len(visited), visited)
	}
	// Walk is lexicographic by bit string: the default route first.
	if visited[0] != "0.0.0.0/0" {
		t.Errorf("walk order starts with %s", visited[0])
	}
	// Early stop.
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stopped walk visited %d", n)
	}
}

func TestTrieAgainstLinearScan(t *testing.T) {
	// Oracle test: LPM lookups must match a brute-force longest-match scan
	// over a random rule set.
	r := rng.NewXoshiro(7)
	tr := NewTrie[int]()
	type rule struct {
		p Prefix
		v int
	}
	var rules []rule
	for i := 0; i < 300; i++ {
		bits := r.Intn(25) + 8
		p, err := NewPrefix(Addr(r.Uint32()), bits)
		if err != nil {
			t.Fatal(err)
		}
		// Last insert wins for duplicate prefixes — mirror that in the
		// oracle by replacing.
		replaced := false
		for j := range rules {
			if rules[j].p == p {
				rules[j].v = i
				replaced = true
			}
		}
		if !replaced {
			rules = append(rules, rule{p: p, v: i})
		}
		tr.Insert(p, i)
	}
	oracle := func(a Addr) (int, bool) {
		best, bestBits, found := 0, -1, false
		for _, ru := range rules {
			if ru.p.Contains(a) && ru.p.Bits() > bestBits {
				best, bestBits, found = ru.v, ru.p.Bits(), true
			}
		}
		return best, found
	}
	for i := 0; i < 20000; i++ {
		a := Addr(r.Uint32())
		wantV, wantOK := oracle(a)
		gotV, gotOK := tr.Lookup(a)
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("Lookup(%v) = %v,%v, oracle %v,%v", a, gotV, gotOK, wantV, wantOK)
		}
	}
}
