package ipv4

import (
	"fmt"
	"sort"
)

// Interval is an inclusive range [Lo, Hi] of IPv4 addresses.
type Interval struct {
	Lo, Hi Addr
}

// Contains reports whether a lies inside iv.
func (iv Interval) Contains(a Addr) bool { return a >= iv.Lo && a <= iv.Hi }

// Len returns the number of addresses in iv.
func (iv Interval) Len() uint64 { return uint64(iv.Hi) - uint64(iv.Lo) + 1 }

// Overlaps reports whether iv and other share any address.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the overlap of iv and other and whether it is non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if lo > hi {
		return Interval{}, false
	}
	return Interval{Lo: lo, Hi: hi}, true
}

// String renders iv as "lo-hi".
func (iv Interval) String() string {
	return fmt.Sprintf("%v-%v", iv.Lo, iv.Hi)
}

// Set is a set of IPv4 addresses stored as sorted, disjoint, non-adjacent
// inclusive intervals. The zero value is an empty set ready to use.
// A Set is not safe for concurrent use: reads lazily normalize internal
// state after mutation.
//
// Sets support membership tests in O(log n), size queries in O(1) after
// normalization, and rank/select so that a uniform random address inside the
// set can be drawn in O(log n). Worm hit-lists, darknet sensor geometries,
// and filtering policies are all represented as Sets.
type Set struct {
	ivs    []Interval
	dirty  bool
	size   uint64 // valid when !dirty
	ranks  []uint64
	ranked bool
}

// NewSet builds a set from arbitrary intervals (they may overlap).
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.AddInterval(iv)
	}
	s.normalize()
	return s
}

// SetOfPrefixes builds a set covering every address of the given prefixes.
func SetOfPrefixes(prefixes ...Prefix) *Set {
	s := &Set{}
	for _, p := range prefixes {
		s.AddPrefix(p)
	}
	s.normalize()
	return s
}

// AddInterval inserts the inclusive interval iv into s.
func (s *Set) AddInterval(iv Interval) {
	if iv.Lo > iv.Hi {
		return
	}
	s.ivs = append(s.ivs, iv)
	s.dirty = true
	s.ranked = false
}

// AddPrefix inserts every address of p into s.
func (s *Set) AddPrefix(p Prefix) { s.AddInterval(p.Range()) }

// AddAddr inserts the single address a into s.
func (s *Set) AddAddr(a Addr) { s.AddInterval(Interval{Lo: a, Hi: a}) }

// normalize sorts and merges intervals so that they are disjoint,
// non-adjacent and ordered.
func (s *Set) normalize() {
	//lint:ignore lazyinit the Freeze contract serializes the first call: shared Sets are frozen on one goroutine before workers start, pinned by TestRunExactParallelHitListShared
	if !s.dirty {
		return
	}
	sort.Slice(s.ivs, func(i, j int) bool { return s.ivs[i].Lo < s.ivs[j].Lo })
	merged := s.ivs[:0]
	for _, iv := range s.ivs {
		n := len(merged)
		// Merge when overlapping or exactly adjacent (Hi+1 == Lo), taking
		// care not to overflow at 255.255.255.255.
		if n > 0 && (iv.Lo <= merged[n-1].Hi ||
			(merged[n-1].Hi != MaxAddr && iv.Lo == merged[n-1].Hi+1)) {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	s.ivs = merged
	s.size = 0
	for _, iv := range s.ivs {
		s.size += iv.Len()
	}
	s.dirty = false
}

// Contains reports whether a is a member of s.
func (s *Set) Contains(a Addr) bool {
	s.normalize()
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= a })
	return i < len(s.ivs) && s.ivs[i].Contains(a)
}

// Size returns the number of addresses in s.
func (s *Set) Size() uint64 {
	s.normalize()
	return s.size
}

// IsEmpty reports whether s contains no addresses.
func (s *Set) IsEmpty() bool { return s.Size() == 0 }

// Intervals returns the normalized intervals of s. The returned slice is a
// copy; mutating it does not affect s.
func (s *Set) Intervals() []Interval {
	s.normalize()
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// buildRanks prepares the cumulative-size index used by Select.
func (s *Set) buildRanks() {
	s.normalize()
	//lint:ignore lazyinit the Freeze contract serializes the first call: shared Sets are frozen on one goroutine before workers start, pinned by TestRunExactParallelHitListShared
	if s.ranked {
		return
	}
	s.ranks = make([]uint64, len(s.ivs)+1)
	for i, iv := range s.ivs {
		s.ranks[i+1] = s.ranks[i] + iv.Len()
	}
	s.ranked = true
}

// Freeze pre-computes every lazily built index (interval normalization and
// the Select/Rank cumulative-size table). Sets build their indexes on first
// use, which is a hidden write: a set shared by concurrent readers must be
// frozen first — while still on a single goroutine — after which Contains,
// Size, Select, Rank, and IntersectInterval are read-only and safe to call
// concurrently (until the next Add* mutation).
func (s *Set) Freeze() { s.buildRanks() }

// Select returns the i-th smallest address of s (0-based). It panics if
// i >= Size(); callers draw i uniformly in [0, Size()).
func (s *Set) Select(i uint64) Addr {
	s.buildRanks()
	if i >= s.size {
		panic(fmt.Sprintf("ipv4: Select(%d) out of range for set of size %d", i, s.size))
	}
	k := sort.Search(len(s.ivs), func(k int) bool { return s.ranks[k+1] > i })
	return s.ivs[k].Lo + Addr(i-s.ranks[k])
}

// Rank returns the number of set members strictly less than a.
func (s *Set) Rank(a Addr) uint64 {
	s.buildRanks()
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= a })
	if i == len(s.ivs) {
		return s.size
	}
	if a <= s.ivs[i].Lo {
		return s.ranks[i]
	}
	return s.ranks[i] + uint64(a-s.ivs[i].Lo)
}

// IntersectInterval returns the total number of set members inside iv.
func (s *Set) IntersectInterval(iv Interval) uint64 {
	if iv.Lo > iv.Hi {
		return 0
	}
	hiRank := s.Rank(iv.Hi)
	if s.Contains(iv.Hi) {
		hiRank++
	}
	return hiRank - s.Rank(iv.Lo)
}

// Union returns a new set containing every address of s or other.
func (s *Set) Union(other *Set) *Set {
	s.normalize()
	other.normalize()
	out := &Set{ivs: make([]Interval, 0, len(s.ivs)+len(other.ivs))}
	out.ivs = append(out.ivs, s.ivs...)
	out.ivs = append(out.ivs, other.ivs...)
	out.dirty = true
	out.normalize()
	return out
}

// Intersect returns a new set containing every address present in both s
// and other.
func (s *Set) Intersect(other *Set) *Set {
	s.normalize()
	other.normalize()
	out := &Set{}
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if iv, ok := s.ivs[i].Intersect(other.ivs[j]); ok {
			out.ivs = append(out.ivs, iv)
		}
		if s.ivs[i].Hi < other.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	out.dirty = true
	out.normalize()
	return out
}

// Subtract returns a new set containing every address of s not in other.
func (s *Set) Subtract(other *Set) *Set {
	s.normalize()
	other.normalize()
	out := &Set{}
	j := 0
	for _, iv := range s.ivs {
		lo, hi := iv.Lo, iv.Hi
		for j < len(other.ivs) && other.ivs[j].Hi < lo {
			j++
		}
		covered := false
		for k := j; k < len(other.ivs) && other.ivs[k].Lo <= hi; k++ {
			cut := other.ivs[k]
			if cut.Lo > lo {
				out.AddInterval(Interval{Lo: lo, Hi: cut.Lo - 1})
			}
			if cut.Hi >= hi {
				covered = true
				break
			}
			lo = cut.Hi + 1
		}
		if !covered && lo <= hi {
			out.AddInterval(Interval{Lo: lo, Hi: hi})
		}
	}
	out.normalize()
	return out
}

// Equal reports whether s and other contain exactly the same addresses.
func (s *Set) Equal(other *Set) bool {
	s.normalize()
	other.normalize()
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	s.normalize()
	out := &Set{ivs: make([]Interval, len(s.ivs)), size: s.size}
	copy(out.ivs, s.ivs)
	return out
}

// String renders s as a comma-separated interval list (capped for sanity).
func (s *Set) String() string {
	s.normalize()
	const maxShown = 8
	out := ""
	for i, iv := range s.ivs {
		if i == maxShown {
			return fmt.Sprintf("%s,…(%d intervals)", out, len(s.ivs))
		}
		if i > 0 {
			out += ","
		}
		out += iv.String()
	}
	if out == "" {
		return "∅"
	}
	return out
}
