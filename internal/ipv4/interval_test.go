package ipv4

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Contains(10) || !iv.Contains(20) || iv.Contains(9) || iv.Contains(21) {
		t.Error("Contains bounds are wrong")
	}
	if got := iv.Len(); got != 11 {
		t.Errorf("Len() = %d, want 11", got)
	}
	if got := (Interval{Lo: 0, Hi: MaxAddr}).Len(); got != 1<<32 {
		t.Errorf("full-space Len() = %d, want 2^32", got)
	}
	if !iv.Overlaps(Interval{Lo: 20, Hi: 30}) || iv.Overlaps(Interval{Lo: 21, Hi: 30}) {
		t.Error("Overlaps adjacency is wrong")
	}
	got, ok := iv.Intersect(Interval{Lo: 15, Hi: 40})
	if !ok || got != (Interval{Lo: 15, Hi: 20}) {
		t.Errorf("Intersect = %v,%v", got, ok)
	}
	if _, ok := iv.Intersect(Interval{Lo: 30, Hi: 40}); ok {
		t.Error("disjoint Intersect should report empty")
	}
}

func TestSetMergeAndSize(t *testing.T) {
	s := NewSet(
		Interval{Lo: 10, Hi: 20},
		Interval{Lo: 15, Hi: 25}, // overlapping
		Interval{Lo: 26, Hi: 30}, // adjacent
		Interval{Lo: 100, Hi: 100},
	)
	if got := s.Size(); got != 22 {
		t.Fatalf("Size() = %d, want 22", got)
	}
	ivs := s.Intervals()
	if len(ivs) != 2 || ivs[0] != (Interval{Lo: 10, Hi: 30}) || ivs[1] != (Interval{Lo: 100, Hi: 100}) {
		t.Fatalf("Intervals() = %v", ivs)
	}
}

func TestSetContains(t *testing.T) {
	s := SetOfPrefixes(MustParsePrefix("10.0.0.0/8"), MustParsePrefix("192.168.0.0/16"))
	for _, give := range []string{"10.0.0.0", "10.255.255.255", "192.168.3.4"} {
		if !s.Contains(MustParseAddr(give)) {
			t.Errorf("Contains(%s) = false, want true", give)
		}
	}
	for _, give := range []string{"9.255.255.255", "11.0.0.0", "192.169.0.0"} {
		if s.Contains(MustParseAddr(give)) {
			t.Errorf("Contains(%s) = true, want false", give)
		}
	}
}

func TestSetSelectRank(t *testing.T) {
	s := NewSet(Interval{Lo: 10, Hi: 12}, Interval{Lo: 100, Hi: 101})
	wantOrder := []Addr{10, 11, 12, 100, 101}
	for i, want := range wantOrder {
		if got := s.Select(uint64(i)); got != want {
			t.Errorf("Select(%d) = %v, want %v", i, got, want)
		}
	}
	if got := s.Rank(11); got != 1 {
		t.Errorf("Rank(11) = %d, want 1", got)
	}
	if got := s.Rank(50); got != 3 {
		t.Errorf("Rank(50) = %d, want 3", got)
	}
	if got := s.Rank(200); got != 5 {
		t.Errorf("Rank(200) = %d, want 5", got)
	}
}

func TestSetIntersectInterval(t *testing.T) {
	s := NewSet(Interval{Lo: 10, Hi: 20}, Interval{Lo: 30, Hi: 40})
	tests := []struct {
		give Interval
		want uint64
	}{
		{give: Interval{Lo: 0, Hi: 5}, want: 0},
		{give: Interval{Lo: 0, Hi: 10}, want: 1},
		{give: Interval{Lo: 15, Hi: 35}, want: 12},
		{give: Interval{Lo: 0, Hi: MaxAddr}, want: 22},
		{give: Interval{Lo: 20, Hi: 30}, want: 2},
	}
	for _, tt := range tests {
		if got := s.IntersectInterval(tt.give); got != tt.want {
			t.Errorf("IntersectInterval(%v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

// refSet is a brute-force model of Set over a tiny universe, used as the
// oracle for property tests of the set algebra.
type refSet map[Addr]bool

func randomSmallSet(r *rng.Xoshiro) (*Set, refSet) {
	s := &Set{}
	ref := make(refSet)
	n := r.Intn(6)
	for i := 0; i < n; i++ {
		lo := Addr(r.Intn(64))
		hi := lo + Addr(r.Intn(16))
		s.AddInterval(Interval{Lo: lo, Hi: hi})
		for a := lo; ; a++ {
			ref[a] = true
			if a == hi {
				break
			}
		}
	}
	return s, ref
}

func TestSetAlgebraAgainstOracle(t *testing.T) {
	r := rng.NewXoshiro(42)
	for trial := 0; trial < 500; trial++ {
		a, refA := randomSmallSet(r)
		b, refB := randomSmallSet(r)

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Subtract(b)

		for addr := Addr(0); addr < 96; addr++ {
			inA, inB := refA[addr], refB[addr]
			if got, want := union.Contains(addr), inA || inB; got != want {
				t.Fatalf("trial %d: union.Contains(%d) = %v, want %v (a=%v b=%v)", trial, addr, got, want, a, b)
			}
			if got, want := inter.Contains(addr), inA && inB; got != want {
				t.Fatalf("trial %d: inter.Contains(%d) = %v, want %v (a=%v b=%v)", trial, addr, got, want, a, b)
			}
			if got, want := diff.Contains(addr), inA && !inB; got != want {
				t.Fatalf("trial %d: diff.Contains(%d) = %v, want %v (a=%v b=%v)", trial, addr, got, want, a, b)
			}
		}

		// Size is consistent with membership.
		var wantUnion uint64
		for addr := range refA {
			if !refB[addr] {
				wantUnion++
			}
		}
		wantUnion += uint64(len(refB))
		if got := union.Size(); got != wantUnion {
			t.Fatalf("trial %d: union.Size() = %d, want %d", trial, got, wantUnion)
		}
	}
}

func TestSetSelectIsOrderedBijection(t *testing.T) {
	f := func(rawLos [4]uint16, rawLens [4]uint8) bool {
		s := &Set{}
		for i := range rawLos {
			lo := Addr(rawLos[i])
			s.AddInterval(Interval{Lo: lo, Hi: lo + Addr(rawLens[i])})
		}
		size := s.Size()
		prev := Addr(0)
		for i := uint64(0); i < size; i++ {
			a := s.Select(i)
			if i > 0 && a <= prev {
				return false
			}
			if !s.Contains(a) {
				return false
			}
			if s.Rank(a) != i {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetSubtractEdgeCases(t *testing.T) {
	full := NewSet(Interval{Lo: 0, Hi: MaxAddr})
	hole := SetOfPrefixes(MustParsePrefix("192.168.0.0/16"))
	diff := full.Subtract(hole)
	if got := diff.Size(); got != 1<<32-65536 {
		t.Fatalf("Size() = %d, want 2^32-65536", got)
	}
	if diff.Contains(MustParseAddr("192.168.1.1")) {
		t.Error("subtracted range still present")
	}
	if !diff.Contains(MustParseAddr("192.167.255.255")) || !diff.Contains(MustParseAddr("192.169.0.0")) {
		t.Error("boundary addresses missing")
	}

	// Subtracting a superset empties the set.
	if got := hole.Subtract(full); !got.IsEmpty() {
		t.Errorf("subtract superset = %v, want empty", got)
	}

	// Subtracting the empty set is the identity.
	if got := hole.Subtract(&Set{}); !got.Equal(hole) {
		t.Errorf("subtract empty = %v, want %v", got, hole)
	}
}

func TestSetCloneIsIndependent(t *testing.T) {
	a := NewSet(Interval{Lo: 1, Hi: 5})
	b := a.Clone()
	b.AddAddr(100)
	if a.Contains(100) {
		t.Error("mutating a clone affected the original")
	}
	if !b.Contains(100) || !b.Contains(3) {
		t.Error("clone lost members")
	}
}
