package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is a CIDR block: a base address and a mask length.
// The zero value is 0.0.0.0/0, the whole IPv4 space.
type Prefix struct {
	addr Addr
	bits uint8
}

// NewPrefix builds the /bits prefix containing addr. Host bits of addr are
// cleared. It returns an error if bits exceeds 32.
func NewPrefix(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: prefix length %d out of range [0,32]", bits)
	}
	return Prefix{addr: addr & maskFor(bits), bits: uint8(bits)}, nil
}

// ParsePrefix parses CIDR notation such as "192.168.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipv4: parse prefix %q: missing '/'", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ipv4: parse prefix %q: %v", s, err)
	}
	return NewPrefix(addr, bits)
}

// MustParsePrefix is like ParsePrefix but panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return MaxAddr << (32 - uint(bits))
}

// Addr returns the base (network) address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// NumAddrs returns the number of addresses covered by p (up to 2^32).
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// First returns the lowest address in p (the network address).
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in p (the broadcast address).
func (p Prefix) Last() Addr { return p.addr | ^maskFor(int(p.bits)) }

// Contains reports whether a lies inside p.
func (p Prefix) Contains(a Addr) bool { return a&maskFor(int(p.bits)) == p.addr }

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.addr) || q.Contains(p.addr)
}

// ContainsPrefix reports whether q lies entirely inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return p.bits <= q.bits && p.Contains(q.addr)
}

// Nth returns the i-th address in p, counting from the network address.
// It panics if i is out of range; callers index with values < NumAddrs.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("ipv4: index %d out of range for %v", i, p))
	}
	return p.addr + Addr(i)
}

// Range returns the inclusive [first,last] interval covered by p.
func (p Prefix) Range() Interval { return Interval{Lo: p.First(), Hi: p.Last()} }

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Slash24s returns the number of /24 networks covered by p. Prefixes longer
// than /24 report 1 (they live inside a single /24).
func (p Prefix) Slash24s() int {
	if p.bits >= 24 {
		return 1
	}
	return 1 << (24 - uint(p.bits))
}
