package netenv

import (
	"fmt"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// OrgKind classifies an address-space holder for the Table 2 study.
type OrgKind int

// Organization kinds.
const (
	Enterprise OrgKind = iota + 1 // Fortune-100-style corporate network
	BroadbandISP
)

// String names the kind.
func (k OrgKind) String() string {
	switch k {
	case Enterprise:
		return "enterprise"
	case BroadbandISP:
		return "broadband-isp"
	default:
		return fmt.Sprintf("OrgKind(%d)", int(k))
	}
}

// Org is an organization with registered address space and an egress
// filtering posture. The paper's Table 2 contrast: enterprises run strict
// egress filtering (so internal infections barely leak), broadband ISPs run
// essentially none (tens of thousands of infections visible).
type Org struct {
	Name string
	Kind OrgKind
	// Prefixes is the address space ARIN-style allocated to the org.
	Prefixes []ipv4.Prefix
	// EgressDrop is the probability an outbound worm probe is dropped at
	// the org's border.
	EgressDrop float64
	// InfectionDensity is the fraction of the org's addresses hosting a
	// persistently infected machine ("stamping out all infections is
	// nearly impossible").
	InfectionDensity float64
}

// TotalAddrs returns the size of the org's allocation.
func (o Org) TotalAddrs() uint64 {
	var n uint64
	for _, p := range o.Prefixes {
		n += p.NumAddrs()
	}
	return n
}

// AddrSet returns the org's allocation as a set.
func (o Org) AddrSet() *ipv4.Set {
	return ipv4.SetOfPrefixes(o.Prefixes...)
}

// OrgModelConfig parameterizes the synthetic Table 2 universe.
type OrgModelConfig struct {
	// Enterprises and ISPs to generate.
	Enterprises int
	ISPs        int
	// EnterpriseEgressDrop is the border-drop probability at enterprises
	// (near 1: pervasive filtering); ISPEgressDrop near 0.
	EnterpriseEgressDrop float64
	ISPEgressDrop        float64
	// EnterpriseDensity / ISPDensity are infected-host densities. ISPs host
	// consumer machines, far more likely to be infected.
	EnterpriseDensity float64
	ISPDensity        float64
	Seed              uint64
}

// DefaultOrgModel returns the configuration used by the Table 2
// reproduction: enterprises with hundreds of thousands of addresses behind
// near-total egress filtering, broadband ISPs with millions of addresses
// and none.
func DefaultOrgModel(seed uint64) OrgModelConfig {
	return OrgModelConfig{
		Enterprises:          10,
		ISPs:                 3,
		EnterpriseEgressDrop: 0.999,
		ISPEgressDrop:        0.0,
		EnterpriseDensity:    0.0008,
		ISPDensity:           0.004,
		Seed:                 seed,
	}
}

// SynthesizeOrgs builds the synthetic organization universe. Enterprise
// allocations are a few /16s each; ISP allocations are several /12–/13s,
// reflecting the paper's observation that broadband providers manage far
// more (and far more infected) address space. Allocations never overlap.
func SynthesizeOrgs(cfg OrgModelConfig) []Org {
	r := rng.NewXoshiro(cfg.Seed)
	var orgs []Org
	// Carve enterprise space out of 144/8-ish ranges and ISP space out of
	// 24/8-ish ranges; concrete octets are arbitrary but deterministic and
	// non-overlapping.
	nextEnt := uint32(144<<24 | 0<<16)
	for i := 0; i < cfg.Enterprises; i++ {
		nPrefixes := 1 + r.Intn(3)
		var prefixes []ipv4.Prefix
		for j := 0; j < nPrefixes; j++ {
			p, err := ipv4.NewPrefix(ipv4.Addr(nextEnt), 16)
			if err != nil {
				panic(err) // unreachable: 16 is valid
			}
			prefixes = append(prefixes, p)
			nextEnt += 1 << 16
		}
		orgs = append(orgs, Org{
			Name:             fmt.Sprintf("Corp-%02d", i+1),
			Kind:             Enterprise,
			Prefixes:         prefixes,
			EgressDrop:       cfg.EnterpriseEgressDrop,
			InfectionDensity: cfg.EnterpriseDensity,
		})
	}
	nextISP := uint32(24 << 24)
	for i := 0; i < cfg.ISPs; i++ {
		nPrefixes := 2 + r.Intn(2)
		var prefixes []ipv4.Prefix
		for j := 0; j < nPrefixes; j++ {
			p, err := ipv4.NewPrefix(ipv4.Addr(nextISP), 13)
			if err != nil {
				panic(err) // unreachable: 13 is valid
			}
			prefixes = append(prefixes, p)
			nextISP += 1 << 19
		}
		orgs = append(orgs, Org{
			Name:             fmt.Sprintf("ISP-%c", 'A'+i),
			Kind:             BroadbandISP,
			Prefixes:         prefixes,
			EgressDrop:       cfg.ISPEgressDrop,
			InfectionDensity: cfg.ISPDensity,
		})
	}
	return orgs
}

// ApplyEgressPolicies installs each org's egress posture into env.
func ApplyEgressPolicies(env *Environment, orgs []Org) {
	for _, o := range orgs {
		if o.EgressDrop <= 0 {
			continue
		}
		for _, p := range o.Prefixes {
			env.AddEgressFilter(p, o.EgressDrop)
		}
	}
}
