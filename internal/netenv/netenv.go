// Package netenv models the environmental factors of the hotspots paper:
// the network conditions along the end-to-end path between an infected host
// and its target that bias propagation independently of the worm's own
// algorithm.
//
// Three factor classes are implemented:
//
//   - Routing and filtering policy: egress filters (enterprise firewalls
//     dropping outbound worm probes — Table 2) and ingress/upstream filters
//     (a provider blocking worm traffic toward a customer block — the reason
//     the paper's M sensor saw zero Slammer probes).
//   - Network failures and misconfiguration: a uniform probe-loss rate.
//   - Topology: NAT reachability semantics for hosts with RFC 1918
//     addresses (Section 5.3) — private hosts are reachable only from their
//     own site, while their outbound probes flow freely.
package netenv

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/rng"
)

// FilterRule drops probes whose relevant address falls in Prefix with
// probability Drop (1.0 = a hard block).
type FilterRule struct {
	Prefix ipv4.Prefix
	Drop   float64
}

// Environment is the set of environmental factors applied to every probe.
// The zero value is a perfectly transparent network. Not safe for
// concurrent mutation.
type Environment struct {
	egress  []FilterRule
	ingress []FilterRule

	// EgressPolicy and IngressPolicy, when non-nil, are longest-prefix-
	// match tables applied in addition to the flat rules: the most
	// specific rule covering the source (egress) or destination (ingress)
	// decides, so specific allows can punch holes in broad blocks.
	EgressPolicy  *PolicyTable
	IngressPolicy *PolicyTable

	// LossRate is the probability an arbitrary probe is lost to failures,
	// congestion, or misconfiguration. Prefer NewEnvironment or SetLossRate,
	// which validate the value; a NaN or out-of-range rate written directly
	// makes Bernoulli draws silently meaningless.
	LossRate float64
}

// NewEnvironment returns a transparent environment with the given loss
// rate, rejecting NaN and values outside [0,1]. Both boundaries are legal:
// 0 is a lossless network, 1 loses everything.
func NewEnvironment(lossRate float64) (*Environment, error) {
	e := &Environment{}
	if err := e.SetLossRate(lossRate); err != nil {
		return nil, err
	}
	return e, nil
}

// SetLossRate validates and sets the uniform loss rate.
func (e *Environment) SetLossRate(rate float64) error {
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return fmt.Errorf("netenv: loss rate %v outside [0,1]", rate)
	}
	e.LossRate = rate
	return nil
}

// AddEgressFilter drops probes originating inside prefix.
func (e *Environment) AddEgressFilter(prefix ipv4.Prefix, drop float64) {
	e.egress = append(e.egress, FilterRule{Prefix: prefix, Drop: drop})
	sortRules(e.egress)
}

// AddIngressFilter drops probes destined inside prefix (upstream/provider
// filtering, like the policy that blinded the M block to Slammer).
func (e *Environment) AddIngressFilter(prefix ipv4.Prefix, drop float64) {
	e.ingress = append(e.ingress, FilterRule{Prefix: prefix, Drop: drop})
	sortRules(e.ingress)
}

func sortRules(rules []FilterRule) {
	sort.Slice(rules, func(i, j int) bool {
		return rules[i].Prefix.First() < rules[j].Prefix.First()
	})
}

// Delivered reports whether a probe from src to dst survives the
// environment: egress policy at the source, ingress policy at the
// destination, and random loss. r drives the stochastic drops; determinism
// comes from the caller's seeded generator.
func (e *Environment) Delivered(src, dst ipv4.Addr, r *rng.Xoshiro) bool {
	if e.LossRate > 0 && r.Bernoulli(e.LossRate) {
		return false
	}
	for _, rule := range e.egress {
		if rule.Prefix.Contains(src) && r.Bernoulli(rule.Drop) {
			return false
		}
	}
	for _, rule := range e.ingress {
		if rule.Prefix.Contains(dst) && r.Bernoulli(rule.Drop) {
			return false
		}
	}
	if e.EgressPolicy != nil && r.Bernoulli(e.EgressPolicy.DropProbability(src)) {
		return false
	}
	if e.IngressPolicy != nil && r.Bernoulli(e.IngressPolicy.DropProbability(dst)) {
		return false
	}
	return true
}

// SourceView is the environment as seen from one fixed source address:
// every source-dependent factor (uniform loss, egress rules, egress
// policy) folded into a single survival probability, with only the
// destination-dependent factors left to evaluate per probe. The exact
// driver compiles one view per infected host at infection time and reuses
// it for every probe the host ever sends.
//
// A view is an immutable value over an environment that must not be
// mutated while in use; it is safe for concurrent Delivered calls as long
// as each goroutine supplies its own generator.
type SourceView struct {
	env *Environment
	// keep is the probability a probe survives the uniform loss rate, all
	// egress rules matching the source, and the egress policy — the
	// product of the individual survival probabilities, so one Bernoulli
	// draw is distributionally equivalent to the per-factor sequence.
	keep float64
}

// CompileSource folds the environment's source-dependent factors for src
// into a SourceView.
func (e *Environment) CompileSource(src ipv4.Addr) SourceView {
	keep := 1 - e.LossRate
	for _, rule := range e.egress {
		if rule.Prefix.Contains(src) {
			keep *= 1 - rule.Drop
		}
	}
	if e.EgressPolicy != nil {
		keep *= 1 - e.EgressPolicy.DropProbability(src)
	}
	return SourceView{env: e, keep: keep}
}

// Delivered reports whether a probe from the view's source to dst
// survives the environment. It consumes at most one draw for the folded
// source-side factors plus one draw per matching ingress rule, exactly
// like Environment.Delivered does for the destination side. r stays a
// concrete *rng.Xoshiro (not an interface) so the call neither escapes
// nor allocates on the driver's per-probe hot path.
func (v SourceView) Delivered(dst ipv4.Addr, r *rng.Xoshiro) bool {
	if !r.Bernoulli(v.keep) {
		return false
	}
	for _, rule := range v.env.ingress {
		if rule.Prefix.Contains(dst) && r.Bernoulli(rule.Drop) {
			return false
		}
	}
	if v.env.IngressPolicy != nil && r.Bernoulli(v.env.IngressPolicy.DropProbability(dst)) {
		return false
	}
	return true
}

// BlocksDeterministically reports whether dst is inside a hard (Drop == 1)
// ingress filter — useful for analytic fast paths that must not consume
// randomness.
func (e *Environment) BlocksDeterministically(dst ipv4.Addr) bool {
	for _, rule := range e.ingress {
		if rule.Drop >= 1 && rule.Prefix.Contains(dst) {
			return true
		}
	}
	return e.IngressPolicy != nil && e.IngressPolicy.DropProbability(dst) >= 1
}

// CanReach implements NAT topology semantics between two population hosts:
// a probe from host src can reach host dst when dst is public, or when both
// sit behind the same NAT site. (Egress from private space is unrestricted;
// inbound to private space requires being on the same network.)
func CanReach(src, dst population.Host) bool {
	if !dst.IsNATed() {
		return true
	}
	return src.Site == dst.Site
}
