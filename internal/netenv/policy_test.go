package netenv

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

func TestPolicyTableLPMOverride(t *testing.T) {
	// The classic structure flat lists cannot express: block a /8 but
	// allow one /16 inside it.
	p := NewPolicyTable()
	p.Add(ipv4.MustParsePrefix("10.0.0.0/8"), 1.0)
	p.Add(ipv4.MustParsePrefix("10.1.0.0/16"), 0.0)

	if got := p.DropProbability(ipv4.MustParseAddr("10.2.0.1")); got != 1 {
		t.Errorf("broad block drop = %v, want 1", got)
	}
	if got := p.DropProbability(ipv4.MustParseAddr("10.1.5.5")); got != 0 {
		t.Errorf("specific allow drop = %v, want 0", got)
	}
	if got := p.DropProbability(ipv4.MustParseAddr("11.0.0.1")); got != 0 {
		t.Errorf("unmatched drop = %v, want 0", got)
	}
	if _, ok := p.Verdict(ipv4.MustParseAddr("11.0.0.1")); ok {
		t.Error("unmatched address returned a verdict")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestPolicyTableClampsDrop(t *testing.T) {
	p := NewPolicyTable()
	p.Add(ipv4.MustParsePrefix("10.0.0.0/8"), 1.5)
	p.Add(ipv4.MustParsePrefix("11.0.0.0/8"), -0.5)
	if got := p.DropProbability(ipv4.MustParseAddr("10.0.0.1")); got != 1 {
		t.Errorf("clamped high = %v", got)
	}
	if got := p.DropProbability(ipv4.MustParseAddr("11.0.0.1")); got != 0 {
		t.Errorf("clamped low = %v", got)
	}
}

func TestEnvironmentWithIngressPolicy(t *testing.T) {
	var env Environment
	env.IngressPolicy = NewPolicyTable()
	env.IngressPolicy.Add(ipv4.MustParsePrefix("10.0.0.0/8"), 1.0)
	env.IngressPolicy.Add(ipv4.MustParsePrefix("10.1.0.0/16"), 0.0)

	r := rng.NewXoshiro(1)
	if env.Delivered(1, ipv4.MustParseAddr("10.2.0.1"), r) {
		t.Error("blocked destination delivered")
	}
	if !env.Delivered(1, ipv4.MustParseAddr("10.1.0.1"), r) {
		t.Error("allowed hole dropped")
	}
	if !env.BlocksDeterministically(ipv4.MustParseAddr("10.2.0.1")) {
		t.Error("hard LPM block not reported")
	}
	if env.BlocksDeterministically(ipv4.MustParseAddr("10.1.0.1")) {
		t.Error("allowed hole reported as blocked")
	}
}

func TestEnvironmentWithEgressPolicy(t *testing.T) {
	var env Environment
	env.EgressPolicy = NewPolicyTable()
	env.EgressPolicy.Add(ipv4.MustParsePrefix("144.0.0.0/16"), 0.8)

	r := rng.NewXoshiro(2)
	src := ipv4.MustParseAddr("144.0.5.5")
	const n = 20000
	delivered := 0
	for i := 0; i < n; i++ {
		if env.Delivered(src, 8, r) {
			delivered++
		}
	}
	frac := float64(delivered) / n
	if frac < 0.18 || frac > 0.22 {
		t.Errorf("delivery through 0.8 egress policy = %.3f, want ≈0.2", frac)
	}
	if !env.Delivered(ipv4.MustParseAddr("9.9.9.9"), 8, r) {
		t.Error("unmatched source dropped")
	}
}
