package netenv

import (
	"math"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/rng"
)

func TestTransparentEnvironmentDeliversEverything(t *testing.T) {
	var env Environment
	r := rng.NewXoshiro(1)
	for i := 0; i < 1000; i++ {
		if !env.Delivered(ipv4.Addr(i), ipv4.Addr(i*7), r) {
			t.Fatal("transparent environment dropped a probe")
		}
	}
}

func TestHardIngressFilter(t *testing.T) {
	var env Environment
	blocked := ipv4.MustParsePrefix("192.52.92.0/22")
	env.AddIngressFilter(blocked, 1.0)
	r := rng.NewXoshiro(2)
	for i := 0; i < 1000; i++ {
		dst := blocked.Nth(uint64(i % 1024))
		if env.Delivered(ipv4.MustParseAddr("1.2.3.4"), dst, r) {
			t.Fatal("hard-blocked destination received a probe")
		}
	}
	if !env.Delivered(ipv4.MustParseAddr("1.2.3.4"), ipv4.MustParseAddr("192.52.96.1"), r) {
		t.Error("destination outside filter dropped")
	}
	if !env.BlocksDeterministically(blocked.Nth(5)) {
		t.Error("BlocksDeterministically missed hard filter")
	}
	if env.BlocksDeterministically(ipv4.MustParseAddr("8.8.8.8")) {
		t.Error("BlocksDeterministically false positive")
	}
}

func TestEgressFilterDropRate(t *testing.T) {
	var env Environment
	corp := ipv4.MustParsePrefix("144.0.0.0/16")
	env.AddEgressFilter(corp, 0.9)
	r := rng.NewXoshiro(3)
	const n = 20000
	var delivered int
	for i := 0; i < n; i++ {
		if env.Delivered(corp.Nth(uint64(i%4096)), ipv4.MustParseAddr("8.8.8.8"), r) {
			delivered++
		}
	}
	frac := float64(delivered) / n
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("delivery rate through 0.9 egress filter = %.3f, want ≈0.1", frac)
	}
	// Sources outside the filter are untouched.
	for i := 0; i < 100; i++ {
		if !env.Delivered(ipv4.MustParseAddr("9.9.9.9"), ipv4.MustParseAddr("8.8.8.8"), r) {
			t.Fatal("unfiltered source dropped")
		}
	}
}

func TestLossRate(t *testing.T) {
	env := Environment{LossRate: 0.25}
	r := rng.NewXoshiro(4)
	const n = 40000
	var delivered int
	for i := 0; i < n; i++ {
		if env.Delivered(1, 2, r) {
			delivered++
		}
	}
	frac := float64(delivered) / n
	if frac < 0.73 || frac > 0.77 {
		t.Errorf("delivery under 25%% loss = %.3f, want ≈0.75", frac)
	}
}

func TestSoftIngressPartialDrop(t *testing.T) {
	var env Environment
	env.AddIngressFilter(ipv4.MustParsePrefix("10.0.0.0/8"), 0.5)
	if env.BlocksDeterministically(ipv4.MustParseAddr("10.1.1.1")) {
		t.Error("soft filter reported as deterministic block")
	}
	r := rng.NewXoshiro(5)
	var delivered int
	const n = 20000
	for i := 0; i < n; i++ {
		if env.Delivered(1, ipv4.MustParseAddr("10.1.1.1"), r) {
			delivered++
		}
	}
	frac := float64(delivered) / n
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("delivery through 0.5 filter = %.3f, want ≈0.5", frac)
	}
}

func TestCanReach(t *testing.T) {
	pub1 := population.Host{Addr: 100, Site: population.NoSite}
	pub2 := population.Host{Addr: 200, Site: population.NoSite}
	nat1a := population.Host{Addr: ipv4.MustParseAddr("192.168.0.5"), Site: 1}
	nat1b := population.Host{Addr: ipv4.MustParseAddr("192.168.0.9"), Site: 1}
	nat2 := population.Host{Addr: ipv4.MustParseAddr("192.168.0.5"), Site: 2}

	tests := []struct {
		name     string
		src, dst population.Host
		want     bool
	}{
		{name: "public-to-public", src: pub1, dst: pub2, want: true},
		{name: "nat-to-public", src: nat1a, dst: pub1, want: true},
		{name: "public-to-nat", src: pub1, dst: nat1a, want: false},
		{name: "same-site", src: nat1a, dst: nat1b, want: true},
		{name: "cross-site", src: nat2, dst: nat1a, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CanReach(tt.src, tt.dst); got != tt.want {
				t.Errorf("CanReach = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSynthesizeOrgs(t *testing.T) {
	cfg := DefaultOrgModel(1)
	orgs := SynthesizeOrgs(cfg)
	var ents, isps int
	all := &ipv4.Set{}
	var before uint64
	for _, o := range orgs {
		switch o.Kind {
		case Enterprise:
			ents++
			if o.EgressDrop < 0.9 {
				t.Errorf("%s: enterprise egress drop %.3f, want ≥0.9", o.Name, o.EgressDrop)
			}
		case BroadbandISP:
			isps++
			if o.EgressDrop != 0 {
				t.Errorf("%s: ISP egress drop %.3f, want 0", o.Name, o.EgressDrop)
			}
			if o.TotalAddrs() <= 1<<18 {
				t.Errorf("%s: ISP allocation %d too small", o.Name, o.TotalAddrs())
			}
		default:
			t.Errorf("unknown kind %v", o.Kind)
		}
		for _, p := range o.Prefixes {
			all.AddPrefix(p)
		}
		before += o.TotalAddrs()
	}
	if ents != cfg.Enterprises || isps != cfg.ISPs {
		t.Errorf("got %d enterprises / %d ISPs, want %d / %d", ents, isps, cfg.Enterprises, cfg.ISPs)
	}
	// No overlapping allocations: union size equals sum of sizes.
	if all.Size() != before {
		t.Errorf("allocations overlap: union %d != sum %d", all.Size(), before)
	}
}

func TestApplyEgressPolicies(t *testing.T) {
	orgs := SynthesizeOrgs(DefaultOrgModel(2))
	var env Environment
	ApplyEgressPolicies(&env, orgs)
	r := rng.NewXoshiro(3)

	var entSrc, ispSrc ipv4.Addr
	for _, o := range orgs {
		if o.Kind == Enterprise && entSrc == 0 {
			entSrc = o.Prefixes[0].Nth(77)
		}
		if o.Kind == BroadbandISP && ispSrc == 0 {
			ispSrc = o.Prefixes[0].Nth(77)
		}
	}
	var entOut, ispOut int
	const n = 5000
	for i := 0; i < n; i++ {
		if env.Delivered(entSrc, 8, r) {
			entOut++
		}
		if env.Delivered(ispSrc, 8, r) {
			ispOut++
		}
	}
	if entOut > n/100 {
		t.Errorf("enterprise leaked %d/%d probes, want ≈0.1%%", entOut, n)
	}
	if ispOut != n {
		t.Errorf("ISP delivered %d/%d probes, want all", ispOut, n)
	}
}

func TestOrgKindString(t *testing.T) {
	if Enterprise.String() != "enterprise" || BroadbandISP.String() != "broadband-isp" {
		t.Error("kind names wrong")
	}
	if OrgKind(9).String() != "OrgKind(9)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestLossRateValidation(t *testing.T) {
	// Both boundaries are legal configurations.
	for _, ok := range []float64{0, 1, 0.5} {
		env, err := NewEnvironment(ok)
		if err != nil || env == nil {
			t.Errorf("NewEnvironment(%v) rejected: %v", ok, err)
		}
	}
	for _, bad := range []float64{math.NaN(), -0.001, 1.001, math.Inf(1), math.Inf(-1)} {
		if _, err := NewEnvironment(bad); err == nil {
			t.Errorf("NewEnvironment(%v) accepted", bad)
		}
	}
	// Boundary semantics: 0 delivers everything, 1 delivers nothing.
	r := rng.NewXoshiro(1)
	lossless, _ := NewEnvironment(0)
	total, _ := NewEnvironment(1)
	for i := 0; i < 1000; i++ {
		if !lossless.Delivered(1, 2, r) {
			t.Fatal("loss rate 0 dropped a probe")
		}
		if total.Delivered(1, 2, r) {
			t.Fatal("loss rate 1 delivered a probe")
		}
	}
	// SetLossRate on an existing environment validates the same way.
	env := &Environment{}
	if err := env.SetLossRate(math.NaN()); err == nil {
		t.Error("SetLossRate(NaN) accepted")
	}
	if err := env.SetLossRate(0.25); err != nil || env.LossRate != 0.25 {
		t.Errorf("SetLossRate(0.25) failed: %v (rate %v)", err, env.LossRate)
	}
}
