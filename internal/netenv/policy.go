package netenv

import "repro/internal/ipv4"

// PolicyTable is a longest-prefix-match filtering table: the most specific
// rule covering an address decides its fate, as in real router/firewall
// policy. This allows "drop 10.0.0.0/8 except allow 10.1.0.0/16" — the
// structure flat filter lists cannot express.
type PolicyTable struct {
	trie *ipv4.Trie[PolicyVerdict]
}

// PolicyVerdict is a rule's action.
type PolicyVerdict struct {
	// Drop is the probability a matching probe is dropped (1 = hard
	// block, 0 = explicit allow).
	Drop float64
}

// NewPolicyTable returns an empty table (no rule matches anything).
func NewPolicyTable() *PolicyTable {
	return &PolicyTable{trie: ipv4.NewTrie[PolicyVerdict]()}
}

// Add installs a rule; the same prefix may be re-added to replace its
// verdict.
func (t *PolicyTable) Add(prefix ipv4.Prefix, drop float64) {
	if drop < 0 {
		drop = 0
	}
	if drop > 1 {
		drop = 1
	}
	t.trie.Insert(prefix, PolicyVerdict{Drop: drop})
}

// Verdict returns the most specific matching rule's verdict and whether any
// rule matched.
func (t *PolicyTable) Verdict(a ipv4.Addr) (PolicyVerdict, bool) {
	return t.trie.Lookup(a)
}

// DropProbability returns the effective drop probability for a (0 when no
// rule matches).
func (t *PolicyTable) DropProbability(a ipv4.Addr) float64 {
	v, ok := t.trie.Lookup(a)
	if !ok {
		return 0
	}
	return v.Drop
}

// Len returns the number of installed rules.
func (t *PolicyTable) Len() int { return t.trie.Len() }
