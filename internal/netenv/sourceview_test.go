package netenv

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// TestSourceViewTransparent: a transparent environment delivers everything
// and consumes no randomness.
func TestSourceViewTransparent(t *testing.T) {
	env := &Environment{}
	v := env.CompileSource(ipv4.MustParseAddr("1.2.3.4"))
	r := rng.NewXoshiro(1)
	before := *r
	for i := 0; i < 100; i++ {
		if !v.Delivered(ipv4.Addr(i*7919), r) {
			t.Fatalf("transparent view dropped probe %d", i)
		}
	}
	if *r != before {
		t.Fatal("transparent view consumed randomness")
	}
}

// TestSourceViewFoldsEgress: the folded keep probability must equal the
// product of the per-factor survival probabilities, and hard egress
// blocks must drop everything.
func TestSourceViewFoldsEgress(t *testing.T) {
	env := &Environment{}
	if err := env.SetLossRate(0.5); err != nil {
		t.Fatal(err)
	}
	src := ipv4.MustParseAddr("10.20.30.40")
	env.AddEgressFilter(ipv4.MustParsePrefix("10.0.0.0/8"), 0.5)
	env.AddEgressFilter(ipv4.MustParsePrefix("10.20.0.0/16"), 0.5)
	env.AddEgressFilter(ipv4.MustParsePrefix("99.0.0.0/8"), 1.0) // does not match src
	v := env.CompileSource(src)
	want := 0.5 * 0.5 * 0.5
	if diff := v.keep - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("keep = %v, want %v", v.keep, want)
	}

	hard := &Environment{}
	hard.AddEgressFilter(ipv4.MustParsePrefix("10.0.0.0/8"), 1.0)
	hv := hard.CompileSource(src)
	r := rng.NewXoshiro(2)
	for i := 0; i < 50; i++ {
		if hv.Delivered(ipv4.Addr(i), r) {
			t.Fatal("hard egress block delivered a probe")
		}
	}
}

// TestSourceViewMatchesEnvironmentDistribution: over many probes the view
// and Environment.Delivered must agree in delivery rate (they fold the
// same factors; the draw sequences differ, the distribution must not).
func TestSourceViewMatchesEnvironmentDistribution(t *testing.T) {
	env := &Environment{}
	if err := env.SetLossRate(0.2); err != nil {
		t.Fatal(err)
	}
	src := ipv4.MustParseAddr("10.20.30.40")
	dst := ipv4.MustParseAddr("200.1.2.3")
	env.AddEgressFilter(ipv4.MustParsePrefix("10.0.0.0/8"), 0.3)
	env.AddIngressFilter(ipv4.MustParsePrefix("200.0.0.0/8"), 0.25)

	const trials = 200000
	v := env.CompileSource(src)
	rv := rng.NewXoshiro(3)
	re := rng.NewXoshiro(4)
	var viewOK, envOK int
	for i := 0; i < trials; i++ {
		if v.Delivered(dst, rv) {
			viewOK++
		}
		if env.Delivered(src, dst, re) {
			envOK++
		}
	}
	want := 0.8 * 0.7 * 0.75
	for name, got := range map[string]int{"view": viewOK, "env": envOK} {
		frac := float64(got) / trials
		if frac < want-0.01 || frac > want+0.01 {
			t.Errorf("%s delivery rate %.4f, want %.4f ± 0.01", name, frac, want)
		}
	}
}

// TestSourceViewIngressOnlyDependsOnDst: two views over the same
// environment from different unfiltered sources apply identical
// destination-side filtering.
func TestSourceViewIngressOnlyDependsOnDst(t *testing.T) {
	env := &Environment{}
	env.AddIngressFilter(ipv4.MustParsePrefix("200.0.0.0/8"), 1.0)
	for _, src := range []string{"1.1.1.1", "2.2.2.2"} {
		v := env.CompileSource(ipv4.MustParseAddr(src))
		r := rng.NewXoshiro(5)
		if v.Delivered(ipv4.MustParseAddr("200.9.9.9"), r) {
			t.Errorf("src %s: hard ingress block delivered", src)
		}
		if !v.Delivered(ipv4.MustParseAddr("100.9.9.9"), r) {
			t.Errorf("src %s: unfiltered destination dropped", src)
		}
	}
}
