package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/worm"
)

// These tests guard the invariant the internal/lint suite exists to
// protect: a seed pins a run bit-for-bit. Two runs with identical configs
// must produce byte-identical serialized Series — not merely statistically
// similar ones — because every figure and table in the reproduction is
// diffed against golden output at this granularity.

// serializeSeries renders every field of every tick with exact float
// formatting, so any drift in any tick shows up as a byte difference.
func serializeSeries(t *testing.T, res *Result) string {
	t.Helper()
	out := ""
	for _, ti := range res.Series {
		out += fmt.Sprintf("%x %d %d %d\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes)
	}
	if out == "" {
		t.Fatal("empty series")
	}
	return out
}

func TestRunExactIsDeterministic(t *testing.T) {
	pop := smallPop(t, 400, 31)
	runOnce := func() string {
		res, err := RunExact(ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 120, SeedHosts: 8, Seed: 1234,
		})
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	first, second := runOnce(), runOnce()
	if first != second {
		t.Errorf("two RunExact runs with the same seed diverged:\nrun1:\n%srun2:\n%s", first, second)
	}
}

// TestTelemetryDoesNotPerturbRuns pins the tentpole guarantee of the obs
// layer: attaching a metrics registry and a clock consumes no randomness
// and changes no arithmetic, so a telemetry-on run is byte-identical to a
// telemetry-off run with the same seed — for both drivers — and two
// telemetry-on runs produce byte-identical metric snapshots.
func TestTelemetryDoesNotPerturbRuns(t *testing.T) {
	pop := smallPop(t, 400, 31)
	exact := func(reg *obs.Registry) string {
		cfg := ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
			Metrics: reg,
		}
		if reg != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	fast := func(reg *obs.Registry) string {
		cfg := FastConfig{
			Pop: pop, Model: NewCodeRedIIModel(),
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 5678,
			Metrics: reg,
		}
		if reg != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunFast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	if off, on := exact(nil), exact(regA); off != on {
		t.Errorf("RunExact diverged with telemetry attached:\noff:\n%son:\n%s", off, on)
	}
	if off, on := fast(nil), fast(regA); off != on {
		t.Errorf("RunFast diverged with telemetry attached:\noff:\n%son:\n%s", off, on)
	}
	exact(regB)
	fast(regB)

	snapshot := func(reg *obs.Registry) string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := snapshot(regA), snapshot(regB); a != b {
		t.Errorf("two same-seed runs produced different metric snapshots:\nA:\n%s\nB:\n%s", a, b)
	}
}

func TestRunFastIsDeterministic(t *testing.T) {
	pop := smallPop(t, 400, 31)
	model, err := NewLocalPrefModel(worm.NimdaPreference())
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() string {
		res, err := RunFast(FastConfig{
			Pop: pop, Model: model,
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 400, SeedHosts: 8, Seed: 5678,
		})
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	first, second := runOnce(), runOnce()
	if first != second {
		t.Errorf("two RunFast runs with the same seed diverged:\nrun1:\n%srun2:\n%s", first, second)
	}
}
