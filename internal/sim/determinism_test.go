package sim

import (
	"fmt"
	"testing"

	"repro/internal/worm"
)

// These tests guard the invariant the internal/lint suite exists to
// protect: a seed pins a run bit-for-bit. Two runs with identical configs
// must produce byte-identical serialized Series — not merely statistically
// similar ones — because every figure and table in the reproduction is
// diffed against golden output at this granularity.

// serializeSeries renders every field of every tick with exact float
// formatting, so any drift in any tick shows up as a byte difference.
func serializeSeries(t *testing.T, res *Result) string {
	t.Helper()
	out := ""
	for _, ti := range res.Series {
		out += fmt.Sprintf("%x %d %d %d\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes)
	}
	if out == "" {
		t.Fatal("empty series")
	}
	return out
}

func TestRunExactIsDeterministic(t *testing.T) {
	pop := smallPop(t, 400, 31)
	runOnce := func() string {
		res, err := RunExact(ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 120, SeedHosts: 8, Seed: 1234,
		})
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	first, second := runOnce(), runOnce()
	if first != second {
		t.Errorf("two RunExact runs with the same seed diverged:\nrun1:\n%srun2:\n%s", first, second)
	}
}

func TestRunFastIsDeterministic(t *testing.T) {
	pop := smallPop(t, 400, 31)
	model, err := NewLocalPrefModel(worm.NimdaPreference())
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() string {
		res, err := RunFast(FastConfig{
			Pop: pop, Model: model,
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 400, SeedHosts: 8, Seed: 5678,
		})
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	first, second := runOnce(), runOnce()
	if first != second {
		t.Errorf("two RunFast runs with the same seed diverged:\nrun1:\n%srun2:\n%s", first, second)
	}
}
