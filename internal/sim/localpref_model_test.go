package sim

import (
	"testing"

	"repro/internal/population"
	"repro/internal/worm"
)

func TestNewLocalPrefModelValidates(t *testing.T) {
	if _, err := NewLocalPrefModel(worm.Preference{Same8: 2}); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := NewLocalPrefModel(worm.CodeRedIIPreference()); err != nil {
		t.Errorf("CRII profile rejected: %v", err)
	}
}

func TestLocalPrefModelComponents(t *testing.T) {
	m, err := NewLocalPrefModel(worm.Preference{Same8: 0.25, Same16: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h := population.Host{Addr: 0x12345678, Site: population.NoSite}
	comps := m.Components(h)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (rest + /8 + /16)", len(comps))
	}
	var total float64
	for _, c := range comps {
		total += c.Weight
		if c.Private {
			t.Error("generic model produced a private component")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("weights sum to %v", total)
	}
	// Set sizes: full, /8, /16.
	if comps[0].Set.Size() != 1<<32 || comps[1].Set.Size() != 1<<24 || comps[2].Set.Size() != 1<<16 {
		t.Errorf("component set sizes wrong: %d %d %d",
			comps[0].Set.Size(), comps[1].Set.Size(), comps[2].Set.Size())
	}
	// Hosts sharing a /24 share a group and pointer-equal sets (caching).
	h2 := population.Host{Addr: 0x123456aa, Site: population.NoSite}
	if m.GroupKey(h) != m.GroupKey(h2) {
		t.Error("same-/24 hosts got different groups")
	}
	comps2 := m.Components(h2)
	if comps[1].Set != comps2[1].Set || comps[2].Set != comps2[2].Set {
		t.Error("component sets not cached/shared")
	}
}

func TestLocalPrefModelMatchesExactDriver(t *testing.T) {
	// Cross-validate the generic model against the probe-exact generic
	// scanner on a clustered population: growth must agree.
	pop := smallPop(t, 400, 31)
	prefs := worm.NimdaPreference()
	model, err := NewLocalPrefModel(prefs)
	if err != nil {
		t.Fatal(err)
	}
	stop := pop.Size() * 6 / 10
	exact := func(seed uint64) *Result {
		res, err := RunExact(ExactConfig{
			Pop: pop, Factory: worm.LocalPreferenceFactory{Prefs: prefs},
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 2000, SeedHosts: 8, Seed: seed,
			StopWhenInfected: stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := func(seed uint64) *Result {
		res, err := RunFast(FastConfig{
			Pop: pop, Model: model,
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 2000, SeedHosts: 8, Seed: seed,
			StopWhenInfected: stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	te := epidemicHalfTime(t, exact, 5)
	tf := epidemicHalfTime(t, fast, 5)
	if r := te / tf; r < 0.65 || r > 1.55 {
		t.Errorf("half-time exact %.0fs vs fast %.0fs (ratio %.2f)", te, tf, r)
	}
}
