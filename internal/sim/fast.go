package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/trace"
)

// FastConfig configures the aggregated driver.
type FastConfig struct {
	// Pop is the vulnerable population.
	Pop *population.Population
	// Model decomposes the scanner into mixture components.
	Model RateModel
	// ScanRate is probes per second per infected host; TickSeconds the
	// step; MaxSeconds the horizon.
	ScanRate    float64
	TickSeconds float64
	MaxSeconds  float64
	// SeedHosts initially infected hosts, drawn uniformly.
	SeedHosts int
	// Seed drives all randomness.
	Seed uint64
	// LossRate is the environmental probe-loss probability.
	LossRate float64
	// BlockedDst is destination space hard-blocked upstream (probes there
	// are always lost). May be nil.
	BlockedDst *ipv4.Set
	// Sensors receives monitored probes; SensorSet is the union of
	// monitored space and must be set when Sensors is.
	Sensors   HitRecorder
	SensorSet *ipv4.Set
	// OnTick, when non-nil, is called each tick; returning false stops.
	OnTick func(TickInfo) bool
	// StopWhenInfected stops once this many hosts are infected (0=never).
	StopWhenInfected int
	// Containment, when non-nil, models a coordinated response (Internet
	// quarantine): once Trigger returns true the policy engages and every
	// subsequent probe is dropped with probability Drop.
	Containment *Containment
	// Metrics, when non-nil, receives per-tick probe-outcome counters and
	// run gauges (see DESIGN.md for the metric-name contract). Attaching a
	// registry never perturbs the run: telemetry draws no randomness.
	Metrics *obs.Registry
	// MetricLabels are extra label pairs ("k1", "v1", …) appended to every
	// series this run registers. Runs sharing one registry — concurrent
	// sweep points in particular — must set distinct labels here, or their
	// counters aggregate indistinguishably and gauges become
	// last-writer-wins.
	MetricLabels []string
	// Clock, when non-nil, is set to the tick's simulated time at the
	// start of each tick, so observers (sensor fleets, tracers) timestamp
	// events in simulated seconds.
	Clock *obs.SimClock
	// Faults, when non-nil, injects the plan's sensor outages, bursty
	// loss, and degraded reporting into the run (misconfiguration is
	// applied when LossRate/BlockedDst are derived, not here). The plan's
	// horizon must cover MaxSeconds. The burst channel scales each tick's
	// delivery probability; sensor draws landing on withdrawn blocks are
	// OutcomeSensorDown and never reach Sensors.
	Faults *faults.Plan
	// Trace, when non-nil, receives the run's flight-recorder events.
	// The fast driver draws infections in aggregate, so its edges carry
	// no infector (Agent -1) and are attributed to the mixture component
	// that drew them (Vector "c0", "c1", … in the model's component
	// order). Attaching a recorder draws no randomness and never perturbs
	// the run (DESIGN.md §12).
	Trace *trace.Recorder
}

// Containment is a global response policy: detection-triggered filtering
// of the worm's traffic (Moore et al.'s "Internet quarantine" model). The
// paper's closing argument — local detection matters because it triggers
// response *early* — is quantified by wiring a detector fleet's alert state
// into Trigger.
type Containment struct {
	// Trigger is evaluated after every tick; once it returns true the
	// policy engages permanently.
	Trigger func() bool
	// Drop is the per-probe drop probability once engaged.
	Drop float64
	// engaged latches the trigger; EngagedAt records the simulated time.
	engaged   bool
	EngagedAt float64
}

// Engaged reports whether the policy has triggered.
func (c *Containment) Engaged() bool { return c.engaged }

func (c *FastConfig) validate() error {
	if c.Pop == nil || c.Pop.Size() == 0 {
		return errors.New("sim: empty population")
	}
	if c.Model == nil {
		return errors.New("sim: nil rate model")
	}
	if err := checkTiming(c.ScanRate, c.TickSeconds, c.MaxSeconds); err != nil {
		return err
	}
	if c.ScanRate*c.TickSeconds > maxProbesPerHostTick {
		return fmt.Errorf("sim: %v probes per host per tick exceeds the %v cap", c.ScanRate*c.TickSeconds, float64(maxProbesPerHostTick))
	}
	if c.SeedHosts <= 0 || c.SeedHosts > c.Pop.Size() {
		return fmt.Errorf("sim: seed hosts %d out of range", c.SeedHosts)
	}
	if c.Sensors != nil && c.SensorSet == nil {
		return errors.New("sim: Sensors set but SensorSet missing")
	}
	if math.IsNaN(c.LossRate) || c.LossRate < 0 || c.LossRate >= 1 {
		return errors.New("sim: loss rate out of [0,1)")
	}
	if c.Containment != nil {
		if c.Containment.Trigger == nil {
			return errors.New("sim: containment without a trigger")
		}
		if math.IsNaN(c.Containment.Drop) || c.Containment.Drop < 0 || c.Containment.Drop > 1 {
			return errors.New("sim: containment drop out of [0,1]")
		}
	}
	if err := checkFaultHorizon(c.Faults, c.MaxSeconds); err != nil {
		return err
	}
	return nil
}

// fastComp is one precomputed mixture component of a group. The victim
// pool lives in the shared compData and is compacted as hosts get
// infected, so the per-draw infection rate is weightOverSet times the
// *live* pool length — Poisson thinning of the full-pool rate, which is
// distributionally equivalent to drawing at the full rate and rejecting
// infected victims, without the late-epidemic rejection waste.
type fastComp struct {
	weightOverSet float64 // component weight divided by the set's address count
	pSensor       float64 // per-probe probability of landing on monitored space
	data          *compData
	sensors       *ipv4.Set
}

// fastGroup aggregates infected hosts sharing a mixture. Its components
// are the span [off, off+n) of fastState.comps — one flat slice for all
// groups instead of a per-group allocation.
type fastGroup struct {
	off, n   int32
	infected int
}

// fastState carries the driver's caches.
type fastState struct {
	cfg    FastConfig
	pop    *population.Population
	r      *rng.Xoshiro
	groups map[uint64]*fastGroup
	// groupList holds groups in creation order: per-tick processing must
	// not follow map iteration order, or same-seed runs would diverge.
	groupList []*fastGroup
	// comps is the flattened component storage shared by every group.
	// Groups address it by span, never by pointer: buildComps may grow
	// (and reallocate) it while a tick's draws are in flight.
	comps []fastComp

	// publicAddrs/publicIDs are sorted by address for pool construction.
	publicAddrs []ipv4.Addr
	publicIDs   []int32
	// sitePools maps a NAT site to its member ids.
	sitePools map[int][]int32
	// compCache memoizes per-(set,site) component data.
	compCache map[compKey]*compData

	// infected mirrors the driver's infection state; pools exclude
	// infected hosts (newly built pools at construction, existing pools
	// via end-of-tick compaction).
	infected []bool
	// memb is the pool-membership registry: memb[id] locates host id's
	// slot in every victim pool that contains it, so compaction can
	// swap-remove in O(memberships).
	memb []hostPools
	// membSpill holds the rare hosts belonging to more pools than the
	// inline registry entries can hold.
	membSpill map[int32][]poolRef
	// newlyInf accumulates hosts infected during the current tick; pools
	// compact between ticks so pool lengths stay stable mid-tick.
	newlyInf []int32
}

type compKey struct {
	set  *ipv4.Set
	site int
}

type compData struct {
	pool        []int32 // live (uninfected) candidate victim host ids
	sensorInter *ipv4.Set
	sensorSize  uint64
	setSize     uint64
}

// poolRef locates one host's slot in one shared victim pool.
type poolRef struct {
	data *compData
	pos  int32
}

// hostPools is one host's registry entry. The inline array covers the
// common case — under the local-preference models a host belongs to at
// most four components (full space plus its own /8, /16, /24); anything
// beyond spills to fastState.membSpill.
type hostPools struct {
	n       uint8
	entries [4]poolRef
}

// register records that pool d holds id at slot pos.
func (st *fastState) register(id int32, d *compData, pos int32) {
	hp := &st.memb[id]
	if hp.n < uint8(len(hp.entries)) {
		hp.entries[hp.n] = poolRef{data: d, pos: pos}
		hp.n++
		return
	}
	if st.membSpill == nil {
		st.membSpill = make(map[int32][]poolRef)
	}
	st.membSpill[id] = append(st.membSpill[id], poolRef{data: d, pos: pos})
}

// removeFromPools swap-removes a freshly infected host from every victim
// pool it belongs to, patching the moved element's registry entry.
func (st *fastState) removeFromPools(id int32) {
	hp := &st.memb[id]
	for i := uint8(0); i < hp.n; i++ {
		st.removeAt(hp.entries[i].data, hp.entries[i].pos, id)
	}
	hp.n = 0
	if st.membSpill != nil {
		if extra, ok := st.membSpill[id]; ok {
			for _, e := range extra {
				st.removeAt(e.data, e.pos, id)
			}
			delete(st.membSpill, id)
		}
	}
}

// removeAt deletes pool slot pos (holding id) by swapping in the last
// element and shrinking the pool.
func (st *fastState) removeAt(d *compData, pos, id int32) {
	last := int32(len(d.pool) - 1)
	moved := d.pool[last]
	d.pool[pos] = moved
	d.pool = d.pool[:last]
	if moved != id {
		st.updatePos(moved, d, pos)
	}
}

// updatePos rewrites moved's registry entry for pool d to slot pos.
func (st *fastState) updatePos(moved int32, d *compData, pos int32) {
	hp := &st.memb[moved]
	for i := uint8(0); i < hp.n; i++ {
		if hp.entries[i].data == d {
			hp.entries[i].pos = pos
			return
		}
	}
	refs := st.membSpill[moved]
	for j := range refs {
		if refs[j].data == d {
			refs[j].pos = pos
			return
		}
	}
}

// RunFast runs the aggregated simulation.
func RunFast(cfg FastConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := &fastState{
		cfg:       cfg,
		pop:       cfg.Pop,
		r:         rng.NewXoshiro(cfg.Seed),
		groups:    make(map[uint64]*fastGroup),
		sitePools: make(map[int][]int32),
		compCache: make(map[compKey]*compData),
	}
	st.indexHosts()

	n := cfg.Pop.Size()
	st.infected = make([]bool, n)
	st.memb = make([]hostPools, n)
	infected := st.infected
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	total := 0
	infect := func(id int32, t float64) {
		if infected[id] {
			return
		}
		infected[id] = true
		infTime[id] = t
		total++
		st.newlyInf = append(st.newlyInf, id)
		h := st.pop.Host(int(id))
		key := cfg.Model.GroupKey(h)
		g, ok := st.groups[key]
		if !ok {
			off, cnt := st.buildComps(h)
			g = &fastGroup{off: off, n: cnt}
			st.groups[key] = g
			st.groupList = append(st.groupList, g)
		}
		g.infected++
	}
	// compact drains the freshly infected into the pool registry: called
	// between ticks (and after seeding) so pool lengths never move while
	// a tick's draws are in flight.
	compact := func() {
		for _, id := range st.newlyInf {
			st.removeFromPools(id)
		}
		st.newlyInf = st.newlyInf[:0]
	}
	rec := cfg.Trace
	rec.Append(trace.Event{Tick: 0, T: 0, Kind: trace.KindPhase, Agent: -1, Victim: -1, Vector: "start", Detail: "fast"})
	for _, id := range st.r.SampleWithoutReplacement(n, cfg.SeedHosts) {
		infect(int32(id), 0)
		rec.AppendInfection(0, 0, -1, id, uint32(st.pop.Host(id).Addr), "seed")
	}
	compact()
	// compVec caches the per-component attribution labels ("c0", "c1", …)
	// so traced runs do not re-render them per infection.
	var compVec []string
	vecName := func(ci int32) string {
		for int(ci) >= len(compVec) {
			compVec = append(compVec, fmt.Sprintf("c%d", len(compVec)))
		}
		return compVec[ci]
	}

	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	res := &Result{InfectionTime: infTime, Series: make([]TickInfo, 0, steps)}
	metrics := newSimMetrics(cfg.Metrics, "fast", cfg.MetricLabels)
	metrics.attachFaults(cfg.Metrics, cfg.Faults, "fast", cfg.MetricLabels)

	// Degraded reporting interposes between the wire and Sensors: hits are
	// queued at observation time and delivered (possibly duplicated) when
	// the simulated clock passes their due time.
	recordHit := func(dst ipv4.Addr) {}
	if cfg.Sensors != nil {
		recordHit = cfg.Sensors.RecordHit
	}
	var reporter *faults.Reporter
	if cfg.Sensors != nil {
		if reporter = cfg.Faults.NewReporter(func(_, dst ipv4.Addr) { cfg.Sensors.RecordHit(dst) }); reporter != nil {
			recordHit = reporter.RecordHit
		}
	}

	baseDeliver := 1 - cfg.LossRate
	deliver := baseDeliver
	// groupSnap buffers per-tick group intensities so infections during a
	// tick do not feed back into the same tick (matching the exact driver,
	// where new agents start probing on the next tick). The buffer is
	// preallocated once and reused across ticks.
	type snap struct {
		g *fastGroup
		p float64 // expected probes this tick
	}
	snaps := make([]snap, 0, 64)
	var faultCursor faults.TraceCursor
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)
		if reporter != nil {
			reporter.Advance(t)
		}
		faultCursor.Observe(rec, cfg.Faults, step, t)
		// The burst channel multiplies this tick's delivery probability:
		// expected hit counts shrink by the channel's current loss exactly
		// as the exact driver's per-probe Bernoulli would on average.
		burstLoss := cfg.Faults.BurstLoss(t)
		tickDeliver := deliver * (1 - burstLoss)
		snaps = snaps[:0]
		var probes float64
		for _, g := range st.groupList {
			if g.infected == 0 {
				continue
			}
			p := float64(g.infected) * cfg.ScanRate * cfg.TickSeconds
			probes += p
			snaps = append(snaps, snap{g: g, p: p})
		}
		var newInf int
		var sensorDraws, sensorDown uint64
		for _, s := range snaps {
			g := s.g
			for ci := int32(0); ci < g.n; ci++ {
				// Copy the component by value: infections during these
				// draws can create new groups, growing (and possibly
				// reallocating) st.comps mid-loop. Pool lengths are stable
				// within a tick — compaction runs between ticks — so the
				// live length read here prices the whole tick's draws.
				comp := st.comps[g.off+ci]
				if pool := comp.data.pool; len(pool) > 0 && comp.weightOverSet > 0 {
					hits := st.r.Poisson(s.p * comp.weightOverSet * float64(len(pool)) * tickDeliver)
					for i := uint64(0); i < hits; i++ {
						victim := pool[st.r.Intn(len(pool))]
						// Hosts infected earlier this tick stay in the
						// pool until the tick-end compaction; rejecting
						// them here keeps the no-same-tick-feedback rule.
						if !infected[victim] {
							infect(victim, t)
							newInf++
							rec.AppendInfection(step, t, -1, int(victim),
								uint32(st.pop.Host(int(victim)).Addr), vecName(ci))
						}
					}
				}
				if cfg.Sensors != nil && comp.pSensor > 0 {
					hits := st.r.Poisson(s.p * comp.pSensor * tickDeliver)
					for i := uint64(0); i < hits; i++ {
						dst := comp.sensors.Select(st.r.Uint64n(comp.sensors.Size()))
						if cfg.Faults.SensorDown(dst, t) {
							// Delivered to withdrawn monitored space: the
							// wire carried it but no sensor was listening.
							sensorDown++
							continue
						}
						sensorDraws++
						recordHit(dst)
					}
				}
			}
		}
		compact()
		probesEmitted, outcomes := closeFastTickOutcomes(probes, newInf, sensorDraws, sensorDown, deliver, burstLoss)
		info := TickInfo{Time: t, Infected: total, NewInfections: newInf, Probes: probesEmitted, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		if rec != nil {
			rec.Append(trace.Event{Tick: step, T: t, Kind: trace.KindProbes, Agent: -1, Victim: -1,
				N: probesEmitted, Detail: outcomes.String()})
		}
		metrics.flushTick(info)
		metrics.flushFaults(cfg.Faults, t)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && total >= cfg.StopWhenInfected {
			break
		}
		if c := cfg.Containment; c != nil && !c.engaged && c.Trigger != nil && c.Trigger() {
			c.engaged = true
			c.EngagedAt = t
			deliver = baseDeliver * (1 - c.Drop)
		}
	}
	if reporter != nil {
		// End of run: deliver everything still in flight so detection sees
		// every observation exactly as a real collector drain would.
		reporter.Flush()
	}
	rec.Append(trace.Event{Tick: len(res.Series), T: res.Final.Time, Kind: trace.KindPhase,
		Agent: -1, Victim: -1, Vector: "end", Detail: "fast", N: uint64(res.Final.Infected)})
	return res, nil
}

// closeFastTickOutcomes closes one fast-driver tick's probe accounting.
// Infections, sensor hits, and sensor-down landings are the realized draws
// from the tick loop; the burst-loss and loss/containment shares are closed
// with their expectations, and delivered absorbs the residual. Realized
// Poisson draws are not bounded by the tick's expected probe count — in a
// small-probes tick they can overshoot it — so the probe total widens to
// the realized sum in that case, keeping the conservation invariant
// Outcomes.Total() == Probes unconditional.
func closeFastTickOutcomes(probes float64, newInf int, sensorDraws, sensorDown uint64, deliver, burstLoss float64) (uint64, OutcomeCounts) {
	var outcomes OutcomeCounts
	outcomes[OutcomeInfection] = uint64(newInf)
	outcomes[OutcomeSensorHit] = sensorDraws
	outcomes[OutcomeSensorDown] = sensorDown
	probesEmitted := uint64(probes)
	used := outcomes[OutcomeInfection] + outcomes[OutcomeSensorHit] + outcomes[OutcomeSensorDown]
	if used > probesEmitted {
		probesEmitted = used
	}
	rest := probesEmitted - used
	burstLost := uint64(probes*burstLoss + 0.5)
	if burstLost > rest {
		burstLost = rest
	}
	outcomes[OutcomeBurstLost] = burstLost
	rest -= burstLost
	filtered := uint64(probes*(1-burstLoss)*(1-deliver) + 0.5)
	if filtered > rest {
		filtered = rest
	}
	outcomes[OutcomeFiltered] = filtered
	outcomes[OutcomeDelivered] = rest - filtered
	return probesEmitted, outcomes
}

// indexHosts builds the sorted public-address index and per-site pools.
func (st *fastState) indexHosts() {
	n := st.pop.Size()
	type entry struct {
		addr ipv4.Addr
		id   int32
	}
	entries := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		h := st.pop.Host(i)
		if h.IsNATed() {
			st.sitePools[h.Site] = append(st.sitePools[h.Site], int32(i))
			continue
		}
		entries = append(entries, entry{addr: h.Addr, id: int32(i)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].addr < entries[j].addr })
	st.publicAddrs = make([]ipv4.Addr, len(entries))
	st.publicIDs = make([]int32, len(entries))
	for i, e := range entries {
		st.publicAddrs[i] = e.addr
		st.publicIDs[i] = e.id
	}
}

// buildComps materializes the fast components for a host's group into the
// shared flattened comps slice, returning the group's [off, off+n) span.
func (st *fastState) buildComps(h population.Host) (off, n int32) {
	comps := st.cfg.Model.Components(h)
	off = int32(len(st.comps))
	for _, c := range comps {
		site := population.NoSite
		if c.Private {
			site = h.Site
		}
		data := st.compData(c.Set, site)
		setSize := float64(data.setSize)
		fc := fastComp{data: data}
		if setSize > 0 {
			fc.weightOverSet = c.Weight / setSize
		}
		if !c.Private && st.cfg.Sensors != nil && data.sensorSize > 0 && setSize > 0 {
			fc.pSensor = c.Weight * float64(data.sensorSize) / setSize
			fc.sensors = data.sensorInter
		}
		st.comps = append(st.comps, fc)
	}
	return off, int32(len(st.comps)) - off
}

// compData computes (and caches) the victim pool and sensor intersection
// for a component set, optionally restricted to one NAT site. Pools built
// mid-run exclude hosts that are already infected — equivalent to
// building the full pool and compacting it on the spot — and every pool
// slot is recorded in the membership registry for later compaction.
func (st *fastState) compData(set *ipv4.Set, site int) *compData {
	key := compKey{set: set, site: site}
	if d, ok := st.compCache[key]; ok {
		return d
	}
	d := &compData{setSize: set.Size()}
	add := func(id int32) {
		d.pool = append(d.pool, id)
		st.register(id, d, int32(len(d.pool)-1))
	}
	if site != population.NoSite {
		// Private component: pool is the site's members whose private
		// address falls in the set; every pool address is reachable.
		for _, id := range st.sitePools[site] {
			if !st.infected[id] && set.Contains(st.pop.Host(int(id)).Addr) {
				add(id)
			}
		}
		st.compCache[key] = d
		return d
	}
	// Public component: binary-search the sorted address index per
	// interval, excluding hard-blocked destinations.
	for _, iv := range set.Intervals() {
		lo := sort.Search(len(st.publicAddrs), func(i int) bool { return st.publicAddrs[i] >= iv.Lo })
		for i := lo; i < len(st.publicAddrs) && st.publicAddrs[i] <= iv.Hi; i++ {
			if st.infected[st.publicIDs[i]] {
				continue
			}
			if st.cfg.BlockedDst != nil && st.cfg.BlockedDst.Contains(st.publicAddrs[i]) {
				continue
			}
			add(st.publicIDs[i])
		}
	}
	if st.cfg.Sensors != nil && st.cfg.SensorSet != nil {
		inter := st.cfg.SensorSet.Intersect(set)
		if st.cfg.BlockedDst != nil {
			inter = inter.Subtract(st.cfg.BlockedDst)
		}
		d.sensorInter = inter
		d.sensorSize = inter.Size()
	}
	st.compCache[key] = d
	return d
}
