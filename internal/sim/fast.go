package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
)

// FastConfig configures the aggregated driver.
type FastConfig struct {
	// Pop is the vulnerable population.
	Pop *population.Population
	// Model decomposes the scanner into mixture components.
	Model RateModel
	// ScanRate is probes per second per infected host; TickSeconds the
	// step; MaxSeconds the horizon.
	ScanRate    float64
	TickSeconds float64
	MaxSeconds  float64
	// SeedHosts initially infected hosts, drawn uniformly.
	SeedHosts int
	// Seed drives all randomness.
	Seed uint64
	// LossRate is the environmental probe-loss probability.
	LossRate float64
	// BlockedDst is destination space hard-blocked upstream (probes there
	// are always lost). May be nil.
	BlockedDst *ipv4.Set
	// Sensors receives monitored probes; SensorSet is the union of
	// monitored space and must be set when Sensors is.
	Sensors   HitRecorder
	SensorSet *ipv4.Set
	// OnTick, when non-nil, is called each tick; returning false stops.
	OnTick func(TickInfo) bool
	// StopWhenInfected stops once this many hosts are infected (0=never).
	StopWhenInfected int
	// Containment, when non-nil, models a coordinated response (Internet
	// quarantine): once Trigger returns true the policy engages and every
	// subsequent probe is dropped with probability Drop.
	Containment *Containment
	// Metrics, when non-nil, receives per-tick probe-outcome counters and
	// run gauges (see DESIGN.md for the metric-name contract). Attaching a
	// registry never perturbs the run: telemetry draws no randomness.
	Metrics *obs.Registry
	// MetricLabels are extra label pairs ("k1", "v1", …) appended to every
	// series this run registers. Runs sharing one registry — concurrent
	// sweep points in particular — must set distinct labels here, or their
	// counters aggregate indistinguishably and gauges become
	// last-writer-wins.
	MetricLabels []string
	// Clock, when non-nil, is set to the tick's simulated time at the
	// start of each tick, so observers (sensor fleets, tracers) timestamp
	// events in simulated seconds.
	Clock *obs.SimClock
	// Faults, when non-nil, injects the plan's sensor outages, bursty
	// loss, and degraded reporting into the run (misconfiguration is
	// applied when LossRate/BlockedDst are derived, not here). The plan's
	// horizon must cover MaxSeconds. The burst channel scales each tick's
	// delivery probability; sensor draws landing on withdrawn blocks are
	// OutcomeSensorDown and never reach Sensors.
	Faults *faults.Plan
}

// Containment is a global response policy: detection-triggered filtering
// of the worm's traffic (Moore et al.'s "Internet quarantine" model). The
// paper's closing argument — local detection matters because it triggers
// response *early* — is quantified by wiring a detector fleet's alert state
// into Trigger.
type Containment struct {
	// Trigger is evaluated after every tick; once it returns true the
	// policy engages permanently.
	Trigger func() bool
	// Drop is the per-probe drop probability once engaged.
	Drop float64
	// engaged latches the trigger; EngagedAt records the simulated time.
	engaged   bool
	EngagedAt float64
}

// Engaged reports whether the policy has triggered.
func (c *Containment) Engaged() bool { return c.engaged }

func (c *FastConfig) validate() error {
	if c.Pop == nil || c.Pop.Size() == 0 {
		return errors.New("sim: empty population")
	}
	if c.Model == nil {
		return errors.New("sim: nil rate model")
	}
	if c.ScanRate <= 0 || c.TickSeconds <= 0 || c.MaxSeconds <= 0 {
		return errors.New("sim: rates and durations must be positive")
	}
	if c.SeedHosts <= 0 || c.SeedHosts > c.Pop.Size() {
		return fmt.Errorf("sim: seed hosts %d out of range", c.SeedHosts)
	}
	if c.Sensors != nil && c.SensorSet == nil {
		return errors.New("sim: Sensors set but SensorSet missing")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return errors.New("sim: loss rate out of [0,1)")
	}
	if c.Containment != nil {
		if c.Containment.Trigger == nil {
			return errors.New("sim: containment without a trigger")
		}
		if c.Containment.Drop < 0 || c.Containment.Drop > 1 {
			return errors.New("sim: containment drop out of [0,1]")
		}
	}
	if err := checkFaultHorizon(c.Faults, c.MaxSeconds); err != nil {
		return err
	}
	return nil
}

// fastComp is one precomputed mixture component of a group.
type fastComp struct {
	pVuln   float64 // per-probe probability of hitting a reachable vulnerable address
	pSensor float64 // per-probe probability of landing on monitored space
	pool    []int32 // candidate victim host ids
	sensors *ipv4.Set
}

// fastGroup aggregates infected hosts sharing a mixture.
type fastGroup struct {
	comps    []fastComp
	infected int
}

// fastState carries the driver's caches.
type fastState struct {
	cfg    FastConfig
	pop    *population.Population
	r      *rng.Xoshiro
	groups map[uint64]*fastGroup
	// groupList holds groups in creation order: per-tick processing must
	// not follow map iteration order, or same-seed runs would diverge.
	groupList []*fastGroup

	// publicAddrs/publicIDs are sorted by address for pool construction.
	publicAddrs []ipv4.Addr
	publicIDs   []int32
	// sitePools maps a NAT site to its member ids.
	sitePools map[int][]int32
	// compCache memoizes per-(set,site) component data.
	compCache map[compKey]*compData
}

type compKey struct {
	set  *ipv4.Set
	site int
}

type compData struct {
	pool        []int32
	poolInSet   uint64 // reachable vulnerable addresses inside the set
	sensorInter *ipv4.Set
	sensorSize  uint64
	setSize     uint64
}

// RunFast runs the aggregated simulation.
func RunFast(cfg FastConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	st := &fastState{
		cfg:       cfg,
		pop:       cfg.Pop,
		r:         rng.NewXoshiro(cfg.Seed),
		groups:    make(map[uint64]*fastGroup),
		sitePools: make(map[int][]int32),
		compCache: make(map[compKey]*compData),
	}
	st.indexHosts()

	n := cfg.Pop.Size()
	infected := make([]bool, n)
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	total := 0
	infect := func(id int32, t float64) {
		if infected[id] {
			return
		}
		infected[id] = true
		infTime[id] = t
		total++
		h := st.pop.Host(int(id))
		key := cfg.Model.GroupKey(h)
		g, ok := st.groups[key]
		if !ok {
			g = &fastGroup{comps: st.buildComps(h)}
			st.groups[key] = g
			st.groupList = append(st.groupList, g)
		}
		g.infected++
	}
	for _, id := range st.r.SampleWithoutReplacement(n, cfg.SeedHosts) {
		infect(int32(id), 0)
	}

	res := &Result{InfectionTime: infTime}
	metrics := newSimMetrics(cfg.Metrics, "fast", cfg.MetricLabels)
	metrics.attachFaults(cfg.Metrics, cfg.Faults, "fast", cfg.MetricLabels)

	// Degraded reporting interposes between the wire and Sensors: hits are
	// queued at observation time and delivered (possibly duplicated) when
	// the simulated clock passes their due time.
	recordHit := func(dst ipv4.Addr) {}
	if cfg.Sensors != nil {
		recordHit = cfg.Sensors.RecordHit
	}
	var reporter *faults.Reporter
	if cfg.Sensors != nil {
		if reporter = cfg.Faults.NewReporter(func(_, dst ipv4.Addr) { cfg.Sensors.RecordHit(dst) }); reporter != nil {
			recordHit = reporter.RecordHit
		}
	}

	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	baseDeliver := 1 - cfg.LossRate
	deliver := baseDeliver
	// groupSnap buffers per-tick group intensities so infections during a
	// tick do not feed back into the same tick (matching the exact driver,
	// where new agents start probing on the next tick).
	type snap struct {
		g *fastGroup
		p float64 // expected probes this tick
	}
	var snaps []snap
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)
		if reporter != nil {
			reporter.Advance(t)
		}
		// The burst channel multiplies this tick's delivery probability:
		// expected hit counts shrink by the channel's current loss exactly
		// as the exact driver's per-probe Bernoulli would on average.
		burstLoss := cfg.Faults.BurstLoss(t)
		tickDeliver := deliver * (1 - burstLoss)
		snaps = snaps[:0]
		var probes float64
		for _, g := range st.groupList {
			if g.infected == 0 {
				continue
			}
			p := float64(g.infected) * cfg.ScanRate * cfg.TickSeconds
			probes += p
			snaps = append(snaps, snap{g: g, p: p})
		}
		var newInf int
		var sensorDraws, sensorDown uint64
		for _, s := range snaps {
			for ci := range s.g.comps {
				comp := &s.g.comps[ci]
				if len(comp.pool) > 0 && comp.pVuln > 0 {
					hits := st.r.Poisson(s.p * comp.pVuln * tickDeliver)
					for i := uint64(0); i < hits; i++ {
						victim := comp.pool[st.r.Intn(len(comp.pool))]
						if !infected[victim] {
							infect(victim, t)
							newInf++
						}
					}
				}
				if cfg.Sensors != nil && comp.pSensor > 0 {
					hits := st.r.Poisson(s.p * comp.pSensor * tickDeliver)
					for i := uint64(0); i < hits; i++ {
						dst := comp.sensors.Select(st.r.Uint64n(comp.sensors.Size()))
						if cfg.Faults.SensorDown(dst, t) {
							// Delivered to withdrawn monitored space: the
							// wire carried it but no sensor was listening.
							sensorDown++
							continue
						}
						sensorDraws++
						recordHit(dst)
					}
				}
			}
		}
		probesEmitted, outcomes := closeFastTickOutcomes(probes, newInf, sensorDraws, sensorDown, deliver, burstLoss)
		info := TickInfo{Time: t, Infected: total, NewInfections: newInf, Probes: probesEmitted, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		metrics.flushTick(info)
		metrics.flushFaults(cfg.Faults, t)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && total >= cfg.StopWhenInfected {
			break
		}
		if c := cfg.Containment; c != nil && !c.engaged && c.Trigger != nil && c.Trigger() {
			c.engaged = true
			c.EngagedAt = t
			deliver = baseDeliver * (1 - c.Drop)
		}
	}
	if reporter != nil {
		// End of run: deliver everything still in flight so detection sees
		// every observation exactly as a real collector drain would.
		reporter.Flush()
	}
	return res, nil
}

// closeFastTickOutcomes closes one fast-driver tick's probe accounting.
// Infections, sensor hits, and sensor-down landings are the realized draws
// from the tick loop; the burst-loss and loss/containment shares are closed
// with their expectations, and delivered absorbs the residual. Realized
// Poisson draws are not bounded by the tick's expected probe count — in a
// small-probes tick they can overshoot it — so the probe total widens to
// the realized sum in that case, keeping the conservation invariant
// Outcomes.Total() == Probes unconditional.
func closeFastTickOutcomes(probes float64, newInf int, sensorDraws, sensorDown uint64, deliver, burstLoss float64) (uint64, OutcomeCounts) {
	var outcomes OutcomeCounts
	outcomes[OutcomeInfection] = uint64(newInf)
	outcomes[OutcomeSensorHit] = sensorDraws
	outcomes[OutcomeSensorDown] = sensorDown
	probesEmitted := uint64(probes)
	used := outcomes[OutcomeInfection] + outcomes[OutcomeSensorHit] + outcomes[OutcomeSensorDown]
	if used > probesEmitted {
		probesEmitted = used
	}
	rest := probesEmitted - used
	burstLost := uint64(probes*burstLoss + 0.5)
	if burstLost > rest {
		burstLost = rest
	}
	outcomes[OutcomeBurstLost] = burstLost
	rest -= burstLost
	filtered := uint64(probes*(1-burstLoss)*(1-deliver) + 0.5)
	if filtered > rest {
		filtered = rest
	}
	outcomes[OutcomeFiltered] = filtered
	outcomes[OutcomeDelivered] = rest - filtered
	return probesEmitted, outcomes
}

// indexHosts builds the sorted public-address index and per-site pools.
func (st *fastState) indexHosts() {
	n := st.pop.Size()
	type entry struct {
		addr ipv4.Addr
		id   int32
	}
	entries := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		h := st.pop.Host(i)
		if h.IsNATed() {
			st.sitePools[h.Site] = append(st.sitePools[h.Site], int32(i))
			continue
		}
		entries = append(entries, entry{addr: h.Addr, id: int32(i)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].addr < entries[j].addr })
	st.publicAddrs = make([]ipv4.Addr, len(entries))
	st.publicIDs = make([]int32, len(entries))
	for i, e := range entries {
		st.publicAddrs[i] = e.addr
		st.publicIDs[i] = e.id
	}
}

// buildComps materializes the fast components for a host's group.
func (st *fastState) buildComps(h population.Host) []fastComp {
	comps := st.cfg.Model.Components(h)
	out := make([]fastComp, 0, len(comps))
	for _, c := range comps {
		site := population.NoSite
		if c.Private {
			site = h.Site
		}
		data := st.compData(c.Set, site)
		setSize := float64(data.setSize)
		fc := fastComp{pool: data.pool}
		if setSize > 0 {
			fc.pVuln = c.Weight * float64(data.poolInSet) / setSize
		}
		if !c.Private && st.cfg.Sensors != nil && data.sensorSize > 0 && setSize > 0 {
			fc.pSensor = c.Weight * float64(data.sensorSize) / setSize
			fc.sensors = data.sensorInter
		}
		out = append(out, fc)
	}
	return out
}

// compData computes (and caches) the victim pool and sensor intersection
// for a component set, optionally restricted to one NAT site.
func (st *fastState) compData(set *ipv4.Set, site int) *compData {
	key := compKey{set: set, site: site}
	if d, ok := st.compCache[key]; ok {
		return d
	}
	d := &compData{setSize: set.Size()}
	if site != population.NoSite {
		// Private component: pool is the site's members whose private
		// address falls in the set; every pool address is reachable.
		for _, id := range st.sitePools[site] {
			if set.Contains(st.pop.Host(int(id)).Addr) {
				d.pool = append(d.pool, id)
			}
		}
		d.poolInSet = uint64(len(d.pool))
		st.compCache[key] = d
		return d
	}
	// Public component: binary-search the sorted address index per
	// interval, excluding hard-blocked destinations.
	for _, iv := range set.Intervals() {
		lo := sort.Search(len(st.publicAddrs), func(i int) bool { return st.publicAddrs[i] >= iv.Lo })
		for i := lo; i < len(st.publicAddrs) && st.publicAddrs[i] <= iv.Hi; i++ {
			if st.cfg.BlockedDst != nil && st.cfg.BlockedDst.Contains(st.publicAddrs[i]) {
				continue
			}
			d.pool = append(d.pool, st.publicIDs[i])
		}
	}
	d.poolInSet = uint64(len(d.pool))
	if st.cfg.Sensors != nil && st.cfg.SensorSet != nil {
		inter := st.cfg.SensorSet.Intersect(set)
		if st.cfg.BlockedDst != nil {
			inter = inter.Subtract(st.cfg.BlockedDst)
		}
		d.sensorInter = inter
		d.sensorSize = inter.Size()
	}
	st.compCache[key] = d
	return d
}
