package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
)

// FastConfig configures the aggregated driver.
type FastConfig struct {
	// Topology selects the world the epidemic spreads over. nil and
	// topo.IPv4 both mean the reference IPv4 world — the paper's flat
	// address space, driven by Pop/Model below. A topo.Graph runs the
	// neighbor-graph driver instead, in which case the IPv4-only fields
	// (Pop, Model, BlockedDst, Sensors, SensorSet, LossRate,
	// Containment, Faults) must be unset — they have no graph semantics
	// and are rejected with a *TopologyConflictError rather than
	// silently ignored.
	Topology topo.Topology
	// Pop is the vulnerable population.
	Pop *population.Population
	// Model decomposes the scanner into mixture components.
	Model RateModel
	// ScanRate is probes per second per infected host; TickSeconds the
	// step; MaxSeconds the horizon.
	ScanRate    float64
	TickSeconds float64
	MaxSeconds  float64
	// SeedHosts initially infected hosts, drawn uniformly.
	SeedHosts int
	// Seed drives all randomness.
	Seed uint64
	// Workers is the number of phase-1 draw goroutines per tick (0 means
	// GOMAXPROCS, 1 runs the draws inline). Results are byte-identical for
	// every worker count: each mixture group's draws come from its own
	// per-(group, tick) RNG stream and merge in group-creation order
	// (DESIGN.md §14).
	Workers int
	// DisableTickSkip forces every tick through the two-phase draw path,
	// bypassing the serial quiescent-tick fast path. Output is
	// byte-identical either way — the fast path consumes exactly the same
	// per-group RNG draws — so the switch exists for tests and
	// cross-checks, not for correctness.
	DisableTickSkip bool
	// LossRate is the environmental probe-loss probability.
	LossRate float64
	// BlockedDst is destination space hard-blocked upstream (probes there
	// are always lost). May be nil.
	BlockedDst *ipv4.Set
	// Sensors receives monitored probes; SensorSet is the union of
	// monitored space and must be set when Sensors is.
	Sensors   HitRecorder
	SensorSet *ipv4.Set
	// OnTick, when non-nil, is called each tick; returning false stops.
	OnTick func(TickInfo) bool
	// StopWhenInfected stops once this many hosts are infected (0=never).
	StopWhenInfected int
	// Containment, when non-nil, models a coordinated response (Internet
	// quarantine): once Trigger returns true the policy engages and every
	// subsequent probe is dropped with probability Drop.
	Containment *Containment
	// Metrics, when non-nil, receives per-tick probe-outcome counters and
	// run gauges (see DESIGN.md for the metric-name contract). Attaching a
	// registry never perturbs the run: telemetry draws no randomness.
	Metrics *obs.Registry
	// MetricLabels are extra label pairs ("k1", "v1", …) appended to every
	// series this run registers. Runs sharing one registry — concurrent
	// sweep points in particular — must set distinct labels here, or their
	// counters aggregate indistinguishably and gauges become
	// last-writer-wins.
	MetricLabels []string
	// Clock, when non-nil, is set to the tick's simulated time at the
	// start of each tick, so observers (sensor fleets, tracers) timestamp
	// events in simulated seconds.
	Clock *obs.SimClock
	// Faults, when non-nil, injects the plan's sensor outages, bursty
	// loss, and degraded reporting into the run (misconfiguration is
	// applied when LossRate/BlockedDst are derived, not here). The plan's
	// horizon must cover MaxSeconds. The burst channel scales each tick's
	// delivery probability; sensor draws landing on withdrawn blocks are
	// OutcomeSensorDown and never reach Sensors.
	Faults *faults.Plan
	// Trace, when non-nil, receives the run's flight-recorder events.
	// The fast driver draws infections in aggregate, so its edges carry
	// no infector (Agent -1) and are attributed to the mixture component
	// that drew them (Vector "c0", "c1", … in the model's component
	// order). Attaching a recorder draws no randomness and never perturbs
	// the run (DESIGN.md §12).
	Trace *trace.Recorder
}

// Containment is a global response policy: detection-triggered filtering
// of the worm's traffic (Moore et al.'s "Internet quarantine" model). The
// paper's closing argument — local detection matters because it triggers
// response *early* — is quantified by wiring a detector fleet's alert state
// into Trigger.
type Containment struct {
	// Trigger is evaluated after every tick; once it returns true the
	// policy engages permanently.
	Trigger func() bool
	// Drop is the per-probe drop probability once engaged.
	Drop float64
	// engaged latches the trigger; EngagedAt records the simulated time.
	engaged   bool
	EngagedAt float64
}

// Engaged reports whether the policy has triggered.
func (c *Containment) Engaged() bool { return c.engaged }

func (c *FastConfig) validate() error {
	if c.Pop == nil || c.Pop.Size() == 0 {
		return errors.New("sim: empty population")
	}
	if c.Model == nil {
		return errors.New("sim: nil rate model")
	}
	if err := checkTiming(c.ScanRate, c.TickSeconds, c.MaxSeconds); err != nil {
		return err
	}
	if c.ScanRate*c.TickSeconds > maxProbesPerHostTick {
		return fmt.Errorf("sim: %v probes per host per tick exceeds the %v cap", c.ScanRate*c.TickSeconds, float64(maxProbesPerHostTick))
	}
	if c.SeedHosts <= 0 || c.SeedHosts > c.Pop.Size() {
		return fmt.Errorf("sim: seed hosts %d out of range", c.SeedHosts)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d (0 means GOMAXPROCS)", c.Workers)
	}
	if c.Sensors != nil && c.SensorSet == nil {
		return errors.New("sim: Sensors set but SensorSet missing")
	}
	if math.IsNaN(c.LossRate) || c.LossRate < 0 || c.LossRate >= 1 {
		return errors.New("sim: loss rate out of [0,1)")
	}
	if c.Containment != nil {
		if c.Containment.Trigger == nil {
			return errors.New("sim: containment without a trigger")
		}
		if math.IsNaN(c.Containment.Drop) || c.Containment.Drop < 0 || c.Containment.Drop > 1 {
			return errors.New("sim: containment drop out of [0,1]")
		}
	}
	if err := checkFaultHorizon(c.Faults, c.MaxSeconds); err != nil {
		return err
	}
	return nil
}

// fastSkipLambda gates the quiescent-tick fast path: when the run's total
// expected arrivals this tick fall at or below it, the per-group gate
// draws run serially against the cached intensities instead of through the
// two-phase worker machinery. The threshold only picks the execution path
// — both paths consume identical RNG draws — so it affects speed, never
// output (and keeps every per-group λ far below the λ≥30 normal-
// approximation switch inside rng.Poisson).
const fastSkipLambda = 1.0

// slotSpan is a half-open arena slot range [Lo, Hi) — topo.Span, which
// the IPv4 reference topology constructs; the driver keeps the local
// alias because span geometry is arena layout, not set algebra.
type slotSpan = topo.Span

// ipv4World is the reference topology whose pure helpers (victim-span
// construction, sensor embedding) the driver routes pool building
// through. It is stateless; a package-level value keeps call sites
// terse.
var ipv4World topo.IPv4

// fastComp is one precomputed mixture component of a group. Its victim
// pool is an immutable union of arena slot spans; liveness is resolved
// against the shared live index at draw time, so the per-tick arrival rate
// is weightOverSet times the *live* pool size — Poisson thinning of the
// full-pool rate, distributionally equivalent to drawing at the full rate
// and rejecting infected victims, without the late-epidemic rejection
// waste.
type fastComp struct {
	weightOverSet float64 // component weight divided by the set's address count
	pSensor       float64 // per-probe probability of landing on monitored space
	data          *compData
	sensors       *ipv4.Set
}

// fastGroup aggregates infected hosts sharing a mixture. Its components
// are the span [off, off+n) of fastState.comps — one flat slice for all
// groups instead of a per-group allocation.
type fastGroup struct {
	off, n   int32
	infected int
}

type compKey struct {
	set  *ipv4.Set
	site int
}

// compData is the per-(set, site) pool geometry: the arena slot spans the
// set covers plus the monitored-space intersection. The geometry fields are
// immutable after construction; the live-geometry cache below is refreshed
// serially by rebuildRates (stamp tells a rebuild pass "already done" —
// many groups share one compData) and only read by phase-1 workers, so
// neither needs synchronization.
type compData struct {
	spans       []slotSpan
	sensorInter *ipv4.Set
	sensorSize  uint64
	setSize     uint64

	// Live-geometry cache: per-span cumulative live counts and the global
	// live rank at each span's start, valid for the live index as of the
	// stamp'th rate rebuild. Victim selection reads these instead of
	// querying the live index per span, leaving one Fenwick descent per
	// draw.
	stamp   uint64
	liveCt  int64
	cumLive []int64
	rankLo  []int64
}

// fastEvent is one phase-1 arrival awaiting the serial merge: an infection
// candidate (slot ≥ 0) or a sensor observation (slot -1). ci is the
// component index within its group, kept for trace attribution.
type fastEvent struct {
	slot int32
	ci   int32
	dst  ipv4.Addr
}

// fastWorker is one phase-1 draw shard's private state. The RNG is a
// value, reseeded per (group, tick) — no worker ever shares randomness
// with another, which is what makes the tick's result independent of
// goroutine scheduling.
type fastWorker struct {
	r      rng.Xoshiro
	events []fastEvent
}

// fastState carries the driver's caches.
type fastState struct {
	cfg FastConfig
	pop *population.Population

	groups map[uint64]*fastGroup
	// groupList holds groups in creation order: per-tick processing must
	// not follow map iteration order, or same-seed runs would diverge. A
	// group's index here is also its RNG stream id.
	groupList []*fastGroup
	// comps is the flattened component storage shared by every group.
	// Groups address it by span, never by pointer: buildComps may grow
	// (and reallocate) it when the merge phase creates a group.
	comps []fastComp
	// compCache memoizes per-(set, site) component data.
	compCache map[compKey]*compData

	// Slot arena: public hosts sorted by address occupy [0, pubLen); each
	// NAT site follows as its own region sorted by private address. Every
	// victim pool is a span union over this layout, and a single live
	// index carries all per-host infection state — no per-host pool
	// registry, no pool mutation.
	arenaAddrs []ipv4.Addr
	arenaIDs   []int32
	idSlot     []int32
	pubLen     int32
	siteSpan   map[int]slotSpan
	live       *liveIndex

	// Per-group/per-component intensity cache, valid until an infection
	// changes the live set or the tick's delivery probability moves.
	// Quiescent stretches reuse it wholesale; both draw paths read these
	// exact floats, which is what makes their outputs bit-identical.
	lam           []float64 // per group: total arrival intensity λ
	catRate       []float64 // per comp: infection-category intensity
	catSens       []float64 // per comp: sensor-category intensity
	catLive       []int64   // per comp: live pool size at cache build
	lamTotal      float64
	probesTotal   float64
	cachedDeliver float64
	rateValid     bool
	rateStamp     uint64 // rebuild counter, matching fresh compData caches
	// killsTick accumulates the slots killed since the last rate rebuild,
	// feeding refreshCompLive's incremental branch.
	killsTick    []int32
	killBlockOff []int32 // per live-index block: kills below the block's first slot
}

// RunFast runs the aggregated simulation.
//
// Each tick executes in two phases. Phase 1 shards the mixture groups
// across cfg.Workers goroutines; every group draws its tick's arrivals —
// one Poisson gate draw, then a categorical component pick and a victim or
// sensor selection per arrival — from its own per-(group, tick) RNG
// stream, against the tick-start live index and the frozen intensity
// cache. Phase 2 merges the buffered events serially in group order:
// duplicate victims resolve first-group-wins, exactly as a serial pass
// would. Results are byte-identical for every worker count and for the
// quiescent-tick fast path (DESIGN.md §14).
func RunFast(cfg FastConfig) (*Result, error) {
	if g, err := graphTopology(cfg.Topology); err != nil {
		return nil, err
	} else if g != nil {
		return runFastGraph(cfg, g)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SensorSet != nil {
		// ipv4.Set builds its indexes lazily on first read. Freeze it now so
		// the phase-1 workers' concurrent reads are pure.
		cfg.SensorSet.Freeze()
	}
	st := &fastState{
		cfg:       cfg,
		pop:       cfg.Pop,
		groups:    make(map[uint64]*fastGroup),
		compCache: make(map[compKey]*compData),
	}
	st.indexHosts()

	n := cfg.Pop.Size()
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	total := 0
	// infectSlot records an infection. Callers guarantee the slot is live.
	infectSlot := func(slot int32, t float64) {
		st.live.kill(int(slot))
		st.killsTick = append(st.killsTick, slot)
		id := st.arenaIDs[slot]
		infTime[id] = t
		total++
		h := st.pop.Host(int(id))
		key := cfg.Model.GroupKey(h)
		g, ok := st.groups[key]
		if !ok {
			off, cnt := st.buildComps(h)
			g = &fastGroup{off: off, n: cnt}
			st.groups[key] = g
			st.groupList = append(st.groupList, g)
		}
		g.infected++
		st.rateValid = false
	}
	rec := cfg.Trace
	rec.Append(trace.Event{Tick: 0, T: 0, Kind: trace.KindPhase, Agent: -1, Victim: -1, Vector: "start", Detail: "fast"})
	seedR := rng.NewXoshiro(cfg.Seed)
	for _, id := range seedR.SampleWithoutReplacement(n, cfg.SeedHosts) {
		infectSlot(st.idSlot[id], 0)
		rec.AppendInfection(0, 0, -1, id, uint32(st.pop.Host(id).Addr), "seed")
	}
	// compVec caches the per-component attribution labels ("c0", "c1", …)
	// so traced runs do not re-render them per infection.
	var compVec []string
	vecName := func(ci int32) string {
		for int(ci) >= len(compVec) {
			compVec = append(compVec, fmt.Sprintf("c%d", len(compVec)))
		}
		return compVec[ci]
	}

	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	res := &Result{InfectionTime: infTime, Series: make([]TickInfo, 0, steps)}
	metrics := newSimMetrics(cfg.Metrics, "fast", cfg.MetricLabels)
	metrics.attachFaults(cfg.Metrics, cfg.Faults, "fast", cfg.MetricLabels)

	// Degraded reporting interposes between the wire and Sensors: hits are
	// queued at observation time and delivered (possibly duplicated) when
	// the simulated clock passes their due time.
	recordHit := func(dst ipv4.Addr) {}
	if cfg.Sensors != nil {
		recordHit = cfg.Sensors.RecordHit
	}
	var reporter *faults.Reporter
	if cfg.Sensors != nil {
		if reporter = cfg.Faults.NewReporter(func(_, dst ipv4.Addr) { cfg.Sensors.RecordHit(dst) }); reporter != nil {
			recordHit = reporter.RecordHit
		}
	}

	baseDeliver := 1 - cfg.LossRate
	deliver := baseDeliver
	ws := make([]fastWorker, workers)
	var faultCursor faults.TraceCursor
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)
		if reporter != nil {
			reporter.Advance(t)
		}
		faultCursor.Observe(rec, cfg.Faults, step, t)
		// The burst channel multiplies this tick's delivery probability:
		// expected hit counts shrink by the channel's current loss exactly
		// as the exact driver's per-probe Bernoulli would on average.
		burstLoss := cfg.Faults.BurstLoss(t)
		tickDeliver := deliver * (1 - burstLoss)
		//lint:ignore float-eq exact cache key: the cached rates were computed from this exact float, so == detects precisely the ticks that can reuse them
		if !st.rateValid || tickDeliver != st.cachedDeliver {
			st.rebuildRates(tickDeliver)
		}

		var newInf int
		var sensorDraws, sensorDown uint64
		// apply replays one buffer of phase-1 events in draw order. The
		// live index advances as infections land, so duplicate victims
		// within the tick resolve first-event-wins (hosts infected this
		// tick never probe before the next tick — same feedback rule as
		// the exact driver).
		apply := func(evs []fastEvent) {
			for _, ev := range evs {
				if ev.slot >= 0 {
					if !st.live.test(int(ev.slot)) {
						continue // claimed earlier this tick
					}
					id := st.arenaIDs[ev.slot]
					infectSlot(ev.slot, t)
					newInf++
					rec.AppendInfection(step, t, -1, int(id), uint32(st.arenaAddrs[ev.slot]), vecName(ev.ci))
					continue
				}
				if cfg.Faults.SensorDown(ev.dst, t) {
					// Delivered to withdrawn monitored space: the wire
					// carried it but no sensor was listening.
					sensorDown++
					continue
				}
				sensorDraws++
				recordHit(ev.dst)
			}
		}

		nGroups := len(st.groupList)
		nShards := workers
		if nShards > nGroups {
			nShards = nGroups
		}
		if nShards <= 1 || (!cfg.DisableTickSkip && st.lamTotal <= fastSkipLambda) {
			// Quiescent/serial fast path: one gate draw per group decides
			// whether it fires at all — the Poisson squeeze generalized to
			// the whole group-tick — with no worker dispatch and, in the
			// common all-zero case, no event machinery at all.
			w := &ws[0]
			w.events = reserveEvents(w.events, st.lamTotal)
			for gi := 0; gi < nGroups; gi++ {
				w.events = st.drawGroup(&w.r, gi, step, w.events)
			}
			apply(w.events)
		} else {
			// Phase 1: draw this tick's arrivals against the tick-start
			// live index. Infections land in phase 2, so the workers'
			// shared reads are race-free.
			var wg sync.WaitGroup
			for wi := 0; wi < nShards; wi++ {
				lo := wi * nGroups / nShards
				hi := (wi + 1) * nGroups / nShards
				wg.Add(1)
				go func(w *fastWorker, lo, hi, step int) {
					defer wg.Done()
					var lamShard float64
					for gi := lo; gi < hi; gi++ {
						lamShard += st.lam[gi]
					}
					w.events = reserveEvents(w.events, lamShard)
					for gi := lo; gi < hi; gi++ {
						w.events = st.drawGroup(&w.r, gi, step, w.events)
					}
				}(&ws[wi], lo, hi, step)
			}
			wg.Wait()
			// Phase 2: serial merge in worker order. Shards are contiguous
			// group ranges, so visiting workers in index order replays
			// events exactly as a serial pass over the group list would.
			for wi := 0; wi < nShards; wi++ {
				apply(ws[wi].events)
			}
		}

		probesEmitted, outcomes := closeFastTickOutcomes(st.probesTotal, newInf, sensorDraws, sensorDown, deliver, burstLoss)
		info := TickInfo{Time: t, Infected: total, NewInfections: newInf, Probes: probesEmitted, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		if rec != nil {
			rec.Append(trace.Event{Tick: step, T: t, Kind: trace.KindProbes, Agent: -1, Victim: -1,
				N: probesEmitted, Detail: outcomes.String()})
		}
		metrics.flushTick(info)
		metrics.flushFaults(cfg.Faults, t)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && total >= cfg.StopWhenInfected {
			break
		}
		if c := cfg.Containment; c != nil && !c.engaged && c.Trigger != nil && c.Trigger() {
			c.engaged = true
			c.EngagedAt = t
			deliver = baseDeliver * (1 - c.Drop)
		}
	}
	if reporter != nil {
		// End of run: deliver everything still in flight so detection sees
		// every observation exactly as a real collector drain would.
		reporter.Flush()
	}
	rec.Append(trace.Event{Tick: len(res.Series), T: res.Final.Time, Kind: trace.KindPhase,
		Agent: -1, Victim: -1, Vector: "end", Detail: "fast", N: uint64(res.Final.Infected)})
	return res, nil
}

// reserveEvents returns buf emptied, with capacity for lam expected
// arrivals plus six standard deviations of Poisson slack. Late-epidemic
// ticks at internet scale draw tens of millions of arrivals; sizing the
// buffer from the expectation turns a doubling cascade of multi-hundred-
// megabyte reallocations into one allocation per high-water mark.
// Capacity is invisible to the draw streams, so outputs are unchanged.
func reserveEvents(buf []fastEvent, lam float64) []fastEvent {
	need := int(lam+6*math.Sqrt(lam)) + 32
	if cap(buf) >= need {
		return buf[:0]
	}
	return make([]fastEvent, 0, need)
}

// drawGroup consumes group gi's tick RNG stream and appends its arrival
// events. The stream is seeded from (seed, gi, step) alone, so the draws
// are independent of which worker — or which execution path — runs them.
// Draw discipline, in order: one gate sequence decides how many arrivals
// the group-tick has (for λ < 30, Knuth inversion against the cached
// p₀ = e^{-λ}, consuming draws exactly as rng.Poisson would; λ ≥ 30
// delegates to rng.Poisson's normal approximation); then per arrival one
// categorical draw picks the component — categories in fixed order,
// infection then sensor per component — and one selection draw resolves
// the victim slot or sensor address.
func (st *fastState) drawGroup(r *rng.Xoshiro, gi, step int, out []fastEvent) []fastEvent {
	lam := st.lam[gi]
	if lam <= 0 {
		return out
	}
	r.SeedStream(st.cfg.Seed, uint64(gi), uint64(step))
	var k uint64
	if lam < 30 {
		// Knuth inversion with a squeeze: 1−λ ≤ e^{−λ}, so a first
		// uniform at or under 1−λ settles k = 0 without ever computing
		// the exponential — which keeps e^{−λ} off the per-(group, tick)
		// fixed cost and prices it only into group-ticks that might
		// fire. Draw consumption is identical either way.
		prod := r.Float64()
		if prod > 1-lam {
			p0 := math.Exp(-lam)
			for prod > p0 {
				k++
				prod *= r.Float64()
			}
		}
	} else {
		k = r.Poisson(lam)
	}
	g := st.groupList[gi]
	for ; k > 0; k-- {
		u := r.Float64() * lam
		pick := int32(-1)
		sensor := false
		c := 0.0
		for ci := int32(0); ci < g.n; ci++ {
			ai := g.off + ci
			if rr := st.catRate[ai]; rr > 0 {
				c += rr
				pick, sensor = ci, false
				if u <= c {
					break
				}
			}
			if rs := st.catSens[ai]; rs > 0 {
				c += rs
				pick, sensor = ci, true
				if u <= c {
					break
				}
			}
		}
		if pick < 0 {
			continue // unreachable: λ > 0 implies a positive category
		}
		ai := g.off + pick
		comp := &st.comps[ai]
		if !sensor {
			j := r.Uint64n(uint64(st.catLive[ai]))
			out = append(out, fastEvent{slot: int32(st.selectVictim(comp.data, int64(j))), ci: pick})
		} else {
			dst := comp.sensors.Select(r.Uint64n(comp.sensors.Size()))
			out = append(out, fastEvent{slot: -1, ci: pick, dst: dst})
		}
	}
	return out
}

// selectVictim resolves the j-th live slot of a span-union pool using the
// pool's cached live geometry: a scan of the cumulative counts picks the
// span, and the cached start rank turns the within-span index into a
// single global Fenwick select. The caller guarantees j is below the
// cached live pool size the arrival was priced with.
func (st *fastState) selectVictim(d *compData, j int64) int {
	for i, c := range d.cumLive {
		if j < c {
			if i > 0 {
				j -= d.cumLive[i-1]
			}
			return st.live.selectGlobal(int(d.rankLo[i] + j))
		}
	}
	panic("sim: victim index out of pool range")
}

// refreshCompLive advances one pool's live-geometry cache to the current
// live index. A pool that was refreshed at the previous rebuild needs only
// the kills applied since: rank(lo) drops by the kills below lo, and each
// span's live count by the kills inside it — integer identities on the
// rank function, so the result matches a from-scratch recompute exactly,
// with each kill count answered from the per-block kill table instead of
// a Fenwick rank. Pools built mid-run (stamp 0) or otherwise out of
// sequence take the full recompute.
func (st *fastState) refreshCompLive(d *compData) {
	if d.stamp+1 == st.rateStamp && cap(d.cumLive) >= len(d.spans) {
		kills := st.killsTick
		n := len(d.spans)
		if n == 0 || len(kills) == 0 || kills[0] >= d.spans[n-1].Hi {
			d.stamp = st.rateStamp
			return
		}
		var inside int64
		for i, sp := range d.spans {
			kl := st.killsBelow(sp.Lo)
			kh := st.killsBelow(sp.Hi)
			d.rankLo[i] -= int64(kl)
			inside += int64(kh - kl)
			d.cumLive[i] -= inside
		}
		d.liveCt -= inside
		d.stamp = st.rateStamp
		return
	}
	if cap(d.cumLive) < len(d.spans) {
		d.cumLive = make([]int64, len(d.spans))
		d.rankLo = make([]int64, len(d.spans))
	}
	d.cumLive = d.cumLive[:len(d.spans)]
	d.rankLo = d.rankLo[:len(d.spans)]
	var c int64
	for i, sp := range d.spans {
		rlo := int64(st.live.rank(int(sp.Lo)))
		d.rankLo[i] = rlo
		c += int64(st.live.rank(int(sp.Hi))) - rlo
		d.cumLive[i] = c
	}
	d.liveCt = c
	d.stamp = st.rateStamp
}

// indexKills sorts the tick's kill list and fills killBlockOff so that
// killBlockOff[b] counts the kills below slot b·liveBlockSlots. One pass
// here turns every killsBelow query during the rebuild into a table load
// plus a scan of one (typically near-empty) block bucket — the queries run
// once per span per pool per tick, so they must not each binary-search.
func (st *fastState) indexKills() {
	sortInt32s(st.killsTick)
	nb := st.live.blocks + 1
	if cap(st.killBlockOff) < nb {
		st.killBlockOff = make([]int32, nb)
	}
	st.killBlockOff = st.killBlockOff[:nb]
	c := 0
	for b := 0; b < nb; b++ {
		for c < len(st.killsTick) && int(st.killsTick[c]) < b*liveBlockSlots {
			c++
		}
		st.killBlockOff[b] = int32(c)
	}
}

// killsBelow returns how many of this tick's kill slots are below pos.
// pos may equal the slot count.
func (st *fastState) killsBelow(pos int32) int {
	kills := st.killsTick
	b := int(pos) / liveBlockSlots
	if b >= len(st.killBlockOff) {
		return len(kills)
	}
	c := int(st.killBlockOff[b])
	for c < len(kills) && kills[c] < pos {
		c++
	}
	return c
}

// rebuildRates recomputes every group's arrival intensity against the
// current live index and delivery probability. λ is summed here once, in
// fixed category order (infection then sensor, per component, in component
// order) — the categorical scan in drawGroup accumulates the same terms in
// the same order, so the two agree bit-for-bit.
func (st *fastState) rebuildRates(tickDeliver float64) {
	st.lam = growFloats(st.lam, len(st.groupList))
	st.catRate = growFloats(st.catRate, len(st.comps))
	st.catSens = growFloats(st.catSens, len(st.comps))
	st.catLive = growInts(st.catLive, len(st.comps))
	st.lamTotal = 0
	st.probesTotal = 0
	st.rateStamp++
	// The kills recorded since the previous rebuild, sorted, drive the
	// incremental branch of refreshCompLive. Every reachable compData is
	// visited on every rebuild, so "one rebuild behind" is the only
	// incremental distance that ever occurs.
	st.indexKills()
	perHost := st.cfg.ScanRate * st.cfg.TickSeconds
	for gi, g := range st.groupList {
		p := float64(g.infected) * perHost
		st.probesTotal += p
		lam := 0.0
		for ci := int32(0); ci < g.n; ci++ {
			ai := g.off + ci
			comp := &st.comps[ai]
			if comp.data.stamp != st.rateStamp {
				st.refreshCompLive(comp.data)
			}
			liveCt := comp.data.liveCt
			st.catLive[ai] = liveCt
			rr := 0.0
			if comp.weightOverSet > 0 && liveCt > 0 {
				rr = p * comp.weightOverSet * float64(liveCt) * tickDeliver
			}
			st.catRate[ai] = rr
			lam += rr
			rs := 0.0
			if comp.pSensor > 0 {
				rs = p * comp.pSensor * tickDeliver
			}
			st.catSens[ai] = rs
			lam += rs
		}
		st.lam[gi] = lam
		st.lamTotal += lam
	}
	st.killsTick = st.killsTick[:0]
	st.cachedDeliver = tickDeliver
	st.rateValid = true
}

// sortInt32s sorts s ascending in place — an allocation-free insertion/
// shell hybrid is overkill here; slot kill lists are short except in the
// hottest internet-scale ticks, where sort.Slice's closure overhead is
// noise against the draws.
func sortInt32s(s []int32) {
	if len(s) > 1 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}

// growFloats and growInts extend a per-group/per-comp cache array,
// preserving existing entries: unchanged groups skip recomputation in
// rebuildRates and keep reading their prior values in place.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]float64, n, n+n/2+8)
	copy(ns, s)
	return ns
}

func growInts(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]int64, n, n+n/2+8)
	copy(ns, s)
	return ns
}

// closeFastTickOutcomes closes one fast-driver tick's probe accounting.
// Infections, sensor hits, and sensor-down landings are the realized draws
// from the tick loop; the burst-loss and loss/containment shares are closed
// with their expectations, and delivered absorbs the residual. Realized
// Poisson draws are not bounded by the tick's expected probe count — in a
// small-probes tick they can overshoot it — so the probe total widens to
// the realized sum in that case, keeping the conservation invariant
// Outcomes.Total() == Probes unconditional.
func closeFastTickOutcomes(probes float64, newInf int, sensorDraws, sensorDown uint64, deliver, burstLoss float64) (uint64, OutcomeCounts) {
	var outcomes OutcomeCounts
	outcomes[OutcomeInfection] = uint64(newInf)
	outcomes[OutcomeSensorHit] = sensorDraws
	outcomes[OutcomeSensorDown] = sensorDown
	probesEmitted := uint64(probes)
	used := outcomes[OutcomeInfection] + outcomes[OutcomeSensorHit] + outcomes[OutcomeSensorDown]
	if used > probesEmitted {
		probesEmitted = used
	}
	rest := probesEmitted - used
	burstLost := uint64(probes*burstLoss + 0.5)
	if burstLost > rest {
		burstLost = rest
	}
	outcomes[OutcomeBurstLost] = burstLost
	rest -= burstLost
	filtered := uint64(probes*(1-burstLoss)*(1-deliver) + 0.5)
	if filtered > rest {
		filtered = rest
	}
	outcomes[OutcomeFiltered] = filtered
	outcomes[OutcomeDelivered] = rest - filtered
	return probesEmitted, outcomes
}

// indexHosts lays out the slot arena: public hosts sorted by address, then
// each NAT site as its own region sorted by private address. Public
// ordering uses a two-pass LSD radix sort — O(n) against the comparison
// sort's n·log n, which matters at 10⁸ hosts.
func (st *fastState) indexHosts() {
	n := st.pop.Size()
	st.idSlot = make([]int32, n)
	st.arenaAddrs = make([]ipv4.Addr, n)
	st.arenaIDs = make([]int32, n)
	siteMembers := make(map[int][]int32)
	pub := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		h := st.pop.Host(i)
		if h.IsNATed() {
			siteMembers[h.Site] = append(siteMembers[h.Site], int32(i))
			continue
		}
		pub = append(pub, uint64(h.Addr)<<32|uint64(uint32(i)))
	}
	radixSortByAddr(pub)
	for s, v := range pub {
		addr, id := ipv4.Addr(v>>32), int32(uint32(v))
		st.arenaAddrs[s] = addr
		st.arenaIDs[s] = id
		st.idSlot[id] = int32(s)
	}
	st.pubLen = int32(len(pub))
	sites := make([]int, 0, len(siteMembers))
	for site := range siteMembers {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	st.siteSpan = make(map[int]slotSpan, len(sites))
	next := st.pubLen
	for _, site := range sites {
		members := siteMembers[site]
		sort.Slice(members, func(i, j int) bool {
			return st.pop.Host(int(members[i])).Addr < st.pop.Host(int(members[j])).Addr
		})
		lo := next
		for _, id := range members {
			st.arenaAddrs[next] = st.pop.Host(int(id)).Addr
			st.arenaIDs[next] = id
			st.idSlot[id] = next
			next++
		}
		st.siteSpan[site] = slotSpan{Lo: lo, Hi: next}
	}
	st.live = newLiveIndex(n)
}

// radixSortByAddr sorts packed (addr<<32 | id) entries by address (ties by
// id) with a two-pass LSD counting sort over the address halves. Small
// inputs fall back to a comparison sort.
func radixSortByAddr(v []uint64) {
	if len(v) < 1<<12 {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return
	}
	tmp := make([]uint64, len(v))
	counts := make([]int, 1<<16)
	for pass := 0; pass < 2; pass++ {
		shift := uint(32 + 16*pass)
		for i := range counts {
			counts[i] = 0
		}
		for _, x := range v {
			counts[(x>>shift)&0xffff]++
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, x := range v {
			b := (x >> shift) & 0xffff
			tmp[counts[b]] = x
			counts[b]++
		}
		copy(v, tmp)
	}
}

// buildComps materializes the fast components for a host's group into the
// shared flattened comps slice, returning the group's [off, off+n) span.
func (st *fastState) buildComps(h population.Host) (off, n int32) {
	comps := st.cfg.Model.Components(h)
	off = int32(len(st.comps))
	for _, c := range comps {
		site := population.NoSite
		if c.Private {
			site = h.Site
		}
		data := st.compDataFor(c.Set, site)
		setSize := float64(data.setSize)
		fc := fastComp{data: data}
		if setSize > 0 {
			fc.weightOverSet = c.Weight / setSize
		}
		if !c.Private && st.cfg.Sensors != nil && data.sensorSize > 0 && setSize > 0 {
			fc.pSensor = c.Weight * float64(data.sensorSize) / setSize
			fc.sensors = data.sensorInter
		}
		st.comps = append(st.comps, fc)
	}
	return off, int32(len(st.comps)) - off
}

// compDataFor computes (and caches) the pool spans and sensor intersection
// for a component set, optionally restricted to one NAT site. Spans cover
// every host in the set regardless of infection state — liveness lives in
// the shared index — so the result is immutable.
func (st *fastState) compDataFor(set *ipv4.Set, site int) *compData {
	key := compKey{set: set, site: site}
	if d, ok := st.compCache[key]; ok {
		return d
	}
	d := &compData{setSize: set.Size()}
	region := slotSpan{Lo: 0, Hi: st.pubLen}
	eff := set
	if site != population.NoSite {
		// Private component: the site's own arena region; every address in
		// it is reachable (hard blocks apply to Internet paths only).
		region = st.siteSpan[site]
	} else if st.cfg.BlockedDst != nil {
		eff = set.Subtract(st.cfg.BlockedDst)
	}
	d.spans = ipv4World.VictimSpans(st.arenaAddrs[region.Lo:region.Hi], region.Lo, eff, d.spans)
	if site == population.NoSite && st.cfg.Sensors != nil && st.cfg.SensorSet != nil {
		// Phase-1 workers Select from the embedded set concurrently;
		// EmbedSensors freezes its lazy indexes while construction is
		// still serial.
		inter := ipv4World.EmbedSensors(st.cfg.SensorSet, set, st.cfg.BlockedDst)
		d.sensorInter = inter
		d.sensorSize = inter.Size()
	}
	st.compCache[key] = d
	return d
}
