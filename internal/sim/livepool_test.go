package sim

import (
	"testing"

	"repro/internal/rng"
)

// naiveLive is the reference implementation: a plain bool slice.
type naiveLive []bool

func newNaiveLive(n int) naiveLive {
	l := make(naiveLive, n)
	for i := range l {
		l[i] = true
	}
	return l
}

func (l naiveLive) kill(pos int) { l[pos] = false }

func (l naiveLive) liveIn(lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ {
		if l[i] {
			c++
		}
	}
	return c
}

func (l naiveLive) selectIn(lo, j int) int {
	for i := lo; i < len(l); i++ {
		if l[i] {
			if j == 0 {
				return i
			}
			j--
		}
	}
	return -1
}

func TestLiveIndexMatchesNaive(t *testing.T) {
	// Sizes straddle the word and Fenwick-block boundaries.
	for _, n := range []int{1, 63, 64, 65, 1023, 1024, 1025, 4096, 5000} {
		li := newLiveIndex(n)
		ref := newNaiveLive(n)
		r := rng.NewXoshiro(uint64(n)*7 + 1)
		if got := li.rank(n); got != n {
			t.Fatalf("n=%d: initial rank(n) = %d", n, got)
		}
		// Kill a random half, checking queries as the index empties.
		for round := 0; round < 4; round++ {
			for k := 0; k < n/8+1; k++ {
				pos := int(r.Uint64n(uint64(n)))
				li.kill(pos)
				ref.kill(pos)
			}
			for q := 0; q < 20; q++ {
				lo := int(r.Uint64n(uint64(n)))
				hi := lo + int(r.Uint64n(uint64(n-lo)+1))
				if got, want := li.liveIn(lo, hi), ref.liveIn(lo, hi); got != want {
					t.Fatalf("n=%d: liveIn(%d,%d) = %d, want %d", n, lo, hi, got, want)
				}
				if avail := ref.liveIn(lo, n); avail > 0 {
					j := int(r.Uint64n(uint64(avail)))
					if got, want := li.selectIn(lo, j), ref.selectIn(lo, j); got != want {
						t.Fatalf("n=%d: selectIn(%d,%d) = %d, want %d", n, lo, j, got, want)
					}
				}
			}
			if got, want := li.rank(n), ref.liveIn(0, n); got != want {
				t.Fatalf("n=%d: total rank = %d, want %d", n, got, want)
			}
		}
	}
}

func TestLiveIndexKillIdempotent(t *testing.T) {
	li := newLiveIndex(200)
	li.kill(100)
	li.kill(100)
	if got := li.rank(200); got != 199 {
		t.Fatalf("double kill changed count twice: rank = %d, want 199", got)
	}
	if li.test(100) {
		t.Fatal("killed slot still live")
	}
	if !li.test(99) {
		t.Fatal("untouched slot not live")
	}
}

func TestLiveIndexSelectExhaustive(t *testing.T) {
	// Every live slot must be selectable by its in-range index.
	n := 2500
	li := newLiveIndex(n)
	ref := newNaiveLive(n)
	r := rng.NewXoshiro(99)
	for k := 0; k < 2*n; k++ { // kill most slots, duplicates fine
		pos := int(r.Uint64n(uint64(n)))
		li.kill(pos)
		ref.kill(pos)
	}
	lo := 700
	avail := ref.liveIn(lo, n)
	if avail == 0 {
		t.Skip("degenerate: nothing live past lo")
	}
	for j := 0; j < avail; j++ {
		got, want := li.selectIn(lo, j), ref.selectIn(lo, j)
		if got != want {
			t.Fatalf("selectIn(%d,%d) = %d, want %d", lo, j, got, want)
		}
		if !li.test(got) {
			t.Fatalf("selected dead slot %d", got)
		}
	}
}
