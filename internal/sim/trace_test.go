package sim

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/trace"
	"repro/internal/worm"
)

// These tests enforce the flight recorder's two contracts (DESIGN.md §12):
// trace bytes are a pure function of the scenario — identical for every
// worker count — and attaching a recorder never perturbs a run, so a
// trace-on run is byte-identical to a trace-off run on every existing
// output.

// traceExactWorkers runs the same fully loaded exact scenario as
// runExactWorkers (NAT, filters, loss, sensor fleet, fault plan) with a
// flight recorder attached, and returns the run serialization plus the
// trace NDJSON bytes.
func traceExactWorkers(t *testing.T, workers int) (string, string) {
	t.Helper()
	pop := smallPop(t, 600, 77)
	if err := pop.AssignNAT(0.3, 8, 5); err != nil {
		t.Fatal(err)
	}
	env := &netenv.Environment{}
	if err := env.SetLossRate(0.05); err != nil {
		t.Fatal(err)
	}
	env.AddEgressFilter(ipv4.MustParsePrefix("20.0.0.0/8"), 0.5)
	env.AddIngressFilter(ipv4.MustParsePrefix("30.0.0.0/8"), 0.3)

	fleet := sensor.MustNewFleet([]sensor.Block{
		{Label: "A", Prefix: ipv4.MustParsePrefix("200.10.0.0/20")},
		{Label: "B", Prefix: ipv4.MustParsePrefix("201.20.64.0/22")},
	})
	plan, err := faults.Compile(faults.Config{
		Seed: 99,
		Outages: []faults.OutageConfig{
			{Block: "201.20.64.0/22", Start: 10, End: 25},
		},
		Burst:     &faults.BurstConfig{MeanGood: 12, MeanBad: 4, LossGood: 0.02, LossBad: 0.5},
		Reporting: &faults.ReportingConfig{Delay: 2, DupProb: 0.1},
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	clk := &obs.SimClock{}
	fleet.Trace(rec, clk)
	res, err := RunExact(ExactConfig{
		Pop:         pop,
		Factory:     worm.CodeRedIIFactory{},
		Env:         env,
		ScanRate:    500,
		TickSeconds: 1,
		MaxSeconds:  40,
		SeedHosts:   10,
		Seed:        4242,
		Workers:     workers,
		SensorSet:   fleet.CoverageSet(),
		OnProbe:     func(src, dst ipv4.Addr) { fleet.Observe(src, dst) },
		Faults:      plan,
		Clock:       clk,
		Trace:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return serializeExactRun(t, res, fleet), buf.String()
}

// TestTraceWorkerInvariance: trace events are emitted only from the
// drivers' serial sections, so the NDJSON stream must be byte-identical
// for every worker count — the same guarantee the run outputs already
// carry, extended to the flight recorder.
func TestTraceWorkerInvariance(t *testing.T) {
	wantRun, wantTrace := traceExactWorkers(t, 1)
	if wantTrace == "" {
		t.Fatal("empty trace")
	}
	for _, workers := range []int{2, 3, 7} {
		gotRun, gotTrace := traceExactWorkers(t, workers)
		if gotRun != wantRun {
			t.Errorf("Workers=%d run output diverged from Workers=1", workers)
		}
		if gotTrace != wantTrace {
			t.Errorf("Workers=%d trace diverged from Workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, wantTrace, workers, gotTrace)
		}
	}
}

// TestTraceDoesNotPerturbRuns pins the non-perturbation half of the
// contract for both drivers: a recorder observes the run from its serial
// sections, draws no randomness, and changes no arithmetic, so every
// existing output is byte-identical with and without it.
func TestTraceDoesNotPerturbRuns(t *testing.T) {
	pop := smallPop(t, 400, 31)
	exact := func(rec *trace.Recorder) string {
		cfg := ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
			Trace: rec,
		}
		if rec != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	fast := func(rec *trace.Recorder) string {
		cfg := FastConfig{
			Pop: pop, Model: NewCodeRedIIModel(),
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 5678,
			Trace: rec,
		}
		if rec != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunFast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	if off, on := exact(nil), exact(trace.NewRecorder(0)); off != on {
		t.Errorf("RunExact diverged with a flight recorder attached:\noff:\n%son:\n%s", off, on)
	}
	if off, on := fast(nil), fast(trace.NewRecorder(0)); off != on {
		t.Errorf("RunFast diverged with a flight recorder attached:\noff:\n%son:\n%s", off, on)
	}
}

// TestTraceInfectionTree checks the provenance content both drivers emit:
// the infection events of a traced run reconstruct into a valid tree whose
// size equals the run's final infected count, with edge times matching the
// per-host infection times exactly.
func TestTraceInfectionTree(t *testing.T) {
	pop := smallPop(t, 400, 31)

	check := func(name string, rec *trace.Recorder, res *Result, attributed bool) {
		t.Helper()
		tree, err := trace.BuildTree(rec.Events())
		if err != nil {
			t.Fatalf("%s: BuildTree: %v", name, err)
		}
		if got, want := tree.Size(), res.Final.Infected; got != want {
			t.Errorf("%s: tree size %d != final infected %d", name, got, want)
		}
		if len(tree.Seeds) != 8 {
			t.Errorf("%s: %d seed roots, want 8", name, len(tree.Seeds))
		}
		for _, e := range tree.Edges {
			if it := res.InfectionTime[e.Victim]; it != e.T {
				t.Errorf("%s: edge victim %d at t=%v but InfectionTime=%v", name, e.Victim, e.T, it)
			}
			if attributed && e.Infector < 0 {
				t.Errorf("%s: unattributed edge to %d in exact trace", name, e.Victim)
			}
			if !attributed && e.Infector >= 0 {
				t.Errorf("%s: attributed edge %d->%d in fast trace", name, e.Infector, e.Victim)
			}
		}
		stats := tree.Stats()
		if stats.Nodes != tree.Size() || stats.Seeds != len(tree.Seeds) {
			t.Errorf("%s: stats %+v inconsistent with tree", name, stats)
		}
	}

	recE := trace.NewRecorder(0)
	resE, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
		Trace: recE, Clock: &obs.SimClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("exact", recE, resE, true)

	recF := trace.NewRecorder(0)
	resF, err := RunFast(FastConfig{
		Pop: pop, Model: NewCodeRedIIModel(),
		ScanRate: 300, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 5678,
		Trace: recF, Clock: &obs.SimClock{},
	})
	if err != nil {
		t.Fatal(err)
	}
	check("fast", recF, resF, false)

	// The two traced runs above must themselves be reproducible: re-running
	// the exact scenario yields byte-identical NDJSON.
	recE2 := trace.NewRecorder(0)
	if _, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
		Trace: recE2, Clock: &obs.SimClock{},
	}); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := recE.WriteNDJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := recE2.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two same-seed traced runs produced different NDJSON")
	}
}
