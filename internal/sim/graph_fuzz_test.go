package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/topo"
	"repro/internal/topo/proxgraph"
	"repro/internal/worm"
)

// FuzzGraphConfigValidation throws hostile values at the graph-topology
// validation surface: world construction, the typed topology-conflict
// checks, and the shared timing/seed bounds. Any input may be rejected
// with an error; nothing may panic, every accepted IPv4-field combo
// must come back as a TopologyConflictError naming the field, and any
// config both layers accept must run with conserved outcomes.
func FuzzGraphConfigValidation(f *testing.F) {
	// Hostile-value corpus: each seed aims at one validator.
	f.Add(100, 4, 0.0, 10, 3, 2.0, 1.0, 20.0, uint8(0))        // clean baseline
	f.Add(0, 4, 0.0, 0, 1, 2.0, 1.0, 10.0, uint8(0))           // zero nodes
	f.Add(-50, 4, 0.0, 0, 1, 2.0, 1.0, 10.0, uint8(0))         // negative nodes
	f.Add(2, 0, 0.0, 0, 1, 2.0, 1.0, 10.0, uint8(0))           // zero degree
	f.Add(100, 4, -0.5, 0, 1, 2.0, 1.0, 10.0, uint8(0))        // negative radius
	f.Add(100, 4, math.Inf(1), 0, 1, 2.0, 1.0, 10.0, uint8(0)) // infinite radius
	f.Add(100, 4, 0.0, 100, 1, 2.0, 1.0, 10.0, uint8(0))       // all-sensor world
	f.Add(100, 4, 0.0, 40, 61, 2.0, 1.0, 10.0, uint8(0))       // seeds past susceptible
	f.Add(100, 4, 0.0, 0, 0, 2.0, 1.0, 10.0, uint8(0))         // zero seeds
	f.Add(100, 4, 0.0, 0, 1, 0.3, 1.0, 10.0, uint8(0))         // fractional exact ppt
	f.Add(100, 4, 0.0, 0, 1, 2.0, 0.0, 10.0, uint8(0))         // zero tick
	f.Add(100, 4, 0.0, 0, 1, 2.0, 1.0, math.Inf(1), uint8(0))  // infinite horizon
	f.Add(100, 4, 0.0, 0, 1, 1e12, 1.0, 10.0, uint8(0))        // ppt cap
	f.Add(100, 4, 1.5, 0, 1, 2.0, 1.0, 10.0, uint8(1))         // conflict: Factory/Model
	f.Add(100, 4, 0.0, 5, 2, 2.0, 1.0, 10.0, uint8(2))         // conflict: Env/BlockedDst
	f.Add(100, 4, 0.0, 5, 2, 2.0, 1.0, 10.0, uint8(3))         // conflict: SensorSet
	f.Add(100, 4, 0.0, 5, 2, 2.0, 1.0, 10.0, uint8(4))         // conflict: OnProbe/LossRate
	f.Fuzz(func(t *testing.T, nodes, degree int, radius float64,
		sensors, seedHosts int, scanRate, tick, horizon float64, conflict uint8) {
		// Bound construction cost, not validity: hostile shapes under the
		// caps still reach every validator.
		if nodes > 3000 || degree > 64 || sensors > 3000 || sensors < math.MinInt32 {
			return
		}
		w, err := proxgraph.New(proxgraph.Config{
			Nodes: nodes, Degree: degree, Radius: radius, Sensors: sensors, Seed: 1,
		})
		if err != nil {
			return // construction rejected the shape; that is the contract
		}
		if err := topo.ValidateGraph(w); err != nil {
			t.Fatalf("accepted world violates the graph contract: %v", err)
		}

		ecfg := ExactConfig{Topology: w, ScanRate: scanRate, TickSeconds: tick,
			MaxSeconds: horizon, SeedHosts: seedHosts, Seed: 1, Workers: 2}
		fcfg := FastConfig{Topology: w, ScanRate: scanRate, TickSeconds: tick,
			MaxSeconds: horizon, SeedHosts: seedHosts, Seed: 1, Workers: 2}

		// An injected IPv4-world field must always come back as a typed
		// conflict, whatever the rest of the config looks like.
		if conflict%8 != 0 {
			switch conflict % 8 {
			case 1:
				ecfg.Factory = worm.UniformFactory{}
				fcfg.Model = NewUniformModel()
			case 2:
				fcfg.BlockedDst = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9})
				ecfg.SensorSet = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9})
			case 3:
				ecfg.SensorSet = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9})
				fcfg.SensorSet = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9})
			case 4:
				ecfg.OnProbe = func(_, _ ipv4.Addr) {}
				fcfg.LossRate = 0.25
			case 5:
				ecfg.Env = &netenv.Environment{}
				fcfg.Containment = &Containment{Trigger: func() bool { return false }}
			case 6:
				ecfg.Factory = worm.UniformFactory{}
				fcfg.LossRate = math.SmallestNonzeroFloat64
			default:
				ecfg.OnProbe = func(_, _ ipv4.Addr) {}
				fcfg.Model = NewUniformModel()
			}
			var ce *TopologyConflictError
			if err := ecfg.validateGraph(w); !errors.As(err, &ce) {
				t.Fatalf("exact config with IPv4 field not rejected with a typed conflict: %v", err)
			}
			if err := fcfg.validateGraph(w); !errors.As(err, &ce) {
				t.Fatalf("fast config with IPv4 field not rejected with a typed conflict: %v", err)
			}
			return
		}

		// Clean configs: validation decides without running; runs happen
		// only under a small work product the fuzz budget can afford.
		eOK := ecfg.validateGraph(w) == nil
		fOK := fcfg.validateGraph(w) == nil
		ppt := scanRate * tick
		steps := horizon / tick
		if math.IsNaN(ppt) || ppt > 64 || math.IsNaN(steps) || steps > 64 {
			return
		}
		if eOK {
			res, err := RunExact(ecfg)
			if err != nil {
				t.Fatalf("validated exact graph config refused to run: %v", err)
			}
			checkFuzzGraphResult(t, "exact", res, w)
		}
		if fOK {
			res, err := RunFast(fcfg)
			if err != nil {
				t.Fatalf("validated fast graph config refused to run: %v", err)
			}
			checkFuzzGraphResult(t, "fast", res, w)
		}
	})
}

func checkFuzzGraphResult(t *testing.T, driver string, res *Result, w *proxgraph.World) {
	t.Helper()
	for i, ti := range res.Series {
		if ti.Outcomes.Total() != ti.Probes {
			t.Fatalf("%s tick %d: outcomes %d != probes %d", driver, i, ti.Outcomes.Total(), ti.Probes)
		}
	}
	if res.Final.Infected > w.Nodes() {
		t.Fatalf("%s: infected %d > %d nodes", driver, res.Final.Infected, w.Nodes())
	}
	for id, it := range res.InfectionTime {
		if it >= 0 && w.IsSensor(id) {
			t.Fatalf("%s: sensor node %d infected at t=%v", driver, id, it)
		}
	}
}
