package sim

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/obs"
	"repro/internal/worm"
)

// These tests pin the driver hook contracts and the probe-outcome
// conservation invariant: every emitted probe is classified into exactly
// one ProbeOutcome, so the per-tick outcome counts must sum to
// TickInfo.Probes and the run-cumulative counts to the probe total.

// exactConservationConfig builds an exact run that exercises several
// outcome classes at once: an egress filter (filtered), NAT'd hosts
// (private-dropped / nat-blocked), a sensor set (sensor-hit), and a full
// hit-list (infections).
func exactConservationConfig(t *testing.T) ExactConfig {
	t.Helper()
	pop := smallPop(t, 400, 21)
	if err := pop.AssignNAT(0.3, 0, 2); err != nil {
		t.Fatal(err)
	}
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	env := &netenv.Environment{}
	env.AddEgressFilter(ipv4.MustParsePrefix("0.0.0.0/1"), 0.5)
	fleet, err := detect.NewThresholdFleet(
		[]ipv4.Prefix{ipv4.MustParsePrefix("200.1.2.0/24")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ExactConfig{
		Pop: pop, Env: env,
		Factory:  worm.HitListFactory{ListSet: ipv4.SetOfPrefixes(list...)},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60,
		SeedHosts: 8, Seed: 22, StopWhenInfected: 350,
		SensorSet: fleet.Union(),
	}
}

func TestExactProbeConservation(t *testing.T) {
	res, err := RunExact(exactConservationConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var probeSum uint64
	for i, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			t.Fatalf("tick %d: outcomes sum to %d, probes %d (%s)", i, got, ti.Probes, ti.Outcomes)
		}
		probeSum += ti.Probes
	}
	if got := res.Outcomes.Total(); got != probeSum {
		t.Fatalf("cumulative outcomes sum to %d, total probes %d", got, probeSum)
	}
	if res.Outcomes[OutcomeInfection] == 0 {
		t.Error("hit-list run recorded no infection outcomes")
	}
	if res.Outcomes[OutcomeFiltered] == 0 {
		t.Error("run with a 50% egress filter recorded no filtered outcomes")
	}
	if res.Outcomes[OutcomePrivateDropped] == 0 {
		t.Error("NAT'd run recorded no private-dropped outcomes")
	}
}

func TestFastProbeConservation(t *testing.T) {
	pop := smallPop(t, 400, 23)
	fleet, err := detect.NewThresholdFleet(
		detect.OnePerSlash16([]uint32{200 << 24}, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFast(FastConfig{
		Pop: pop, Model: NewCodeRedIIModel(),
		ScanRate: 500, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 24,
		Sensors: fleet, SensorSet: fleet.Union(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var probeSum uint64
	for i, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			t.Fatalf("tick %d: outcomes sum to %d, probes %d (%s)", i, got, ti.Probes, ti.Outcomes)
		}
		probeSum += ti.Probes
	}
	if got := res.Outcomes.Total(); got != probeSum {
		t.Fatalf("cumulative outcomes sum to %d, total probes %d", got, probeSum)
	}
	if res.Outcomes[OutcomeInfection] == 0 {
		t.Error("epidemic recorded no infection outcomes")
	}
}

func TestFastTickOutcomesConserveOnOvershoot(t *testing.T) {
	// Regression: realized Poisson infection/sensor draws are not bounded
	// by the tick's expected probe count. When they overshoot it, the
	// probe total must widen to the realized sum instead of silently
	// breaking Outcomes.Total() == Probes.
	cases := []struct {
		name        string
		probes      float64
		newInf      int
		sensorDraws uint64
		deliver     float64
	}{
		{"overshoot small tick", 1.4, 2, 1, 0.5},
		{"overshoot zero expectation", 0.4, 1, 0, 1},
		{"normal tick", 1000, 3, 2, 0.8},
		{"all filtered", 100, 0, 0, 0},
	}
	for _, tc := range cases {
		probes, outcomes := closeFastTickOutcomes(tc.probes, tc.newInf, tc.sensorDraws, 0, tc.deliver, 0)
		if got := outcomes.Total(); got != probes {
			t.Errorf("%s: outcomes sum to %d, probes %d (%s)", tc.name, got, probes, outcomes)
		}
		if outcomes[OutcomeInfection] != uint64(tc.newInf) || outcomes[OutcomeSensorHit] != tc.sensorDraws {
			t.Errorf("%s: realized draws must be kept as counted, got %s", tc.name, outcomes)
		}
		if want := uint64(tc.probes); probes < want {
			t.Errorf("%s: probe total %d shrank below emitted %d", tc.name, probes, want)
		}
	}
}

func TestExactOnProbeSeesExactlyPublicDeliveredProbes(t *testing.T) {
	// Without NAT'd hosts every private destination is dropped before
	// OnProbe, and the only other pre-OnProbe drop is the environment
	// filter — so the OnProbe call count is exactly probes − filtered −
	// private-dropped.
	pop := smallPop(t, 300, 25)
	env := &netenv.Environment{}
	env.AddEgressFilter(ipv4.MustParsePrefix("0.0.0.0/1"), 0.5)
	var onProbe uint64
	res, err := RunExact(ExactConfig{
		Pop: pop, Env: env, Factory: worm.UniformFactory{},
		ScanRate: 1000, TickSeconds: 1, MaxSeconds: 40, SeedHosts: 10, Seed: 26,
		OnProbe: func(src, dst ipv4.Addr) { onProbe++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Outcomes.Total() -
		res.Outcomes[OutcomeFiltered] - res.Outcomes[OutcomePrivateDropped]
	if onProbe != want {
		t.Errorf("OnProbe called %d times, want %d (%s)", onProbe, want, res.Outcomes)
	}
	if res.Outcomes[OutcomeFiltered] == 0 {
		t.Error("expected some filtered probes under a 50% egress filter")
	}
}

func TestExactOnTickEarlyStopStillFlushesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := exactConservationConfig(t)
	cfg.Metrics = reg
	cfg.StopWhenInfected = 0
	ticks := 0
	cfg.OnTick = func(ti TickInfo) bool {
		ticks++
		return ticks < 5
	}
	res, err := RunExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("OnTick stop after 5 ticks produced %d series entries", len(res.Series))
	}
	if got := reg.Counter("sim_ticks_total", "driver", "exact").Value(); got != 5 {
		t.Errorf("sim_ticks_total = %d, want 5 (every emitted tick flushed)", got)
	}
	var probeSum uint64
	for _, ti := range res.Series {
		probeSum += ti.Probes
	}
	if got := reg.Counter("sim_probes_emitted_total", "driver", "exact").Value(); got != probeSum {
		t.Errorf("sim_probes_emitted_total = %d, want %d", got, probeSum)
	}
}

func TestExactOnTickFalseOverridesStopWhenInfected(t *testing.T) {
	// OnTick runs before the StopWhenInfected check; returning false on the
	// first tick must end the run even though the infection target is far
	// away, and returning true must let StopWhenInfected do its job.
	pop := smallPop(t, 500, 2)
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	base := ExactConfig{
		Pop:      pop,
		Factory:  worm.HitListFactory{ListSet: ipv4.SetOfPrefixes(list...)},
		ScanRate: 20000, TickSeconds: 1, MaxSeconds: 1000,
		SeedHosts: 5, Seed: 3, StopWhenInfected: 100,
	}

	cfg := base
	cfg.OnTick = func(TickInfo) bool { return false }
	res, err := RunExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Errorf("OnTick=false ran %d ticks, want 1", len(res.Series))
	}

	cfg = base
	cfg.OnTick = func(TickInfo) bool { return true }
	res, err = RunExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected < 100 || res.Final.Time >= 1000 {
		t.Errorf("StopWhenInfected did not engage: infected=%d t=%.0f",
			res.Final.Infected, res.Final.Time)
	}
}

func TestExactMetricsMatchResultOutcomes(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &obs.SimClock{}
	cfg := exactConservationConfig(t)
	cfg.Metrics = reg
	cfg.Clock = clock
	res, err := RunExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var probeSum uint64
	for _, ti := range res.Series {
		probeSum += ti.Probes
	}
	for i := 0; i < NumOutcomes; i++ {
		ctr := reg.Counter("sim_probes_total",
			"driver", "exact", "outcome", ProbeOutcome(i).String())
		if got := ctr.Value(); got != res.Outcomes[i] {
			t.Errorf("sim_probes_total{outcome=%s} = %d, Result says %d",
				ProbeOutcome(i), got, res.Outcomes[i])
		}
	}
	if got := reg.Counter("sim_probes_emitted_total", "driver", "exact").Value(); got != probeSum {
		t.Errorf("sim_probes_emitted_total = %d, want %d", got, probeSum)
	}
	if got := reg.Counter("sim_ticks_total", "driver", "exact").Value(); got != uint64(len(res.Series)) {
		t.Errorf("sim_ticks_total = %d, want %d", got, len(res.Series))
	}
	if got := clock.Seconds(); got != res.Final.Time {
		t.Errorf("clock = %v at end of run, want final tick time %v", got, res.Final.Time)
	}
}

func TestTimeToFractionTinyFractionNeedsAnInfection(t *testing.T) {
	// Regression: with a large population, a tiny fraction rounds to a
	// target of zero hosts, which the first tick satisfies vacuously even
	// when nothing is infected. The target must clamp to one host.
	res := &Result{
		InfectionTime: make([]float64, 100000),
		Series: []TickInfo{
			{Time: 1, Infected: 0},
			{Time: 2, Infected: 0},
			{Time: 3, Infected: 7},
		},
	}
	tt, ok := res.TimeToFraction(0.000001)
	if !ok || tt != 3 {
		t.Errorf("TimeToFraction(1e-6) = (%v, %v), want (3, true): zero-infection ticks must not satisfy a positive fraction", tt, ok)
	}
	// A run that never infects anyone never reaches any positive fraction.
	res.Series = res.Series[:2]
	if _, ok := res.TimeToFraction(0.000001); ok {
		t.Error("TimeToFraction reported success on a run with zero infections")
	}
}
