package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/trace"
)

// These tests enforce the internet-scale fast driver's tentpole guarantee:
// Workers and the quiescent-tick fast path are throughput knobs, never
// semantics knobs. For a fixed seed, every worker count and both tick-skip
// settings must yield byte-identical results — Result series, per-host
// infection times, cumulative outcome tallies, sensor-fleet state, and the
// complete flight-recorder event stream.

// serializeFastRun renders everything a fast run produced, including the
// trace NDJSON (which pins infection order and component attribution).
func serializeFastRun(t *testing.T, res *Result, fleet *detect.ThresholdFleet, rec *trace.Recorder) string {
	t.Helper()
	var out strings.Builder
	for _, ti := range res.Series {
		fmt.Fprintf(&out, "%x %d %d %d %v\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes, ti.Outcomes)
	}
	for id, it := range res.InfectionTime {
		if it >= 0 {
			fmt.Fprintf(&out, "inf %d %x\n", id, it)
		}
	}
	fmt.Fprintf(&out, "cum %v\n", res.Outcomes)
	if fleet != nil {
		fmt.Fprintf(&out, "fleet hits=%d alerted=%d counts=%v\n",
			fleet.TotalHits(), fleet.NumAlerted(), fleet.Counts())
	}
	if rec != nil {
		if err := rec.WriteNDJSON(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

// runFastLoaded executes one fully loaded fast run — NAT sites, loss, a
// hard-blocked /8, a sensor fleet, a fault plan with an outage, bursty
// loss, and delayed/duplicated reporting, plus a containment policy that
// engages mid-run — and serializes everything.
func runFastLoaded(t *testing.T, workers int, noskip bool) string {
	t.Helper()
	pop := smallPop(t, 600, 77)
	if err := pop.AssignNAT(0.3, 8, 5); err != nil {
		t.Fatal(err)
	}
	fleet := detect.MustNewThresholdFleet([]ipv4.Prefix{
		ipv4.MustParsePrefix("200.10.0.0/20"),
		ipv4.MustParsePrefix("201.20.64.0/22"),
	}, 3)
	plan, err := faults.Compile(faults.Config{
		Seed: 99,
		Outages: []faults.OutageConfig{
			{Block: "201.20.64.0/22", Start: 10, End: 25},
		},
		Burst:     &faults.BurstConfig{MeanGood: 12, MeanBad: 4, LossGood: 0.02, LossBad: 0.5},
		Reporting: &faults.ReportingConfig{Delay: 2, DupProb: 0.1},
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	var clock obs.SimClock
	ticks := 0
	res, err := RunFast(FastConfig{
		Pop:             pop,
		Model:           NewCodeRedIIModel(),
		ScanRate:        500,
		TickSeconds:     1,
		MaxSeconds:      40,
		SeedHosts:       10,
		Seed:            4242,
		Workers:         workers,
		DisableTickSkip: noskip,
		LossRate:        0.05,
		BlockedDst:      ipv4.SetOfPrefixes(ipv4.MustParsePrefix("20.0.0.0/8")),
		Sensors:         fleet,
		SensorSet:       fleet.Union(),
		Faults:          plan,
		Trace:           rec,
		Clock:           &clock,
		Containment: &Containment{
			Trigger: func() bool { ticks++; return ticks >= 12 },
			Drop:    0.4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return serializeFastRun(t, res, fleet, rec)
}

func TestRunFastWorkersByteIdentical(t *testing.T) {
	want := runFastLoaded(t, 1, false)
	for _, workers := range []int{2, 4, 8} {
		if got := runFastLoaded(t, workers, false); got != want {
			t.Errorf("Workers=%d diverged from Workers=1:\n--- workers=1 ---\n%.2000s\n--- workers=%d ---\n%.2000s",
				workers, want, workers, got)
		}
	}
}

// TestRunFastWorkersDefault: Workers = 0 (the GOMAXPROCS default) must
// also match the serial path — the default configuration is not a separate
// code path with separate semantics.
func TestRunFastWorkersDefault(t *testing.T) {
	if got, want := runFastLoaded(t, 0, false), runFastLoaded(t, 1, false); got != want {
		t.Error("Workers=0 (GOMAXPROCS default) diverged from Workers=1")
	}
}

// TestRunFastTickSkipByteIdentical: the quiescent-tick fast path consumes
// exactly the RNG draws the two-phase path would, so forcing every tick
// through the two-phase path (DisableTickSkip) must not change a byte —
// under both serial and parallel workers.
func TestRunFastTickSkipByteIdentical(t *testing.T) {
	want := runFastLoaded(t, 1, false)
	for _, workers := range []int{1, 4} {
		if got := runFastLoaded(t, workers, true); got != want {
			t.Errorf("DisableTickSkip with Workers=%d diverged from the default path", workers)
		}
	}
}

// TestRunFastQuiescentSkipByteIdentical exercises a scenario that is
// mostly quiescent — a tiny scan rate against sparse space, where nearly
// every tick takes the gate-only fast path — and pins it against the
// forced two-phase path. The skipped ticks' rows must still be emitted,
// unchanged.
func TestRunFastQuiescentSkipByteIdentical(t *testing.T) {
	run := func(workers int, noskip bool) string {
		pop := smallPop(t, 300, 21)
		rec := trace.NewRecorder(0)
		res, err := RunFast(FastConfig{
			Pop: pop, Model: NewCodeRedIIModel(),
			ScanRate: 2, TickSeconds: 1, MaxSeconds: 600, SeedHosts: 3, Seed: 7,
			Workers: workers, DisableTickSkip: noskip, Trace: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return serializeFastRun(t, res, nil, rec)
	}
	want := run(1, false)
	if len(strings.Split(want, "\n")) < 600 {
		t.Fatal("fixture not quiescent enough to exercise the fast path")
	}
	for _, workers := range []int{1, 4} {
		if got := run(workers, true); got != want {
			t.Errorf("quiescent run diverged (workers=%d, noskip)", workers)
		}
	}
}

// manyCompModel splits the uniform scanner into eight 1/8-weight octant
// components, so every host's group carries more components than any
// local-preference model — the coverage the old >4-pool membership spill
// path had, re-targeted at the span-union pool representation.
type manyCompModel struct {
	octants []*ipv4.Set
}

func newManyCompModel() *manyCompModel {
	m := &manyCompModel{}
	for i := 0; i < 8; i++ {
		lo := ipv4.Addr(uint32(i) << 29)
		hi := ipv4.Addr(uint32(i)<<29 | 0x1fffffff)
		m.octants = append(m.octants, ipv4.NewSet(ipv4.Interval{Lo: lo, Hi: hi}))
	}
	return m
}

func (m *manyCompModel) GroupKey(population.Host) uint64 { return 0 }

func (m *manyCompModel) Components(population.Host) []Component {
	comps := make([]Component, 0, 8)
	for _, s := range m.octants {
		comps = append(comps, Component{Weight: 0.125, Set: s})
	}
	return comps
}

func (m *manyCompModel) Name() string { return "octants" }

// TestRunFastManyComponentModel drives a group with eight components —
// every public host belongs to every octant pool's span union — and
// checks the epidemic saturates deterministically and byte-identically
// across worker counts.
func TestRunFastManyComponentModel(t *testing.T) {
	run := func(workers int) string {
		pop := smallPop(t, 400, 11)
		res, err := RunFast(FastConfig{
			Pop: pop, Model: newManyCompModel(),
			ScanRate: 200000, TickSeconds: 1, MaxSeconds: 600, SeedHosts: 5, Seed: 9,
			Workers: workers, StopWhenInfected: 350,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final.Infected < 350 {
			t.Fatalf("eight-component epidemic stalled at %d infected", res.Final.Infected)
		}
		return serializeFastRun(t, res, nil, nil)
	}
	if got, want := run(4), run(1); got != want {
		t.Error("eight-component model diverged across worker counts")
	}
}

// privateOnlyModel confines every probe to the host's NAT site (a pure
// LAN worm): one Private component over 192.168/16.
type privateOnlyModel struct {
	private *ipv4.Set
}

func (m *privateOnlyModel) GroupKey(h population.Host) uint64 { return uint64(h.Site) }

func (m *privateOnlyModel) Components(population.Host) []Component {
	return []Component{{Weight: 1, Set: m.private, Private: true}}
}

func (m *privateOnlyModel) Name() string { return "private-only" }

// TestRunFastPrivatePoolsPerSite checks the NAT-site arena regions: a
// private-only scanner must saturate exactly the sites that received a
// seed and never touch the others.
func TestRunFastPrivatePoolsPerSite(t *testing.T) {
	pop := smallPop(t, 200, 55)
	if err := pop.AssignNAT(1.0, 20, 9); err != nil {
		t.Fatal(err)
	}
	model := &privateOnlyModel{private: ipv4.SetOfPrefixes(ipv4.MustParsePrefix("192.168.0.0/16"))}
	res, err := RunFast(FastConfig{
		Pop: pop, Model: model,
		ScanRate: 5000, TickSeconds: 1, MaxSeconds: 400, SeedHosts: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeded := map[int]bool{}
	for i, it := range res.InfectionTime {
		if it == 0 {
			seeded[pop.Host(i).Site] = true
		}
	}
	var want, got int
	for i := 0; i < pop.Size(); i++ {
		if seeded[pop.Host(i).Site] {
			want++
		}
		if res.InfectionTime[i] >= 0 {
			got++
			if !seeded[pop.Host(i).Site] {
				t.Fatalf("host %d infected in unseeded site %d", i, pop.Host(i).Site)
			}
		}
	}
	if got != want {
		t.Errorf("private-only epidemic infected %d of the %d hosts in seeded sites", got, want)
	}
}

// TestRunFastSteadyStateAllocs gates the tick loop's allocation churn: a
// 200-tick CodeRedII run must stay within a small allocation budget once
// the arena and rate caches are built. The pre-arena driver spent ~26k
// allocations per run on pool compaction alone; the span/bitset engine
// does none of that.
func TestRunFastSteadyStateAllocs(t *testing.T) {
	pop := smallPop(t, 2000, 17)
	if err := pop.AssignNAT(0.3, 5, 3); err != nil {
		t.Fatal(err)
	}
	model := NewCodeRedIIModel()
	cfg := FastConfig{
		Pop: pop, Model: model,
		ScanRate: 5000, TickSeconds: 1, MaxSeconds: 200, SeedHosts: 25, Seed: 18,
	}
	// Warm the model's per-prefix set caches (shared across runs).
	if _, err := RunFast(cfg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := RunFast(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: population-proportional setup (arena, live index, infection
	// times) plus per-group construction — but nothing per tick per pool.
	const budget = 4000
	if avg > budget {
		t.Errorf("RunFast allocations per run = %.0f, want ≤ %d", avg, budget)
	}
}
