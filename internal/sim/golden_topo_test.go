package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/trace"
	"repro/internal/worm"
)

// These hashes pin the IPv4 world's output across the Topology refactor:
// they were captured from the pre-refactor drivers, so any change to what
// RunExact or RunFast produces on an IPv4 scenario — including the trace
// byte stream — fails here even if both drivers change in lockstep. The
// configs below deliberately load every IPv4-specific feature the
// refactor touches: NAT sites, blocked destination space, sensor
// embedding, environment filters, and a fault plan.
//
// If a future PR changes IPv4 output ON PURPOSE (a semantic change, not a
// refactor), re-pin by running with -run TestIPv4GoldenByteIdentity -v
// and copying the printed hashes — and say so in the PR.
const (
	goldenExactW1 = "2a59eef812c1e6d8eefd8fd07eb5ab1b7c56edaea67051b776c120d659f6ec1e"
	goldenExactW4 = "2a59eef812c1e6d8eefd8fd07eb5ab1b7c56edaea67051b776c120d659f6ec1e"
	goldenFastW1  = "d3769a484b3620a1cb3155e530091f08b4d8aec038108301f16ac9a618cf84b8"
	goldenFastW4  = "d3769a484b3620a1cb3155e530091f08b4d8aec038108301f16ac9a618cf84b8"
)

// goldenSerialize renders every observable of a run byte-stably: the tick
// series with %x float times, per-host infection times, cumulative
// outcomes, recorded sensor hits, and the full trace NDJSON.
func goldenSerialize(t *testing.T, res *Result, hits []ipv4.Addr, rec *trace.Recorder) string {
	t.Helper()
	var b strings.Builder
	for _, ti := range res.Series {
		fmt.Fprintf(&b, "%x %d %d %d %v\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes, ti.Outcomes)
	}
	for id, it := range res.InfectionTime {
		if it >= 0 {
			fmt.Fprintf(&b, "inf %d %x\n", id, it)
		}
	}
	fmt.Fprintf(&b, "cum %v\n", res.Outcomes)
	for _, dst := range hits {
		fmt.Fprintf(&b, "hit %d\n", uint32(dst))
	}
	b.WriteString("trace\n")
	if err := rec.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func goldenHash(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// addrCollector is a minimal HitRecorder: it retains monitored-probe
// destinations in arrival order so sensor routing is part of the pin.
type addrCollector struct{ hits []ipv4.Addr }

func (c *addrCollector) RecordHit(dst ipv4.Addr) { c.hits = append(c.hits, dst) }

func goldenPlan(t *testing.T) *faults.Plan {
	t.Helper()
	plan, err := faults.Compile(faults.Config{
		Seed: 99,
		Outages: []faults.OutageConfig{
			{Block: "201.20.64.0/22", Start: 10, End: 25},
		},
		Burst: &faults.BurstConfig{MeanGood: 12, MeanBad: 4, LossGood: 0.02, LossBad: 0.5},
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func goldenSensorSet() *ipv4.Set {
	return ipv4.SetOfPrefixes(
		ipv4.MustParsePrefix("200.10.0.0/20"),
		ipv4.MustParsePrefix("201.20.64.0/22"),
	)
}

func goldenExactRun(t *testing.T, workers int) string {
	t.Helper()
	pop := smallPop(t, 600, 77)
	if err := pop.AssignNAT(0.3, 8, 5); err != nil {
		t.Fatal(err)
	}
	env := &netenv.Environment{}
	if err := env.SetLossRate(0.05); err != nil {
		t.Fatal(err)
	}
	env.AddEgressFilter(ipv4.MustParsePrefix("20.0.0.0/8"), 0.5)
	col := &addrCollector{}
	rec := trace.NewRecorder(0)
	res, err := RunExact(ExactConfig{
		Pop:         pop,
		Factory:     worm.CodeRedIIFactory{},
		Env:         env,
		ScanRate:    500,
		TickSeconds: 1,
		MaxSeconds:  40,
		SeedHosts:   10,
		Seed:        4242,
		Workers:     workers,
		SensorSet:   goldenSensorSet(),
		OnProbe:     func(_, dst ipv4.Addr) { col.RecordHit(dst) },
		Faults:      goldenPlan(t),
		Trace:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return goldenSerialize(t, res, col.hits, rec)
}

func goldenFastRun(t *testing.T, workers int) string {
	t.Helper()
	pop := smallPop(t, 600, 77)
	if err := pop.AssignNAT(0.3, 8, 5); err != nil {
		t.Fatal(err)
	}
	col := &addrCollector{}
	rec := trace.NewRecorder(0)
	res, err := RunFast(FastConfig{
		Pop:         pop,
		Model:       NewCodeRedIIModel(),
		ScanRate:    300,
		TickSeconds: 1,
		MaxSeconds:  40,
		SeedHosts:   10,
		Seed:        4242,
		Workers:     workers,
		LossRate:    0.05,
		BlockedDst:  ipv4.SetOfPrefixes(ipv4.MustParsePrefix("30.0.0.0/8")),
		Sensors:     col,
		SensorSet:   goldenSensorSet(),
		Faults:      goldenPlan(t),
		Trace:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return goldenSerialize(t, res, col.hits, rec)
}

// TestIPv4GoldenByteIdentity holds both drivers to the pre-Topology-
// refactor output, byte for byte, across serial and parallel worker
// counts. Run with -v to see the hashes (for deliberate re-pinning).
func TestIPv4GoldenByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		want string
		run  func(*testing.T) string
	}{
		{"exact-workers1", goldenExactW1, func(t *testing.T) string { return goldenExactRun(t, 1) }},
		{"exact-workers4", goldenExactW4, func(t *testing.T) string { return goldenExactRun(t, 4) }},
		{"fast-workers1", goldenFastW1, func(t *testing.T) string { return goldenFastRun(t, 1) }},
		{"fast-workers4", goldenFastW4, func(t *testing.T) string { return goldenFastRun(t, 4) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenHash(tc.run(t))
			t.Logf("%s hash %s", tc.name, got)
			if got != tc.want {
				t.Errorf("%s output hash %s, pinned pre-refactor hash %s", tc.name, got, tc.want)
			}
		})
	}
}
