package sim

import (
	"math"
	"testing"

	"repro/internal/population"
	"repro/internal/worm"
)

// fuzzPop builds the shared tiny population the validation fuzzers reuse
// across iterations (synthesis is far too slow to run per input).
func fuzzPop(f *testing.F) *population.Population {
	f.Helper()
	p, err := population.Synthesize(population.Config{
		Size: 50, Slash8s: 3, Slash16s: 6, Seed: 11,
	})
	if err != nil {
		f.Fatal(err)
	}
	return p
}

// boundedWork reports whether a validated config is cheap enough to
// actually run inside the fuzzer: validation promising "no panic, no
// effectively-infinite loop" is only credible if some accepted configs are
// executed end to end.
func boundedWork(popSize int, scanRate, tickSeconds, maxSeconds float64) bool {
	steps := maxSeconds / tickSeconds
	ppt := scanRate * tickSeconds
	return steps*ppt*float64(popSize) < 1e6
}

// FuzzExactConfigValidation asserts ExactConfig validation turns hostile
// numeric values — negative workers, zero ticks, NaN/Inf rates and
// horizons, absurd magnitudes, an absent population with nonzero seeds —
// into errors rather than panics or unbounded loops, and that configs it
// does accept imply bounded work.
func FuzzExactConfigValidation(f *testing.F) {
	pop := fuzzPop(f)
	// One corpus seed per hostile value from the bug sweep, plus a sane one.
	f.Add(10.0, 1.0, 30.0, int64(2), int64(3), false)       // valid baseline
	f.Add(10.0, 1.0, 30.0, int64(-4), int64(3), false)      // negative workers
	f.Add(10.0, 0.0, 30.0, int64(1), int64(3), false)       // zero tick
	f.Add(math.NaN(), 1.0, 30.0, int64(1), int64(3), false) // NaN rate
	f.Add(10.0, 1.0, math.Inf(1), int64(1), int64(3), false)
	f.Add(10.0, math.SmallestNonzeroFloat64, 1e300, int64(1), int64(3), false) // ~1e308 ticks
	f.Add(1e300, 1e300, 1e301, int64(1), int64(3), false)                      // probe-count overflow
	f.Add(10.0, 1.0, 30.0, int64(1), int64(3), true)                           // no population, nonzero seeds
	f.Add(10.0, 1.0, 30.0, int64(1), int64(0), false)                          // zero seeds
	f.Fuzz(func(t *testing.T, scanRate, tick, horizon float64, workers, seedHosts int64, nilPop bool) {
		cfg := ExactConfig{
			Factory:     worm.UniformFactory{},
			ScanRate:    scanRate,
			TickSeconds: tick,
			MaxSeconds:  horizon,
			SeedHosts:   int(seedHosts % 1e6),
			Seed:        1,
			Workers:     int(workers % 1e4),
		}
		if !nilPop {
			cfg.Pop = pop
		}
		if err := cfg.validate(); err != nil {
			return // rejected: exactly what hostile inputs should get
		}
		// Accepted: the config must imply bounded work.
		steps := cfg.MaxSeconds / cfg.TickSeconds
		if !(steps >= 1 && steps <= maxTicks) {
			t.Fatalf("validated config allows %v ticks", steps)
		}
		if ppt := cfg.ScanRate * cfg.TickSeconds; !(ppt <= maxProbesPerHostTick) {
			t.Fatalf("validated config allows %v probes per host per tick", ppt)
		}
		if cfg.Workers < 0 {
			t.Fatalf("validated config kept negative workers %d", cfg.Workers)
		}
		if boundedWork(cfg.Pop.Size(), cfg.ScanRate, cfg.TickSeconds, cfg.MaxSeconds) {
			res, err := RunExact(cfg)
			if err != nil {
				t.Fatalf("validated config failed to run: %v", err)
			}
			for _, ti := range res.Series {
				if ti.Outcomes.Total() != ti.Probes {
					t.Fatalf("conservation broken at t=%v: %v vs %d", ti.Time, ti.Outcomes, ti.Probes)
				}
			}
		}
	})
}

// FuzzFastConfigValidation is the FastConfig counterpart, adding the loss
// rate and containment drop to the hostile surface.
func FuzzFastConfigValidation(f *testing.F) {
	pop := fuzzPop(f)
	f.Add(10.0, 1.0, 30.0, 0.1, int64(3), false)       // valid baseline
	f.Add(10.0, 0.0, 30.0, 0.1, int64(3), false)       // zero tick
	f.Add(math.NaN(), 1.0, 30.0, 0.1, int64(3), false) // NaN rate
	f.Add(10.0, 1.0, math.Inf(1), 0.1, int64(3), false)
	f.Add(10.0, 1.0, 30.0, math.NaN(), int64(3), false) // NaN loss
	f.Add(10.0, 1.0, 30.0, -0.5, int64(3), false)       // negative loss
	f.Add(1e300, 1e300, 1e301, 0.1, int64(3), false)    // probe-count overflow
	f.Add(10.0, 1.0, 30.0, 0.1, int64(3), true)         // no population, nonzero seeds
	f.Fuzz(func(t *testing.T, scanRate, tick, horizon, loss float64, seedHosts int64, nilPop bool) {
		cfg := FastConfig{
			Model:       NewUniformModel(),
			ScanRate:    scanRate,
			TickSeconds: tick,
			MaxSeconds:  horizon,
			SeedHosts:   int(seedHosts % 1e6),
			Seed:        1,
			LossRate:    loss,
		}
		if !nilPop {
			cfg.Pop = pop
		}
		if err := cfg.validate(); err != nil {
			return
		}
		steps := cfg.MaxSeconds / cfg.TickSeconds
		if !(steps >= 1 && steps <= maxTicks) {
			t.Fatalf("validated config allows %v ticks", steps)
		}
		if ppt := cfg.ScanRate * cfg.TickSeconds; !(ppt <= maxProbesPerHostTick) {
			t.Fatalf("validated config allows %v probes per host per tick", ppt)
		}
		if !(cfg.LossRate >= 0 && cfg.LossRate < 1) {
			t.Fatalf("validated config kept loss rate %v", cfg.LossRate)
		}
		if boundedWork(cfg.Pop.Size(), cfg.ScanRate, cfg.TickSeconds, cfg.MaxSeconds) {
			res, err := RunFast(cfg)
			if err != nil {
				t.Fatalf("validated config failed to run: %v", err)
			}
			for _, ti := range res.Series {
				if ti.Outcomes.Total() != ti.Probes {
					t.Fatalf("conservation broken at t=%v: %v vs %d", ti.Time, ti.Outcomes, ti.Probes)
				}
			}
		}
	})
}
