package sim

import (
	"fmt"

	"repro/internal/topo"
)

// graphTopology resolves a config's Topology field to the graph world it
// names, if any. A nil Topology and the explicit topo.IPv4 both mean the
// reference IPv4 world, which runs on the drivers' original path; any
// topo.Graph runs on the graph drivers; anything else is unsupported.
func graphTopology(t topo.Topology) (topo.Graph, error) {
	switch w := t.(type) {
	case nil:
		return nil, nil
	case topo.IPv4:
		return nil, nil
	case topo.Graph:
		return w, nil
	default:
		return nil, fmt.Errorf("sim: unsupported topology %q (%T)", t.Name(), t)
	}
}

// TopologyConflictError reports a config field that has no defined
// semantics under the run's topology. The drivers refuse such configs
// instead of silently ignoring the field: a caller who set NAT-site
// populations or address-block sensors on a graph world is holding a
// model mismatch, not a default.
type TopologyConflictError struct {
	// Topology is the selected world's name.
	Topology string
	// Field is the conflicting config field.
	Field string
	// Reason says why the combination is undefined.
	Reason string
}

func (e *TopologyConflictError) Error() string {
	return fmt.Sprintf("sim: %s has no defined semantics on topology %q: %s", e.Field, e.Topology, e.Reason)
}

// topoConflict is one possible field/topology conflict to check.
type topoConflict struct {
	bad    bool
	field  string
	reason string
}

func firstConflict(name string, checks []topoConflict) error {
	for _, c := range checks {
		if c.bad {
			return &TopologyConflictError{Topology: name, Field: c.field, Reason: c.reason}
		}
	}
	return nil
}

// validateGraph checks an exact config against a graph world. The
// address-space machinery — populations with NAT sites, target-generator
// factories, netenv filtering, darknet sensor sets, fault plans over
// IPv4 blocks — is IPv4 semantics and is rejected with a typed error.
func (c *ExactConfig) validateGraph(g topo.Graph) error {
	err := firstConflict(g.Name(), []topoConflict{
		{c.Pop != nil, "Pop", "graph worlds carry their own node set; populations (and their NAT sites) are IPv4 address structure"},
		{c.Factory != nil, "Factory", "graph worms traverse neighbor lists, not address-space target generators"},
		{c.Env != nil, "Env", "netenv filters IPv4 address space, which graph nodes do not occupy"},
		{c.SensorSet != nil, "SensorSet", "graph sensors are nodes declared by the world, not darknet address blocks"},
		{c.OnProbe != nil, "OnProbe", "graph probes name node ids, not IPv4 source/destination addresses"},
		{c.Faults != nil, "Faults", "fault plans schedule outages over IPv4 blocks"},
	})
	if err != nil {
		return err
	}
	if err := checkTiming(c.ScanRate, c.TickSeconds, c.MaxSeconds); err != nil {
		return err
	}
	if c.ScanRate*c.TickSeconds > maxProbesPerHostTick {
		return fmt.Errorf("sim: %v probes per host per tick exceeds the %v cap", c.ScanRate*c.TickSeconds, float64(maxProbesPerHostTick))
	}
	if int(c.ScanRate*c.TickSeconds+0.5) < 1 {
		return fmt.Errorf("sim: exact driver needs ≥1 probe per host per tick")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d (0 means GOMAXPROCS)", c.Workers)
	}
	return checkGraphSeeds(g, c.SeedHosts)
}

// validateGraph checks a fast config against a graph world. Beyond the
// IPv4 address machinery, the fast graph driver also has no loss or
// containment channel: neighbor links are modeled lossless, so those
// fields are conflicts rather than silently dropped behavior.
func (c *FastConfig) validateGraph(g topo.Graph) error {
	err := firstConflict(g.Name(), []topoConflict{
		{c.Pop != nil, "Pop", "graph worlds carry their own node set; populations (and their NAT sites) are IPv4 address structure"},
		{c.Model != nil, "Model", "rate models mix IPv4 address ranges; graph rates come from neighbor-list geometry"},
		{c.BlockedDst != nil, "BlockedDst", "hard-blocked destination space is an IPv4 interval-set concept"},
		{c.Sensors != nil, "Sensors", "graph sensor hits are node events counted in outcomes, not address observations"},
		{c.SensorSet != nil, "SensorSet", "graph sensors are nodes declared by the world, not darknet address blocks"},
		{c.LossRate != 0, "LossRate", "graph neighbor links are modeled lossless; thin ScanRate instead"},
		{c.Containment != nil, "Containment", "containment scales delivery over the IPv4 wire model"},
		{c.Faults != nil, "Faults", "fault plans schedule outages over IPv4 blocks"},
	})
	if err != nil {
		return err
	}
	if err := checkTiming(c.ScanRate, c.TickSeconds, c.MaxSeconds); err != nil {
		return err
	}
	if c.ScanRate*c.TickSeconds > maxProbesPerHostTick {
		return fmt.Errorf("sim: %v probes per host per tick exceeds the %v cap", c.ScanRate*c.TickSeconds, float64(maxProbesPerHostTick))
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d (0 means GOMAXPROCS)", c.Workers)
	}
	return checkGraphSeeds(g, c.SeedHosts)
}

// checkGraphSeeds bounds SeedHosts by the world's susceptible (non-
// sensor) node count — sensor nodes can never be infected, seeds
// included.
func checkGraphSeeds(g topo.Graph, seedHosts int) error {
	sus := g.Nodes() - g.SensorCount()
	if seedHosts <= 0 || seedHosts > sus {
		return fmt.Errorf("sim: seed hosts %d out of range (graph has %d susceptible nodes)", seedHosts, sus)
	}
	return nil
}
