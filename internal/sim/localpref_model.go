package sim

import (
	"fmt"

	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/worm"
)

// LocalPrefModel is the fast-driver decomposition of a generic
// worm.Preference profile: each probability mass becomes a uniform
// component over the host's /8, /16, or /24, with the remainder over the
// full space. It generalizes CodeRedIIModel (without the NAT-specific
// private-space handling — use CodeRedIIModel for NAT'd populations).
type LocalPrefModel struct {
	prefs   worm.Preference
	full    *ipv4.Set
	slash8  map[uint32]*ipv4.Set
	slash16 map[uint32]*ipv4.Set
	slash24 map[uint32]*ipv4.Set
}

// NewLocalPrefModel builds the model; the profile must validate.
func NewLocalPrefModel(prefs worm.Preference) (*LocalPrefModel, error) {
	if err := prefs.Validate(); err != nil {
		return nil, err
	}
	return &LocalPrefModel{
		prefs:   prefs,
		full:    fullSpace(),
		slash8:  make(map[uint32]*ipv4.Set),
		slash16: make(map[uint32]*ipv4.Set),
		slash24: make(map[uint32]*ipv4.Set),
	}, nil
}

// GroupKey implements RateModel: the /24 fixes every mixture set.
func (m *LocalPrefModel) GroupKey(h population.Host) uint64 {
	return uint64(h.Addr.Slash24())
}

// Components implements RateModel.
func (m *LocalPrefModel) Components(h population.Host) []Component {
	rest := 1 - m.prefs.Same8 - m.prefs.Same16 - m.prefs.Same24
	comps := make([]Component, 0, 4)
	if rest > 0 {
		comps = append(comps, Component{Weight: rest, Set: m.full})
	}
	if m.prefs.Same8 > 0 {
		comps = append(comps, Component{Weight: m.prefs.Same8, Set: m.cached(m.slash8, h.Addr.Slash8(), 8)})
	}
	if m.prefs.Same16 > 0 {
		comps = append(comps, Component{Weight: m.prefs.Same16, Set: m.cached(m.slash16, h.Addr.Slash16(), 16)})
	}
	if m.prefs.Same24 > 0 {
		comps = append(comps, Component{Weight: m.prefs.Same24, Set: m.cached(m.slash24, h.Addr.Slash24(), 24)})
	}
	return comps
}

// Name implements RateModel.
func (m *LocalPrefModel) Name() string {
	return fmt.Sprintf("local-preference(%.3g/%.3g/%.3g)", m.prefs.Same8, m.prefs.Same16, m.prefs.Same24)
}

func (m *LocalPrefModel) cached(cache map[uint32]*ipv4.Set, net uint32, bits int) *ipv4.Set {
	if s, ok := cache[net]; ok {
		return s
	}
	p, err := ipv4.NewPrefix(ipv4.Addr(net<<(32-uint(bits))), bits)
	if err != nil {
		panic(err) // unreachable: bits ∈ {8,16,24}
	}
	s := ipv4.SetOfPrefixes(p)
	cache[net] = s
	return s
}
