package sim

import (
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/worm"
)

// These tests pin the fault-injection contract: a fault plan composes with
// both drivers without breaking probe conservation, the (seed, plan) pair
// pins a faulted run bit-for-bit, telemetry stays inert with faults
// attached, and a plan whose horizon undershoots the run is rejected.

// faultPlan builds a plan exercising outage + burst + reporting at once:
// one of the two sensor blocks is withdrawn for the whole horizon, the
// burst channel leaks probes in both states, and reports arrive 3 s late.
func faultPlan(t *testing.T, horizon float64) *faults.Plan {
	t.Helper()
	plan, err := faults.Compile(faults.Config{
		Seed: 99,
		Outages: []faults.OutageConfig{
			{Block: "200.0.0.0/8", Start: 0, End: horizon},
		},
		Burst:     &faults.BurstConfig{MeanGood: 30, MeanBad: 10, LossGood: 0.05, LossBad: 0.7},
		Reporting: &faults.ReportingConfig{Delay: 3, DupProb: 0},
	}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func twoBlockFleet(t *testing.T) *detect.ThresholdFleet {
	t.Helper()
	fleet, err := detect.NewThresholdFleet([]ipv4.Prefix{
		ipv4.MustParsePrefix("200.0.0.0/8"),
		ipv4.MustParsePrefix("201.0.0.0/8"),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func TestFaultHorizonValidated(t *testing.T) {
	pop := smallPop(t, 200, 31)
	short := faultPlan(t, 10)
	if _, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 10, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 4, Seed: 1,
		Faults: short,
	}); err == nil {
		t.Error("exact driver accepted a fault plan shorter than the run")
	}
	if _, err := RunFast(FastConfig{
		Pop: pop, Model: NewCodeRedIIModel(),
		ScanRate: 10, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 4, Seed: 1,
		Faults: short,
	}); err == nil {
		t.Error("fast driver accepted a fault plan shorter than the run")
	}
}

func TestExactConservationWithFaults(t *testing.T) {
	fleet := twoBlockFleet(t)
	pop := smallPop(t, 400, 21)
	res, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 22,
		SensorSet: fleet.Union(),
		OnProbe:   func(_, dst ipv4.Addr) { fleet.RecordHit(dst) },
		Faults:    faultPlan(t, 60),
	})
	if err != nil {
		t.Fatal(err)
	}
	var probeSum uint64
	for i, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			t.Fatalf("tick %d: outcomes sum to %d, probes %d (%s)", i, got, ti.Probes, ti.Outcomes)
		}
		probeSum += ti.Probes
	}
	if got := res.Outcomes.Total(); got != probeSum {
		t.Fatalf("cumulative outcomes sum to %d, total probes %d", got, probeSum)
	}
	if res.Outcomes[OutcomeBurstLost] == 0 {
		t.Error("leaky burst channel recorded no burst-lost outcomes")
	}
	if res.Outcomes[OutcomeSensorDown] == 0 {
		t.Error("withdrawn sensor block recorded no sensor-down outcomes")
	}
	if res.Outcomes[OutcomeSensorHit] == 0 {
		t.Error("the healthy sensor block recorded no hits")
	}
}

func TestFastConservationWithFaults(t *testing.T) {
	fleet := twoBlockFleet(t)
	pop := smallPop(t, 400, 23)
	res, err := RunFast(FastConfig{
		Pop: pop, Model: NewCodeRedIIModel(),
		ScanRate: 500, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 24,
		Sensors: fleet, SensorSet: fleet.Union(),
		Faults: faultPlan(t, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	var probeSum uint64
	for i, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			t.Fatalf("tick %d: outcomes sum to %d, probes %d (%s)", i, got, ti.Probes, ti.Outcomes)
		}
		probeSum += ti.Probes
	}
	if got := res.Outcomes.Total(); got != probeSum {
		t.Fatalf("cumulative outcomes sum to %d, total probes %d", got, probeSum)
	}
	if res.Outcomes[OutcomeBurstLost] == 0 {
		t.Error("leaky burst channel recorded no burst-lost outcomes")
	}
	if res.Outcomes[OutcomeSensorDown] == 0 {
		t.Error("withdrawn sensor block recorded no sensor-down outcomes")
	}
}

// TestFaultedRunsAreDeterministicAndTelemetryInert extends the determinism
// and telemetry-inertness guarantees to faulted runs: the (seed, plan) pair
// pins the run bit-for-bit, attaching a registry changes nothing, and two
// telemetry-on faulted runs snapshot identically (fault gauges included).
func TestFaultedRunsAreDeterministicAndTelemetryInert(t *testing.T) {
	pop := smallPop(t, 400, 31)
	exact := func(reg *obs.Registry) string {
		fleet := twoBlockFleet(t)
		cfg := ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
			SensorSet: fleet.Union(), OnProbe: func(_, dst ipv4.Addr) { fleet.RecordHit(dst) },
			Faults:  faultPlan(t, 60),
			Metrics: reg,
		}
		if reg != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}
	fast := func(reg *obs.Registry) string {
		fleet := twoBlockFleet(t)
		cfg := FastConfig{
			Pop: pop, Model: NewCodeRedIIModel(),
			ScanRate: 300, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 8, Seed: 5678,
			Sensors: fleet, SensorSet: fleet.Union(),
			Faults:  faultPlan(t, 300),
			Metrics: reg,
		}
		if reg != nil {
			cfg.Clock = &obs.SimClock{}
		}
		res, err := RunFast(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res)
	}

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	if off, on := exact(nil), exact(regA); off != on {
		t.Errorf("faulted RunExact diverged with telemetry attached:\noff:\n%son:\n%s", off, on)
	}
	if off, on := fast(nil), fast(regA); off != on {
		t.Errorf("faulted RunFast diverged with telemetry attached:\noff:\n%son:\n%s", off, on)
	}
	exact(regB)
	fast(regB)

	snapshot := func(reg *obs.Registry) string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := snapshot(regA), snapshot(regB); a != b {
		t.Errorf("two same-seed faulted runs produced different metric snapshots:\nA:\n%s\nB:\n%s", a, b)
	}
	if !strings.Contains(snapshot(regA), "faults_sensor_blocks_down") {
		t.Error("fault gauges missing from the telemetry snapshot")
	}
}

// TestReportingDelayPreservesObservations pins the reporter contract at the
// driver level: degraded reporting shifts *when* the detector hears about a
// probe, never *whether* — the end-of-run flush delivers everything, and
// the probe stream itself is untouched (the reporter draws no simulation
// randomness).
func TestReportingDelayPreservesObservations(t *testing.T) {
	pop := smallPop(t, 400, 21)
	run := func(plan *faults.Plan) (string, uint64) {
		var hits uint64
		cfg := ExactConfig{
			Pop: pop, Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: 30, SeedHosts: 8, Seed: 77,
			SensorSet: ipv4.SetOfPrefixes(ipv4.MustParsePrefix("200.0.0.0/8")),
			OnProbe: func(_, dst ipv4.Addr) {
				if dst>>24 == 200 {
					hits++
				}
			},
			Faults: plan,
		}
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return serializeSeries(t, res), hits
	}
	delayed, err := faults.Compile(faults.Config{
		Seed:      5,
		Reporting: &faults.ReportingConfig{Delay: 10, DupProb: 0},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	cleanSeries, cleanHits := run(nil)
	faultSeries, faultHits := run(delayed)
	if cleanSeries != faultSeries {
		t.Error("a reporting-only fault plan changed the probe stream")
	}
	if cleanHits != faultHits {
		t.Errorf("delayed reporting lost observations: %d clean, %d delayed", cleanHits, faultHits)
	}
	if cleanHits == 0 {
		t.Fatal("test never observed a monitored probe")
	}
}
