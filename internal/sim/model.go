package sim

import (
	"repro/internal/ipv4"
	"repro/internal/population"
)

// Component is one term of a scanner's target mixture: with probability
// Weight the next probe is drawn uniformly from Set.
type Component struct {
	Weight float64
	Set    *ipv4.Set
	// Private marks components whose targets never leave the host's NAT
	// site (e.g. CodeRedII's /16 preference evaluated at a 192.168.x.y
	// address). Probes from private components can only infect sitemates
	// and are invisible to darknet sensors.
	Private bool
}

// RateModel decomposes a memoryless scanner into mixture components so the
// fast driver can aggregate probes. Implementations must return identical
// (pointer-equal) Sets for hosts sharing a group, so per-set work is cached.
type RateModel interface {
	// GroupKey buckets hosts with identical component mixtures.
	GroupKey(h population.Host) uint64
	// Components returns the mixture for h's group.
	Components(h population.Host) []Component
	// Name identifies the model in reports.
	Name() string
}

// fullSpace returns the whole IPv4 space as a set.
func fullSpace() *ipv4.Set {
	return ipv4.NewSet(ipv4.Interval{Lo: 0, Hi: ipv4.MaxAddr})
}

// UniformModel is the rate model of a uniform scanner.
type UniformModel struct {
	full *ipv4.Set
}

// NewUniformModel returns the uniform rate model.
func NewUniformModel() *UniformModel {
	return &UniformModel{full: fullSpace()}
}

// GroupKey implements RateModel: every host behaves identically.
func (m *UniformModel) GroupKey(population.Host) uint64 { return 0 }

// Components implements RateModel.
func (m *UniformModel) Components(population.Host) []Component {
	return []Component{{Weight: 1, Set: m.full}}
}

// Name implements RateModel.
func (m *UniformModel) Name() string { return "uniform" }

// HitListModel is the rate model of a shared hit-list scanner.
type HitListModel struct {
	List *ipv4.Set
}

// GroupKey implements RateModel.
func (m *HitListModel) GroupKey(population.Host) uint64 { return 0 }

// Components implements RateModel.
func (m *HitListModel) Components(population.Host) []Component {
	return []Component{{Weight: 1, Set: m.List}}
}

// Name implements RateModel.
func (m *HitListModel) Name() string { return "hitlist" }

// CodeRedIIModel decomposes CRII's mask preference: 1/8 anywhere, 1/2 in
// the host's /8, 3/8 in the host's /16. For a NAT'd host the /16 term is
// private to its site and the /8 term covers public 192/8 — the leak that
// produces the Figure 4 hotspot.
//
// Approximations relative to the probe-exact CodeRedII generator (all
// validated against it in tests): the worm's rejection of loopback,
// multicast, and its own address is ignored (those probes are wasted in
// both drivers — the bias is < 2%), and the small 1/2·(1/256) mass a NAT'd
// host sends to its own private /16 via the /8 branch is folded into the
// public /8 component.
type CodeRedIIModel struct {
	full    *ipv4.Set
	private *ipv4.Set
	slash8  map[uint32]*ipv4.Set
	slash16 map[uint32]*ipv4.Set
}

// NewCodeRedIIModel returns a CRII rate model.
func NewCodeRedIIModel() *CodeRedIIModel {
	return &CodeRedIIModel{
		full:    fullSpace(),
		private: ipv4.SetOfPrefixes(ipv4.MustParsePrefix("192.168.0.0/16")),
		slash8:  make(map[uint32]*ipv4.Set),
		slash16: make(map[uint32]*ipv4.Set),
	}
}

// GroupKey implements RateModel: public hosts group by their /16 (which
// fixes both mixture sets); NAT'd hosts group by site.
func (m *CodeRedIIModel) GroupKey(h population.Host) uint64 {
	if h.IsNATed() {
		return 1<<32 | uint64(h.Site)
	}
	return uint64(h.Addr.Slash16())
}

// Components implements RateModel.
func (m *CodeRedIIModel) Components(h population.Host) []Component {
	own8 := m.slash8Set(h.Addr.Slash8())
	own16 := m.slash16Set(h.Addr.Slash16())
	if h.IsNATed() {
		return []Component{
			{Weight: 0.125, Set: m.full},
			{Weight: 0.5, Set: own8}, // public 192/8: the leak
			{Weight: 0.375, Set: m.private, Private: true},
		}
	}
	return []Component{
		{Weight: 0.125, Set: m.full},
		{Weight: 0.5, Set: own8},
		{Weight: 0.375, Set: own16},
	}
}

// Name implements RateModel.
func (m *CodeRedIIModel) Name() string { return "codered2" }

// slash8Set returns the cached /8 target set, with 192.168/16 carved out of
// 192/8 (those targets are private and handled by the private component).
func (m *CodeRedIIModel) slash8Set(o uint32) *ipv4.Set {
	if s, ok := m.slash8[o]; ok {
		return s
	}
	p, err := ipv4.NewPrefix(ipv4.Addr(o<<24), 8)
	if err != nil {
		panic(err) // unreachable: 8 is valid
	}
	s := ipv4.SetOfPrefixes(p)
	if o == 192 {
		s = s.Subtract(m.private)
	}
	m.slash8[o] = s
	return s
}

func (m *CodeRedIIModel) slash16Set(n uint32) *ipv4.Set {
	if s, ok := m.slash16[n]; ok {
		return s
	}
	p, err := ipv4.NewPrefix(ipv4.Addr(n<<16), 16)
	if err != nil {
		panic(err) // unreachable: 16 is valid
	}
	s := ipv4.SetOfPrefixes(p)
	m.slash16[n] = s
	return s
}
