package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/topo"
	"repro/internal/topo/proxgraph"
	"repro/internal/trace"
	"repro/internal/worm"
)

func testGraph(t *testing.T) topo.Graph {
	t.Helper()
	w, err := proxgraph.New(proxgraph.Config{Nodes: 700, Degree: 6, Sensors: 35, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func serializeGraphRun(t *testing.T, res *Result, rec *trace.Recorder) string {
	t.Helper()
	var b strings.Builder
	for _, ti := range res.Series {
		fmt.Fprintf(&b, "%x %d %d %d %v\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes, ti.Outcomes)
	}
	for id, it := range res.InfectionTime {
		if it >= 0 {
			fmt.Fprintf(&b, "inf %d %x\n", id, it)
		}
	}
	fmt.Fprintf(&b, "cum %v\n", res.Outcomes)
	b.WriteString("trace\n")
	if err := rec.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func runExactGraphCase(t *testing.T, g topo.Graph, workers int, withTrace bool) (*Result, string) {
	t.Helper()
	rec := trace.NewRecorder(0)
	cfg := ExactConfig{
		Topology:    g,
		ScanRate:    2,
		TickSeconds: 1,
		MaxSeconds:  30,
		SeedHosts:   5,
		Seed:        4242,
		Workers:     workers,
	}
	if withTrace {
		cfg.Trace = rec
	}
	res, err := RunExact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, serializeGraphRun(t, res, rec)
}

func runFastGraphCase(t *testing.T, g topo.Graph, workers int, noskip, withTrace bool) (*Result, string) {
	t.Helper()
	rec := trace.NewRecorder(0)
	cfg := FastConfig{
		Topology:        g,
		ScanRate:        2,
		TickSeconds:     1,
		MaxSeconds:      30,
		SeedHosts:       5,
		Seed:            4242,
		Workers:         workers,
		DisableTickSkip: noskip,
	}
	if withTrace {
		cfg.Trace = rec
	}
	res, err := RunFast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, serializeGraphRun(t, res, rec)
}

func TestRunExactGraphWorkersByteIdentical(t *testing.T) {
	g := testGraph(t)
	res, ref := runExactGraphCase(t, g, 1, true)
	if res.Final.Infected <= 5 {
		t.Fatalf("outbreak never spread past the %d seeds; adjust the scenario", 5)
	}
	for _, workers := range []int{2, 3, 4, 7} {
		if _, got := runExactGraphCase(t, g, workers, true); got != ref {
			t.Fatalf("workers=%d output differs from serial run", workers)
		}
	}
}

func TestRunFastGraphWorkersAndSkipByteIdentical(t *testing.T) {
	g := testGraph(t)
	res, ref := runFastGraphCase(t, g, 1, false, true)
	if res.Final.Infected <= 5 {
		t.Fatal("fast graph outbreak never spread past the seeds; adjust the scenario")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		for _, noskip := range []bool{false, true} {
			if workers == 1 && !noskip {
				continue // the reference run itself
			}
			if _, got := runFastGraphCase(t, g, workers, noskip, true); got != ref {
				t.Fatalf("workers=%d noskip=%v output differs from serial run", workers, noskip)
			}
		}
	}
}

func TestGraphTraceDoesNotPerturbRuns(t *testing.T) {
	g := testGraph(t)
	exOn, _ := runExactGraphCase(t, g, 4, true)
	exOff, _ := runExactGraphCase(t, g, 4, false)
	if exOn.Final != exOff.Final || len(exOn.Series) != len(exOff.Series) {
		t.Fatal("exact graph driver perturbed by trace attachment")
	}
	fsOn, _ := runFastGraphCase(t, g, 4, false, true)
	fsOff, _ := runFastGraphCase(t, g, 4, false, false)
	if fsOn.Final != fsOff.Final || len(fsOn.Series) != len(fsOff.Series) {
		t.Fatal("fast graph driver perturbed by trace attachment")
	}
}

func TestGraphOutcomeConservation(t *testing.T) {
	g := testGraph(t)
	res, _ := runExactGraphCase(t, g, 3, false)
	for i, ti := range res.Series {
		if ti.Outcomes.Total() != ti.Probes {
			t.Fatalf("tick %d: outcomes total %d != probes %d", i, ti.Outcomes.Total(), ti.Probes)
		}
	}
	fres, _ := runFastGraphCase(t, g, 3, false, false)
	for i, ti := range fres.Series {
		if ti.Outcomes.Total() != ti.Probes {
			t.Fatalf("fast tick %d: outcomes total %d != probes %d", i, ti.Outcomes.Total(), ti.Probes)
		}
	}
}

func TestGraphTraceTreeMatchesInfections(t *testing.T) {
	g := testGraph(t)
	for _, driver := range []string{"exact", "fast"} {
		rec := trace.NewRecorder(0)
		var res *Result
		var err error
		if driver == "exact" {
			res, err = RunExact(ExactConfig{Topology: g, ScanRate: 2, TickSeconds: 1,
				MaxSeconds: 30, SeedHosts: 5, Seed: 7, Trace: rec})
		} else {
			res, err = RunFast(FastConfig{Topology: g, ScanRate: 2, TickSeconds: 1,
				MaxSeconds: 30, SeedHosts: 5, Seed: 7, Trace: rec})
		}
		if err != nil {
			t.Fatal(err)
		}
		tree, err := trace.BuildTree(rec.Events())
		if err != nil {
			t.Fatalf("%s: %v", driver, err)
		}
		if tree.Size() != res.Final.Infected {
			t.Fatalf("%s: tree size %d != final infected %d", driver, tree.Size(), res.Final.Infected)
		}
		// Graph edges carry true infectors; every edge must be a real
		// adjacency of the world.
		for _, e := range tree.Edges {
			if e.Infector < 0 {
				t.Fatalf("%s: edge with unattributed infector %d", driver, e.Infector)
			}
			found := false
			for _, nb := range g.Neighbors(e.Infector) {
				if int(nb) == e.Victim {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: infection edge %d->%d is not a graph edge", driver, e.Infector, e.Victim)
			}
		}
	}
}

func TestGraphSensorsNeverInfected(t *testing.T) {
	g := testGraph(t)
	res, _ := runExactGraphCase(t, g, 2, false)
	for id, it := range res.InfectionTime {
		if it >= 0 && g.IsSensor(id) {
			t.Fatalf("sensor node %d was infected at t=%v", id, it)
		}
	}
}

func TestGraphConfigConflicts(t *testing.T) {
	g := testGraph(t)
	pop := smallPop(t, 50, 3)
	base := func() ExactConfig {
		return ExactConfig{Topology: g, ScanRate: 2, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 2, Seed: 1}
	}
	exactCases := []struct {
		field string
		mut   func(*ExactConfig)
	}{
		{"Pop", func(c *ExactConfig) { c.Pop = pop }},
		{"Factory", func(c *ExactConfig) { c.Factory = worm.UniformFactory{} }},
		{"SensorSet", func(c *ExactConfig) { c.SensorSet = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9}) }},
		{"OnProbe", func(c *ExactConfig) { c.OnProbe = func(_, _ ipv4.Addr) {} }},
	}
	for _, tc := range exactCases {
		cfg := base()
		tc.mut(&cfg)
		_, err := RunExact(cfg)
		var conflict *TopologyConflictError
		if !errors.As(err, &conflict) {
			t.Fatalf("exact %s on graph: got %v, want TopologyConflictError", tc.field, err)
		}
		if conflict.Field != tc.field || conflict.Topology != "proxgraph" {
			t.Fatalf("exact %s: conflict names %q on %q", tc.field, conflict.Field, conflict.Topology)
		}
	}
	fastBase := func() FastConfig {
		return FastConfig{Topology: g, ScanRate: 2, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 2, Seed: 1}
	}
	fastCases := []struct {
		field string
		mut   func(*FastConfig)
	}{
		{"Pop", func(c *FastConfig) { c.Pop = pop }},
		{"Model", func(c *FastConfig) { c.Model = NewUniformModel() }},
		{"BlockedDst", func(c *FastConfig) { c.BlockedDst = ipv4.NewSet(ipv4.Interval{Lo: 1, Hi: 9}) }},
		{"LossRate", func(c *FastConfig) { c.LossRate = 0.1 }},
		{"Containment", func(c *FastConfig) { c.Containment = &Containment{Trigger: func() bool { return false }} }},
	}
	for _, tc := range fastCases {
		cfg := fastBase()
		tc.mut(&cfg)
		_, err := RunFast(cfg)
		var conflict *TopologyConflictError
		if !errors.As(err, &conflict) {
			t.Fatalf("fast %s on graph: got %v, want TopologyConflictError", tc.field, err)
		}
		if conflict.Field != tc.field || conflict.Topology != "proxgraph" {
			t.Fatalf("fast %s: conflict names %q on %q", tc.field, conflict.Field, conflict.Topology)
		}
	}
	// The reverse direction: graph-only fields on the IPv4 world.
	ipv4Cfg := ExactConfig{Pop: pop, Factory: worm.UniformFactory{}, Neighbor: worm.UniformNeighbor{},
		ScanRate: 100, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 2, Seed: 1}
	_, err := RunExact(ipv4Cfg)
	var conflict *TopologyConflictError
	if !errors.As(err, &conflict) || conflict.Field != "Neighbor" {
		t.Fatalf("Neighbor on ipv4: got %v, want TopologyConflictError on Neighbor", err)
	}
	// Explicit IPv4 topology falls through to the reference path.
	okCfg := ExactConfig{Topology: topo.IPv4{}, Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 100, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 2, Seed: 1}
	if _, err := RunExact(okCfg); err != nil {
		t.Fatalf("explicit topo.IPv4 rejected: %v", err)
	}
}

func TestGraphSeedHostsRange(t *testing.T) {
	g := testGraph(t) // 700 nodes, 35 sensors: 665 susceptible
	for _, bad := range []int{0, -1, 666, 700} {
		_, err := RunExact(ExactConfig{Topology: g, ScanRate: 2, TickSeconds: 1,
			MaxSeconds: 10, SeedHosts: bad, Seed: 1})
		if err == nil {
			t.Fatalf("SeedHosts=%d accepted on a 665-susceptible graph", bad)
		}
	}
	if _, err := RunExact(ExactConfig{Topology: g, ScanRate: 2, TickSeconds: 1,
		MaxSeconds: 10, SeedHosts: 665, Seed: 1}); err != nil {
		t.Fatalf("SeedHosts=665 rejected: %v", err)
	}
}
