package sim

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/worm"
)

// These tests pin the authoritative probe-classification precedence both
// drivers must implement (see the outcome.go doc comment and DESIGN.md
// §10). Declaration order of the outcome constants is append-only for
// metric stability and says nothing about precedence; these tests are what
// keeps the documented order and the drivers from drifting apart.

// alwaysBadBurst is a burst channel that loses every probe in every state,
// so burst loss dominates regardless of the dwell sequence.
func alwaysBadBurst() *faults.BurstConfig {
	return &faults.BurstConfig{MeanGood: 10, MeanBad: 10, LossGood: 1, LossBad: 1}
}

// sensorOutage withdraws the block for the whole horizon. The window is
// half-open [Start, End), so End sits one tick past the horizon to cover
// the final tick too.
func sensorOutage(block string, horizon float64) []faults.OutageConfig {
	return []faults.OutageConfig{{Block: block, Start: 0, End: horizon + 1}}
}

// TestExactOutcomePrecedence drives the exact driver into each dominance
// regime and asserts the losing categories stay at zero. The population has
// no NAT so the private branch can only produce PrivateDropped — private
// infections and self-hits would otherwise leak into the zero assertions.
func TestExactOutcomePrecedence(t *testing.T) {
	const horizon = 20.0
	const sensorBlock = "200.0.0.0/8"
	sensorSet := ipv4.SetOfPrefixes(ipv4.MustParsePrefix(sensorBlock))

	base := func() ExactConfig {
		return ExactConfig{
			Pop: smallPop(t, 300, 7), Factory: worm.UniformFactory{},
			ScanRate: 2000, TickSeconds: 1, MaxSeconds: horizon,
			SeedHosts: 8, Seed: 99,
			SensorSet: sensorSet,
		}
	}

	t.Run("burst-dominates-filter-sensordown-and-delivery", func(t *testing.T) {
		cfg := base()
		env := &netenv.Environment{}
		if err := env.SetLossRate(0.5); err != nil {
			t.Fatal(err)
		}
		cfg.Env = env
		plan, err := faults.Compile(faults.Config{
			Seed:    1,
			Burst:   alwaysBadBurst(),
			Outages: sensorOutage(sensorBlock, horizon),
		}, horizon+1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[OutcomeBurstLost] == 0 {
			t.Fatal("total burst loss recorded no burst-lost probes")
		}
		for _, o := range []ProbeOutcome{OutcomeFiltered, OutcomeSensorDown, OutcomeSensorHit, OutcomeDelivered, OutcomeInfection, OutcomeSelfHit} {
			if n := res.Outcomes[o]; n != 0 {
				t.Errorf("burst loss of 1.0 still produced %d %v probes", n, o)
			}
		}
		// The private branch is evaluated before the burst channel: RFC 1918
		// destinations never cross the Internet, so they are private-dropped
		// even while the public path is fully burst-lost.
		if res.Outcomes[OutcomePrivateDropped] == 0 {
			t.Error("uniform scanning produced no private-dropped probes")
		}
	})

	t.Run("filter-dominates-sensordown-and-infection", func(t *testing.T) {
		cfg := base()
		env := &netenv.Environment{}
		if err := env.SetLossRate(1); err != nil {
			t.Fatal(err)
		}
		cfg.Env = env
		plan, err := faults.Compile(faults.Config{
			Seed:    1,
			Outages: sensorOutage(sensorBlock, horizon),
		}, horizon+1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[OutcomeFiltered] == 0 {
			t.Fatal("total loss recorded no filtered probes")
		}
		for _, o := range []ProbeOutcome{OutcomeSensorDown, OutcomeSensorHit, OutcomeDelivered, OutcomeBurstLost, OutcomeInfection, OutcomeSelfHit} {
			if n := res.Outcomes[o]; n != 0 {
				t.Errorf("loss rate 1.0 still produced %d %v probes", n, o)
			}
		}
	})

	t.Run("sensordown-dominates-sensorhit", func(t *testing.T) {
		cfg := base()
		plan, err := faults.Compile(faults.Config{
			Seed:    1,
			Outages: sensorOutage(sensorBlock, horizon),
		}, horizon+1)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
		res, err := RunExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[OutcomeSensorDown] == 0 {
			t.Fatal("whole-horizon outage recorded no sensor-down probes")
		}
		if n := res.Outcomes[OutcomeSensorHit]; n != 0 {
			t.Errorf("withdrawn sensor still recorded %d sensor-hit probes", n)
		}
	})
}

// TestFastOutcomePrecedence asserts the same dominance regimes hold for
// the fast driver's expectation-based accounting, at both the aggregate
// level and the closeFastTickOutcomes unit level.
func TestFastOutcomePrecedence(t *testing.T) {
	const horizon = 40.0
	t.Run("burst-dominates", func(t *testing.T) {
		pop := smallPop(t, 300, 7)
		plan, err := faults.Compile(faults.Config{Seed: 1, Burst: alwaysBadBurst()}, horizon+1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFast(FastConfig{
			Pop: pop, Model: NewUniformModel(),
			ScanRate: 500, TickSeconds: 1, MaxSeconds: horizon,
			SeedHosts: 8, Seed: 99, LossRate: 0.5,
			Faults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcomes[OutcomeBurstLost] == 0 {
			t.Fatal("total burst loss recorded no burst-lost probes")
		}
		for _, o := range []ProbeOutcome{OutcomeFiltered, OutcomeDelivered, OutcomeInfection, OutcomeSensorHit, OutcomeSensorDown} {
			if n := res.Outcomes[o]; n != 0 {
				t.Errorf("burst loss of 1.0 still produced %d %v probes", n, o)
			}
		}
	})

	t.Run("accounting-order", func(t *testing.T) {
		// Burst takes its expected share before filtering, filtering before
		// the delivered residual — the same order the exact driver
		// classifies per probe.
		probes, out := closeFastTickOutcomes(100, 0, 0, 0, 0.5, 1)
		if out[OutcomeBurstLost] != probes || out[OutcomeFiltered] != 0 || out[OutcomeDelivered] != 0 {
			t.Errorf("burstLoss=1: got %v", out)
		}
		probes, out = closeFastTickOutcomes(100, 0, 0, 0, 0, 0.5)
		if out[OutcomeBurstLost] != 50 || out[OutcomeFiltered] != 50 || out[OutcomeDelivered] != 0 {
			t.Errorf("burstLoss=0.5, deliver=0: probes=%d got %v", probes, out)
		}
		// Realized draws (infections, sensor hits, sensor-down) are settled
		// before any expectation-based share.
		probes, out = closeFastTickOutcomes(10, 4, 3, 3, 0.5, 1)
		if got := out[OutcomeInfection] + out[OutcomeSensorHit] + out[OutcomeSensorDown]; got != 10 {
			t.Errorf("realized draws not settled first: %v", out)
		}
		if out.Total() != probes {
			t.Errorf("conservation broken: %v vs %d", out, probes)
		}
	})
}
