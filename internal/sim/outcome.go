package sim

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/obs"
)

// ProbeOutcome classifies the fate of one probe. The taxonomy is the
// paper's Sections 4–5 failure modes made countable: a run that silently
// loses probes to egress filtering must be distinguishable from one that
// doesn't, because *where probes go and why they don't arrive* is the
// whole result.
//
// Every probe gets exactly one outcome, so per-tick outcome counts sum to
// TickInfo.Probes (the conservation invariant the tests enforce).
type ProbeOutcome uint8

// Outcome constants, in declaration order. The declaration order is
// append-only — new outcomes go at the end so existing OutcomeCounts
// indices, String() rendering order, and metric series stay stable — and
// therefore does NOT encode classification precedence. The authoritative
// precedence both drivers implement (asserted by TestExactOutcomePrecedence
// and TestFastOutcomePrecedence, documented in DESIGN.md §10) is, for a
// probe to a public destination:
//
//	BurstLost > Filtered > SensorDown > Infection > SelfHit > SensorHit > Delivered
//
// and for a probe to an RFC 1918 destination:
//
//	PrivateDropped (public source) > Infection > NATBlocked > SelfHit > Delivered
const (
	// OutcomeDelivered: the probe crossed the network and landed on
	// unmonitored, non-vulnerable (or already-infected) address space.
	OutcomeDelivered ProbeOutcome = iota
	// OutcomeFiltered: dropped by environment policy — egress/ingress
	// filters, containment, or random loss.
	OutcomeFiltered
	// OutcomePrivateDropped: an RFC 1918 destination probed from a public
	// host; private space never crosses the Internet.
	OutcomePrivateDropped
	// OutcomeNATBlocked: the destination matched a vulnerable private host
	// on a different NAT site, unreachable by topology.
	OutcomeNATBlocked
	// OutcomeSensorHit: delivered onto monitored (darknet) address space.
	OutcomeSensorHit
	// OutcomeSelfHit: the host probed its own address.
	OutcomeSelfHit
	// OutcomeInfection: the probe infected at least one new host.
	OutcomeInfection
	// OutcomeBurstLost: dropped by the fault plan's Gilbert–Elliott burst
	// channel — loss that arrives in bursts, distinct from the steady
	// filtering/loss behind OutcomeFiltered.
	OutcomeBurstLost
	// OutcomeSensorDown: the probe landed on monitored space whose sensor
	// block the fault plan had withdrawn — delivered by the network,
	// unseen by the measurement substrate.
	OutcomeSensorDown

	// NumOutcomes is the number of outcome categories.
	NumOutcomes = int(iota)
)

// outcomeNames are the stable label values used in metrics and output.
var outcomeNames = [NumOutcomes]string{
	"delivered", "filtered", "private-dropped", "nat-blocked",
	"sensor-hit", "self-hit", "infection", "burst-lost", "sensor-down",
}

// String returns the stable metric-label name of the outcome.
func (o ProbeOutcome) String() string {
	if int(o) < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// OutcomeCounts tallies probes by outcome.
type OutcomeCounts [NumOutcomes]uint64

// Total returns the sum over all outcomes.
func (c OutcomeCounts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// Merge adds d into c.
func (c *OutcomeCounts) Merge(d OutcomeCounts) {
	for i, v := range d {
		c[i] += v
	}
}

// String renders the non-zero tallies as "name=count" pairs in outcome
// order, e.g. "delivered=120 filtered=30 infection=2".
func (c OutcomeCounts) String() string {
	var b strings.Builder
	for i, v := range c {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", ProbeOutcome(i), v)
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// newInfectionBuckets bound the per-tick new-infection histogram.
var newInfectionBuckets = obs.ExpBuckets(1, 10, 6)

// simMetrics holds the pre-resolved registry handles a driver updates once
// per tick. A nil *simMetrics (registry absent) makes every flush a no-op,
// so the drivers call it unconditionally.
type simMetrics struct {
	outcomes [NumOutcomes]*obs.Counter
	emitted  *obs.Counter
	ticks    *obs.Counter
	infected *obs.Gauge
	newInf   *obs.Histogram
	// Fault gauges, registered only when a fault plan is attached (see
	// attachFaults): the number of withdrawn sensor blocks and the burst
	// channel's current loss rate, sampled at each tick.
	downBlocks *obs.Gauge
	burstLoss  *obs.Gauge
}

// newSimMetrics resolves the driver's metric handles; the driver label is
// "exact" or "fast" so both drivers can run against one registry, and the
// config's extra label pairs keep runs sharing one registry (concurrent
// sweep points) on distinct series instead of colliding.
func newSimMetrics(reg *obs.Registry, driver string, extra []string) *simMetrics {
	if reg == nil {
		return nil
	}
	labels := func(more ...string) []string {
		l := make([]string, 0, 2+len(extra)+len(more))
		l = append(l, "driver", driver)
		l = append(l, extra...)
		return append(l, more...)
	}
	m := &simMetrics{
		emitted:  reg.Counter("sim_probes_emitted_total", labels()...),
		ticks:    reg.Counter("sim_ticks_total", labels()...),
		infected: reg.Gauge("sim_infected_hosts", labels()...),
		newInf:   reg.Histogram("sim_tick_new_infections", newInfectionBuckets, labels()...),
	}
	for i := range m.outcomes {
		m.outcomes[i] = reg.Counter("sim_probes_total",
			labels("outcome", ProbeOutcome(i).String())...)
	}
	return m
}

// attachFaults registers the fault gauges; a no-op without a registry or
// without a plan.
func (m *simMetrics) attachFaults(reg *obs.Registry, plan *faults.Plan, driver string, extra []string) {
	if m == nil || plan == nil {
		return
	}
	labels := make([]string, 0, 2+len(extra))
	labels = append(labels, "driver", driver)
	labels = append(labels, extra...)
	m.downBlocks = reg.Gauge("faults_sensor_blocks_down", labels...)
	m.burstLoss = reg.Gauge("faults_burst_loss", labels...)
}

// flushFaults samples the fault plan's state at tick time t.
func (m *simMetrics) flushFaults(plan *faults.Plan, t float64) {
	if m == nil || m.downBlocks == nil {
		return
	}
	m.downBlocks.Set(float64(plan.DownBlocks(t)))
	m.burstLoss.Set(plan.BurstLoss(t))
}

// flushTick publishes one completed tick.
func (m *simMetrics) flushTick(ti TickInfo) {
	if m == nil {
		return
	}
	for i, v := range ti.Outcomes {
		m.outcomes[i].Add(v)
	}
	m.emitted.Add(ti.Probes)
	m.ticks.Inc()
	m.infected.Set(float64(ti.Infected))
	m.newInf.Observe(float64(ti.NewInfections))
}
