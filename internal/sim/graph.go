package sim

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/worm"
)

// Graph drivers: RunExact and RunFast dispatch here when the config's
// Topology is a topo.Graph. The worm spreads over neighbor lists — an
// infected node probes only its own adjacency — but the drivers keep
// the IPv4 engines' determinism shape exactly: two-phase ticks, one RNG
// stream per (agent, tick) seeded from (Seed, node id, step) alone,
// contiguous agent shards, and a serial first-wins merge in agent
// order, so output is byte-identical for every worker count. The
// worlds passed in must satisfy topo.ValidateGraph; the drivers trust
// sorted symmetric adjacency and do not re-validate per run.
//
// Node ids double as addresses: trace infection events store the victim
// node id in the Addr field, seed edges use Vector "seed" as on IPv4,
// and scan edges use Vector "edge" with the true infector in Agent —
// including the fast driver, whose per-agent thinned draws know their
// infector (unlike the IPv4 fast driver's aggregated Agent -1 edges).

// graphEvent is a phase-1 candidate infection: agent probed victim, and
// victim was susceptible in the tick-start snapshot.
type graphEvent struct {
	agent, victim int32
}

// graphWorker is one phase-1 shard's private state, shared by both
// graph drivers (the fast driver leaves probes/outcomes untouched and
// counts sensor arrivals instead).
type graphWorker struct {
	r           rng.Xoshiro
	probes      uint64
	outcomes    OutcomeCounts
	events      []graphEvent
	sensorDraws uint64
}

func (w *graphWorker) reset() {
	w.probes = 0
	w.outcomes = OutcomeCounts{}
	w.events = w.events[:0]
	w.sensorDraws = 0
}

// graphSeeds samples the initially infected nodes: SeedHosts drawn
// without replacement from the ascending susceptible (non-sensor) node
// list, on the run seed's root stream. Both drivers use this exact
// derivation, so a fast/exact pair on the same seed starts from the
// same outbreak.
func graphSeeds(g topo.Graph, seed uint64, seedHosts int) []int32 {
	sus := make([]int32, 0, g.Nodes()-g.SensorCount())
	for i := 0; i < g.Nodes(); i++ {
		if !g.IsSensor(i) {
			sus = append(sus, int32(i))
		}
	}
	r := rng.NewXoshiro(seed)
	seeds := make([]int32, 0, seedHosts)
	for _, k := range r.SampleWithoutReplacement(len(sus), seedHosts) {
		seeds = append(seeds, sus[k])
	}
	return seeds
}

// runExactGraph is the probe-exact driver over a neighbor graph. Every
// probe of every infected node picks a neighbor through the config's
// NeighborPicker (uniform by default) and classifies it against the
// tick-start snapshot: sensor neighbors are OutcomeSensorHit, infected
// neighbors OutcomeDelivered, susceptible neighbors buffered candidates
// that the serial merge resolves first-agent-wins.
func runExactGraph(cfg ExactConfig, g topo.Graph) (*Result, error) {
	if err := cfg.validateGraph(g); err != nil {
		return nil, err
	}
	n := g.Nodes()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	picker := cfg.Neighbor
	if picker == nil {
		picker = worm.UniformNeighbor{}
	}

	infected := make([]bool, n)
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	var agents []int32
	infect := func(id int32, t float64) {
		infected[id] = true
		infTime[id] = t
		agents = append(agents, id)
	}
	rec := cfg.Trace
	rec.Append(trace.Event{Tick: 0, T: 0, Kind: trace.KindPhase, Agent: -1, Victim: -1,
		Vector: "start", Detail: "exact " + g.Name()})
	for _, id := range graphSeeds(g, cfg.Seed, cfg.SeedHosts) {
		infect(id, 0)
		rec.AppendInfection(0, 0, -1, int(id), uint32(id), "seed")
	}

	probesPerTick := int(cfg.ScanRate*cfg.TickSeconds + 0.5) // ≥1, by validation
	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	res := &Result{InfectionTime: infTime, Series: make([]TickInfo, 0, steps)}
	metrics := newSimMetrics(cfg.Metrics, "exact", cfg.MetricLabels)

	ws := make([]graphWorker, workers)
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)

		// Phase 1: classify against the tick-start snapshot. Nodes
		// infected this tick start probing next tick, and `infected` is
		// only written in phase 2, so shared reads are race-free.
		// Isolated nodes have nobody to probe: they emit no probes and
		// consume no RNG, so their stream ids stay untouched.
		nAgents := len(agents)
		nShards := workers
		if nShards > nAgents {
			nShards = nAgents
		}
		stepU := uint64(step)
		classify := func(w *graphWorker, shard []int32) {
			w.reset()
			for _, id := range shard {
				nbrs := g.Neighbors(int(id))
				if len(nbrs) == 0 {
					continue
				}
				w.r.SeedStream(cfg.Seed, uint64(id), stepU)
				for p := 0; p < probesPerTick; p++ {
					w.probes++
					v := nbrs[picker.PickNeighbor(len(nbrs), &w.r)]
					switch {
					case g.IsSensor(int(v)):
						w.outcomes[OutcomeSensorHit]++
					case infected[v]:
						w.outcomes[OutcomeDelivered]++
					default:
						w.events = append(w.events, graphEvent{agent: id, victim: v})
					}
				}
			}
		}
		if nShards <= 1 {
			nShards = 1
			classify(&ws[0], agents[:nAgents])
		} else {
			var wg sync.WaitGroup
			for wi := 0; wi < nShards; wi++ {
				lo := wi * nAgents / nShards
				hi := (wi + 1) * nAgents / nShards
				wg.Add(1)
				go func(w *graphWorker, shard []int32) {
					defer wg.Done()
					classify(w, shard)
				}(&ws[wi], agents[lo:hi:hi])
			}
			wg.Wait()
		}

		// Phase 2: serial merge in agent order; duplicate candidates
		// resolve first-agent-wins, later ones land as Delivered (the
		// probe reached an already-infected node).
		var newInf int
		var probes uint64
		var outcomes OutcomeCounts
		for wi := 0; wi < nShards; wi++ {
			probes += ws[wi].probes
			outcomes.Merge(ws[wi].outcomes)
		}
		for wi := 0; wi < nShards; wi++ {
			for _, ev := range ws[wi].events {
				if !infected[ev.victim] {
					infect(ev.victim, t)
					newInf++
					outcomes[OutcomeInfection]++
					rec.AppendInfection(step, t, int(ev.agent), int(ev.victim), uint32(ev.victim), "edge")
				} else {
					outcomes[OutcomeDelivered]++
				}
			}
		}

		info := TickInfo{Time: t, Infected: len(agents), NewInfections: newInf, Probes: probes, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		if rec != nil {
			rec.Append(trace.Event{Tick: step, T: t, Kind: trace.KindProbes, Agent: -1, Victim: -1,
				N: probes, Detail: outcomes.String()})
		}
		metrics.flushTick(info)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && len(agents) >= cfg.StopWhenInfected {
			break
		}
	}
	rec.Append(trace.Event{Tick: len(res.Series), T: res.Final.Time, Kind: trace.KindPhase,
		Agent: -1, Victim: -1, Vector: "end", Detail: "exact " + g.Name(), N: uint64(res.Final.Infected)})
	return res, nil
}

// runFastGraph is the aggregated driver over a neighbor graph. Each
// infected node's per-tick probes are a Poisson process thinned to the
// arrivals that matter — live-neighbor hits and sensor-neighbor hits —
// at rate perHost·(liveNbrs+sensNbrs)/degree, the graph analogue of the
// IPv4 driver's live-pool thinning. Each agent draws from its own
// per-(node, tick) stream with the same gate discipline as the IPv4
// fast driver (Knuth squeeze below λ=30, rng.Poisson above), so worker
// count, tick skipping, and trace attachment never change output.
// Unlike IPv4 fast aggregation, the draws here know their infector, so
// trace edges carry true provenance.
func runFastGraph(cfg FastConfig, g topo.Graph) (*Result, error) {
	if err := cfg.validateGraph(g); err != nil {
		return nil, err
	}
	n := g.Nodes()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	infected := make([]bool, n)
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	// liveNbrs counts each node's susceptible (non-sensor, non-infected)
	// neighbors; sensNbrs its sensor neighbors. Both shape the thinned
	// rates; liveNbrs is maintained incrementally as infections land.
	liveNbrs := make([]int32, n)
	sensNbrs := make([]int32, n)
	for i := 0; i < n; i++ {
		for _, v := range g.Neighbors(i) {
			if g.IsSensor(int(v)) {
				sensNbrs[i]++
			} else {
				liveNbrs[i]++
			}
		}
	}
	var agents []int32
	total := 0
	infect := func(id int32, t float64) {
		infected[id] = true
		infTime[id] = t
		total++
		agents = append(agents, id)
		for _, u := range g.Neighbors(int(id)) {
			liveNbrs[u]--
		}
	}
	rec := cfg.Trace
	rec.Append(trace.Event{Tick: 0, T: 0, Kind: trace.KindPhase, Agent: -1, Victim: -1,
		Vector: "start", Detail: "fast " + g.Name()})
	for _, id := range graphSeeds(g, cfg.Seed, cfg.SeedHosts) {
		infect(id, 0)
		rec.AppendInfection(0, 0, -1, int(id), uint32(id), "seed")
	}

	perHost := cfg.ScanRate * cfg.TickSeconds
	// liveNeighbor resolves the j-th susceptible neighbor of id against
	// the tick-start snapshot — an O(degree) positional scan of the
	// sorted adjacency, never a map.
	liveNeighbor := func(id int32, j uint64) int32 {
		for _, v := range g.Neighbors(int(id)) {
			if infected[v] || g.IsSensor(int(v)) {
				continue
			}
			if j == 0 {
				return v
			}
			j--
		}
		panic("sim: live neighbor index out of snapshot range")
	}
	// drawAgent consumes agent id's (node, tick) stream: one gate
	// sequence for the arrival count, then per arrival one categorical
	// draw (infection category first, then sensor) and, for infections,
	// one selection draw over the live neighbors.
	drawAgent := func(w *graphWorker, id int32, step int) {
		deg := g.Degree(int(id))
		if deg == 0 {
			return
		}
		lamInf := perHost * float64(liveNbrs[id]) / float64(deg)
		lamSens := perHost * float64(sensNbrs[id]) / float64(deg)
		lam := lamInf + lamSens
		if lam <= 0 {
			return
		}
		r := &w.r
		r.SeedStream(cfg.Seed, uint64(id), uint64(step))
		var k uint64
		if lam < 30 {
			// Knuth inversion with the 1−λ ≤ e^{−λ} squeeze, exactly as
			// the IPv4 driver's gate: draw consumption is identical to
			// rng.Poisson for the same stream.
			prod := r.Float64()
			if prod > 1-lam {
				p0 := math.Exp(-lam)
				for prod > p0 {
					k++
					prod *= r.Float64()
				}
			}
		} else {
			k = r.Poisson(lam)
		}
		for ; k > 0; k-- {
			u := r.Float64() * lam
			if lamInf > 0 && u <= lamInf {
				j := r.Uint64n(uint64(liveNbrs[id]))
				w.events = append(w.events, graphEvent{agent: id, victim: liveNeighbor(id, j)})
			} else {
				w.sensorDraws++
			}
		}
	}

	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	res := &Result{InfectionTime: infTime, Series: make([]TickInfo, 0, steps)}
	metrics := newSimMetrics(cfg.Metrics, "fast", cfg.MetricLabels)

	ws := make([]graphWorker, workers)
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)

		// Serial pass over the tick-start agent list: the skip gate and
		// the emitted-probe total. Agents are visited in infection
		// order, so the float sum's order is fixed.
		nAgents := len(agents)
		lamTotal := 0.0
		probing := 0
		for _, id := range agents[:nAgents] {
			deg := g.Degree(int(id))
			if deg == 0 {
				continue
			}
			probing++
			lamTotal += perHost * float64(liveNbrs[id]+sensNbrs[id]) / float64(deg)
		}
		probesTotal := perHost * float64(probing)

		var newInf int
		var sensorDraws uint64
		apply := func(w *graphWorker) {
			sensorDraws += w.sensorDraws
			for _, ev := range w.events {
				if infected[ev.victim] {
					continue // claimed earlier this tick
				}
				infect(ev.victim, t)
				newInf++
				rec.AppendInfection(step, t, int(ev.agent), int(ev.victim), uint32(ev.victim), "edge")
			}
		}

		nShards := workers
		if nShards > nAgents {
			nShards = nAgents
		}
		if nShards <= 1 || (!cfg.DisableTickSkip && lamTotal <= fastSkipLambda) {
			// Quiescent/serial fast path: same draws, no worker dispatch.
			w := &ws[0]
			w.reset()
			for _, id := range agents[:nAgents] {
				drawAgent(w, id, step)
			}
			apply(w)
		} else {
			var wg sync.WaitGroup
			for wi := 0; wi < nShards; wi++ {
				lo := wi * nAgents / nShards
				hi := (wi + 1) * nAgents / nShards
				wg.Add(1)
				go func(w *graphWorker, shard []int32, step int) {
					defer wg.Done()
					w.reset()
					for _, id := range shard {
						drawAgent(w, id, step)
					}
				}(&ws[wi], agents[lo:hi:hi], step)
			}
			wg.Wait()
			// Serial merge in worker order = agent order; duplicate
			// victims resolve first-event-wins.
			for wi := 0; wi < nShards; wi++ {
				apply(&ws[wi])
			}
		}

		probesEmitted, outcomes := closeFastTickOutcomes(probesTotal, newInf, sensorDraws, 0, 1, 0)
		info := TickInfo{Time: t, Infected: total, NewInfections: newInf, Probes: probesEmitted, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		if rec != nil {
			rec.Append(trace.Event{Tick: step, T: t, Kind: trace.KindProbes, Agent: -1, Victim: -1,
				N: probesEmitted, Detail: outcomes.String()})
		}
		metrics.flushTick(info)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && total >= cfg.StopWhenInfected {
			break
		}
	}
	rec.Append(trace.Event{Tick: len(res.Series), T: res.Final.Time, Kind: trace.KindPhase,
		Agent: -1, Victim: -1, Vector: "end", Detail: "fast " + g.Name(), N: uint64(res.Final.Infected)})
	return res, nil
}
