package sim

import "math/bits"

// liveIndex tracks which arena slots are still susceptible ("live") at
// internet scale: a dense bitset (one bit per slot) plus a Fenwick tree of
// per-block live counts. The block size is chosen so the Fenwick array for
// 10⁸ slots is a few hundred kilobytes — small enough to stay cache-resident
// while the bitset itself streams from memory.
//
// The index supports the three queries the fast driver's victim pools need:
//
//	liveIn(lo, hi)  — how many live slots in [lo, hi)          O(log n)
//	selectIn(lo, j) — the j-th live slot at position ≥ lo      O(log n)
//	kill(pos)       — mark a slot infected                     O(log n)
//
// All read queries are safe to run concurrently as long as no kill is in
// flight; the driver's two-phase tick (parallel read-only draws, serial
// merge) guarantees that.
const (
	liveBlockWords = 16                  // 64-bit words per Fenwick block
	liveBlockSlots = liveBlockWords * 64 // 1024 slots per block
)

type liveIndex struct {
	n      int
	blocks int
	words  []uint64 // bit set ⇒ slot live
	fen    []int32  // 1-based Fenwick tree over per-block live counts
}

// newLiveIndex returns an index with all n slots live.
func newLiveIndex(n int) *liveIndex {
	nw := (n + 63) / 64
	li := &liveIndex{n: n, words: make([]uint64, nw)}
	for i := range li.words {
		li.words[i] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		li.words[nw-1] = (uint64(1) << r) - 1
	}
	li.blocks = (nw + liveBlockWords - 1) / liveBlockWords
	li.fen = make([]int32, li.blocks+1)
	for b := 0; b < li.blocks; b++ {
		var c int32
		end := (b + 1) * liveBlockWords
		if end > nw {
			end = nw
		}
		for w := b * liveBlockWords; w < end; w++ {
			c += int32(bits.OnesCount64(li.words[w]))
		}
		li.fen[b+1] += c
	}
	// O(blocks) Fenwick construction: push each prefix into its parent.
	for i := 1; i <= li.blocks; i++ {
		if j := i + i&(-i); j <= li.blocks {
			li.fen[j] += li.fen[i]
		}
	}
	return li
}

// test reports whether slot pos is live.
func (li *liveIndex) test(pos int) bool {
	return li.words[pos>>6]>>(uint(pos)&63)&1 == 1
}

// kill marks slot pos infected. Killing a dead slot is a no-op.
func (li *liveIndex) kill(pos int) {
	w, bit := pos>>6, uint64(1)<<(uint(pos)&63)
	if li.words[w]&bit == 0 {
		return
	}
	li.words[w] &^= bit
	for i := pos/liveBlockSlots + 1; i <= li.blocks; i += i & (-i) {
		li.fen[i]--
	}
}

// fenSum returns the live count of blocks [0, b).
func (li *liveIndex) fenSum(b int) int {
	var s int32
	for ; b > 0; b -= b & (-b) {
		s += li.fen[b]
	}
	return int(s)
}

// rank returns the number of live slots in [0, pos). pos may equal n.
func (li *liveIndex) rank(pos int) int {
	b := pos / liveBlockSlots
	s := li.fenSum(b)
	wEnd := pos >> 6
	for w := b * liveBlockWords; w < wEnd; w++ {
		s += bits.OnesCount64(li.words[w])
	}
	if r := uint(pos) & 63; r != 0 {
		s += bits.OnesCount64(li.words[wEnd] & ((uint64(1) << r) - 1))
	}
	return s
}

// liveIn returns the number of live slots in [lo, hi).
func (li *liveIndex) liveIn(lo, hi int) int {
	return li.rank(hi) - li.rank(lo)
}

// selectIn returns the j-th (0-based) live slot at position ≥ lo. The
// caller guarantees j < liveIn(lo, n).
func (li *liveIndex) selectIn(lo, j int) int {
	return li.selectGlobal(li.rank(lo) + j)
}

// selectGlobal returns the k-th (0-based) live slot: a Fenwick descent to
// the containing block, a popcount walk to the word, then an in-word select.
func (li *liveIndex) selectGlobal(k int) int {
	rem := int32(k)
	pos := 0
	step := 1
	for step<<1 <= li.blocks {
		step <<= 1
	}
	for ; step > 0; step >>= 1 {
		if next := pos + step; next <= li.blocks && li.fen[next] <= rem {
			pos = next
			rem -= li.fen[next]
		}
	}
	w := pos * liveBlockWords
	for {
		c := int32(bits.OnesCount64(li.words[w]))
		if rem < c {
			break
		}
		rem -= c
		w++
	}
	return w<<6 + selectInWord(li.words[w], uint(rem))
}

// selectInWord returns the bit position of the (r+1)-th set bit of x. The
// caller guarantees x has more than r set bits. A binary descent over
// half-width popcounts narrows the search to one byte, so the final
// clear-lowest-bit scan runs at most 7 times instead of 63.
func selectInWord(x uint64, r uint) int {
	pos := 0
	if c := uint(bits.OnesCount32(uint32(x))); r >= c {
		r -= c
		x >>= 32
		pos = 32
	}
	if c := uint(bits.OnesCount16(uint16(x))); r >= c {
		r -= c
		x >>= 16
		pos += 16
	}
	if c := uint(bits.OnesCount8(uint8(x))); r >= c {
		r -= c
		x >>= 8
		pos += 8
	}
	// The r+1 lowest set bits of x now all sit in its low byte.
	for ; r > 0; r-- {
		x &= x - 1
	}
	return pos + bits.TrailingZeros64(x)
}
