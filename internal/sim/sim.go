// Package sim is the epidemic simulation engine: a discrete-time SI
// (susceptible → infected) model of worm outbreaks over the synthetic
// populations, propagation algorithms, and network environments of the
// other packages. It reproduces the paper's Section 5 simulation platform
// (10 probes/s per infected host, 25 random seed hosts, CodeRedII-style
// vulnerable population).
//
// Two drivers are provided:
//
//   - Exact (RunExact): every probe of every infected host is drawn from
//     the host's real TargetGenerator. This is the ground truth and the only
//     correct driver for scanners whose probe sequences are not memoryless
//     (Slammer's LCG cycles, Blaster's sequential sweep).
//
//   - Fast (RunFast): for memoryless scanners (uniform, hit-list,
//     CodeRedII's mask preference) each infected host's per-tick probes are
//     a Poisson process split over a small mixture of address ranges, so
//     infection and sensor-hit counts can be drawn in aggregate —
//     distributionally equivalent to the exact driver but thousands of
//     times faster. Fig 5's parameter sweeps run on this driver; tests
//     cross-validate the two drivers on small configurations.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/worm"
)

// HitRecorder receives probes that land on monitored (darknet) address
// space. package detect's fleets implement it.
type HitRecorder interface {
	// RecordHit is called once per monitored probe with its destination.
	RecordHit(dst ipv4.Addr)
}

// TickInfo summarizes one simulation tick.
type TickInfo struct {
	// Time is the simulated time in seconds at the end of the tick.
	Time float64
	// Infected is the total infected population.
	Infected int
	// NewInfections is the number of hosts infected during this tick.
	NewInfections int
	// Probes is the number of probes emitted during this tick.
	Probes uint64
	// Outcomes tallies this tick's probes by fate; the categories sum to
	// Probes (exactly in the exact driver; the fast driver closes the sum
	// with an expectation-based delivered/filtered split).
	Outcomes OutcomeCounts
}

// Result is a completed simulation run.
type Result struct {
	// Series holds one entry per tick.
	Series []TickInfo
	// Final is the last tick's info.
	Final TickInfo
	// InfectionTime[i] is the simulated second host i became infected, or
	// a negative value if it never was.
	InfectionTime []float64
	// Outcomes is the run-cumulative probe-outcome tally (the sum of every
	// tick's TickInfo.Outcomes).
	Outcomes OutcomeCounts
}

// FractionInfected returns the final infected fraction of the population.
func (r *Result) FractionInfected() float64 {
	if len(r.InfectionTime) == 0 {
		return 0
	}
	return float64(r.Final.Infected) / float64(len(r.InfectionTime))
}

// TimeToFraction returns the first simulated time at which the infected
// fraction reached f, and whether it ever did.
func (r *Result) TimeToFraction(f float64) (float64, bool) {
	target := int(f * float64(len(r.InfectionTime)))
	if target < 1 {
		// Tiny fractions round to zero hosts, which every tick satisfies
		// vacuously — even one with no infections at all. Reaching a
		// positive fraction means at least one host is infected.
		target = 1
	}
	for _, ti := range r.Series {
		if ti.Infected >= target {
			return ti.Time, true
		}
	}
	return 0, false
}

// ExactConfig configures the probe-exact driver.
type ExactConfig struct {
	// Topology selects the world the epidemic spreads over. nil and
	// topo.IPv4 both mean the reference IPv4 world — the paper's flat
	// address space, driven by Pop/Factory/Env below. A topo.Graph runs
	// the neighbor-graph driver instead, in which case the IPv4-only
	// fields (Pop, Factory, Env, SensorSet, OnProbe, Faults) must be nil
	// — they have no graph semantics and are rejected with a
	// *TopologyConflictError rather than silently ignored.
	Topology topo.Topology
	// Neighbor picks which neighbor a graph-world scanner probes next;
	// nil means worm.UniformNeighbor. Only meaningful with a graph
	// Topology; setting it on the IPv4 world is a conflict.
	Neighbor worm.NeighborPicker
	// Pop is the vulnerable population.
	Pop *population.Population
	// Factory builds each infected host's target generator.
	Factory worm.Factory
	// Env applies environmental factors; nil means a transparent network.
	Env *netenv.Environment
	// ScanRate is probes per second per infected host.
	ScanRate float64
	// TickSeconds is the simulation step; probes per host per tick is
	// ScanRate·TickSeconds (must be ≥ 1 when rounded for the exact driver).
	TickSeconds float64
	// MaxSeconds stops the simulation.
	MaxSeconds float64
	// SeedHosts is the number of initially infected hosts, drawn uniformly.
	SeedHosts int
	// Seed drives all randomness.
	Seed uint64
	// Workers is the number of goroutines classifying probes during phase
	// 1 of each tick; the merge phase (infections, sensor callbacks,
	// metrics) is always serial. 0 uses runtime.GOMAXPROCS(0); 1 runs
	// classification inline with no goroutines; negative values are
	// rejected by validation. Every value of Workers
	// produces byte-identical results for the same seed: each agent draws
	// probes from its own generator plus a per-(agent,tick) environment
	// RNG stream, and per-worker buffers merge in agent order (see
	// DESIGN.md §9 for the determinism contract).
	Workers int
	// OnProbe, when non-nil, receives every probe that reaches the public
	// Internet (sensor fleets hang here). Callbacks fire during the serial
	// merge phase, so implementations need no locking.
	OnProbe func(src, dst ipv4.Addr)
	// OnTick, when non-nil, is called after every tick; returning false
	// stops the run.
	OnTick func(TickInfo) bool
	// StopWhenInfected stops once this many hosts are infected (0 = never).
	StopWhenInfected int
	// SensorSet, when non-nil, is the monitored (darknet) address space;
	// delivered probes landing in it are classified OutcomeSensorHit.
	SensorSet *ipv4.Set
	// Metrics, when non-nil, receives per-tick probe-outcome counters and
	// run gauges (see DESIGN.md for the metric-name contract). Attaching a
	// registry never perturbs the run: telemetry draws no randomness.
	Metrics *obs.Registry
	// MetricLabels are extra label pairs ("k1", "v1", …) appended to every
	// series this run registers. Runs sharing one registry — concurrent
	// sweep points in particular — must set distinct labels here, or their
	// counters aggregate indistinguishably and gauges become
	// last-writer-wins.
	MetricLabels []string
	// Clock, when non-nil, is set to the tick's simulated time at the
	// start of each tick, so observers (sensor fleets, tracers) timestamp
	// events in simulated seconds.
	Clock *obs.SimClock
	// Faults, when non-nil, injects the plan's sensor outages, bursty
	// loss, and degraded reporting into the run (misconfiguration is
	// applied when the Environment is built, not here). The plan's
	// horizon must cover MaxSeconds. Probes dropped by the burst channel
	// are OutcomeBurstLost; probes landing on withdrawn monitored space
	// are OutcomeSensorDown and never reach OnProbe.
	Faults *faults.Plan
	// Trace, when non-nil, receives the run's flight-recorder events:
	// phase boundaries, seed and infection edges (with infector→victim
	// provenance), per-tick probe summaries, and fault transitions. Like
	// Metrics, attaching a recorder never perturbs the run — events are
	// appended only from the serial merge phase, in agent order, so trace
	// bytes are identical for every worker count (DESIGN.md §12).
	Trace *trace.Recorder
}

func (c *ExactConfig) validate() error {
	if c.Neighbor != nil {
		return &TopologyConflictError{Topology: "ipv4", Field: "Neighbor",
			Reason: "IPv4 scanners draw addresses from Factory generators; neighbor pickers need a graph topology"}
	}
	if c.Pop == nil || c.Pop.Size() == 0 {
		return errors.New("sim: empty population")
	}
	if c.Factory == nil {
		return errors.New("sim: nil worm factory")
	}
	if err := checkTiming(c.ScanRate, c.TickSeconds, c.MaxSeconds); err != nil {
		return err
	}
	if c.ScanRate*c.TickSeconds > maxProbesPerHostTick {
		return fmt.Errorf("sim: %v probes per host per tick exceeds the %v cap", c.ScanRate*c.TickSeconds, float64(maxProbesPerHostTick))
	}
	if int(c.ScanRate*c.TickSeconds+0.5) < 1 {
		return errors.New("sim: exact driver needs ≥1 probe per host per tick")
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d (0 means GOMAXPROCS)", c.Workers)
	}
	if c.SeedHosts <= 0 || c.SeedHosts > c.Pop.Size() {
		return fmt.Errorf("sim: seed hosts %d out of range", c.SeedHosts)
	}
	if err := checkFaultHorizon(c.Faults, c.MaxSeconds); err != nil {
		return err
	}
	return nil
}

// Caps on the per-run work a config may request. They exist to turn
// hostile-but-technically-positive values (an Inf horizon, a 1e300 scan
// rate) into errors instead of runs that loop effectively forever or
// overflow the float→int conversions sizing the tick loop.
const (
	// maxTicks bounds MaxSeconds/TickSeconds.
	maxTicks = 1e9
	// maxProbesPerHostTick bounds ScanRate·TickSeconds in the exact driver.
	maxProbesPerHostTick = 1e8
)

// checkTiming validates the rate/step/horizon triple shared by both
// drivers: all three finite and positive, at least one whole tick, and a
// tick count that fits comfortably in an int.
func checkTiming(scanRate, tickSeconds, maxSeconds float64) error {
	for _, v := range [...]float64{scanRate, tickSeconds, maxSeconds} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("sim: rates and durations must be positive and finite (got rate=%v tick=%v horizon=%v)", scanRate, tickSeconds, maxSeconds)
		}
	}
	steps := maxSeconds / tickSeconds
	if steps < 1 {
		return fmt.Errorf("sim: horizon %v shorter than one %v-second tick", maxSeconds, tickSeconds)
	}
	if steps > maxTicks {
		return fmt.Errorf("sim: %v ticks exceed the %v cap", steps, float64(maxTicks))
	}
	return nil
}

// checkFaultHorizon rejects fault plans compiled over a shorter horizon
// than the run: queries past the horizon silently report the fault-free
// state, which would make the tail of the run quietly healthy.
func checkFaultHorizon(plan *faults.Plan, maxSeconds float64) error {
	if plan != nil && plan.Horizon() < maxSeconds {
		return fmt.Errorf("sim: fault plan horizon %v < run length %v", plan.Horizon(), maxSeconds)
	}
	return nil
}

// exactAgent is one infected, probing host. The generator and the
// compiled source view are built once at infection time; during phase 1
// each agent is owned by exactly one worker.
type exactAgent struct {
	id   int32
	src  population.Host
	view netenv.SourceView
	gen  worm.TargetGenerator
}

// exactInfEvent is a phase-1 probe that reached at least one
// snapshot-susceptible victim. The victim ids live in the worker's flat
// victims buffer (nVictims consecutive entries); fallback is the outcome
// the probe takes if every victim was claimed by an earlier agent; agent
// is the probing host, kept so the merge phase can attribute the
// infection edge in the flight recorder.
type exactInfEvent struct {
	agent    int32
	fallback ProbeOutcome
	nVictims int32
}

// exactHit is a buffered OnProbe observation awaiting serial replay.
type exactHit struct {
	src, dst ipv4.Addr
}

// exactWorker is one phase-1 classification shard's private state. The
// environment generator is a value, reseeded per (agent, tick) — no
// worker ever shares randomness with another, which is what makes the
// tick's result independent of goroutine scheduling.
type exactWorker struct {
	envR     rng.Xoshiro
	probes   uint64
	outcomes OutcomeCounts
	events   []exactInfEvent
	victims  []int32
	hits     []exactHit
}

func (w *exactWorker) reset() {
	w.probes = 0
	w.outcomes = OutcomeCounts{}
	w.events = w.events[:0]
	w.victims = w.victims[:0]
	w.hits = w.hits[:0]
}

// RunExact runs the probe-exact simulation.
//
// Each tick executes in two phases. Phase 1 shards the agent list across
// cfg.Workers goroutines; every agent draws its probes from its own
// target generator plus a per-(agent,tick) environment RNG stream and
// classifies them against the tick-start infection snapshot, buffering
// candidate infections and sensor observations per worker. Phase 2 merges
// the buffers serially in agent order: duplicate infection candidates
// resolve first-agent-wins, and OnProbe callbacks replay in a fixed
// order. Results are byte-identical for every worker count.
func RunExact(cfg ExactConfig) (*Result, error) {
	if g, err := graphTopology(cfg.Topology); err != nil {
		return nil, err
	} else if g != nil {
		return runExactGraph(cfg, g)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	env := cfg.Env
	if env == nil {
		env = &netenv.Environment{}
	}
	r := rng.NewXoshiro(cfg.Seed)
	pop := cfg.Pop
	n := pop.Size()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SensorSet != nil {
		// ipv4.Set builds its indexes lazily on first read. Freeze it now so
		// the phase-1 workers' concurrent Contains calls are pure reads.
		cfg.SensorSet.Freeze()
	}

	infected := make([]bool, n)
	infTime := make([]float64, n)
	for i := range infTime {
		infTime[i] = -1
	}
	var agents []exactAgent
	infect := func(id int, t float64) {
		infected[id] = true
		infTime[id] = t
		h := pop.Host(id)
		agents = append(agents, exactAgent{
			id:   int32(id),
			src:  h,
			view: env.CompileSource(h.Addr),
			gen:  cfg.Factory.New(h.Addr, rng.Mix64(cfg.Seed^uint64(id)<<1|1)),
		})
	}
	rec := cfg.Trace
	rec.Append(trace.Event{Tick: 0, T: 0, Kind: trace.KindPhase, Agent: -1, Victim: -1, Vector: "start", Detail: "exact"})
	for _, id := range r.SampleWithoutReplacement(n, cfg.SeedHosts) {
		infect(id, 0)
		rec.AppendInfection(0, 0, -1, id, uint32(pop.Host(id).Addr), "seed")
	}

	probesPerTick := int(cfg.ScanRate*cfg.TickSeconds + 0.5) // ≥1, by validation

	steps := int(cfg.MaxSeconds / cfg.TickSeconds)
	res := &Result{InfectionTime: infTime, Series: make([]TickInfo, 0, steps)}
	metrics := newSimMetrics(cfg.Metrics, "exact", cfg.MetricLabels)
	metrics.attachFaults(cfg.Metrics, cfg.Faults, "exact", cfg.MetricLabels)

	// Degraded reporting interposes between the wire and OnProbe: probes
	// are queued at observation time and delivered (possibly duplicated)
	// when the simulated clock passes their due time.
	onProbe := cfg.OnProbe
	var reporter *faults.Reporter
	if onProbe != nil {
		if reporter = cfg.Faults.NewReporter(onProbe); reporter != nil {
			onProbe = reporter.Report
		}
	}

	ws := make([]exactWorker, workers)
	var faultCursor faults.TraceCursor
	for step := 1; step <= steps; step++ {
		t := float64(step) * cfg.TickSeconds
		cfg.Clock.Set(t)
		if reporter != nil {
			reporter.Advance(t)
		}
		faultCursor.Observe(rec, cfg.Faults, step, t)
		burstLoss := cfg.Faults.BurstLoss(t)

		// Phase 1: classify this tick's probes against the tick-start
		// infection snapshot. Agents infected during this tick start
		// probing next tick, and `infected` is only written in phase 2,
		// so the workers' shared reads are race-free.
		nAgents := len(agents)
		nShards := workers
		if nShards > nAgents {
			nShards = nAgents
		}
		stepU := uint64(step)
		classify := func(w *exactWorker, shard []exactAgent) {
			w.reset()
			for ai := range shard {
				a := &shard[ai]
				w.envR.SeedStream(cfg.Seed, uint64(a.id), stepU)
				for p := 0; p < probesPerTick; p++ {
					dst := a.gen.Next()
					w.probes++
					if dst.IsPrivate() {
						// Private destinations never cross the Internet:
						// they can only reach hosts on the same NAT site.
						if !a.src.IsNATed() {
							w.outcomes[OutcomePrivateDropped]++
							continue
						}
						blocked := false
						nv := int32(0)
						for _, vid := range pop.Lookup(dst) {
							if infected[vid] {
								continue
							}
							if netenv.CanReach(a.src, pop.Host(vid)) {
								w.victims = append(w.victims, int32(vid))
								nv++
							} else {
								blocked = true
							}
						}
						fb := OutcomeDelivered
						switch {
						case blocked:
							fb = OutcomeNATBlocked
						case dst == a.src.Addr:
							fb = OutcomeSelfHit
						}
						if nv == 0 {
							w.outcomes[fb]++
						} else {
							w.events = append(w.events, exactInfEvent{agent: a.id, fallback: fb, nVictims: nv})
						}
						continue
					}
					if burstLoss > 0 && w.envR.Bernoulli(burstLoss) {
						w.outcomes[OutcomeBurstLost]++
						continue
					}
					if !a.view.Delivered(dst, &w.envR) {
						w.outcomes[OutcomeFiltered]++
						continue
					}
					onSensor := cfg.SensorSet != nil && cfg.SensorSet.Contains(dst)
					if onSensor && cfg.Faults.SensorDown(dst, t) {
						// Delivered onto monitored space whose sensor is
						// withdrawn: nobody is listening, so the probe
						// never reaches OnProbe. Darknet space holds no
						// vulnerable hosts, so skipping the infection
						// lookup is exact.
						w.outcomes[OutcomeSensorDown]++
						continue
					}
					if onProbe != nil {
						w.hits = append(w.hits, exactHit{src: a.src.Addr, dst: dst})
					}
					nv := int32(0)
					for _, vid := range pop.Lookup(dst) {
						if !infected[vid] && netenv.CanReach(a.src, pop.Host(vid)) {
							w.victims = append(w.victims, int32(vid))
							nv++
						}
					}
					fb := OutcomeDelivered
					switch {
					case dst == a.src.Addr:
						fb = OutcomeSelfHit
					case onSensor:
						fb = OutcomeSensorHit
					}
					if nv == 0 {
						w.outcomes[fb]++
					} else {
						w.events = append(w.events, exactInfEvent{agent: a.id, fallback: fb, nVictims: nv})
					}
				}
			}
		}
		if nShards <= 1 {
			nShards = 1
			classify(&ws[0], agents[:nAgents])
		} else {
			var wg sync.WaitGroup
			for wi := 0; wi < nShards; wi++ {
				lo := wi * nAgents / nShards
				hi := (wi + 1) * nAgents / nShards
				wg.Add(1)
				go func(w *exactWorker, shard []exactAgent) {
					defer wg.Done()
					classify(w, shard)
				}(&ws[wi], agents[lo:hi:hi])
			}
			wg.Wait()
		}

		// Phase 2: serial merge in agent order. Shards are contiguous
		// agent ranges, so visiting workers in index order replays events
		// exactly as a serial pass over the agent list would — duplicate
		// infection candidates resolve first-agent-wins.
		var newInf int
		var probes uint64
		var outcomes OutcomeCounts
		for wi := 0; wi < nShards; wi++ {
			probes += ws[wi].probes
			outcomes.Merge(ws[wi].outcomes)
		}
		for wi := 0; wi < nShards; wi++ {
			w := &ws[wi]
			off := 0
			for _, ev := range w.events {
				hit := false
				for _, vid := range w.victims[off : off+int(ev.nVictims)] {
					if !infected[vid] {
						infect(int(vid), t)
						newInf++
						hit = true
						rec.AppendInfection(step, t, int(ev.agent), int(vid),
							uint32(pop.Host(int(vid)).Addr), "scan")
					}
				}
				off += int(ev.nVictims)
				if hit {
					outcomes[OutcomeInfection]++
				} else {
					outcomes[ev.fallback]++
				}
			}
		}
		if onProbe != nil {
			// Sensor observations replay after the infection merge, still
			// in agent order; fleets never read infection state, so the
			// two replay streams need no interleaving.
			for wi := 0; wi < nShards; wi++ {
				for _, h := range ws[wi].hits {
					onProbe(h.src, h.dst)
				}
			}
		}

		info := TickInfo{Time: t, Infected: len(agents), NewInfections: newInf, Probes: probes, Outcomes: outcomes}
		res.Series = append(res.Series, info)
		res.Final = info
		res.Outcomes.Merge(outcomes)
		if rec != nil {
			rec.Append(trace.Event{Tick: step, T: t, Kind: trace.KindProbes, Agent: -1, Victim: -1,
				N: probes, Detail: outcomes.String()})
		}
		metrics.flushTick(info)
		metrics.flushFaults(cfg.Faults, t)
		if cfg.OnTick != nil && !cfg.OnTick(info) {
			break
		}
		if cfg.StopWhenInfected > 0 && len(agents) >= cfg.StopWhenInfected {
			break
		}
	}
	if reporter != nil {
		// End of run: deliver everything still in flight so detection sees
		// every observation exactly as a real collector drain would.
		reporter.Flush()
	}
	rec.Append(trace.Event{Tick: len(res.Series), T: res.Final.Time, Kind: trace.KindPhase,
		Agent: -1, Victim: -1, Vector: "end", Detail: "exact", N: uint64(res.Final.Infected)})
	return res, nil
}
