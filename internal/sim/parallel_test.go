package sim

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// These tests enforce the tentpole guarantee of the parallel exact driver:
// Workers is a throughput knob, never a semantics knob. For a fixed seed,
// every worker count must yield byte-identical results — Result series,
// per-host infection times, cumulative outcome tallies, and the complete
// observable state of a sensor fleet wired through OnProbe.

// serializeExactRun renders everything an exact run produced, including
// every per-/24 sensor counter, with exact float formatting.
func serializeExactRun(t *testing.T, res *Result, fleet *sensor.Fleet) string {
	t.Helper()
	out := ""
	for _, ti := range res.Series {
		out += fmt.Sprintf("%x %d %d %d %v\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes, ti.Outcomes)
	}
	for id, it := range res.InfectionTime {
		if it >= 0 {
			out += fmt.Sprintf("inf %d %x\n", id, it)
		}
	}
	out += fmt.Sprintf("cum %v\n", res.Outcomes)
	if fleet != nil {
		for _, s := range fleet.Sensors() {
			out += fmt.Sprintf("sensor %v total=%d uniq=%d missed=%d\n",
				s.Block(), s.TotalAttempts(), s.UniqueSources(), s.Missed())
			for _, st := range s.PerSlash24() {
				if st.Attempts > 0 {
					out += fmt.Sprintf("  /24 %v a=%d u=%d\n", st.First, st.Attempts, st.UniqueSources)
				}
			}
		}
	}
	return out
}

// runExactWorkers executes one fully loaded exact run — NAT sites,
// egress/ingress filtering, loss, a sensor fleet behind OnProbe, and a
// fault plan with an outage, bursty loss, and delayed/duplicated
// reporting — with the given worker count, and serializes everything.
func runExactWorkers(t *testing.T, workers int) string {
	t.Helper()
	pop := smallPop(t, 600, 77)
	if err := pop.AssignNAT(0.3, 8, 5); err != nil {
		t.Fatal(err)
	}
	env := &netenv.Environment{}
	if err := env.SetLossRate(0.05); err != nil {
		t.Fatal(err)
	}
	env.AddEgressFilter(ipv4.MustParsePrefix("20.0.0.0/8"), 0.5)
	env.AddIngressFilter(ipv4.MustParsePrefix("30.0.0.0/8"), 0.3)

	fleet := sensor.MustNewFleet([]sensor.Block{
		{Label: "A", Prefix: ipv4.MustParsePrefix("200.10.0.0/20")},
		{Label: "B", Prefix: ipv4.MustParsePrefix("201.20.64.0/22")},
	})
	plan, err := faults.Compile(faults.Config{
		Seed: 99,
		Outages: []faults.OutageConfig{
			{Block: "201.20.64.0/22", Start: 10, End: 25},
		},
		Burst:     &faults.BurstConfig{MeanGood: 12, MeanBad: 4, LossGood: 0.02, LossBad: 0.5},
		Reporting: &faults.ReportingConfig{Delay: 2, DupProb: 0.1},
	}, 40)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunExact(ExactConfig{
		Pop:         pop,
		Factory:     worm.CodeRedIIFactory{},
		Env:         env,
		ScanRate:    500,
		TickSeconds: 1,
		MaxSeconds:  40,
		SeedHosts:   10,
		Seed:        4242,
		Workers:     workers,
		SensorSet:   fleet.CoverageSet(),
		OnProbe:     func(src, dst ipv4.Addr) { fleet.Observe(src, dst) },
		Faults:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return serializeExactRun(t, res, fleet)
}

func TestRunExactWorkersByteIdentical(t *testing.T) {
	want := runExactWorkers(t, 1)
	for _, workers := range []int{2, 3, 4, 7} {
		if got := runExactWorkers(t, workers); got != want {
			t.Errorf("Workers=%d diverged from Workers=1:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestRunExactWorkersDefault: Workers = 0 (the GOMAXPROCS default) must
// also match the serial path — the default configuration is not a
// separate code path with separate semantics.
func TestRunExactWorkersDefault(t *testing.T) {
	if got, want := runExactWorkers(t, 0), runExactWorkers(t, 1); got != want {
		t.Error("Workers=0 (GOMAXPROCS default) diverged from Workers=1")
	}
}

// TestRunExactParallelConservation re-checks the conservation invariant
// under the parallel path specifically: with multiple shards merging,
// every tick's outcome tallies must still sum to its probe count.
func TestRunExactParallelConservation(t *testing.T) {
	pop := smallPop(t, 400, 31)
	res, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 60, SeedHosts: 8, Seed: 1234,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalProbes uint64
	for _, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			t.Fatalf("t=%v: outcomes total %d != probes %d (%v)", ti.Time, got, ti.Probes, ti.Outcomes)
		}
		totalProbes += ti.Probes
	}
	if got := res.Outcomes.Total(); got != totalProbes {
		t.Fatalf("cumulative outcomes total %d != run probes %d", got, totalProbes)
	}
}

// TestRunExactParallelHitListShared pins the shared-hit-list race fixed in
// ipv4.Set.Freeze: every agent of a hit-list worm shares one ipv4.Set, and
// Select's rank index used to be built lazily on first call — a hidden
// write racing across phase-1 workers. The set here is built fresh (index
// unbuilt) so the race detector would catch a regression; byte-identity
// against the serial run guards the semantics.
func TestRunExactParallelHitListShared(t *testing.T) {
	run := func(workers int) *Result {
		pop := smallPop(t, 300, 17)
		prefixes, _ := worm.BuildGreedySlash16HitList(pop.Addrs(true), 8)
		list := ipv4.SetOfPrefixes(prefixes...)
		res, err := RunExact(ExactConfig{
			Pop:      pop,
			Factory:  worm.HitListFactory{ListSet: list},
			ScanRate: 800, TickSeconds: 1, MaxSeconds: 40, SeedHosts: 6, Seed: 77,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want, got := run(1), run(4)
	if len(want.Series) != len(got.Series) {
		t.Fatalf("series length %d vs %d", len(want.Series), len(got.Series))
	}
	for i := range want.Series {
		if want.Series[i] != got.Series[i] {
			t.Fatalf("tick %d: %+v vs %+v", i, want.Series[i], got.Series[i])
		}
	}
}
