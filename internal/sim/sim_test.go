package sim

import (
	"math"
	"testing"

	"repro/internal/detect"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/population"
	"repro/internal/worm"
)

// smallPop builds a compact clustered population for driver tests.
func smallPop(t *testing.T, size int, seed uint64) *population.Population {
	t.Helper()
	p, err := population.Synthesize(population.Config{
		Size:             size,
		Slash8s:          6,
		Slash16s:         24,
		Include192Slash8: true,
		Seed:             seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactConfigValidation(t *testing.T) {
	pop := smallPop(t, 100, 1)
	base := ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 10, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 5, Seed: 1,
	}
	mutations := []struct {
		name string
		mut  func(*ExactConfig)
	}{
		{name: "nil-pop", mut: func(c *ExactConfig) { c.Pop = nil }},
		{name: "nil-factory", mut: func(c *ExactConfig) { c.Factory = nil }},
		{name: "zero-rate", mut: func(c *ExactConfig) { c.ScanRate = 0 }},
		{name: "zero-tick", mut: func(c *ExactConfig) { c.TickSeconds = 0 }},
		{name: "zero-horizon", mut: func(c *ExactConfig) { c.MaxSeconds = 0 }},
		{name: "zero-seeds", mut: func(c *ExactConfig) { c.SeedHosts = 0 }},
		{name: "too-many-seeds", mut: func(c *ExactConfig) { c.SeedHosts = 101 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := RunExact(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestExactHitListEpidemicSaturates(t *testing.T) {
	pop := smallPop(t, 500, 2)
	list, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	if cover != 1 {
		t.Fatalf("full hit-list covers %.3f", cover)
	}
	set := ipv4.SetOfPrefixes(list...)
	res, err := RunExact(ExactConfig{
		Pop:     pop,
		Factory: worm.HitListFactory{ListSet: set},
		// High scan rate so the tiny population saturates quickly: the
		// hit-list space is 24 /16s ≈ 1.6M addresses. Stop at 96% to avoid
		// simulating the long saturated tail probe-by-probe.
		ScanRate: 20000, TickSeconds: 1, MaxSeconds: 300,
		SeedHosts: 5, Seed: 3, StopWhenInfected: 480,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FractionInfected(); got < 0.95 {
		t.Errorf("final infected fraction = %.3f, want ≥0.95", got)
	}
	// Monotone, bounded series.
	prev := 0
	for _, ti := range res.Series {
		if ti.Infected < prev || ti.Infected > pop.Size() {
			t.Fatalf("non-monotone or out-of-range infected count %d", ti.Infected)
		}
		prev = ti.Infected
	}
	// Every infected host has a non-negative infection time.
	n := 0
	for _, it := range res.InfectionTime {
		if it >= 0 {
			n++
		}
	}
	if n != res.Final.Infected {
		t.Errorf("infection times recorded for %d hosts, want %d", n, res.Final.Infected)
	}
}

func TestExactStopWhenInfected(t *testing.T) {
	pop := smallPop(t, 500, 2)
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	res, err := RunExact(ExactConfig{
		Pop:      pop,
		Factory:  worm.HitListFactory{ListSet: ipv4.SetOfPrefixes(list...)},
		ScanRate: 20000, TickSeconds: 1, MaxSeconds: 1000,
		SeedHosts: 5, Seed: 3, StopWhenInfected: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected < 100 {
		t.Errorf("stopped at %d infected, want ≥100", res.Final.Infected)
	}
	if res.Final.Time >= 1000 {
		t.Error("did not stop early")
	}
}

func TestExactOnTickEarlyStop(t *testing.T) {
	pop := smallPop(t, 100, 4)
	ticks := 0
	_, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 1, TickSeconds: 1, MaxSeconds: 100, SeedHosts: 1, Seed: 1,
		OnTick: func(TickInfo) bool { ticks++; return ticks < 7 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 7 {
		t.Errorf("ran %d ticks, want 7", ticks)
	}
}

func TestExactSensorsSeeProbes(t *testing.T) {
	pop := smallPop(t, 200, 5)
	fleet, err := detect.NewThresholdFleet(
		[]ipv4.Prefix{ipv4.MustParsePrefix("200.1.2.0/24")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var probes int
	_, err = RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 1000, TickSeconds: 1, MaxSeconds: 30, SeedHosts: 10, Seed: 6,
		OnProbe: func(src, dst ipv4.Addr) {
			probes++
			fleet.RecordHit(dst)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probes observed")
	}
	// A /24 out of 2^32 at ≥10 hosts × 1000 probes/s × 30 s ≈ 300k probes:
	// expected hits ≈ 300k·2^-24 ≈ 0.018 — usually zero, but the fleet
	// machinery must at least have seen the full probe stream.
	if fleet.TouchedFraction() > 0 && fleet.NumAlerted() > fleet.Size() {
		t.Error("impossible alert accounting")
	}
}

func TestExactNATReachability(t *testing.T) {
	// With every host NAT'd in one site and a local-preference-free
	// scanner, infections can only occur via private-space probes from
	// sitemates; a uniform scanner essentially never probes 192.168/16
	// (2^16/2^32 of its draws), so the epidemic must stall at the seeds.
	pop := smallPop(t, 100, 7)
	if err := pop.AssignNAT(1.0, 100, 1); err != nil {
		t.Fatal(err)
	}
	res, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.UniformFactory{},
		ScanRate: 100, TickSeconds: 1, MaxSeconds: 50, SeedHosts: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected > 5 {
		t.Errorf("NAT'd population reached %d infections under uniform scanning", res.Final.Infected)
	}
}

func TestExactEnvironmentHardBlock(t *testing.T) {
	pop := smallPop(t, 300, 9)
	env := &netenv.Environment{}
	// Block everything: no infections beyond seeds can occur.
	env.AddIngressFilter(ipv4.MustParsePrefix("0.0.0.0/0"), 1.0)
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	res, err := RunExact(ExactConfig{
		Pop: pop, Env: env,
		Factory:  worm.HitListFactory{ListSet: ipv4.SetOfPrefixes(list...)},
		ScanRate: 10000, TickSeconds: 1, MaxSeconds: 20, SeedHosts: 5, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected != 5 {
		t.Errorf("infections under total block = %d, want 5 (seeds only)", res.Final.Infected)
	}
}

func TestFastConfigValidation(t *testing.T) {
	pop := smallPop(t, 100, 1)
	base := FastConfig{
		Pop: pop, Model: NewUniformModel(),
		ScanRate: 10, TickSeconds: 1, MaxSeconds: 10, SeedHosts: 5, Seed: 1,
	}
	mutations := []struct {
		name string
		mut  func(*FastConfig)
	}{
		{name: "nil-pop", mut: func(c *FastConfig) { c.Pop = nil }},
		{name: "nil-model", mut: func(c *FastConfig) { c.Model = nil }},
		{name: "zero-rate", mut: func(c *FastConfig) { c.ScanRate = 0 }},
		{name: "bad-loss", mut: func(c *FastConfig) { c.LossRate = 1 }},
		{name: "sensors-without-set", mut: func(c *FastConfig) {
			c.Sensors = detect.MustNewThresholdFleet([]ipv4.Prefix{ipv4.MustParsePrefix("1.2.3.0/24")}, 1)
		}},
		{name: "containment-no-trigger", mut: func(c *FastConfig) {
			c.Containment = &Containment{Drop: 0.5}
		}},
		{name: "containment-bad-drop", mut: func(c *FastConfig) {
			c.Containment = &Containment{Trigger: func() bool { return false }, Drop: 2}
		}},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mut(&cfg)
			if _, err := RunFast(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// epidemicHalfTime runs a driver and returns the time to 50% infected.
func epidemicHalfTime(t *testing.T, run func(seed uint64) *Result, seeds int) float64 {
	t.Helper()
	var sum float64
	var n int
	for s := 0; s < seeds; s++ {
		res := run(uint64(s) + 1)
		if tt, ok := res.TimeToFraction(0.5); ok {
			sum += tt
			n++
		}
	}
	if n == 0 {
		t.Fatal("epidemic never reached 50%")
	}
	return sum / float64(n)
}

func TestFastMatchesExactHitListDynamics(t *testing.T) {
	// The load-bearing equivalence test: the fast (binomial/Poisson)
	// driver must reproduce the exact driver's epidemic curve for a
	// memoryless scanner, within sampling noise.
	pop := smallPop(t, 400, 11)
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	set := ipv4.SetOfPrefixes(list...)

	// Stop shortly past the half-infection mark: only the growth phase is
	// compared, and the exact driver's saturated tail is expensive.
	stop := pop.Size() * 6 / 10
	exact := func(seed uint64) *Result {
		res, err := RunExact(ExactConfig{
			Pop: pop, Factory: worm.HitListFactory{ListSet: set},
			ScanRate: 4000, TickSeconds: 1, MaxSeconds: 600, SeedHosts: 5, Seed: seed,
			StopWhenInfected: stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := func(seed uint64) *Result {
		res, err := RunFast(FastConfig{
			Pop: pop, Model: &HitListModel{List: set},
			ScanRate: 4000, TickSeconds: 1, MaxSeconds: 600, SeedHosts: 5, Seed: seed,
			StopWhenInfected: stop,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	te := epidemicHalfTime(t, exact, 6)
	tf := epidemicHalfTime(t, fast, 6)
	if ratio := te / tf; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("half-infection time exact=%.1fs fast=%.1fs (ratio %.2f), want ≈1", te, tf, ratio)
	}
}

func TestFastSensorRatesMatchExact(t *testing.T) {
	// Sensor hit counts per probe must agree between drivers for a fixed
	// infected population (no growth: scanners target empty space).
	fleetPrefixes := []ipv4.Prefix{
		ipv4.MustParsePrefix("200.1.2.0/24"),
		ipv4.MustParsePrefix("200.9.0.0/20"),
	}
	pop := smallPop(t, 50, 13)
	set := ipv4.SetOfPrefixes(ipv4.MustParsePrefix("200.0.0.0/8"))

	exactFleet := detect.MustNewThresholdFleet(fleetPrefixes, 1)
	_, err := RunExact(ExactConfig{
		Pop: pop, Factory: worm.HitListFactory{ListSet: set},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 50, SeedHosts: 50, Seed: 14,
		OnProbe: func(_, dst ipv4.Addr) { exactFleet.RecordHit(dst) },
	})
	if err != nil {
		t.Fatal(err)
	}

	fastFleet := detect.MustNewThresholdFleet(fleetPrefixes, 1)
	_, err = RunFast(FastConfig{
		Pop: pop, Model: &HitListModel{List: set},
		ScanRate: 2000, TickSeconds: 1, MaxSeconds: 50, SeedHosts: 50, Seed: 15,
		Sensors: fastFleet, SensorSet: fastFleet.Union(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Expected hits: 50 hosts × 2000 probes × 50 s × (4352/2^24) ≈ 1296.
	eh := float64(exactFleet.TotalHits())
	fh := float64(fastFleet.TotalHits())
	if eh == 0 || fh == 0 {
		t.Fatalf("no sensor hits (exact %v fast %v)", eh, fh)
	}
	if r := eh / fh; r < 0.85 || r > 1.18 {
		t.Errorf("sensor hits exact=%v fast=%v (ratio %.2f), want ≈1", eh, fh, r)
	}
	want := 50.0 * 2000 * 50 * 4352 / (1 << 24)
	if math.Abs(eh-want)/want > 0.15 {
		t.Errorf("exact sensor hits = %v, want ≈%v", eh, want)
	}
}

func TestFastCodeRedIINATLeakInfectsPublic192(t *testing.T) {
	// NAT'd CRII hosts must be able to infect public hosts in 192/8 via
	// the /8 leak, and sitemates via the private /16, but the epidemic
	// must not leak *into* NAT'd hosts from public space.
	pop := smallPop(t, 2000, 17)
	if err := pop.AssignNAT(0.3, 5, 3); err != nil {
		t.Fatal(err)
	}
	res, err := RunFast(FastConfig{
		Pop: pop, Model: NewCodeRedIIModel(),
		ScanRate: 50000, TickSeconds: 1, MaxSeconds: 400, SeedHosts: 25, Seed: 18,
		StopWhenInfected: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected <= 25 {
		t.Fatalf("CRII epidemic never grew (infected=%d)", res.Final.Infected)
	}
	// NAT'd hosts other than seeds can only be infected by sitemates.
	var natInfected int
	for i, it := range res.InfectionTime {
		if it > 0 && pop.Host(i).IsNATed() {
			natInfected++
		}
	}
	// Some sites should have seen secondary infection if any site had a
	// seeded member; this is stochastic, so only sanity-bound it.
	if natInfected > pop.Size() {
		t.Fatal("impossible NAT infection count")
	}
}

func TestFastDeterminism(t *testing.T) {
	// The CRII model produces many per-/16 groups: this exercises the
	// ordered group processing (map-ordered iteration once made same-seed
	// multi-group runs diverge).
	pop := smallPop(t, 2000, 19)
	if err := pop.AssignNAT(0.2, 5, 3); err != nil {
		t.Fatal(err)
	}
	run := func(model RateModel) *Result {
		res, err := RunFast(FastConfig{
			Pop: pop, Model: model,
			ScanRate: 5000, TickSeconds: 1, MaxSeconds: 300, SeedHosts: 10, Seed: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, model := range []RateModel{NewUniformModel(), NewCodeRedIIModel()} {
		a, b := run(model), run(model)
		if len(a.Series) != len(b.Series) {
			t.Fatalf("%s: series lengths differ", model.Name())
		}
		for i := range a.Series {
			if a.Series[i] != b.Series[i] {
				t.Fatalf("%s: same-seed fast runs diverged at tick %d", model.Name(), i)
			}
		}
		for i := range a.InfectionTime {
			if a.InfectionTime[i] != b.InfectionTime[i] {
				t.Fatalf("%s: infection times diverged for host %d", model.Name(), i)
			}
		}
	}
}

func TestFastBlockedDstPreventsInfection(t *testing.T) {
	pop := smallPop(t, 300, 21)
	blocked := ipv4.NewSet(ipv4.Interval{Lo: 0, Hi: ipv4.MaxAddr})
	res, err := RunFast(FastConfig{
		Pop: pop, Model: NewUniformModel(),
		ScanRate: 100000, TickSeconds: 1, MaxSeconds: 50, SeedHosts: 5, Seed: 22,
		BlockedDst: blocked,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected != 5 {
		t.Errorf("infected = %d under total block, want 5", res.Final.Infected)
	}
}

func TestFastContainmentSlowsEpidemic(t *testing.T) {
	pop := smallPop(t, 600, 23)
	list, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 24)
	set := ipv4.SetOfPrefixes(list...)
	base := FastConfig{
		Pop: pop, Model: &HitListModel{List: set},
		ScanRate: 800, TickSeconds: 1, MaxSeconds: 200, SeedHosts: 5, Seed: 24,
	}

	free, err := RunFast(base)
	if err != nil {
		t.Fatal(err)
	}

	contained := base
	ticks := 0
	policy := &Containment{
		Trigger: func() bool { ticks++; return ticks >= 10 },
		Drop:    0.97,
	}
	contained.Containment = policy
	throttled, err := RunFast(contained)
	if err != nil {
		t.Fatal(err)
	}
	if !policy.Engaged() || policy.EngagedAt != 10 {
		t.Fatalf("containment engaged=%v at %v, want true at t=10", policy.Engaged(), policy.EngagedAt)
	}
	if throttled.Final.Infected >= free.Final.Infected {
		t.Errorf("containment did not slow the epidemic: %d vs %d infected",
			throttled.Final.Infected, free.Final.Infected)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Series: []TickInfo{
			{Time: 1, Infected: 10},
			{Time: 2, Infected: 50},
			{Time: 3, Infected: 90},
		},
		Final:         TickInfo{Time: 3, Infected: 90},
		InfectionTime: make([]float64, 100),
	}
	if got := r.FractionInfected(); got != 0.9 {
		t.Errorf("FractionInfected = %v, want 0.9", got)
	}
	tt, ok := r.TimeToFraction(0.5)
	if !ok || tt != 2 {
		t.Errorf("TimeToFraction(0.5) = %v,%v, want 2,true", tt, ok)
	}
	if _, ok := r.TimeToFraction(0.95); ok {
		t.Error("TimeToFraction(0.95) should fail")
	}
	empty := &Result{}
	if empty.FractionInfected() != 0 {
		t.Error("empty result fraction non-zero")
	}
}
