package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes_total", "outcome", "delivered")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name+labels (any order) resolves to the same series.
	if r.Counter("probes_total", "outcome", "delivered") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("infected")
	g.Set(10)
	g.Add(2.5)
	if got := g.Value(); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
}

func TestNilHandlesAndRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // ≤1: {0.5,1}; ≤10: {2}; ≤100: {50}; +Inf: {1000}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-1053.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1053.5", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter must panic")
		}
	}()
	r.Gauge("m")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_probes_total", "outcome", "delivered").Add(7)
	r.Counter("sim_probes_total", "outcome", "filtered").Add(3)
	r.Gauge("sim_infected_hosts").Set(25)
	h := r.Histogram("tick_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_probes_total counter\n",
		`sim_probes_total{outcome="delivered"} 7` + "\n",
		`sim_probes_total{outcome="filtered"} 3` + "\n",
		"# TYPE sim_infected_hosts gauge\nsim_infected_hosts 25\n",
		"# TYPE tick_seconds histogram\n",
		`tick_seconds_bucket{le="1"} 1` + "\n",
		`tick_seconds_bucket{le="10"} 1` + "\n",
		`tick_seconds_bucket{le="+Inf"} 2` + "\n",
		"tick_seconds_sum 20.5\n",
		"tick_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two expositions of a quiescent registry are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "v").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{2}).Observe(1)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Series string `json:"series"`
			Value  uint64 `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Series string  `json:"series"`
			Value  float64 `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Series  string    `json:"series"`
			Count   uint64    `json:"count"`
			Sum     float64   `json:"sum"`
			Bounds  []float64 `json:"bounds"`
			Buckets []uint64  `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Series != `c{k="v"}` || snap.Counters[0].Value != 5 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Series != "g" || math.Abs(snap.Gauges[0].Value-1.5) > 1e-12 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	if hs.Series != "h" || hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[0] != 1 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
}

// TestExpositionBytesPinned pins both exposition formats byte for byte: a
// fixed registry must dump exactly these bytes, in registry-sorted series
// order, on every platform and Go version. A diff here means the dump
// format changed — bump deliberately, never accidentally.
func TestExpositionBytesPinned(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "code", "200").Add(3)
	r.Counter("requests_total", "code", "500").Add(1)
	r.Gauge("temperature").Set(0.25)
	h := r.Histogram("latency_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20.5)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	wantProm := `# TYPE latency_seconds histogram
latency_seconds_bucket{le="1"} 1
latency_seconds_bucket{le="10"} 1
latency_seconds_bucket{le="+Inf"} 2
latency_seconds_sum 21
latency_seconds_count 2
# TYPE requests_total counter
requests_total{code="200"} 3
requests_total{code="500"} 1
# TYPE temperature gauge
temperature 0.25
`
	if prom.String() != wantProm {
		t.Errorf("Prometheus exposition drifted:\ngot:\n%s\nwant:\n%s", prom.String(), wantProm)
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{
  "counters": [
    {
      "series": "requests_total{code=\"200\"}",
      "value": 3
    },
    {
      "series": "requests_total{code=\"500\"}",
      "value": 1
    }
  ],
  "gauges": [
    {
      "series": "temperature",
      "value": 0.25
    }
  ],
  "histograms": [
    {
      "series": "latency_seconds",
      "count": 2,
      "sum": 21,
      "bounds": [
        1,
        10
      ],
      "buckets": [
        1,
        0,
        1
      ]
    }
  ]
}
`
	if js.String() != wantJSON {
		t.Errorf("JSON exposition drifted:\ngot:\n%s\nwant:\n%s", js.String(), wantJSON)
	}

	// An empty registry still dumps a complete, stable skeleton.
	var empty strings.Builder
	if err := NewRegistry().WriteJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if want := "{\n  \"counters\": [],\n  \"gauges\": [],\n  \"histograms\": []\n}\n"; empty.String() != want {
		t.Errorf("empty JSON snapshot drifted:\ngot %q want %q", empty.String(), want)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("level")
			h := r.Histogram("obs", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); math.Abs(got-workers*perWorker) > 1e-6 {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("obs", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentFirstResolutionSharesOneHandle(t *testing.T) {
	// Regression: handle creation used to happen after lookup() released
	// the registry mutex, so two goroutines resolving a fresh series could
	// each build a handle and one's increments vanished from exposition.
	// Every worker resolves the same three fresh series and records one
	// update; the registry totals must account for all of them.
	const workers = 8
	r := NewRegistry()
	ctrs := make([]*Counter, workers)
	gauges := make([]*Gauge, workers)
	hists := make([]*Histogram, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			ctrs[w] = r.Counter("fresh_total", "w", "shared")
			gauges[w] = r.Gauge("fresh_level")
			hists[w] = r.Histogram("fresh_obs", []float64{1})
			ctrs[w].Inc()
			gauges[w].Add(1)
			hists[w].Observe(0.5)
		}(w)
	}
	close(start)
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ctrs[w] != ctrs[0] || gauges[w] != gauges[0] || hists[w] != hists[0] {
			t.Fatalf("worker %d got distinct handles for the same series", w)
		}
	}
	if got := r.Counter("fresh_total", "w", "shared").Value(); got != workers {
		t.Errorf("counter = %d, want %d (updates lost to a duplicate handle)", got, workers)
	}
	if got := r.Histogram("fresh_obs", nil).Count(); got != workers {
		t.Errorf("histogram count = %d, want %d", got, workers)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 10, 4)
	wantExp := []float64{1, 10, 100, 1000}
	for i := range wantExp {
		if math.Abs(exp[i]-wantExp[i]) > 1e-9 {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 10, 3)
	wantLin := []float64{10, 20, 30}
	for i := range wantLin {
		if math.Abs(lin[i]-wantLin[i]) > 1e-9 {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}

// TestExpBucketsEdges covers the degenerate shapes callers actually build:
// a single bucket, and non-integer growth factors whose bounds must stay
// strictly ascending (equal adjacent bounds would make a zero-width
// bucket the histogram could never fill).
func TestExpBucketsEdges(t *testing.T) {
	if got := ExpBuckets(5, 2, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("single bucket = %v, want [5]", got)
	}

	frac := ExpBuckets(0.1, 1.5, 8)
	if len(frac) != 8 || frac[0] != 0.1 {
		t.Fatalf("fractional growth = %v", frac)
	}
	for i := 1; i < len(frac); i++ {
		if frac[i] <= frac[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %v", i, frac)
		}
		if r := frac[i] / frac[i-1]; math.Abs(r-1.5) > 1e-12 {
			t.Fatalf("growth ratio %v at %d, want 1.5", r, i)
		}
	}
	// A factor barely above 1 must still grow every step.
	tiny := ExpBuckets(1, 1.0000001, 4)
	for i := 1; i < len(tiny); i++ {
		if tiny[i] <= tiny[i-1] {
			t.Fatalf("tiny factor collapsed at %d: %v", i, tiny)
		}
	}

	for name, fn := range map[string]func(){
		"zero start":     func() { ExpBuckets(0, 2, 3) },
		"factor one":     func() { ExpBuckets(1, 1, 3) },
		"no buckets":     func() { ExpBuckets(1, 2, 0) },
		"negative start": func() { ExpBuckets(-1, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
