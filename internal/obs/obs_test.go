package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes_total", "outcome", "delivered")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Same name+labels (any order) resolves to the same series.
	if r.Counter("probes_total", "outcome", "delivered") != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("infected")
	g.Set(10)
	g.Add(2.5)
	if got := g.Value(); math.Abs(got-12.5) > 1e-12 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
}

func TestNilHandlesAndRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 1} // ≤1: {0.5,1}; ≤10: {2}; ≤100: {50}; +Inf: {1000}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-1053.5) > 1e-9 {
		t.Fatalf("sum = %v, want 1053.5", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter must panic")
		}
	}()
	r.Gauge("m")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_probes_total", "outcome", "delivered").Add(7)
	r.Counter("sim_probes_total", "outcome", "filtered").Add(3)
	r.Gauge("sim_infected_hosts").Set(25)
	h := r.Histogram("tick_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_probes_total counter\n",
		`sim_probes_total{outcome="delivered"} 7` + "\n",
		`sim_probes_total{outcome="filtered"} 3` + "\n",
		"# TYPE sim_infected_hosts gauge\nsim_infected_hosts 25\n",
		"# TYPE tick_seconds histogram\n",
		`tick_seconds_bucket{le="1"} 1` + "\n",
		`tick_seconds_bucket{le="10"} 1` + "\n",
		`tick_seconds_bucket{le="+Inf"} 2` + "\n",
		"tick_seconds_sum 20.5\n",
		"tick_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Two expositions of a quiescent registry are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", "v").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{2}).Observe(1)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64    `json:"count"`
			Sum     float64   `json:"sum"`
			Bounds  []float64 `json:"bounds"`
			Buckets []uint64  `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if snap.Counters[`c{k="v"}`] != 5 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if math.Abs(snap.Gauges["g"]-1.5) > 1e-12 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	hs, ok := snap.Histograms["h"]
	if !ok || hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[0] != 1 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total")
			g := r.Gauge("level")
			h := r.Histogram("obs", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); math.Abs(got-workers*perWorker) > 1e-6 {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("obs", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentFirstResolutionSharesOneHandle(t *testing.T) {
	// Regression: handle creation used to happen after lookup() released
	// the registry mutex, so two goroutines resolving a fresh series could
	// each build a handle and one's increments vanished from exposition.
	// Every worker resolves the same three fresh series and records one
	// update; the registry totals must account for all of them.
	const workers = 8
	r := NewRegistry()
	ctrs := make([]*Counter, workers)
	gauges := make([]*Gauge, workers)
	hists := make([]*Histogram, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			ctrs[w] = r.Counter("fresh_total", "w", "shared")
			gauges[w] = r.Gauge("fresh_level")
			hists[w] = r.Histogram("fresh_obs", []float64{1})
			ctrs[w].Inc()
			gauges[w].Add(1)
			hists[w].Observe(0.5)
		}(w)
	}
	close(start)
	wg.Wait()
	for w := 1; w < workers; w++ {
		if ctrs[w] != ctrs[0] || gauges[w] != gauges[0] || hists[w] != hists[0] {
			t.Fatalf("worker %d got distinct handles for the same series", w)
		}
	}
	if got := r.Counter("fresh_total", "w", "shared").Value(); got != workers {
		t.Errorf("counter = %d, want %d (updates lost to a duplicate handle)", got, workers)
	}
	if got := r.Histogram("fresh_obs", nil).Count(); got != workers {
		t.Errorf("histogram count = %d, want %d", got, workers)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 10, 4)
	wantExp := []float64{1, 10, 100, 1000}
	for i := range wantExp {
		if math.Abs(exp[i]-wantExp[i]) > 1e-9 {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(10, 10, 3)
	wantLin := []float64{10, 20, 30}
	for i := range wantLin {
		if math.Abs(lin[i]-wantLin[i]) > 1e-9 {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}
