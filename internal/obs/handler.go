package obs

import "net/http"

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — the /metrics endpoint of anything built on this
// registry. A nil registry serves an empty (but well-formed) exposition,
// so wiring the endpoint never needs a nil check.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The registry snapshot cannot fail; write errors mean the client
		// went away, which an exposition endpoint has nothing to say about.
		_ = r.WritePrometheus(w)
	})
}
