package obs

import (
	"math"
	"sync/atomic"
)

// Clock supplies the current time in seconds since an arbitrary origin.
// Inside internal/ packages the implementation is always simulated time
// (SimClock, advanced by the tick loop); only cmd/ binaries may inject a
// wall clock. This inversion is what keeps the no-wallclock lint rule
// clean over the whole telemetry layer with zero suppressions.
type Clock interface {
	Seconds() float64
}

// SimClock is a manually advanced simulated clock. The zero value reads 0.
// Set/Seconds are atomic, so a clock shared between a tick loop and a
// concurrent metrics reader is race-free; within the single-threaded
// drivers it is simply a float cell.
type SimClock struct {
	bits atomic.Uint64
}

// Set moves the clock to t simulated seconds. Safe on a nil receiver
// (no-op), so drivers can advance an optional config clock unconditionally.
func (c *SimClock) Set(t float64) {
	if c == nil {
		return
	}
	c.bits.Store(math.Float64bits(t))
}

// Seconds returns the current simulated time (0 on a nil receiver).
func (c *SimClock) Seconds() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}
