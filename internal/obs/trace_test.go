package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsSimTime(t *testing.T) {
	clock := &SimClock{}
	reg := NewRegistry()
	tr := NewTracer(clock, reg)

	clock.Set(10)
	sp := tr.Start("experiment/fig5c")
	clock.Set(250)
	sp.End()

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "experiment/fig5c" || r.Start != 10 || r.End != 250 {
		t.Fatalf("record = %+v", r)
	}
	if d := r.Duration(); d != 240 {
		t.Fatalf("duration = %v, want 240", d)
	}
	h := reg.Histogram("obs_span_seconds", nil, "name", "experiment/fig5c")
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	tr.Start("x").End() // must not panic
	if tr.Records() != nil {
		t.Fatal("nil tracer must return nil records")
	}
	// A tracer with no clock and no registry still works, pinned at 0.
	tr2 := NewTracer(nil, nil)
	tr2.Start("y").End()
	if len(tr2.Records()) != 1 {
		t.Fatal("clockless tracer lost its span")
	}
}

func TestTracerWriteJSON(t *testing.T) {
	clock := &SimClock{}
	tr := NewTracer(clock, nil)
	clock.Set(1)
	sp := tr.Start("a")
	clock.Set(3)
	sp.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "a"`, `"start": 1`, `"end": 3`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, b.String())
		}
	}
}

// TestTracerConcurrentSpans hammers Start/End from many goroutines against
// a frozen SimClock: no record may be lost or torn, and the span histogram
// must agree with the record count. This is the guarantee that lets sweep
// workers share one CLI tracer without coordination.
func TestTracerConcurrentSpans(t *testing.T) {
	clock := &SimClock{}
	clock.Set(42)
	reg := NewRegistry()
	tr := NewTracer(clock, reg)

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("worker/%d", w)
			for i := 0; i < perWorker; i++ {
				sp := tr.Start(name)
				sp.End()
			}
		}()
	}
	wg.Wait()

	recs := tr.Records()
	if len(recs) != workers*perWorker {
		t.Fatalf("got %d records, want %d", len(recs), workers*perWorker)
	}
	perName := make(map[string]int)
	for _, r := range recs {
		// The clock is frozen, so every record is exactly (42, 42); any
		// other value means a torn read or a lost write.
		if r.Start != 42 || r.End != 42 || r.Duration() != 0 {
			t.Fatalf("torn record %+v", r)
		}
		perName[r.Name]++
	}
	var histTotal uint64
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("worker/%d", w)
		if perName[name] != perWorker {
			t.Errorf("%s: %d records, want %d", name, perName[name], perWorker)
		}
		histTotal += reg.Histogram("obs_span_seconds", nil, "name", name).Count()
	}
	if histTotal != workers*perWorker {
		t.Errorf("span histogram total %d, want %d", histTotal, workers*perWorker)
	}

	// The snapshot must serialize after the stampede like after any quiet
	// sequence of spans.
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "worker/0") {
		t.Error("WriteJSON lost span names")
	}
}
