package obs

import (
	"strings"
	"testing"
)

func TestTracerRecordsSimTime(t *testing.T) {
	clock := &SimClock{}
	reg := NewRegistry()
	tr := NewTracer(clock, reg)

	clock.Set(10)
	sp := tr.Start("experiment/fig5c")
	clock.Set(250)
	sp.End()

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "experiment/fig5c" || r.Start != 10 || r.End != 250 {
		t.Fatalf("record = %+v", r)
	}
	if d := r.Duration(); d != 240 {
		t.Fatalf("duration = %v, want 240", d)
	}
	h := reg.Histogram("obs_span_seconds", nil, "name", "experiment/fig5c")
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	tr.Start("x").End() // must not panic
	if tr.Records() != nil {
		t.Fatal("nil tracer must return nil records")
	}
	// A tracer with no clock and no registry still works, pinned at 0.
	tr2 := NewTracer(nil, nil)
	tr2.Start("y").End()
	if len(tr2.Records()) != 1 {
		t.Fatal("clockless tracer lost its span")
	}
}

func TestTracerWriteJSON(t *testing.T) {
	clock := &SimClock{}
	tr := NewTracer(clock, nil)
	clock.Set(1)
	sp := tr.Start("a")
	clock.Set(3)
	sp.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "a"`, `"start": 1`, `"end": 3`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, b.String())
		}
	}
}
