// Package obs is the simulation telemetry substrate: a stdlib-only,
// deterministic-safe metrics registry (counters, gauges, fixed-bucket
// histograms), Prometheus-text and JSON exposition, and a span/trace
// facility keyed on an injected Clock.
//
// Two properties shape the design:
//
//   - Determinism. Nothing in this package reads the wall clock or draws
//     randomness; time flows in through the Clock interface, which inside
//     internal/ is always a simulated clock advanced by the tick loop
//     (cmd/ binaries may inject a wall clock). Attaching a registry to a
//     simulation must never perturb its RNG stream — recording is pure
//     arithmetic on atomics.
//
//   - Hot-path cost. Metric handles (*Counter, *Gauge, *Histogram) are
//     resolved once by name through the registry's mutex and then updated
//     lock-free with atomics, so per-probe and per-tick increments are a
//     single atomic add. All handle methods are nil-receiver-safe: an
//     un-instrumented call site holds nil handles and pays one branch.
//
// Metric names follow the Prometheus convention (snake_case families,
// _total suffix on counters) and are a stability contract documented in
// DESIGN.md: dashboards and the bench snapshot pipeline key on them.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered series: a family name plus a fixed label set.
type entry struct {
	base  string // family name, e.g. "sim_probes_total"
	key   string // canonical series key, e.g. `sim_probes_total{outcome="delivered"}`
	kind  metricKind
	ctr   *Counter
	gauge *Gauge
	hist  *Histogram
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. Lookup is mutex-guarded, updates via the returned
// handles are lock-free. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Counter returns the counter registered under name and the given label
// pairs ("k1", "v1", "k2", "v2", …), creating it on first use. It panics
// when the same series was registered as a different kind or the label
// list has odd length — both are programmer errors, not runtime states.
// Calling on a nil registry returns a nil handle, whose methods no-op.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil, labels).ctr
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use. Nil registries return nil handles.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil, labels).gauge
}

// Histogram returns the fixed-bucket histogram registered under name and
// labels, creating it with the given upper bounds (ascending; a +Inf
// bucket is implicit) on first use. Later calls may pass nil bounds to
// reuse the registered ones; passing a different bound count panics. Nil
// registries return nil handles.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, bounds, labels).hist
}

// lookup finds or creates the entry for (name, labels), enforcing kind
// consistency. The handle is created while r.mu is held, so concurrent
// first resolutions of one series always return the same handle — creating
// it after the lock is released would let two goroutines each build one,
// losing the other's updates from exposition.
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *entry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, e.kind, kind))
		}
		if kind == kindHistogram && bounds != nil && len(bounds) != len(e.hist.bounds) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with %d bounds, have %d",
				e.key, len(bounds), len(e.hist.bounds)))
		}
		return e
	}
	e := &entry{base: name, key: key, kind: kind}
	switch kind {
	case kindCounter:
		e.ctr = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		e.hist = newHistogram(bounds)
	}
	r.entries[key] = e
	return e
}

// sorted returns the entries ordered by (family, series key) for stable
// exposition.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].base != out[j].base {
			return out[i].base < out[j].base
		}
		return out[i].key < out[j].key
	})
	return out
}

// labelEscaper escapes Prometheus label values.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// seriesKey canonicalizes a family name plus label pairs into the
// Prometheus series form, with label names sorted so ("a","1","b","2")
// and ("b","2","a","1") address the same series.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s has odd label list %q", name, labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labeledKey renders a series key with one extra label appended (used for
// histogram le buckets).
func labeledKey(key, extraK, extraV string) string {
	if i := strings.LastIndexByte(key, '}'); i >= 0 {
		return key[:i] + "," + extraK + `="` + labelEscaper.Replace(extraV) + `"}`
	}
	return key + "{" + extraK + `="` + labelEscaper.Replace(extraV) + `"}`
}
