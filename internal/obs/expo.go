package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// formatFloat renders a float in the shortest exact form, matching the
// Prometheus text exposition convention.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format, series sorted by family then label set, one # TYPE line per
// family. Histograms expose cumulative _bucket{le=…} series plus _sum and
// _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, e := range r.sorted() {
		if e.base != lastBase {
			if _, err := bw.WriteString("# TYPE " + e.base + " " + e.kind.String() + "\n"); err != nil {
				return err
			}
			lastBase = e.base
		}
		switch e.kind {
		case kindCounter:
			if _, err := bw.WriteString(e.key + " " + strconv.FormatUint(e.ctr.Value(), 10) + "\n"); err != nil {
				return err
			}
		case kindGauge:
			if _, err := bw.WriteString(e.key + " " + formatFloat(e.gauge.Value()) + "\n"); err != nil {
				return err
			}
		case kindHistogram:
			if err := writePromHistogram(bw, e); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writePromHistogram emits one histogram series family.
func writePromHistogram(bw *bufio.Writer, e *entry) error {
	h := e.hist
	bounds := h.Bounds()
	counts := h.BucketCounts()
	labelPart := e.key[len(e.base):] // "" or "{...}"
	bucketBase := e.base + "_bucket" + labelPart
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		line := labeledKey(bucketBase, "le", le) + " " + strconv.FormatUint(cum, 10) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(e.base + "_sum" + labelPart + " " + formatFloat(h.Sum()) + "\n"); err != nil {
		return err
	}
	_, err := bw.WriteString(e.base + "_count" + labelPart + " " + strconv.FormatUint(h.Count(), 10) + "\n")
	return err
}

// counterJSON is the JSON shape of one counter series.
type counterJSON struct {
	Series string `json:"series"`
	Value  uint64 `json:"value"`
}

// gaugeJSON is the JSON shape of one gauge series.
type gaugeJSON struct {
	Series string  `json:"series"`
	Value  float64 `json:"value"`
}

// histJSON is the JSON shape of one histogram series.
type histJSON struct {
	Series  string    `json:"series"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // non-cumulative; last is +Inf
}

// snapshotJSON is the JSON exposition shape. Each section is an array in
// the registry's sorted order (family, then label set) — the same order as
// the Prometheus exposition — so the byte-stability of the dump is the
// registry's explicit contract, not a side effect of map-key sorting.
type snapshotJSON struct {
	Counters   []counterJSON `json:"counters"`
	Gauges     []gaugeJSON   `json:"gauges"`
	Histograms []histJSON    `json:"histograms"`
}

// WriteJSON writes the registry as one JSON object with counter, gauge,
// and histogram arrays sorted by series (family then label set, matching
// WritePrometheus). Two dumps of the same quiescent registry are
// byte-identical. A nil registry writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := snapshotJSON{
		Counters:   []counterJSON{},
		Gauges:     []gaugeJSON{},
		Histograms: []histJSON{},
	}
	if r != nil {
		for _, e := range r.sorted() {
			switch e.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, counterJSON{Series: e.key, Value: e.ctr.Value()})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, gaugeJSON{Series: e.key, Value: e.gauge.Value()})
			case kindHistogram:
				snap.Histograms = append(snap.Histograms, histJSON{
					Series:  e.key,
					Count:   e.hist.Count(),
					Sum:     e.hist.Sum(),
					Bounds:  e.hist.Bounds(),
					Buckets: e.hist.BucketCounts(),
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
