package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// SpanBuckets are the default duration buckets for span histograms,
// spanning 1ms to ~3h in decades (seconds).
var SpanBuckets = ExpBuckets(0.001, 10, 8)

// SpanRecord is one completed span in Clock seconds.
type SpanRecord struct {
	Name  string  `json:"name"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns End-Start.
func (s SpanRecord) Duration() float64 { return s.End - s.Start }

// Tracer records named spans against an injected Clock. When constructed
// with a registry, every completed span also lands in the
// obs_span_seconds{name=…} histogram. Safe for concurrent use; all
// methods no-op on a nil receiver.
type Tracer struct {
	clock Clock
	reg   *Registry

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns a tracer reading time from clock (nil means a clock
// pinned at 0) and publishing span durations to reg (nil disables
// publication).
func NewTracer(clock Clock, reg *Registry) *Tracer {
	if clock == nil {
		clock = (*SimClock)(nil)
	}
	return &Tracer{clock: clock, reg: reg}
}

// Start opens a span; close it with End. Nil tracers return nil spans,
// whose End is a no-op, so `defer tr.Start("x").End()` needs no guard.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.clock.Seconds()}
}

// Span is one in-flight timed region.
type Span struct {
	t     *Tracer
	name  string
	start float64
}

// End closes the span, recording it on the tracer (and the registry's
// span histogram, when configured). Calling End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{Name: s.name, Start: s.start, End: s.t.clock.Seconds()}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, rec)
	s.t.mu.Unlock()
	s.t.reg.Histogram("obs_span_seconds", SpanBuckets, "name", s.name).Observe(rec.Duration())
}

// Records returns a copy of the completed spans in completion order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteJSON writes the completed spans as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	recs := t.Records()
	if recs == nil {
		recs = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
