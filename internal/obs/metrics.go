package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are atomic and
// safe on a nil receiver (no-ops), so un-instrumented hot paths can keep
// the handle nil instead of branching on a registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d via a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper edges in ascending order; an implicit +Inf bucket catches the
// rest. Observations update bucket, count, and sum atomically (the sum via
// CAS), so concurrent reads during a run may see the three mid-update —
// exposition of a quiescent registry is exact.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns a copy of the bucket upper edges.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns per-bucket (non-cumulative) counts; the final
// element is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor: ExpBuckets(1, 10, 4) → [1, 10, 100, 1000].
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start with the given
// step: LinearBuckets(10, 10, 3) → [10, 20, 30].
func LinearBuckets(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic("obs: LinearBuckets needs step>0, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v += step
	}
	return out
}
