package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Drain(30 * time.Second)
	})
	return s, ts
}

func postScenario(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Metrics: obs.NewRegistry()})
	sc := testScenario(100)
	wantID, want, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postScenario(t, ts.URL+"/scenarios", sc.JSON())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != wantID || sr.Status != string(StatusAccepted) {
		t.Fatalf("submit response %+v", sr)
	}

	res, err := http.Get(ts.URL + "/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", res.StatusCode, got)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("result content-type %q", ct)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("HTTP result differs from one-shot bytes")
	}

	st, err := http.Get(ts.URL + "/jobs/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	stBody, _ := io.ReadAll(st.Body)
	st.Body.Close()
	if st.StatusCode != http.StatusOK || !strings.Contains(string(stBody), StateDone) {
		t.Fatalf("status: %d %s", st.StatusCode, stBody)
	}

	// Resubmit: cached, HTTP 200.
	resp2, body2 := postScenario(t, ts.URL+"/scenarios", sc.JSON())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
}

func TestHTTPRunStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := testScenario(101)
	_, want, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postScenario(t, ts.URL+"/run", sc.JSON())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed result differs from one-shot bytes")
	}
}

func TestHTTPRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512, Metrics: obs.NewRegistry()})

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"malformed", []byte(`{"worm":`), http.StatusBadRequest},
		{"unknown field", []byte(`{"worm":"uniform","bogus":1}`), http.StatusBadRequest},
		{"empty", nil, http.StatusBadRequest},
		{"invalid scenario", []byte(`{"worm":"uniform","pop_size":5}`), http.StatusBadRequest},
		{"oversized", bytes.Repeat([]byte("x"), 4096), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postScenario(t, ts.URL+"/scenarios", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/jobs/no-such-job/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPQueueFullRetryAfter(t *testing.T) {
	started, release := gate(t)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Metrics: obs.NewRegistry()})

	resp, body := postScenario(t, ts.URL+"/scenarios", scenarioJSON(110))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d %s", resp.StatusCode, body)
	}
	<-started
	resp, body = postScenario(t, ts.URL+"/scenarios", scenarioJSON(111))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fill: %d %s", resp.StatusCode, body)
	}
	resp, _ = postScenario(t, ts.URL+"/scenarios", scenarioJSON(112))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	close(release)
}

func TestHTTPHealthAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz: %d", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz: %d", c)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz while draining: %d", c)
	}
	resp, _ := postScenario(t, ts.URL+"/scenarios", scenarioJSON(120))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Metrics: obs.NewRegistry()})
	resp, body := postScenario(t, ts.URL+"/scenarios", scenarioJSON(130))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if mres.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mres.StatusCode)
	}
	for _, want := range []string{
		`serve_submit_total{result="accepted"} 1`,
		"serve_queue_depth",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestHTTPClientDisconnectKeepsJob exercises the mid-run disconnect path:
// a client that abandons POST /run does not kill the job — the result is
// still retrievable afterwards.
func TestHTTPClientDisconnectKeepsJob(t *testing.T) {
	started, release := gate(t)
	s, ts := newTestServer(t, Config{Workers: 1})
	sc := testScenario(140)
	_, want, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(sc.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	id := <-started // job admitted and running
	cancel()        // client walks away mid-run
	wg.Wait()
	close(release)

	got, err := s.Result(waitCtx(t), id)
	if err != nil {
		t.Fatalf("wait after disconnect: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-disconnect result differs from one-shot bytes")
	}
}
