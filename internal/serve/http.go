package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/xcheck"
)

// submitResponse is the JSON body returned by POST /scenarios.
type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP interface:
//
//	POST /scenarios          submit a scenario; 202 accepted/coalesced,
//	                         200 cached, 400 invalid, 413 oversized,
//	                         429 queue full (Retry-After), 503 draining
//	POST /run                submit and stream the NDJSON result
//	GET  /jobs/{id}          job status
//	GET  /jobs/{id}/result   block for and stream the NDJSON result
//	GET  /metrics            Prometheus exposition
//	GET  /healthz            liveness (always 200 while serving)
//	GET  /readyz             readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scenarios", s.handleSubmit)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.Handle("GET /metrics", s.cfg.Metrics.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// readScenario parses a bounded request body into a validated scenario.
// It writes the error response itself and reports ok=false on failure.
func (s *Server) readScenario(w http.ResponseWriter, r *http.Request) (xcheck.Scenario, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.m.oversized.Inc()
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds "+strconv.FormatInt(tooBig.Limit, 10)+" bytes")
		} else {
			s.m.invalid.Inc()
			writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		}
		return xcheck.Scenario{}, false
	}
	sc, err := xcheck.ParseScenario(body)
	if err == nil {
		err = sc.Validate()
	}
	if err != nil {
		s.m.invalid.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return xcheck.Scenario{}, false
	}
	return sc, true
}

// submit runs the admission flow and maps its outcome to an HTTP status,
// writing rejection responses itself. ok is true only for admitted
// (accepted, coalesced, or cached) submissions.
func (s *Server) submit(w http.ResponseWriter, sc xcheck.Scenario) (id string, st SubmitStatus, ok bool) {
	id, st, err := s.Submit(sc)
	switch {
	case err == nil:
		return id, st, true
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
	return "", "", false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.readScenario(w, r)
	if !ok {
		return
	}
	id, st, ok := s.submit(w, sc)
	if !ok {
		return
	}
	status := http.StatusAccepted
	if st == StatusCached {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{ID: id, Status: string(st)})
}

// handleRun is submit-and-wait: the response streams the job's NDJSON
// result once it completes. A client disconnect abandons only the wait —
// the job itself keeps running and its result stays retrievable.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.readScenario(w, r)
	if !ok {
		return
	}
	id, _, ok := s.submit(w, sc)
	if !ok {
		return
	}
	s.streamResult(w, r, id)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, ok := s.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": state})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.streamResult(w, r, r.PathValue("id"))
}

// streamResult waits for the job (bounded by the client's own context) and
// writes its NDJSON body.
func (s *Server) streamResult(w http.ResponseWriter, r *http.Request, id string) {
	body, err := s.Result(r.Context(), id)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrParked):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case r.Context().Err() != nil:
		// Client went away mid-wait; nothing useful to write.
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
