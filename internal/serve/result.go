package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/sim"
	"repro/internal/xcheck"
)

// ScenarioID is the cache and coalescing key: the SHA-256 of the
// scenario's canonical JSON bytes (xcheck.Scenario.JSON — strict parse
// followed by struct marshal, so two submissions that differ only in JSON
// formatting map to one id). Scenarios are deterministic, so the id names
// the result as much as the request.
func ScenarioID(canonical []byte) string {
	h := sha256.Sum256(canonical)
	return hex.EncodeToString(h[:])
}

// resultHeader is the first NDJSON line of a job result.
type resultHeader struct {
	Job   string `json:"job"`
	Worm  string `json:"worm"`
	Pop   int    `json:"pop"`
	Ticks int    `json:"ticks"`
}

// resultTick is one per-tick NDJSON line.
type resultTick struct {
	T        float64 `json:"t"`
	Infected int     `json:"infected"`
	New      int     `json:"new"`
	Probes   uint64  `json:"probes"`
}

// resultFinal is the trailing NDJSON line: cumulative totals plus the
// probe-outcome breakdown (the conservation ledger).
type resultFinal struct {
	Final    bool    `json:"final"`
	T        float64 `json:"t"`
	Infected int     `json:"infected"`
	Probes   uint64  `json:"probes"`
	Outcomes string  `json:"outcomes"`
}

// ResultNDJSON renders a completed run as the service's canonical NDJSON
// body: a header line, one line per tick, and a final-summary line. Every
// field is a pure function of the run result (floats round-trip exactly
// through encoding/json), so the encoding preserves the driver's
// byte-identity contract: same scenario, same bytes — across worker
// counts, process restarts, and machines.
func ResultNDJSON(id string, sc *xcheck.Scenario, res *sim.Result) []byte {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	// Encode never fails on these field types; swallow the impossible
	// error once here rather than at every call site.
	_ = enc.Encode(resultHeader{Job: id, Worm: sc.Worm, Pop: len(res.InfectionTime), Ticks: len(res.Series)})
	for _, ti := range res.Series {
		_ = enc.Encode(resultTick{T: ti.Time, Infected: ti.Infected, New: ti.NewInfections, Probes: ti.Probes})
	}
	_ = enc.Encode(resultFinal{
		Final:    true,
		T:        res.Final.Time,
		Infected: res.Final.Infected,
		Probes:   res.Outcomes.Total(),
		Outcomes: res.Outcomes.String(),
	})
	return b.Bytes()
}

// OneShot runs one scenario to completion outside any server — the
// reference a served result must match byte for byte. The load harness
// and the recovery tests compare server output against this.
func OneShot(ctx context.Context, sc xcheck.Scenario) (id string, body []byte, err error) {
	id = ScenarioID(sc.JSON())
	res, err := xcheck.RunScenario(ctx, sc)
	if err != nil {
		return id, nil, err
	}
	return id, ResultNDJSON(id, &sc, res), nil
}
