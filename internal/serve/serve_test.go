package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/xcheck"
)

// testScenario builds a cheap, valid, deterministic scenario; distinct
// variants produce distinct canonical bytes (and so distinct job ids).
func testScenario(variant uint64) xcheck.Scenario {
	return xcheck.Scenario{
		Worm:            xcheck.WormHitList,
		PopSize:         80,
		Slash8s:         1,
		Slash16s:        2,
		HitListSlash16s: 2,
		PopSeed:         1000 + variant,
		ScanRate:        60,
		TickSeconds:     1,
		MaxSeconds:      25,
		SeedHosts:       3,
		SimSeed:         2000 + variant,
		Workers:         1,
	}
}

// scenarioJSON is testScenario's canonical bytes (JSON needs an
// addressable receiver).
func scenarioJSON(variant uint64) []byte {
	sc := testScenario(variant)
	return sc.JSON()
}

// gate installs a testExecuteStart hook that blocks every run until
// release is closed (or the run context is cancelled, so drains still
// finish). started receives each run's job id as it begins.
func gate(t *testing.T) (started chan string, release chan struct{}) {
	t.Helper()
	started = make(chan string, 64)
	release = make(chan struct{})
	testExecuteStart = func(ctx context.Context, id string) {
		started <- id
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testExecuteStart = nil })
	return started, release
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func mustDrain(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitWaitByteIdentity(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)

	sc := testScenario(1)
	wantID, want, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	id, st, err := s.Submit(sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st != StatusAccepted {
		t.Fatalf("status = %q, want accepted", st)
	}
	if id != wantID {
		t.Fatalf("job id %q != scenario id %q", id, wantID)
	}
	got, err := s.Result(waitCtx(t), id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served result differs from one-shot run:\nserved: %q\noneshot: %q", got, want)
	}
	if !strings.HasPrefix(string(got), `{"job":"`+id+`"`) {
		t.Fatalf("result header malformed: %q", got[:min(len(got), 80)])
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)
	sc := testScenario(1)
	sc.PopSize = 5 // below the floor
	if _, _, err := s.Submit(sc); err == nil {
		t.Fatal("invalid scenario admitted")
	}
}

func TestCoalescingSingleRun(t *testing.T) {
	started, release := gate(t)
	reg := obs.NewRegistry()
	s, err := New(Config{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)

	const n = 24
	sc := testScenario(7)
	_, want, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	id0, st, err := s.Submit(sc)
	if err != nil || st != StatusAccepted {
		t.Fatalf("first submit: %q, %v", st, err)
	}
	<-started // the one run is now in flight and holding the gate

	var wg sync.WaitGroup
	statuses := make([]SubmitStatus, n-1)
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, st, err := s.Submit(sc)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if id != id0 {
				t.Errorf("submit %d: id %q != %q", i, id, id0)
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	close(release)

	for i, st := range statuses {
		if st != StatusCoalesced {
			t.Errorf("submit %d: status %q, want coalesced", i, st)
		}
	}
	var bodies [n][]byte
	var bw sync.WaitGroup
	for i := 0; i < n; i++ {
		bw.Add(1)
		go func(i int) {
			defer bw.Done()
			body, err := s.Result(waitCtx(t), id0)
			if err != nil {
				t.Errorf("wait %d: %v", i, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	bw.Wait()
	for i := 0; i < n; i++ {
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("waiter %d got divergent bytes", i)
		}
	}
	if runs := reg.Counter("serve_runs_total").Value(); runs != 1 {
		t.Fatalf("serve_runs_total = %d, want exactly 1 for %d submissions", runs, n)
	}
	if acc := reg.Counter("serve_submit_total", "result", "accepted").Value(); acc != 1 {
		t.Fatalf("accepted = %d, want 1", acc)
	}
	if co := reg.Counter("serve_submit_total", "result", "coalesced").Value(); co != n-1 {
		t.Fatalf("coalesced = %d, want %d", co, n-1)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	started, release := gate(t)
	reg := obs.NewRegistry()
	s, err := New(Config{Workers: 1, QueueDepth: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)

	// Job 0 occupies the single worker (held by the gate); 1 and 2 fill
	// the queue; 3 must be shed.
	if _, _, err := s.Submit(testScenario(10)); err != nil {
		t.Fatal(err)
	}
	<-started
	for v := uint64(11); v <= 12; v++ {
		if _, st, err := s.Submit(testScenario(v)); err != nil || st != StatusAccepted {
			t.Fatalf("fill %d: %q, %v", v, st, err)
		}
	}
	if _, _, err := s.Submit(testScenario(13)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if shed := reg.Counter("serve_submit_total", "result", "shed").Value(); shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	close(release)
	// Once the queue clears the same scenario is admissible again.
	id, err := func() (string, error) {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			id, st, err := s.Submit(testScenario(13))
			if !errors.Is(err, ErrQueueFull) {
				if st == StatusCached || st == StatusAccepted || st == StatusCoalesced {
					return id, err
				}
				return id, err
			}
			time.Sleep(5 * time.Millisecond)
		}
		return "", fmt.Errorf("queue never cleared")
	}()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(waitCtx(t), id); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := New(Config{Dir: dir, CacheEntries: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)

	scA, scB := testScenario(20), testScenario(21)
	idA, _, err := s.Submit(scA)
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := s.Result(waitCtx(t), idA)
	if err != nil {
		t.Fatal(err)
	}

	// Immediate resubmit: in-memory hit.
	if _, st, err := s.Submit(scA); err != nil || st != StatusCached {
		t.Fatalf("mem resubmit: %q, %v", st, err)
	}
	if v := reg.Counter("serve_submit_total", "result", "cached_mem").Value(); v != 1 {
		t.Fatalf("cached_mem = %d, want 1", v)
	}

	// Run B to evict A from the single-entry LRU, then resubmit A: the
	// durable store answers, not a re-run.
	idB, _, err := s.Submit(scB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(waitCtx(t), idB); err != nil {
		t.Fatal(err)
	}
	runsBefore := reg.Counter("serve_runs_total").Value()
	if _, st, err := s.Submit(scA); err != nil || st != StatusCached {
		t.Fatalf("disk resubmit: %q, %v", st, err)
	}
	if v := reg.Counter("serve_submit_total", "result", "cached_disk").Value(); v != 1 {
		t.Fatalf("cached_disk = %d, want 1", v)
	}
	if runs := reg.Counter("serve_runs_total").Value(); runs != runsBefore {
		t.Fatalf("disk hit re-ran the scenario (%d -> %d runs)", runsBefore, runs)
	}
	got, err := s.Result(waitCtx(t), idA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantA) {
		t.Fatal("disk-cached bytes differ from original run")
	}
}

func TestDrainGraceful(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for v := uint64(30); v < 34; v++ {
		id, _, err := s.Submit(testScenario(v))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("server not marked draining")
	}
	for _, id := range ids {
		if st, ok := s.Status(id); !ok || st != StateDone {
			t.Fatalf("job %s after graceful drain: state %q ok=%v, want done", id[:8], st, ok)
		}
	}
	if _, _, err := s.Submit(testScenario(99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	if v := reg.Counter("serve_jobs_total", "state", "parked").Value(); v != 0 {
		t.Fatalf("graceful drain parked %d jobs", v)
	}
	// Drain is idempotent.
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDrainDeadlineParksAndRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	started, _ := gate(t)
	reg := obs.NewRegistry()
	s, err := New(Config{Dir: dir, Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	// Three accepted jobs: one blocked in flight (by the gate), two queued.
	var ids []string
	var want [][]byte
	for v := uint64(40); v < 43; v++ {
		sc := testScenario(v)
		_, body, err := OneShot(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		id, st, err := s.Submit(sc)
		if err != nil || st != StatusAccepted {
			t.Fatalf("submit %d: %q, %v", v, st, err)
		}
		ids, want = append(ids, id), append(want, body)
	}
	<-started

	// The gate never releases, so the deadline must fire: the in-flight
	// job is cancelled at a tick boundary and parked, the queued two are
	// parked unrun. All three stay accepted in the journal.
	err = s.Drain(100 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "parked") {
		t.Fatalf("drain error = %v, want parked-jobs deadline error", err)
	}
	if v := reg.Counter("serve_jobs_total", "state", "parked").Value(); v != 3 {
		t.Fatalf("parked = %d, want 3", v)
	}
	for _, id := range ids {
		if _, err := s.Result(waitCtx(t), id); !errors.Is(err, ErrParked) {
			t.Fatalf("wait on parked job: %v, want ErrParked", err)
		}
	}

	// Restart on the same directory: the journal re-admits all three and
	// the deterministic reruns reproduce the one-shot bytes exactly.
	testExecuteStart = nil
	reg2 := obs.NewRegistry()
	s2, err := New(Config{Dir: dir, Workers: 2, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s2)
	if got := s2.Recovered(); got != 3 {
		t.Fatalf("recovered = %d, want 3", got)
	}
	for i, id := range ids {
		got, err := s2.Result(waitCtx(t), id)
		if err != nil {
			t.Fatalf("wait recovered %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("recovered job %d: bytes differ from one-shot run", i)
		}
	}
	if v := reg2.Counter("serve_jobs_total", "state", "recovered").Value(); v != 3 {
		t.Fatalf("recovered counter = %d, want 3", v)
	}
}

func TestRecoveryUsesStoredResultWithoutRerun(t *testing.T) {
	// Simulate a crash between the result-store save and the journal done
	// record: the store has the bytes, the journal still says incomplete.
	dir := t.TempDir()
	sc := testScenario(50)
	canonical := sc.JSON()
	id := ScenarioID(canonical)
	_, body, err := OneShot(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sweep.OpenCheckpoint(filepath.Join(dir, "results.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Save(id, string(body)); err != nil {
		t.Fatal(err)
	}
	rec := fmt.Sprintf(`{"op":"accept","id":%q,"scenario":%s}`+"\n", id, canonical)
	if err := os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := New(Config{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s)
	got, err := s.Result(waitCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("recovered bytes differ from stored result")
	}
	if runs := reg.Counter("serve_runs_total").Value(); runs != 0 {
		t.Fatalf("recovery re-ran a stored result (%d runs)", runs)
	}
	// The healed journal must not re-admit the job on the next restart.
	mustDrain(t, s)
	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mustDrain(t, s2)
	if got := s2.Recovered(); got != 0 {
		t.Fatalf("healed journal still re-admits %d jobs", got)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	sc := testScenario(60)
	canonical := sc.JSON()
	id := ScenarioID(canonical)
	full := fmt.Sprintf(`{"op":"accept","id":%q,"scenario":%s}`+"\n", id, canonical)
	torn := full + `{"op":"accept","id":"deadbeef","scenario":{"trunc` // crash mid-append
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.close()
	if len(pending) != 1 || pending[0].id != id {
		t.Fatalf("pending = %+v, want the one complete accept", pending)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != full {
		t.Fatalf("torn tail not truncated: %q", data)
	}
	// The reopened journal appends cleanly after the truncation point.
	if err := j.done(id, true, ""); err != nil {
		t.Fatal(err)
	}
	_, pending2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending2) != 0 {
		t.Fatalf("done record not applied after truncation: %+v", pending2)
	}
}

func TestJournalReacceptAfterDone(t *testing.T) {
	// accept A, done A, accept A again (failed first run, resubmitted,
	// crashed): replay must report A pending.
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.ndjson")
	sc := testScenario(61)
	canonical := sc.JSON()
	id := ScenarioID(canonical)
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.accept(id, canonical); err != nil {
		t.Fatal(err)
	}
	if err := j.done(id, false, "transient"); err != nil {
		t.Fatal(err)
	}
	if err := j.accept(id, canonical); err != nil {
		t.Fatal(err)
	}
	j.close()
	_, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].id != id {
		t.Fatalf("pending = %+v, want re-accepted job", pending)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", finished{Result: []byte("A")})
	c.add("b", finished{Result: []byte("B")})
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", finished{Result: []byte("C")})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
