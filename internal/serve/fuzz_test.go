package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzServeSubmit throws arbitrary bytes at the HTTP submission path. The
// server must never panic, never run unbounded work (Validate's work-
// product cap plus the per-attempt JobTimeout bound anything admitted),
// and always answer with one of the contract's status codes.
func FuzzServeSubmit(f *testing.F) {
	f.Add(scenarioJSON(1))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"worm":"uniform","bogus":1}`))
	f.Add([]byte(`{"worm":"hitlist","pop_size":1e309}`))
	f.Add([]byte(`{"worm":"uniform","pop_size":80,"slash8s":1,"slash16s":2,` +
		`"pop_seed":1,"scan_rate":60,"tick_seconds":1,"max_seconds":20,` +
		`"seed_hosts":2,"sim_seed":1,"workers":1}`))
	f.Add(bytes.Repeat([]byte(`[`), 4096))

	s, err := New(Config{
		QueueDepth:   8,
		Workers:      2,
		MaxBodyBytes: 4096,
		JobTimeout:   250 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	f.Cleanup(func() {
		ts.Close()
		_ = s.Drain(30 * time.Second)
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/scenarios", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
			http.StatusServiceUnavailable:
		default:
			t.Fatalf("submission answered %d for %q", resp.StatusCode, body)
		}
	})
}
