// Package serve is the outbreak-simulation service core behind
// cmd/hotspotd: a bounded, fault-tolerant scheduler that turns canonical
// xcheck scenarios into deterministic NDJSON results.
//
// The robustness contract (DESIGN.md §13) has four legs, each
// test-enforced:
//
//   - Admission control. The queue is bounded; a full queue rejects with
//     ErrQueueFull (HTTP 429 + Retry-After) instead of growing goroutines
//     or memory without bound. Every admission decision is counted.
//
//   - Coalescing and caching. A scenario's identity is the SHA-256 of its
//     canonical JSON (ScenarioID). Identical submissions while a job is
//     queued or running join that job (singleflight); submissions of a
//     finished scenario are cache hits — first from a bounded in-memory
//     LRU, then from the durable result store.
//
//   - Crash-safe recovery. Admissions are journaled (synced NDJSON) before
//     they are acknowledged, and results persist in a sweep.Checkpoint
//     store. On restart, accepted-but-incomplete jobs are re-enqueued and,
//     because scenarios are deterministic, reproduce the result that the
//     crash interrupted byte for byte.
//
//   - Graceful drain. Drain stops admissions, lets in-flight and queued
//     jobs finish within a deadline, and parks whatever remains: parked
//     jobs stay accepted in the journal and complete after restart.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/xcheck"
)

// Sentinel errors surfaced by Submit and Wait.
var (
	// ErrQueueFull rejects an admission when the bounded queue is at
	// capacity; the client should retry after a backoff (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining rejects an admission while the server is draining
	// (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrParked reports a job that was accepted but parked by a drain
	// deadline; it will complete after the next restart.
	ErrParked = errors.New("serve: job parked by drain; restarts will resume it")
	// ErrUnknownJob reports an id no journal, queue, or cache knows.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Config tunes a Server. The zero value of every field has a usable
// default.
type Config struct {
	// Dir is the state directory (journal + result store). Empty means
	// volatile: no journal, no durable results, no crash recovery.
	Dir string
	// QueueDepth bounds jobs admitted but not yet picked up by a worker
	// (default 64). Admissions beyond it are shed with ErrQueueFull.
	QueueDepth int
	// Workers bounds concurrently running jobs (default GOMAXPROCS).
	Workers int
	// CacheEntries bounds the in-memory result LRU (default 256).
	CacheEntries int
	// MaxBodyBytes bounds HTTP submission bodies (default 1 MiB).
	MaxBodyBytes int64
	// Retries re-runs a failed job this many times with a deterministic
	// exponential backoff (sweep.ExpBackoff on RetryBackoff).
	Retries int
	// RetryBackoff is the backoff schedule's base delay (default 50ms,
	// capped at 16x).
	RetryBackoff time.Duration
	// JobTimeout, when positive, bounds each run attempt.
	JobTimeout time.Duration
	// Metrics, when non-nil, receives the serve_* counter and gauge
	// families (see DESIGN.md §13 for the name contract).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// SubmitStatus is the admission outcome of one submission.
type SubmitStatus string

const (
	// StatusAccepted: a new job was admitted and queued.
	StatusAccepted SubmitStatus = "accepted"
	// StatusCoalesced: an identical job is already queued or running; the
	// submission joined it.
	StatusCoalesced SubmitStatus = "coalesced"
	// StatusCached: the result already exists (memory or disk); no run.
	StatusCached SubmitStatus = "cached"
)

// Job states reported by Status.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateParked  = "parked"
)

// job is one admitted scenario run. done closes exactly once, after
// result/err/state are final.
type job struct {
	id        string
	sc        xcheck.Scenario
	canonical []byte
	state     string // guarded by Server.mu
	done      chan struct{}
	result    []byte // set before done closes
	err       error  // set before done closes
}

// metrics bundles the server's obs handles; nil handles (no registry)
// no-op.
type metrics struct {
	accepted, coalesced, cachedMem, cachedDisk *obs.Counter
	shed, rejectedDraining, invalid, oversized *obs.Counter
	completed, failed, parked, recovered       *obs.Counter
	runs                                       *obs.Counter
	queueDepth, inflight, draining, cacheLen   *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	sub := func(result string) *obs.Counter { return r.Counter("serve_submit_total", "result", result) }
	jobs := func(state string) *obs.Counter { return r.Counter("serve_jobs_total", "state", state) }
	return metrics{
		accepted:         sub("accepted"),
		coalesced:        sub("coalesced"),
		cachedMem:        sub("cached_mem"),
		cachedDisk:       sub("cached_disk"),
		shed:             sub("shed"),
		rejectedDraining: sub("draining"),
		invalid:          sub("invalid"),
		oversized:        sub("oversized"),
		completed:        jobs("completed"),
		failed:           jobs("failed"),
		parked:           jobs("parked"),
		recovered:        jobs("recovered"),
		runs:             r.Counter("serve_runs_total"),
		queueDepth:       r.Gauge("serve_queue_depth"),
		inflight:         r.Gauge("serve_inflight"),
		draining:         r.Gauge("serve_draining"),
		cacheLen:         r.Gauge("serve_cache_entries"),
	}
}

// testExecuteStart, when non-nil, is called at the top of every job run.
// Tests use it to hold a run open so concurrent identical submissions
// deterministically coalesce instead of racing the run to completion; the
// run context lets a blocked test run still honor drain cancellation.
var testExecuteStart func(ctx context.Context, id string)

// Server is the scheduler. Construct with New, serve HTTP with Handler,
// stop with Drain (or Close).
type Server struct {
	cfg     Config
	journal *journal          // nil when Dir == ""
	store   *sweep.Checkpoint // nil when Dir == ""
	m       metrics

	queue   chan *job
	runCtx  context.Context
	stopRun context.CancelFunc
	wg      sync.WaitGroup

	mu          sync.Mutex
	live        map[string]*job // queued or running, by id
	cache       *lruCache
	pending     int // jobs enqueued but not yet picked up
	draining    bool
	queueClosed bool
	drained     chan struct{} // closed when Drain finishes
	recovered   int
}

// New opens the state directory, replays the journal, re-enqueues
// incomplete jobs, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		m:       newMetrics(cfg.Metrics),
		live:    make(map[string]*job),
		cache:   newLRU(cfg.CacheEntries),
		drained: make(chan struct{}),
	}
	s.runCtx, s.stopRun = context.WithCancel(context.Background())

	var pending []pendingJob
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
		store, err := sweep.OpenCheckpoint(filepath.Join(cfg.Dir, "results.ckpt"))
		if err != nil {
			return nil, err
		}
		s.store = store
		s.journal, pending, err = openJournal(filepath.Join(cfg.Dir, "journal.ndjson"))
		if err != nil {
			return nil, err
		}
	}

	// Recovered jobs bypass admission control — they were admitted in a
	// previous life — so the queue must have room for all of them on top
	// of the configured depth.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, p := range pending {
		s.recoverJob(p)
	}
	s.recovered = len(pending)

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recoverJob re-admits one incomplete journal entry. A result already in
// the durable store (the crash landed between result save and the done
// record) completes immediately; anything else re-runs from scratch and,
// by determinism, reproduces the interrupted result exactly.
func (s *Server) recoverJob(p pendingJob) {
	if s.store != nil {
		var body string
		if hit, err := s.store.Lookup(p.id, &body); err == nil && hit {
			s.completeRecovered(p.id, finished{Result: []byte(body)})
			return
		}
	}
	sc, err := xcheck.ParseScenario(p.scenario)
	if err == nil {
		err = sc.Validate()
	}
	if err != nil {
		// Journaled scenario no longer parses (schema drift across an
		// upgrade): terminally fail it rather than refusing to start.
		s.completeRecovered(p.id, finished{Err: err.Error()})
		return
	}
	j := &job{id: p.id, sc: sc, canonical: append([]byte(nil), p.scenario...), state: StateQueued, done: make(chan struct{})}
	s.live[j.id] = j
	s.pending++
	s.queue <- j
	s.m.recovered.Inc()
	s.m.queueDepth.Set(float64(s.pending))
}

// completeRecovered finalizes a recovered job without running it.
func (s *Server) completeRecovered(id string, f finished) {
	if s.journal != nil {
		_ = s.journal.done(id, f.Err == "", f.Err)
	}
	s.cache.add(id, f)
	s.m.cacheLen.Set(float64(s.cache.len()))
	s.m.recovered.Inc()
}

// Recovered reports how many incomplete jobs the journal replay
// re-admitted at startup.
func (s *Server) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Submit admits one scenario and returns its job id and the admission
// outcome. The scenario is re-validated (Submit is safe on hostile
// inputs). Errors: ErrQueueFull when load must be shed, ErrDraining
// during drain, or a journal write failure (the job is not admitted).
func (s *Server) Submit(sc xcheck.Scenario) (string, SubmitStatus, error) {
	if err := sc.Validate(); err != nil {
		return "", "", err
	}
	canonical := sc.JSON()
	id := ScenarioID(canonical)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.rejectedDraining.Inc()
		return id, "", ErrDraining
	}
	if _, ok := s.live[id]; ok {
		s.m.coalesced.Inc()
		return id, StatusCoalesced, nil
	}
	if _, ok := s.cache.get(id); ok {
		s.m.cachedMem.Inc()
		return id, StatusCached, nil
	}
	if s.store != nil {
		var body string
		if hit, err := s.store.Lookup(id, &body); err == nil && hit {
			s.cache.add(id, finished{Result: []byte(body)})
			s.m.cacheLen.Set(float64(s.cache.len()))
			s.m.cachedDisk.Inc()
			return id, StatusCached, nil
		}
	}
	if s.pending >= s.cfg.QueueDepth {
		s.m.shed.Inc()
		return id, "", ErrQueueFull
	}
	// Journal before acknowledging: once Submit returns StatusAccepted the
	// job survives any crash. The send cannot block — pending < QueueDepth
	// ≤ cap(queue) is enforced above under the same lock.
	if s.journal != nil {
		if err := s.journal.accept(id, canonical); err != nil {
			return id, "", err
		}
	}
	j := &job{id: id, sc: sc, canonical: canonical, state: StateQueued, done: make(chan struct{})}
	s.live[id] = j
	s.pending++
	s.queue <- j
	s.m.accepted.Inc()
	s.m.queueDepth.Set(float64(s.pending))
	return id, StatusAccepted, nil
}

// worker drains the queue until it closes, parking jobs once the run
// context is cancelled (drain deadline or hard stop).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.runCtx.Err() != nil {
			s.park(j)
			continue
		}
		s.mu.Lock()
		s.pending--
		j.state = StateRunning
		s.m.queueDepth.Set(float64(s.pending))
		s.m.inflight.Add(1)
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one job through the sweep layer: per-attempt deadline,
// seeded exponential-backoff retries, panic isolation, and — when a
// durable store is configured — checkpointed results, so a re-run of an
// already-completed job (recovery races, duplicate journal entries)
// replays the stored bytes instead of recomputing.
func (s *Server) runJob(j *job) {
	opts := sweep.Options{
		Retries:     s.cfg.Retries,
		Backoff:     sweep.ExpBackoff(s.cfg.RetryBackoff, 16*s.cfg.RetryBackoff),
		TaskTimeout: s.cfg.JobTimeout,
		TaskLabel:   func(int) string { return j.id },
	}
	key := func(int, xcheck.Scenario) string { return j.id }
	out, err := sweep.MapCheckpointed(s.runCtx, []xcheck.Scenario{j.sc}, key, s.execute, s.store, opts)
	if s.runCtx.Err() != nil {
		// Drain or shutdown interrupted the run; the job stays accepted in
		// the journal and completes after restart.
		s.mu.Lock()
		s.m.inflight.Add(-1)
		s.mu.Unlock()
		s.park(j)
		return
	}
	var body string
	if err == nil {
		body = out[0]
	}
	s.finish(j, body, err)
}

// execute is the sweep task body: one deterministic scenario run encoded
// as NDJSON.
func (s *Server) execute(ctx context.Context, sc xcheck.Scenario) (string, error) {
	s.m.runs.Inc()
	if testExecuteStart != nil {
		testExecuteStart(ctx, ScenarioID(sc.JSON()))
	}
	res, err := xcheck.RunScenario(ctx, sc)
	if err != nil {
		return "", err
	}
	id := ScenarioID(sc.JSON())
	return string(ResultNDJSON(id, &sc, res)), nil
}

// finish publishes a job's terminal state: journal first (a crash after
// the run but before the done record is healed by recovery's store
// lookup), then cache, then the done broadcast.
func (s *Server) finish(j *job, body string, err error) {
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	if s.journal != nil {
		if jerr := s.journal.done(j.id, err == nil, errMsg); jerr != nil && err == nil {
			// The result is durable in the store; the stale accept record
			// only costs a cache-hit recovery at next startup.
			_ = jerr
		}
	}
	s.mu.Lock()
	delete(s.live, j.id)
	if err == nil {
		j.state = StateDone
		j.result = []byte(body)
		s.cache.add(j.id, finished{Result: j.result})
		s.m.completed.Inc()
	} else {
		j.state = StateFailed
		j.err = err
		s.cache.add(j.id, finished{Err: errMsg})
		s.m.failed.Inc()
	}
	s.m.inflight.Add(-1)
	s.m.cacheLen.Set(float64(s.cache.len()))
	s.mu.Unlock()
	close(j.done)
}

// park abandons a job without completing it: its journal accept record
// stands, so the next restart re-enqueues and finishes it. The job stays
// in the live map (parking only happens while draining, when no new
// submissions can collide with it) so Status and Wait keep answering.
func (s *Server) park(j *job) {
	s.mu.Lock()
	j.state = StateParked
	j.err = ErrParked
	s.m.parked.Inc()
	s.mu.Unlock()
	close(j.done)
}

// Status reports a job's lifecycle state. ok is false for unknown ids.
func (s *Server) Status(id string) (state string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, live := s.live[id]; live {
		return j.state, true
	}
	if f, hit := s.cache.get(id); hit {
		if f.Err != "" {
			return StateFailed, true
		}
		return StateDone, true
	}
	if s.store != nil {
		var body string
		if hit, err := s.store.Lookup(id, &body); err == nil && hit {
			return StateDone, true
		}
	}
	return "", false
}

// Result blocks until the job completes (or ctx is done) and returns its
// NDJSON result. Completed jobs return immediately from the cache or the
// durable store. Errors: ErrUnknownJob, ErrParked, ctx.Err(), or the
// job's own failure.
func (s *Server) Result(ctx context.Context, id string) ([]byte, error) {
	s.mu.Lock()
	if j, live := s.live[id]; live {
		s.mu.Unlock()
		//lint:deterministic both arms only pick between returning the finished result and honoring caller cancellation; neither reads or writes simulation state, so no ordering can leak into a run
		select {
		case <-j.done:
			return j.result, j.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer s.mu.Unlock()
	if f, hit := s.cache.get(id); hit {
		if f.Err != "" {
			return nil, fmt.Errorf("serve: job failed: %s", f.Err)
		}
		return f.Result, nil
	}
	if s.store != nil {
		var body string
		if hit, err := s.store.Lookup(id, &body); err == nil && hit {
			s.cache.add(id, finished{Result: []byte(body)})
			s.m.cacheLen.Set(float64(s.cache.len()))
			return []byte(body), nil
		}
	}
	return nil, ErrUnknownJob
}

// Draining reports whether admissions are closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: admissions close immediately, queued
// and in-flight jobs get until the deadline to finish, and whatever
// remains is parked (still accepted in the journal; a restart resumes
// it). Idempotent: concurrent and repeat calls wait for the first drain
// to finish. Returns nil when every job finished, or an error naming how
// many were parked.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.draining = true
	s.m.draining.Set(1)
	if !s.queueClosed {
		close(s.queue)
		s.queueClosed = true
	}
	s.mu.Unlock()

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var timedOut bool
	select {
	case <-workersDone:
	case <-timer.C:
		timedOut = true
		s.stopRun() // in-flight runs stop at the next tick; queued jobs park
		<-workersDone
	}
	s.stopRun()

	var err error
	if s.journal != nil {
		err = s.journal.close()
	}
	if timedOut {
		parked := uint64(0)
		if s.m.parked != nil {
			parked = s.m.parked.Value()
		}
		err = errors.Join(err, fmt.Errorf("serve: drain deadline: %d jobs parked for restart", parked))
	}
	close(s.drained)
	return err
}
