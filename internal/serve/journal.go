package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalRecord is one line of the admission journal. The journal is
// append-only NDJSON: an "accept" record (with the scenario's canonical
// bytes) when a job is admitted, and a "done" record when it completes or
// fails. A job that has an accept with no matching done is incomplete and
// is re-enqueued on restart; because runs are deterministic, the rerun
// reproduces the lost result byte for byte.
type journalRecord struct {
	Op       string          `json:"op"` // "accept" | "done"
	ID       string          `json:"id"`
	Scenario json.RawMessage `json:"scenario,omitempty"` // accept: canonical scenario JSON
	OK       bool            `json:"ok,omitempty"`       // done: whether the job succeeded
	Error    string          `json:"error,omitempty"`    // done: failure detail
}

// journal is the crash-safe admission log. Appends are single writes of
// one newline-terminated record, synced to disk before the admission is
// acknowledged, so an acknowledged job survives any crash. A crash mid-
// append can leave at most one torn trailing line; recovery truncates it
// (the half-written job was never acknowledged, so dropping it is correct).
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// pendingJob is one incomplete entry recovered from the journal.
type pendingJob struct {
	id       string
	scenario []byte
}

// openJournal opens (creating if needed) the journal at path, replays it,
// and returns the incomplete jobs in admission order. Replay applies
// records in order — accept marks a job pending, done clears it — so a job
// re-admitted after an earlier failure is correctly pending again.
func openJournal(path string) (*journal, []pendingJob, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: read journal: %w", err)
	}

	// Replay complete lines; stop at the first torn or undecodable line
	// and truncate the file there (only a crash mid-append writes one, and
	// that admission was never acknowledged).
	valid := 0
	pendingIdx := make(map[string]int)
	var pending []pendingJob
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn trailing line
		}
		line := data[off : off+nl]
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		switch rec.Op {
		case "accept":
			if _, dup := pendingIdx[rec.ID]; !dup {
				pendingIdx[rec.ID] = len(pending)
				pending = append(pending, pendingJob{id: rec.ID, scenario: append([]byte(nil), rec.Scenario...)})
			}
		case "done":
			if i, ok := pendingIdx[rec.ID]; ok {
				pending[i].id = "" // tombstone; compacted below
				delete(pendingIdx, rec.ID)
			}
		}
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, fmt.Errorf("serve: truncate torn journal: %w", err)
		}
	}
	out := pending[:0]
	for _, p := range pending {
		if p.id != "" {
			out = append(out, p)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	return &journal{f: f}, out, nil
}

// append writes one record and syncs it to disk before returning, so the
// caller may acknowledge the admission (or completion) to the client.
func (j *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

// accept journals a job admission with its canonical scenario bytes.
func (j *journal) accept(id string, canonical []byte) error {
	return j.append(journalRecord{Op: "accept", ID: id, Scenario: canonical})
}

// done journals a job completion (or terminal failure).
func (j *journal) done(id string, ok bool, errMsg string) error {
	return j.append(journalRecord{Op: "done", ID: id, OK: ok, Error: errMsg})
}

// close releases the journal file.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
