package serve

import "container/list"

// finished is one completed job's terminal state: either the NDJSON result
// body or the failure message.
type finished struct {
	Result []byte
	Err    string
}

// lruCache is a bounded most-recently-used result cache keyed by job id.
// It is not self-locking: the Server guards it with its own mutex. The
// durable result store (sweep.Checkpoint) backs it, so eviction only costs
// a disk lookup, never a re-run.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	id string
	f  finished
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached entry and marks it most recently used.
func (c *lruCache) get(id string) (finished, bool) {
	el, ok := c.items[id]
	if !ok {
		return finished{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).f, true
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entry beyond capacity.
func (c *lruCache) add(id string, f finished) {
	if el, ok := c.items[id]; ok {
		el.Value.(*cacheEntry).f = f
		c.ll.MoveToFront(el)
		return
	}
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, f: f})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).id)
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.ll.Len() }
