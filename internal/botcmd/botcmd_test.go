package botcmd

import (
	"strings"
	"testing"

	"repro/internal/ipv4"
)

func TestParseTable1Commands(t *testing.T) {
	// Commands lifted from the paper's Table 1 (wildcard letters as
	// captured).
	tests := []struct {
		give        string
		wantFamily  Family
		wantExploit string
		wantPrefix  string
	}{
		{give: "ipscan i.i.i.i dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "0.0.0.0/0"},
		{give: "advscan wkssvceng 100 5 0 -r -b", wantFamily: Agobot, wantExploit: "wkssvceng", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan s.s.s.s dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan r.r.r.r dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "0.0.0.0/0"},
		{give: "advscan dcass 150 3 0 211.x.x -r -b -s", wantFamily: Agobot, wantExploit: "dcass", wantPrefix: "211.0.0.0/8"},
		{give: "advscan lsass 300 5 0 -r -s", wantFamily: Agobot, wantExploit: "lsass", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan s.s mssql2000 -s", wantFamily: SDBot, wantExploit: "mssql2000", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan s.s.s lsass -s", wantFamily: SDBot, wantExploit: "lsass", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan s.s webdav3 -s", wantFamily: SDBot, wantExploit: "webdav3", wantPrefix: "0.0.0.0/0"},
		{give: "ipscan 194.s.s.s dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "194.0.0.0/8"},
		{give: "ipscan 192.s.s.s dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "192.0.0.0/8"},
		{give: "ipscan 128.s.s.s dcom2 -s", wantFamily: SDBot, wantExploit: "dcom2", wantPrefix: "128.0.0.0/8"},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			cmd, err := Parse(tt.give)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if cmd.Family != tt.wantFamily {
				t.Errorf("Family = %v, want %v", cmd.Family, tt.wantFamily)
			}
			if cmd.Exploit != tt.wantExploit {
				t.Errorf("Exploit = %q, want %q", cmd.Exploit, tt.wantExploit)
			}
			if got := cmd.HitList().String(); got != tt.wantPrefix {
				t.Errorf("HitList = %s, want %s", got, tt.wantPrefix)
			}
			if cmd.Raw != tt.give {
				t.Errorf("Raw not preserved")
			}
		})
	}
}

func TestParseRejectsNonCommands(t *testing.T) {
	for _, give := range []string{
		"",
		"PING :12345",
		"PRIVMSG #ch :.login bot7",
		"advscan", // no exploit
		"scanstop",
		"ipscan 1.2.3.4", // mask only, no exploit
	} {
		if _, err := Parse(give); err == nil {
			t.Errorf("Parse(%q) accepted", give)
		}
	}
}

func TestParseMask(t *testing.T) {
	tests := []struct {
		give       string
		wantPrefix string
		wantErr    bool
	}{
		{give: "x.x.x.x", wantPrefix: "0.0.0.0/0"},
		{give: "211.x.x.x", wantPrefix: "211.0.0.0/8"},
		{give: "211.22.x.x", wantPrefix: "211.22.0.0/16"},
		{give: "211.22.33.x", wantPrefix: "211.22.33.0/24"},
		{give: "211.22.33.44", wantPrefix: "211.22.33.44/32"},
		{give: "s.s", wantPrefix: "0.0.0.0/0"},
		{give: "194.s.s.s", wantPrefix: "194.0.0.0/8"},
		{give: "", wantErr: true},
		{give: "300.x.x.x", wantErr: true},
		{give: "1.2.3.4.5", wantErr: true},
		{give: "a.b.c.d", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			m, err := ParseMask(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseMask(%q) accepted", tt.give)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMask(%q): %v", tt.give, err)
			}
			if got := m.Prefix().String(); got != tt.wantPrefix {
				t.Errorf("Prefix() = %s, want %s", got, tt.wantPrefix)
			}
		})
	}
}

func TestMaskString(t *testing.T) {
	m, err := ParseMask("194.s.s.s")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "194.x.x.x" {
		t.Errorf("String() = %q, want 194.x.x.x", got)
	}
}

func TestExtractCommandsFromNoisyCapture(t *testing.T) {
	capture := []string{
		"PING :9999",
		"ipscan 194.s.s.s dcom2 -s",
		"PRIVMSG #ch :.sysinfo cpu=99",
		"advscan dcass 150 3 0 211.x.x -r -b -s",
		"NICK z1234",
	}
	cmds := ExtractCommands(capture)
	if len(cmds) != 2 {
		t.Fatalf("extracted %d commands, want 2", len(cmds))
	}
	if cmds[0].Family != SDBot || cmds[1].Family != Agobot {
		t.Errorf("families = %v, %v", cmds[0].Family, cmds[1].Family)
	}
}

func TestAggregateHitLists(t *testing.T) {
	cmds := ExtractCommands([]string{
		"ipscan 194.s.s.s dcom2 -s",
		"ipscan 194.s.s.s lsass -s",        // duplicate range
		"ipscan s.s.s.s dcom2 -s",          // unrestricted: ignored
		"advscan dcass 150 3 0 128.x.x -r", // second /8
	})
	set := AggregateHitLists(cmds)
	if got := set.Size(); got != 2<<24 {
		t.Fatalf("aggregate size = %d, want 2·2^24", got)
	}
	if !set.Contains(ipv4.MustParseAddr("194.1.2.3")) || !set.Contains(ipv4.MustParseAddr("128.255.0.1")) {
		t.Error("aggregate missing expected ranges")
	}
	if set.Contains(ipv4.MustParseAddr("129.0.0.0")) {
		t.Error("aggregate contains unexpected range")
	}
}

func TestGenerateRoundTrips(t *testing.T) {
	cfg := DefaultGenerator(42)
	capture := Generate(cfg)
	if len(capture) <= cfg.NoiseLines {
		t.Fatalf("capture too small: %d lines", len(capture))
	}
	cmds := ExtractCommands(capture)
	if len(cmds) < cfg.Bots {
		t.Fatalf("extracted %d commands from %d bots", len(cmds), cfg.Bots)
	}
	// Every generated propagation command must parse and carry an exploit.
	for _, c := range cmds {
		if c.Exploit == "" {
			t.Fatalf("command %q parsed without exploit", c.Raw)
		}
	}
	// Some commands should be targeted (non-/0 hit-lists): that is the
	// Table 1 phenomenon.
	targeted := 0
	for _, c := range cmds {
		if c.HitList().Bits() > 0 {
			targeted++
		}
	}
	if targeted == 0 {
		t.Error("no targeted hit-lists generated")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(DefaultGenerator(7))
	b := Generate(DefaultGenerator(7))
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("same-seed captures differ")
	}
	c := Generate(DefaultGenerator(8))
	if strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Error("different-seed captures identical")
	}
}

func TestFamilyString(t *testing.T) {
	if Agobot.String() != "agobot" || SDBot.String() != "sdbot" || GhostBot.String() != "ghostbot" {
		t.Error("family names wrong")
	}
	if Family(99).String() != "Family(99)" {
		t.Error("unknown family formatting wrong")
	}
}
