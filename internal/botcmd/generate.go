package botcmd

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// GeneratorConfig shapes a synthetic capture resembling the paper's
// month-long academic-network observation (≈11 bots issuing scan commands,
// interleaved with ordinary C&C chatter).
type GeneratorConfig struct {
	// Bots is the number of distinct bots issuing commands.
	Bots int
	// CommandsPerBot is the mean number of propagation commands per bot.
	CommandsPerBot float64
	// NoiseLines is the number of non-propagation C&C lines interleaved.
	NoiseLines int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultGenerator reproduces Table 1's scale.
func DefaultGenerator(seed uint64) GeneratorConfig {
	return GeneratorConfig{Bots: 11, CommandsPerBot: 2, NoiseLines: 40, Seed: seed}
}

// exploits observed in Table 1, per family.
var (
	agobotExploits = []string{"dcom2", "dcass", "lsass", "wkssvceng", "webdav3", "lsass_445"}
	sdbotExploits  = []string{"dcom2", "lsass", "mssql2000", "webdav3", "netapi"}
)

// targetFirstOctets are the literal first octets seen in captured
// hit-lists (academic and broadband ranges bots favour).
var targetFirstOctets = []byte{128, 192, 194, 205, 211, 61, 82, 24}

// Generate emits a synthetic capture: a line per C&C message, containing
// propagation commands from cfg.Bots bots plus noise. The propagation
// commands follow the Table 1 grammar, with hit-list masks pinned to one or
// two leading octets (bots "target specific /24 and /16 networks").
func Generate(cfg GeneratorConfig) []string {
	r := rng.NewXoshiro(cfg.Seed)
	var lines []string
	for bot := 0; bot < cfg.Bots; bot++ {
		n := int(r.Exponential(cfg.CommandsPerBot)) + 1
		fam := Agobot
		if r.Bernoulli(0.5) {
			fam = SDBot
		}
		for i := 0; i < n; i++ {
			lines = append(lines, generateCommand(fam, r))
		}
	}
	for i := 0; i < cfg.NoiseLines; i++ {
		lines = append(lines, generateNoise(r))
	}
	// Shuffle so the capture interleaves bots and noise.
	perm := r.Shuffle(len(lines))
	out := make([]string, len(lines))
	for i, j := range perm {
		out[i] = lines[j]
	}
	return out
}

func generateCommand(fam Family, r *rng.Xoshiro) string {
	mask := generateMask(r, fam)
	switch fam {
	case SDBot:
		exploit := sdbotExploits[r.Intn(len(sdbotExploits))]
		flags := ""
		if r.Bernoulli(0.8) {
			flags = " -s"
		}
		return fmt.Sprintf("ipscan %s %s%s", mask, exploit, flags)
	default:
		exploit := agobotExploits[r.Intn(len(agobotExploits))]
		threads := 50 + r.Intn(200)
		delay := 1 + r.Intn(5)
		minutes := r.Intn(10000)
		var flags []string
		for _, f := range []string{"-r", "-b", "-s"} {
			if r.Bernoulli(0.6) {
				flags = append(flags, f)
			}
		}
		parts := fmt.Sprintf("advscan %s %d %d %d %s", exploit, threads, delay, minutes, mask)
		if len(flags) > 0 {
			parts += " " + strings.Join(flags, " ")
		}
		return parts
	}
}

func generateMask(r *rng.Xoshiro, fam Family) string {
	wild := "x"
	if fam == SDBot {
		switch r.Intn(3) {
		case 0:
			wild = "s"
		case 1:
			wild = "r"
		default:
			wild = "i"
		}
	}
	switch r.Intn(4) {
	case 0: // fully wild: unrestricted scan
		return strings.Join([]string{wild, wild, wild, wild}, ".")
	case 1: // /8 hit-list
		o := targetFirstOctets[r.Intn(len(targetFirstOctets))]
		return fmt.Sprintf("%d.%s.%s.%s", o, wild, wild, wild)
	case 2: // /16 hit-list
		o := targetFirstOctets[r.Intn(len(targetFirstOctets))]
		return fmt.Sprintf("%d.%d.%s.%s", o, r.Intn(256), wild, wild)
	default: // /24 hit-list
		o := targetFirstOctets[r.Intn(len(targetFirstOctets))]
		return fmt.Sprintf("%d.%d.%d.%s", o, r.Intn(256), r.Intn(256), wild)
	}
}

var noiseTemplates = []string{
	"PING :%d",
	"PRIVMSG #ch :.login bot%d",
	"MODE #ch +smntu",
	"PRIVMSG #ch :.sysinfo cpu=%d",
	"JOIN #exploit%d",
	"PRIVMSG #ch :.download http://host/%d.exe",
	"NICK z%d",
}

func generateNoise(r *rng.Xoshiro) string {
	return fmt.Sprintf(noiseTemplates[r.Intn(len(noiseTemplates))], r.Intn(100000))
}
