// Package botcmd implements the bot command-and-control substrate behind
// the paper's Table 1: the `advscan` / `ipscan` propagation-command grammar
// of the Agobot/Phatbot, rbot/SDBot, and Ghost-Bot families, a parser that
// extracts hit-lists from captured commands, and a generator that emits
// realistic command streams for the live-capture simulation.
//
// Captured commands look like:
//
//	advscan dcass 150 3 0 211.x.x -r -b -s
//	ipscan 194.s.s.s dcom2 -s
//	advscan lsass_445 100 5 0 -r -b
//
// The address mask encodes the hit-list: a literal octet pins the scan to
// that value, while a wildcard octet (x, s, r, i — different families use
// different letters) is chosen by the bot. "194.s.s.s" therefore targets
// 194.0.0.0/8, and "ipscan s.s.170.23" style masks pin low octets instead.
package botcmd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ipv4"
)

// Family identifies the bot family a command belongs to.
type Family int

// Bot families observed in the paper's academic-network capture.
const (
	Agobot Family = iota + 1 // Agobot/Phatbot: "advscan"
	SDBot                    // rbot/SDBot: "ipscan"
	GhostBot
)

// String names the family.
func (f Family) String() string {
	switch f {
	case Agobot:
		return "agobot"
	case SDBot:
		return "sdbot"
	case GhostBot:
		return "ghostbot"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Command is one parsed propagation command.
type Command struct {
	// Family is the issuing bot family.
	Family Family
	// Verb is the raw command verb ("advscan", "ipscan").
	Verb string
	// Exploit is the vulnerability module ("dcom2", "lsass", "mssql2000",
	// "webdav3", "dcass", "wkssvceng", …).
	Exploit string
	// Mask is the dotted target mask as captured (e.g. "194.s.s.s").
	Mask Mask
	// Flags are trailing option switches (-r, -b, -s).
	Flags []string
	// Raw preserves the captured line.
	Raw string
}

// HitList returns the address range the command restricts scanning to.
func (c Command) HitList() ipv4.Prefix { return c.Mask.Prefix() }

// Mask is a dotted four-octet target mask; each octet is either pinned to a
// literal value or a wildcard.
type Mask struct {
	// Octets holds the literal values; Wild marks wildcard positions.
	Octets [4]byte
	Wild   [4]bool
}

// ParseMask parses a dotted mask such as "211.x.x.x" or "s.s" (short masks
// pad with wildcards, as SDBot accepts).
func ParseMask(s string) (Mask, error) {
	var m Mask
	if s == "" {
		return m, fmt.Errorf("botcmd: empty mask")
	}
	parts := strings.Split(s, ".")
	if len(parts) > 4 {
		return m, fmt.Errorf("botcmd: mask %q has %d octets", s, len(parts))
	}
	for i := 0; i < 4; i++ {
		if i >= len(parts) {
			m.Wild[i] = true
			continue
		}
		p := parts[i]
		if isWildcardOctet(p) {
			m.Wild[i] = true
			continue
		}
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return m, fmt.Errorf("botcmd: mask %q octet %d: %v", s, i+1, err)
		}
		m.Octets[i] = byte(v)
	}
	// A literal octet after a wildcard (e.g. "s.s.170.23") is valid for
	// some families but cannot be expressed as a single prefix; Prefix()
	// widens it. Record as-is.
	return m, nil
}

func isWildcardOctet(s string) bool {
	switch s {
	case "x", "s", "r", "i", "*", "%":
		return true
	}
	return false
}

// IsMaskToken reports whether s looks like a target mask.
func IsMaskToken(s string) bool {
	_, err := ParseMask(s)
	if err != nil {
		return false
	}
	return strings.Contains(s, ".") || isWildcardOctet(s)
}

// Prefix returns the widest prefix consistent with the mask's leading
// literal octets: "194.s.s.s" → 194.0.0.0/8, "211.22.x.x" → 211.22.0.0/16,
// all-wild → 0.0.0.0/0.
func (m Mask) Prefix() ipv4.Prefix {
	bits := 0
	var addr uint32
	for i := 0; i < 4; i++ {
		if m.Wild[i] {
			break
		}
		addr |= uint32(m.Octets[i]) << (24 - 8*i)
		bits += 8
	}
	p, err := ipv4.NewPrefix(ipv4.Addr(addr), bits)
	if err != nil {
		panic(err) // unreachable: bits ∈ {0,8,16,24,32}
	}
	return p
}

// String renders the mask in capture notation, using the family-neutral
// wildcard "x".
func (m Mask) String() string {
	parts := make([]string, 4)
	for i := 0; i < 4; i++ {
		if m.Wild[i] {
			parts[i] = "x"
		} else {
			parts[i] = strconv.Itoa(int(m.Octets[i]))
		}
	}
	return strings.Join(parts, ".")
}

// verbFamilies maps command verbs to families.
var verbFamilies = map[string]Family{
	"advscan": Agobot,
	"ipscan":  SDBot,
	"gscan":   GhostBot,
}

// Parse parses one captured command line. Lines that are not propagation
// commands return an error (callers scanning IRC traffic skip them).
func Parse(line string) (Command, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return Command{}, fmt.Errorf("botcmd: %q is not a propagation command", line)
	}
	verb := strings.ToLower(fields[0])
	fam, ok := verbFamilies[verb]
	if !ok {
		return Command{}, fmt.Errorf("botcmd: unknown verb %q", verb)
	}
	cmd := Command{Family: fam, Verb: verb, Raw: line}
	// Grammar (both families): verb [mask] [exploit] [numbers…] [mask] [flags…]
	// Agobot: advscan <exploit> <threads> <delay> <minutes> [mask] [flags]
	// SDBot:  ipscan <mask> <exploit> [flags]
	sawMask := false
	for _, tok := range fields[1:] {
		switch {
		case strings.HasPrefix(tok, "-"):
			cmd.Flags = append(cmd.Flags, tok)
		case !sawMask && IsMaskToken(tok):
			m, err := ParseMask(tok)
			if err != nil {
				return Command{}, err
			}
			cmd.Mask = m
			sawMask = true
		case isNumber(tok):
			// thread/delay/duration parameters — not needed for hit-lists.
		case cmd.Exploit == "":
			cmd.Exploit = strings.ToLower(tok)
		}
	}
	if cmd.Exploit == "" {
		return Command{}, fmt.Errorf("botcmd: %q has no exploit module", line)
	}
	if !sawMask {
		// No mask ⇒ unrestricted scan.
		cmd.Mask = Mask{Wild: [4]bool{true, true, true, true}}
	}
	return cmd, nil
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ExtractCommands scans a capture (one line per message, e.g. IRC PRIVMSG
// payloads) and returns every propagation command found.
func ExtractCommands(capture []string) []Command {
	var out []Command
	for _, line := range capture {
		if cmd, err := Parse(line); err == nil {
			out = append(out, cmd)
		}
	}
	return out
}

// AggregateHitLists merges the hit-lists of a command set into an address
// set, ignoring unrestricted (all-wild) masks.
func AggregateHitLists(cmds []Command) *ipv4.Set {
	set := &ipv4.Set{}
	for _, c := range cmds {
		p := c.HitList()
		if p.Bits() == 0 {
			continue
		}
		set.AddPrefix(p)
	}
	return set
}
