package botcmd

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the parser adversarial junk: a C&C monitor
// processes attacker-controlled bytes, so the parser must reject garbage
// gracefully, never crash.
func TestParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		line := string(raw)
		cmd, err := Parse(line)
		if err != nil {
			return true
		}
		// Anything accepted must be internally consistent.
		return cmd.Exploit != "" && cmd.Raw == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHostileVariants(t *testing.T) {
	hostile := []string{
		"advscan " + strings.Repeat("A", 100000),
		"ipscan " + strings.Repeat(".", 64) + " dcom2",
		"advscan dcom2 999999999999999999999999 1 1",
		"ipscan 1..2.3 dcom2",
		"advscan\tdcom2\t1\t2\t3",
		"ipscan 255.255.255.255 dcom2",
		"ADVSCAN DCOM2 1 2 3", // case-insensitivity of the verb
		strings.Repeat("ipscan s.s.s.s dcom2 -s ", 1000),
	}
	for _, line := range hostile {
		// Must not panic; acceptance is fine when the grammar matches.
		if cmd, err := Parse(line); err == nil && cmd.Exploit == "" {
			t.Errorf("accepted %q without an exploit", truncate(line))
		}
	}
}

func truncate(s string) string {
	if len(s) > 60 {
		return s[:60] + "…"
	}
	return s
}

func TestMaskParseNeverPanics(t *testing.T) {
	f := func(raw string) bool {
		m, err := ParseMask(raw)
		if err != nil {
			return true
		}
		// A parsed mask must render and produce a valid prefix.
		_ = m.String()
		p := m.Prefix()
		return p.Bits() >= 0 && p.Bits() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
