// Package epidemic provides the closed-form SI ("simple epidemic") model
// the paper uses as its uniform-propagation baseline, plus utilities to fit
// the model to simulated outbreaks. It exists both as a user-facing
// analytic tool and as an independent oracle for validating the simulation
// engine: a uniform scanner's simulated epidemic must follow the logistic
// solution.
//
// With N vulnerable hosts inside a scanned space of Ω addresses, each
// infected host probing at r probes/second, the classic model is
//
//	dI/dt = β·I·(1 − I/N),   β = r·N/Ω
//
// whose solution is the logistic curve
//
//	I(t) = N / (1 + (N/I₀ − 1)·e^(−β·t)).
package epidemic

import (
	"errors"
	"fmt"
	"math"
)

// SI is a configured simple-epidemic model.
type SI struct {
	// N is the vulnerable population; I0 the initially infected count.
	N, I0 float64
	// Beta is the per-host infection pressure (1/seconds).
	Beta float64
}

// NewSI builds the model from worm parameters: scanRate (probes/s/host),
// population size, initially infected, and the size of the scanned address
// space (2^32 for uniform IPv4 scanning; the hit-list size for hit-list
// worms — which is why small hit-lists are so much faster).
func NewSI(scanRate float64, population, seeds int, space float64) (SI, error) {
	if scanRate <= 0 || population <= 0 || seeds <= 0 || space <= 0 {
		return SI{}, errors.New("epidemic: all parameters must be positive")
	}
	if seeds > population {
		return SI{}, errors.New("epidemic: more seeds than population")
	}
	return SI{
		N:    float64(population),
		I0:   float64(seeds),
		Beta: scanRate * float64(population) / space,
	}, nil
}

// Infected returns I(t).
func (m SI) Infected(t float64) float64 {
	if m.I0 >= m.N {
		return m.N
	}
	c := (m.N/m.I0 - 1) * math.Exp(-m.Beta*t)
	return m.N / (1 + c)
}

// TimeToFraction returns the time at which the infected fraction reaches f.
func (m SI) TimeToFraction(f float64) (float64, error) {
	if f <= 0 || f >= 1 {
		return 0, errors.New("epidemic: fraction must be in (0,1)")
	}
	target := f * m.N
	if target <= m.I0 {
		return 0, nil
	}
	// Invert the logistic: t = ln((N/I0 −1)·f/(1−f)) / β.
	return math.Log((m.N/m.I0-1)*f/(1-f)) / m.Beta, nil
}

// DoublingTime returns the early-phase doubling time ln2/β.
func (m SI) DoublingTime() float64 { return math.Ln2 / m.Beta }

// FitBeta estimates β from an observed epidemic curve by least-squares
// regression of the log-odds logit(I/N) against time, using only points
// strictly between 1% and 99% infected (where the logit is informative).
// It returns the estimate and the number of points used.
//
// Inputs are validated: the population must be positive and finite, and
// every time/infected pair must be finite. Without these checks a NaN or
// Inf anywhere in the series (or a zero population) poisons the regression
// sums and the function returns a garbage β with a nil error — the failure
// mode the xcheck analytic oracle exists to catch.
func FitBeta(times, infected []float64, population float64) (float64, int, error) {
	if len(times) != len(infected) {
		return 0, 0, errors.New("epidemic: series length mismatch")
	}
	if math.IsNaN(population) || math.IsInf(population, 0) || population <= 0 {
		return 0, 0, fmt.Errorf("epidemic: population %v must be positive and finite", population)
	}
	for i := range times {
		if math.IsNaN(times[i]) || math.IsInf(times[i], 0) {
			return 0, 0, fmt.Errorf("epidemic: time[%d] = %v is not finite", i, times[i])
		}
		if math.IsNaN(infected[i]) || math.IsInf(infected[i], 0) {
			return 0, 0, fmt.Errorf("epidemic: infected[%d] = %v is not finite", i, infected[i])
		}
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range times {
		frac := infected[i] / population
		if frac <= 0.01 || frac >= 0.99 {
			continue
		}
		y := math.Log(frac / (1 - frac))
		sx += times[i]
		sy += y
		sxx += times[i] * times[i]
		sxy += times[i] * y
		n++
	}
	if n < 2 {
		return 0, n, errors.New("epidemic: too few informative points to fit")
	}
	den := float64(n)*sxx - sx*sx
	//lint:ignore float-eq tick times are integer-valued floats below 2^53, so den is exact and ==0 detects exact degeneracy
	if den == 0 {
		return 0, n, errors.New("epidemic: degenerate time series")
	}
	return (float64(n)*sxy - sx*sy) / den, n, nil
}
