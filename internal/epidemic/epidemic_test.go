package epidemic

import (
	"math"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/worm"
)

func TestNewSIValidation(t *testing.T) {
	if _, err := NewSI(0, 100, 1, 1e9); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSI(10, 0, 1, 1e9); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := NewSI(10, 100, 0, 1e9); err == nil {
		t.Error("zero seeds accepted")
	}
	if _, err := NewSI(10, 100, 101, 1e9); err == nil {
		t.Error("seeds > population accepted")
	}
	if _, err := NewSI(10, 100, 1, 0); err == nil {
		t.Error("zero space accepted")
	}
}

func TestLogisticMatchesNumericIntegration(t *testing.T) {
	m, err := NewSI(10, 100000, 25, float64(uint64(1)<<32))
	if err != nil {
		t.Fatal(err)
	}
	// Euler-integrate the ODE finely and compare against the closed form.
	i := m.I0
	dt := 0.25
	for step := 1; step <= 40000; step++ {
		i += dt * m.Beta * i * (1 - i/m.N)
		tt := float64(step) * dt
		want := m.Infected(tt)
		if math.Abs(i-want) > 0.01*m.N {
			t.Fatalf("t=%.1f: numeric %0.f vs closed form %.0f", tt, i, want)
		}
	}
}

func TestLogisticEndpoints(t *testing.T) {
	m, err := NewSI(10, 1000, 10, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Infected(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("I(0) = %v, want 10", got)
	}
	if got := m.Infected(1e9); math.Abs(got-1000) > 1e-6 {
		t.Errorf("I(∞) = %v, want 1000", got)
	}
	saturated := SI{N: 100, I0: 100, Beta: 1}
	if got := saturated.Infected(5); got != 100 {
		t.Errorf("saturated I(t) = %v", got)
	}
}

func TestTimeToFractionInvertsInfected(t *testing.T) {
	m, err := NewSI(10, 134586, 25, float64(uint64(1)<<32))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.1, 0.5, 0.9} {
		tt, err := m.TimeToFraction(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Infected(tt) / m.N; math.Abs(got-f) > 1e-9 {
			t.Errorf("I(T(%v))/N = %v", f, got)
		}
	}
	if _, err := m.TimeToFraction(0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := m.TimeToFraction(1); err == nil {
		t.Error("fraction 1 accepted")
	}
	if tt, err := m.TimeToFraction(25.0 / 2 / 134586); err != nil || tt != 0 {
		t.Errorf("below-I0 fraction: %v, %v", tt, err)
	}
}

func TestDoublingTime(t *testing.T) {
	m := SI{N: 1000, I0: 1, Beta: math.Ln2} // doubling time exactly 1s
	if got := m.DoublingTime(); math.Abs(got-1) > 1e-12 {
		t.Errorf("DoublingTime = %v, want 1", got)
	}
}

func TestFitBetaRecoversTruth(t *testing.T) {
	m, err := NewSI(10, 50000, 25, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	var times, infected []float64
	for tt := 0.0; tt < 30000; tt += 50 {
		times = append(times, tt)
		infected = append(infected, m.Infected(tt))
	}
	beta, n, err := FitBeta(times, infected, m.N)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Errorf("fit used only %d points", n)
	}
	if math.Abs(beta-m.Beta)/m.Beta > 0.01 {
		t.Errorf("fitted beta %v, want %v", beta, m.Beta)
	}
}

func TestFitBetaErrors(t *testing.T) {
	if _, _, err := FitBeta([]float64{1}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := FitBeta([]float64{1, 2}, []float64{0, 0}, 10); err == nil {
		t.Error("uninformative series accepted")
	}
}

// TestFitBetaRejectsHostileInputs is the regression for the silent-garbage
// bug: a non-positive or non-finite population, or a NaN/Inf anywhere in
// the series, used to flow into the regression sums and come back as a
// garbage β with a nil error. All must now fail loudly.
func TestFitBetaRejectsHostileInputs(t *testing.T) {
	good := func() (times, infected []float64) {
		m := SI{N: 1000, I0: 10, Beta: 0.01}
		for tt := 0.0; tt < 1000; tt += 10 {
			times = append(times, tt)
			infected = append(infected, m.Infected(tt))
		}
		return
	}
	times, infected := good()
	cases := []struct {
		name string
		mut  func(times, infected []float64) (t, i []float64, pop float64)
	}{
		{"zero-population", func(t, i []float64) ([]float64, []float64, float64) { return t, i, 0 }},
		{"negative-population", func(t, i []float64) ([]float64, []float64, float64) { return t, i, -5 }},
		{"nan-population", func(t, i []float64) ([]float64, []float64, float64) { return t, i, math.NaN() }},
		{"inf-population", func(t, i []float64) ([]float64, []float64, float64) { return t, i, math.Inf(1) }},
		{"nan-time", func(t, i []float64) ([]float64, []float64, float64) { t[3] = math.NaN(); return t, i, 1000 }},
		{"inf-time", func(t, i []float64) ([]float64, []float64, float64) { t[3] = math.Inf(-1); return t, i, 1000 }},
		{"nan-infected", func(t, i []float64) ([]float64, []float64, float64) { i[40] = math.NaN(); return t, i, 1000 }},
		{"inf-infected", func(t, i []float64) ([]float64, []float64, float64) { i[40] = math.Inf(1); return t, i, 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := append([]float64(nil), times...)
			is := append([]float64(nil), infected...)
			mt, mi, pop := tc.mut(ts, is)
			beta, _, err := FitBeta(mt, mi, pop)
			if err == nil {
				t.Fatalf("hostile input accepted, returned β=%v", beta)
			}
		})
	}
	// The validated path must still fit clean data.
	if _, _, err := FitBeta(times, infected, 1000); err != nil {
		t.Fatalf("clean series rejected: %v", err)
	}
}

// TestSIRoundTripProperty: Infected(TimeToFraction(f)) must return f·N
// across the fraction range and across β regimes spanning slow enterprise
// worms to Slammer-class outbreaks, and with seed counts from 1 to half
// the population.
func TestSIRoundTripProperty(t *testing.T) {
	models := []SI{
		{N: 1000, I0: 1, Beta: 1e-4},
		{N: 1000, I0: 10, Beta: 0.01},
		{N: 134586, I0: 25, Beta: 0.00074}, // ≈ the paper's CodeRedII pressure
		{N: 75000, I0: 100, Beta: 7},       // Slammer-class
		{N: 500, I0: 250, Beta: 0.5},       // half the population already infected
	}
	fractions := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for _, m := range models {
		for _, f := range fractions {
			tt, err := m.TimeToFraction(f)
			if err != nil {
				t.Fatalf("N=%v β=%v f=%v: %v", m.N, m.Beta, f, err)
			}
			got := m.Infected(tt) / m.N
			if f*m.N <= m.I0 {
				// Below the initial seeding the inversion clamps to t=0.
				if tt != 0 {
					t.Errorf("N=%v β=%v f=%v below I0: t=%v, want 0", m.N, m.Beta, f, tt)
				}
				continue
			}
			if math.Abs(got-f) > 1e-9 {
				t.Errorf("N=%v β=%v: I(T(%v))/N = %v", m.N, m.Beta, f, got)
			}
		}
	}
}

// TestDoublingTimeMatchesEarlyCurve: while I ≪ N the epidemic is
// exponential, so the curve must double every DoublingTime seconds (to
// first order in I/N) across β regimes.
func TestDoublingTimeMatchesEarlyCurve(t *testing.T) {
	for _, m := range []SI{
		{N: 1e6, I0: 1, Beta: 1e-3},
		{N: 1e6, I0: 25, Beta: 0.05},
		{N: 134586 * 100, I0: 25, Beta: 0.74},
	} {
		td := m.DoublingTime()
		if got := math.Ln2 / m.Beta; math.Abs(td-got) > 1e-12*got {
			t.Fatalf("DoublingTime = %v, want ln2/β = %v", td, got)
		}
		// Check doubling over the first few periods, stopping while the
		// curve is still deep in the exponential phase (I < 1% of N).
		for k := 0; k < 5; k++ {
			t0 := float64(k) * td
			i0, i1 := m.Infected(t0), m.Infected(t0+td)
			if i1/m.N > 0.01 {
				break
			}
			if r := i1 / i0; math.Abs(r-2) > 0.02 {
				t.Errorf("β=%v: I(%v+Td)/I(%v) = %v, want ≈2", m.Beta, t0, t0, r)
			}
		}
	}
}

// TestSimulationMatchesLogistic is the oracle test: the fast driver's
// uniform-scanner epidemic must track the closed-form logistic solution.
func TestSimulationMatchesLogistic(t *testing.T) {
	pop, err := population.Synthesize(population.Config{
		Size: 20000, Slash8s: 20, Slash16s: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 2000
	res, err := sim.RunFast(sim.FastConfig{
		Pop:              pop,
		Model:            sim.NewUniformModel(),
		ScanRate:         rate,
		TickSeconds:      1,
		MaxSeconds:       12000,
		SeedHosts:        25,
		Seed:             3,
		StopWhenInfected: 19000,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewSI(rate, pop.Size(), 25, float64(uint64(1)<<32))
	if err != nil {
		t.Fatal(err)
	}
	// Compare times-to-fraction: stochastic takeoff jitters the early
	// phase, so compare the 10→90% growth duration, which is seed-free.
	sim10, ok1 := resTime(res, 0.1)
	sim90, ok2 := resTime(res, 0.9)
	if !ok1 || !ok2 {
		t.Fatalf("simulation never reached 90%% (final %d)", res.Final.Infected)
	}
	ana10, _ := model.TimeToFraction(0.1)
	ana90, _ := model.TimeToFraction(0.9)
	simGrowth := sim90 - sim10
	anaGrowth := ana90 - ana10
	if r := simGrowth / anaGrowth; r < 0.85 || r > 1.18 {
		t.Errorf("10%%→90%% growth: simulated %.0fs vs logistic %.0fs (ratio %.2f)",
			simGrowth, anaGrowth, r)
	}

	// And the fitted beta must recover the configured pressure.
	var times, infected []float64
	for _, ti := range res.Series {
		times = append(times, ti.Time)
		infected = append(infected, float64(ti.Infected))
	}
	beta, _, err := FitBeta(times, infected, float64(pop.Size()))
	if err != nil {
		t.Fatal(err)
	}
	if r := beta / model.Beta; r < 0.85 || r > 1.18 {
		t.Errorf("fitted beta %v vs configured %v (ratio %.2f)", beta, model.Beta, r)
	}
}

func resTime(res *sim.Result, f float64) (float64, bool) {
	return res.TimeToFraction(f)
}

// TestHitListEpidemicMatchesReducedSpace verifies the paper's Fig 5a logic
// analytically: a hit-list worm is the same epidemic with Ω shrunk to the
// list size, so its growth must match the logistic model over that space.
func TestHitListEpidemicMatchesReducedSpace(t *testing.T) {
	pop, err := population.Synthesize(population.Config{
		Size: 20000, Slash8s: 20, Slash16s: 400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), 400)
	if cover != 1 {
		t.Fatalf("full list covers %v", cover)
	}
	set := ipv4.SetOfPrefixes(prefixes...)
	const rate = 40
	res, err := sim.RunFast(sim.FastConfig{
		Pop:              pop,
		Model:            &sim.HitListModel{List: set},
		ScanRate:         rate,
		TickSeconds:      1,
		MaxSeconds:       20000,
		SeedHosts:        25,
		Seed:             5,
		StopWhenInfected: 19000,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewSI(rate, pop.Size(), 25, float64(set.Size()))
	if err != nil {
		t.Fatal(err)
	}
	sim10, ok1 := res.TimeToFraction(0.1)
	sim90, ok2 := res.TimeToFraction(0.9)
	if !ok1 || !ok2 {
		t.Fatalf("hit-list epidemic never matured (final %d)", res.Final.Infected)
	}
	ana10, _ := model.TimeToFraction(0.1)
	ana90, _ := model.TimeToFraction(0.9)
	if r := (sim90 - sim10) / (ana90 - ana10); r < 0.85 || r > 1.18 {
		t.Errorf("hit-list growth ratio %.2f vs reduced-space logistic", r)
	}
}
