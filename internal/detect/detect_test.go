package detect

import (
	"testing"

	"repro/internal/ipv4"
)

func mustPrefixes(cidrs ...string) []ipv4.Prefix {
	out := make([]ipv4.Prefix, len(cidrs))
	for i, c := range cidrs {
		out[i] = ipv4.MustParsePrefix(c)
	}
	return out
}

func TestThresholdFleetAlerts(t *testing.T) {
	f := MustNewThresholdFleet(mustPrefixes("10.0.0.0/24", "10.0.1.0/24"), 5)
	hit := ipv4.MustParseAddr("10.0.0.7")
	for i := 0; i < 4; i++ {
		f.RecordHit(hit)
	}
	if f.NumAlerted() != 0 {
		t.Fatal("alerted below threshold")
	}
	f.RecordHit(hit)
	if f.NumAlerted() != 1 {
		t.Fatal("did not alert at threshold")
	}
	// Further hits do not double-count the alert.
	f.RecordHit(hit)
	if f.NumAlerted() != 1 {
		t.Fatal("alert counted twice")
	}
	if got := f.AlertedFraction(); got != 0.5 {
		t.Errorf("AlertedFraction = %v, want 0.5", got)
	}
	if got := f.TouchedFraction(); got != 0.5 {
		t.Errorf("TouchedFraction = %v, want 0.5", got)
	}
}

func TestThresholdFleetIgnoresOutside(t *testing.T) {
	f := MustNewThresholdFleet(mustPrefixes("10.0.0.0/24"), 1)
	f.RecordHit(ipv4.MustParseAddr("10.0.1.0"))
	f.RecordHit(ipv4.MustParseAddr("9.255.255.255"))
	if f.NumAlerted() != 0 || f.TouchedFraction() != 0 {
		t.Error("out-of-fleet hits recorded")
	}
}

func TestThresholdFleetValidation(t *testing.T) {
	if _, err := NewThresholdFleet(nil, 5); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewThresholdFleet(mustPrefixes("10.0.0.0/24"), 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewThresholdFleet(mustPrefixes("10.0.0.0/16", "10.0.1.0/24"), 5); err == nil {
		t.Error("overlapping prefixes accepted")
	}
}

func TestThresholdFleetReset(t *testing.T) {
	f := MustNewThresholdFleet(mustPrefixes("10.0.0.0/24"), 1)
	f.RecordHit(ipv4.MustParseAddr("10.0.0.1"))
	if f.NumAlerted() != 1 {
		t.Fatal("no alert before reset")
	}
	f.Reset()
	if f.NumAlerted() != 0 || f.TouchedFraction() != 0 {
		t.Error("reset left state")
	}
}

func TestQuorumReached(t *testing.T) {
	f := MustNewThresholdFleet(mustPrefixes("10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"), 1)
	f.RecordHit(ipv4.MustParseAddr("10.0.0.1"))
	if QuorumReached(f, 0.5) {
		t.Error("quorum at 25% alerted")
	}
	f.RecordHit(ipv4.MustParseAddr("10.0.1.1"))
	if !QuorumReached(f, 0.5) {
		t.Error("no quorum at 50% alerted")
	}
}

func TestUnionCoversFleet(t *testing.T) {
	f := MustNewThresholdFleet(mustPrefixes("10.0.0.0/24", "172.30.1.0/24"), 3)
	u := f.Union()
	if u.Size() != 512 {
		t.Errorf("union size = %d, want 512", u.Size())
	}
	if !u.Contains(ipv4.MustParseAddr("172.30.1.255")) {
		t.Error("union missing member")
	}
}

func TestPrevalenceDetector(t *testing.T) {
	d := NewPrevalenceDetector(3)
	for i := 0; i < 2; i++ {
		d.Observe("slammer")
	}
	if d.Alerted("slammer") {
		t.Error("alerted below threshold")
	}
	d.Observe("slammer")
	if !d.Alerted("slammer") {
		t.Error("no alert at threshold")
	}
	d.Observe("blaster")
	if d.Alerted("blaster") {
		t.Error("unrelated signature alerted")
	}
	if got := d.Count("slammer"); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if sigs := d.AlertedSignatures(); len(sigs) != 1 || sigs[0] != "slammer" {
		t.Errorf("AlertedSignatures = %v", sigs)
	}
	// Zero threshold is clamped to 1.
	z := NewPrevalenceDetector(0)
	z.Observe("x")
	if !z.Alerted("x") {
		t.Error("threshold-0 detector never alerts")
	}
}

func TestRandomSlash24s(t *testing.T) {
	exclude := ipv4.SetOfPrefixes(ipv4.MustParsePrefix("41.0.0.0/8"))
	prefixes, err := RandomSlash24s(500, 1, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 500 {
		t.Fatalf("placed %d, want 500", len(prefixes))
	}
	seen := make(map[ipv4.Addr]bool)
	for _, p := range prefixes {
		if p.Bits() != 24 {
			t.Fatalf("placement %v is not a /24", p)
		}
		if seen[p.First()] {
			t.Fatalf("duplicate placement %v", p)
		}
		seen[p.First()] = true
		if p.First().IsReserved() || p.First().IsPrivate() {
			t.Fatalf("placement %v in reserved/private space", p)
		}
		if p.First().Slash8() == 41 {
			t.Fatalf("placement %v inside excluded space", p)
		}
	}
	// Deterministic.
	again, err := RandomSlash24s(500, 1, exclude)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prefixes {
		if prefixes[i] != again[i] {
			t.Fatal("placement not deterministic")
		}
	}
	if _, err := RandomSlash24s(0, 1, nil); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRandomSlash24sWithin(t *testing.T) {
	prefixes, err := RandomSlash24sWithin(300, 2, []uint32{18, 41}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prefixes {
		if o := p.First().Slash8(); o != 18 && o != 41 {
			t.Fatalf("placement %v outside requested /8s", p)
		}
	}
	if _, err := RandomSlash24sWithin(10, 2, nil, nil); err == nil {
		t.Error("empty /8 list accepted")
	}
}

func TestRandomSlash24sImpossiblePlacementFails(t *testing.T) {
	// A /8 has 65536 /24s; asking for more must fail, not loop forever.
	if _, err := RandomSlash24sWithin(70000, 3, []uint32{18}, nil); err == nil {
		t.Error("impossible placement succeeded")
	}
}

func TestOnePerSlash16(t *testing.T) {
	slash16s := []uint32{18 << 8, 18<<8 | 1, 41 << 8}
	prefixes := OnePerSlash16(slash16s, 7)
	if len(prefixes) != 3 {
		t.Fatalf("placed %d, want 3", len(prefixes))
	}
	for i, p := range prefixes {
		if got := p.First().Slash16(); got != slash16s[i] {
			t.Errorf("placement %v not in /16 %d", p, slash16s[i])
		}
	}
}

func TestSlash16SweepOfSlash8(t *testing.T) {
	prefixes := Slash16SweepOfSlash8(192, []uint32{168}, 5)
	if len(prefixes) != 255 {
		t.Fatalf("placed %d, want 255", len(prefixes))
	}
	for _, p := range prefixes {
		if p.First().Slash8() != 192 {
			t.Fatalf("placement %v outside 192/8", p)
		}
		if p.First().Slash16() == 192<<8|168 {
			t.Fatalf("placement %v inside excluded 192.168/16", p)
		}
	}
}

func TestDegradedQuorum(t *testing.T) {
	prefixes := []ipv4.Prefix{
		ipv4.MustParsePrefix("10.0.0.0/24"),
		ipv4.MustParsePrefix("10.0.1.0/24"),
		ipv4.MustParsePrefix("10.0.2.0/24"),
		ipv4.MustParsePrefix("10.0.3.0/24"),
	}
	f := MustNewThresholdFleet(prefixes, 1)
	if got := f.NumUp(); got != 4 {
		t.Fatalf("NumUp without a mask = %d, want 4", got)
	}
	// Two detectors alert; two are withdrawn.
	f.RecordHit(ipv4.MustParseAddr("10.0.0.5"))
	f.RecordHit(ipv4.MustParseAddr("10.0.1.5"))
	down := &ipv4.Set{}
	down.AddPrefix(ipv4.MustParsePrefix("10.0.2.0/24"))
	down.AddPrefix(ipv4.MustParsePrefix("10.0.3.0/24"))
	f.SetDownSet(down)
	if got := f.NumUp(); got != 2 {
		t.Fatalf("NumUp under mask = %d, want 2", got)
	}
	// Naive quorum counts the withdrawn detectors as silent votes against;
	// the degraded quorum renormalizes over the detectors that can answer.
	if got := f.AlertedFraction(); got != 0.5 {
		t.Errorf("AlertedFraction = %v, want 0.5", got)
	}
	if got := f.AlertedFractionOfUp(); got != 1.0 {
		t.Errorf("AlertedFractionOfUp = %v, want 1.0", got)
	}
	if QuorumReached(f, 0.75) {
		t.Error("naive quorum reached despite down detectors diluting it")
	}
	if !QuorumReachedDegraded(f, 0.75) {
		t.Error("degraded quorum not reached over in-service detectors")
	}
	// Clearing the mask restores the naive view.
	f.SetDownSet(nil)
	if f.NumUp() != 4 || f.AlertedFractionOfUp() != 0.5 {
		t.Error("clearing the down mask did not restore full accounting")
	}
	// All detectors masked: the degraded fraction degrades to zero rather
	// than dividing by zero.
	all := &ipv4.Set{}
	for _, p := range prefixes {
		all.AddPrefix(p)
	}
	f.SetDownSet(all)
	if f.NumUp() != 0 || f.AlertedFractionOfUp() != 0 {
		t.Error("fully-masked fleet mishandled")
	}
}
