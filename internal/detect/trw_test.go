package detect

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

func TestTRWConfigValidation(t *testing.T) {
	bad := []TRWConfig{
		{Theta0: 0.2, Theta1: 0.8, Alpha: 0.01, Beta: 0.99}, // inverted thetas
		{Theta0: 0.8, Theta1: 0.2, Alpha: 0.99, Beta: 0.01}, // inverted thresholds
		{Theta0: 1.0, Theta1: 0.2, Alpha: 0.01, Beta: 0.99},
		{Theta0: 0.8, Theta1: 0, Alpha: 0.01, Beta: 0.99},
		{Theta0: 0.8, Theta1: 0.2, Alpha: 0, Beta: 0.99},
	}
	for i, cfg := range bad {
		if _, err := NewTRW(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewTRW(DefaultTRWConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestTRWFlagsPureScannerQuickly(t *testing.T) {
	d, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := ipv4.MustParseAddr("6.6.6.6")
	want := d.FailuresToFlag()
	if want < 2 || want > 10 {
		t.Fatalf("FailuresToFlag = %d, expected a handful", want)
	}
	flaggedAt := 0
	for i := 1; i <= want+2; i++ {
		if d.Observe(src, Failure) {
			flaggedAt = i
			break
		}
	}
	if flaggedAt != want {
		t.Errorf("flagged after %d failures, want %d", flaggedAt, want)
	}
	if !d.IsScanner(src) || d.Scanners() != 1 {
		t.Error("scanner state inconsistent")
	}
	// Further observations are no-ops.
	if d.Observe(src, Failure) {
		t.Error("re-flagged a decided source")
	}
}

func TestTRWExoneratesBenignSource(t *testing.T) {
	d, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := ipv4.MustParseAddr("9.9.9.9")
	for i := 0; i < 50; i++ {
		d.Observe(src, Success)
		if d.Exonerated() > 0 {
			break
		}
	}
	if d.IsScanner(src) {
		t.Error("all-success source flagged as scanner")
	}
	if d.Exonerated() != 1 {
		t.Errorf("Exonerated = %d, want 1", d.Exonerated())
	}
}

func TestTRWErrorRatesUnderStochasticSources(t *testing.T) {
	d, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewXoshiro(1)
	// 2000 benign sources (80% success) and 2000 scanners (20% success).
	const n = 2000
	var benignFlagged, scannersFlagged int
	for i := 0; i < n; i++ {
		src := ipv4.Addr(0x01000000 + i)
		for j := 0; j < 200; j++ {
			out := Failure
			if r.Bernoulli(0.8) {
				out = Success
			}
			if d.Observe(src, out) {
				benignFlagged++
				break
			}
			if d.Decided(src) {
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		src := ipv4.Addr(0x02000000 + i)
		for j := 0; j < 200; j++ {
			out := Failure
			if r.Bernoulli(0.2) {
				out = Success
			}
			if d.Observe(src, out) {
				scannersFlagged++
				break
			}
		}
	}
	// α = 1%: benign false positives should be rare; β = 99%: nearly every
	// scanner flagged. Wald's bounds are approximate — allow slack.
	if frac := float64(benignFlagged) / n; frac > 0.03 {
		t.Errorf("benign false-positive rate = %.3f, want ≲0.01", frac)
	}
	if frac := float64(scannersFlagged) / n; frac < 0.95 {
		t.Errorf("scanner detection rate = %.3f, want ≳0.99", frac)
	}
}

func TestTRWHotspotBlindness(t *testing.T) {
	// The paper's argument applied to TRW: a detector watching a block the
	// worm never targets sees no walk at all. A hit-list worm probing only
	// 10.0.0.0/8 is invisible to a TRW instance monitoring 41.0.0.0/8.
	d, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	monitored := ipv4.MustParsePrefix("41.0.0.0/8")
	scanner := ipv4.MustParseAddr("7.7.7.7")
	r := rng.NewXoshiro(2)
	hitList := ipv4.MustParsePrefix("10.0.0.0/8")
	for i := 0; i < 100000; i++ {
		dst := hitList.Nth(r.Uint64n(hitList.NumAddrs()))
		if monitored.Contains(dst) {
			d.Observe(scanner, Failure)
		}
	}
	if d.Scanners() != 0 {
		t.Error("TRW flagged a scanner it could never have observed")
	}
}

func TestTRWReset(t *testing.T) {
	d, err := NewTRW(DefaultTRWConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := ipv4.MustParseAddr("6.6.6.6")
	for i := 0; i < 10; i++ {
		d.Observe(src, Failure)
	}
	d.Reset()
	if d.Scanners() != 0 || d.Pending() != 0 || d.IsScanner(src) {
		t.Error("reset left state")
	}
}
