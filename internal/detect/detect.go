// Package detect implements the distributed detection systems whose
// blindness to hotspots is the paper's Section 5 result: fleets of /24
// darknet detectors with threshold alerting, quorum aggregation over fleet
// alerts, placement strategies, and a content-prevalence baseline.
//
// The paper's detector: "each sensor was set to generate an alert after
// observing n worm infection attempts … our detector had no false positives
// and was set to generate an alert after observing 5 threat payloads."
package detect

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ThresholdFleet is a set of non-overlapping detector prefixes (typically
// /24s), each alerting once its probe count reaches a threshold. It
// implements sim.HitRecorder. Not safe for concurrent use.
type ThresholdFleet struct {
	prefixes  []ipv4.Prefix // sorted by first address
	counts    []uint64
	alerted   []bool
	nAlerted  int
	threshold uint64
	firstHit  []bool
	union     *ipv4.Set
	metrics   fleetMetrics // see Instrument; zero value is inert
	downSet   *ipv4.Set    // see SetDownSet; nil means every detector is up
	trace     *trace.Recorder
	traceClk  obs.Clock
}

// NewThresholdFleet builds a fleet. Prefixes must not overlap; threshold
// must be ≥ 1.
func NewThresholdFleet(prefixes []ipv4.Prefix, threshold uint64) (*ThresholdFleet, error) {
	if threshold == 0 {
		return nil, errors.New("detect: zero alert threshold")
	}
	if len(prefixes) == 0 {
		return nil, errors.New("detect: empty fleet")
	}
	sorted := make([]ipv4.Prefix, len(prefixes))
	copy(sorted, prefixes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].First() < sorted[j].First() })
	union := &ipv4.Set{}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Last() >= sorted[i].First() {
			return nil, fmt.Errorf("detect: prefixes %v and %v overlap", sorted[i-1], sorted[i])
		}
	}
	for _, p := range sorted {
		union.AddPrefix(p)
	}
	return &ThresholdFleet{
		prefixes:  sorted,
		counts:    make([]uint64, len(sorted)),
		alerted:   make([]bool, len(sorted)),
		firstHit:  make([]bool, len(sorted)),
		threshold: threshold,
		union:     union,
	}, nil
}

// MustNewThresholdFleet is like NewThresholdFleet but panics on error.
func MustNewThresholdFleet(prefixes []ipv4.Prefix, threshold uint64) *ThresholdFleet {
	f, err := NewThresholdFleet(prefixes, threshold)
	if err != nil {
		panic(err)
	}
	return f
}

// RecordHit registers a probe landing at dst; probes outside every detector
// are ignored. Implements the sim.HitRecorder interface.
func (f *ThresholdFleet) RecordHit(dst ipv4.Addr) {
	i := f.lookup(dst)
	if i < 0 {
		return
	}
	f.counts[i]++
	f.firstHit[i] = true
	f.metrics.hits.Inc()
	if !f.alerted[i] && f.counts[i] >= f.threshold {
		f.alerted[i] = true
		f.nAlerted++
		f.metrics.recordAlert(f.nAlerted)
		if f.trace != nil {
			t := 0.0
			if f.traceClk != nil {
				t = f.traceClk.Seconds()
			}
			// Hits replay during the drivers' serial phase, so alert
			// events land between the tick's infection edges and its
			// probe summary; tick -1 marks them as clock-stamped rather
			// than tick-loop-emitted.
			f.trace.Append(trace.Event{Tick: -1, T: t, Kind: trace.KindAlert, Agent: -1, Victim: -1,
				Addr: f.prefixes[i].String(), Vector: "threshold", N: f.counts[i]})
		}
	}
}

// Trace attaches a flight recorder: each detector's threshold crossing
// appends one trace.KindAlert event stamped with the injected clock's
// simulated time (nil clock stamps 0). Like Instrument, attaching draws
// no randomness and never perturbs detection.
func (f *ThresholdFleet) Trace(rec *trace.Recorder, clock obs.Clock) {
	f.trace = rec
	f.traceClk = clock
}

func (f *ThresholdFleet) lookup(dst ipv4.Addr) int {
	i := sort.Search(len(f.prefixes), func(i int) bool { return f.prefixes[i].Last() >= dst })
	if i < len(f.prefixes) && f.prefixes[i].Contains(dst) {
		return i
	}
	return -1
}

// Size returns the number of detectors.
func (f *ThresholdFleet) Size() int { return len(f.prefixes) }

// TotalHits returns the total probes recorded across all detectors.
func (f *ThresholdFleet) TotalHits() uint64 {
	var n uint64
	for _, c := range f.counts {
		n += c
	}
	return n
}

// Counts returns a copy of the per-detector hit counts, ordered by detector
// first address.
func (f *ThresholdFleet) Counts() []uint64 {
	out := make([]uint64, len(f.counts))
	copy(out, f.counts)
	return out
}

// Prefixes returns the detector prefixes, ordered by first address.
func (f *ThresholdFleet) Prefixes() []ipv4.Prefix {
	out := make([]ipv4.Prefix, len(f.prefixes))
	copy(out, f.prefixes)
	return out
}

// NumAlerted returns how many detectors have alerted.
func (f *ThresholdFleet) NumAlerted() int { return f.nAlerted }

// AlertedFraction returns the alerted share of the fleet.
func (f *ThresholdFleet) AlertedFraction() float64 {
	return float64(f.nAlerted) / float64(len(f.prefixes))
}

// TouchedFraction returns the share of detectors that saw at least one
// probe (alerted or not).
func (f *ThresholdFleet) TouchedFraction() float64 {
	n := 0
	for _, t := range f.firstHit {
		if t {
			n++
		}
	}
	return float64(n) / float64(len(f.prefixes))
}

// Union returns the fleet's monitored address space.
func (f *ThresholdFleet) Union() *ipv4.Set { return f.union }

// SetDownSet marks address space whose detectors are out of service (a
// faults.Plan's DownSpace). It is an accounting mask, not a traffic gate:
// the simulation already withholds hits to withdrawn space, and this mask
// lets quorum renormalize over the detectors an operator knows are up. A
// detector counts as down when its first address lies in the set; nil
// clears the mask.
func (f *ThresholdFleet) SetDownSet(down *ipv4.Set) { f.downSet = down }

// detectorDown reports whether detector i is masked out of service.
func (f *ThresholdFleet) detectorDown(i int) bool {
	return f.downSet != nil && f.downSet.Contains(f.prefixes[i].First())
}

// NumUp returns how many detectors are in service under the down mask.
func (f *ThresholdFleet) NumUp() int {
	n := 0
	for i := range f.prefixes {
		if !f.detectorDown(i) {
			n++
		}
	}
	return n
}

// AlertedFractionOfUp returns the alerted share of the in-service
// detectors (0 when none are up).
func (f *ThresholdFleet) AlertedFractionOfUp() float64 {
	up, alerted := 0, 0
	for i := range f.prefixes {
		if f.detectorDown(i) {
			continue
		}
		up++
		if f.alerted[i] {
			alerted++
		}
	}
	if up == 0 {
		return 0
	}
	return float64(alerted) / float64(up)
}

// Reset clears all counts and alerts.
func (f *ThresholdFleet) Reset() {
	for i := range f.counts {
		f.counts[i] = 0
		f.alerted[i] = false
		f.firstHit[i] = false
	}
	f.nAlerted = 0
}

// QuorumReached reports whether at least fraction of the fleet has alerted —
// the aggregation rule of quorum-based distributed detection. The paper's
// point: under hotspots this quorum "would likely never alert" even with
// zero false positives and instantaneous communication.
func QuorumReached(f *ThresholdFleet, fraction float64) bool {
	return f.AlertedFraction() >= fraction
}

// QuorumReachedDegraded is QuorumReached renormalized over the in-service
// detectors: an operator who knows which blocks are withdrawn (SetDownSet)
// asks for a quorum of the detectors that can still answer. The naive
// quorum silently counts down detectors as "not alerted"; comparing the
// two is how ext-faults quantifies the cost of not tracking fleet health.
func QuorumReachedDegraded(f *ThresholdFleet, fraction float64) bool {
	return f.AlertedFractionOfUp() >= fraction
}

// PrevalenceDetector is the content-prevalence baseline (Autograph /
// EarlyBird style): it counts occurrences of each payload signature across
// everything it observes and alerts once a signature's count reaches the
// threshold. Hotspots break it the same way: a sensor outside the hotspot
// never accumulates the count.
type PrevalenceDetector struct {
	threshold uint64
	counts    map[string]uint64
}

// NewPrevalenceDetector returns a detector alerting at threshold
// occurrences of any single signature.
func NewPrevalenceDetector(threshold uint64) *PrevalenceDetector {
	if threshold == 0 {
		threshold = 1
	}
	return &PrevalenceDetector{threshold: threshold, counts: make(map[string]uint64)}
}

// Observe records one occurrence of signature.
func (d *PrevalenceDetector) Observe(signature string) {
	d.counts[signature]++
}

// Count returns the occurrences of signature.
func (d *PrevalenceDetector) Count(signature string) uint64 { return d.counts[signature] }

// Alerted reports whether signature crossed the prevalence threshold.
func (d *PrevalenceDetector) Alerted(signature string) bool {
	return d.counts[signature] >= d.threshold
}

// AlertedSignatures returns every signature over threshold, sorted.
func (d *PrevalenceDetector) AlertedSignatures() []string {
	var out []string
	for sig, c := range d.counts {
		if c >= d.threshold {
			out = append(out, sig)
		}
	}
	sort.Strings(out)
	return out
}
