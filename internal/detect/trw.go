package detect

import (
	"errors"
	"math"

	"repro/internal/ipv4"
)

// TRW implements sequential hypothesis testing for scan detection (Jung,
// Paxson, Berger & Balakrishnan, "Fast Portscan Detection Using Sequential
// Hypothesis Testing" — the paper's reference [11] for detection systems
// whose alerts hotspots can distort).
//
// Each remote source performs a random walk: every connection attempt to a
// local address moves the source's likelihood ratio up (failure — typical
// of scanners probing empty space) or down (success — typical of benign
// clients). The source is flagged as a scanner when the ratio crosses the
// upper threshold, or exonerated at the lower threshold.
//
// In the hotspots setting the "local addresses" are a monitored block:
// darknet probes always fail, so the walk is a pure birth process and TRW
// is extremely fast — but only for sources whose hotspots include the
// monitored block. A TRW detector outside a worm's hotspot never observes
// the walk at all, which is exactly the paper's visibility argument.
type TRW struct {
	// theta0/theta1 are the success probabilities under the benign and
	// scanner hypotheses; eta0/eta1 the exoneration and detection
	// thresholds (precomputed from the configured error rates).
	lnSuccess float64 // log-likelihood increment for a success
	lnFailure float64 // log-likelihood increment for a failure
	lnEta0    float64
	lnEta1    float64

	state map[ipv4.Addr]*trwSource

	scanners int
	benign   int
}

// trwSource is one remote source's walk state.
type trwSource struct {
	llr     float64
	decided trwDecision
}

type trwDecision int

const (
	trwPending trwDecision = iota
	trwScanner
	trwBenign
)

// TRWConfig configures the detector. The defaults (via NewTRW) follow the
// original paper: θ0 = 0.8, θ1 = 0.2, α = 0.01, β = 0.99.
type TRWConfig struct {
	// Theta0 is P(success | benign); Theta1 is P(success | scanner).
	Theta0, Theta1 float64
	// Alpha is the false-positive target, Beta the detection target.
	Alpha, Beta float64
}

// DefaultTRWConfig returns the original paper's operating point.
func DefaultTRWConfig() TRWConfig {
	return TRWConfig{Theta0: 0.8, Theta1: 0.2, Alpha: 0.01, Beta: 0.99}
}

// NewTRW builds a TRW detector.
func NewTRW(cfg TRWConfig) (*TRW, error) {
	if cfg.Theta0 <= cfg.Theta1 || cfg.Theta0 >= 1 || cfg.Theta1 <= 0 {
		return nil, errors.New("detect: TRW requires 0 < theta1 < theta0 < 1")
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 || cfg.Beta <= cfg.Alpha || cfg.Beta >= 1 {
		return nil, errors.New("detect: TRW requires 0 < alpha < beta < 1")
	}
	return &TRW{
		lnSuccess: math.Log(cfg.Theta1 / cfg.Theta0),
		lnFailure: math.Log((1 - cfg.Theta1) / (1 - cfg.Theta0)),
		lnEta1:    math.Log(cfg.Beta / cfg.Alpha),
		lnEta0:    math.Log((1 - cfg.Beta) / (1 - cfg.Alpha)),
		state:     make(map[ipv4.Addr]*trwSource),
	}, nil
}

// Outcome is the result of one observed connection attempt.
type Outcome int

// Connection outcomes.
const (
	// Failure: the target did not exist or did not respond — what darknet
	// probes always produce.
	Failure Outcome = iota + 1
	// Success: the target completed the exchange.
	Success
)

// Observe feeds one connection attempt from src and reports whether this
// observation flagged src as a scanner (true exactly once per source).
func (d *TRW) Observe(src ipv4.Addr, outcome Outcome) bool {
	s, ok := d.state[src]
	if !ok {
		s = &trwSource{}
		d.state[src] = s
	}
	if s.decided != trwPending {
		return false
	}
	if outcome == Success {
		s.llr += d.lnSuccess
	} else {
		s.llr += d.lnFailure
	}
	switch {
	case s.llr >= d.lnEta1:
		s.decided = trwScanner
		d.scanners++
		return true
	case s.llr <= d.lnEta0:
		s.decided = trwBenign
		d.benign++
	}
	return false
}

// IsScanner reports whether src has been flagged.
func (d *TRW) IsScanner(src ipv4.Addr) bool {
	s, ok := d.state[src]
	return ok && s.decided == trwScanner
}

// Decided reports whether src's hypothesis test has concluded either way.
func (d *TRW) Decided(src ipv4.Addr) bool {
	s, ok := d.state[src]
	return ok && s.decided != trwPending
}

// Scanners returns the number of flagged sources.
func (d *TRW) Scanners() int { return d.scanners }

// Exonerated returns the number of sources decided benign.
func (d *TRW) Exonerated() int { return d.benign }

// Pending returns the number of sources still undecided.
func (d *TRW) Pending() int { return len(d.state) - d.scanners - d.benign }

// FailuresToFlag returns the number of consecutive failures needed to flag
// a fresh source — the walk length of a pure darknet scanner.
func (d *TRW) FailuresToFlag() int {
	return int(math.Ceil(d.lnEta1 / d.lnFailure))
}

// Reset clears all per-source state.
func (d *TRW) Reset() {
	d.state = make(map[ipv4.Addr]*trwSource)
	d.scanners = 0
	d.benign = 0
}
