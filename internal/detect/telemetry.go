package detect

import (
	"repro/internal/obs"
)

// firstAlarmBuckets bound the first-alarm latency histogram in (simulated)
// seconds, covering sub-minute local detection out to the paper's
// 2000-second outbreak horizon.
var firstAlarmBuckets = []float64{10, 30, 60, 120, 300, 600, 1200, 2000, 3600}

// fleetMetrics are the hot-path telemetry handles of a ThresholdFleet.
// All handles are nil-safe, so an un-instrumented fleet pays one nil
// check per hit.
type fleetMetrics struct {
	hits       *obs.Counter   // detect_sensor_hits_total
	alerts     *obs.Counter   // detect_sensor_alerts_total
	alerted    *obs.Gauge     // detect_sensors_alerted
	firstAlarm *obs.Histogram // detect_first_alarm_seconds
	clock      obs.Clock
}

// Instrument attaches telemetry to the fleet: aggregate hit and alert
// counters, an alerted-sensor gauge, and a first-alarm latency histogram
// observing each sensor's first alert at clock time (inject the
// simulation's obs.SimClock so latencies are in simulated seconds; clock
// may be nil to skip latency recording). Counters are cumulative across
// Reset — Reset clears the fleet's own per-sensor state, not the registry.
func (f *ThresholdFleet) Instrument(reg *obs.Registry, clock obs.Clock) {
	f.metrics = fleetMetrics{
		hits:       reg.Counter("detect_sensor_hits_total"),
		alerts:     reg.Counter("detect_sensor_alerts_total"),
		alerted:    reg.Gauge("detect_sensors_alerted"),
		firstAlarm: reg.Histogram("detect_first_alarm_seconds", firstAlarmBuckets),
		clock:      clock,
	}
}

// recordAlert publishes one sensor crossing its threshold.
func (m *fleetMetrics) recordAlert(nAlerted int) {
	m.alerts.Inc()
	m.alerted.Set(float64(nAlerted))
	if m.clock != nil {
		m.firstAlarm.Observe(m.clock.Seconds())
	}
}

// ExportMetrics publishes the per-sensor hit counters as
// detect_sensor_hits{prefix=…} gauges. It walks every sensor, so call it
// at exposition time (end of run), never on the hot path.
func (f *ThresholdFleet) ExportMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, p := range f.prefixes {
		reg.Gauge("detect_sensor_hits", "prefix", p.String()).Set(float64(f.counts[i]))
	}
}
