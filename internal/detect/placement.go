package detect

import (
	"errors"
	"fmt"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// RandomSlash24s places n distinct /24 detectors uniformly across the
// routable IPv4 space, avoiding reserved ranges, RFC 1918 private space,
// and any /24 overlapping exclude. This is the paper's "placed 10,000 /24
// sensors randomly throughout the IPv4 space" strategy.
func RandomSlash24s(n int, seed uint64, exclude *ipv4.Set) ([]ipv4.Prefix, error) {
	return randomSlash24s(n, seed, nil, exclude)
}

// RandomSlash24sWithin places n distinct /24 detectors uniformly inside the
// given /8 networks — the paper's "10,000 sensors randomly inside the top
// 20 /8 networks with vulnerable hosts" strategy.
func RandomSlash24sWithin(n int, seed uint64, slash8s []uint32, exclude *ipv4.Set) ([]ipv4.Prefix, error) {
	if len(slash8s) == 0 {
		return nil, errors.New("detect: no /8s to place within")
	}
	return randomSlash24s(n, seed, slash8s, exclude)
}

func randomSlash24s(n int, seed uint64, slash8s []uint32, exclude *ipv4.Set) ([]ipv4.Prefix, error) {
	if n <= 0 {
		return nil, errors.New("detect: non-positive sensor count")
	}
	r := rng.NewXoshiro(seed)
	chosen := make(map[uint32]bool, n)
	out := make([]ipv4.Prefix, 0, n)
	attempts := 0
	maxAttempts := 1000*n + 1000
	for len(out) < n {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("detect: could not place %d sensors (placed %d)", n, len(out))
		}
		var net24 uint32
		if slash8s == nil {
			net24 = uint32(r.Uint64n(1 << 24))
		} else {
			o := slash8s[r.Intn(len(slash8s))]
			net24 = o<<16 | uint32(r.Uint64n(1<<16))
		}
		if chosen[net24] {
			continue
		}
		base := ipv4.Addr(net24 << 8)
		if base.IsReserved() || base.IsPrivate() {
			continue
		}
		if exclude != nil && exclude.IntersectInterval(ipv4.Interval{Lo: base, Hi: base | 0xff}) > 0 {
			continue
		}
		chosen[net24] = true
		p, err := ipv4.NewPrefix(base, 24)
		if err != nil {
			panic(err) // unreachable: 24 is valid
		}
		out = append(out, p)
	}
	return out, nil
}

// OnePerSlash16 places one /24 detector inside each given /16 — the Fig 5b
// strategy ("we randomly placed a /24 detector in each of the 4481 /16
// networks with at least one vulnerable host"). The offset within each /16
// is drawn from seed.
func OnePerSlash16(slash16s []uint32, seed uint64) []ipv4.Prefix {
	r := rng.NewXoshiro(seed)
	out := make([]ipv4.Prefix, 0, len(slash16s))
	for _, net := range slash16s {
		third := uint32(r.Intn(256))
		base := ipv4.Addr(net<<16 | third<<8)
		p, err := ipv4.NewPrefix(base, 24)
		if err != nil {
			panic(err) // unreachable: 24 is valid
		}
		out = append(out, p)
	}
	return out
}

// Slash16SweepOfSlash8 places one /24 detector in every /16 of the given
// /8, skipping the /16s listed in exclude — the Fig 5c strategy of
// instrumenting all of 192/8 while "avoiding 192.168/16" (yielding 255
// detectors).
func Slash16SweepOfSlash8(octet uint32, excludeSecondOctets []uint32, seed uint64) []ipv4.Prefix {
	excluded := make(map[uint32]bool, len(excludeSecondOctets))
	for _, o := range excludeSecondOctets {
		excluded[o] = true
	}
	r := rng.NewXoshiro(seed)
	var out []ipv4.Prefix
	for second := uint32(0); second < 256; second++ {
		if excluded[second] {
			continue
		}
		third := uint32(r.Intn(256))
		base := ipv4.Addr(octet<<24 | second<<16 | third<<8)
		p, err := ipv4.NewPrefix(base, 24)
		if err != nil {
			panic(err) // unreachable: 24 is valid
		}
		out = append(out, p)
	}
	return out
}
