package xcheck

import (
	"fmt"
	"sort"

	"repro/internal/epidemic"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Oracle names, used to label violations and to let the shrinker hold a
// reproduction to the oracle that originally fired.
const (
	OracleByteIdentity = "byte-identity"  // Workers=1 vs Workers=N + JSON round-trip
	OracleFastIdentity = "fast-identity"  // fast driver: Workers=1 vs N, tick-skip on vs off
	OracleInvariant    = "invariant"      // conservation, monotonicity, consistency
	OracleFleet        = "fleet"          // sensor accounting vs outcome counts
	OracleDifferential = "differential"   // exact vs fast trajectories
	OracleAnalytic     = "analytic"       // SI model tracking + FitBeta recovery
	OracleTreeSize     = "tree-size"      // trace reconstructs a tree covering every infection
	OracleTreeTime     = "tree-time"      // edge times match and respect infection order
	OracleTreeEdge     = "tree-adjacency" // graph worlds: every edge is a world adjacency, sensors stay clean
)

// Violation is one oracle failure.
type Violation struct {
	// Oracle names the oracle family that fired (Oracle* constants).
	Oracle string `json:"oracle"`
	// Detail is a human-readable account of the disagreement.
	Detail string `json:"detail"`
}

// Report is the outcome of cross-checking one scenario.
type Report struct {
	Scenario   Scenario    `json:"scenario"`
	Violations []Violation `json:"violations,omitempty"`
	// Run statistics, for eyeballing batch health.
	FinalInfected int    `json:"final_infected"`
	Probes        uint64 `json:"probes"`
	Ticks         int    `json:"ticks"`
	Differential  bool   `json:"differential"`
	Analytic      bool   `json:"analytic"`

	// traces retains every run's flight recorder so a failing report can
	// dump them with provenance manifests (see WriteTraceArtifacts).
	traces []namedTrace
}

// Ok reports whether every oracle passed.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) addf(oracle, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// Differential-oracle replica count: the fast driver runs this many times
// under derived seeds, and the exact trajectory must land inside the
// replica envelope widened by tolerance factors.
const fastReplicas = 3

// Tolerances. The differential and analytic oracles compare stochastic
// processes, so they accept bounded disagreement; the bounds are tuned so
// seeded batches (see cmd/xcheck) run clean while injected bugs — broken
// accounting, skewed rates, garbage fits — still land far outside.
const (
	trajRatioSlack  = 1.7 // exact vs fast time-to-fraction envelope factor
	sensorRateBand  = 2.0 // exact vs fast sensor-hit-rate ratio bound
	minSensorHits   = 100 // below this, sensor rates are too noisy to compare
	analyticHalfLo  = 0.5 // measured/predicted half-time ratio window
	analyticHalfHi  = 2.0
	fitBetaRatioLo  = 0.55 // recovered/configured β ratio window
	fitBetaRatioHi  = 1.8
	minFitPoints    = 5    // FitBeta informative-point floor
	comfortFraction = 0.65 // "reached comfortably before the horizon" bound
)

// CheckScenario expands, runs, and audits one scenario. The returned error
// covers harness failures (invalid scenario, driver refusing the config);
// oracle disagreements land in the report's Violations.
func CheckScenario(sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	a, err := build(&sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{Scenario: sc}

	// Reference run: exact driver, serial.
	ref, err := runExact(&sc, a, 1)
	if err != nil {
		return nil, err
	}
	rep.FinalInfected = ref.res.Final.Infected
	rep.Ticks = len(ref.res.Series)
	for _, ti := range ref.res.Series {
		rep.Probes += ti.Probes
	}

	// Byte-identity: rebuild everything from the scenario's JSON (corpus
	// and report round-trip) and run with the scenario's worker count.
	// Identical bytes prove worker-count invariance, replayability, and
	// that serialization loses nothing.
	sc2, err := ParseScenario(sc.JSON())
	if err != nil {
		rep.addf(OracleByteIdentity, "scenario JSON does not round-trip: %v", err)
	} else if err := sc2.Validate(); err != nil {
		rep.addf(OracleByteIdentity, "scenario invalid after JSON round-trip: %v", err)
	} else {
		a2, err := build(&sc2)
		if err != nil {
			return nil, err
		}
		again, err := runExact(&sc2, a2, sc2.Workers)
		if err != nil {
			return nil, err
		}
		if s1, s2 := serializeRun(ref), serializeRun(again); s1 != s2 {
			rep.addf(OracleByteIdentity,
				"Workers=1 and Workers=%d runs differ after JSON round-trip: %s",
				sc2.Workers, firstDiff(s1, s2))
		}
	}

	checkInvariants(rep, "exact", ref.res, a.size())
	checkFleet(rep, "exact", &sc, ref)
	checkTree(rep, "exact", ref)
	checkTreeAdjacency(rep, "exact", a, ref)
	rep.keepTrace("exact", "exact", sc.SimSeed, 1, ref.trace)

	if a.graph != nil {
		// Graph worlds get the fast driver's full self-contract audit —
		// invariants, provenance trees over true infectors, and identity
		// across worker counts and tick skipping — but no trajectory
		// differential: replica seeds choose different seed nodes, and on
		// a spatial world different outbreak origins legitimately produce
		// different curves, so an envelope over replicas has no meaning.
		seed := fastReplicaSeed(sc.SimSeed, 0)
		fr, err := runFast(&sc, a, seed, 1, false)
		if err != nil {
			return nil, err
		}
		checkInvariants(rep, "fast", fr.res, a.size())
		checkTree(rep, "fast", fr)
		checkTreeAdjacency(rep, "fast", a, fr)
		rep.keepTrace("fast0", "fast", seed, 0, fr.trace)
		if err := checkFastIdentity(rep, &sc, a, fr); err != nil {
			return nil, err
		}
		return rep, nil
	}

	if sc.Differential() && a.model != nil {
		fasts := make([]*runOutput, 0, fastReplicas)
		for i := 0; i < fastReplicas; i++ {
			seed := fastReplicaSeed(sc.SimSeed, i)
			fr, err := runFast(&sc, a, seed, 1, false)
			if err != nil {
				return nil, err
			}
			checkInvariants(rep, fmt.Sprintf("fast[%d]", i), fr.res, a.size())
			checkFleet(rep, fmt.Sprintf("fast[%d]", i), &sc, fr)
			checkTree(rep, fmt.Sprintf("fast[%d]", i), fr)
			rep.keepTrace(fmt.Sprintf("fast%d", i), "fast", seed, 0, fr.trace)
			fasts = append(fasts, fr)
		}
		if err := checkFastIdentity(rep, &sc, a, fasts[0]); err != nil {
			return nil, err
		}
		checkDifferential(rep, &sc, ref, fasts)
		rep.Differential = true
	}

	if sc.Analytic() && a.hitCover >= 1 {
		checkAnalytic(rep, &sc, a, ref)
		rep.Analytic = true
	}
	return rep, nil
}

// checkFastIdentity audits the fast driver's own determinism contract: its
// Workers count and quiescent-tick fast path are throughput knobs, so
// re-running the first replica with parallel workers, and again with the
// fast path disabled, must reproduce its serialized output byte for byte.
func checkFastIdentity(rep *Report, sc *Scenario, a *artifacts, serial *runOutput) error {
	fw := sc.FastWorkers
	if fw < 2 {
		fw = 2 // pre-field corpus seeds still get a parallel check
	}
	want := serializeRun(serial)
	seed := fastReplicaSeed(sc.SimSeed, 0)
	variants := []struct {
		label   string
		workers int
		noskip  bool
	}{
		{fmt.Sprintf("Workers=%d", fw), fw, false},
		{"DisableTickSkip", 1, true},
	}
	for _, v := range variants {
		again, err := runFast(sc, a, seed, v.workers, v.noskip)
		if err != nil {
			return err
		}
		if got := serializeRun(again); got != want {
			rep.addf(OracleFastIdentity,
				"fast run with %s diverged from the serial fast run: %s",
				v.label, firstDiff(want, got))
		}
	}
	return nil
}

// checkInvariants audits the unconditional per-run properties.
func checkInvariants(rep *Report, label string, res *sim.Result, popSize int) {
	prev := -1
	for i, ti := range res.Series {
		if got := ti.Outcomes.Total(); got != ti.Probes {
			rep.addf(OracleInvariant, "%s tick %d: outcomes sum to %d, probes %d", label, i, got, ti.Probes)
			break
		}
		if prev >= 0 && ti.Infected < prev {
			rep.addf(OracleInvariant, "%s tick %d: infected fell %d → %d", label, i, prev, ti.Infected)
			break
		}
		if prev >= 0 && ti.Infected-prev != ti.NewInfections {
			rep.addf(OracleInvariant, "%s tick %d: delta %d but NewInfections %d", label, i, ti.Infected-prev, ti.NewInfections)
			break
		}
		if ti.Infected > popSize {
			rep.addf(OracleInvariant, "%s tick %d: infected %d > population %d", label, i, ti.Infected, popSize)
			break
		}
		prev = ti.Infected
	}
	var cum sim.OutcomeCounts
	for _, ti := range res.Series {
		cum.Merge(ti.Outcomes)
	}
	if cum != res.Outcomes {
		rep.addf(OracleInvariant, "%s: cumulative outcomes %v != tick sum %v", label, res.Outcomes, cum)
	}
	if n := len(res.Series); n > 0 && res.Series[n-1] != res.Final {
		rep.addf(OracleInvariant, "%s: Final does not match last tick", label)
	}
	recorded := 0
	for _, it := range res.InfectionTime {
		if it >= 0 {
			recorded++
		}
	}
	if recorded != res.Final.Infected {
		rep.addf(OracleInvariant, "%s: %d infection times for %d infected", label, recorded, res.Final.Infected)
	}
}

// checkTree audits the run's flight recorder against its result: the
// infection events must reconstruct into a provenance tree that covers
// every infection exactly once (tree-size family), with every edge's time
// equal to the victim's recorded infection time and strictly after the
// infector's own infection (tree-time family). Seeds must be rooted at
// t=0. One violation per family per run is enough to localize the bug.
func checkTree(rep *Report, label string, out *runOutput) {
	if out.trace == nil {
		return
	}
	tree, err := trace.BuildTree(out.trace.Events())
	if err != nil {
		rep.addf(OracleTreeSize, "%s: trace does not reconstruct a tree: %v", label, err)
		return
	}
	if got, want := tree.Size(), out.res.Final.Infected; got != want {
		rep.addf(OracleTreeSize, "%s: tree covers %d hosts, run infected %d", label, got, want)
	}
	for _, id := range tree.Seeds {
		if id >= len(out.res.InfectionTime) || out.res.InfectionTime[id] != 0 {
			rep.addf(OracleTreeTime, "%s: seed %d not recorded as infected at t=0", label, id)
			return
		}
	}
	for _, e := range tree.Edges {
		if e.Victim >= len(out.res.InfectionTime) {
			rep.addf(OracleTreeTime, "%s: edge victim %d outside population", label, e.Victim)
			return
		}
		if it := out.res.InfectionTime[e.Victim]; it != e.T {
			rep.addf(OracleTreeTime,
				"%s: edge infects %d at t=%v but InfectionTime says %v", label, e.Victim, e.T, it)
			return
		}
		if e.Infector >= 0 {
			if e.Infector >= len(out.res.InfectionTime) {
				rep.addf(OracleTreeTime, "%s: infector %d outside population", label, e.Infector)
				return
			}
			pt := out.res.InfectionTime[e.Infector]
			if pt < 0 || pt >= e.T {
				rep.addf(OracleTreeTime,
					"%s: edge %d→%d at t=%v but infector's own infection is at %v",
					label, e.Infector, e.Victim, e.T, pt)
				return
			}
		}
	}
}

// checkTreeAdjacency audits graph-world provenance (tree-adjacency
// family): on a neighbor graph both drivers record true infectors, so
// every non-seed edge must carry an attributed infector and connect two
// adjacent nodes of the world, and no sensor node may appear anywhere
// in the tree — not as a victim, and not as a seed. One violation per
// run localizes the bug.
func checkTreeAdjacency(rep *Report, label string, a *artifacts, out *runOutput) {
	if a.graph == nil || out.trace == nil {
		return
	}
	tree, err := trace.BuildTree(out.trace.Events())
	if err != nil {
		return // the tree-size family already reported this
	}
	g := a.graph
	for _, id := range tree.Seeds {
		if id >= 0 && id < g.Nodes() && g.IsSensor(id) {
			rep.addf(OracleTreeEdge, "%s: sensor node %d seeded the outbreak", label, id)
			return
		}
	}
	for _, e := range tree.Edges {
		if e.Infector < 0 {
			rep.addf(OracleTreeEdge,
				"%s: graph infection of %d has no attributed infector", label, e.Victim)
			return
		}
		if e.Victim >= 0 && e.Victim < g.Nodes() && g.IsSensor(e.Victim) {
			rep.addf(OracleTreeEdge, "%s: sensor node %d was infected", label, e.Victim)
			return
		}
		if !graphAdjacent(g, e.Infector, e.Victim) {
			rep.addf(OracleTreeEdge,
				"%s: infection edge %d→%d is not an adjacency of the world", label, e.Infector, e.Victim)
			return
		}
	}
}

// graphAdjacent reports whether v appears in u's sorted neighbor list.
func graphAdjacent(g topo.Graph, u, v int) bool {
	if u < 0 || u >= g.Nodes() || v < 0 || v >= g.Nodes() {
		return false
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return int(nbrs[i]) >= v })
	return i < len(nbrs) && int(nbrs[i]) == v
}

// checkFleet audits sensor accounting: the fleet's recorded hits must
// equal the run's cumulative sensor-hit outcomes — every monitored probe
// classified as a sensor hit reaches the fleet exactly once — except under
// duplicated reporting, where each hit may arrive twice.
func checkFleet(rep *Report, label string, sc *Scenario, out *runOutput) {
	if out.fleet == nil {
		return
	}
	hits := out.fleet.TotalHits()
	outcomes := out.res.Outcomes[sim.OutcomeSensorHit]
	dup := sc.Faults != nil && sc.Faults.Reporting != nil && sc.Faults.Reporting.DupProb > 0
	switch {
	case !dup && hits != outcomes:
		rep.addf(OracleFleet, "%s: fleet recorded %d hits, outcomes say %d", label, hits, outcomes)
	case dup && (hits < outcomes || hits > 2*outcomes):
		rep.addf(OracleFleet, "%s: fleet recorded %d hits outside [%d,%d] under duplication", label, hits, outcomes, 2*outcomes)
	}
}

// checkDifferential compares the exact trajectory against the fast-replica
// envelope at two prevalence thresholds, plus the sensor-hit rate when
// there is enough signal.
func checkDifferential(rep *Report, sc *Scenario, ref *runOutput, fasts []*runOutput) {
	comfort := comfortFraction * sc.MaxSeconds
	for _, f := range [...]float64{0.3, 0.6} {
		te, okE := ref.res.TimeToFraction(f)
		var lo, hi float64
		reached := 0
		for _, fr := range fasts {
			tf, ok := fr.res.TimeToFraction(f)
			if !ok {
				continue
			}
			if reached == 0 || tf < lo {
				lo = tf
			}
			if reached == 0 || tf > hi {
				hi = tf
			}
			reached++
		}
		switch {
		case okE && reached == len(fasts):
			if te > hi*trajRatioSlack+2*sc.TickSeconds || te < lo/trajRatioSlack-2*sc.TickSeconds {
				rep.addf(OracleDifferential,
					"time to %.0f%%: exact %.4gs outside fast envelope [%.4g,%.4g]s ×%.2g",
					100*f, te, lo, hi, trajRatioSlack)
			}
		case okE && reached == 0 && te < comfort:
			rep.addf(OracleDifferential,
				"exact reached %.0f%% at %.4gs but no fast replica ever did", 100*f, te)
		case !okE && reached == len(fasts) && hi < comfort:
			rep.addf(OracleDifferential,
				"every fast replica reached %.0f%% by %.4gs but exact never did", 100*f, hi)
		}
	}

	// Sensor-hit rate: per-probe monitored-landing rates must agree across
	// drivers when the expected counts are large enough to compare.
	if ref.fleet != nil {
		exactHits := ref.res.Outcomes[sim.OutcomeSensorHit] + ref.res.Outcomes[sim.OutcomeSensorDown]
		var fastHits uint64
		for _, fr := range fasts {
			fastHits += fr.res.Outcomes[sim.OutcomeSensorHit] + fr.res.Outcomes[sim.OutcomeSensorDown]
		}
		meanFast := float64(fastHits) / float64(len(fasts))
		if exactHits >= minSensorHits && meanFast >= minSensorHits {
			if r := float64(exactHits) / meanFast; r > sensorRateBand || r < 1/sensorRateBand {
				rep.addf(OracleDifferential,
					"sensor landings: exact %d vs fast mean %.1f (ratio %.2f)", exactHits, meanFast, r)
			}
		}
	}
}

// checkAnalytic compares the exact run against the closed-form SI model
// (β = rate·N/Ω with Ω the hit-list size) and asserts FitBeta recovers the
// configured β from the simulated curve.
func checkAnalytic(rep *Report, sc *Scenario, a *artifacts, ref *runOutput) {
	omega := float64(a.hitList.Size())
	si, err := epidemic.NewSI(sc.ScanRate, sc.PopSize, sc.SeedHosts, omega)
	if err != nil {
		rep.addf(OracleAnalytic, "SI model rejected scenario parameters: %v", err)
		return
	}
	predicted, err := si.TimeToFraction(0.5)
	if err == nil && predicted < comfortFraction*sc.MaxSeconds {
		measured, ok := ref.res.TimeToFraction(0.5)
		switch {
		case !ok:
			rep.addf(OracleAnalytic,
				"SI predicts 50%% at %.4gs but the run never got there (final %d/%d)",
				predicted, ref.res.Final.Infected, sc.PopSize)
		default:
			if r := measured / predicted; r < analyticHalfLo || r > analyticHalfHi {
				rep.addf(OracleAnalytic,
					"half-infection at %.4gs, SI predicts %.4gs (ratio %.2f)", measured, predicted, r)
			}
		}
	}

	times := make([]float64, len(ref.res.Series))
	infected := make([]float64, len(ref.res.Series))
	for i, ti := range ref.res.Series {
		times[i] = ti.Time
		infected[i] = float64(ti.Infected)
	}
	beta, n, err := testFitBeta(times, infected, float64(sc.PopSize))
	if err != nil || n < minFitPoints {
		return // not enough curve to fit; nothing to audit
	}
	if r := beta / si.Beta; r < fitBetaRatioLo || r > fitBetaRatioHi {
		rep.addf(OracleAnalytic,
			"FitBeta recovered %.4g, configured β=%.4g (ratio %.2f, %d points)", beta, si.Beta, r, n)
	}
}

// firstDiff locates the first line where two serialized runs disagree.
func firstDiff(a, b string) string {
	la, lb := splitLines(a), splitLines(b)
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
