package xcheck

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestTreeOraclesCatchCorruption checks both provenance oracle families
// against a real traced run, then corrupts the run in effigy — the moral
// equivalent of an attribution or timing bug in a driver — and requires
// each family to fire on its own corruption.
func TestTreeOraclesCatchCorruption(t *testing.T) {
	sc := exactOnlyScenario()
	a, err := build(&sc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := runExact(&sc, a, 1)
	if err != nil {
		t.Fatal(err)
	}

	violations := func(mutate func()) []Violation {
		if mutate != nil {
			mutate()
		}
		rep := &Report{Scenario: sc}
		checkTree(rep, "exact", out)
		return rep.Violations
	}
	fired := func(vs []Violation, oracle string) bool {
		for _, v := range vs {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}

	if vs := violations(nil); len(vs) != 0 {
		t.Fatalf("baseline traced run not clean: %+v", vs)
	}

	// Timing corruption: shift one victim's recorded infection time. The
	// trace edge no longer matches InfectionTime → tree-time must fire.
	var shifted int
	for id, it := range out.res.InfectionTime {
		if it > 0 {
			shifted = id
			break
		}
	}
	orig := out.res.InfectionTime[shifted]
	if vs := violations(func() { out.res.InfectionTime[shifted] = orig + 0.5 }); !fired(vs, OracleTreeTime) {
		t.Fatalf("shifted infection time not flagged by %s: %+v", OracleTreeTime, vs)
	}
	out.res.InfectionTime[shifted] = orig

	// Coverage corruption: claim one more infection than the trace
	// attributes → tree-size must fire.
	if vs := violations(func() { out.res.Final.Infected++ }); !fired(vs, OracleTreeSize) {
		t.Fatalf("inflated infection count not flagged by %s: %+v", OracleTreeSize, vs)
	}
	out.res.Final.Infected--

	if vs := violations(nil); len(vs) != 0 {
		t.Fatalf("run not clean after restoring corruption: %+v", vs)
	}
}

// TestWriteTraceArtifacts: a report's retained recorders dump as NDJSON
// plus manifests that carry the scenario hash, canonical JSON, and run
// provenance — the artifact bundle CI uploads when a batch fails.
func TestWriteTraceArtifacts(t *testing.T) {
	sc := exactOnlyScenario()
	rep, err := CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("scenario not clean: %+v", rep.Violations)
	}

	dir := t.TempDir()
	paths, err := rep.WriteTraceArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d artifacts, want trace + manifest: %v", len(paths), paths)
	}

	var ndjson, manifest string
	for _, p := range paths {
		switch {
		case strings.HasSuffix(p, ".trace.ndjson"):
			ndjson = p
		case strings.HasSuffix(p, ".manifest.json"):
			manifest = p
		default:
			t.Fatalf("unexpected artifact %s", p)
		}
	}

	f, err := os.Open(ndjson)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadNDJSON(f)
	f.Close()
	if err != nil {
		t.Fatalf("artifact trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("artifact trace is empty")
	}
	if _, err := trace.BuildTree(events); err != nil {
		t.Fatalf("artifact trace does not reconstruct: %v", err)
	}

	var m trace.Manifest
	body, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Driver != "exact" || m.Seed != sc.SimSeed || m.Workers != 1 {
		t.Errorf("manifest provenance wrong: %+v", m)
	}
	if want := trace.HashJSON(sc.JSON()); m.ScenarioHash != want {
		t.Errorf("manifest hash %s != scenario hash %s", m.ScenarioHash, want)
	}
	back, err := ParseScenario(m.Scenario)
	if err != nil {
		t.Fatalf("manifest scenario does not round-trip: %v", err)
	}
	if string(back.JSON()) != string(sc.JSON()) {
		t.Errorf("manifest scenario %s != original %s", back.JSON(), sc.JSON())
	}
}
