package xcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
)

// TestCheckpointResumeByteIdentity is the harness's resume oracle: a batch
// interrupted mid-sweep and resumed from its checkpoint must produce
// byte-identical reports to an uninterrupted batch. Cached and freshly
// computed reports flow through the same JSON encoding, so any drift —
// nondeterministic checking, lossy report serialization — shows up as a
// byte diff.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	checkSeed := func(_ context.Context, id uint64) (Report, error) {
		rep, err := CheckScenario(Generate(id))
		if err != nil {
			return Report{}, err
		}
		return *rep, nil
	}
	key := func(_ int, id uint64) string { return fmt.Sprintf("seed-%d", id) }

	// Uninterrupted reference: no checkpoint.
	want, err := sweep.Map(context.Background(), seeds, checkSeed, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint only the first half, then resume the full
	// batch from the same file — the first two reports come from the cache,
	// the rest run fresh.
	path := filepath.Join(t.TempDir(), "xcheck.ckpt")
	cp, err := sweep.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.MapCheckpointed(context.Background(), seeds[:2], key, checkSeed, cp, sweep.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	cp, err = sweep.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := cp.Len(); n != 2 {
		t.Fatalf("reopened checkpoint holds %d entries, want 2", n)
	}
	got, err := sweep.MapCheckpointed(context.Background(), seeds, key, checkSeed, cp, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("resumed batch differs from uninterrupted batch:\n%s\n%s", wantJSON, gotJSON)
	}
}
