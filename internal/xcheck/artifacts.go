package xcheck

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

// namedTrace pairs one run's flight recorder with the provenance needed
// to build its manifest.
type namedTrace struct {
	label   string // file-name component: "exact", "fast0", …
	driver  string
	seed    uint64
	workers int
	rec     *trace.Recorder
}

// keepTrace retains a run's recorder for artifact dumping. Nil recorders
// (runs that predate the flight recorder, or test doubles) are skipped.
func (r *Report) keepTrace(label, driver string, seed uint64, workers int, rec *trace.Recorder) {
	if rec == nil {
		return
	}
	r.traces = append(r.traces, namedTrace{label: label, driver: driver, seed: seed, workers: workers, rec: rec})
}

// WriteTraceArtifacts dumps every retained flight recorder into dir as
// NDJSON plus a provenance manifest per trace — scenario hash and
// canonical JSON, driver, seed, worker count, toolchain — so a flagged
// scenario can be replayed and diffed offline (cmd/hotspottrace). File
// names are <scenario-hash-prefix>-<label>.trace.ndjson and
// .manifest.json; the returned paths list everything written. Callers
// normally invoke this only when the report has violations.
func (r *Report) WriteTraceArtifacts(dir string) ([]string, error) {
	if len(r.traces) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xcheck: trace artifacts: %w", err)
	}
	scJSON := r.Scenario.JSON()
	short := trace.HashJSON(scJSON)[:12]
	var paths []string
	for _, nt := range r.traces {
		base := filepath.Join(dir, fmt.Sprintf("%s-%s", short, nt.label))
		tracePath := base + ".trace.ndjson"
		f, err := os.Create(tracePath)
		if err != nil {
			return paths, fmt.Errorf("xcheck: trace artifacts: %w", err)
		}
		werr := nt.rec.WriteNDJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return paths, fmt.Errorf("xcheck: trace artifacts: %w", werr)
		}
		paths = append(paths, tracePath)

		m := trace.NewManifest(nt.rec)
		m.Driver = nt.driver
		m.Seed = nt.seed
		m.Workers = nt.workers
		m.SetScenario(scJSON)
		manifestPath := base + ".manifest.json"
		mf, err := os.Create(manifestPath)
		if err != nil {
			return paths, fmt.Errorf("xcheck: trace artifacts: %w", err)
		}
		werr = m.WriteJSON(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return paths, fmt.Errorf("xcheck: trace artifacts: %w", werr)
		}
		paths = append(paths, manifestPath)
	}
	return paths, nil
}
