package xcheck

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// graphScenarioFixed is a hand-built proximity-graph case, sized so one
// CheckScenario (two exact runs + three fast runs) stays cheap.
func graphScenarioFixed() Scenario {
	return Scenario{
		Topology:     TopoProxGraph,
		GraphNodes:   400,
		GraphDegree:  6,
		GraphSensors: 20,
		GraphSeed:    31,
		SimSeed:      13,
		ScanRate:     2,
		TickSeconds:  1,
		MaxSeconds:   40,
		SeedHosts:    4,
		Workers:      4,
		FastWorkers:  3,
	}
}

// TestGraphScenarioCheckClean: the hand-built graph scenario must pass
// every applicable oracle, skip the trajectory differential (replica
// seeds pick different outbreak origins on a spatial world), and
// actually spread past its seeds so the tree oracles see real edges.
func TestGraphScenarioCheckClean(t *testing.T) {
	sc := graphScenarioFixed()
	rep, err := CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("[%s] %s", v.Oracle, v.Detail)
	}
	if rep.Differential || rep.Analytic {
		t.Fatalf("graph scenario ran IPv4-only oracles: differential=%v analytic=%v",
			rep.Differential, rep.Analytic)
	}
	if rep.FinalInfected <= sc.SeedHosts {
		t.Fatalf("outbreak never spread past the %d seeds; adjust the scenario", sc.SeedHosts)
	}
}

// TestGeneratorEmitsGraphScenarios: the topology dimension must actually
// appear in generator output at a useful rate, and generated graph
// scenarios must run clean end to end.
func TestGeneratorEmitsGraphScenarios(t *testing.T) {
	var graphIDs []uint64
	for id := uint64(1); id <= 200; id++ {
		if Generate(id).Topology == TopoProxGraph {
			graphIDs = append(graphIDs, id)
		}
	}
	// 1-in-8 gate over 200 seeds: anything under 10 means the gate broke.
	if len(graphIDs) < 10 {
		t.Fatalf("only %d of 200 generated scenarios are graph worlds", len(graphIDs))
	}
	n := 3
	if testing.Short() {
		n = 1
	}
	for _, id := range graphIDs[:n] {
		sc := Generate(id)
		rep, err := CheckScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", id, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d [%s]: %s", id, v.Oracle, v.Detail)
		}
	}
}

// TestGraphValidateRejects spot-checks the graph corner of the scenario
// space: IPv4 dimensions on a graph world, graph dimensions on the IPv4
// world, and hostile graph shapes must all fail validation.
func TestGraphValidateRejects(t *testing.T) {
	mutations := map[string]func(*Scenario){
		"worm on graph":       func(s *Scenario) { s.Worm = WormUniform },
		"pop on graph":        func(s *Scenario) { s.PopSize = 100 },
		"nat on graph":        func(s *Scenario) { s.NATFraction = 0.2 },
		"loss on graph":       func(s *Scenario) { s.LossRate = 0.1 },
		"sensors on graph":    func(s *Scenario) { s.Sensors = 4; s.SensorThreshold = 1 },
		"hit list on graph":   func(s *Scenario) { s.HitListSlash16s = 2 },
		"tiny graph":          func(s *Scenario) { s.GraphNodes = 10 },
		"huge graph":          func(s *Scenario) { s.GraphNodes = maxPopSize + 1 },
		"zero degree":         func(s *Scenario) { s.GraphDegree = 0 },
		"excess degree":       func(s *Scenario) { s.GraphDegree = 17 },
		"nan radius":          func(s *Scenario) { s.GraphRadius = nan() },
		"negative radius":     func(s *Scenario) { s.GraphRadius = -0.1 },
		"oversized radius":    func(s *Scenario) { s.GraphRadius = 2 },
		"sensor majority":     func(s *Scenario) { s.GraphSensors = s.GraphNodes/2 + 1 },
		"seeds past sensors":  func(s *Scenario) { s.SeedHosts = s.GraphNodes - s.GraphSensors + 1 },
		"stop past universe":  func(s *Scenario) { s.StopWhenInfect = s.GraphNodes + 1 },
		"fractional-ppt rate": func(s *Scenario) { s.ScanRate = 0.3 },
	}
	for name, mutate := range mutations {
		sc := graphScenarioFixed()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// The reverse boundary: graph dimensions on the (default) IPv4 world.
	sc := analyticScenario()
	sc.GraphNodes = 100
	if err := sc.Validate(); err == nil {
		t.Error("graph_nodes on the IPv4 topology validated")
	}
	sc = analyticScenario()
	sc.Topology = "hypercube"
	if err := sc.Validate(); err == nil {
		t.Error("unknown topology validated")
	}
}

// TestTreeAdjacencyOracleCatchesCorruption feeds the tree-adjacency
// oracle hand-corrupted provenance: an infection edge between two
// non-adjacent nodes, an unattributed infector, and an infected sensor.
// Each must fire the oracle; the run's genuine trace must not.
func TestTreeAdjacencyOracleCatchesCorruption(t *testing.T) {
	sc := graphScenarioFixed()
	a, err := build(&sc)
	if err != nil {
		t.Fatal(err)
	}
	g := a.graph

	// A susceptible non-adjacent pair and a sensor with a neighbor, found
	// by scan: the world is deterministic, so these exist or the test
	// fails loudly.
	nonAdj := [2]int{-1, -1}
	sensorVictim, sensorSrc := -1, -1
	for u := 0; u < g.Nodes() && (nonAdj[0] < 0 || sensorVictim < 0); u++ {
		if g.IsSensor(u) {
			if nbrs := g.Neighbors(u); sensorVictim < 0 && len(nbrs) > 0 && !g.IsSensor(int(nbrs[0])) {
				sensorVictim, sensorSrc = u, int(nbrs[0])
			}
			continue
		}
		for v := u + 1; nonAdj[0] < 0 && v < g.Nodes(); v++ {
			if !g.IsSensor(v) && !graphAdjacent(g, u, v) {
				nonAdj = [2]int{u, v}
			}
		}
	}
	if nonAdj[0] < 0 || sensorVictim < 0 {
		t.Fatal("world has no non-adjacent pair or no connected sensor; enlarge it")
	}

	cases := []struct {
		name   string
		record func(rec *trace.Recorder)
		expect string
	}{
		{"non-adjacent edge", func(rec *trace.Recorder) {
			rec.AppendInfection(0, 0, -1, nonAdj[0], uint32(nonAdj[0]), "seed")
			rec.AppendInfection(1, 1, nonAdj[0], nonAdj[1], uint32(nonAdj[1]), "edge")
		}, "not an adjacency"},
		{"unattributed infector", func(rec *trace.Recorder) {
			rec.AppendInfection(0, 0, -1, nonAdj[0], uint32(nonAdj[0]), "seed")
			rec.AppendInfection(1, 1, -1, nonAdj[1], uint32(nonAdj[1]), "edge")
		}, "no attributed infector"},
		{"infected sensor", func(rec *trace.Recorder) {
			rec.AppendInfection(0, 0, -1, sensorSrc, uint32(sensorSrc), "seed")
			rec.AppendInfection(1, 1, sensorSrc, sensorVictim, uint32(sensorVictim), "edge")
		}, "sensor node"},
	}
	for _, tc := range cases {
		rec := trace.NewRecorder(0)
		tc.record(rec)
		rep := &Report{}
		checkTreeAdjacency(rep, "test", a, &runOutput{trace: rec})
		found := false
		for _, v := range rep.Violations {
			if v.Oracle == OracleTreeEdge && strings.Contains(v.Detail, tc.expect) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: not flagged; violations: %+v", tc.name, rep.Violations)
		}
	}

	// And a genuine run stays clean under the same oracle.
	ref, err := runExact(&sc, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{}
	checkTreeAdjacency(rep, "exact", a, ref)
	if len(rep.Violations) != 0 {
		t.Fatalf("genuine run flagged: %+v", rep.Violations)
	}
}

// TestGraphShrinkReduces: the shrinker's graph moves must make progress
// on a graph scenario while preserving the violation, exercised through
// the injected-corruption hook as the IPv4 acceptance test does.
func TestGraphShrinkReduces(t *testing.T) {
	shrunk := shrinkWith(graphScenarioFixed(), func(c Scenario) bool {
		return true // every candidate "reproduces": pure reduction power test
	})
	if shrunk.GraphNodes >= graphScenarioFixed().GraphNodes {
		t.Fatalf("graph shrink made no progress: %d nodes", shrunk.GraphNodes)
	}
	if shrunk.Validate() != nil {
		t.Fatalf("shrunken graph scenario invalid: %+v", shrunk)
	}
	if shrunk.Topology != TopoProxGraph {
		t.Fatal("shrinker changed the topology")
	}
}
