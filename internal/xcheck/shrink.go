package xcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// shrinkBudget caps the number of candidate scenarios the shrinker will
// check; each check is a full CheckScenario run, so the budget bounds
// shrinking to a predictable multiple of one reproduction.
const shrinkBudget = 48

// Shrink reduces a violating scenario to a smaller one that still
// violates the same oracle. It repeatedly tries a fixed list of
// reductions — shorter horizon, smaller population, fewer features —
// keeping any candidate for which the oracle still fires, until a full
// pass makes no progress or the budget runs out. The reproduction
// predicate is injected so tests can shrink against hooked-in bugs.
//
// Shrink never fails: on a flaky or vanishing violation it simply returns
// the smallest scenario that still reproduced.
func Shrink(sc Scenario, oracle string) Scenario {
	return shrinkWith(sc, func(c Scenario) bool {
		rep, err := CheckScenario(c)
		if err != nil {
			return false
		}
		for _, v := range rep.Violations {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	})
}

func shrinkWith(sc Scenario, violates func(Scenario) bool) Scenario {
	budget := shrinkBudget
	try := func(c Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		c.ID = 0 // shrunk scenarios are hand-shaped, not generator output
		if c.Validate() != nil {
			return false
		}
		return violates(c)
	}
	for progress := true; progress && budget > 0; {
		progress = false
		for _, reduce := range reductions {
			if c, changed := reduce(sc); changed && try(c) {
				sc = c
				progress = true
			}
		}
	}
	return sc
}

// reductions are the shrinker's moves, ordered cheapest-win-first: each
// takes a scenario and returns a strictly smaller candidate (changed =
// false when the move does not apply).
var reductions = []func(Scenario) (Scenario, bool){
	// Halve the horizon.
	func(s Scenario) (Scenario, bool) {
		ticks := int(s.MaxSeconds / s.TickSeconds)
		if ticks < 10 {
			return s, false
		}
		s.MaxSeconds = float64(ticks/2) * s.TickSeconds
		for i := range s.SensorOutages {
			if s.SensorOutages[i].Start >= s.MaxSeconds {
				s.SensorOutages[i].Start = 0
			}
		}
		return s, true
	},
	// Halve the population (and clamp dependent counts).
	func(s Scenario) (Scenario, bool) {
		if s.PopSize < 60 {
			return s, false
		}
		s.PopSize /= 2
		if s.SeedHosts > s.PopSize {
			s.SeedHosts = s.PopSize
		}
		if s.StopWhenInfect > s.PopSize {
			s.StopWhenInfect = s.PopSize
		}
		return s, true
	},
	// Drop the fault plan.
	func(s Scenario) (Scenario, bool) {
		if s.Faults == nil {
			return s, false
		}
		s.Faults = nil
		return s, true
	},
	// Drop scheduled sensor outages.
	func(s Scenario) (Scenario, bool) {
		if len(s.SensorOutages) == 0 {
			return s, false
		}
		s.SensorOutages = nil
		return s, true
	},
	// Drop the sensor fleet.
	func(s Scenario) (Scenario, bool) {
		if s.Sensors == 0 {
			return s, false
		}
		s.Sensors, s.SensorThreshold, s.SensorSeed, s.SensorOutages = 0, 0, 0, nil
		return s, true
	},
	// Flatten NAT.
	func(s Scenario) (Scenario, bool) {
		if s.NATFraction == 0 {
			return s, false
		}
		s.NATFraction, s.NATHostsPerSite, s.NATSeed = 0, 0, 0
		return s, true
	},
	// Clear the environment.
	func(s Scenario) (Scenario, bool) {
		if s.LossRate == 0 && s.EgressDrop == 0 {
			return s, false
		}
		s.LossRate, s.EgressDrop = 0, 0
		return s, true
	},
	// Reduce workers to the smallest still-parallel count.
	func(s Scenario) (Scenario, bool) {
		if s.Workers <= 2 {
			return s, false
		}
		s.Workers = 2
		return s, true
	},
	// Likewise for the fast driver's worker count.
	func(s Scenario) (Scenario, bool) {
		if s.FastWorkers <= 2 {
			return s, false
		}
		s.FastWorkers = 2
		return s, true
	},
	// Halve the scan rate.
	func(s Scenario) (Scenario, bool) {
		if s.ScanRate*s.TickSeconds < 4 {
			return s, false
		}
		s.ScanRate /= 2
		return s, true
	},
	// Tighten the population's footprint.
	func(s Scenario) (Scenario, bool) {
		if s.Slash16s <= s.Slash8s || s.Slash16s < 4 {
			return s, false
		}
		s.Slash16s /= 2
		if s.Slash16s < s.Slash8s {
			s.Slash16s = s.Slash8s
		}
		if s.HitListSlash16s > s.Slash16s {
			s.HitListSlash16s = s.Slash16s
		}
		return s, true
	},
	// Halve the graph world (graph scenarios only; IPv4 scenarios have
	// GraphNodes 0 and never take this move).
	func(s Scenario) (Scenario, bool) {
		if s.Topology != TopoProxGraph || s.GraphNodes < 40 {
			return s, false
		}
		s.GraphNodes /= 2
		if s.GraphSensors > s.GraphNodes/2 {
			s.GraphSensors = s.GraphNodes / 2
		}
		if sus := s.GraphNodes - s.GraphSensors; s.SeedHosts > sus {
			s.SeedHosts = sus
		}
		if s.StopWhenInfect > s.GraphNodes {
			s.StopWhenInfect = s.GraphNodes
		}
		return s, true
	},
	// Drop the graph's sensor nodes.
	func(s Scenario) (Scenario, bool) {
		if s.Topology != TopoProxGraph || s.GraphSensors == 0 {
			return s, false
		}
		s.GraphSensors = 0
		return s, true
	},
}

// WriteCorpusSeed stores the scenario as a Go fuzz corpus seed for
// FuzzScenarioJSON under dir (typically internal/xcheck/testdata/fuzz/
// FuzzScenarioJSON, where `go test` replays it forever after). It returns
// the written path.
func WriteCorpusSeed(dir string, sc Scenario) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("xcheck: %w", err)
	}
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(sc.JSON())) + ")\n"
	// Graph scenarios have no worm name; tag them by topology instead so
	// corpus filenames stay informative.
	tag := string(sc.Worm)
	if tag == "" {
		tag = sc.Topology
		if tag == "" {
			tag = TopoIPv4
		}
	}
	name := fmt.Sprintf("xcheck-%016x-%s", sc.ID, tag)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return "", fmt.Errorf("xcheck: %w", err)
	}
	return path, nil
}
