package xcheck

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/epidemic"
	"repro/internal/sim"
)

// analyticScenario is a hand-built hit-list case that satisfies every
// oracle's eligibility: full hit-list coverage, flat population, transparent
// network, no faults. β = rate·N/Ω ≈ 0.12/s, so β·T ≈ 4.9 and the sigmoid
// completes well inside the horizon.
func analyticScenario() Scenario {
	return Scenario{
		Worm:            WormHitList,
		PopSize:         200,
		Slash8s:         2,
		Slash16s:        3,
		HitListSlash16s: 3,
		PopSeed:         7,
		SimSeed:         11,
		ScanRate:        120,
		TickSeconds:     1,
		MaxSeconds:      40,
		SeedHosts:       4,
		Workers:         4,
	}
}

// exactOnlyScenario is a cheap Blaster case — no fast model, no analytic
// eligibility — so a CheckScenario costs exactly two exact runs. The hook
// tests shrink against it, which keeps the shrinker's reproduction runs
// fast.
func exactOnlyScenario() Scenario {
	return Scenario{
		Worm:        WormBlaster,
		PopSize:     150,
		Slash8s:     3,
		Slash16s:    6,
		PopSeed:     5,
		SimSeed:     17,
		ScanRate:    100,
		TickSeconds: 1,
		MaxSeconds:  30,
		SeedHosts:   4,
		Workers:     4,
	}
}

// TestSeededBatch is the tier-1 slice of the cross-check sweep: the first
// few generator seeds must run clean. cmd/xcheck runs the wide version.
func TestSeededBatch(t *testing.T) {
	n := uint64(10)
	if testing.Short() {
		n = 3
	}
	for id := uint64(1); id <= n; id++ {
		sc := Generate(id)
		rep, err := CheckScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", id, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d [%s]: %s", id, v.Oracle, v.Detail)
		}
	}
}

// TestGenerateDeterministic: the seed→scenario mapping is pure, and every
// generated scenario sits inside the validated space.
func TestGenerateDeterministic(t *testing.T) {
	for id := uint64(1); id <= 300; id++ {
		sc := Generate(id)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d generates invalid scenario: %v", id, err)
		}
		again := Generate(id)
		if !bytes.Equal(sc.JSON(), again.JSON()) {
			t.Fatalf("seed %d is not deterministic:\n%s\n%s", id, sc.JSON(), again.JSON())
		}
	}
}

// TestParseScenarioStrict: corpus seeds with unknown fields must be
// rejected, not silently half-parsed, so the corpus cannot rot when the
// schema evolves.
func TestParseScenarioStrict(t *testing.T) {
	sc := analyticScenario()
	if _, err := ParseScenario(sc.JSON()); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	mangled := bytes.Replace(sc.JSON(), []byte(`"worm"`), []byte(`"wyrm"`), 1)
	if _, err := ParseScenario(mangled); err == nil {
		t.Fatal("scenario with unknown field parsed without error")
	}
	if _, err := ParseScenario([]byte("{")); err == nil {
		t.Fatal("truncated JSON parsed without error")
	}
}

// TestValidateRejects spot-checks the hostile corners of the scenario
// space: each mutation must fail validation, never panic or pass.
func TestValidateRejects(t *testing.T) {
	mutations := map[string]func(*Scenario){
		"unknown worm":          func(s *Scenario) { s.Worm = "flash" },
		"zero pop":              func(s *Scenario) { s.PopSize = 0 },
		"huge pop":              func(s *Scenario) { s.PopSize = maxPopSize + 1 },
		"nan rate":              func(s *Scenario) { s.ScanRate = nan() },
		"zero tick":             func(s *Scenario) { s.TickSeconds = 0 },
		"inf horizon":           func(s *Scenario) { s.MaxSeconds = inf() },
		"excess ppt":            func(s *Scenario) { s.ScanRate = 2 * maxScenarioPPT },
		"excess ticks":          func(s *Scenario) { s.MaxSeconds = 2 * maxTicksPerRun * s.TickSeconds },
		"zero workers":          func(s *Scenario) { s.Workers = 0 },
		"excess workers":        func(s *Scenario) { s.Workers = maxWorkers + 1 },
		"negative fast workers": func(s *Scenario) { s.FastWorkers = -1 },
		"excess fast workers":   func(s *Scenario) { s.FastWorkers = maxWorkers + 1 },
		"zero seeds":            func(s *Scenario) { s.SeedHosts = 0 },
		"nan loss":              func(s *Scenario) { s.LossRate = nan() },
		"total loss":            func(s *Scenario) { s.LossRate = 1 },
		"oversized list":        func(s *Scenario) { s.HitListSlash16s = s.Slash16s + 1 },
		"orphan outage":         func(s *Scenario) { s.SensorOutages = []OutageWindow{{Start: 0, End: 5}} },
		"inverted window": func(s *Scenario) {
			s.Sensors, s.SensorThreshold = 4, 1
			s.SensorOutages = []OutageWindow{{Start: 5, End: 5}}
		},
	}
	for name, mutate := range mutations {
		sc := analyticScenario()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func nan() float64 { return inf() - inf() }
func inf() float64 {
	x := 1e308
	return x * 10
}

// TestHarnessCatchesInjectedCorruption is the acceptance check for the
// whole harness: deliberately corrupt the parallel exact run through the
// test hook — the moral equivalent of reverting a determinism fix — and
// the byte-identity oracle must fire, the shrinker must produce a smaller
// scenario that still reproduces, and the reproducer must serialize as a
// valid fuzz corpus seed.
func TestHarnessCatchesInjectedCorruption(t *testing.T) {
	testMutateResult = func(driver string, workers int, res *sim.Result) {
		if driver == "exact" && workers > 1 {
			res.Outcomes[sim.OutcomeDelivered]++
		}
	}
	defer func() { testMutateResult = nil }()

	sc := exactOnlyScenario()
	rep, err := CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Oracle == OracleByteIdentity {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupted parallel run not flagged; violations: %+v", rep.Violations)
	}

	shrunk := Shrink(sc, OracleByteIdentity)
	if work(shrunk) >= work(sc) {
		t.Fatalf("shrinker made no progress: %v → %v probes", work(sc), work(shrunk))
	}
	rep, err = CheckScenario(shrunk)
	if err != nil {
		t.Fatalf("shrunken scenario no longer runs: %v", err)
	}
	if rep.Ok() {
		t.Fatal("shrunken scenario no longer reproduces the violation")
	}

	path, err := WriteCorpusSeed(t.TempDir(), shrunk)
	if err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "go test fuzz v1\n[]byte(") {
		t.Fatalf("corpus seed has wrong framing:\n%s", body)
	}
}

func work(s Scenario) float64 {
	return float64(s.PopSize) * s.ScanRate * s.MaxSeconds
}

// TestHarnessCatchesFastParallelCorruption is the acceptance check for the
// parallel-fast identity oracle: corrupt only the fast driver's parallel
// runs through the test hook — the moral equivalent of a merge-order bug
// in the two-phase tick — and the fast-identity oracle must fire while
// the serial replicas stay clean.
func TestHarnessCatchesFastParallelCorruption(t *testing.T) {
	testMutateResult = func(driver string, workers int, res *sim.Result) {
		if driver == "fast" && workers > 1 {
			res.Outcomes[sim.OutcomeDelivered]++
		}
	}
	defer func() { testMutateResult = nil }()

	sc := analyticScenario() // hit-list: differential-eligible
	sc.FastWorkers = 4
	rep, err := CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Differential {
		t.Fatal("scenario did not exercise the differential path")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Oracle == OracleFastIdentity {
			found = true
		} else {
			t.Errorf("unexpected violation [%s]: %s", v.Oracle, v.Detail)
		}
	}
	if !found {
		t.Fatalf("corrupted parallel fast run not flagged; violations: %+v", rep.Violations)
	}
}

// TestHarnessCatchesBrokenFitBeta reverts the FitBeta bugfix in effigy: a
// fit that returns garbage without an error — the pre-fix failure mode —
// must trip the analytic oracle on an analytic-eligible scenario.
func TestHarnessCatchesBrokenFitBeta(t *testing.T) {
	sc := analyticScenario()
	rep, err := CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("baseline scenario not clean: %+v", rep.Violations)
	}
	if !rep.Analytic {
		t.Fatal("baseline scenario did not exercise the analytic oracle")
	}

	testFitBeta = func(times, infected []float64, pop float64) (float64, int, error) {
		return 1e12, len(times), nil // garbage β, no error: the reverted bug
	}
	defer func() { testFitBeta = epidemic.FitBeta }()

	rep, err = CheckScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Oracle == OracleAnalytic {
			found = true
		}
	}
	if !found {
		t.Fatalf("garbage FitBeta not flagged; violations: %+v", rep.Violations)
	}
}

// FuzzScenarioJSON replays shrunken reproducers (the testdata corpus) and
// lets the fuzzer mutate scenarios freely: anything that parses and
// validates must run without oracle violations. Parse/validate/build
// rejections are fine — the fuzzer probing outside the scenario space is
// expected — but a validated scenario that runs must run clean.
func FuzzScenarioJSON(f *testing.F) {
	f.Add([]byte(`{"worm":"nope"}`))
	sc := analyticScenario()
	f.Add(sc.JSON())
	small := exactOnlyScenario()
	small.PopSize, small.MaxSeconds = 60, 15
	f.Add(small.JSON())
	graph := graphScenarioFixed()
	graph.GraphNodes, graph.MaxSeconds = 60, 15
	graph.GraphSensors = 5
	f.Add(graph.JSON())
	f.Add([]byte(`{"topology":"proxgraph","graph_nodes":-1}`))
	f.Add([]byte(`{"topology":"proxgraph","graph_nodes":400,"graph_degree":6,"graph_radius":1e308,"sim_seed":1,"scan_rate":2,"tick_seconds":1,"max_seconds":10,"seed_hosts":2,"workers":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil || sc.Validate() != nil {
			return
		}
		rep, err := CheckScenario(sc)
		if err != nil {
			return // build-time rejection (e.g. unsatisfiable population shape)
		}
		for _, v := range rep.Violations {
			t.Errorf("[%s] %s", v.Oracle, v.Detail)
		}
		if t.Failed() {
			t.Fatalf("scenario: %s", sc.JSON())
		}
	})
}
