package xcheck

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/detect"
	"repro/internal/epidemic"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/topo/proxgraph"
	"repro/internal/trace"
	"repro/internal/worm"
)

// Test hooks. Production code never sets these; the harness's own tests
// use them to inject known bugs and prove the oracles catch them (the
// "revert a bugfix, watch it get flagged" acceptance check, without
// shipping the bug).
var (
	// testMutateResult, when non-nil, corrupts a completed run before the
	// oracles audit it. driver is "exact" or "fast"; workers is the exact
	// run's worker count (0 for fast runs).
	testMutateResult func(driver string, workers int, res *sim.Result)
	// testFitBeta routes the analytic oracle's regression; tests swap in a
	// broken implementation to emulate reverting the FitBeta validation
	// fix.
	testFitBeta = epidemic.FitBeta
)

// artifacts is everything a scenario expands into before a run: the
// synthesized population, the worm factory and (when differential) its
// fast-model counterpart, the environment, the compiled fault plan, and
// sensor placement.
type artifacts struct {
	pop       *population.Population
	factory   worm.Factory
	model     sim.RateModel // nil when the worm has no fast model
	env       *netenv.Environment
	plan      *faults.Plan
	sensors   []ipv4.Prefix
	sensorSet *ipv4.Set
	hitList   *ipv4.Set
	hitCover  float64
	graph     topo.Graph // non-nil for graph-topology scenarios; the rest stay zero
}

// size is the scenario's host-universe size: population hosts on IPv4,
// node count on a graph world. Oracles index InfectionTime with it.
func (a *artifacts) size() int {
	if a.graph != nil {
		return a.graph.Nodes()
	}
	return a.pop.Size()
}

// build expands a validated scenario into its artifacts. Construction is
// deterministic: every random choice flows from the scenario's seeds.
func build(sc *Scenario) (*artifacts, error) {
	if sc.Topology == TopoProxGraph {
		w, err := proxgraph.New(proxgraph.Config{
			Nodes:   sc.GraphNodes,
			Degree:  sc.GraphDegree,
			Radius:  sc.GraphRadius,
			Sensors: sc.GraphSensors,
			Seed:    sc.GraphSeed,
		})
		if err != nil {
			return nil, fmt.Errorf("xcheck: graph world: %w", err)
		}
		// The drivers trust the world's adjacency contract; audit it here
		// once per scenario rather than once per replica run.
		if err := topo.ValidateGraph(w); err != nil {
			return nil, fmt.Errorf("xcheck: graph world: %w", err)
		}
		return &artifacts{graph: w}, nil
	}
	pop, err := population.Synthesize(population.Config{
		Size:             sc.PopSize,
		Slash8s:          sc.Slash8s,
		Slash16s:         sc.Slash16s,
		Include192Slash8: sc.Include192,
		Seed:             sc.PopSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("xcheck: population: %w", err)
	}
	if sc.NATFraction > 0 {
		if err := pop.AssignNAT(sc.NATFraction, sc.NATHostsPerSite, sc.NATSeed); err != nil {
			return nil, fmt.Errorf("xcheck: NAT: %w", err)
		}
	}
	a := &artifacts{pop: pop}

	switch sc.Worm {
	case WormUniform:
		a.factory = worm.UniformFactory{}
		a.model = sim.NewUniformModel()
	case WormHitList:
		// Public addresses only: listing NATed hosts' private addresses
		// would let exact-driver seeds infect sitemates through the list —
		// a path the fast HitListModel cannot express, and a spurious
		// differential violation.
		prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(true), sc.HitListSlash16s)
		a.hitList = ipv4.SetOfPrefixes(prefixes...)
		a.hitCover = cover
		a.factory = worm.HitListFactory{ListSet: a.hitList}
		a.model = &sim.HitListModel{List: a.hitList}
	case WormCodeRedII:
		a.factory = worm.CodeRedIIFactory{}
		a.model = sim.NewCodeRedIIModel()
	case WormBlaster:
		a.factory = worm.BlasterFactory{Ticks: worm.DefaultRebootTickModel()}
	case WormSlammer:
		a.factory = worm.SlammerFactory{Variant: sc.SlammerVariant}
	case WormWitty:
		a.factory = worm.WittyFactory{}
	default:
		return nil, fmt.Errorf("xcheck: unknown worm %q", sc.Worm)
	}

	if sc.LossRate > 0 || sc.EgressDrop > 0 {
		env := &netenv.Environment{}
		if err := env.SetLossRate(sc.LossRate); err != nil {
			return nil, fmt.Errorf("xcheck: %w", err)
		}
		if sc.EgressDrop > 0 {
			p, err := ipv4.NewPrefix(ipv4.Addr(pop.Host(0).Addr.Slash8()<<24), 8)
			if err != nil {
				return nil, fmt.Errorf("xcheck: egress prefix: %w", err)
			}
			env.AddEgressFilter(p, sc.EgressDrop)
		}
		a.env = env
	}

	if sc.Sensors > 0 {
		exclude := &ipv4.Set{}
		for _, addr := range pop.Addrs(false) {
			exclude.AddAddr(addr)
		}
		a.sensors, err = detect.RandomSlash24s(sc.Sensors, sc.SensorSeed, exclude)
		if err != nil {
			return nil, fmt.Errorf("xcheck: sensor placement: %w", err)
		}
		a.sensorSet = ipv4.SetOfPrefixes(a.sensors...)
	}

	// Assemble the fault plan: the scenario's burst/reporting config plus
	// sensor outages resolved against the placed fleet. The plan horizon
	// extends one tick past the run so scheduled windows can cover the
	// final tick (Compile clamps spans to its horizon).
	var fc faults.Config
	if sc.Faults != nil {
		fc = *sc.Faults
	}
	seen := make(map[string]bool)
	for _, w := range sc.SensorOutages {
		if len(a.sensors) == 0 {
			return nil, fmt.Errorf("xcheck: sensor outage without sensors")
		}
		block := a.sensors[w.SensorIndex%len(a.sensors)].String()
		// Two windows can resolve to one block (indices wrap); the fault
		// plan wants one outage per block, so the first window wins.
		if seen[block] {
			continue
		}
		seen[block] = true
		fc.Outages = append(fc.Outages, faults.OutageConfig{
			Block: block, Start: w.Start, End: w.End,
		})
	}
	if fc.Burst != nil || fc.Reporting != nil || len(fc.Outages) > 0 {
		plan, err := faults.Compile(fc, sc.MaxSeconds+sc.TickSeconds)
		if err != nil {
			return nil, fmt.Errorf("xcheck: faults: %w", err)
		}
		a.plan = plan
	}
	return a, nil
}

// runOutput is one completed run plus the observation state the oracles
// audit alongside it.
type runOutput struct {
	res   *sim.Result
	fleet *detect.ThresholdFleet // nil without sensors
	trace *trace.Recorder        // flight recorder attached to the run
}

// RunScenario validates, expands, and runs one scenario on the exact
// driver with the scenario's own worker count, returning the run result.
// It is the serving layer's one-shot entry point: the result is a pure
// function of the scenario bytes (the §9 determinism contract covers every
// worker count), so two calls with the same scenario — on one machine or
// across a crash/restart — produce identical results. A cancelled ctx
// stops the run at the next tick boundary and returns ctx's error; no
// partial result escapes.
func RunScenario(ctx context.Context, sc Scenario) (*sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	a, err := build(&sc)
	if err != nil {
		return nil, err
	}
	out, err := runExactCtx(ctx, &sc, a, sc.Workers)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out.res, nil
}

// runExact executes the scenario on the exact driver with the given worker
// count. Each call builds a fresh fleet so observation state never leaks
// between the byte-identity runs. Every run carries a flight recorder:
// the byte-identity oracle compares trace bytes alongside run outputs,
// and the tree oracles audit the recorded infection provenance.
func runExact(sc *Scenario, a *artifacts, workers int) (*runOutput, error) {
	return runExactCtx(context.Background(), sc, a, workers)
}

// runExactCtx is runExact with cooperative cancellation: the run's OnTick
// hook watches ctx and stops the tick loop once it is done. Observing ctx
// never perturbs the run — OnTick draws no randomness — so a run that is
// not cancelled is byte-identical to one executed without a context.
func runExactCtx(ctx context.Context, sc *Scenario, a *artifacts, workers int) (*runOutput, error) {
	rec := trace.NewRecorder(0)
	clk := &obs.SimClock{}
	out := &runOutput{trace: rec}
	cfg := sim.ExactConfig{
		Topology:         a.graph, // nil for IPv4 scenarios: the reference world
		ScanRate:         sc.ScanRate,
		TickSeconds:      sc.TickSeconds,
		MaxSeconds:       sc.MaxSeconds,
		SeedHosts:        sc.SeedHosts,
		Seed:             sc.SimSeed,
		Workers:          workers,
		StopWhenInfected: sc.StopWhenInfect,
		Trace:            rec,
		Clock:            clk,
	}
	if a.graph == nil {
		cfg.Pop = a.pop
		cfg.Factory = a.factory
		cfg.Env = a.env
		cfg.Faults = a.plan
	}
	cfg.OnTick = func(sim.TickInfo) bool { return ctx.Err() == nil }
	if a.sensorSet != nil {
		fleet, err := detect.NewThresholdFleet(a.sensors, sc.SensorThreshold)
		if err != nil {
			return nil, fmt.Errorf("xcheck: fleet: %w", err)
		}
		fleet.Trace(rec, clk)
		out.fleet = fleet
		cfg.SensorSet = a.sensorSet
		cfg.OnProbe = func(_, dst ipv4.Addr) { fleet.RecordHit(dst) }
	}
	res, err := sim.RunExact(cfg)
	if err != nil {
		return nil, fmt.Errorf("xcheck: exact driver: %w", err)
	}
	if testMutateResult != nil {
		testMutateResult("exact", workers, res)
	}
	out.res = res
	return out, nil
}

// runFast executes the scenario on the fast driver with the given seed
// (differential replicas run under distinct derived seeds), worker count,
// and tick-skip setting. The latter two are throughput knobs the driver
// guarantees are output-invariant; the parallel-fast identity oracle
// re-runs one replica with them varied.
func runFast(sc *Scenario, a *artifacts, seed uint64, workers int, noskip bool) (*runOutput, error) {
	rec := trace.NewRecorder(0)
	clk := &obs.SimClock{}
	out := &runOutput{trace: rec}
	cfg := sim.FastConfig{
		Topology:         a.graph, // nil for IPv4 scenarios: the reference world
		ScanRate:         sc.ScanRate,
		TickSeconds:      sc.TickSeconds,
		MaxSeconds:       sc.MaxSeconds,
		SeedHosts:        sc.SeedHosts,
		Seed:             seed,
		Workers:          workers,
		DisableTickSkip:  noskip,
		StopWhenInfected: sc.StopWhenInfect,
		Trace:            rec,
		Clock:            clk,
	}
	if a.graph == nil {
		cfg.Pop = a.pop
		cfg.Model = a.model
		cfg.LossRate = sc.LossRate
		cfg.Faults = a.plan
	}
	if a.sensorSet != nil {
		fleet, err := detect.NewThresholdFleet(a.sensors, sc.SensorThreshold)
		if err != nil {
			return nil, fmt.Errorf("xcheck: fleet: %w", err)
		}
		fleet.Trace(rec, clk)
		out.fleet = fleet
		cfg.Sensors = fleet
		cfg.SensorSet = a.sensorSet
	}
	res, err := sim.RunFast(cfg)
	if err != nil {
		return nil, fmt.Errorf("xcheck: fast driver: %w", err)
	}
	if testMutateResult != nil {
		testMutateResult("fast", workers, res)
	}
	out.res = res
	return out, nil
}

// fastReplicaSeed derives the i-th fast replica's seed from the scenario
// seed; replicas must not share randomness with each other or the exact
// run.
func fastReplicaSeed(simSeed uint64, i int) uint64 {
	return rng.Mix64(simSeed ^ (0x66617374 + uint64(i))) // "fast"+i
}

// serializeRun renders every observable of a run into a byte-stable string
// — the byte-identity oracle's comparison format. Floats print as %x so
// equality means bit-for-bit identical, not approximately equal.
func serializeRun(out *runOutput) string {
	var b strings.Builder
	for _, ti := range out.res.Series {
		fmt.Fprintf(&b, "%x %d %d %d %v\n", ti.Time, ti.Infected, ti.NewInfections, ti.Probes, ti.Outcomes)
	}
	for id, it := range out.res.InfectionTime {
		if it >= 0 {
			fmt.Fprintf(&b, "inf %d %x\n", id, it)
		}
	}
	fmt.Fprintf(&b, "cum %v\n", out.res.Outcomes)
	if out.fleet != nil {
		fmt.Fprintf(&b, "fleet total=%d alerted=%d counts=%v\n",
			out.fleet.TotalHits(), out.fleet.NumAlerted(), out.fleet.Counts())
	}
	// The trace rides along in the byte-identity comparison, so worker-count
	// invariance of the flight recorder is enforced on every scenario.
	if out.trace != nil {
		b.WriteString("trace\n")
		if err := out.trace.WriteNDJSON(&b); err != nil {
			fmt.Fprintf(&b, "trace-error %v\n", err)
		}
	}
	return b.String()
}
