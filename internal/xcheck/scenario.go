// Package xcheck is the simulator's cross-checking harness: a seeded
// scenario generator, a suite of oracles that audit every run from three
// independent directions, and a shrinker that reduces violating scenarios
// to minimal reproducers.
//
// One uint64 seed deterministically expands into a full scenario — worm
// family, population shape and clustering, NAT placement, environment
// loss, sensor fleet, fault plan, timing, and worker count — so a batch of
// seeds sweeps the whole feature matrix without any hand-written case
// list. Each scenario is then audited by three oracle families (see
// DESIGN.md §10):
//
//   - Analytic: scenarios that satisfy the closed-form SI model's
//     assumptions must track it, and epidemic.FitBeta must recover the
//     configured β from the simulated curve.
//   - Differential: for memoryless scanners the exact and fast drivers are
//     independent implementations of the same process; their epidemic
//     trajectories and sensor-hit rates must agree within sampling
//     tolerance. The exact driver must also be byte-identical across
//     worker counts and across a JSON round-trip of the scenario, and the
//     fast driver across its own worker counts and tick-skip settings.
//   - Invariant: properties every run must satisfy unconditionally —
//     probe-outcome conservation, monotone cumulative infections,
//     infection-time/series consistency, and sensor-fleet accounting
//     bounded by the sensor-hit outcome count.
//
// Violations carry the scenario that produced them; the shrinker bisects
// it down (fewer ticks, smaller population, fewer features) and the result
// is written as a Go fuzz corpus seed under testdata/, turning every
// escaped bug into a permanent regression test.
package xcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/rng"
)

// Worm families a scenario can draw. Uniform, hit-list, and CodeRedII have
// fast-driver rate models and are differential-eligible; Blaster, Slammer,
// and Witty have stateful probe sequences and run on the exact driver only.
const (
	WormUniform   = "uniform"
	WormHitList   = "hitlist"
	WormCodeRedII = "codered2"
	WormBlaster   = "blaster"
	WormSlammer   = "slammer"
	WormWitty     = "witty"
)

// Topologies a scenario can run on. The empty string and TopoIPv4 both
// mean the reference IPv4 world; TopoProxGraph runs both drivers over a
// seeded proximity graph (mutual-kNN geometric neighbor world) where
// the IPv4 dimensions — population shape, NAT, environment, darknet
// sensors, faults — do not exist and must be zero.
const (
	TopoIPv4      = "ipv4"
	TopoProxGraph = "proxgraph"
)

// OutageWindow schedules a scheduled outage for one sensor block. The
// block itself is resolved at artifact-build time (sensor placement is
// derived from the scenario, not stored in it), so the window names the
// sensor by index.
type OutageWindow struct {
	// SensorIndex picks the sensor prefix (mod the fleet size).
	SensorIndex int `json:"sensor_index"`
	// Start and End bound the outage in simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Scenario is one fully specified cross-check case. Every field is
// JSON-serializable so violating scenarios can be reported, shrunk, and
// stored as fuzz corpus seeds. The zero value is invalid; scenarios come
// from Generate or from ParseScenario followed by Validate.
type Scenario struct {
	// ID is the generator seed the scenario was expanded from (0 for
	// hand-built or shrunk scenarios).
	ID uint64 `json:"id"`

	// Worm is the scanning strategy (one of the Worm* constants);
	// SlammerVariant selects the LCG variant for WormSlammer.
	Worm           string `json:"worm"`
	SlammerVariant int    `json:"slammer_variant,omitempty"`

	// Population shape: PopSize hosts clustered into Slash16s /16s across
	// Slash8s /8s, synthesized with PopSeed. Include192 forces 192/8 into
	// the populated /8s (required by CodeRedII's NAT-leak path).
	PopSize    int    `json:"pop_size"`
	Slash8s    int    `json:"slash8s"`
	Slash16s   int    `json:"slash16s"`
	Include192 bool   `json:"include_192,omitempty"`
	PopSeed    uint64 `json:"pop_seed"`

	// NAT placement: NATFraction of hosts are moved behind NAT sites of
	// NATHostsPerSite members each (0 fraction = no NAT).
	NATFraction     float64 `json:"nat_fraction,omitempty"`
	NATHostsPerSite int     `json:"nat_hosts_per_site,omitempty"`
	NATSeed         uint64  `json:"nat_seed,omitempty"`

	// HitListSlash16s is the greedy hit-list size (top-k /16s) for
	// WormHitList; ignored otherwise.
	HitListSlash16s int `json:"hit_list_slash16s,omitempty"`

	// Environment: uniform loss plus an optional egress filter over the
	// first populated /8 (exact driver only — scenarios with EgressDrop>0
	// are never differential).
	LossRate   float64 `json:"loss_rate,omitempty"`
	EgressDrop float64 `json:"egress_drop,omitempty"`

	// Timing and seeding of the run itself.
	ScanRate    float64 `json:"scan_rate"`
	TickSeconds float64 `json:"tick_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
	SeedHosts   int     `json:"seed_hosts"`
	SimSeed     uint64  `json:"sim_seed"`

	// Workers is the exact driver's worker count for the second run of the
	// byte-identity oracle (the first always runs Workers=1).
	Workers int `json:"workers"`

	// FastWorkers is the fast driver's worker count for the parallel-fast
	// identity oracle (the reference replica always runs Workers=1). Zero
	// means "pick a parallel count" — older corpus seeds predate the field.
	FastWorkers int `json:"fast_workers,omitempty"`

	// Sensor fleet: Sensors random /24 darknet blocks (0 = no fleet)
	// placed with SensorSeed, alerting at SensorThreshold hits.
	Sensors         int    `json:"sensors,omitempty"`
	SensorThreshold uint64 `json:"sensor_threshold,omitempty"`
	SensorSeed      uint64 `json:"sensor_seed,omitempty"`

	// Faults: burst loss and degraded reporting are stored directly;
	// sensor outages are scheduled by index and resolved against the
	// placed fleet at build time. Misconfiguration faults are out of the
	// harness's scope (they rewrite org-level environments, which the
	// scenario space does not model).
	Faults         *faults.Config `json:"faults,omitempty"`
	SensorOutages  []OutageWindow `json:"sensor_outages,omitempty"`
	StopWhenInfect int            `json:"stop_when_infected,omitempty"`

	// Topology selects the world (one of the Topo* constants; empty
	// means TopoIPv4). Graph scenarios use the Graph* dimensions below
	// instead of the population/NAT/environment/sensor fields above,
	// and Worm must be empty — graph worms scan neighbor lists, not
	// address space.
	Topology string `json:"topology,omitempty"`
	// Proximity-graph shape (TopoProxGraph only): GraphNodes routers,
	// mutual-kNN degree bound GraphDegree, candidate radius GraphRadius
	// (0 = the package default), GraphSensors sensor nodes, all built
	// from GraphSeed.
	GraphNodes   int     `json:"graph_nodes,omitempty"`
	GraphDegree  int     `json:"graph_degree,omitempty"`
	GraphRadius  float64 `json:"graph_radius,omitempty"`
	GraphSensors int     `json:"graph_sensors,omitempty"`
	GraphSeed    uint64  `json:"graph_seed,omitempty"`
}

// Scenario-space caps. They bound the work any scenario — generated,
// shrunk, or fuzzer-supplied — can request, so CheckScenario is safe to
// call on hostile inputs.
const (
	maxPopSize     = 2000
	maxScenarioPPT = 500   // probes per host per tick
	maxTicksPerRun = 200   // MaxSeconds / TickSeconds
	maxSensors     = 64    // /24 blocks
	maxWorkers     = 16    // exact-driver goroutines
	maxWorkProduct = 4.5e7 // PopSize · ppt · ticks, summed probe bound
)

// Validate rejects scenarios outside the bounded feature space. It runs
// before any artifact construction, so a hostile JSON scenario costs
// nothing but this check.
func (s *Scenario) Validate() error {
	switch s.Topology {
	case "", TopoIPv4:
		if s.GraphNodes != 0 || s.GraphDegree != 0 || s.GraphRadius != 0 ||
			s.GraphSensors != 0 || s.GraphSeed != 0 {
			return fmt.Errorf("xcheck: graph dimensions set on topology %q", TopoIPv4)
		}
	case TopoProxGraph:
		return s.validateGraph()
	default:
		return fmt.Errorf("xcheck: unknown topology %q", s.Topology)
	}
	switch s.Worm {
	case WormUniform, WormHitList, WormCodeRedII, WormBlaster, WormSlammer, WormWitty:
	default:
		return fmt.Errorf("xcheck: unknown worm %q", s.Worm)
	}
	if s.SlammerVariant < 0 || s.SlammerVariant > 2 {
		return fmt.Errorf("xcheck: slammer variant %d out of [0,2]", s.SlammerVariant)
	}
	if s.PopSize < 20 || s.PopSize > maxPopSize {
		return fmt.Errorf("xcheck: population %d outside [20,%d]", s.PopSize, maxPopSize)
	}
	if s.Slash8s < 1 || s.Slash8s > 16 || s.Slash16s < s.Slash8s || s.Slash16s > 64 {
		return fmt.Errorf("xcheck: population shape %d/8s %d/16s out of range", s.Slash8s, s.Slash16s)
	}
	if !isProb(s.NATFraction) || s.NATFraction > 0.8 {
		return fmt.Errorf("xcheck: NAT fraction %v outside [0,0.8]", s.NATFraction)
	}
	if s.NATFraction > 0 && (s.NATHostsPerSite < 2 || s.NATHostsPerSite > 64) {
		return fmt.Errorf("xcheck: NAT hosts per site %d outside [2,64]", s.NATHostsPerSite)
	}
	if s.Worm == WormHitList && (s.HitListSlash16s < 1 || s.HitListSlash16s > s.Slash16s) {
		return fmt.Errorf("xcheck: hit-list size %d outside [1,%d]", s.HitListSlash16s, s.Slash16s)
	}
	if !isProb(s.LossRate) || s.LossRate >= 1 {
		return fmt.Errorf("xcheck: loss rate %v outside [0,1)", s.LossRate)
	}
	if !isProb(s.EgressDrop) {
		return fmt.Errorf("xcheck: egress drop %v outside [0,1]", s.EgressDrop)
	}
	for _, v := range [...]float64{s.ScanRate, s.TickSeconds, s.MaxSeconds} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("xcheck: rate/timing %v must be positive and finite", v)
		}
	}
	ppt := s.ScanRate * s.TickSeconds
	if ppt < 1 || ppt > maxScenarioPPT {
		return fmt.Errorf("xcheck: %v probes per host per tick outside [1,%d]", ppt, maxScenarioPPT)
	}
	ticks := s.MaxSeconds / s.TickSeconds
	if ticks < 1 || ticks > maxTicksPerRun {
		return fmt.Errorf("xcheck: %v ticks outside [1,%d]", ticks, maxTicksPerRun)
	}
	if work := float64(s.PopSize) * ppt * ticks; work > maxWorkProduct {
		return fmt.Errorf("xcheck: work product %.3g exceeds %.3g", work, maxWorkProduct)
	}
	if s.SeedHosts < 1 || s.SeedHosts > s.PopSize {
		return fmt.Errorf("xcheck: seed hosts %d outside [1,%d]", s.SeedHosts, s.PopSize)
	}
	if s.Workers < 1 || s.Workers > maxWorkers {
		return fmt.Errorf("xcheck: workers %d outside [1,%d]", s.Workers, maxWorkers)
	}
	if s.FastWorkers < 0 || s.FastWorkers > maxWorkers {
		return fmt.Errorf("xcheck: fast workers %d outside [0,%d]", s.FastWorkers, maxWorkers)
	}
	if s.Sensors < 0 || s.Sensors > maxSensors {
		return fmt.Errorf("xcheck: %d sensors outside [0,%d]", s.Sensors, maxSensors)
	}
	if s.Sensors > 0 && (s.SensorThreshold < 1 || s.SensorThreshold > 1e6) {
		return fmt.Errorf("xcheck: sensor threshold %d outside [1,1e6]", s.SensorThreshold)
	}
	if s.StopWhenInfect < 0 || s.StopWhenInfect > s.PopSize {
		return fmt.Errorf("xcheck: stop-when-infected %d outside [0,%d]", s.StopWhenInfect, s.PopSize)
	}
	if len(s.SensorOutages) > maxSensors {
		return fmt.Errorf("xcheck: %d sensor outages exceed %d", len(s.SensorOutages), maxSensors)
	}
	for i, w := range s.SensorOutages {
		if s.Sensors == 0 {
			return fmt.Errorf("xcheck: sensor outage %d without sensors", i)
		}
		if w.SensorIndex < 0 || !validWindow(w.Start, w.End) {
			return fmt.Errorf("xcheck: sensor outage %d window [%v,%v) invalid", i, w.Start, w.End)
		}
	}
	if s.Faults != nil {
		if s.Faults.Misconfig != nil {
			return fmt.Errorf("xcheck: misconfiguration faults are outside the scenario space")
		}
		if len(s.Faults.Outages) > 0 {
			return fmt.Errorf("xcheck: raw outages must be scheduled via sensor_outages")
		}
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("xcheck: %w", err)
		}
	}
	return nil
}

// validateGraph bounds the proximity-graph scenario space. The IPv4
// dimensions must be zero — the sim drivers reject them with typed
// conflict errors, and the harness enforces the same boundary before
// any world construction.
func (s *Scenario) validateGraph() error {
	if s.Worm != "" || s.SlammerVariant != 0 {
		return fmt.Errorf("xcheck: worm %q set on a graph topology (graph worms scan neighbor lists)", s.Worm)
	}
	if s.PopSize != 0 || s.Slash8s != 0 || s.Slash16s != 0 || s.Include192 || s.PopSeed != 0 {
		return fmt.Errorf("xcheck: IPv4 population dimensions set on topology %q", s.Topology)
	}
	if s.NATFraction != 0 || s.NATHostsPerSite != 0 || s.NATSeed != 0 {
		return fmt.Errorf("xcheck: NAT dimensions set on topology %q", s.Topology)
	}
	if s.HitListSlash16s != 0 || s.LossRate != 0 || s.EgressDrop != 0 {
		return fmt.Errorf("xcheck: environment dimensions set on topology %q", s.Topology)
	}
	if s.Sensors != 0 || s.SensorThreshold != 0 || s.SensorSeed != 0 || len(s.SensorOutages) != 0 {
		return fmt.Errorf("xcheck: darknet sensor dimensions set on topology %q (use graph_sensors)", s.Topology)
	}
	if s.Faults != nil {
		return fmt.Errorf("xcheck: fault plans set on topology %q", s.Topology)
	}
	if s.GraphNodes < 20 || s.GraphNodes > maxPopSize {
		return fmt.Errorf("xcheck: graph nodes %d outside [20,%d]", s.GraphNodes, maxPopSize)
	}
	if s.GraphDegree < 1 || s.GraphDegree > 16 {
		return fmt.Errorf("xcheck: graph degree %d outside [1,16]", s.GraphDegree)
	}
	if math.IsNaN(s.GraphRadius) || s.GraphRadius < 0 || s.GraphRadius > 1.5 {
		return fmt.Errorf("xcheck: graph radius %v outside [0,1.5]", s.GraphRadius)
	}
	if s.GraphSensors < 0 || s.GraphSensors > s.GraphNodes/2 {
		return fmt.Errorf("xcheck: graph sensors %d outside [0,%d]", s.GraphSensors, s.GraphNodes/2)
	}
	for _, v := range [...]float64{s.ScanRate, s.TickSeconds, s.MaxSeconds} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("xcheck: rate/timing %v must be positive and finite", v)
		}
	}
	ppt := s.ScanRate * s.TickSeconds
	if ppt < 1 || ppt > maxScenarioPPT {
		return fmt.Errorf("xcheck: %v probes per host per tick outside [1,%d]", ppt, maxScenarioPPT)
	}
	ticks := s.MaxSeconds / s.TickSeconds
	if ticks < 1 || ticks > maxTicksPerRun {
		return fmt.Errorf("xcheck: %v ticks outside [1,%d]", ticks, maxTicksPerRun)
	}
	if work := float64(s.GraphNodes) * ppt * ticks; work > maxWorkProduct {
		return fmt.Errorf("xcheck: work product %.3g exceeds %.3g", work, maxWorkProduct)
	}
	if sus := s.GraphNodes - s.GraphSensors; s.SeedHosts < 1 || s.SeedHosts > sus {
		return fmt.Errorf("xcheck: seed hosts %d outside [1,%d]", s.SeedHosts, sus)
	}
	if s.Workers < 1 || s.Workers > maxWorkers {
		return fmt.Errorf("xcheck: workers %d outside [1,%d]", s.Workers, maxWorkers)
	}
	if s.FastWorkers < 0 || s.FastWorkers > maxWorkers {
		return fmt.Errorf("xcheck: fast workers %d outside [0,%d]", s.FastWorkers, maxWorkers)
	}
	if s.StopWhenInfect < 0 || s.StopWhenInfect > s.GraphNodes {
		return fmt.Errorf("xcheck: stop-when-infected %d outside [0,%d]", s.StopWhenInfect, s.GraphNodes)
	}
	return nil
}

func isProb(p float64) bool { return !math.IsNaN(p) && p >= 0 && p <= 1 }

func validWindow(start, end float64) bool {
	return !math.IsNaN(start) && !math.IsInf(start, 0) && !math.IsNaN(end) && !math.IsInf(end, 0) &&
		start >= 0 && end > start
}

// Differential reports whether the scenario is eligible for the
// exact-vs-fast differential oracle: the worm must have a fast-driver rate
// model, and the environment must be expressible in FastConfig (uniform
// loss only — egress filters are exact-only).
func (s *Scenario) Differential() bool {
	switch s.Worm {
	case WormUniform, WormHitList, WormCodeRedII:
		return s.EgressDrop == 0
	}
	return false
}

// Analytic reports whether the scenario satisfies the closed-form SI
// model's assumptions: a hit-list scanner (Ω = list size) over a flat
// population with a transparent network and no faults. Coverage of the
// hit-list is checked at build time (partial lists cap the epidemic below
// N, breaking the logistic form).
func (s *Scenario) Analytic() bool {
	return s.Worm == WormHitList &&
		s.NATFraction == 0 && s.LossRate == 0 && s.EgressDrop == 0 &&
		s.Faults == nil && len(s.SensorOutages) == 0 && s.StopWhenInfect == 0
}

// xcheckStream isolates scenario expansion from every other consumer of a
// seed: Generate(id) and a simulation seeded with id never share a stream.
const xcheckStream = 0x78636865636b31 // "xcheck1"

// Generate expands one seed into a full scenario. The mapping is pure:
// the same id always yields the same scenario, independent of platform,
// batch position, or prior calls.
func Generate(id uint64) Scenario {
	r := rng.NewXoshiroStream(id, xcheckStream, 0)
	sc := Scenario{
		ID:          id,
		TickSeconds: 1,
		PopSeed:     r.Uint64(),
		SimSeed:     r.Uint64(),
		Workers:     1 + int(r.Uint64n(8)),
		SeedHosts:   3 + int(r.Uint64n(8)),
	}
	// Worm family: hit-list weighted heavily — it is the only family whose
	// epidemics mature inside the bounded budget, so it carries the
	// analytic and growth-phase differential checks.
	switch r.Uint64n(10) {
	case 0, 1, 2, 3:
		sc.Worm = WormHitList
	case 4:
		sc.Worm = WormUniform
	case 5, 6:
		sc.Worm = WormCodeRedII
	case 7:
		sc.Worm = WormBlaster
	case 8:
		sc.Worm = WormSlammer
		sc.SlammerVariant = int(r.Uint64n(3))
	default:
		sc.Worm = WormWitty
	}

	// Population: small and tight for hit-list scenarios (Ω = k·2^16 must
	// stay small enough for growth under the probe budget), looser for the
	// rest.
	if sc.Worm == WormHitList {
		sc.PopSize = 150 + int(r.Uint64n(250))
		sc.Slash8s = 1 + int(r.Uint64n(3))
		sc.Slash16s = sc.Slash8s + int(r.Uint64n(uint64(5-sc.Slash8s)))
		sc.HitListSlash16s = sc.Slash16s // full coverage: analytic-eligible
		if r.Uint64n(4) == 0 && sc.Slash16s > 1 {
			sc.HitListSlash16s = 1 + int(r.Uint64n(uint64(sc.Slash16s)))
		}
	} else {
		sc.PopSize = 100 + int(r.Uint64n(400))
		sc.Slash8s = 3 + int(r.Uint64n(5))
		sc.Slash16s = sc.Slash8s + int(r.Uint64n(24))
	}
	sc.Include192 = sc.Worm == WormCodeRedII

	// NAT clustering (40% of scenarios).
	if r.Uint64n(10) < 4 {
		sc.NATFraction = 0.1 + 0.3*r.Float64()
		sc.NATHostsPerSite = 2 + int(r.Uint64n(5))
		sc.NATSeed = r.Uint64()
	}

	// Environment: uniform loss half the time; an egress filter only for
	// exact-only worms (a filtered scenario cannot be differential).
	if r.Uint64n(2) == 0 {
		sc.LossRate = 0.3 * r.Float64()
	}
	switch sc.Worm {
	case WormBlaster, WormSlammer, WormWitty:
		if r.Uint64n(10) < 3 {
			sc.EgressDrop = r.Float64()
		}
	}

	// Timing: pick a tick, a horizon, and a scan rate that keeps hit-list
	// epidemics in their growth phase within the horizon. For a hit-list
	// worm β = rate·N/Ω; aim β·T ∈ [4, 8] so the sigmoid completes.
	sc.TickSeconds = []float64{0.5, 1, 2}[r.Uint64n(3)]
	ticks := 30 + int(r.Uint64n(50))
	sc.MaxSeconds = float64(ticks) * sc.TickSeconds
	switch sc.Worm {
	case WormHitList:
		omega := float64(sc.HitListSlash16s) * 65536
		beta := 0.1 + 0.15*r.Float64() // per second: β = rate·N/Ω
		sc.ScanRate = clampRate(beta*omega/float64(sc.PopSize), sc.TickSeconds)
	case WormCodeRedII:
		sc.ScanRate = clampRate(100+400*r.Float64(), sc.TickSeconds)
	default:
		sc.ScanRate = clampRate(50+950*r.Float64(), sc.TickSeconds)
	}
	// Enforce the work-product cap by shedding horizon first, then rate.
	for float64(sc.PopSize)*sc.ScanRate*sc.TickSeconds*float64(ticks) > maxWorkProduct {
		if ticks > 20 {
			ticks /= 2
			sc.MaxSeconds = float64(ticks) * sc.TickSeconds
			continue
		}
		sc.ScanRate = sc.ScanRate / 2
		if sc.ScanRate*sc.TickSeconds < 1 {
			sc.ScanRate = 1 / sc.TickSeconds
			break
		}
	}

	// Sensor fleet (60%), with optional scheduled outages and faults.
	if r.Uint64n(10) < 6 {
		sc.Sensors = 4 + int(r.Uint64n(29))
		sc.SensorThreshold = 1 + r.Uint64n(4)
		sc.SensorSeed = r.Uint64()
		if r.Uint64n(10) < 3 {
			n := 1 + int(r.Uint64n(3))
			for i := 0; i < n; i++ {
				start := r.Float64() * sc.MaxSeconds * 0.8
				sc.SensorOutages = append(sc.SensorOutages, OutageWindow{
					SensorIndex: int(r.Uint64n(uint64(sc.Sensors))),
					Start:       start,
					End:         start + (0.1+0.9*r.Float64())*(sc.MaxSeconds+sc.TickSeconds-start),
				})
			}
		}
	}
	if r.Uint64n(10) < 4 {
		fc := &faults.Config{Seed: r.Uint64()}
		if r.Uint64n(2) == 0 {
			fc.Burst = &faults.BurstConfig{
				MeanGood: 5 + 15*r.Float64(),
				MeanBad:  1 + 4*r.Float64(),
				LossGood: 0.05 * r.Float64(),
				LossBad:  0.3 + 0.6*r.Float64(),
			}
		}
		if sc.Sensors > 0 && r.Uint64n(5) < 2 {
			fc.Reporting = &faults.ReportingConfig{
				Delay:   5 * r.Float64() * sc.TickSeconds,
				DupProb: 0.5 * r.Float64(),
			}
		}
		if fc.Burst != nil || fc.Reporting != nil {
			sc.Faults = fc
		}
	}
	// Drawn last so the field's introduction left every earlier field of
	// every existing seed's expansion unchanged.
	sc.FastWorkers = 2 + int(r.Uint64n(7))
	// Topology gate, drawn after everything else for the same reason:
	// seeds that stay IPv4 (7 in 8) expand exactly as they did before
	// the dimension existed. Graph seeds rebuild the scenario over the
	// proximity-graph dimensions, discarding the IPv4 draws above.
	if r.Uint64n(8) == 0 {
		sc = graphScenario(sc, r)
	}
	return sc
}

// graphScenario re-expands a drawn scenario as a proximity-graph world,
// keeping the identity, sim seed, timing grid, and worker counts from
// the base draw and replacing the IPv4 dimensions with graph shape.
func graphScenario(base Scenario, r *rng.Xoshiro) Scenario {
	sc := Scenario{
		ID:          base.ID,
		Topology:    TopoProxGraph,
		SimSeed:     base.SimSeed,
		Workers:     base.Workers,
		FastWorkers: base.FastWorkers,
		TickSeconds: base.TickSeconds,
	}
	sc.GraphNodes = 100 + int(r.Uint64n(600))
	sc.GraphDegree = 3 + int(r.Uint64n(8))
	sc.GraphSeed = r.Uint64()
	// Mostly the package-default radius; sometimes an explicit generous
	// one, which stresses the mutual-kNN pruning instead of the radius
	// cutoff.
	if r.Uint64n(4) == 0 {
		sc.GraphRadius = 0.05 + 0.3*r.Float64()
	}
	if r.Uint64n(10) < 6 {
		sc.GraphSensors = 1 + int(r.Uint64n(uint64(sc.GraphNodes/10)))
	}
	sc.SeedHosts = 2 + int(r.Uint64n(6))
	ticks := 30 + int(r.Uint64n(50))
	sc.MaxSeconds = float64(ticks) * sc.TickSeconds
	// Neighbor scanning saturates local neighborhoods quickly, so modest
	// per-host rates keep the epidemic curve informative over the
	// horizon.
	sc.ScanRate = clampRate(0.5+4*r.Float64(), sc.TickSeconds)
	if r.Uint64n(6) == 0 {
		sc.StopWhenInfect = sc.SeedHosts + int(r.Uint64n(uint64(sc.GraphNodes/4)))
	}
	return sc
}

// clampRate bounds a scan rate to the scenario probe-per-tick window.
func clampRate(rate, tick float64) float64 {
	if rate*tick > maxScenarioPPT {
		return maxScenarioPPT / tick
	}
	if rate*tick < 1 {
		return 1 / tick
	}
	return rate
}

// ParseScenario decodes a JSON scenario, rejecting unknown fields so
// corpus seeds cannot silently rot when the schema evolves.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("xcheck: %w", err)
	}
	return sc, nil
}

// JSON renders the scenario compactly (the corpus-seed and report format).
func (s *Scenario) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return b
}
