package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
	"strings"
)

// This file adds the typed layer on top of the syntactic loader: every
// loaded package can be type-checked with the stdlib checker (go/types),
// with imports resolved against the loaded tree itself for module-internal
// packages and against the stdlib source importer (go/importer "source")
// for everything else. The module stays dependency-free.
//
// Type-checking is deliberately tolerant: fixture trees and mid-refactor
// code may not fully check, so errors are recorded per package instead of
// aborting, and analyzers degrade to their syntactic fallbacks where type
// information is missing.

// Check type-checks every loaded package in dependency order (triggered
// lazily through the importer). It is idempotent; the first call does the
// work. Packages that fail to check keep whatever partial information the
// checker produced, with the errors recorded in Package.TypeErrs.
func (prog *Program) Check() {
	//lint:ignore lazyinit a Program is analyzed on a single goroutine; reprolint never shares one across workers
	if prog.checked {
		return
	}
	prog.checked = true
	prog.checkedPkgs = make(map[string]*Package)
	prog.importer = &progImporter{
		prog: prog,
		std:  importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom),
	}
	for _, pkg := range prog.Packages {
		prog.checkPackage(pkg)
	}
}

// TypesOK reports whether pkg type-checked without errors.
func (pkg *Package) TypesOK() bool {
	return pkg.Types != nil && len(pkg.TypeErrs) == 0
}

// TypeOf returns the type of e in pkg, or nil when unknown (no type
// information, or e did not type-check).
func (pkg *Package) TypeOf(e ast.Expr) types.Type {
	if pkg.TypesInfo == nil {
		return nil
	}
	return pkg.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by id in pkg, or nil.
func (pkg *Package) ObjectOf(id *ast.Ident) types.Object {
	if pkg.TypesInfo == nil {
		return nil
	}
	return pkg.TypesInfo.ObjectOf(id)
}

// ImportPath returns the path under which pkg is importable: the module
// path joined with the package's Rel. For fixture trees without a go.mod
// the Rel itself serves as the path.
func (pkg *Package) ImportPath(modulePath string) string {
	if pkg.Rel == "." {
		return modulePath
	}
	if modulePath == "" {
		return pkg.Rel
	}
	return modulePath + "/" + pkg.Rel
}

// checkPackage type-checks one package (memoized), resolving its imports
// recursively. Only non-test files participate: the determinism contract
// is about library and command code, and external test packages would not
// merge into one checkable unit anyway.
func (prog *Program) checkPackage(pkg *Package) *types.Package {
	path := pkg.ImportPath(prog.ModulePath)
	if done, ok := prog.checkedPkgs[path]; ok {
		return done.Types
	}
	// Mark before checking so import cycles terminate (they are illegal in
	// Go; a partially checked package is the best we can do).
	prog.checkedPkgs[path] = pkg

	var files []*ast.File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
		}
	}
	if len(files) == 0 {
		return nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:         prog.importer,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrs = append(pkg.TypeErrs, err)
		},
	}
	tpkg, _ := conf.Check(path, prog.Fset, files, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return tpkg
}

// progImporter resolves imports during type-checking: module-internal
// paths against the loaded tree (recursively type-checking on demand),
// everything else through the stdlib source importer.
type progImporter struct {
	prog *Program
	std  types.ImporterFrom
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg := im.prog.packageForImport(path); pkg != nil {
		if tpkg := im.prog.checkPackage(pkg); tpkg != nil {
			return tpkg, nil
		}
		return nil, fmt.Errorf("lint: package %s has no checkable files", path)
	}
	return im.std.ImportFrom(path, dir, 0)
}

// packageForImport maps an import path to a loaded package: an exact
// module-path match when the tree has a go.mod, otherwise (fixture trees
// mimicking the repo layout under an arbitrary fake module prefix) the
// loaded package whose Rel is a path suffix of the import.
func (prog *Program) packageForImport(path string) *Package {
	if prog.ModulePath != "" {
		if path == prog.ModulePath {
			return prog.packageByRel(".")
		}
		if rel, ok := strings.CutPrefix(path, prog.ModulePath+"/"); ok {
			return prog.packageByRel(rel)
		}
		return nil
	}
	// Fixture fallback: "fixture/internal/sim" resolves to the loaded
	// package with Rel "internal/sim".
	for _, pkg := range prog.Packages {
		if pkg.Rel != "." && (path == pkg.Rel || strings.HasSuffix(path, "/"+pkg.Rel)) {
			return pkg
		}
	}
	return nil
}

// packageByRel returns the loaded package with the given Rel, or nil.
func (prog *Program) packageByRel(rel string) *Package {
	for _, pkg := range prog.Packages {
		if pkg.Rel == rel {
			return pkg
		}
	}
	return nil
}
