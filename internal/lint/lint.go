// Package lint is a small, stdlib-only static-analysis framework enforcing
// the determinism and concurrency invariants every quantitative claim of
// this reproduction rests on: all randomness flows through internal/rng,
// simulation packages never read the wall clock, floats are never compared
// with ==, goroutines do not race on captured state, errors are not
// silently dropped, and seeds are never hard-coded outside tests.
//
// The framework deliberately uses only go/ast, go/parser and go/token — no
// type checker, no external modules — so the repo stays zero-dependency.
// Analyzers are therefore syntactic and heuristic: they lean on a
// program-wide index of declared function signatures (see load.go) where
// resolution is needed, and they accept explicit suppressions where the
// heuristic is wrong:
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory; an ignore directive without one is itself reported
// (rule "lint-ignore"), so every suppression in the tree is justified.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos locates the violation; only Filename and Line are rendered.
	Pos token.Position
	// Rule is the analyzer name, e.g. "float-eq".
	Rule string
	// Message explains the violation and, where possible, the fix.
	Message string
}

// String renders the finding in the canonical "file:line: rule: message"
// form emitted by cmd/reprolint.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one lint rule: a name, a one-line doc string, and a Run
// function invoked once per loaded file.
type Analyzer struct {
	// Name is the rule identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description shown by reprolint -list.
	Doc string
	// Run inspects pass.File and reports violations via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, file) unit of work.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Program is the whole loaded tree, for cross-package queries.
	Program *Program
	// Package owns File.
	Package *Package
	// File is the file under analysis.
	File *File

	findings *[]Finding
}

// Report records a violation at n unless an ignore directive suppresses it.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	pos := p.Program.Fset.Position(n.Pos())
	if p.File.suppressed(p.Analyzer.Name, pos.Line) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		BannedImport,
		NoWallclock,
		FloatEq,
		GoroutineCapture,
		UncheckedError,
		SeedLiteral,
		DeTrace,
		LazyInit,
		MapOrder,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to every file of prog and returns the
// findings sorted by file, line, and rule. Malformed ignore directives
// found at load time are included.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	findings := append([]Finding(nil), prog.Malformed...)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Program:  prog,
					Package:  pkg,
					File:     file,
					findings: &findings,
				}
				a.Run(pass)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// underDir reports whether rel (a slash-separated path relative to the
// module root) is dir itself or nested below it.
func underDir(rel, dir string) bool {
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// importName returns the name under which a file refers to the import with
// the given path: the explicit alias if present, otherwise the path's last
// element. It returns "" if the file does not import path ("." and "_"
// imports are reported as unusable names).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}
