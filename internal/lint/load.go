package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file plus the suppression directives it carries.
type File struct {
	// Path is the file path as given to the parser (relative to the
	// loader's working directory).
	Path string
	// AST is the parsed file, with comments attached.
	AST *ast.File
	// Test reports whether the file name ends in _test.go.
	Test bool

	// ignores maps a source line to the rule names suppressed there. A
	// //lint:ignore directive attaches to its enclosing statement (the
	// innermost statement or declaration starting on the directive's line,
	// or on the line directly below a directive that stands alone), and
	// every line the statement spans is populated.
	ignores map[int]map[string]bool
	// deterministic maps a source line to the reasons asserted by
	// //lint:deterministic directives, with the same statement scoping as
	// ignores. The typed analyzers (detrace, lazyinit, maporder) treat an
	// annotated statement as discharged.
	deterministic map[int]bool
}

// suppressed reports whether rule is ignored at the given line.
func (f *File) suppressed(rule string, line int) bool {
	return f.ignores[line][rule]
}

// Deterministic reports whether a //lint:deterministic annotation covers
// the given line.
func (f *File) Deterministic(line int) bool {
	return f.deterministic[line]
}

// Package is one directory of source files.
type Package struct {
	// Dir is the directory path as walked.
	Dir string
	// Name is the package name of the first non-test file (or first file).
	Name string
	// Rel is Dir relative to the module root, slash-separated; "." for the
	// root itself. Rules scope themselves with Rel so fixtures that mimic
	// the repo layout behave identically to the real tree.
	Rel string
	// Files are the package's files, tests included, in name order.
	Files []*File

	// Typed layer, populated by Program.Check (nil before then, and
	// partial when the package does not fully type-check).
	Types     *types.Package
	TypesInfo *types.Info
	TypeErrs  []error
}

// Program is a loaded source tree plus the syntactic signature index and
// the typed layer (types.go) the interprocedural analyzers build on.
type Program struct {
	// Fset positions every loaded file.
	Fset *token.FileSet
	// Packages are the loaded directories in path order.
	Packages []*Package
	// ModulePath is the module path from go.mod at the module root, or ""
	// for fixture trees without one.
	ModulePath string
	// Malformed collects ignore directives missing a rule or reason; they
	// are reported as rule "lint-ignore" findings so every suppression in
	// the tree stays justified.
	Malformed []Finding

	// funcResults maps "pkgName.FuncName" to the declared result type
	// strings of that top-level function.
	funcResults map[string][]string
	// methodResults maps a method name to the result lists of every method
	// with that name anywhere in the program.
	methodResults map[string][][]string

	// Typed layer (types.go, callgraph.go): built lazily by Check().
	checked     bool
	checkedPkgs map[string]*Package
	importer    *progImporter
	callgraph   *CallGraph
	detraceOnce bool
	detraceRes  map[*File][]dtFinding
	lazyOnce    bool
	lazyRes     map[*File][]dtFinding
}

// Load parses every Go file under root (recursively), skipping testdata,
// vendor, hidden, and underscore-prefixed directories. The module root is
// found by walking up from root to the nearest go.mod; package Rel paths
// are computed against it so analyzers can scope rules by repo layout.
func Load(root string) (*Program, error) {
	return LoadAt(root, findModuleRoot(filepath.Clean(root)))
}

// LoadAt is Load with an explicit module root, used by fixture trees that
// mimic the repo layout below a root that is not itself a module.
func LoadAt(root, modRoot string) (*Program, error) {
	root = filepath.Clean(root)
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("lint: %s is not a directory", root)
	}

	prog := &Program{
		Fset:          token.NewFileSet(),
		ModulePath:    modulePath(modRoot),
		funcResults:   make(map[string][]string),
		methodResults: make(map[string][][]string),
	}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := prog.loadDir(path, modRoot)
		if err != nil {
			return err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].Dir < prog.Packages[j].Dir
	})
	return prog, nil
}

// loadDir parses the Go files of a single directory; it returns nil when
// the directory has none.
func (prog *Program) loadDir(dir, modRoot string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		rel = dir
	}
	pkg := &Package{Dir: dir, Rel: filepath.ToSlash(rel)}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		astFile, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		file := &File{
			Path: path,
			AST:  astFile,
			Test: strings.HasSuffix(name, "_test.go"),
		}
		prog.collectIgnores(file)
		if !file.Test {
			prog.indexSignatures(astFile)
		}
		if pkg.Name == "" || !file.Test {
			pkg.Name = astFile.Name.Name
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// collectIgnores parses //lint:ignore and //lint:deterministic directives
// out of a file's comments. A directive attaches to its enclosing
// statement: the outermost statement or declaration starting on the
// directive's own line (trailing form) or on the line directly below it
// (standalone form); every line that statement spans is covered. A
// directive with no adjacent statement falls back to covering its own
// line and the next, so a floating directive still works.
func (prog *Program) collectIgnores(f *File) {
	f.ignores = make(map[int]map[string]bool)
	f.deterministic = make(map[int]bool)
	type directive struct {
		line int
		rule string // "" for lint:deterministic
	}
	var dirs []directive
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			pos := prog.Fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "lint:ignore"):
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					prog.Malformed = append(prog.Malformed, Finding{
						Pos:     pos,
						Rule:    "lint-ignore",
						Message: "malformed directive: want //lint:ignore <rule> <reason>",
					})
					continue
				}
				dirs = append(dirs, directive{line: pos.Line, rule: fields[0]})
			case strings.HasPrefix(text, "lint:deterministic"):
				why := strings.TrimSpace(strings.TrimPrefix(text, "lint:deterministic"))
				if why == "" {
					prog.Malformed = append(prog.Malformed, Finding{
						Pos:     pos,
						Rule:    "lint-deterministic",
						Message: "malformed directive: want //lint:deterministic <why>",
					})
					continue
				}
				dirs = append(dirs, directive{line: pos.Line})
			}
		}
	}
	if len(dirs) == 0 {
		return
	}
	spans := collectStmtSpans(prog.Fset, f.AST)
	mark := func(rule string, lo, hi int) {
		for line := lo; line <= hi; line++ {
			if rule == "" {
				f.deterministic[line] = true
				continue
			}
			if f.ignores[line] == nil {
				f.ignores[line] = make(map[string]bool)
			}
			f.ignores[line][rule] = true
		}
	}
	for _, d := range dirs {
		// The directive's own line is always covered, so a trailing
		// directive keeps working even when no statement starts there
		// (e.g. on the closing line of a multi-line statement).
		mark(d.rule, d.line, d.line)
		lo, hi, ok := attachSpan(spans, d.line)
		if !ok {
			lo, hi = d.line, d.line+1
		}
		mark(d.rule, lo, hi)
	}
}

// stmtSpan is the line extent of one statement or declaration.
type stmtSpan struct {
	start, end int
}

// collectStmtSpans records the line extent of every statement and
// declaration in the file, for directive attachment.
func collectStmtSpans(fset *token.FileSet, file *ast.File) []stmtSpan {
	var spans []stmtSpan
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			spans = append(spans, stmtSpan{
				start: fset.Position(n.Pos()).Line,
				end:   fset.Position(n.End()).Line,
			})
		}
		return true
	})
	return spans
}

// attachSpan resolves a directive on the given line to the statement it
// covers: the widest span starting on the directive's line, else the
// widest starting on the line directly below.
func attachSpan(spans []stmtSpan, line int) (lo, hi int, ok bool) {
	for _, start := range []int{line, line + 1} {
		found := false
		for _, s := range spans {
			if s.start != start {
				continue
			}
			if !found || s.end > hi {
				lo, hi, found = s.start, s.end, true
			}
		}
		if found {
			return lo, hi, true
		}
	}
	return 0, 0, false
}

// indexSignatures records the result types of every top-level function and
// method declaration, keyed as described on Program.
func (prog *Program) indexSignatures(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Type.Results == nil {
			continue
		}
		var results []string
		for _, field := range fd.Type.Results.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				results = append(results, typeString(field.Type))
			}
		}
		if fd.Recv != nil {
			prog.methodResults[fd.Name.Name] = append(prog.methodResults[fd.Name.Name], results)
		} else {
			prog.funcResults[f.Name.Name+"."+fd.Name.Name] = results
		}
	}
}

// FuncResults returns the declared result types of the top-level function
// pkgName.funcName, or nil if it was not loaded.
func (prog *Program) FuncResults(pkgName, funcName string) []string {
	return prog.funcResults[pkgName+"."+funcName]
}

// MethodAlwaysReturns reports whether at least one loaded method has the
// given name and every such method's result list satisfies pred. Lumping
// methods by bare name is the price of running without a type checker;
// rules that use this accept occasional suppressions.
func (prog *Program) MethodAlwaysReturns(name string, pred func(results []string) bool) bool {
	sigs := prog.methodResults[name]
	if len(sigs) == 0 {
		return false
	}
	for _, results := range sigs {
		if !pred(results) {
			return false
		}
	}
	return true
}

// modulePath reads the module path out of go.mod at modRoot, or "" when
// there is none (fixture trees).
func modulePath(modRoot string) string {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod; it falls back to dir itself (fixture trees have no go.mod).
func findModuleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for probe := abs; ; {
		if _, err := os.Stat(filepath.Join(probe, "go.mod")); err == nil {
			// Return the root in the same (possibly relative) form the
			// caller used so file paths in findings stay short.
			rel, err := filepath.Rel(abs, probe)
			if err != nil {
				return probe
			}
			return filepath.Join(dir, rel)
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			return dir
		}
		probe = parent
	}
}

// typeString renders a type expression compactly: enough to recognize
// "error", "float64", map types, and qualified names.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.ArrayType:
		return "[]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.ChanType:
		return "chan " + typeString(t.Value)
	case *ast.FuncType:
		return "func"
	case *ast.InterfaceType:
		return "interface"
	case *ast.StructType:
		return "struct"
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.IndexExpr:
		return typeString(t.X)
	case *ast.IndexListExpr:
		return typeString(t.X)
	case *ast.ParenExpr:
		return typeString(t.X)
	default:
		return ""
	}
}
