package lint

import "go/ast"

// wallclockDirs are the packages that must run on simulated time only:
// reading the wall clock there makes runs irreproducible and couples
// results to host speed.
var wallclockDirs = []string{
	"internal/sim",
	"internal/worm",
	"internal/epidemic",
	"internal/detect",
	"internal/obs",
}

// wallclockFuncs are the package time functions that observe or depend on
// the wall clock. Pure constructors like time.Duration arithmetic are fine.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallclock forbids wall-clock reads in the simulation packages; those
// packages advance time only through their tick loops.
var NoWallclock = &Analyzer{
	Name: "no-wallclock",
	Doc:  "time.Now/Since/etc. are forbidden in simulation packages (simulated time only)",
	Run:  runNoWallclock,
}

func runNoWallclock(pass *Pass) {
	if pass.File.Test {
		return
	}
	restricted := false
	for _, dir := range wallclockDirs {
		if underDir(pass.Package.Rel, dir) {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	timeName := importName(pass.File.AST, "time")
	if timeName == "" {
		return
	}
	ast.Inspect(pass.File.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Name != timeName || !wallclockFuncs[sel.Sel.Name] {
			return true
		}
		pass.Report(sel, "wall-clock call time.%s in simulation package %s; use the simulation's tick counter", sel.Sel.Name, pass.Package.Rel)
		return true
	})
}
