package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds an AST-level call graph over the whole loaded module,
// using the typed layer for resolution. The graph is deliberately
// conservative (sound-ish, not precise): calls it cannot resolve
// statically fall back to every plausible target, so taint never escapes
// through an indirect call.
//
// Resolution tiers:
//
//  1. static   — plain function calls and concrete method calls resolve
//                to their declaration.
//  2. interface— a call through an interface method adds an edge to every
//                module method with the same name and arity.
//  3. dynamic  — a call through a function value (variable, struct field,
//                method value, call result) adds an edge to every module
//                function whose address is taken somewhere and whose
//                arity matches.
//
// Function literals are inlined into their enclosing declaration: sources
// inside `go func(){...}` bodies belong to the function that spawned them.

// FuncNode is one declared function or method in the module.
type FuncNode struct {
	// Obj is the type-checker object for the declaration.
	Obj *types.Func
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Pkg and File locate the declaration.
	Pkg  *Package
	File *File
	// Callees are the outgoing edges, in source order.
	Callees []Edge
	// GoEntry reports that some call site reaches this function from
	// inside a go statement, so its body runs on a worker goroutine.
	GoEntry bool
}

// Edge is one call site.
type Edge struct {
	// Callee is the target.
	Callee *FuncNode
	// Site is the call expression (or value reference) creating the edge.
	Site ast.Node
}

// Name renders the node as "pkgRel.Func" or "pkgRel.(Type).Method".
func (n *FuncNode) Name() string {
	if recv := n.Decl.Recv; recv != nil && len(recv.List) > 0 {
		t := recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		return n.Pkg.Rel + ".(" + typeString(t) + ")." + n.Decl.Name.Name
	}
	return n.Pkg.Rel + "." + n.Decl.Name.Name
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	// Nodes maps declaration objects to their nodes.
	Nodes map[*types.Func]*FuncNode

	byName       map[string][]*FuncNode // bare name -> nodes (interface fallback)
	addressTaken []*FuncNode            // functions referenced as values (dynamic fallback)
}

// CallGraph builds (once) and returns the module call graph. It triggers
// Check() as needed.
func (prog *Program) CallGraph() *CallGraph {
	if prog.callgraph != nil {
		return prog.callgraph
	}
	prog.Check()
	g := &CallGraph{
		Nodes:  make(map[*types.Func]*FuncNode),
		byName: make(map[string][]*FuncNode),
	}

	// Pass 1: nodes for every declared function with a body.
	for _, pkg := range prog.Packages {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, File: file}
				g.Nodes[obj] = n
				g.byName[fd.Name.Name] = append(g.byName[fd.Name.Name], n)
			}
		}
	}

	// Pass 2: address-taken functions — any use of a function object
	// outside call position (method values, handlers stored in fields,
	// funcs passed as arguments).
	taken := make(map[*FuncNode]bool)
	for _, pkg := range prog.Packages {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			if file.Test {
				continue
			}
			callFuns := make(map[ast.Node]bool)
			ast.Inspect(file.AST, func(nd ast.Node) bool {
				if call, ok := nd.(*ast.CallExpr); ok {
					fun := unwrapFun(call.Fun)
					callFuns[fun] = true
					if sel, ok := fun.(*ast.SelectorExpr); ok {
						callFuns[sel.Sel] = true
					}
				}
				return true
			})
			record := func(obj types.Object) {
				if fn, ok := obj.(*types.Func); ok {
					if node := g.lookupObj(fn); node != nil {
						taken[node] = true
					}
				}
			}
			ast.Inspect(file.AST, func(nd ast.Node) bool {
				if callFuns[nd] {
					return true
				}
				switch e := nd.(type) {
				case *ast.Ident:
					record(pkg.TypesInfo.Uses[e])
				case *ast.SelectorExpr:
					if sel, ok := pkg.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
						record(sel.Obj())
					}
				}
				return true
			})
		}
	}
	g.addressTaken = make([]*FuncNode, 0, len(taken))
	for n := range taken {
		g.addressTaken = append(g.addressTaken, n)
	}
	sort.Slice(g.addressTaken, func(i, j int) bool {
		return g.addressTaken[i].Name() < g.addressTaken[j].Name()
	})

	// Pass 3: edges, in deterministic node order so every downstream
	// traversal (BFS parents, reported paths) is reproducible.
	for _, n := range g.sortedNodes() {
		g.addEdges(n)
	}
	prog.callgraph = g
	return g
}

// lookupObj finds the node for a function object, mapping generic
// instantiations back to their declaration.
func (g *CallGraph) lookupObj(fn *types.Func) *FuncNode {
	if n := g.Nodes[fn]; n != nil {
		return n
	}
	if orig := fn.Origin(); orig != nil {
		return g.Nodes[orig]
	}
	return nil
}

// addEdges walks one declaration's body and records its call edges,
// tracking whether each site sits inside a go statement.
func (g *CallGraph) addEdges(n *FuncNode) {
	info := n.Pkg.TypesInfo
	var walk func(nd ast.Node, inGo bool)
	walk = func(nd ast.Node, inGo bool) {
		ast.Inspect(nd, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.GoStmt:
				walk(s.Call, true)
				return false
			case *ast.CallExpr:
				for _, target := range g.resolve(info, s) {
					n.Callees = append(n.Callees, Edge{Callee: target, Site: s})
					if inGo {
						target.GoEntry = true
					}
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, false)
}

// resolve returns the possible module-internal targets of one call.
func (g *CallGraph) resolve(info *types.Info, call *ast.CallExpr) []*FuncNode {
	fun := unwrapFun(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			if n := g.lookupObj(obj); n != nil {
				return []*FuncNode{n}
			}
			return nil // external function
		case *types.Builtin, *types.TypeName, nil:
			return nil // builtin, conversion, or unresolved
		default:
			return g.dynamicTargets(info, call) // func-typed variable
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					return g.interfaceTargets(f.Sel.Name, call)
				}
				if fn, ok := sel.Obj().(*types.Func); ok {
					if n := g.lookupObj(fn); n != nil {
						return []*FuncNode{n}
					}
				}
				return nil
			case types.FieldVal:
				return g.dynamicTargets(info, call) // func-typed field
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if n := g.lookupObj(fn); n != nil {
				return []*FuncNode{n}
			}
		}
		return nil
	case *ast.FuncLit:
		return nil // inlined: the literal's body is walked by the caller
	default:
		if fun == nil {
			return nil
		}
		return g.dynamicTargets(info, call)
	}
}

// interfaceTargets is the interface-dispatch fallback: every module method
// with the same name and parameter count.
func (g *CallGraph) interfaceTargets(name string, call *ast.CallExpr) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.byName[name] {
		if n.Decl.Recv != nil && arity(n.Decl) == len(call.Args) {
			out = append(out, n)
		}
	}
	return out
}

// dynamicTargets is the function-value fallback: every address-taken
// module function whose parameter count matches the call.
func (g *CallGraph) dynamicTargets(info *types.Info, call *ast.CallExpr) []*FuncNode {
	want := len(call.Args)
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			want = sig.Params().Len()
		}
	}
	var out []*FuncNode
	for _, n := range g.addressTaken {
		if arity(n.Decl) == want {
			out = append(out, n)
		}
	}
	return out
}

// arity counts a declaration's parameters (fields with multiple names
// count each name).
func arity(fd *ast.FuncDecl) int {
	total := 0
	for _, f := range fd.Type.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		total += n
	}
	return total
}

// unwrapFun strips parentheses and generic instantiation indexes off a
// call's function expression.
func unwrapFun(e ast.Expr) ast.Expr {
	for {
		switch f := e.(type) {
		case *ast.ParenExpr:
			e = f.X
		case *ast.IndexExpr:
			e = f.X
		case *ast.IndexListExpr:
			e = f.X
		default:
			return e
		}
	}
}

// Lookup returns the nodes in the package with the given Rel whose name
// matches: "RunExact" for functions, "Type.Method" or just "Method" for
// methods.
func (g *CallGraph) Lookup(rel, name string) []*FuncNode {
	typeName, bare, isMethod := strings.Cut(name, ".")
	if !isMethod {
		bare = name
	}
	var out []*FuncNode
	for _, n := range g.byName[bare] {
		if n.Pkg.Rel != rel {
			continue
		}
		if isMethod {
			if n.Decl.Recv == nil || !strings.Contains(n.Name(), "("+typeName+")") {
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// ReachableFrom walks the graph forward from roots and returns, for every
// reachable node, the edge-parent it was discovered through (roots map to
// a nil parent). Use Path to render a call chain.
func (g *CallGraph) ReachableFrom(roots []*FuncNode) map[*FuncNode]*FuncNode {
	parent := make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; ok {
			continue
		}
		parent[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Callees {
			if _, ok := parent[e.Callee]; ok {
				continue
			}
			parent[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return parent
}

// Path renders the discovery chain from a root to n, given ReachableFrom's
// parent map: "root → f → g".
func Path(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, at.Name())
		if parent[at] == nil {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// sortedNodes returns the graph's nodes ordered by Name.
func (g *CallGraph) sortedNodes() []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name() < nodes[j].Name() })
	return nodes
}

// GoReachable returns every node whose body may execute on a spawned
// goroutine: the go-statement entry points plus everything they call.
func (g *CallGraph) GoReachable() map[*FuncNode]bool {
	var entries []*FuncNode
	for _, n := range g.sortedNodes() {
		if n.GoEntry {
			entries = append(entries, n)
		}
	}
	parent := g.ReachableFrom(entries)
	out := make(map[*FuncNode]bool, len(parent))
	for n := range parent {
		out[n] = true
	}
	return out
}
