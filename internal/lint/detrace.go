package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeTrace is the interprocedural nondeterminism-taint analyzer. Sources —
// map and sync.Map iteration whose order leaks, multi-case selects,
// unseeded randomness, wall-clock reads, and goroutine-completion
// ordering — taint the function containing them; taint propagates through
// the module call graph, and any source reachable from a
// determinism-contract root (sim.RunExact, sim.RunFast, sweep.Run/Map*,
// xcheck.CheckScenario/Shrink) is reported at the source with the call
// path that connects them.
//
// A source is discharged by a recognized sort-before-use (collected
// entries sorted later in the same function, or an order-insensitive
// body: integer/boolean aggregation and per-key element writes), or by an
// explicit annotation attached to its statement:
//
//	//lint:deterministic <why>
//
// The why is mandatory; a bare directive is itself reported (rule
// "lint-deterministic").
var DeTrace = &Analyzer{
	Name: "detrace",
	Doc:  "nondeterminism sources (map order, select, randomness, wall clock, goroutine order) reaching the determinism-contract roots",
	Run:  runDeTrace,
}

// detraceRoots are the determinism-contract entry points: every byte of
// their output must be a pure function of configuration and seed.
var detraceRoots = []struct{ rel, name string }{
	{"internal/sim", "RunExact"},
	{"internal/sim", "RunFast"},
	{"internal/sweep", "Run"},
	{"internal/sweep", "Map"},
	{"internal/sweep", "MapResults"},
	{"internal/sweep", "MapCheckpointed"},
	{"internal/xcheck", "CheckScenario"},
	{"internal/xcheck", "Shrink"},
}

// randPkgs are the packages whose package-level state (or entropy pool)
// makes every draw unseeded and irreproducible.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// dtFinding is one pre-computed detrace finding, stored per file so the
// per-file analyzer pass can replay it through the suppression filter.
type dtFinding struct {
	node ast.Node
	msg  string
}

func runDeTrace(pass *Pass) {
	for _, f := range pass.Program.detraceFindings()[pass.File] {
		pass.Report(f.node, "%s", f.msg)
	}
}

// detraceFindings computes (once) the whole-module taint result.
func (prog *Program) detraceFindings() map[*File][]dtFinding {
	//lint:ignore lazyinit a Program is analyzed on a single goroutine; reprolint never shares one across workers
	if prog.detraceOnce {
		return prog.detraceRes
	}
	prog.detraceOnce = true
	prog.detraceRes = make(map[*File][]dtFinding)

	g := prog.CallGraph()
	var roots []*FuncNode
	for _, r := range detraceRoots {
		roots = append(roots, g.Lookup(r.rel, r.name)...)
	}
	if len(roots) == 0 {
		return prog.detraceRes
	}
	parent := g.ReachableFrom(roots)

	reachable := make([]*FuncNode, 0, len(parent))
	for n := range parent {
		reachable = append(reachable, n)
	}
	sort.Slice(reachable, func(i, j int) bool {
		return reachable[i].Name() < reachable[j].Name()
	})
	for _, n := range reachable {
		for _, src := range nondetSources(prog, n) {
			msg := fmt.Sprintf("%s; taints determinism root %s (%s)",
				src.msg, pathRoot(parent, n), abbreviatedPath(parent, n))
			prog.detraceRes[n.File] = append(prog.detraceRes[n.File], dtFinding{node: src.node, msg: msg})
		}
	}
	return prog.detraceRes
}

// pathRoot walks the BFS parent chain back to the discovering root.
func pathRoot(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	at := n
	for parent[at] != nil {
		at = parent[at]
	}
	return at.Name()
}

// abbreviatedPath renders the call chain root → … → n, eliding the middle
// of long chains.
func abbreviatedPath(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, at.Name())
		if parent[at] == nil {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 5 {
		names = append(names[:2], append([]string{"…"}, names[len(names)-2:]...)...)
	}
	return strings.Join(names, " → ")
}

// ndSource is one undischarged nondeterminism source inside a function.
type ndSource struct {
	node ast.Node
	msg  string
}

// nondetSources scans one function body for sources, applying the
// discharges (order-insensitive map bodies, sort-before-use, and
// //lint:deterministic annotations).
func nondetSources(prog *Program, n *FuncNode) []ndSource {
	var out []ndSource
	pkg, file, body := n.Pkg, n.File, n.Decl.Body
	line := func(nd ast.Node) int { return prog.Fset.Position(nd.Pos()).Line }

	hasGo := false
	var loopBodies []*ast.BlockStmt
	selRecv := make(map[ast.Node]bool) // receives that are select comm clauses (the select itself is the source)
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.GoStmt:
			hasGo = true
		case *ast.ForStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.RangeStmt:
			loopBodies = append(loopBodies, s.Body)
		case *ast.CommClause:
			switch comm := s.Comm.(type) {
			case *ast.ExprStmt:
				selRecv[comm.X] = true
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					selRecv[rhs] = true
				}
			}
		}
		return true
	})
	inLoop := func(p token.Pos) bool {
		for _, b := range loopBodies {
			if b.Pos() <= p && p < b.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.RangeStmt:
			if file.Deterministic(line(s)) {
				return true
			}
			if isMapRange(pkg, body, s) {
				if issues := mapRangeIssues(pkg, s.Body, rangeIterVars(s), s.End(), body); len(issues) > 0 {
					out = append(out, ndSource{node: s, msg: "map iteration order leaks (" + issues[0].msg + ")"})
				}
			} else if isChanRange(pkg, s) && hasGo {
				out = append(out, ndSource{node: s, msg: "range over a channel fed by goroutines observes completion order"})
			}
		case *ast.SelectStmt:
			if len(s.Body.List) >= 2 && !file.Deterministic(line(s)) {
				out = append(out, ndSource{node: s, msg: fmt.Sprintf("select with %d cases resolves by channel readiness", len(s.Body.List))})
			}
			return true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && hasGo && !selRecv[s] && inLoop(s.Pos()) && !file.Deterministic(line(s)) {
				out = append(out, ndSource{node: s, msg: "channel receive in a loop alongside spawned goroutines observes completion order"})
			}
		case *ast.CallExpr:
			if msg := callSource(pkg, file, s, line(s)); msg != "" {
				out = append(out, ndSource{node: s, msg: msg})
			}
		}
		return true
	})
	return out
}

// callSource classifies one call as a source: unseeded randomness,
// wall-clock reads, and sync.Map iteration.
func callSource(pkg *Package, file *File, call *ast.CallExpr, line int) string {
	sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if file.Deterministic(line) {
		return ""
	}
	// Qualified package calls: rand.X / time.X.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.ObjectOf(id).(*types.PkgName); ok {
			path := pn.Imported().Path()
			switch {
			case randPkgs[path]:
				return "unseeded randomness from " + path + "." + sel.Sel.Name
			case path == "time" && wallclockFuncs[sel.Sel.Name]:
				return "wall-clock dependence via time." + sel.Sel.Name
			}
		} else if pkg.TypesInfo == nil {
			// Syntactic fallback when type information is missing.
			for _, p := range []string{"math/rand", "math/rand/v2", "crypto/rand"} {
				if importName(file.AST, p) == id.Name {
					return "unseeded randomness from " + p + "." + sel.Sel.Name
				}
			}
			if importName(file.AST, "time") == id.Name && wallclockFuncs[sel.Sel.Name] {
				return "wall-clock dependence via time." + sel.Sel.Name
			}
		}
	}
	// sync.Map iteration: (*sync.Map).Range.
	if sel.Sel.Name == "Range" {
		if t := pkg.TypeOf(sel.X); t != nil && isSyncMap(t) {
			return "sync.Map iteration order leaks"
		}
	}
	return ""
}

// isChanRange reports whether rs ranges over a channel.
func isChanRange(pkg *Package, rs *ast.RangeStmt) bool {
	if t := pkg.TypeOf(rs.X); t != nil {
		_, ok := t.Underlying().(*types.Chan)
		return ok
	}
	return false
}

// isSyncMap reports whether t is sync.Map or *sync.Map.
func isSyncMap(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
}
