package worm

import "repro/internal/rng"

func build() {
	_ = rng.NewXoshiro(42)                // want "NewXoshiro called with hard-coded seed 42"
	_ = rng.NewMSVCRT(uint32(5))          // want "NewMSVCRT called with hard-coded seed 5"
	_ = rng.NewLCG32(214013, 2531011, 99) // want "NewLCG32 called with hard-coded seed 99"
	r := rng.NewSplitMix64(7)             // want "NewSplitMix64 called with hard-coded seed 7"
	_ = r
}

func reseed(r *rng.LCG32) {
	r.Seed(1) // want "Seed called with hard-coded seed 1"
}
