package worm

import "repro/internal/rng"

func buildOK(seed uint64) {
	_ = rng.NewXoshiro(seed)
	_ = rng.NewXoshiro(rng.Mix64(seed ^ 0xb5e1))
}

func reseedOK(r *rng.LCG32, seed uint32) {
	r.Seed(seed)
}
