package worm

import "repro/internal/rng"

var fixed = rng.NewXoshiro(1)
