package worm

import "repro/internal/rng"

func pinned() {
	//lint:ignore seed-literal fixture proves the suppression path works
	_ = rng.NewXoshiro(1)
}
