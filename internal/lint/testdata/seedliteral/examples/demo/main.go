// Package main is an example; fixed seeds keep example output stable and
// are allowed here.
package main

import "repro/internal/rng"

var demo = rng.NewXoshiro(1)
