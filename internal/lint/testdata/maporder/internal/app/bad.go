package app

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Keys leaks map order into the returned slice: no sort after the range.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out"
	}
	return out
}

// Dump prints entries in iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside a map range"
	}
}

// Stream emits one JSON document per entry, in iteration order.
func Stream(m map[string]int) error {
	enc := json.NewEncoder(os.Stdout)
	for k := range m {
		if err := enc.Encode(k); err != nil { // want "Encode inside a map range"
			return err
		}
	}
	return nil
}

// Feed publishes entries on a channel in iteration order.
func Feed(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "send on a channel inside a map range"
	}
}

// SumFloats accumulates floats in iteration order: not bit-reproducible.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation into total"
	}
	return total
}

// SyncKeys leaks sync.Map order through the Range callback.
func SyncKeys(sm *sync.Map) []string {
	var out []string
	sm.Range(func(k, v any) bool {
		out = append(out, k.(string)) // want "append to out"
		return true
	})
	return out
}
