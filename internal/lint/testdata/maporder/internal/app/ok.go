package app

import (
	"fmt"
	"sort"
)

// SortedKeys collects then sorts: the append is discharged.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total is integer aggregation: exact and commutative.
func Total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Invert writes one element per key: order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// PrintSorted hoists the iteration onto a sorted copy before printing.
func PrintSorted(m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}
